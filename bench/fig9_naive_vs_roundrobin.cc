// Figure 9: NaiveQ vs RoundRobin execution time of the Result Database
// Generator as the number of relations n_R grows (c_R = 50).
//
// Paper: "time increases almost linearly with n_R ... The performance of
// the generator deteriorates with round-robin" (round-robin is applied to
// every join here, as in the paper's measurement, to keep the two series
// comparable).
//
// Substrate note: on Oracle the gap comes from per-statement overhead —
// RoundRobin opens one cursor per joining tuple while NaiveQ submits a
// single IN-list query per edge. The in-memory engine has no statement
// cost of its own, so both series run with a simulated per-statement
// overhead (DbGenOptions::statement_overhead_ns, default 1us here,
// override with PRECIS_BENCH_STMT_NS). Setting it to 0 shows the two
// strategies converge, which is itself an ablation of the paper's claim.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>

#include "bench/bench_util.h"
#include "precis/constraints.h"

namespace precis {
namespace {

constexpr size_t kTuplesPerRelation = 50;

uint64_t StatementOverheadNs() {
  const char* env = std::getenv("PRECIS_BENCH_STMT_NS");
  if (env != nullptr) return static_cast<uint64_t>(std::atoll(env));
  return 1000;
}

const std::vector<bench::DbGenCase>& CasesFor(size_t n_r) {
  static std::map<size_t, std::vector<bench::DbGenCase>>* cases =
      new std::map<size_t, std::vector<bench::DbGenCase>>();
  auto it = cases->find(n_r);
  if (it == cases->end()) {
    it = cases
             ->emplace(n_r, bench::MakeDbGenCases(
                                bench::SharedDataset(), n_r,
                                /*seed=*/9 + n_r, /*num_chains=*/10,
                                /*num_seed_sets=*/5, /*seeds_per_set=*/30))
             .first;
  }
  return it->second;
}

void RunGenerator(benchmark::State& state, SubsetStrategy strategy) {
  const MoviesDataset& dataset = bench::SharedDataset();
  const size_t n_r = static_cast<size_t>(state.range(0));
  const std::vector<bench::DbGenCase>& cases = CasesFor(n_r);
  auto constraint = MaxTuplesPerRelation(kTuplesPerRelation);
  DbGenOptions options;
  options.strategy = strategy;
  options.statement_overhead_ns = StatementOverheadNs();

  size_t run = 0;
  size_t total_tuples = 0;
  size_t runs = 0;
  AccessStats before = dataset.db().stats();
  for (auto _ : state) {
    const bench::DbGenCase& c = cases[run++ % cases.size()];
    ResultDatabaseGenerator generator(&dataset.db());
    auto result = generator.Generate(c.schema, c.seeds, *constraint, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(result);
    total_tuples += result->TotalTuples();
    ++runs;
  }
  AccessStats after = dataset.db().stats();
  if (runs > 0) {
    state.counters["tuples"] =
        static_cast<double>(total_tuples) / static_cast<double>(runs);
    state.counters["statements"] =
        static_cast<double>(after.statements - before.statements) /
        static_cast<double>(runs);
  }
}

void BM_DbGenNaiveQ(benchmark::State& state) {
  RunGenerator(state, SubsetStrategy::kNaiveQ);
}

void BM_DbGenRoundRobin(benchmark::State& state) {
  RunGenerator(state, SubsetStrategy::kRoundRobin);
}

BENCHMARK(BM_DbGenNaiveQ)->ArgName("n_R")->DenseRange(1, 8, 1);
BENCHMARK(BM_DbGenRoundRobin)->ArgName("n_R")->DenseRange(1, 8, 1);

}  // namespace
}  // namespace precis

BENCHMARK_MAIN();
