// Intra-query parallel result-database generation: sequential Fig. 5 walk
// vs the same walk with per-tuple work fanned out on a work-stealing
// TaskPool (DESIGN.md §11).
//
// Two timing modes per cardinality point:
//
//   * cpu: materialization cost is pure compute (tuple projection + copy +
//     emit). Speedup here is bounded by the machine's core count and by
//     the serial planning fraction (Amdahl), so on a small container it
//     can be modest.
//   * sim-io: every accepted tuple additionally pays
//     PRECIS_BENCH_LATENCY_NS of simulated storage latency — the paper's
//     setting, where the DBMS round-trip dominates (its §6 cost model
//     prices IndexTime/TupleTime in I/O terms). Sequential generation
//     pays the latency serially (batched sleeps); parallel generation
//     overlaps it across chunk tasks, so the speedup is real even on one
//     core — exactly like overlapping outstanding reads against a real
//     storage engine.
//
// Every parallel run is byte-compared (storage/serialization) against the
// sequential one and the program exits non-zero on ANY mismatch: this
// bench doubles as the determinism gate ci.sh runs in smoke mode:
//
//   PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 ./parallel_dbgen
//
// Knobs: PRECIS_BENCH_MOVIES (dataset size), PRECIS_BENCH_LATENCY_NS
// (simulated per-tuple latency, default 20000), PRECIS_BENCH_OUT (report
// path, default BENCH_parallel_dbgen.json).
//
// Full mode additionally gates on the headline claim: >= 2x sim-io
// speedup at parallelism 8 on the largest cardinality point.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/task_pool.h"
#include "precis/constraints.h"
#include "precis/database_generator.h"
#include "precis/schema_generator.h"
#include "storage/serialization.h"

namespace precis {
namespace {

using Clock = std::chrono::steady_clock;

struct RunOutcome {
  double ms = 0.0;
  std::string bytes;
  size_t total_tuples = 0;
};

RunOutcome RunOnce(const Database& db, const ResultSchema& schema,
                   const SeedTids& seeds, const CardinalityConstraint& c,
                   const DbGenOptions& options) {
  ResultDatabaseGenerator gen(&db);
  auto start = Clock::now();
  auto result = gen.Generate(schema, seeds, c, options);
  double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  if (!result.ok()) {
    std::fprintf(stderr, "generate: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  std::ostringstream os;
  if (!SaveDatabase(*result, &os).ok()) {
    std::fprintf(stderr, "serialize failed\n");
    std::exit(1);
  }
  RunOutcome outcome;
  outcome.ms = ms;
  outcome.bytes = os.str();
  outcome.total_tuples = gen.last_report().total_tuples;
  return outcome;
}

int Main() {
  const bool smoke = std::getenv("PRECIS_BENCH_SMOKE") != nullptr;
  const uint64_t latency_ns = bench::EnvSize("PRECIS_BENCH_LATENCY_NS", 20000);
  const std::string out_path =
      bench::EnvString("PRECIS_BENCH_OUT", "BENCH_parallel_dbgen.json");

  const MoviesDataset& dataset = bench::SharedDataset();

  // One wide result schema rooted at DIRECTOR: the paper's "précis of a
  // director" shape, deep enough (w >= 0.5) that the walk crosses several
  // to-N joins and the result database carries real volume.
  ResultSchemaGenerator schema_gen(&dataset.graph());
  auto schema =
      schema_gen.Generate({std::string("DIRECTOR")}, *MinPathWeight(0.5));
  if (!schema.ok()) {
    std::fprintf(stderr, "schema: %s\n", schema.status().ToString().c_str());
    return 1;
  }
  auto director = dataset.db().GetRelation("DIRECTOR");
  if (!director.ok()) return 1;
  RelationNodeId director_id = *dataset.graph().RelationId("DIRECTOR");
  const size_t num_seeds =
      std::min<size_t>((*director)->num_tuples(), smoke ? 16 : 1024);
  SeedTids seeds;
  for (Tid tid = 0; tid < num_seeds; ++tid) {
    seeds[director_id].push_back(tid);
  }

  const std::vector<size_t> cardinalities =
      smoke ? std::vector<size_t>{200, 800}
            : std::vector<size_t>{1000, 4000, 16000, 64000};
  const std::vector<size_t> parallelisms = {2, 4, 8};

  // One pool per parallelism level, sized to match, reused across rows.
  std::map<size_t, std::unique_ptr<TaskPool>> pools;
  for (size_t p : parallelisms) pools[p] = std::make_unique<TaskPool>(p);

  size_t mismatches = 0;
  double speedup_8t_largest_io = 0.0;

  std::ostringstream json;
  json << "{\n  \"bench\": \"parallel_dbgen\",\n"
       << "  \"movies\": " << dataset.config().num_movies << ",\n"
       << "  \"seeds\": " << num_seeds << ",\n"
       << "  \"latency_ns\": " << latency_ns << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"rows\": [\n";

  std::printf("%-8s %-7s %8s %10s", "mode", "c", "tuples", "seq_ms");
  for (size_t p : parallelisms) std::printf(" %7s%zu", "par", p);
  for (size_t p : parallelisms) std::printf(" %6s%zu", "spd", p);
  std::printf("\n");

  bool first_row = true;
  for (const char* mode : {"cpu", "sim-io"}) {
    const bool io = std::string(mode) == "sim-io";
    for (size_t c : cardinalities) {
      auto cardinality = MaxTuplesPerRelation(c);
      DbGenOptions base;
      base.strategy = SubsetStrategy::kRoundRobin;
      base.simulated_access_latency_ns = io ? latency_ns : 0;

      DbGenOptions seq_options = base;
      seq_options.parallelism = 1;
      RunOutcome seq = RunOnce(dataset.db(), *schema, seeds, *cardinality,
                               seq_options);

      std::vector<double> par_ms;
      std::vector<double> speedups;
      for (size_t p : parallelisms) {
        DbGenOptions par_options = base;
        par_options.parallelism = p;
        par_options.pool = pools[p].get();
        RunOutcome par = RunOnce(dataset.db(), *schema, seeds, *cardinality,
                                 par_options);
        if (par.bytes != seq.bytes) {
          std::fprintf(stderr,
                       "MISMATCH: mode=%s c=%zu parallelism=%zu emitted a "
                       "different database than the sequential walk\n",
                       mode, c, p);
          ++mismatches;
        }
        par_ms.push_back(par.ms);
        speedups.push_back(par.ms > 0 ? seq.ms / par.ms : 0.0);
      }
      if (io && c == cardinalities.back()) {
        speedup_8t_largest_io = speedups.back();
      }

      std::printf("%-8s %-7zu %8zu %10.2f", mode, c, seq.total_tuples,
                  seq.ms);
      for (double ms : par_ms) std::printf(" %8.2f", ms);
      for (double s : speedups) std::printf(" %6.2fx", s);
      std::printf("\n");

      if (!first_row) json << ",\n";
      first_row = false;
      json << "    {\"mode\": \"" << mode << "\", \"c\": " << c
           << ", \"tuples\": " << seq.total_tuples
           << ", \"seq_ms\": " << seq.ms << ", \"parallel\": [";
      for (size_t i = 0; i < parallelisms.size(); ++i) {
        json << (i > 0 ? ", " : "") << "{\"threads\": " << parallelisms[i]
             << ", \"ms\": " << par_ms[i] << ", \"speedup\": " << speedups[i]
             << "}";
      }
      json << "]}";
    }
  }

  json << "\n  ],\n  \"mismatches\": " << mismatches
       << ",\n  \"speedup_8t_largest_c_sim_io\": " << speedup_8t_largest_io
       << "\n}\n";

  std::ofstream out(out_path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json.str();
  std::printf("mismatches=%zu sim_io_speedup_8t=%0.2fx -> %s\n", mismatches,
              speedup_8t_largest_io, out_path.c_str());

  // Gates. Byte-identity always; the >= 2x headline only in full mode
  // (smoke datasets are too small for stable timing).
  if (mismatches != 0) {
    std::fprintf(stderr, "FAIL: %zu parallel/sequential mismatches\n",
                 mismatches);
    return 1;
  }
  if (!smoke && speedup_8t_largest_io < 2.0) {
    std::fprintf(stderr,
                 "FAIL: sim-io speedup at 8 threads on the largest "
                 "cardinality is %.2fx (< 2x)\n",
                 speedup_8t_largest_io);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace precis

int main() { return precis::Main(); }
