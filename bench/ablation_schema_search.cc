// Ablation: what does the best-first traversal of Fig. 3 buy over the
// naive "enumerate all acyclic projection paths, then filter" reading of
// the §5.1 problem statement?
//
// Both produce the same result schema (see exhaustive_generator_test's
// oracle sweep); the difference is work: the exhaustive generator pays for
// every acyclic path in the graph regardless of the degree constraint,
// while the best-first traversal prunes everything the constraint rejects.
// The gap widens as the constraint tightens — exactly the regime précis
// answers live in (small d, high weight thresholds).

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "datagen/movies_dataset.h"
#include "graph/weight_profile.h"
#include "precis/exhaustive_generator.h"
#include "precis/schema_generator.h"

namespace precis {
namespace {

const std::vector<SchemaGraph>& WeightedGraphs() {
  static const std::vector<SchemaGraph>* graphs = [] {
    auto* out = new std::vector<SchemaGraph>();
    Rng rng(404);
    for (int i = 0; i < 10; ++i) {
      auto g = BuildMoviesGraph();
      if (!g.ok() || !RandomizeWeights(&*g, &rng).ok()) std::abort();
      out->push_back(std::move(*g));
    }
    return out;
  }();
  return *graphs;
}

// Thresholds are permille to fit benchmark's integer args.
void BM_BestFirst(benchmark::State& state) {
  double w0 = static_cast<double>(state.range(0)) / 1000.0;
  auto d = MinPathWeight(w0);
  size_t run = 0;
  size_t total_paths = 0;
  size_t runs = 0;
  for (auto _ : state) {
    const SchemaGraph& graph = WeightedGraphs()[run % WeightedGraphs().size()];
    RelationNodeId r0 = static_cast<RelationNodeId>(
        (run / WeightedGraphs().size()) % graph.num_relations());
    ++run;
    ResultSchemaGenerator generator(&graph);
    auto schema = generator.Generate(std::vector<RelationNodeId>{r0}, *d);
    if (!schema.ok()) {
      state.SkipWithError(schema.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(schema);
    total_paths += generator.last_stats().paths_enqueued;
    ++runs;
  }
  if (runs > 0) {
    state.counters["paths_touched"] =
        static_cast<double>(total_paths) / static_cast<double>(runs);
  }
}

void BM_Exhaustive(benchmark::State& state) {
  double w0 = static_cast<double>(state.range(0)) / 1000.0;
  auto d = MinPathWeight(w0);
  size_t run = 0;
  size_t total_paths = 0;
  size_t runs = 0;
  for (auto _ : state) {
    const SchemaGraph& graph = WeightedGraphs()[run % WeightedGraphs().size()];
    RelationNodeId r0 = static_cast<RelationNodeId>(
        (run / WeightedGraphs().size()) % graph.num_relations());
    ++run;
    ExhaustiveSchemaGenerator generator(&graph);
    auto schema = generator.Generate(std::vector<RelationNodeId>{r0}, *d);
    if (!schema.ok()) {
      state.SkipWithError(schema.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(schema);
    total_paths += generator.last_paths_enumerated();
    ++runs;
  }
  if (runs > 0) {
    state.counters["paths_touched"] =
        static_cast<double>(total_paths) / static_cast<double>(runs);
  }
}

BENCHMARK(BM_BestFirst)
    ->ArgName("w0_permille")
    ->Arg(950)
    ->Arg(900)
    ->Arg(700)
    ->Arg(500)
    ->Arg(300)
    ->Arg(100)
    ->Arg(0);
BENCHMARK(BM_Exhaustive)
    ->ArgName("w0_permille")
    ->Arg(950)
    ->Arg(900)
    ->Arg(700)
    ->Arg(500)
    ->Arg(300)
    ->Arg(100)
    ->Arg(0);

}  // namespace
}  // namespace precis

BENCHMARK_MAIN();
