// §2 comparison: précis queries vs DISCOVER/DBXplorer-style keyword search.
//
// The paper's qualitative claim: existing keyword-search systems return
// flattened (relation, attribute) matches or joined rows, whereas a précis
// also assembles the information *around* the matches into a sub-database.
// This bench makes the comparison quantitative on the same token workload:
// answer latency, and how much connected context each paradigm returns.

#include <benchmark/benchmark.h>

#include <memory>

#include "baseline/keyword_search.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "datagen/workload.h"
#include "precis/engine.h"

namespace precis {
namespace {

/// A mixed workload of single-token queries drawn from the data.
const std::vector<std::string>& Tokens() {
  static const std::vector<std::string>* tokens = [] {
    auto* out = new std::vector<std::string>();
    Rng rng(77);
    const Database& db = bench::SharedDataset().db();
    for (int i = 0; i < 8; ++i) {
      out->push_back(*RandomToken(db, "DIRECTOR", "dname", &rng));
      out->push_back(*RandomToken(db, "MOVIE", "title", &rng));
      out->push_back(*RandomToken(db, "ACTOR", "aname", &rng));
    }
    out->push_back("Woody Allen");
    return out;
  }();
  return *tokens;
}

PrecisEngine* SharedPrecisEngine() {
  static PrecisEngine* engine = [] {
    auto e = PrecisEngine::Create(&bench::SharedDataset().db(),
                                  &bench::SharedDataset().graph());
    if (!e.ok()) std::abort();
    return new PrecisEngine(std::move(*e));
  }();
  return engine;
}

KeywordSearchBaseline* SharedBaseline() {
  static KeywordSearchBaseline* engine = [] {
    auto e = KeywordSearchBaseline::Create(&bench::SharedDataset().db(),
                                           &bench::SharedDataset().graph());
    if (!e.ok()) std::abort();
    return new KeywordSearchBaseline(std::move(*e));
  }();
  return engine;
}

void BM_PrecisAnswer(benchmark::State& state) {
  PrecisEngine* engine = SharedPrecisEngine();
  auto d = MinPathWeight(0.9);
  auto c = MaxTuplesPerRelation(static_cast<size_t>(state.range(0)));
  size_t run = 0;
  size_t total_tuples = 0;
  size_t total_relations = 0;
  size_t runs = 0;
  for (auto _ : state) {
    const std::string& token = Tokens()[run++ % Tokens().size()];
    auto answer = engine->Answer(PrecisQuery{{token}}, *d, *c);
    if (!answer.ok()) {
      state.SkipWithError(answer.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(answer);
    total_tuples += answer->database.TotalTuples();
    total_relations += answer->database.num_relations();
    ++runs;
  }
  if (runs > 0) {
    state.counters["tuples"] =
        static_cast<double>(total_tuples) / static_cast<double>(runs);
    state.counters["relations"] =
        static_cast<double>(total_relations) / static_cast<double>(runs);
  }
}

void BM_KeywordSearch(benchmark::State& state) {
  KeywordSearchBaseline* engine = SharedBaseline();
  KeywordSearchOptions options;
  options.top_k = static_cast<size_t>(state.range(0));
  size_t run = 0;
  size_t total_results = 0;
  size_t runs = 0;
  for (auto _ : state) {
    const std::string& token = Tokens()[run++ % Tokens().size()];
    auto results = engine->Search({token}, options);
    if (!results.ok()) {
      state.SkipWithError(results.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(results);
    total_results += results->size();
    ++runs;
  }
  if (runs > 0) {
    state.counters["results"] =
        static_cast<double>(total_results) / static_cast<double>(runs);
    // Keyword answers are flat matches: zero surrounding relations.
    state.counters["relations"] = 1;
  }
}

BENCHMARK(BM_PrecisAnswer)->ArgName("c_R")->Arg(3)->Arg(10)->Arg(50);
BENCHMARK(BM_KeywordSearch)->ArgName("top_k")->Arg(3)->Arg(10)->Arg(50);

}  // namespace
}  // namespace precis

BENCHMARK_MAIN();
