// Cost-model validation (paper §6, Formulas 1-3).
//
// Formula (2) predicts Cost(D') = c_R * n_R * (IndexTime + TupleTime). The
// engine's instrumentation counts exactly the model's two access kinds, so
// this harness validates the model the way the paper does — "Formula (2)
// seems to be a reasonable approximation of the execution cost" — by
// sweeping c_R and n_R and comparing:
//   * measured wall-clock seconds vs Formula (1) evaluated with calibrated
//     per-access parameters, and
//   * measured access counts vs the model's c_R * n_R prediction.
// It finishes by exercising Formula (3): deriving c_R from a response-time
// target and verifying the achieved time.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "precis/constraints.h"
#include "precis/cost_model.h"

namespace precis {
namespace {

struct Measurement {
  size_t c_r;
  size_t n_r;
  double seconds;
  AccessStats stats;
  size_t tuples;
};

Measurement Measure(size_t c_r, size_t n_r, int repetitions) {
  const MoviesDataset& dataset = bench::SharedDataset();
  std::vector<bench::DbGenCase> cases = bench::MakeDbGenCases(
      dataset, n_r, /*seed=*/100 + n_r, /*num_chains=*/5,
      /*num_seed_sets=*/4, /*seeds_per_set=*/30);
  auto constraint = MaxTuplesPerRelation(c_r);
  DbGenOptions options;
  options.strategy = SubsetStrategy::kNaiveQ;

  Measurement m{c_r, n_r, 0.0, AccessStats{}, 0};
  AccessStats before = dataset.db().stats();
  auto start = std::chrono::steady_clock::now();
  size_t runs = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    for (const bench::DbGenCase& c : cases) {
      ResultDatabaseGenerator generator(&dataset.db());
      auto result =
          generator.Generate(c.schema, c.seeds, *constraint, options);
      if (!result.ok()) std::abort();
      m.tuples += result->TotalTuples();
      ++runs;
    }
  }
  auto end = std::chrono::steady_clock::now();
  AccessStats after = dataset.db().stats();
  m.seconds = std::chrono::duration<double>(end - start).count() /
              static_cast<double>(runs);
  m.stats.index_probes =
      (after.index_probes - before.index_probes) / runs;
  m.stats.tuple_fetches =
      (after.tuple_fetches - before.tuple_fetches) / runs;
  m.tuples /= runs;
  return m;
}

}  // namespace
}  // namespace precis

int main() {
  using namespace precis;
  constexpr int kReps = 20;

  std::printf("Cost model validation (Formulas 1-3), movies = %zu\n\n",
              bench::BenchMovieCount());

  // Calibrate (IndexTime + TupleTime) from a mid-size run (Formula 1).
  Measurement calib = Measure(50, 4, kReps);
  CostParameters params = CostModel::Calibrate(calib.seconds, calib.stats);
  CostModel model(params);
  std::printf("calibration: %.3f us/access over %llu probes + %llu fetches\n\n",
              params.index_time_seconds * 1e6,
              static_cast<unsigned long long>(calib.stats.index_probes),
              static_cast<unsigned long long>(calib.stats.tuple_fetches));

  std::printf("%6s %5s | %12s %12s %7s | %10s %10s %7s\n", "c_R", "n_R",
              "measured(us)", "formula1(us)", "ratio", "accesses",
              "c_R*n_R*2", "ratio");
  double worst_count_ratio = 1.0;
  for (size_t n_r : {2, 4, 6, 8}) {
    for (size_t c_r : {10, 30, 50, 70, 90}) {
      Measurement m = Measure(c_r, n_r, kReps);
      double predicted = model.PredictSeconds(m.stats);
      uint64_t accesses = m.stats.index_probes + m.stats.tuple_fetches;
      // Formula (2) counts one probe and one fetch per tuple of each
      // populated relation: 2 * c_R * n_R accesses at full budgets.
      double model_accesses = 2.0 * static_cast<double>(c_r * n_r);
      double count_ratio = static_cast<double>(accesses) / model_accesses;
      std::printf("%6zu %5zu | %12.1f %12.1f %7.2f | %10llu %10.0f %7.2f\n",
                  c_r, n_r, m.seconds * 1e6, predicted * 1e6,
                  predicted > 0 ? m.seconds / predicted : 0.0,
                  static_cast<unsigned long long>(accesses), model_accesses,
                  count_ratio);
      if (count_ratio > worst_count_ratio) worst_count_ratio = count_ratio;
    }
  }
  std::printf(
      "\nNote: access counts fall below the model's 2*c_R*n_R when the "
      "joined\nneighbourhood is smaller than the budget (the model is an "
      "upper bound,\nas in the paper's 'maximum number of tuples per "
      "relation' reading).\nworst over-prediction ratio observed: %.2f\n",
      worst_count_ratio);

  // Formula (3): derive c_R from a response-time target.
  double target = model.PredictSecondsFormula2(40, 4);
  auto derived = model.TuplesPerRelationForBudget(target, 4);
  if (derived.ok()) {
    Measurement m = Measure(*derived, 4, kReps);
    std::printf(
        "\nFormula 3: target %.1f us over n_R=4 -> c_R=%zu; achieved %.1f "
        "us\n",
        target * 1e6, *derived, m.seconds * 1e6);
  }
  return 0;
}
