// Service throughput: précis queries per second vs worker-pool size.
//
// The paper's cost model (§6) bounds the latency of ONE query; a deployed
// précis feature also needs aggregate throughput under concurrency. This
// bench drives PrecisService with a fixed batch of token queries at 1..8
// workers and reports queries/sec, plus a variant where every query runs
// under a tight deadline (exercising the early-stop partial-answer path
// end to end). Worker scaling is bounded by the machine's core count:
// on a single-core box the curve is flat and only the p99 queueing delay
// moves; compare CPU time against real time to see how many cores the
// pool actually kept busy.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "datagen/workload.h"
#include "precis/engine.h"
#include "service/precis_service.h"

namespace precis {
namespace {

struct ServiceFixture {
  std::unique_ptr<PrecisEngine> engine;
  std::vector<std::string> tokens;
};

const ServiceFixture& SharedFixture() {
  static const ServiceFixture* fixture = [] {
    const auto& dataset = bench::SharedDataset();
    auto engine = PrecisEngine::Create(&dataset.db(), &dataset.graph());
    if (!engine.ok()) std::abort();
    auto* f = new ServiceFixture;
    f->engine = std::make_unique<PrecisEngine>(std::move(*engine));
    Rng rng(17);
    for (int i = 0; i < 64; ++i) {
      auto token = RandomToken(dataset.db(), "DIRECTOR", "dname", &rng);
      if (!token.ok()) std::abort();
      f->tokens.push_back(std::move(*token));
    }
    return f;
  }();
  return *fixture;
}

std::vector<ServiceRequest> MakeBatch(const ServiceFixture& fixture,
                                      size_t count,
                                      double deadline_seconds) {
  std::vector<ServiceRequest> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ServiceRequest request;
    request.query.tokens = {fixture.tokens[i % fixture.tokens.size()]};
    // A wide, deep answer per query: worker scaling only shows when each
    // query carries real generator work, not queue hand-off overhead.
    request.min_path_weight = 0.5;
    request.tuples_per_relation = 40;
    request.deadline_seconds = deadline_seconds;
    batch.push_back(std::move(request));
  }
  return batch;
}

void RunBatches(benchmark::State& state, double deadline_seconds) {
  const ServiceFixture& fixture = SharedFixture();
  const size_t num_workers = static_cast<size_t>(state.range(0));
  constexpr size_t kBatchSize = 64;

  PrecisService::Options options;
  options.num_workers = num_workers;
  auto service = PrecisService::Create(fixture.engine.get(), options);
  if (!service.ok()) {
    state.SkipWithError(service.status().ToString().c_str());
    return;
  }

  size_t queries = 0;
  for (auto _ : state) {
    auto futures = (*service)->SubmitBatch(
        MakeBatch(fixture, kBatchSize, deadline_seconds));
    for (auto& future : futures) {
      ServiceResponse response = future.get();
      if (!response.status.ok()) {
        state.SkipWithError(response.status.ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(response);
    }
    queries += kBatchSize;
  }

  state.counters["queries/s"] = benchmark::Counter(
      static_cast<double>(queries), benchmark::Counter::kIsRate);
  PrecisService::Metrics metrics = (*service)->metrics();
  state.counters["deadline_hits"] =
      static_cast<double>(metrics.deadline_hits);
  state.counters["p99_ms"] = metrics.p99_latency_seconds * 1e3;
}

void BM_ServiceThroughput(benchmark::State& state) {
  RunBatches(state, /*deadline_seconds=*/0.0);
}

void BM_ServiceThroughputTightDeadline(benchmark::State& state) {
  RunBatches(state, /*deadline_seconds=*/100e-6);
}

BENCHMARK(BM_ServiceThroughput)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_ServiceThroughputTightDeadline)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace precis

BENCHMARK_MAIN();
