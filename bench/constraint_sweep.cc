// Tables 1 and 2: the effect of every degree- and cardinality-constraint
// form on the result of the same précis query.
//
// The paper defines three degree expressions (top-r projections, minimum
// path weight, maximum path length) and two cardinality expressions (total
// tuples, tuples per relation), plus conjunctions. This harness prints, for
// the running query {"Woody Allen"}, the result schema size and result
// database size each form produces — the "different answers for the same
// query" behaviour of §3.3.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "precis/engine.h"

namespace precis {
namespace {

void Report(const char* label, const DegreeConstraint& d,
            const CardinalityConstraint& c, PrecisEngine* engine) {
  auto answer = engine->Answer(PrecisQuery{{"Woody Allen"}}, d, c);
  if (!answer.ok()) {
    std::printf("%-44s | error: %s\n", label,
                answer.status().ToString().c_str());
    return;
  }
  size_t relations = answer->schema.relations().size();
  size_t attributes = answer->schema.TotalProjectedAttributes();
  size_t tuples = answer->database.TotalTuples();
  std::printf("%-44s | %9zu %10zu %7zu\n", label, relations, attributes,
              tuples);
}

}  // namespace
}  // namespace precis

int main() {
  using namespace precis;
  const MoviesDataset& dataset = bench::SharedDataset();
  auto engine = PrecisEngine::Create(&dataset.db(), &dataset.graph());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  std::printf("Constraint sweep for Q = {\"Woody Allen\"}, movies = %zu\n\n",
              bench::BenchMovieCount());
  std::printf("%-44s | %9s %10s %7s\n", "constraints (degree ; cardinality)",
              "relations", "attributes", "tuples");

  // Degree forms (Table 1), cardinality fixed.
  auto c10 = MaxTuplesPerRelation(10);
  for (size_t r : {1, 3, 5, 8, 12, 20}) {
    char label[64];
    std::snprintf(label, sizeof(label), "t <= %zu ; card(R') <= 10", r);
    Report(label, *MaxProjections(r), *c10, &*engine);
  }
  for (double w : {0.95, 0.9, 0.8, 0.6, 0.4, 0.2}) {
    char label[64];
    std::snprintf(label, sizeof(label), "w >= %.2f ; card(R') <= 10", w);
    Report(label, *MinPathWeight(w), *c10, &*engine);
  }
  for (size_t l : {1, 2, 3, 4}) {
    char label[64];
    std::snprintf(label, sizeof(label), "length <= %zu ; card(R') <= 10", l);
    Report(label, *MaxPathLength(l), *c10, &*engine);
  }

  // Cardinality forms (Table 2), degree fixed at the paper's w >= 0.9.
  auto d09 = MinPathWeight(0.9);
  for (size_t c : {1, 3, 10, 30, 100}) {
    char label[64];
    std::snprintf(label, sizeof(label), "w >= 0.9 ; card(R') <= %zu", c);
    Report(label, *d09, *MaxTuplesPerRelation(c), &*engine);
  }
  for (size_t c : {5, 20, 50, 200}) {
    char label[64];
    std::snprintf(label, sizeof(label), "w >= 0.9 ; card(D') <= %zu", c);
    Report(label, *d09, *MaxTotalTuples(c), &*engine);
  }

  // Conjunctions ("a combination of those is also possible").
  {
    std::vector<std::unique_ptr<DegreeConstraint>> dparts;
    dparts.push_back(MinPathWeight(0.8));
    dparts.push_back(MaxPathLength(2));
    auto d = AllOf(std::move(dparts));
    std::vector<std::unique_ptr<CardinalityConstraint>> cparts;
    cparts.push_back(MaxTuplesPerRelation(10));
    cparts.push_back(MaxTotalTuples(25));
    auto c = AllOf(std::move(cparts));
    Report("w>=0.8 AND len<=2 ; R'<=10 AND D'<=25", *d, *c, &*engine);
  }
  return 0;
}
