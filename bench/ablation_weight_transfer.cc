// Ablation: the weight-transfer function (paper §3.2).
//
// "The weight of a path is a function of the weight of constituent edges,
//  and should decrease as the length of the path increases. In our
//  implementation, we have chosen multiplication as this function."
//
// This harness varies the per-hop length-decay lambda of
//   w(p) = (prod_i w_i) * lambda^(len-1)
// (lambda = 1 is the paper's multiplication) and reports, for the running
// query's token relations under the paper's w >= 0.9 threshold and a sweep
// of thresholds, how far the result schema reaches: relations included,
// attributes projected, and the mean length of accepted projection paths.
// Smaller lambdas trade breadth for locality without touching edge weights
// — the knob a designer would use when transitive relevance should fade
// faster than the edge weights alone imply.

#include <cstdio>

#include "datagen/movies_dataset.h"
#include "precis/schema_generator.h"

int main() {
  using namespace precis;
  auto graph = BuildMoviesGraph();
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  std::printf("Weight-transfer ablation, tokens in {DIRECTOR, ACTOR}\n\n");
  std::printf("%8s %10s | %9s %10s %12s\n", "lambda", "threshold",
              "relations", "attributes", "mean length");
  for (double threshold : {0.9, 0.7, 0.5, 0.3}) {
    for (double lambda : {1.0, 0.95, 0.9, 0.8, 0.7, 0.5}) {
      ResultSchemaGenerator generator(&*graph);
      if (!generator.set_length_decay(lambda).ok()) return 1;
      auto d = MinPathWeight(threshold);
      auto schema = generator.Generate(
          {std::string("DIRECTOR"), "ACTOR"}, *d);
      if (!schema.ok()) {
        std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
        return 1;
      }
      double mean_length = 0.0;
      for (const Path& p : schema->projection_paths()) {
        mean_length += static_cast<double>(p.length());
      }
      if (!schema->projection_paths().empty()) {
        mean_length /= static_cast<double>(schema->projection_paths().size());
      }
      std::printf("%8.2f %10.2f | %9zu %10zu %12.2f\n", lambda, threshold,
                  schema->relations().size(),
                  schema->TotalProjectedAttributes(), mean_length);
    }
    std::printf("\n");
  }
  return 0;
}
