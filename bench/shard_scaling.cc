// Sharded scatter-gather result-database generation: the sequential
// single-engine Fig. 5 walk vs the same walk scattered across N hash
// partitions behind ShardedResultDatabaseGenerator (DESIGN.md §15).
//
// Sweep: shards in {1, 2, 4, 8} x {cpu, sim-io} x cardinality points.
// The shards=1 row IS the sequential single-engine generator (that is what
// ShardedPrecisEngine delegates to at one shard), so speedup_N = seq_ms /
// shardN_ms compares real serving shapes, not two codepaths of the same
// binary.
//
//   * cpu: materialization is pure compute; the scatter wins by running
//     per-shard columnar kernels and posting-list merges on the pool while
//     the coordinator replays the plan.
//   * sim-io: every accepted tuple also pays PRECIS_BENCH_LATENCY_NS of
//     simulated storage latency (the paper's §6 setting), overlapped
//     across shard chunk tasks.
//
// Every sharded run is byte-compared (storage/serialization) against the
// sequential database, and the report fields (total tuples, executed
// edges, truncations) must match too: the bench doubles as the shard
// determinism gate ci.sh runs in smoke mode:
//
//   PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 ./shard_scaling
//
// Knobs: PRECIS_BENCH_MOVIES, PRECIS_BENCH_LATENCY_NS (default 20000),
// PRECIS_BENCH_OUT (default BENCH_shard.json).
//
// Full mode additionally gates on the headline claims at 8 shards on the
// largest cardinality point: >= 2x sim-io speedup always, and >= 2x
// cpu-mode speedup when the machine has >= 8 hardware threads (pure
// compute cannot speed up past the core count; on a smaller machine the
// cpu number is reported but not gated).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/task_pool.h"
#include "precis/constraints.h"
#include "precis/database_generator.h"
#include "precis/schema_generator.h"
#include "shard/sharded_database.h"
#include "shard/sharded_dbgen.h"
#include "storage/serialization.h"

namespace precis {
namespace {

using Clock = std::chrono::steady_clock;

struct RunOutcome {
  double ms = 0.0;
  std::string bytes;
  size_t total_tuples = 0;
  std::vector<std::string> executed_edges;
  size_t truncated = 0;
};

std::string Serialize(const Database& db) {
  std::ostringstream os;
  if (!SaveDatabase(db, &os).ok()) {
    std::fprintf(stderr, "serialize failed\n");
    std::exit(1);
  }
  return os.str();
}

RunOutcome FillOutcome(double ms, const Database& db,
                       const DbGenReport& report) {
  RunOutcome outcome;
  outcome.ms = ms;
  outcome.bytes = Serialize(db);
  outcome.total_tuples = report.total_tuples;
  outcome.executed_edges = report.executed_edges;
  outcome.truncated = report.truncated_relations.size();
  return outcome;
}

RunOutcome RunSequential(const Database& db, const ResultSchema& schema,
                         const SeedTids& seeds, const CardinalityConstraint& c,
                         const DbGenOptions& options) {
  ResultDatabaseGenerator gen(&db);
  auto start = Clock::now();
  auto result = gen.Generate(schema, seeds, c, options);
  double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  if (!result.ok()) {
    std::fprintf(stderr, "generate: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return FillOutcome(ms, *result, gen.last_report());
}

RunOutcome RunSharded(const ShardedDatabase& sharded,
                      const ResultSchema& schema, const SeedTids& seeds,
                      const CardinalityConstraint& c,
                      const DbGenOptions& options) {
  ShardedResultDatabaseGenerator gen(&sharded);
  auto start = Clock::now();
  auto result = gen.Generate(schema, seeds, c, options);
  double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  if (!result.ok()) {
    std::fprintf(stderr, "sharded generate: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return FillOutcome(ms, *result, gen.last_report());
}

int Main() {
  const bool smoke = std::getenv("PRECIS_BENCH_SMOKE") != nullptr;
  const uint64_t latency_ns = bench::EnvSize("PRECIS_BENCH_LATENCY_NS", 20000);
  const std::string out_path =
      bench::EnvString("PRECIS_BENCH_OUT", "BENCH_shard.json");

  const MoviesDataset& dataset = bench::SharedDataset();

  // Same DIRECTOR-rooted workload as the parallel_dbgen bench: deep enough
  // that the walk crosses several to-N joins and real volume moves.
  ResultSchemaGenerator schema_gen(&dataset.graph());
  auto schema =
      schema_gen.Generate({std::string("DIRECTOR")}, *MinPathWeight(0.5));
  if (!schema.ok()) {
    std::fprintf(stderr, "schema: %s\n", schema.status().ToString().c_str());
    return 1;
  }
  auto director = dataset.db().GetRelation("DIRECTOR");
  if (!director.ok()) return 1;
  RelationNodeId director_id = *dataset.graph().RelationId("DIRECTOR");
  const size_t num_seeds =
      std::min<size_t>((*director)->num_tuples(), smoke ? 16 : 1024);
  SeedTids seeds;
  for (Tid tid = 0; tid < num_seeds; ++tid) {
    seeds[director_id].push_back(tid);
  }

  const std::vector<size_t> cardinalities =
      smoke ? std::vector<size_t>{200, 800}
            : std::vector<size_t>{1000, 4000, 16000, 64000};
  const std::vector<size_t> shard_counts = {2, 4, 8};

  // Partition once per shard count (that cost is engine construction, not
  // per-query work) and give each its own matching pool.
  std::map<size_t, ShardedDatabase> partitions;
  std::map<size_t, std::unique_ptr<TaskPool>> pools;
  for (size_t n : shard_counts) {
    auto partitioned = ShardedDatabase::Partition(dataset.db(), n);
    if (!partitioned.ok()) {
      std::fprintf(stderr, "partition(%zu): %s\n", n,
                   partitioned.status().ToString().c_str());
      return 1;
    }
    partitions.emplace(n, std::move(*partitioned));
    pools[n] = std::make_unique<TaskPool>(n);
  }

  size_t mismatches = 0;
  double speedup_8s_largest_cpu = 0.0;
  double speedup_8s_largest_io = 0.0;

  std::ostringstream json;
  json << "{\n  \"bench\": \"shard_scaling\",\n"
       << "  \"movies\": " << dataset.config().num_movies << ",\n"
       << "  \"seeds\": " << num_seeds << ",\n"
       << "  \"latency_ns\": " << latency_ns << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"rows\": [\n";

  std::printf("%-8s %-7s %8s %10s", "mode", "c", "tuples", "s1_ms");
  for (size_t n : shard_counts) std::printf(" %7s%zu", "sh", n);
  for (size_t n : shard_counts) std::printf(" %6s%zu", "spd", n);
  std::printf("\n");

  bool first_row = true;
  for (const char* mode : {"cpu", "sim-io"}) {
    const bool io = std::string(mode) == "sim-io";
    for (size_t c : cardinalities) {
      auto cardinality = MaxTuplesPerRelation(c);
      DbGenOptions options;
      options.strategy = SubsetStrategy::kRoundRobin;
      options.simulated_access_latency_ns = io ? latency_ns : 0;
      options.parallelism = 1;  // scatter width comes from the shard count

      RunOutcome seq = RunSequential(dataset.db(), *schema, seeds,
                                     *cardinality, options);

      std::vector<double> shard_ms;
      std::vector<double> speedups;
      for (size_t n : shard_counts) {
        DbGenOptions shard_options = options;
        shard_options.pool = pools[n].get();
        RunOutcome sharded = RunSharded(partitions.at(n), *schema, seeds,
                                        *cardinality, shard_options);
        if (sharded.bytes != seq.bytes ||
            sharded.total_tuples != seq.total_tuples ||
            sharded.executed_edges != seq.executed_edges ||
            sharded.truncated != seq.truncated) {
          std::fprintf(stderr,
                       "MISMATCH: mode=%s c=%zu shards=%zu emitted a "
                       "different database or report than the sequential "
                       "single-engine walk\n",
                       mode, c, n);
          ++mismatches;
        }
        shard_ms.push_back(sharded.ms);
        speedups.push_back(sharded.ms > 0 ? seq.ms / sharded.ms : 0.0);
      }
      if (c == cardinalities.back()) {
        (io ? speedup_8s_largest_io : speedup_8s_largest_cpu) =
            speedups.back();
      }

      std::printf("%-8s %-7zu %8zu %10.2f", mode, c, seq.total_tuples,
                  seq.ms);
      for (double ms : shard_ms) std::printf(" %8.2f", ms);
      for (double s : speedups) std::printf(" %6.2fx", s);
      std::printf("\n");

      if (!first_row) json << ",\n";
      first_row = false;
      json << "    {\"mode\": \"" << mode << "\", \"c\": " << c
           << ", \"tuples\": " << seq.total_tuples
           << ", \"shards1_ms\": " << seq.ms << ", \"sharded\": [";
      for (size_t i = 0; i < shard_counts.size(); ++i) {
        json << (i > 0 ? ", " : "") << "{\"shards\": " << shard_counts[i]
             << ", \"ms\": " << shard_ms[i] << ", \"speedup\": " << speedups[i]
             << "}";
      }
      json << "]}";
    }
  }

  json << "\n  ],\n  \"mismatches\": " << mismatches
       << ",\n  \"speedup_8s_largest_c_cpu\": " << speedup_8s_largest_cpu
       << ",\n  \"speedup_8s_largest_c_sim_io\": " << speedup_8s_largest_io
       << ",\n  \"hardware_threads\": "
       << std::thread::hardware_concurrency() << "\n}\n";

  std::ofstream out(out_path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json.str();
  std::printf("mismatches=%zu cpu_speedup_8s=%0.2fx io_speedup_8s=%0.2fx "
              "-> %s\n",
              mismatches, speedup_8s_largest_cpu, speedup_8s_largest_io,
              out_path.c_str());

  // Gates. Byte-identity always; the >= 2x headlines only in full mode
  // (smoke datasets are too small for stable timing).
  if (mismatches != 0) {
    std::fprintf(stderr, "FAIL: %zu sharded/sequential mismatches\n",
                 mismatches);
    return 1;
  }
  if (!smoke && speedup_8s_largest_io < 2.0) {
    std::fprintf(stderr,
                 "FAIL: sim-io speedup at 8 shards on the largest "
                 "cardinality is %.2fx (< 2x)\n",
                 speedup_8s_largest_io);
    return 1;
  }
  const unsigned cores = std::thread::hardware_concurrency();
  if (!smoke && cores >= 8 && speedup_8s_largest_cpu < 2.0) {
    std::fprintf(stderr,
                 "FAIL: cpu-mode speedup at 8 shards on the largest "
                 "cardinality is %.2fx (< 2x on %u hardware threads)\n",
                 speedup_8s_largest_cpu, cores);
    return 1;
  }
  if (!smoke && cores < 8) {
    std::fprintf(stderr,
                 "note: cpu-mode 2x gate skipped (%u hardware threads < 8; "
                 "pure compute cannot beat the core count)\n",
                 cores);
  }
  return 0;
}

}  // namespace
}  // namespace precis

int main() { return precis::Main(); }
