// Supporting component (§4): inverted-index construction and probe cost.
//
// The paper treats index lookup as negligible and excludes it from the cost
// model ("ignoring the initial overhead for finding the tuples that contain
// the query keywords"); this bench quantifies that assumption at several
// database scales up to the paper's 34k films.

#include <benchmark/benchmark.h>

#include <map>

#include "common/random.h"
#include "datagen/movies_dataset.h"
#include "datagen/workload.h"
#include "text/inverted_index.h"

namespace precis {
namespace {

const MoviesDataset& DatasetFor(size_t movies) {
  static std::map<size_t, MoviesDataset>* datasets =
      new std::map<size_t, MoviesDataset>();
  auto it = datasets->find(movies);
  if (it == datasets->end()) {
    MoviesConfig config;
    config.num_movies = movies;
    auto ds = MoviesDataset::Create(config);
    if (!ds.ok()) std::abort();
    it = datasets->emplace(movies, std::move(*ds)).first;
  }
  return it->second;
}

void BM_IndexBuild(benchmark::State& state) {
  const MoviesDataset& dataset = DatasetFor(state.range(0));
  size_t words = 0;
  size_t postings = 0;
  for (auto _ : state) {
    auto index = InvertedIndex::Build(dataset.db());
    if (!index.ok()) {
      state.SkipWithError(index.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(index);
    words = index->num_words();
    postings = index->num_postings();
  }
  state.counters["words"] = static_cast<double>(words);
  state.counters["postings"] = static_cast<double>(postings);
  state.counters["tuples"] = static_cast<double>(dataset.db().TotalTuples());
}

void BM_IndexProbe(benchmark::State& state) {
  const MoviesDataset& dataset = DatasetFor(state.range(0));
  auto index = InvertedIndex::Build(dataset.db());
  if (!index.ok()) {
    state.SkipWithError(index.status().ToString().c_str());
    return;
  }
  Rng rng(5);
  std::vector<std::string> tokens;
  for (int i = 0; i < 64; ++i) {
    tokens.push_back(
        *RandomToken(dataset.db(), "DIRECTOR", "dname", &rng));
  }
  size_t run = 0;
  for (auto _ : state) {
    auto occurrences = index->Lookup(tokens[run++ % tokens.size()]);
    benchmark::DoNotOptimize(occurrences);
  }
}

BENCHMARK(BM_IndexBuild)
    ->ArgName("movies")
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(15000)
    ->Arg(34000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndexProbe)
    ->ArgName("movies")
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(15000)
    ->Arg(34000);

}  // namespace
}  // namespace precis

BENCHMARK_MAIN();
