// Per-kernel microbenchmarks for the columnar data layout (DESIGN.md §13):
//
//   * index_probe     — ColumnIndex equality probes (LookupEquals through
//                       the open-addressing table) on a join attribute.
//   * fetch_project   — materializing projected tuples for a tid list, row
//                       path (tuple heap walk + per-cell copy) vs the
//                       columnar ProjectRows kernel, identical output
//                       required cell-for-cell.
//   * token_lookup    — InvertedIndex::Lookup over words drawn from the
//                       indexed text (symbol-id postings path).
//   * scan_equals     — Column::ScanEquals (SIMD-dispatched) vs the scalar
//                       reference, tid-for-tid identical output required
//                       (DESIGN.md §16).
//   * batch_probe     — ColumnIndex::LookupBatch (software-prefetch
//                       pipeline) vs sequential Lookup, result-equivalent.
//   * phrase_lookup   — multi-word InvertedIndex::Lookup (galloping
//                       postings intersection) over phrases drawn from the
//                       indexed titles; every phrase must hit.
//
// Each kernel gates on correctness (probe results vs a sequential scan,
// columnar cells vs row cells, SIMD tids vs scalar tids, batched postings
// vs sequential, every known word and phrase found); full mode
// additionally gates on the columnar fetch+project kernel not being slower
// than the row path it replaced. ci.sh runs the smoke form:
//
//   PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 ./kernels_bench
//
// Knobs: PRECIS_BENCH_MOVIES (dataset size), PRECIS_BENCH_OUT (report
// path, default BENCH_kernels.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/execution_context.h"
#include "storage/columnar.h"
#include "storage/relation.h"
#include "text/inverted_index.h"
#include "text/tokenizer.h"

namespace precis {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Best-of-R wall time of `fn` in milliseconds (min over repetitions is
/// the standard noise filter for micro-kernels).
template <typename Fn>
double BestOf(size_t reps, Fn&& fn) {
  double best = 0.0;
  for (size_t r = 0; r < reps; ++r) {
    auto start = Clock::now();
    fn();
    double ms = MsSince(start);
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

struct KernelRow {
  std::string name;
  double ms = 0.0;       // best-of wall time for `ops` operations
  uint64_t ops = 0;      // operations in one timed pass
  double aux = 0.0;      // kernel-specific (speedup / hit count)
};

int Main() {
  const bool smoke = std::getenv("PRECIS_BENCH_SMOKE") != nullptr;
  const std::string out_path =
      bench::EnvString("PRECIS_BENCH_OUT", "BENCH_kernels.json");
  const size_t reps = smoke ? 3 : 7;

  const MoviesDataset& dataset = bench::SharedDataset();
  const Database& db = dataset.db();
  auto cast_rel = db.GetRelation("CAST");
  auto movie_rel = db.GetRelation("MOVIE");
  if (!cast_rel.ok() || !movie_rel.ok()) {
    std::fprintf(stderr, "bench dataset is missing CAST/MOVIE\n");
    return 1;
  }
  const Relation& cast = **cast_rel;
  const Relation& movie = **movie_rel;

  std::vector<KernelRow> rows;

  // --- index_probe: equality probes on CAST.mid (indexed, many tids per
  // key) with every MOVIE primary key as the probe set.
  {
    auto keys = movie.DistinctValues("mid");
    if (!keys.ok() || keys->empty()) {
      std::fprintf(stderr, "no MOVIE.mid keys\n");
      return 1;
    }
    uint64_t hits = 0;
    double ms = BestOf(reps, [&] {
      hits = 0;
      for (const Value& key : *keys) {
        auto tids = cast.LookupEquals("mid", key);
        if (tids.ok()) hits += tids->size();
      }
    });
    // Correctness: a sample of probes must agree with a sequential scan.
    const size_t attr_mid = 1;  // CAST{cid, mid, aid, role}
    for (size_t s = 0; s < keys->size(); s += keys->size() / 7 + 1) {
      const Value& key = (*keys)[s];
      auto probed = cast.LookupEquals("mid", key);
      std::vector<Tid> scanned;
      for (Tid t = 0; t < cast.num_tuples(); ++t) {
        if (cast.tuple(t)[attr_mid] == key) scanned.push_back(t);
      }
      if (!probed.ok() || *probed != scanned) {
        std::fprintf(stderr, "index_probe mismatch for key %s\n",
                     key.ToString().c_str());
        return 1;
      }
    }
    rows.push_back({"index_probe", ms, keys->size(), double(hits)});
  }

  // --- fetch_project: the dbgen chunk-materialization kernel, before vs
  // after. Before: one charged FetchPrevalidated per tuple plus per-cell
  // copies out of the row heap (what the chunk tasks used to run). After:
  // one bulk ProjectRows call over the columnar mirror. Both charge the
  // same tuple-fetch totals.
  {
    std::vector<Tid> tids = movie.AllTids();
    const std::vector<size_t> projection = {1, 2};  // title, year
    const size_t width = projection.size();
    std::vector<Value> row_out(tids.size() * width);
    std::vector<Value> col_out(tids.size() * width);
    ExecutionContext row_ctx;
    ExecutionContext col_ctx;

    double row_ms = BestOf(reps, [&] {
      for (size_t i = 0; i < tids.size(); ++i) {
        const Tuple& t = *movie.FetchPrevalidated(tids[i], &row_ctx);
        for (size_t j = 0; j < width; ++j) {
          row_out[i * width + j] = t[projection[j]];
        }
      }
    });
    double col_ms = BestOf(reps, [&] {
      movie.ProjectRows(tids.data(), tids.size(), projection, col_out.data(),
                        &col_ctx);
    });
    if (row_out != col_out) {
      std::fprintf(stderr, "fetch_project: columnar cells != row cells\n");
      return 1;
    }
    rows.push_back({"fetch_project_row", row_ms, tids.size(), 0.0});
    rows.push_back(
        {"fetch_project_columnar", col_ms, tids.size(), row_ms / col_ms});
  }

  // --- token_lookup: single-word postings lookups over words drawn from
  // the indexed movie titles.
  {
    auto index = InvertedIndex::Build(db);
    if (!index.ok()) {
      std::fprintf(stderr, "index build: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    auto titles = movie.DistinctValues("title");
    if (!titles.ok()) return 1;
    std::vector<std::string> words;
    for (const Value& title : *titles) {
      for (std::string& w : TokenizeWords(title.AsString())) {
        words.push_back(std::move(w));
      }
      if (words.size() >= 4000) break;
    }
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    uint64_t found = 0;
    double ms = BestOf(reps, [&] {
      found = 0;
      for (const std::string& w : words) {
        if (!index->Lookup(w)->empty()) ++found;
      }
    });
    // Every word came out of an indexed title, so every lookup must hit.
    if (found != words.size()) {
      std::fprintf(stderr, "token_lookup: %llu/%zu words found\n",
                   static_cast<unsigned long long>(found), words.size());
      return 1;
    }
    rows.push_back({"token_lookup", ms, words.size(), double(found)});

    // --- phrase_lookup: two-word phrases from consecutive title words
    // exercise the multi-word path — galloping intersection of the
    // per-word postings, then the phrase-adjacency filter. Every phrase
    // was lifted from an indexed title, so every lookup must hit.
    std::vector<std::string> phrases;
    for (const Value& title : *titles) {
      std::vector<std::string> tw = TokenizeWords(title.AsString());
      for (size_t i = 0; i + 1 < tw.size(); ++i) {
        phrases.push_back(tw[i] + " " + tw[i + 1]);
      }
      if (phrases.size() >= 2000) break;
    }
    std::sort(phrases.begin(), phrases.end());
    phrases.erase(std::unique(phrases.begin(), phrases.end()),
                  phrases.end());
    if (!phrases.empty()) {
      uint64_t phrase_hits = 0;
      double phrase_ms = BestOf(reps, [&] {
        phrase_hits = 0;
        for (const std::string& p : phrases) {
          if (!index->Lookup(p)->empty()) ++phrase_hits;
        }
      });
      if (phrase_hits != phrases.size()) {
        std::fprintf(stderr, "phrase_lookup: %llu/%zu phrases found\n",
                     static_cast<unsigned long long>(phrase_hits),
                     phrases.size());
        return 1;
      }
      rows.push_back({"phrase_lookup", phrase_ms, phrases.size(),
                      double(phrase_hits)});
    }
  }

  // --- scan_equals: the unindexed equality scan, SIMD dispatch vs the
  // scalar reference on CAST.mid (int64 payloads). The two variants must
  // emit the exact same tid sequence for every probed key (the §16
  // equivalence gate); aux reports scalar_ms / simd_ms.
  {
    auto keys = movie.DistinctValues("mid");
    if (!keys.ok() || keys->empty()) return 1;
    const Column& col = cast.column(1);  // CAST{cid, mid, aid, role}
    std::vector<uint64_t> key_bits;
    for (const Value& key : *keys) {
      auto bits = Column::KeyBits(key, col.type());
      if (bits) key_bits.push_back(*bits);
    }
    std::vector<Tid> simd_tids;
    std::vector<Tid> scalar_tids;
    for (uint64_t bits : key_bits) {
      simd_tids.clear();
      scalar_tids.clear();
      col.ScanEquals(bits, &simd_tids);
      col.ScanEqualsScalar(bits, &scalar_tids);
      if (simd_tids != scalar_tids) {
        std::fprintf(stderr,
                     "GATE FAILED: scan_equals SIMD tids != scalar tids\n");
        return 1;
      }
    }
    std::vector<Tid> scratch;
    double simd_ms = BestOf(reps, [&] {
      for (uint64_t bits : key_bits) {
        scratch.clear();
        col.ScanEquals(bits, &scratch);
      }
    });
    double scalar_ms = BestOf(reps, [&] {
      for (uint64_t bits : key_bits) {
        scratch.clear();
        col.ScanEqualsScalar(bits, &scratch);
      }
    });
    rows.push_back({"scan_equals_scalar", scalar_ms, key_bits.size(), 0.0});
    rows.push_back({"scan_equals_simd", simd_ms, key_bits.size(),
                    scalar_ms / simd_ms});
  }

  // --- batch_probe: ColumnIndex::LookupBatch's prefetch pipeline vs n
  // sequential Lookup calls on a freshly built CAST.mid index. Posting
  // lists must be pointer-identical per key (same table, same probes).
  {
    auto keys = movie.DistinctValues("mid");
    if (!keys.ok() || keys->empty()) return 1;
    ColumnIndex index(DataType::kInt64);
    const size_t attr_mid = 1;
    for (Tid t = 0; t < cast.num_tuples(); ++t) {
      index.Insert(cast.tuple(t)[attr_mid], t);
    }
    std::vector<const std::vector<Tid>*> batched(keys->size());
    std::vector<const std::vector<Tid>*> sequential(keys->size());
    double batch_ms = BestOf(reps, [&] {
      index.LookupBatch(keys->data(), keys->size(), batched.data());
    });
    double seq_ms = BestOf(reps, [&] {
      for (size_t i = 0; i < keys->size(); ++i) {
        sequential[i] = &index.Lookup((*keys)[i]);
      }
    });
    for (size_t i = 0; i < keys->size(); ++i) {
      if (batched[i] != sequential[i]) {
        std::fprintf(stderr,
                     "GATE FAILED: batch_probe postings != sequential\n");
        return 1;
      }
    }
    rows.push_back({"index_probe_sequential", seq_ms, keys->size(), 0.0});
    rows.push_back(
        {"index_probe_batched", batch_ms, keys->size(), seq_ms / batch_ms});
  }

  std::printf("%-24s %10s %10s %14s %10s\n", "kernel", "ms", "ops",
              "ns_per_op", "aux");
  for (const KernelRow& r : rows) {
    std::printf("%-24s %10.3f %10llu %14.1f %10.2f\n", r.name.c_str(), r.ms,
                static_cast<unsigned long long>(r.ops),
                r.ops == 0 ? 0.0 : r.ms * 1e6 / double(r.ops), r.aux);
  }

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"kernels\",\n  \"movies\": "
      << bench::BenchMovieCount() << ",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n  \"kernels\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"ms\": " << r.ms
        << ", \"ops\": " << r.ops << ", \"ns_per_op\": "
        << (r.ops == 0 ? 0.0 : r.ms * 1e6 / double(r.ops))
        << ", \"aux\": " << r.aux << "}" << (i + 1 < rows.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  out.close();

  // Full-mode perf gate: the columnar kernel must not lose to the row path
  // it replaced (smoke datasets are too small to time meaningfully).
  if (!smoke) {
    for (const KernelRow& r : rows) {
      if (r.name == "fetch_project_columnar" && r.aux < 1.0) {
        std::fprintf(stderr,
                     "GATE FAILED: columnar fetch+project %.2fx of row path "
                     "(need >= 1.0x)\n",
                     r.aux);
        return 1;
      }
    }
  }
  std::printf("-> %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace precis

int main() { return precis::Main(); }
