// Scalability: end-to-end précis answering as the database grows.
//
// The paper fixes its database (the 34k-film IMDB dump) and varies the
// constraints; a downstream adopter's first question is the complementary
// one — how does answer latency move with database size? Sweeps 1k..34k
// movies and reports the full Answer() pipeline (index lookup + schema
// generation + database generation) plus the one-off engine build cost
// (dominated by inverted-index construction).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "common/random.h"
#include "datagen/movies_dataset.h"
#include "datagen/workload.h"
#include "precis/engine.h"

namespace precis {
namespace {

struct Sized {
  std::unique_ptr<MoviesDataset> dataset;
  std::unique_ptr<PrecisEngine> engine;
  std::vector<std::string> tokens;
};

const Sized& SizedFor(size_t movies) {
  static std::map<size_t, Sized>* cache = new std::map<size_t, Sized>();
  auto it = cache->find(movies);
  if (it == cache->end()) {
    MoviesConfig config;
    config.num_movies = movies;
    auto ds = MoviesDataset::Create(config);
    if (!ds.ok()) std::abort();
    Sized sized;
    sized.dataset = std::make_unique<MoviesDataset>(std::move(*ds));
    auto engine =
        PrecisEngine::Create(&sized.dataset->db(), &sized.dataset->graph());
    if (!engine.ok()) std::abort();
    sized.engine = std::make_unique<PrecisEngine>(std::move(*engine));
    Rng rng(3);
    for (int i = 0; i < 32; ++i) {
      sized.tokens.push_back(
          *RandomToken(sized.dataset->db(), "DIRECTOR", "dname", &rng));
    }
    it = cache->emplace(movies, std::move(sized)).first;
  }
  return it->second;
}

void BM_AnswerLatency(benchmark::State& state) {
  const Sized& sized = SizedFor(static_cast<size_t>(state.range(0)));
  auto d = MinPathWeight(0.9);
  auto c = MaxTuplesPerRelation(5);
  size_t run = 0;
  size_t total_tuples = 0;
  size_t runs = 0;
  for (auto _ : state) {
    const std::string& token = sized.tokens[run++ % sized.tokens.size()];
    auto answer = sized.engine->Answer(PrecisQuery{{token}}, *d, *c);
    if (!answer.ok()) {
      state.SkipWithError(answer.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(answer);
    total_tuples += answer->database.TotalTuples();
    ++runs;
  }
  if (runs > 0) {
    state.counters["tuples"] =
        static_cast<double>(total_tuples) / static_cast<double>(runs);
    state.counters["db_tuples"] =
        static_cast<double>(sized.dataset->db().TotalTuples());
  }
}

void BM_EngineBuild(benchmark::State& state) {
  const Sized& sized = SizedFor(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto engine =
        PrecisEngine::Create(&sized.dataset->db(), &sized.dataset->graph());
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(engine);
  }
}

BENCHMARK(BM_AnswerLatency)
    ->ArgName("movies")
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(15000)
    ->Arg(34000);
BENCHMARK(BM_EngineBuild)
    ->ArgName("movies")
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(15000)
    ->Arg(34000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace precis

BENCHMARK_MAIN();
