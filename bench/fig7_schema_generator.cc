// Figure 7: Result Schema Generator execution time as a function of the
// degree constraint d (the maximum number of attributes projected in the
// answer), with query tokens contained in a single relation R0.
//
// Paper methodology: "we used 20 randomly generated sets of weights for the
// edges of the database schema graph ... We considered 10 different
// relations as R0. Consequently, each point represents the average of 200
// different experiment runs."  Expected shape: execution time is very small
// (sub-millisecond here) and grows slowly with d.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "datagen/movies_dataset.h"
#include "graph/weight_profile.h"
#include "precis/constraints.h"
#include "precis/schema_generator.h"

namespace precis {
namespace {

constexpr int kWeightSets = 20;

/// The 20 random-weight variants of the movies schema graph, built once.
const std::vector<SchemaGraph>& WeightedGraphs() {
  static const std::vector<SchemaGraph>* graphs = [] {
    auto* out = new std::vector<SchemaGraph>();
    Rng rng(2006);
    for (int i = 0; i < kWeightSets; ++i) {
      auto g = BuildMoviesGraph();
      if (!g.ok() || !RandomizeWeights(&*g, &rng).ok()) std::abort();
      out->push_back(std::move(*g));
    }
    return out;
  }();
  return *graphs;
}

void BM_ResultSchemaGenerator(benchmark::State& state) {
  const std::vector<SchemaGraph>& graphs = WeightedGraphs();
  const size_t degree = static_cast<size_t>(state.range(0));
  auto d = MaxProjections(degree);

  size_t run = 0;
  size_t total_projections = 0;
  size_t total_relations = 0;
  size_t runs = 0;
  for (auto _ : state) {
    // Cycle over weight sets and over each relation as R0: every timed
    // iteration is one (weight set, R0) combination, so the reported mean
    // aggregates over the paper's 20 x #relations grid.
    const SchemaGraph& graph = graphs[run % graphs.size()];
    RelationNodeId r0 = static_cast<RelationNodeId>(
        (run / graphs.size()) % graph.num_relations());
    ++run;
    ResultSchemaGenerator generator(&graph);
    auto schema = generator.Generate(std::vector<RelationNodeId>{r0}, *d);
    if (!schema.ok()) {
      state.SkipWithError(schema.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(schema);
    total_projections += schema->projection_paths().size();
    total_relations += schema->relations().size();
    ++runs;
  }
  state.counters["projections"] =
      static_cast<double>(total_projections) / static_cast<double>(runs);
  state.counters["relations"] =
      static_cast<double>(total_relations) / static_cast<double>(runs);
}

BENCHMARK(BM_ResultSchemaGenerator)
    ->ArgName("d")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(20)
    ->Arg(24)
    ->Arg(28)
    ->Arg(32)
    ->Arg(36)
    ->Arg(40);

}  // namespace
}  // namespace precis

BENCHMARK_MAIN();
