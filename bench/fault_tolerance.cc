// Fault tolerance: service throughput and degradation under injected faults.
//
// Drives PrecisService over a Zipf-skewed movies workload at increasing
// storage fault rates (DESIGN.md §12) and reports, per rate: throughput,
// latency percentiles, and the degradation counters (retries, dropped
// tuples, degraded answers, injector firings). Two gates make it a CI
// correctness check rather than a chart generator:
//
//   1. Zero-fault-overhead gate: the fault machinery must be free when
//      disabled. A service with a present-but-disarmed injector must reach
//      >= 95% of the throughput of a service with no injector at all
//      (best-of-N trials to shave scheduler noise). A regression means a
//      fault check leaked onto the disarmed hot path.
//   2. Robustness gate: at every fault rate, every response is OK (faults
//      degrade answers, they never fail queries) and the metrics add up
//      (failures == 0, degraded answers reported iff tuples were lost).
//
// Standalone (own main) with a JSON report, exits non-zero when a gate
// fails. ci.sh runs it in smoke mode:
//
//   PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 ./fault_tolerance
//
// Knobs: PRECIS_BENCH_MOVIES (dataset size), PRECIS_BENCH_QUERIES (queries
// per run), PRECIS_BENCH_OUT (report path, default
// BENCH_fault_tolerance.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "datagen/movies_dataset.h"
#include "datagen/workload.h"
#include "precis/engine.h"
#include "service/precis_service.h"

namespace precis {
namespace {

using bench::EnvSize;

struct RunResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  PrecisService::Metrics metrics;
};

std::vector<ServiceRequest> MakeWorkload(const std::vector<std::string>& pool,
                                         size_t num_queries, uint64_t seed) {
  ZipfSampler zipf(pool.size(), /*s=*/1.2);
  Rng rng(seed);
  std::vector<ServiceRequest> workload;
  workload.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    ServiceRequest request;
    request.query.tokens = {pool[zipf.Sample(&rng)]};
    request.min_path_weight = 0.5;
    request.tuples_per_relation = 10;
    workload.push_back(std::move(request));
  }
  return workload;
}

RunResult RunOnce(const PrecisEngine* engine, FaultInjector* injector,
                  std::vector<ServiceRequest> workload) {
  PrecisService::Options options;
  options.num_workers = 4;
  options.fault_injector = injector;  // may be nullptr (no machinery at all)
  options.retry_policy.initial_backoff_ns = 1'000;
  auto service = PrecisService::Create(engine, options);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n", service.status().ToString().c_str());
    std::exit(1);
  }
  const size_t num_queries = workload.size();
  auto start = std::chrono::steady_clock::now();
  auto futures = (*service)->SubmitBatch(std::move(workload));
  for (auto& future : futures) {
    ServiceResponse response = future.get();
    if (!response.status.ok()) {
      std::fprintf(stderr, "ROBUSTNESS GATE: query failed under faults: %s\n",
                   response.status.ToString().c_str());
      std::exit(1);
    }
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  RunResult result;
  result.metrics = (*service)->metrics();
  result.qps = seconds > 0 ? static_cast<double>(num_queries) / seconds : 0;
  result.p50_ms = result.metrics.p50_latency_seconds * 1e3;
  result.p99_ms = result.metrics.p99_latency_seconds * 1e3;
  return result;
}

int Main() {
  const bool smoke = std::getenv("PRECIS_BENCH_SMOKE") != nullptr;
  const size_t num_queries =
      EnvSize("PRECIS_BENCH_QUERIES", smoke ? 200 : 1024);
  const size_t overhead_trials = smoke ? 3 : 5;
  const std::string out_path =
      bench::EnvString("PRECIS_BENCH_OUT", "BENCH_fault_tolerance.json");

  MoviesConfig config;
  config.num_movies = bench::BenchMovieCount();
  auto ds = MoviesDataset::Create(config);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  MoviesDataset dataset = std::move(*ds);
  auto created = PrecisEngine::Create(&dataset.db(), &dataset.graph());
  if (!created.ok()) {
    std::fprintf(stderr, "engine: %s\n", created.status().ToString().c_str());
    return 1;
  }
  PrecisEngine engine = std::move(*created);

  std::vector<std::string> pool;
  Rng rng(23);
  for (int i = 0; i < 40; ++i) {
    auto token = RandomToken(dataset.db(), "DIRECTOR", "dname", &rng);
    if (!token.ok()) std::abort();
    pool.push_back(std::move(*token));
  }
  for (int i = 0; i < 12; ++i) {
    auto token = RandomToken(dataset.db(), "GENRE", "genre", &rng);
    if (!token.ok()) std::abort();
    pool.push_back(std::move(*token));
  }

  // --- Gate 1: zero-fault overhead. Interleave baseline (no injector) and
  // disarmed (injector present, every site off) trials; compare the best of
  // each so scheduler noise cancels.
  FaultInjector disarmed(99);  // never armed
  double best_baseline = 0.0;
  double best_disarmed = 0.0;
  for (size_t t = 0; t < overhead_trials; ++t) {
    best_baseline =
        std::max(best_baseline,
                 RunOnce(&engine, nullptr,
                         MakeWorkload(pool, num_queries, 300 + t))
                     .qps);
    best_disarmed =
        std::max(best_disarmed,
                 RunOnce(&engine, &disarmed,
                         MakeWorkload(pool, num_queries, 300 + t))
                     .qps);
  }
  const double overhead =
      best_baseline > 0 ? 1.0 - best_disarmed / best_baseline : 0.0;
  std::printf("zero-fault overhead: baseline=%.1f qps, disarmed=%.1f qps "
              "(%.2f%% overhead)\n",
              best_baseline, best_disarmed, overhead * 100.0);

  // --- Fault-rate sweep.
  const std::vector<double> rates = {0.0, 0.01, 0.1};
  std::ostringstream json;
  json << "{\n  \"bench\": \"fault_tolerance\",\n"
       << "  \"movies\": " << config.num_movies << ",\n"
       << "  \"queries\": " << num_queries << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"baseline_qps\": " << best_baseline << ",\n"
       << "  \"disarmed_qps\": " << best_disarmed << ",\n"
       << "  \"disarmed_overhead\": " << overhead << ",\n  \"runs\": [\n";

  std::printf("%-8s %12s %9s %9s %10s %10s %10s %10s\n", "p", "qps", "p50ms",
              "p99ms", "degraded", "retries", "dropped", "injected");
  bool gate_failed = false;
  uint64_t injected_at_max_rate = 0;
  for (size_t r = 0; r < rates.size(); ++r) {
    const double p = rates[r];
    FaultInjector injector(1234 + r);
    if (p > 0) {
      // Storage sites only: the translator is not on the service path.
      injector.SetSchedule(FaultSite::kIndexProbe,
                           FaultSchedule::Probability(p));
      injector.SetSchedule(FaultSite::kTupleFetch,
                           FaultSchedule::Probability(p));
      injector.SetSchedule(FaultSite::kJoinValueLookup,
                           FaultSchedule::Probability(p));
      injector.SetSchedule(FaultSite::kRelationScan,
                           FaultSchedule::Probability(p));
    }
    RunResult run =
        RunOnce(&engine, &injector, MakeWorkload(pool, num_queries, 700));
    const uint64_t injected = injector.total_injected();
    if (p >= 0.1) injected_at_max_rate = injected;
    std::printf("%-8.3f %12.1f %9.2f %9.2f %10llu %10llu %10llu %10llu\n", p,
                run.qps, run.p50_ms, run.p99_ms,
                static_cast<unsigned long long>(run.metrics.degraded_answers),
                static_cast<unsigned long long>(run.metrics.retries_total),
                static_cast<unsigned long long>(
                    run.metrics.dropped_tuples_total),
                static_cast<unsigned long long>(injected));
    if (run.metrics.failures != 0) {
      std::fprintf(stderr, "ROBUSTNESS GATE: %llu failures at p=%g\n",
                   static_cast<unsigned long long>(run.metrics.failures), p);
      gate_failed = true;
    }
    if (p == 0.0 && (run.metrics.degraded_answers != 0 ||
                     run.metrics.retries_total != 0)) {
      std::fprintf(stderr,
                   "ROBUSTNESS GATE: phantom degradation at p=0 "
                   "(degraded=%llu retries=%llu)\n",
                   static_cast<unsigned long long>(
                       run.metrics.degraded_answers),
                   static_cast<unsigned long long>(run.metrics.retries_total));
      gate_failed = true;
    }
    json << "    {\"p\": " << p << ", \"qps\": " << run.qps
         << ", \"p50_ms\": " << run.p50_ms << ", \"p99_ms\": " << run.p99_ms
         << ",\n     \"degraded_answers\": " << run.metrics.degraded_answers
         << ", \"retries\": " << run.metrics.retries_total
         << ", \"dropped_tuples\": " << run.metrics.dropped_tuples_total
         << ", \"injected\": " << injected << "}"
         << (r + 1 < rates.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path, std::ios::trunc);
  out << json.str();
  out.close();
  std::printf("report: %s\n", out_path.c_str());

  if (injected_at_max_rate == 0) {
    std::fprintf(stderr,
                 "ROBUSTNESS GATE: injector never fired at p=0.1 — the "
                 "fault sites are not wired\n");
    gate_failed = true;
  }
  if (overhead > 0.05) {
    std::fprintf(stderr,
                 "OVERHEAD GATE: disarmed fault machinery costs %.2f%% "
                 "(> 5%%) of baseline throughput\n",
                 overhead * 100.0);
    gate_failed = true;
  }
  if (gate_failed) return 1;
  std::printf("gates passed: overhead %.2f%% <= 5%%, all responses OK, "
              "faults degrade without failing\n",
              overhead * 100.0);
  return 0;
}

}  // namespace
}  // namespace precis

int main() { return precis::Main(); }
