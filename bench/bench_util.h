// Shared fixtures for the experiment benches.
//
// The paper's prototype ran against an IMDB dump with "over 34k films" on
// Oracle 9i; these benches run against the synthetic movies dataset at a
// comparable scale (override with PRECIS_BENCH_MOVIES).

#ifndef PRECIS_BENCH_BENCH_UTIL_H_
#define PRECIS_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/movies_dataset.h"
#include "datagen/workload.h"
#include "precis/database_generator.h"

namespace precis {
namespace bench {

inline size_t BenchMovieCount() {
  const char* env = std::getenv("PRECIS_BENCH_MOVIES");
  if (env != nullptr) {
    long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 20000;
}

/// The shared benchmark dataset, built once per process.
inline const MoviesDataset& SharedDataset() {
  static const MoviesDataset* dataset = [] {
    MoviesConfig config;
    config.num_movies = BenchMovieCount();
    auto ds = MoviesDataset::Create(config);
    if (!ds.ok()) {
      std::fprintf(stderr, "failed to build bench dataset: %s\n",
                   ds.status().ToString().c_str());
      std::abort();
    }
    return new MoviesDataset(std::move(*ds));
  }();
  return *dataset;
}

/// One Result Database Generator workload case: a result schema over a
/// connected set of relations plus random seed tuples of its start relation
/// (the paper's Fig. 8 / Fig. 9 methodology).
struct DbGenCase {
  ResultSchema schema;
  SeedTids seeds;
};

/// Builds `num_chains * num_seed_sets` cases over connected sets of
/// `num_relations` relations, with `seeds_per_set` random seed tuples each.
inline std::vector<DbGenCase> MakeDbGenCases(const MoviesDataset& dataset,
                                             size_t num_relations,
                                             uint64_t seed, size_t num_chains,
                                             size_t num_seed_sets,
                                             size_t seeds_per_set) {
  std::vector<DbGenCase> cases;
  Rng rng(seed);
  for (size_t c = 0; c < num_chains; ++c) {
    auto chain = RandomJoinChain(dataset.graph(), &rng, num_relations);
    if (!chain.ok()) std::abort();
    auto schema = SchemaForChain(dataset.graph(), *chain);
    if (!schema.ok()) std::abort();
    const std::string& start_name =
        dataset.graph().relation_name(chain->start);
    for (size_t s = 0; s < num_seed_sets; ++s) {
      auto tids =
          RandomSeedTids(dataset.db(), start_name, &rng, seeds_per_set);
      if (!tids.ok()) std::abort();
      cases.push_back(DbGenCase{*schema, {{chain->start, *tids}}});
    }
  }
  return cases;
}

}  // namespace bench
}  // namespace precis

#endif  // PRECIS_BENCH_BENCH_UTIL_H_
