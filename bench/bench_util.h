// Shared fixtures for the experiment benches.
//
// The paper's prototype ran against an IMDB dump with "over 34k films" on
// Oracle 9i; these benches run against the synthetic movies dataset at a
// comparable scale (override with PRECIS_BENCH_MOVIES).

#ifndef PRECIS_BENCH_BENCH_UTIL_H_
#define PRECIS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "common/random.h"
#include "datagen/movies_dataset.h"
#include "datagen/workload.h"
#include "precis/database_generator.h"

namespace precis {
namespace bench {

/// Positive-integer environment knob with a fallback (shared by every
/// standalone bench: PRECIS_BENCH_MOVIES, PRECIS_BENCH_QUERIES, ...).
inline size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

/// String environment knob with a fallback (report paths).
inline std::string EnvString(const char* name, const char* fallback) {
  const char* env = std::getenv(name);
  return std::string(env != nullptr ? env : fallback);
}

inline size_t BenchMovieCount() {
  return EnvSize("PRECIS_BENCH_MOVIES", 20000);
}

/// Percentile by linear interpolation between closest ranks (the same
/// estimator PrecisService::metrics() uses). The old nearest-rank rounding
/// degenerated for small n — with two samples every p < 0.75 collapsed to
/// the minimum — which matters for smoke runs that collect a handful of
/// latencies. n=1 returns the sample; empty input returns 0.0.
inline double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) return samples.front();
  if (p >= 1.0) return samples.back();
  double rank = p * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  if (lo + 1 >= samples.size()) return samples.back();
  double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

/// Counter deltas between two snapshots of one cache level (entries and
/// bytes report the 'after' state: they are gauges, not counters).
inline LruCacheStats CacheStatsDelta(const LruCacheStats& after,
                                     const LruCacheStats& before) {
  LruCacheStats d;
  d.hits = after.hits - before.hits;
  d.misses = after.misses - before.misses;
  d.inserts = after.inserts - before.inserts;
  d.evictions = after.evictions - before.evictions;
  d.entries = after.entries;
  d.charge_bytes = after.charge_bytes;
  return d;
}

/// One cache level as a JSON object field: `"<level>": {...}` (no trailing
/// comma or newline; the caller owns the surrounding layout).
inline void AppendCacheJson(std::ostream* os, const char* level,
                            const LruCacheStats& s) {
  *os << "      \"" << level << "\": {\"hits\": " << s.hits
      << ", \"misses\": " << s.misses << ", \"inserts\": " << s.inserts
      << ", \"evictions\": " << s.evictions
      << ", \"hit_rate\": " << s.hit_rate() << "}";
}

/// The shared benchmark dataset, built once per process.
inline const MoviesDataset& SharedDataset() {
  static const MoviesDataset* dataset = [] {
    MoviesConfig config;
    config.num_movies = BenchMovieCount();
    auto ds = MoviesDataset::Create(config);
    if (!ds.ok()) {
      std::fprintf(stderr, "failed to build bench dataset: %s\n",
                   ds.status().ToString().c_str());
      std::abort();
    }
    return new MoviesDataset(std::move(*ds));
  }();
  return *dataset;
}

/// One Result Database Generator workload case: a result schema over a
/// connected set of relations plus random seed tuples of its start relation
/// (the paper's Fig. 8 / Fig. 9 methodology).
struct DbGenCase {
  ResultSchema schema;
  SeedTids seeds;
};

/// Builds `num_chains * num_seed_sets` cases over connected sets of
/// `num_relations` relations, with `seeds_per_set` random seed tuples each.
inline std::vector<DbGenCase> MakeDbGenCases(const MoviesDataset& dataset,
                                             size_t num_relations,
                                             uint64_t seed, size_t num_chains,
                                             size_t num_seed_sets,
                                             size_t seeds_per_set) {
  std::vector<DbGenCase> cases;
  Rng rng(seed);
  for (size_t c = 0; c < num_chains; ++c) {
    auto chain = RandomJoinChain(dataset.graph(), &rng, num_relations);
    if (!chain.ok()) std::abort();
    auto schema = SchemaForChain(dataset.graph(), *chain);
    if (!schema.ok()) std::abort();
    const std::string& start_name =
        dataset.graph().relation_name(chain->start);
    for (size_t s = 0; s < num_seed_sets; ++s) {
      auto tids =
          RandomSeedTids(dataset.db(), start_name, &rng, seeds_per_set);
      if (!tids.ok()) std::abort();
      cases.push_back(DbGenCase{*schema, {{chain->start, *tids}}});
    }
  }
  return cases;
}

}  // namespace bench
}  // namespace precis

#endif  // PRECIS_BENCH_BENCH_UTIL_H_
