// Cache effectiveness: Zipf-skewed query mix, caches off vs on.
//
// A précis feature on a real site sees a heavily skewed query stream: a few
// celebrities dominate while the long tail is asked once (the usual web
// query-log shape). This bench drives PrecisService with a Zipf-distributed
// token mix over several worker-pool sizes and reports throughput and
// latency percentiles with all cache levels (token / schema / answer,
// DESIGN.md §10) disabled vs enabled, plus per-level hit/miss/eviction
// counters. It then interleaves inserts with cached queries and verifies —
// by JSON equality against a from-scratch uncached answer — that epoch
// invalidation never serves a stale answer.
//
// Unlike the google-benchmark experiments, this is a standalone program
// with a machine-readable JSON report (BENCH_cache.json) and a non-zero
// exit code when the cache is ineffective (zero answer-cache hits on a
// repeating workload) or, worse, wrong (any stale answer). ci.sh runs it
// in smoke mode over a tiny dataset:
//
//   PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 ./cache_effectiveness
//
// Knobs: PRECIS_BENCH_MOVIES (dataset size), PRECIS_BENCH_QUERIES (queries
// per run), PRECIS_BENCH_OUT (report path, default BENCH_cache.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "datagen/movies_dataset.h"
#include "datagen/workload.h"
#include "precis/constraints.h"
#include "precis/engine.h"
#include "precis/json_export.h"
#include "service/precis_service.h"

namespace precis {
namespace {

using bench::AppendCacheJson;
using bench::CacheStatsDelta;
using bench::EnvSize;

struct RunResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Zipf-skewed request stream: rank r of the token pool is asked with
/// probability ~ 1/r^s, like a web query log.
std::vector<ServiceRequest> MakeWorkload(const std::vector<std::string>& pool,
                                         size_t num_queries, uint64_t seed) {
  ZipfSampler zipf(pool.size(), /*s=*/1.2);
  Rng rng(seed);
  std::vector<ServiceRequest> workload;
  workload.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    ServiceRequest request;
    request.query.tokens = {pool[zipf.Sample(&rng)]};
    request.min_path_weight = 0.5;
    request.tuples_per_relation = 10;
    workload.push_back(std::move(request));
  }
  return workload;
}

RunResult RunOnce(const PrecisEngine* engine, size_t workers,
                  std::vector<ServiceRequest> workload) {
  PrecisService::Options options;
  options.num_workers = workers;
  auto service = PrecisService::Create(engine, options);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service.status().ToString().c_str());
    std::exit(1);
  }
  const size_t num_queries = workload.size();
  auto start = std::chrono::steady_clock::now();
  auto futures = (*service)->SubmitBatch(std::move(workload));
  for (auto& future : futures) {
    ServiceResponse response = future.get();
    if (!response.status.ok()) {
      std::fprintf(stderr, "query: %s\n",
                   response.status.ToString().c_str());
      std::exit(1);
    }
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  PrecisService::Metrics metrics = (*service)->metrics();
  RunResult result;
  result.qps = seconds > 0 ? static_cast<double>(num_queries) / seconds : 0;
  result.p50_ms = metrics.p50_latency_seconds * 1e3;
  result.p99_ms = metrics.p99_latency_seconds * 1e3;
  return result;
}

/// Interleaves inserts (epoch bumps) with cached queries and compares every
/// cached-path answer against a from-scratch uncached one. Returns the
/// number of mismatches (stale answers served); 0 is the only right answer.
size_t StaleCheck(MoviesDataset* dataset, PrecisEngine* engine,
                  const std::vector<std::string>& pool, size_t rounds) {
  engine->set_caches_enabled(true);
  auto degree = MinPathWeight(0.5);
  auto cardinality = MaxTuplesPerRelation(10);
  DbGenOptions options;
  auto genre = dataset->db().GetRelation("GENRE");
  auto movie = dataset->db().GetRelation("MOVIE");
  if (!genre.ok() || !movie.ok() || (*movie)->num_tuples() == 0) {
    std::fprintf(stderr, "stale check: GENRE/MOVIE missing\n");
    std::exit(1);
  }
  size_t mismatches = 0;
  for (size_t round = 0; round < rounds; ++round) {
    const std::string& token = pool[round % pool.size()];
    PrecisQuery query{{token}};
    // Warm the cache with this token.
    auto warm = engine->AnswerShared(query, *degree, *cardinality, options);
    if (!warm.ok()) std::exit(1);
    // Mutate: a new GENRE tuple joining an existing movie. This bumps the
    // database epoch, so every cached answer must become unreachable.
    int64_t mid = (*movie)->tuple(round % (*movie)->num_tuples())[0].AsInt64();
    auto inserted = (*genre)->Insert(
        {int64_t{900000000} + static_cast<int64_t>(round), mid, "Benchwave"});
    if (!inserted.ok()) std::exit(1);
    // Cached path vs from-scratch: must be byte-identical JSON.
    auto cached = engine->AnswerShared(query, *degree, *cardinality, options);
    auto fresh = engine->Answer(query, *degree, *cardinality, options);
    if (!cached.ok() || !fresh.ok()) std::exit(1);
    if (AnswerToJson(**cached) != AnswerToJson(*fresh)) {
      std::fprintf(stderr, "STALE answer for token '%s' after insert %zu\n",
                   token.c_str(), round);
      ++mismatches;
    }
  }
  return mismatches;
}

int Main() {
  const bool smoke = std::getenv("PRECIS_BENCH_SMOKE") != nullptr;
  const size_t num_queries =
      EnvSize("PRECIS_BENCH_QUERIES", smoke ? 160 : 1024);
  const std::string out_path =
      bench::EnvString("PRECIS_BENCH_OUT", "BENCH_cache.json");

  // A mutable dataset (the stale check inserts into it), not the shared
  // read-only fixture the google-benchmark experiments use.
  MoviesConfig config;
  config.num_movies = bench::BenchMovieCount();
  auto ds = MoviesDataset::Create(config);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  MoviesDataset dataset = std::move(*ds);
  auto created = PrecisEngine::Create(&dataset.db(), &dataset.graph());
  if (!created.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  PrecisEngine engine = std::move(*created);

  // Token pool: mostly multi-word director names (they exercise the phrase
  // path and the token cache) plus a few one-word genres.
  std::vector<std::string> pool;
  Rng rng(17);
  for (int i = 0; i < 48; ++i) {
    auto token = RandomToken(dataset.db(), "DIRECTOR", "dname", &rng);
    if (!token.ok()) std::abort();
    pool.push_back(std::move(*token));
  }
  for (int i = 0; i < 16; ++i) {
    auto token = RandomToken(dataset.db(), "GENRE", "genre", &rng);
    if (!token.ok()) std::abort();
    pool.push_back(std::move(*token));
  }

  const std::vector<size_t> worker_counts =
      smoke ? std::vector<size_t>{2} : std::vector<size_t>{1, 2, 4, 8};

  std::ostringstream json;
  json << "{\n  \"bench\": \"cache_effectiveness\",\n"
       << "  \"movies\": " << config.num_movies << ",\n"
       << "  \"queries\": " << num_queries << ",\n"
       << "  \"zipf_s\": 1.2,\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"runs\": [\n";

  std::printf("%-8s %12s %12s %9s %9s %9s %9s %9s\n", "workers", "qps_off",
              "qps_on", "speedup", "p50off", "p50on", "p99off", "p99on");
  double best_speedup = 0.0;
  for (size_t w = 0; w < worker_counts.size(); ++w) {
    size_t workers = worker_counts[w];
    // Same workload (same seed) for both configurations of this row.
    // Disabling clears every level, so each row starts cold.
    engine.set_caches_enabled(false);
    RunResult off =
        RunOnce(&engine, workers, MakeWorkload(pool, num_queries, 100 + w));
    engine.set_caches_enabled(true);
    LruCacheStats token_before = engine.token_cache_stats();
    LruCacheStats schema_before = engine.schema_cache_stats();
    LruCacheStats answer_before = engine.answer_cache_stats();
    RunResult on =
        RunOnce(&engine, workers, MakeWorkload(pool, num_queries, 100 + w));
    LruCacheStats token_stats =
        CacheStatsDelta(engine.token_cache_stats(), token_before);
    LruCacheStats schema_stats =
        CacheStatsDelta(engine.schema_cache_stats(), schema_before);
    LruCacheStats answer_stats =
        CacheStatsDelta(engine.answer_cache_stats(), answer_before);

    double speedup = off.qps > 0 ? on.qps / off.qps : 0;
    best_speedup = std::max(best_speedup, speedup);
    std::printf("%-8zu %12.1f %12.1f %8.2fx %7.2fms %7.2fms %7.2fms "
                "%7.2fms\n",
                workers, off.qps, on.qps, speedup, off.p50_ms, on.p50_ms,
                off.p99_ms, on.p99_ms);

    json << "    {\"workers\": " << workers << ", \"qps_off\": " << off.qps
         << ", \"qps_on\": " << on.qps << ", \"speedup\": " << speedup
         << ",\n     \"p50_off_ms\": " << off.p50_ms
         << ", \"p50_on_ms\": " << on.p50_ms
         << ", \"p99_off_ms\": " << off.p99_ms
         << ", \"p99_on_ms\": " << on.p99_ms << ",\n     \"caches\": {\n";
    AppendCacheJson(&json, "token", token_stats);
    json << ",\n";
    AppendCacheJson(&json, "schema", schema_stats);
    json << ",\n";
    AppendCacheJson(&json, "answer", answer_stats);
    json << "\n     }}" << (w + 1 < worker_counts.size() ? "," : "") << "\n";
  }

  // Correctness gate: interleave inserts with cached queries.
  size_t stale = StaleCheck(&dataset, &engine, pool, smoke ? 4 : 8);
  LruCacheStats total_answer = engine.answer_cache_stats();

  json << "  ],\n  \"stale_mismatches\": " << stale
       << ",\n  \"answer_cache_total\": {\"hits\": " << total_answer.hits
       << ", \"misses\": " << total_answer.misses
       << ", \"hit_rate\": " << total_answer.hit_rate() << "},\n"
       << "  \"best_speedup\": " << best_speedup << "\n}\n";

  std::ofstream out(out_path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json.str();
  std::printf("stale_mismatches=%zu answer_hit_rate=%.2f best_speedup=%.2fx"
              " -> %s\n",
              stale, total_answer.hit_rate(), best_speedup,
              out_path.c_str());

  // Gates: a repeating Zipf workload that never hits the answer cache means
  // the cache is broken; a stale answer means the invalidation is broken.
  if (total_answer.hits == 0) {
    std::fprintf(stderr, "FAIL: zero answer-cache hits on a Zipf workload\n");
    return 1;
  }
  if (stale != 0) {
    std::fprintf(stderr, "FAIL: %zu stale answers served\n", stale);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace precis

int main() { return precis::Main(); }
