// Figure 8: Result Database Generator (NaiveQ) execution time as a function
// of the per-relation tuple budget c_R, with n_R = 4 relations.
//
// Paper methodology: "We used 10 sets of 4 relations, making sure that there
// is no relation in any set that does not join with another relation of this
// set. For each set, we considered [a] relation as the initial relation R0
// ... and 5 random sets of tuples as the seed ... each point represents the
// average of 200 different experiment runs."
//
// Expected shape: "time increases almost linearly with c_R, which seems to
// be in agreement with Formula (2)."

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "precis/constraints.h"

namespace precis {
namespace {

constexpr size_t kNumRelations = 4;

const std::vector<bench::DbGenCase>& Cases() {
  static const std::vector<bench::DbGenCase>* cases = [] {
    return new std::vector<bench::DbGenCase>(bench::MakeDbGenCases(
        bench::SharedDataset(), kNumRelations, /*seed=*/8, /*num_chains=*/10,
        /*num_seed_sets=*/5, /*seeds_per_set=*/30));
  }();
  return *cases;
}

void BM_DbGenNaiveQ(benchmark::State& state) {
  const MoviesDataset& dataset = bench::SharedDataset();
  const std::vector<bench::DbGenCase>& cases = Cases();
  const size_t c_r = static_cast<size_t>(state.range(0));
  auto constraint = MaxTuplesPerRelation(c_r);
  DbGenOptions options;
  options.strategy = SubsetStrategy::kNaiveQ;

  size_t run = 0;
  size_t total_tuples = 0;
  size_t runs = 0;
  AccessStats before = dataset.db().stats();
  for (auto _ : state) {
    const bench::DbGenCase& c = cases[run++ % cases.size()];
    ResultDatabaseGenerator generator(&dataset.db());
    auto result = generator.Generate(c.schema, c.seeds, *constraint, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(result);
    total_tuples += result->TotalTuples();
    ++runs;
  }
  AccessStats after = dataset.db().stats();
  if (runs > 0) {
    state.counters["tuples"] =
        static_cast<double>(total_tuples) / static_cast<double>(runs);
    state.counters["fetches"] =
        static_cast<double>(after.tuple_fetches - before.tuple_fetches) /
        static_cast<double>(runs);
    state.counters["probes"] =
        static_cast<double>(after.index_probes - before.index_probes) /
        static_cast<double>(runs);
  }
}

BENCHMARK(BM_DbGenNaiveQ)
    ->ArgName("c_R")
    ->DenseRange(10, 90, 10);

}  // namespace
}  // namespace precis

BENCHMARK_MAIN();
