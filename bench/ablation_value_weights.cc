// Ablation: data-value weights (§7's "weights on data values", implemented
// as ranked subset selection) vs the paper's arbitrary-subset strategies.
//
// Setup: précis answers about directors, MOVIE tuples weighted by recency
// (year, min-max normalized). Measured per budget c_R: the mean normalized
// weight ("importance") of the movie tuples each strategy keeps, and the
// time it costs. Expected shape: ranked selection keeps clearly heavier
// tuples whenever the budget truncates, converging with the baselines as
// c_R grows past the neighbourhood size; its latency overhead is the extra
// candidate collection + sort.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "precis/constraints.h"
#include "precis/schema_generator.h"
#include "precis/tuple_weights.h"

namespace precis {
namespace {

const TupleWeightStore& RecencyWeights() {
  static const TupleWeightStore* store = [] {
    auto* s = new TupleWeightStore();
    if (!WeightsFromNumericAttribute(bench::SharedDataset().db(), "MOVIE",
                                     "year", s)
             .ok()) {
      std::abort();
    }
    return s;
  }();
  return *store;
}

/// Director-rooted workload cases (DIRECTOR -> MOVIE -> ... schema).
const std::vector<bench::DbGenCase>& Cases() {
  static const std::vector<bench::DbGenCase>* cases = [] {
    auto* out = new std::vector<bench::DbGenCase>();
    const MoviesDataset& dataset = bench::SharedDataset();
    ResultSchemaGenerator schema_gen(&dataset.graph());
    auto schema = schema_gen.Generate({std::string("DIRECTOR")},
                                      *MinPathWeight(0.9));
    if (!schema.ok()) std::abort();
    Rng rng(31);
    RelationNodeId director = *dataset.graph().RelationId("DIRECTOR");
    for (int i = 0; i < 40; ++i) {
      auto tids = RandomSeedTids(dataset.db(), "DIRECTOR", &rng, 3);
      if (!tids.ok()) std::abort();
      out->push_back(bench::DbGenCase{*schema, {{director, *tids}}});
    }
    return out;
  }();
  return *cases;
}

/// Mean recency weight of the MOVIE tuples in a result database.
double MeanMovieWeight(const Database& result, const Database& source) {
  auto out_movie = result.GetRelation("MOVIE");
  auto src_movie = source.GetRelation("MOVIE");
  if (!out_movie.ok() || !src_movie.ok()) return 0.0;
  auto out_mid = (*out_movie)->schema().AttributeIndex("mid");
  if (!out_mid.ok()) return 0.0;
  double total = 0.0;
  size_t n = (*out_movie)->num_tuples();
  if (n == 0) return 0.0;
  for (Tid tid = 0; tid < n; ++tid) {
    const Value& mid = (*out_movie)->tuple(tid)[*out_mid];
    auto src_tids = (*src_movie)->LookupEquals("mid", mid);
    if (src_tids.ok() && !src_tids->empty()) {
      total += RecencyWeights().Weight("MOVIE", (*src_tids)[0]);
    }
  }
  return total / static_cast<double>(n);
}

void RunSelection(benchmark::State& state, bool ranked) {
  const MoviesDataset& dataset = bench::SharedDataset();
  auto constraint =
      MaxTuplesPerRelation(static_cast<size_t>(state.range(0)));
  DbGenOptions options;
  if (ranked) options.tuple_weights = &RecencyWeights();

  size_t run = 0;
  double weight_sum = 0.0;
  size_t runs = 0;
  for (auto _ : state) {
    const bench::DbGenCase& c = Cases()[run++ % Cases().size()];
    ResultDatabaseGenerator generator(&dataset.db());
    auto result = generator.Generate(c.schema, c.seeds, *constraint, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    state.PauseTiming();
    weight_sum += MeanMovieWeight(*result, dataset.db());
    state.ResumeTiming();
    ++runs;
  }
  if (runs > 0) {
    state.counters["mean_importance"] =
        weight_sum / static_cast<double>(runs);
  }
}

void BM_ArbitrarySubset(benchmark::State& state) {
  RunSelection(state, /*ranked=*/false);
}

void BM_RankedSubset(benchmark::State& state) {
  RunSelection(state, /*ranked=*/true);
}

BENCHMARK(BM_ArbitrarySubset)
    ->ArgName("c_R")
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Arg(25)
    ->Arg(100);
BENCHMARK(BM_RankedSubset)
    ->ArgName("c_R")
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Arg(25)
    ->Arg(100);

}  // namespace
}  // namespace precis

BENCHMARK_MAIN();
