// Open-loop load generator for the HTTP front end (DESIGN.md §14).
//
// Drives a running precis_serve (PRECIS_BENCH_TARGET=host:port) at several
// offered QPS levels with a Zipf-popular token workload drawn from the same
// seeded movies vocabulary the server built, and reports achieved QPS,
// open-loop latency percentiles (completion minus *scheduled* send time, so
// queueing delay is not hidden), and the shed rate at each level.
//
// Open-loop means the arrival schedule is fixed up front at the target rate
// and never slows down when the server does — the honest way to measure a
// service under load (closed-loop clients self-throttle and flatter p99).
//
// After the sweep, a hit/miss split pass (DESIGN.md §16) measures the
// cache-to-wire fast path: a hit pass repeats one popular body (after the
// first render every response is served from the memoized body cache),
// and a miss pass gives every request a distinct fingerprint (a unique
// tiny min_path_weight per body — far below any real edge weight, so the
// answer bytes are unchanged but the cache key never repeats).
//
// Gates (non-zero exit):
//   1. Byte identity: the body served for a fixed query must equal the
//      in-process answer byte for byte (same parse path, same engine).
//   2. No unexpected errors: every response is 200, 503 (deliberate
//      shedding), or 504 (deadline partial); transport errors and other
//      5xx fail the run.
//   3. Full mode only: the hit-path p99 must be at least 1.5x faster than
//      the miss-path p99 at the same offered load (smoke runs are too
//      short to time percentiles meaningfully, so they only report).
//
// Env knobs: PRECIS_BENCH_TARGET (required, host:port), PRECIS_BENCH_MOVIES
// (must match the server's --movies), PRECIS_BENCH_QPS (comma-separated
// offered loads), PRECIS_BENCH_DURATION_S, PRECIS_BENCH_CONNECTIONS,
// PRECIS_BENCH_OUT (default BENCH_server.json), PRECIS_BENCH_SMOKE.
//
// `--shards N` (or PRECIS_BENCH_SHARDS) records that the target runs
// `precis_serve --shards N`, so BENCH_server.json rows are comparable
// across serving shapes. The byte-identity reference stays the in-process
// single engine on purpose: sharded answers are byte-identical by design
// (DESIGN.md §15), so the gate then also checks that guarantee end to end.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "datagen/movies_dataset.h"
#include "datagen/workload.h"
#include "precis/engine.h"
#include "precis/json_export.h"
#include "server/http_client.h"
#include "server/request_parse.h"
#include "service/precis_service.h"

namespace precis {
namespace {

using Clock = std::chrono::steady_clock;

struct Target {
  std::string host;
  uint16_t port = 0;
};

bool ParseTarget(const std::string& spec, Target* out) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) return false;
  out->host = spec.substr(0, colon);
  long port = std::atol(spec.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return false;
  out->port = static_cast<uint16_t>(port);
  return true;
}

std::vector<double> ParseQpsList(const std::string& spec) {
  std::vector<double> out;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    double qps = std::atof(item.c_str());
    if (qps > 0) out.push_back(qps);
  }
  return out;
}

/// Per-worker tallies, merged after the run.
struct WorkerStats {
  std::vector<double> latencies_ms;  // 200 responses only
  uint64_t ok = 0;
  uint64_t shed = 0;       // 503
  uint64_t deadline = 0;   // 504 (partial answer)
  uint64_t rejected = 0;   // 400/404 (workload bug)
  uint64_t errors = 0;     // other 5xx
  uint64_t transport = 0;  // connect/read/write failures
  /// 200s carrying X-Precis-Degraded: true (the chaos pass gates on
  /// these — a killed shard must taint every answer it cost tuples).
  uint64_t degraded = 0;
};

struct PointResult {
  double offered_qps = 0;
  double achieved_qps = 0;
  double wall_seconds = 0;
  uint64_t requests = 0;
  WorkerStats totals;
  double p50_ms = 0;
  double p99_ms = 0;
  double shed_rate = 0;
};

/// One offered-load point: a fixed schedule at `qps` for `duration_s`,
/// executed by `connections` workers each owning one keep-alive connection.
PointResult RunPoint(const Target& target, const std::vector<std::string>& bodies,
                     double qps, double duration_s, size_t connections) {
  const size_t total = static_cast<size_t>(qps * duration_s);
  std::vector<Clock::duration> offsets;
  offsets.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    offsets.push_back(std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(static_cast<double>(i) / qps)));
  }

  std::atomic<size_t> next{0};
  std::vector<WorkerStats> stats(connections);
  Clock::time_point start = Clock::now() + std::chrono::milliseconds(20);

  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (size_t w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      WorkerStats& s = stats[w];
      HttpClient client;
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= offsets.size()) break;
        Clock::time_point scheduled = start + offsets[i];
        std::this_thread::sleep_until(scheduled);
        if (!client.connected()) {
          auto connected = HttpClient::Connect(target.host, target.port);
          if (!connected.ok()) {
            ++s.transport;
            continue;
          }
          client = std::move(*connected);
        }
        auto response = client.Post("/query", bodies[i % bodies.size()]);
        Clock::time_point done = Clock::now();
        if (!response.ok()) {
          ++s.transport;
          continue;  // next request reconnects
        }
        switch (response->status) {
          case 200: {
            ++s.ok;
            const std::string* flag = response->FindHeader("X-Precis-Degraded");
            if (flag != nullptr && *flag == "true") ++s.degraded;
            s.latencies_ms.push_back(
                std::chrono::duration<double, std::milli>(done - scheduled)
                    .count());
            break;
          }
          case 503:
            ++s.shed;
            break;
          case 504:
            ++s.deadline;
            break;
          case 400:
          case 404:
            ++s.rejected;
            break;
          default:
            ++s.errors;
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  Clock::time_point end = Clock::now();

  PointResult result;
  result.offered_qps = qps;
  result.requests = total;
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  for (const WorkerStats& s : stats) {
    result.totals.ok += s.ok;
    result.totals.shed += s.shed;
    result.totals.deadline += s.deadline;
    result.totals.rejected += s.rejected;
    result.totals.errors += s.errors;
    result.totals.transport += s.transport;
    result.totals.degraded += s.degraded;
    result.totals.latencies_ms.insert(result.totals.latencies_ms.end(),
                                      s.latencies_ms.begin(),
                                      s.latencies_ms.end());
  }
  uint64_t answered = result.totals.ok + result.totals.deadline;
  result.achieved_qps =
      result.wall_seconds > 0 ? static_cast<double>(answered) / result.wall_seconds : 0;
  result.p50_ms = bench::Percentile(result.totals.latencies_ms, 0.50);
  result.p99_ms = bench::Percentile(result.totals.latencies_ms, 0.99);
  result.shed_rate =
      total > 0 ? static_cast<double>(result.totals.shed) / total : 0;
  return result;
}

/// FNV-1a 64 over the probe body: a stable fingerprint ci.sh compares
/// across two chaos runs with the same fault seed (the cross-process half
/// of the determinism gate — the in-run half re-POSTs the probe).
uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// The chaos pass (DESIGN.md §17): the target is a precis_serve with a
/// fault-scheduled dead shard (`--shards N --kill-shard K`). The healthy
/// byte-identity and hit-path gates do not apply — degraded answers
/// legitimately differ from the single-engine answer and are never cached
/// (fault taint) — so this pass gates on what outage handling promises
/// instead: availability (>= 99% of requests answered 200), honesty (those
/// 200s carry X-Precis-Degraded: true), determinism (re-POSTing the probe
/// returns byte-identical bodies), and bounded latency (p99 within 3x of
/// the healthy baseline when PRECIS_BENCH_BASELINE_P99_MS is given).
int ChaosRun(const Target& target, const std::string& target_spec,
             const std::vector<std::string>& pool,
             const std::vector<std::string>& bodies, double duration_s,
             size_t connections, const std::vector<double>& qps_points,
             const std::string& out_path, size_t shards) {
  const std::string probe_body = "{\"tokens\":[\"" + JsonEscape(pool[0]) +
                                 "\"],\"tuples_per_relation\":5}";
  std::string probe_answer;
  bool probe_degraded = false;
  for (int i = 0; i < 3; ++i) {
    auto client = HttpClient::Connect(target.host, target.port);
    if (!client.ok()) {
      std::fprintf(stderr, "cannot connect to %s: %s\n", target_spec.c_str(),
                   client.status().ToString().c_str());
      return 1;
    }
    auto served = client->Post("/query", probe_body);
    if (!served.ok() || served->status != 200) {
      std::fprintf(stderr, "chaos probe failed (status %d)\n",
                   served.ok() ? served->status : -1);
      return 1;
    }
    if (i == 0) {
      probe_answer = served->body;
      const std::string* flag = served->FindHeader("X-Precis-Degraded");
      probe_degraded = flag != nullptr && *flag == "true";
    } else if (served->body != probe_answer) {
      std::fprintf(stderr,
                   "DETERMINISM GATE FAILED: re-POSTing the probe returned a "
                   "different body (%zu vs %zu bytes)\n",
                   served->body.size(), probe_answer.size());
      return 1;
    }
  }
  if (!probe_degraded) {
    std::fprintf(stderr,
                 "DEGRADED GATE FAILED: probe answered 200 without "
                 "X-Precis-Degraded: true (is --kill-shard active?)\n");
    return 1;
  }
  const uint64_t probe_hash = Fnv1a64(probe_answer);
  std::fprintf(stderr,
               "chaos probe passed: %zu bytes, degraded, fingerprint "
               "%016llx\n",
               probe_answer.size(),
               static_cast<unsigned long long>(probe_hash));

  std::vector<PointResult> points;
  for (double qps : qps_points) {
    PointResult r = RunPoint(target, bodies, qps, duration_s, connections);
    std::fprintf(stderr,
                 "chaos %.0f qps: achieved %.1f qps, p50 %.2f ms, p99 %.2f "
                 "ms (%llu ok / %llu degraded / %llu shed / %llu 504 / %llu "
                 "err / %llu transport)\n",
                 r.offered_qps, r.achieved_qps, r.p50_ms, r.p99_ms,
                 static_cast<unsigned long long>(r.totals.ok),
                 static_cast<unsigned long long>(r.totals.degraded),
                 static_cast<unsigned long long>(r.totals.shed),
                 static_cast<unsigned long long>(r.totals.deadline),
                 static_cast<unsigned long long>(r.totals.errors),
                 static_cast<unsigned long long>(r.totals.transport));
    points.push_back(std::move(r));
  }

  uint64_t requests = 0, ok = 0, degraded = 0;
  double max_p99 = 0;
  for (const PointResult& r : points) {
    requests += r.requests;
    ok += r.totals.ok;
    degraded += r.totals.degraded;
    max_p99 = std::max(max_p99, r.p99_ms);
  }
  const double availability =
      requests > 0 ? static_cast<double>(ok) / static_cast<double>(requests)
                   : 0;
  const double degraded_rate =
      ok > 0 ? static_cast<double>(degraded) / static_cast<double>(ok) : 0;
  const double baseline_p99 =
      std::atof(bench::EnvString("PRECIS_BENCH_BASELINE_P99_MS", "0").c_str());
  const double p99_ratio = baseline_p99 > 0 ? max_p99 / baseline_p99 : 0;

  std::ostringstream os;
  os << "{\n  \"bench\": \"server_chaos\",\n  \"target\": \"" << target_spec
     << "\",\n  \"movies\": " << bench::BenchMovieCount()
     << ",\n  \"shards\": " << shards
     << ",\n  \"connections\": " << connections
     << ",\n  \"duration_seconds\": " << duration_s
     << ",\n  \"probe_bytes\": " << probe_answer.size()
     << ",\n  \"probe_fingerprint\": \"";
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(probe_hash));
  os << hex << "\",\n  \"availability\": " << availability
     << ",\n  \"degraded_rate\": " << degraded_rate
     << ",\n  \"max_p99_ms\": " << max_p99
     << ",\n  \"baseline_p99_ms\": " << baseline_p99
     << ",\n  \"p99_ratio\": " << p99_ratio << ",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const PointResult& r = points[i];
    os << "    {\"offered_qps\": " << r.offered_qps
       << ", \"achieved_qps\": " << r.achieved_qps
       << ", \"requests\": " << r.requests << ", \"ok\": " << r.totals.ok
       << ", \"degraded\": " << r.totals.degraded
       << ", \"shed\": " << r.totals.shed
       << ", \"deadline_504\": " << r.totals.deadline
       << ", \"rejected\": " << r.totals.rejected
       << ", \"errors\": " << r.totals.errors
       << ", \"transport_errors\": " << r.totals.transport
       << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::ofstream out(out_path);
  out << os.str();
  out.close();
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());

  if (availability < 0.99) {
    std::fprintf(stderr,
                 "AVAILABILITY GATE FAILED: only %.2f%% of requests answered "
                 "200 (need >= 99%%)\n",
                 availability * 100);
    return 1;
  }
  if (degraded_rate < 0.99) {
    std::fprintf(stderr,
                 "DEGRADED GATE FAILED: only %.2f%% of 200s carried "
                 "X-Precis-Degraded: true (need >= 99%%)\n",
                 degraded_rate * 100);
    return 1;
  }
  if (baseline_p99 > 0 && max_p99 > 3.0 * baseline_p99) {
    std::fprintf(stderr,
                 "LATENCY GATE FAILED: chaos p99 %.2f ms is %.2fx the "
                 "healthy baseline %.2f ms (need <= 3x)\n",
                 max_p99, p99_ratio, baseline_p99);
    return 1;
  }
  std::fprintf(stderr,
               "chaos gates passed: availability %.2f%%, degraded %.2f%%, "
               "p99 %.2f ms%s\n",
               availability * 100, degraded_rate * 100, max_p99,
               baseline_p99 > 0 ? "" : " (no baseline given)");
  return 0;
}

int LoadGenMain(int argc, char** argv) {
  const bool smoke = std::getenv("PRECIS_BENCH_SMOKE") != nullptr;
  bool chaos = std::getenv("PRECIS_BENCH_CHAOS") != nullptr;
  size_t shards = bench::EnvSize("PRECIS_BENCH_SHARDS", 0);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--shards=", 0) == 0) {
      shards = static_cast<size_t>(std::atol(arg.c_str() + 9));
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == "--chaos") {
      chaos = true;
    } else {
      std::fprintf(stderr, "unknown flag %s (--shards N, --chaos)\n",
                   arg.c_str());
      return 2;
    }
  }
  const std::string target_spec = bench::EnvString("PRECIS_BENCH_TARGET", "");
  Target target;
  if (!ParseTarget(target_spec, &target)) {
    std::fprintf(stderr,
                 "PRECIS_BENCH_TARGET must be host:port of a running "
                 "precis_serve (got '%s')\n",
                 target_spec.c_str());
    return 2;
  }
  const double duration_s =
      smoke ? 0.7 : static_cast<double>(bench::EnvSize("PRECIS_BENCH_DURATION_S", 5));
  const size_t connections = bench::EnvSize("PRECIS_BENCH_CONNECTIONS", 8);
  const std::vector<double> qps_points = ParseQpsList(bench::EnvString(
      "PRECIS_BENCH_QPS", smoke ? "5,10,20" : "10,40,160"));
  const std::string out_path = bench::EnvString(
      "PRECIS_BENCH_OUT", chaos ? "BENCH_chaos.json" : "BENCH_server.json");
  if (!chaos && qps_points.size() < 3) {
    std::fprintf(stderr, "need at least 3 offered-load points\n");
    return 2;
  }
  if (qps_points.empty()) {
    std::fprintf(stderr, "need at least 1 offered-load point\n");
    return 2;
  }

  // The same seeded dataset the server built: its vocabulary *is* the
  // workload's, and its engine answers the byte-identity probe.
  const MoviesDataset& dataset = bench::SharedDataset();
  auto created = PrecisEngine::Create(&dataset.db(), &dataset.graph());
  if (!created.ok()) {
    std::fprintf(stderr, "engine: %s\n", created.status().ToString().c_str());
    return 1;
  }
  PrecisEngine engine = std::move(*created);

  // Liveness first: fail fast with a readable message if the target is
  // not a precis_serve.
  {
    auto client = HttpClient::Connect(target.host, target.port);
    if (!client.ok()) {
      std::fprintf(stderr, "cannot connect to %s: %s\n", target_spec.c_str(),
                   client.status().ToString().c_str());
      return 1;
    }
    auto health = client->Get("/healthz");
    if (!health.ok() || health->status != 200) {
      std::fprintf(stderr, "healthz probe failed\n");
      return 1;
    }
  }

  // Zipf-popular token pool (multi-word director names exercise the phrase
  // path; the skew makes the server's caches meaningful under load).
  std::vector<std::string> pool;
  Rng rng(17);
  for (int i = 0; i < 32; ++i) {
    auto token = RandomToken(dataset.db(), "DIRECTOR", "dname", &rng);
    if (!token.ok()) std::abort();
    pool.push_back(std::move(*token));
  }
  ZipfSampler zipf(pool.size(), 1.2);
  const size_t body_pool = 256;
  std::vector<std::string> bodies;
  bodies.reserve(body_pool);
  for (size_t i = 0; i < body_pool; ++i) {
    bodies.push_back("{\"tokens\":[\"" + JsonEscape(pool[zipf.Sample(&rng)]) +
                     "\"],\"tuples_per_relation\":5}");
  }

  if (chaos) {
    return ChaosRun(target, target_spec, pool, bodies, duration_s,
                    connections, qps_points, out_path, shards);
  }

  // Gate 1: byte identity. The served body must equal the in-process
  // answer for the *same* request JSON routed through the same parser.
  {
    const std::string probe_body =
        "{\"tokens\":[\"" + JsonEscape(pool[0]) +
        "\"],\"tuples_per_relation\":5}";
    auto parsed = ParseQueryRequest(probe_body);
    if (!parsed.ok()) {
      std::fprintf(stderr, "probe parse: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    auto service = PrecisService::Create(&engine);
    if (!service.ok()) return 1;
    ServiceResponse local = (*service)->Execute(std::move(parsed->request));
    if (!local.status.ok()) {
      std::fprintf(stderr, "local probe failed: %s\n",
                   local.status.ToString().c_str());
      return 1;
    }
    std::string expected = AnswerToJson(*local.answer);
    auto client = HttpClient::Connect(target.host, target.port);
    if (!client.ok()) return 1;
    auto served = client->Post("/query", probe_body);
    if (!served.ok() || served->status != 200) {
      std::fprintf(stderr, "served probe failed (status %d)\n",
                   served.ok() ? served->status : -1);
      return 1;
    }
    if (served->body != expected) {
      std::fprintf(stderr,
                   "BYTE-IDENTITY GATE FAILED: served answer differs from "
                   "in-process answer (%zu vs %zu bytes)\n",
                   served->body.size(), expected.size());
      return 1;
    }
    std::fprintf(stderr, "byte-identity gate passed (%zu bytes)\n",
                 expected.size());
  }

  // The offered-load sweep.
  std::vector<PointResult> points;
  for (double qps : qps_points) {
    PointResult r = RunPoint(target, bodies, qps, duration_s, connections);
    std::fprintf(stderr,
                 "offered %.0f qps: achieved %.1f qps, p50 %.2f ms, p99 "
                 "%.2f ms, shed %.1f%% (%llu ok / %llu shed / %llu 504 / "
                 "%llu err / %llu transport)\n",
                 r.offered_qps, r.achieved_qps, r.p50_ms, r.p99_ms,
                 r.shed_rate * 100,
                 static_cast<unsigned long long>(r.totals.ok),
                 static_cast<unsigned long long>(r.totals.shed),
                 static_cast<unsigned long long>(r.totals.deadline),
                 static_cast<unsigned long long>(r.totals.errors),
                 static_cast<unsigned long long>(r.totals.transport));
    points.push_back(std::move(r));
  }

  // Hit/miss split pass at one moderate offered load. The hit pass was
  // already primed by the byte-identity probe (same body), so virtually
  // every 200 is served straight from the memoized render.
  const double hm_qps = smoke ? 20 : 80;
  const std::string hit_body = "{\"tokens\":[\"" + JsonEscape(pool[0]) +
                               "\"],\"tuples_per_relation\":5}";
  PointResult hit_point =
      RunPoint(target, {hit_body}, hm_qps, duration_s, connections);
  std::vector<std::string> miss_bodies;
  const size_t miss_total = static_cast<size_t>(hm_qps * duration_s) + 1;
  miss_bodies.reserve(miss_total);
  for (size_t i = 0; i < miss_total; ++i) {
    char weight[40];
    std::snprintf(weight, sizeof(weight), "%.12g",
                  1e-9 * static_cast<double>(i + 1));
    miss_bodies.push_back("{\"tokens\":[\"" + JsonEscape(pool[0]) +
                          "\"],\"tuples_per_relation\":5,"
                          "\"min_path_weight\":" +
                          weight + "}");
  }
  PointResult miss_point =
      RunPoint(target, miss_bodies, hm_qps, duration_s, connections);
  const double hit_speedup_p99 =
      hit_point.p99_ms > 0 ? miss_point.p99_ms / hit_point.p99_ms : 0;
  std::fprintf(stderr,
               "hit/miss split @ %.0f qps: hit p50 %.3f ms p99 %.3f ms, "
               "miss p50 %.3f ms p99 %.3f ms, p99 speedup %.2fx\n",
               hm_qps, hit_point.p50_ms, hit_point.p99_ms, miss_point.p50_ms,
               miss_point.p99_ms, hit_speedup_p99);

  std::ostringstream os;
  os << "{\n  \"bench\": \"server_load\",\n  \"target\": \"" << target_spec
     << "\",\n  \"movies\": " << bench::BenchMovieCount()
     << ",\n  \"shards\": " << shards
     << ",\n  \"connections\": " << connections
     << ",\n  \"duration_seconds\": " << duration_s << ",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const PointResult& r = points[i];
    os << "    {\"offered_qps\": " << r.offered_qps
       << ", \"achieved_qps\": " << r.achieved_qps
       << ", \"requests\": " << r.requests << ", \"ok\": " << r.totals.ok
       << ", \"shed\": " << r.totals.shed
       << ", \"deadline_504\": " << r.totals.deadline
       << ", \"rejected\": " << r.totals.rejected
       << ", \"errors\": " << r.totals.errors
       << ", \"transport_errors\": " << r.totals.transport
       << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
       << ", \"shed_rate\": " << r.shed_rate << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"hit_miss\": {\"offered_qps\": " << hm_qps
     << ", \"hit_ok\": " << hit_point.totals.ok
     << ", \"hit_p50_ms\": " << hit_point.p50_ms
     << ", \"hit_p99_ms\": " << hit_point.p99_ms
     << ", \"miss_ok\": " << miss_point.totals.ok
     << ", \"miss_p50_ms\": " << miss_point.p50_ms
     << ", \"miss_p99_ms\": " << miss_point.p99_ms
     << ", \"p99_speedup\": " << hit_speedup_p99 << "}\n}\n";
  std::ofstream out(out_path);
  out << os.str();
  out.close();
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());

  // Gate 2: nothing but deliberate outcomes. 503/504 are the designed
  // backpressure; anything else is a server defect.
  uint64_t bad = 0;
  uint64_t answered = 0;
  for (const PointResult& r : points) {
    bad += r.totals.errors + r.totals.transport + r.totals.rejected;
    answered += r.totals.ok;
  }
  bad += hit_point.totals.errors + hit_point.totals.transport +
         hit_point.totals.rejected + miss_point.totals.errors +
         miss_point.totals.transport + miss_point.totals.rejected;
  answered += hit_point.totals.ok + miss_point.totals.ok;
  if (bad > 0) {
    std::fprintf(stderr,
                 "ERROR GATE FAILED: %llu unexpected outcomes (5xx, 4xx, or "
                 "transport errors)\n",
                 static_cast<unsigned long long>(bad));
    return 1;
  }
  if (answered == 0) {
    std::fprintf(stderr, "ERROR GATE FAILED: no successful answers at all\n");
    return 1;
  }

  // Gate 3: the memoized fast path must actually pay for itself. Smoke
  // runs only report (sub-second passes make p99 a coin flip).
  if (!smoke && hit_speedup_p99 < 1.5) {
    std::fprintf(stderr,
                 "HIT-PATH GATE FAILED: hit p99 only %.2fx faster than miss "
                 "p99 (need >= 1.5x)\n",
                 hit_speedup_p99);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace precis

int main(int argc, char** argv) { return precis::LoadGenMain(argc, argv); }
