#include <gtest/gtest.h>

#include <memory>

#include "datagen/movies_dataset.h"
#include "precis/database_generator.h"
#include "precis/schema_generator.h"
#include "precis/tuple_weights.h"

namespace precis {
namespace {

// --- TupleWeightStore basics ---

TEST(TupleWeightStoreTest, DefaultsToOne) {
  TupleWeightStore store;
  EXPECT_DOUBLE_EQ(store.Weight("ANY", 0), 1.0);
  EXPECT_FALSE(store.HasWeights("ANY"));
}

TEST(TupleWeightStoreTest, SetAndGet) {
  Database db("d");
  RelationSchema r("R", {{"a", DataType::kInt64}});
  ASSERT_TRUE(db.CreateRelation(std::move(r)).ok());
  auto rel = db.GetRelation("R");
  ASSERT_TRUE((*rel)->Insert({int64_t{1}}).ok());
  ASSERT_TRUE((*rel)->Insert({int64_t{2}}).ok());

  TupleWeightStore store;
  ASSERT_TRUE(store.SetWeights(db, "R", {0.2, 0.9}).ok());
  EXPECT_DOUBLE_EQ(store.Weight("R", 0), 0.2);
  EXPECT_DOUBLE_EQ(store.Weight("R", 1), 0.9);
  EXPECT_DOUBLE_EQ(store.Weight("R", 99), 1.0);  // out of range
  EXPECT_TRUE(store.HasWeights("R"));
  EXPECT_EQ(store.num_relations(), 1u);
}

TEST(TupleWeightStoreTest, ValidatesInput) {
  Database db("d");
  RelationSchema r("R", {{"a", DataType::kInt64}});
  ASSERT_TRUE(db.CreateRelation(std::move(r)).ok());
  auto rel = db.GetRelation("R");
  ASSERT_TRUE((*rel)->Insert({int64_t{1}}).ok());

  TupleWeightStore store;
  EXPECT_TRUE(store.SetWeights(db, "NOPE", {0.5}).IsNotFound());
  EXPECT_TRUE(store.SetWeights(db, "R", {0.5, 0.5}).IsInvalidArgument());
  EXPECT_TRUE(store.SetWeights(db, "R", {1.5}).IsInvalidArgument());
  EXPECT_TRUE(store.SetWeights(db, "R", {-0.1}).IsInvalidArgument());
}

TEST(WeightsFromNumericAttributeTest, MinMaxNormalizes) {
  Database db("d");
  RelationSchema r("R", {{"year", DataType::kInt64}});
  ASSERT_TRUE(db.CreateRelation(std::move(r)).ok());
  auto rel = db.GetRelation("R");
  ASSERT_TRUE((*rel)->Insert({int64_t{2000}}).ok());
  ASSERT_TRUE((*rel)->Insert({int64_t{2010}}).ok());
  ASSERT_TRUE((*rel)->Insert({int64_t{2020}}).ok());
  ASSERT_TRUE((*rel)->Insert({Value::Null()}).ok());

  TupleWeightStore store;
  ASSERT_TRUE(
      WeightsFromNumericAttribute(db, "R", "year", &store, 0.1, 1.0).ok());
  EXPECT_DOUBLE_EQ(store.Weight("R", 0), 0.1);
  EXPECT_NEAR(store.Weight("R", 1), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(store.Weight("R", 2), 1.0);
  EXPECT_DOUBLE_EQ(store.Weight("R", 3), 0.1);  // NULL -> lo
}

TEST(WeightsFromNumericAttributeTest, ConstantAttributeGetsHi) {
  Database db("d");
  RelationSchema r("R", {{"v", DataType::kDouble}});
  ASSERT_TRUE(db.CreateRelation(std::move(r)).ok());
  auto rel = db.GetRelation("R");
  ASSERT_TRUE((*rel)->Insert({3.0}).ok());
  ASSERT_TRUE((*rel)->Insert({3.0}).ok());
  TupleWeightStore store;
  ASSERT_TRUE(WeightsFromNumericAttribute(db, "R", "v", &store).ok());
  EXPECT_DOUBLE_EQ(store.Weight("R", 0), 1.0);
  EXPECT_DOUBLE_EQ(store.Weight("R", 1), 1.0);
}

TEST(WeightsFromNumericAttributeTest, Validation) {
  Database db("d");
  RelationSchema r("R", {{"s", DataType::kString}});
  ASSERT_TRUE(db.CreateRelation(std::move(r)).ok());
  TupleWeightStore store;
  EXPECT_TRUE(WeightsFromNumericAttribute(db, "R", "s", &store)
                  .IsInvalidArgument());
  EXPECT_TRUE(
      WeightsFromNumericAttribute(db, "R", "s", nullptr).IsInvalidArgument());
  EXPECT_TRUE(WeightsFromNumericAttribute(db, "R", "s", &store, 0.9, 0.1)
                  .IsInvalidArgument());
}

// --- Ranked selection in the Result Database Generator ---

/// D(did) 1..2; M(mid, did, year): director 1 has movies with years
/// 1950..1954 (mids 1..5) in heap order oldest-first, so the paper's NaiveQ
/// prefix picks the *oldest* — ranked selection by year must invert that.
class RankedSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RelationSchema d("D", {{"did", DataType::kInt64}});
    ASSERT_TRUE(d.SetPrimaryKey("did").ok());
    ASSERT_TRUE(db_.CreateRelation(std::move(d)).ok());
    RelationSchema m("M", {{"mid", DataType::kInt64},
                           {"did", DataType::kInt64},
                           {"year", DataType::kInt64}});
    ASSERT_TRUE(m.SetPrimaryKey("mid").ok());
    ASSERT_TRUE(db_.CreateRelation(std::move(m)).ok());
    auto dr = db_.GetRelation("D");
    auto mr = db_.GetRelation("M");
    ASSERT_TRUE((*dr)->Insert({int64_t{1}}).ok());
    for (int64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE((*mr)->Insert({i + 1, int64_t{1}, 1950 + i}).ok());
    }
    ASSERT_TRUE((*mr)->CreateIndex("did").ok());

    auto g = SchemaGraph::FromDatabase(db_);
    ASSERT_TRUE(g.ok());
    graph_ = std::make_unique<SchemaGraph>(std::move(*g));
    ASSERT_TRUE(graph_->AddProjectionEdge("M", "year", 1.0).ok());
    ASSERT_TRUE(graph_->AddProjectionEdge("D", "did", 1.0).ok());
    ASSERT_TRUE(graph_->AddJoinEdge("D", "did", "M", "did", 1.0).ok());

    ResultSchemaGenerator schema_gen(graph_.get());
    auto schema = schema_gen.Generate({std::string("D")}, *MinPathWeight(0.9));
    ASSERT_TRUE(schema.ok());
    schema_ = std::make_unique<ResultSchema>(std::move(*schema));
    ASSERT_TRUE(
        WeightsFromNumericAttribute(db_, "M", "year", &weights_).ok());
  }

  std::vector<int64_t> Years(const Database& result) {
    std::vector<int64_t> out;
    auto rel = result.GetRelation("M");
    auto idx = (*rel)->schema().AttributeIndex("year");
    for (Tid tid = 0; tid < (*rel)->num_tuples(); ++tid) {
      out.push_back((*rel)->tuple(tid)[*idx].AsInt64());
    }
    return out;
  }

  Database db_;
  std::unique_ptr<SchemaGraph> graph_;
  std::unique_ptr<ResultSchema> schema_;
  TupleWeightStore weights_;
};

TEST_F(RankedSelectionTest, UnrankedTakesHeapPrefix) {
  ResultDatabaseGenerator gen(&db_);
  DbGenOptions options;
  options.strategy = SubsetStrategy::kNaiveQ;
  SeedTids seeds = {{*graph_->RelationId("D"), {0}}};
  auto result =
      gen.Generate(*schema_, seeds, *MaxTuplesPerRelation(2), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Years(*result), (std::vector<int64_t>{1950, 1951}));
}

TEST_F(RankedSelectionTest, RankedTakesHeaviestTuples) {
  ResultDatabaseGenerator gen(&db_);
  DbGenOptions options;
  options.tuple_weights = &weights_;
  SeedTids seeds = {{*graph_->RelationId("D"), {0}}};
  auto result =
      gen.Generate(*schema_, seeds, *MaxTuplesPerRelation(2), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Years(*result), (std::vector<int64_t>{1954, 1953}));
}

TEST_F(RankedSelectionTest, RankedWithoutTruncationKeepsEverything) {
  ResultDatabaseGenerator gen(&db_);
  DbGenOptions options;
  options.tuple_weights = &weights_;
  SeedTids seeds = {{*graph_->RelationId("D"), {0}}};
  auto result = gen.Generate(*schema_, seeds, *UnlimitedCardinality(),
                             options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result->GetRelation("M"))->num_tuples(), 5u);
}

TEST_F(RankedSelectionTest, RankedSeedsPreferHeavyTuples) {
  // Seed M directly with all tuples but allow only 2: heaviest first.
  ResultSchemaGenerator schema_gen(graph_.get());
  auto schema = schema_gen.Generate({std::string("M")}, *MaxPathLength(1));
  ASSERT_TRUE(schema.ok());
  ResultDatabaseGenerator gen(&db_);
  DbGenOptions options;
  options.tuple_weights = &weights_;
  SeedTids seeds = {{*graph_->RelationId("M"), {0, 1, 2, 3, 4}}};
  auto result =
      gen.Generate(*schema, seeds, *MaxTuplesPerRelation(2), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Years(*result), (std::vector<int64_t>{1954, 1953}));
}

TEST_F(RankedSelectionTest, UnweightedRelationsKeepRetrievalOrder) {
  // No weights registered at all: ranked mode must reduce to the original
  // order (stable sort over equal weights).
  TupleWeightStore empty;
  ResultDatabaseGenerator gen(&db_);
  DbGenOptions options;
  options.tuple_weights = &empty;
  SeedTids seeds = {{*graph_->RelationId("D"), {0}}};
  auto result =
      gen.Generate(*schema_, seeds, *MaxTuplesPerRelation(2), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Years(*result), (std::vector<int64_t>{1950, 1951}));
}

TEST(RankedMoviesTest, WoodyAllenPrecisShowsNewestMoviesFirst) {
  MoviesConfig config;
  config.num_movies = 0;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  TupleWeightStore weights;
  ASSERT_TRUE(
      WeightsFromNumericAttribute(ds->db(), "MOVIE", "year", &weights).ok());

  ResultSchemaGenerator schema_gen(&ds->graph());
  auto schema = schema_gen.Generate({std::string("DIRECTOR")},
                                    *MinPathWeight(0.9));
  ASSERT_TRUE(schema.ok());
  ResultDatabaseGenerator gen(&ds->db());
  DbGenOptions options;
  options.tuple_weights = &weights;
  SeedTids seeds = {{*ds->graph().RelationId("DIRECTOR"), {0}}};
  auto result =
      gen.Generate(*schema, seeds, *MaxTuplesPerRelation(2), options);
  ASSERT_TRUE(result.ok());
  auto movie = result->GetRelation("MOVIE");
  auto title = (*movie)->schema().AttributeIndex("title");
  ASSERT_EQ((*movie)->num_tuples(), 2u);
  EXPECT_EQ((*movie)->tuple(0)[*title].AsString(), "Match Point");
  EXPECT_EQ((*movie)->tuple(1)[*title].AsString(), "Melinda and Melinda");
}

}  // namespace
}  // namespace precis
