#include <gtest/gtest.h>

#include <memory>

#include "baseline/keyword_search.h"
#include "datagen/movies_dataset.h"

namespace precis {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 30;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
    auto engine =
        KeywordSearchBaseline::Create(&dataset_->db(), &dataset_->graph());
    ASSERT_TRUE(engine.ok());
    engine_ = std::make_unique<KeywordSearchBaseline>(std::move(*engine));
  }

  std::unique_ptr<MoviesDataset> dataset_;
  std::unique_ptr<KeywordSearchBaseline> engine_;
};

TEST_F(BaselineTest, CreateRejectsNullInputs) {
  EXPECT_TRUE(KeywordSearchBaseline::Create(nullptr, &dataset_->graph())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(KeywordSearchBaseline::Create(&dataset_->db(), nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(BaselineTest, SingleKeywordReturnsMatchingTuples) {
  auto results = engine_->Search({"Woody Allen"});
  ASSERT_TRUE(results.ok());
  // Woody Allen appears once in ACTOR and once in DIRECTOR: two
  // zero-join answers.
  ASSERT_EQ(results->size(), 2u);
  for (const JoinedTupleTree& tree : *results) {
    EXPECT_EQ(tree.num_joins, 0u);
    EXPECT_EQ(tree.tuples.size(), 1u);
  }
}

TEST_F(BaselineTest, FlattenedAnswersDoNotIncludeSurroundingInfo) {
  // The contrast the paper draws in §2: the keyword baseline returns the
  // matching tuples themselves, nothing about Woody Allen's movies.
  auto results = engine_->Search({"Woody Allen"});
  ASSERT_TRUE(results.ok());
  for (const JoinedTupleTree& tree : *results) {
    for (const auto& [relation, tuple] : tree.tuples) {
      EXPECT_NE(relation, "MOVIE");
      EXPECT_NE(relation, "GENRE");
    }
  }
}

TEST_F(BaselineTest, TwoKeywordsProduceJoinedTrees) {
  auto results = engine_->Search({"Woody Allen", "Match Point"});
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  // The best answer joins DIRECTOR with MOVIE directly: one join.
  EXPECT_EQ((*results)[0].num_joins, 1u);
  std::set<std::string> rels;
  for (const auto& [relation, tuple] : (*results)[0].tuples) {
    rels.insert(relation);
  }
  EXPECT_EQ(rels, (std::set<std::string>{"DIRECTOR", "MOVIE"}));
}

TEST_F(BaselineTest, RankingIsByNumberOfJoins) {
  KeywordSearchOptions options;
  options.max_network_size = 4;
  options.top_k = 50;
  auto results = engine_->Search({"Woody Allen", "Match Point"}, options);
  ASSERT_TRUE(results.ok());
  for (size_t i = 1; i < results->size(); ++i) {
    EXPECT_LE((*results)[i - 1].num_joins, (*results)[i].num_joins);
  }
}

TEST_F(BaselineTest, UnmatchedKeywordYieldsNoResults) {
  auto results = engine_->Search({"Woody Allen", "zzz-nothing"});
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST_F(BaselineTest, EmptyQueryYieldsNoResults) {
  auto results = engine_->Search({});
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST_F(BaselineTest, NetworkSizeOneCannotConnectTwoRelations) {
  KeywordSearchOptions options;
  options.max_network_size = 1;
  auto results = engine_->Search({"Woody Allen", "Match Point"}, options);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST_F(BaselineTest, TopKBoundsResults) {
  KeywordSearchOptions options;
  options.top_k = 1;
  auto results = engine_->Search({"Comedy"}, options);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
}

TEST_F(BaselineTest, KeywordsInSameRelationViaConnector) {
  // Two different movie titles can only be connected through a network with
  // a shared neighbour (e.g. MOVIE <- PLAY -> ... or via DIRECTOR); with
  // both titles by the same director the DIRECTOR connector works.
  auto results = engine_->Search({"Match Point", "Anything Else"});
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  bool director_connector = false;
  for (const JoinedTupleTree& tree : *results) {
    for (const auto& [relation, tuple] : tree.tuples) {
      if (relation == "DIRECTOR") director_connector = true;
    }
  }
  EXPECT_TRUE(director_connector);
}

TEST_F(BaselineTest, NetworksAreCounted) {
  ASSERT_TRUE(engine_->Search({"Woody Allen", "Match Point"}).ok());
  EXPECT_GT(engine_->last_num_networks(), 0u);
}

TEST_F(BaselineTest, TreeToStringShowsJoins) {
  auto results = engine_->Search({"Woody Allen", "Match Point"});
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  std::string s = (*results)[0].ToString();
  EXPECT_NE(s.find("|><|"), std::string::npos);
  EXPECT_NE(s.find("MOVIE"), std::string::npos);
}

}  // namespace
}  // namespace precis
