#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "datagen/movies_dataset.h"
#include "datagen/workload.h"
#include "graph/weight_profile.h"
#include "precis/engine.h"

namespace precis {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 50;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
    auto engine = PrecisEngine::Create(&dataset_->db(), &dataset_->graph());
    ASSERT_TRUE(engine.ok());
    engine_ = std::make_unique<PrecisEngine>(std::move(*engine));
  }

  std::unique_ptr<MoviesDataset> dataset_;
  std::unique_ptr<PrecisEngine> engine_;
};

TEST_F(EngineTest, CreateRejectsNullInputs) {
  EXPECT_TRUE(PrecisEngine::Create(nullptr, &dataset_->graph())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PrecisEngine::Create(&dataset_->db(), nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(EngineTest, WoodyAllenEndToEnd) {
  auto answer = engine_->Answer(PrecisQuery{{"Woody Allen"}},
                                *MinPathWeight(0.9), *MaxTuplesPerRelation(3));
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->empty());
  ASSERT_EQ(answer->matches.size(), 1u);
  // Homonym: found as both an actor and a director.
  std::set<std::string> relations;
  for (const TokenOccurrence& occ : answer->matches[0].occurrences()) {
    relations.insert(occ.relation);
  }
  EXPECT_EQ(relations, (std::set<std::string>{"ACTOR", "DIRECTOR"}));

  // Fig. 4 schema and a three-movie database.
  EXPECT_TRUE(answer->schema.ContainsRelation("MOVIE"));
  EXPECT_TRUE(answer->schema.ContainsRelation("GENRE"));
  auto movie = answer->database.GetRelation("MOVIE");
  ASSERT_TRUE(movie.ok());
  EXPECT_EQ((*movie)->num_tuples(), 3u);
  // The result database is a real database: constraints validated.
  EXPECT_TRUE(answer->database.ValidateForeignKeys().ok());
}

TEST_F(EngineTest, UnknownTokenGivesEmptyAnswer) {
  auto answer = engine_->Answer(PrecisQuery{{"zzz-no-such-token"}},
                                *MinPathWeight(0.9), *MaxTuplesPerRelation(3));
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->empty());
  EXPECT_EQ(answer->database.TotalTuples(), 0u);
  EXPECT_TRUE(answer->schema.relations().empty());
}

TEST_F(EngineTest, EmptyQueryGivesEmptyAnswer) {
  auto answer = engine_->Answer(PrecisQuery{{}}, *MinPathWeight(0.9),
                                *MaxTuplesPerRelation(3));
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->empty());
}

TEST_F(EngineTest, MultiTokenQueryCombinesSeedRelations) {
  auto answer =
      engine_->Answer(PrecisQuery{{"Woody Allen", "Match Point"}},
                      *MinPathWeight(0.9), *MaxTuplesPerRelation(10));
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->matches.size(), 2u);
  EXPECT_FALSE(answer->matches[1].occurrences().empty());
  // MOVIE is now a token relation itself.
  bool movie_is_token = false;
  for (RelationNodeId rel : answer->schema.token_relations()) {
    if (answer->schema.graph().relation_name(rel) == "MOVIE") {
      movie_is_token = true;
    }
  }
  EXPECT_TRUE(movie_is_token);
}

TEST_F(EngineTest, MixedKnownAndUnknownTokens) {
  auto answer =
      engine_->Answer(PrecisQuery{{"no-such-thing", "Woody Allen"}},
                      *MinPathWeight(0.9), *MaxTuplesPerRelation(3));
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->empty());
  EXPECT_TRUE(answer->matches[0].occurrences().empty());
  EXPECT_FALSE(answer->matches[1].occurrences().empty());
}

TEST_F(EngineTest, TighterDegreeYieldsSmallerSchema) {
  auto wide = engine_->Answer(PrecisQuery{{"Woody Allen"}},
                              *MinPathWeight(0.5), *MaxTuplesPerRelation(3));
  auto narrow = engine_->Answer(PrecisQuery{{"Woody Allen"}},
                                *MinPathWeight(0.95), *MaxTuplesPerRelation(3));
  ASSERT_TRUE(wide.ok());
  ASSERT_TRUE(narrow.ok());
  EXPECT_GE(wide->schema.TotalProjectedAttributes(),
            narrow->schema.TotalProjectedAttributes());
  EXPECT_GE(wide->schema.relations().size(),
            narrow->schema.relations().size());
}

TEST_F(EngineTest, AnswerIsDeterministic) {
  auto a = engine_->Answer(PrecisQuery{{"Comedy"}}, *MinPathWeight(0.8),
                           *MaxTuplesPerRelation(5));
  auto b = engine_->Answer(PrecisQuery{{"Comedy"}}, *MinPathWeight(0.8),
                           *MaxTuplesPerRelation(5));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->database.DescribeSchema(), b->database.DescribeSchema());
  EXPECT_EQ(a->schema.ToString(), b->schema.ToString());
}

// ===== Query-model properties (§3.3, conditions 1-4) under random weights =====

struct PropertyCase {
  uint64_t weight_seed;
  double threshold;
  size_t tuples_per_relation;
};

class QueryModelPropertyTest
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(QueryModelPropertyTest, ResultIsAValidSubDatabase) {
  const PropertyCase& param = GetParam();
  MoviesConfig config;
  config.num_movies = 60;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  Rng rng(param.weight_seed);
  ASSERT_TRUE(RandomizeWeights(&ds->graph(), &rng).ok());
  auto engine = PrecisEngine::Create(&ds->db(), &ds->graph());
  ASSERT_TRUE(engine.ok());

  auto answer = engine->Answer(
      PrecisQuery{{"Woody Allen"}}, *MinPathWeight(param.threshold),
      *MaxTuplesPerRelation(param.tuples_per_relation));
  ASSERT_TRUE(answer.ok());

  // Condition 1: result relation names are a subset of the source's.
  for (const std::string& name : answer->database.RelationNames()) {
    EXPECT_TRUE(ds->db().HasRelation(name));
  }

  for (const std::string& name : answer->database.RelationNames()) {
    auto out_rel = answer->database.GetRelation(name);
    auto src_rel = ds->db().GetRelation(name);
    ASSERT_TRUE(out_rel.ok());
    ASSERT_TRUE(src_rel.ok());

    // Condition 2: attributes are a subset of the source relation's.
    std::vector<size_t> src_indices;
    for (const AttributeSchema& attr : (*out_rel)->schema().attributes()) {
      auto idx = (*src_rel)->schema().AttributeIndex(attr.name);
      ASSERT_TRUE(idx.ok()) << name << "." << attr.name;
      src_indices.push_back(*idx);
    }

    // Condition 3: every result tuple is a source tuple projected on the
    // surviving attributes.
    EXPECT_LE((*out_rel)->num_tuples(), (*src_rel)->num_tuples());
    for (Tid tid = 0; tid < (*out_rel)->num_tuples(); ++tid) {
      const Tuple& out_tuple = (*out_rel)->tuple(tid);
      bool found = false;
      for (Tid src = 0; src < (*src_rel)->num_tuples() && !found; ++src) {
        const Tuple& src_tuple = (*src_rel)->tuple(src);
        bool same = true;
        for (size_t i = 0; i < src_indices.size(); ++i) {
          if (!(out_tuple[i] == src_tuple[src_indices[i]])) {
            same = false;
            break;
          }
        }
        found = same;
      }
      EXPECT_TRUE(found) << "tuple " << tid << " of " << name
                         << " is not a projection of any source tuple";
    }

    // Cardinality constraint held per relation.
    EXPECT_LE((*out_rel)->num_tuples(), param.tuples_per_relation);
  }

  // Condition 4 (+constraints): the declared foreign keys hold.
  EXPECT_TRUE(answer->database.ValidateForeignKeys().ok());
}

INSTANTIATE_TEST_SUITE_P(
    RandomWeightSweep, QueryModelPropertyTest,
    ::testing::Values(PropertyCase{1, 0.9, 3}, PropertyCase{2, 0.7, 5},
                      PropertyCase{3, 0.5, 2}, PropertyCase{4, 0.3, 8},
                      PropertyCase{5, 0.8, 1}, PropertyCase{6, 0.6, 4},
                      PropertyCase{7, 0.2, 10}, PropertyCase{8, 0.95, 6},
                      PropertyCase{9, 0.4, 7}, PropertyCase{10, 0.1, 3}));

// Cardinality monotonicity: a larger per-relation budget never yields fewer
// tuples anywhere.
class CardinalityMonotonicityTest
    : public ::testing::TestWithParam<size_t> {};

TEST_P(CardinalityMonotonicityTest, LargerBudgetLargerResult) {
  MoviesConfig config;
  config.num_movies = 40;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto engine = PrecisEngine::Create(&ds->db(), &ds->graph());
  ASSERT_TRUE(engine.ok());
  size_t c = GetParam();
  auto small = engine->Answer(PrecisQuery{{"Woody Allen"}},
                              *MinPathWeight(0.8), *MaxTuplesPerRelation(c));
  auto large = engine->Answer(PrecisQuery{{"Woody Allen"}},
                              *MinPathWeight(0.8),
                              *MaxTuplesPerRelation(c + 3));
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  for (const std::string& name : small->database.RelationNames()) {
    auto s = small->database.GetRelation(name);
    auto l = large->database.GetRelation(name);
    ASSERT_TRUE(l.ok());
    EXPECT_GE((*l)->num_tuples(), (*s)->num_tuples()) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, CardinalityMonotonicityTest,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 20));

}  // namespace
}  // namespace precis
