#include <gtest/gtest.h>

#include <sstream>

#include "datagen/movies_dataset.h"
#include "storage/serialization.h"

namespace precis {
namespace {

Database SmallDb() {
  Database db("demo");
  RelationSchema d("DIRECTOR", {{"did", DataType::kInt64},
                                {"dname", DataType::kString},
                                {"rating", DataType::kDouble}});
  EXPECT_TRUE(d.SetPrimaryKey("did").ok());
  EXPECT_TRUE(db.CreateRelation(std::move(d)).ok());
  RelationSchema m("MOVIE", {{"mid", DataType::kInt64},
                             {"title", DataType::kString},
                             {"did", DataType::kInt64}});
  EXPECT_TRUE(m.SetPrimaryKey("mid").ok());
  EXPECT_TRUE(db.CreateRelation(std::move(m)).ok());
  EXPECT_TRUE(db.AddForeignKey({"MOVIE", "did", "DIRECTOR", "did"}).ok());

  auto dr = db.GetRelation("DIRECTOR");
  auto mr = db.GetRelation("MOVIE");
  EXPECT_TRUE((*dr)->Insert({int64_t{1}, "Woody Allen", 8.25}).ok());
  EXPECT_TRUE(
      (*dr)->Insert({int64_t{2}, "Tab\tNewline\nBackslash\\", 0.1}).ok());
  EXPECT_TRUE((*mr)->Insert({int64_t{1}, "Match Point", int64_t{1}}).ok());
  EXPECT_TRUE((*mr)->Insert({int64_t{2}, Value::Null(), int64_t{2}}).ok());
  EXPECT_TRUE((*mr)->CreateIndex("did").ok());
  return db;
}

Database RoundTrip(const Database& db) {
  std::ostringstream out;
  EXPECT_TRUE(SaveDatabase(db, &out).ok());
  std::istringstream in(out.str());
  auto loaded = LoadDatabase(&in);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return std::move(*loaded);
}

TEST(TsvEscapeTest, RoundTripsSpecials) {
  for (const std::string s :
       {"plain", "tab\there", "nl\nthere", "cr\rx", "back\\slash", "",
        "\\N literal", "\t\n\\"}) {
    auto back = UnescapeTsvField(EscapeTsvField(s));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, s);
  }
}

TEST(TsvEscapeTest, BadEscapesRejected) {
  EXPECT_TRUE(UnescapeTsvField("dangling\\").status().IsInvalidArgument());
  EXPECT_TRUE(UnescapeTsvField("bad\\q").status().IsInvalidArgument());
}

TEST(SerializationTest, RoundTripPreservesSchema) {
  Database db = SmallDb();
  Database loaded = RoundTrip(db);
  EXPECT_EQ(loaded.name(), "demo");
  EXPECT_EQ(loaded.DescribeSchema(), db.DescribeSchema());
  auto movie = loaded.GetRelation("MOVIE");
  ASSERT_TRUE(movie.ok());
  EXPECT_TRUE((*movie)->schema().primary_key().has_value());
  EXPECT_TRUE((*movie)->HasIndex("did"));
}

TEST(SerializationTest, RoundTripPreservesData) {
  Database db = SmallDb();
  Database loaded = RoundTrip(db);
  auto orig = db.GetRelation("DIRECTOR");
  auto back = loaded.GetRelation("DIRECTOR");
  ASSERT_EQ((*back)->num_tuples(), (*orig)->num_tuples());
  for (Tid tid = 0; tid < (*orig)->num_tuples(); ++tid) {
    EXPECT_EQ((*back)->tuple(tid), (*orig)->tuple(tid));
  }
}

TEST(SerializationTest, NullsSurviveRoundTrip) {
  Database loaded = RoundTrip(SmallDb());
  auto movie = loaded.GetRelation("MOVIE");
  EXPECT_TRUE((*movie)->tuple(1)[1].is_null());
}

TEST(SerializationTest, DoublePrecisionSurvives) {
  Database db("d");
  RelationSchema r("R", {{"v", DataType::kDouble}});
  ASSERT_TRUE(db.CreateRelation(std::move(r)).ok());
  auto rel = db.GetRelation("R");
  double tricky = 0.1 + 0.2;  // not representable exactly
  ASSERT_TRUE((*rel)->Insert({tricky}).ok());
  Database loaded = RoundTrip(db);
  auto back = loaded.GetRelation("R");
  EXPECT_EQ((*back)->tuple(0)[0].AsDouble(), tricky);
}

TEST(SerializationTest, ForeignKeysRestoredAndValid) {
  Database loaded = RoundTrip(SmallDb());
  EXPECT_EQ(loaded.foreign_keys().size(), 1u);
  EXPECT_TRUE(loaded.ValidateForeignKeys().ok());
}

TEST(SerializationTest, FileRoundTrip) {
  Database db = SmallDb();
  const std::string path = "/tmp/precis_serialization_test.pdb";
  ASSERT_TRUE(SaveDatabaseToFile(db, path).ok());
  auto loaded = LoadDatabaseFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->TotalTuples(), db.TotalTuples());
  EXPECT_TRUE(LoadDatabaseFromFile("/tmp/no/such/dir/x.pdb")
                  .status()
                  .IsInvalidArgument());
}

TEST(SerializationTest, MoviesDatasetRoundTrip) {
  MoviesConfig config;
  config.num_movies = 40;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  Database loaded = RoundTrip(ds->db());
  EXPECT_EQ(loaded.TotalTuples(), ds->db().TotalTuples());
  EXPECT_EQ(loaded.num_relations(), ds->db().num_relations());
  EXPECT_TRUE(loaded.ValidateForeignKeys().ok());
}

TEST(SerializationLoadErrorTest, RejectsGarbage) {
  for (const std::string text :
       {std::string(""), std::string("WRONG 1\n"),
        std::string("PRECISDB 99\nDATABASE x\n"),
        std::string("PRECISDB 1\nNODATABASE\n"),
        std::string("PRECISDB 1\nDATABASE x\nWHAT is this\n")}) {
    std::istringstream in(text);
    EXPECT_FALSE(LoadDatabase(&in).ok()) << text;
  }
}

TEST(SerializationLoadErrorTest, RejectsArityMismatch) {
  std::istringstream in(
      "PRECISDB 1\nDATABASE x\n"
      "RELATION R 2\nATTR a INT64 PK\nATTR b STRING\n"
      "DATA R 1\n"
      "1\n");
  EXPECT_TRUE(LoadDatabase(&in).status().IsInvalidArgument());
}

TEST(SerializationLoadErrorTest, RejectsBadLiteral) {
  std::istringstream in(
      "PRECISDB 1\nDATABASE x\n"
      "RELATION R 1\nATTR a INT64 PK\n"
      "DATA R 1\n"
      "notanumber\n");
  EXPECT_TRUE(LoadDatabase(&in).status().IsInvalidArgument());
}

TEST(SerializationLoadErrorTest, RejectsTruncatedData) {
  std::istringstream in(
      "PRECISDB 1\nDATABASE x\n"
      "RELATION R 1\nATTR a INT64\n"
      "DATA R 3\n"
      "1\n");
  EXPECT_TRUE(LoadDatabase(&in).status().IsInvalidArgument());
}

TEST(SerializationLoadErrorTest, RejectsDuplicatePrimaryKeys) {
  std::istringstream in(
      "PRECISDB 1\nDATABASE x\n"
      "RELATION R 1\nATTR a INT64 PK\n"
      "DATA R 2\n"
      "7\n7\n");
  EXPECT_TRUE(LoadDatabase(&in).status().IsConstraintViolation());
}

TEST(SerializationLoadErrorTest, RejectsUnknownType) {
  std::istringstream in(
      "PRECISDB 1\nDATABASE x\n"
      "RELATION R 1\nATTR a BLOB\n");
  EXPECT_TRUE(LoadDatabase(&in).status().IsInvalidArgument());
}

}  // namespace
}  // namespace precis
