#include <gtest/gtest.h>

#include <memory>

#include "datagen/movies_dataset.h"
#include "precis/dot_export.h"
#include "precis/schema_generator.h"

namespace precis {
namespace {

class DotExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto g = BuildMoviesGraph();
    ASSERT_TRUE(g.ok());
    graph_ = std::make_unique<SchemaGraph>(std::move(*g));
  }

  std::unique_ptr<SchemaGraph> graph_;
};

TEST_F(DotExportTest, SchemaGraphContainsAllRelations) {
  std::string dot = SchemaGraphToDot(*graph_);
  EXPECT_EQ(dot.find("digraph schema {"), 0u);
  for (const char* name : {"MOVIE", "DIRECTOR", "ACTOR", "GENRE", "THEATRE",
                           "PLAY", "CAST", "AWARD", "REVIEW", "STUDIO",
                           "PRODUCED_BY"}) {
    EXPECT_NE(dot.find(std::string("<b>") + name + "</b>"),
              std::string::npos)
        << name;
  }
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}\n"), std::string::npos);
}

TEST_F(DotExportTest, SchemaGraphShowsWeightsAndJoinAttributes) {
  std::string dot = SchemaGraphToDot(*graph_);
  // The MOVIE -> GENRE edge with its 0.9 weight tagged with (mid).
  EXPECT_NE(dot.find("(mid) 0.9"), std::string::npos);
  // Projection weight of THEATRE.phone.
  EXPECT_NE(dot.find("phone (0.8)"), std::string::npos);
}

TEST_F(DotExportTest, ResultSchemaHighlightsTokenRelations) {
  ResultSchemaGenerator generator(graph_.get());
  auto schema = generator.Generate({std::string("DIRECTOR"), "ACTOR"},
                                   *MinPathWeight(0.9));
  ASSERT_TRUE(schema.ok());
  std::string dot = ResultSchemaToDot(*schema);
  EXPECT_EQ(dot.find("digraph result_schema {"), 0u);
  // Token relations get the gold header; hops the grey one.
  EXPECT_NE(dot.find("bgcolor=\"gold\"><b>DIRECTOR</b>"), std::string::npos);
  EXPECT_NE(dot.find("bgcolor=\"gold\"><b>ACTOR</b>"), std::string::npos);
  EXPECT_NE(dot.find("bgcolor=\"lightgrey\"><b>GENRE</b>"),
            std::string::npos);
  // MOVIE shows its in-degree 2 annotation.
  EXPECT_NE(dot.find("<b>MOVIE</b> [in 2]"), std::string::npos);
  // Excluded relations are absent.
  EXPECT_EQ(dot.find("THEATRE"), std::string::npos);
}

TEST_F(DotExportTest, ResultSchemaListsOnlyProjectedAttributes) {
  ResultSchemaGenerator generator(graph_.get());
  auto schema =
      generator.Generate({std::string("DIRECTOR")}, *MinPathWeight(0.9));
  ASSERT_TRUE(schema.ok());
  std::string dot = ResultSchemaToDot(*schema);
  EXPECT_NE(dot.find(">title<"), std::string::npos);
  EXPECT_EQ(dot.find(">mid<"), std::string::npos);  // join attr, not listed
}

TEST(DotEscapeTest, QuotesAndBackslashesEscaped) {
  RelationSchema odd("R", {{"a", DataType::kInt64}});
  auto g = SchemaGraph::FromSchemas({odd});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g->AddProjectionEdge("R", "a", 0.5).ok());
  // No quotes in this schema, but the exporter must still emit valid DOT.
  std::string dot = SchemaGraphToDot(*g);
  EXPECT_NE(dot.find("a (0.5)"), std::string::npos);
}

}  // namespace
}  // namespace precis
