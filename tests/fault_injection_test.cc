// Chaos suite for deterministic fault injection (DESIGN.md §12).
//
// Three layers of coverage:
//   1. FaultInjector / RetryWithBackoff unit behaviour (schedules fire at
//      exactly the decided check indices, permanent faults latch, retries
//      stop at the policy bound and at the deadline).
//   2. End-to-end chaos over the movies workload: with every storage site
//      armed at p ∈ {0.01, 0.1}, every answer is OK (gracefully degraded),
//      structurally well-formed, and — the determinism contract — byte-
//      identical across reruns and across parallelism ∈ {1, 2, 8}.
//   3. The cache-taint regression: armed injectors, degraded answers and
//      truncated answers never enter the schema/answer caches, so a cache
//      hit always serves a clean, complete answer.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/fault_injection.h"
#include "common/retry.h"
#include "datagen/movies_dataset.h"
#include "datagen/movies_templates.h"
#include "precis/engine.h"
#include "precis/json_export.h"
#include "service/precis_service.h"
#include "translator/translator.h"

namespace precis {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector unit behaviour.

TEST(FaultInjectorTest, OffInjectorNeverFires) {
  FaultInjector injector(7);
  EXPECT_FALSE(injector.armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.Check(FaultSite::kTupleFetch).ok());
  }
  EXPECT_EQ(injector.total_injected(), 0u);
  // Unarmed checks take the fast path and are not even counted.
  EXPECT_EQ(injector.site_stats(FaultSite::kTupleFetch).checks, 0u);
}

TEST(FaultInjectorTest, EveryNthFiresAtExactIndices) {
  FaultInjector injector(1);
  injector.SetSchedule(FaultSite::kIndexProbe, FaultSchedule::EveryNth(3));
  EXPECT_TRUE(injector.armed());
  std::vector<int> failed;
  for (int i = 1; i <= 9; ++i) {
    if (!injector.Check(FaultSite::kIndexProbe).ok()) failed.push_back(i);
  }
  EXPECT_EQ(failed, (std::vector<int>{3, 6, 9}));
  EXPECT_EQ(injector.site_stats(FaultSite::kIndexProbe).checks, 9u);
  EXPECT_EQ(injector.site_stats(FaultSite::kIndexProbe).injected, 3u);
}

TEST(FaultInjectorTest, StepsFireExactlyOnListedChecks) {
  FaultInjector injector(1);
  injector.SetSchedule(FaultSite::kTupleFetch,
                       FaultSchedule::Steps({2, 5}));
  std::vector<int> failed;
  for (int i = 1; i <= 6; ++i) {
    Status s = injector.Check(FaultSite::kTupleFetch);
    if (!s.ok()) {
      EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
      failed.push_back(i);
    }
  }
  EXPECT_EQ(failed, (std::vector<int>{2, 5}));
}

TEST(FaultInjectorTest, ProbabilityIsDeterministicPerSeed) {
  auto decisions = [](uint64_t seed) {
    FaultInjector injector(seed);
    injector.SetSchedule(FaultSite::kJoinValueLookup,
                         FaultSchedule::Probability(0.3));
    std::string bits;
    for (int i = 0; i < 200; ++i) {
      bits += injector.Check(FaultSite::kJoinValueLookup).ok() ? '0' : '1';
    }
    return bits;
  };
  EXPECT_EQ(decisions(42), decisions(42));       // same seed, same faults
  EXPECT_NE(decisions(42), decisions(43));       // seeds are independent
  EXPECT_NE(decisions(42).find('1'), std::string::npos);  // p=0.3 does fire
  EXPECT_NE(decisions(42).find('0'), std::string::npos);
}

TEST(FaultInjectorTest, PermanentFaultLatchesTheSite) {
  FaultInjector injector(5);
  injector.SetSchedule(
      FaultSite::kRelationScan,
      FaultSchedule::Steps({3}, FaultKind::kPermanentError));
  EXPECT_TRUE(injector.Check(FaultSite::kRelationScan).ok());
  EXPECT_TRUE(injector.Check(FaultSite::kRelationScan).ok());
  // Check #3 trips the latch; everything after fails too.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(injector.Check(FaultSite::kRelationScan).IsUnavailable());
  }
}

TEST(FaultInjectorTest, ResetDisarmsAndReseedReplays) {
  FaultInjector injector(9);
  injector.SetAll(FaultSchedule::Probability(0.5));
  std::string first;
  for (int i = 0; i < 50; ++i) {
    first += injector.Check(FaultSite::kTupleFetch).ok() ? '0' : '1';
  }
  // Reseed with the same seed: counters restart, so the exact same
  // decision sequence replays (the chaos-rerun mechanism).
  injector.Reseed(9);
  std::string again;
  for (int i = 0; i < 50; ++i) {
    again += injector.Check(FaultSite::kTupleFetch).ok() ? '0' : '1';
  }
  EXPECT_EQ(first, again);
  injector.Reset();
  EXPECT_FALSE(injector.armed());
  EXPECT_EQ(injector.seed(), 9u);  // Reset keeps the seed
  EXPECT_TRUE(injector.Check(FaultSite::kTupleFetch).ok());
}

TEST(FaultInjectorTest, ParseFaultSiteAcceptsShortForms) {
  for (const auto& [name, site] :
       std::vector<std::pair<std::string, FaultSite>>{
           {"probe", FaultSite::kIndexProbe},
           {"index_probe", FaultSite::kIndexProbe},
           {"fetch", FaultSite::kTupleFetch},
           {"tuple_fetch", FaultSite::kTupleFetch},
           {"join", FaultSite::kJoinValueLookup},
           {"scan", FaultSite::kRelationScan},
           {"catalog", FaultSite::kTranslatorCatalog}}) {
    auto parsed = ParseFaultSite(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, site) << name;
  }
  EXPECT_FALSE(ParseFaultSite("warp_core").ok());
}

// ---------------------------------------------------------------------------
// RetryWithBackoff.

TEST(RetryTest, RetriesTransientFaultUntilSuccess) {
  RetryPolicy policy;
  policy.initial_backoff_ns = 0;  // no sleeping in tests
  int calls = 0;
  uint64_t retries = 0;
  Status s = RetryWithBackoff(
      policy, nullptr,
      [&] {
        ++calls;
        return calls < 3 ? Status::Unavailable("flaky") : Status::OK();
      },
      &retries);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ns = 0;
  int calls = 0;
  Status s = RetryWithBackoff(policy, nullptr, [&] {
    ++calls;
    return Status::Unavailable("always down");
  });
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, NonRetryableErrorsPassStraightThrough) {
  RetryPolicy policy;
  policy.initial_backoff_ns = 0;
  int calls = 0;
  Status s = RetryWithBackoff(policy, nullptr, [&] {
    ++calls;
    return Status::InvalidArgument("bad input");
  });
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(calls, 1);  // never retried
}

TEST(RetryTest, DeadlinePressureStopsRetries) {
  RetryPolicy policy;
  policy.initial_backoff_ns = 1'000'000;  // 1ms backoff vs ~0 remaining
  ExecutionContext ctx;
  ctx.SetDeadlineAfter(1e-9);
  int calls = 0;
  Status s = RetryWithBackoff(policy, &ctx, [&] {
    ++calls;
    return Status::Unavailable("down");
  });
  // The remaining time cannot cover the backoff: give up after attempt 1
  // instead of sleeping toward a missed deadline.
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, WorksOverResultValues) {
  RetryPolicy policy;
  policy.initial_backoff_ns = 0;
  int calls = 0;
  Result<int> r = RetryWithBackoff(policy, nullptr, [&]() -> Result<int> {
    ++calls;
    if (calls < 2) return Status::Unavailable("flaky");
    return 17;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 17);
}

// ---------------------------------------------------------------------------
// End-to-end chaos over the movies workload.

class FaultChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 200;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
    auto engine = PrecisEngine::Create(&dataset_->db(), &dataset_->graph());
    ASSERT_TRUE(engine.ok());
    engine_ = std::make_unique<PrecisEngine>(std::move(*engine));
  }

  struct Outcome {
    std::string json;
    std::string degradation;
    bool tainted = false;
    bool ok = false;
  };

  /// Runs the whole token workload under one armed injector and returns
  /// the per-query outcomes. The injector is reseeded first, so the fault
  /// sequence depends only on (seed, workload) — never on earlier runs.
  std::vector<Outcome> RunWorkload(FaultInjector* injector, uint64_t seed,
                                   size_t parallelism,
                                   SubsetStrategy strategy) {
    injector->Reseed(seed);
    std::vector<Outcome> outcomes;
    for (const std::string& token : kTokens) {
      ExecutionContext ctx;
      ctx.SetFaultInjector(injector);
      RetryPolicy policy;
      policy.initial_backoff_ns = 0;  // decisions only; no sleeping
      ctx.set_retry_policy(policy);
      auto degree = MinPathWeight(0.9);
      auto cardinality = MaxTuplesPerRelation(5);
      DbGenOptions options;
      options.parallelism = parallelism;
      options.strategy = strategy;
      auto answer = engine_->Answer(PrecisQuery{{token}}, *degree,
                                    *cardinality, options, &ctx);
      Outcome outcome;
      outcome.ok = answer.ok();
      if (answer.ok()) {
        // Degraded answers stay structurally well-formed.
        EXPECT_TRUE(answer->database.ValidateForeignKeys().ok())
            << token << ": " << answer->report.degradation.ToString();
        outcome.json = AnswerToJson(*answer);
        outcome.degradation = answer->report.degradation.ToString();
        outcome.tainted = answer->report.fault_tainted;
        EXPECT_TRUE(outcome.tainted);  // armed ⇒ tainted, fired or not
      } else {
        // The only error the injector produces is the typed transient one.
        EXPECT_TRUE(answer.status().IsUnavailable())
            << answer.status().ToString();
        outcome.json = answer.status().ToString();
      }
      outcomes.push_back(std::move(outcome));
    }
    return outcomes;
  }

  static void ExpectSameOutcomes(const std::vector<Outcome>& a,
                                 const std::vector<Outcome>& b,
                                 const std::string& label) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].ok, b[i].ok) << label << " query " << i;
      EXPECT_EQ(a[i].json, b[i].json) << label << " query " << i;
      EXPECT_EQ(a[i].degradation, b[i].degradation)
          << label << " query " << i;
    }
  }

  const std::vector<std::string> kTokens = {
      "Woody Allen", "Match Point", "Comedy", "Drama", "Scarlett Johansson",
      "London"};

  std::unique_ptr<MoviesDataset> dataset_;
  std::unique_ptr<PrecisEngine> engine_;
};

TEST_F(FaultChaosTest, EveryAnswerSurvivesProbabilisticFaults) {
  uint64_t injected_total = 0;
  for (double p : {0.01, 0.1}) {
    FaultInjector injector(2024);
    injector.SetAll(FaultSchedule::Probability(p));
    for (SubsetStrategy strategy :
         {SubsetStrategy::kNaiveQ, SubsetStrategy::kRoundRobin}) {
      auto outcomes = RunWorkload(&injector, 2024, 1, strategy);
      for (const Outcome& o : outcomes) {
        EXPECT_TRUE(o.ok);  // transient faults degrade, never error out
      }
      // Reseed (inside RunWorkload) clears counters, so harvest per run.
      injected_total += injector.total_injected();
    }
  }
  // The sweep must actually have exercised faults (p = 0.01 alone may
  // deterministically fire zero times on a small workload; the sum over
  // both rates and strategies cannot).
  EXPECT_GT(injected_total, 0u);
}

TEST_F(FaultChaosTest, SameSeedSameFaultsSameAnswers) {
  for (double p : {0.01, 0.1}) {
    FaultInjector injector(7);
    injector.SetAll(FaultSchedule::Probability(p));
    auto first = RunWorkload(&injector, 7, 1, SubsetStrategy::kAuto);
    auto second = RunWorkload(&injector, 7, 1, SubsetStrategy::kAuto);
    ExpectSameOutcomes(first, second, "rerun p=" + std::to_string(p));
  }
}

TEST_F(FaultChaosTest, ParallelismDoesNotChangeFaultedAnswers) {
  // The PR 3 byte-identity guarantee must survive fault injection: the
  // planner replays the sequential fault/retry sequence, so the same seed
  // yields the same degraded answer at any pool fan-out.
  for (double p : {0.01, 0.1}) {
    FaultInjector injector(99);
    injector.SetAll(FaultSchedule::Probability(p));
    auto sequential = RunWorkload(&injector, 99, 1, SubsetStrategy::kAuto);
    for (size_t parallelism : {size_t{2}, size_t{8}}) {
      auto parallel =
          RunWorkload(&injector, 99, parallelism, SubsetStrategy::kAuto);
      ExpectSameOutcomes(sequential, parallel,
                         "parallelism=" + std::to_string(parallelism) +
                             " p=" + std::to_string(p));
    }
  }
}

TEST_F(FaultChaosTest, TotalFetchFailureDegradesToEmptyButWellFormed) {
  FaultInjector injector(3);
  injector.SetSchedule(FaultSite::kTupleFetch,
                       FaultSchedule::Probability(1.0));
  auto outcomes = RunWorkload(&injector, 3, 1, SubsetStrategy::kAuto);
  size_t degraded = 0;
  for (const Outcome& o : outcomes) {
    EXPECT_TRUE(o.ok);
    // A token with no occurrences issues no fetches, so it cannot degrade;
    // every query that did touch storage must report its losses.
    if (!o.degradation.empty()) ++degraded;
  }
  EXPECT_GT(degraded, 0u);
  EXPECT_GT(injector.total_injected(), 0u);
}

TEST_F(FaultChaosTest, DegradationReportCountsDropsAndRetries) {
  // A single transient step: the first fetch attempt fails, the retry
  // succeeds — one retry, zero drops.
  FaultInjector injector(1);
  injector.SetSchedule(FaultSite::kTupleFetch, FaultSchedule::Steps({1}));
  ExecutionContext ctx;
  ctx.SetFaultInjector(&injector);
  RetryPolicy policy;
  policy.initial_backoff_ns = 0;
  ctx.set_retry_policy(policy);
  auto degree = MinPathWeight(0.9);
  auto cardinality = MaxTuplesPerRelation(5);
  auto answer = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *degree,
                                *cardinality, DbGenOptions(), &ctx);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->report.degradation.total_retries(), 1u);
  EXPECT_EQ(answer->report.degradation.total_dropped_tuples(), 0u);
  EXPECT_FALSE(answer->report.degraded());  // retried ≠ degraded
  EXPECT_TRUE(answer->report.fault_tainted);

  // Four consecutive failing checks exhaust the 4-attempt policy: the
  // tuple is dropped and the answer reports the degradation.
  injector.Reseed(1);
  injector.SetSchedule(FaultSite::kTupleFetch,
                       FaultSchedule::Steps({1, 2, 3, 4}));
  ExecutionContext ctx2;
  ctx2.SetFaultInjector(&injector);
  ctx2.set_retry_policy(policy);
  auto degraded = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *degree,
                                  *cardinality, DbGenOptions(), &ctx2);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->report.degraded());
  EXPECT_EQ(degraded->report.degradation.total_dropped_tuples(), 1u);
  EXPECT_EQ(degraded->report.degradation.total_retries(), 3u);
}

TEST_F(FaultChaosTest, FaultsOffIsByteIdenticalToNoInjector) {
  // A present-but-disarmed injector must not change anything: no taint,
  // no degradation, same bytes as a run with no injector at all.
  auto degree = MinPathWeight(0.9);
  auto cardinality = MaxTuplesPerRelation(5);
  auto clean = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *degree,
                               *cardinality, DbGenOptions());
  ASSERT_TRUE(clean.ok());

  FaultInjector injector(12345);  // never armed
  ExecutionContext ctx;
  ctx.SetFaultInjector(&injector);
  auto with_idle = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *degree,
                                   *cardinality, DbGenOptions(), &ctx);
  ASSERT_TRUE(with_idle.ok());
  EXPECT_EQ(AnswerToJson(*clean), AnswerToJson(*with_idle));
  EXPECT_FALSE(with_idle->report.fault_tainted);
  EXPECT_FALSE(with_idle->report.degraded());
}

// ---------------------------------------------------------------------------
// Cache-taint regression: a cache hit always means a clean, complete answer.

class CacheTaintTest : public FaultChaosTest {};

TEST_F(CacheTaintTest, ArmedInjectorBlocksCacheInsertion) {
  engine_->set_caches_enabled(true);
  // Armed but silent (p = 0): the answer is bit-for-bit clean, yet the run
  // is tainted — it must NOT be inserted (the fingerprint cannot see the
  // injector, so a cached entry would shadow future faulted runs).
  FaultInjector injector(1);
  injector.SetSchedule(FaultSite::kTupleFetch,
                       FaultSchedule::Probability(0.0));
  ASSERT_TRUE(injector.armed());

  auto degree = MinPathWeight(0.9);
  auto cardinality = MaxTuplesPerRelation(5);
  ExecutionContext ctx;
  ctx.SetFaultInjector(&injector);
  auto tainted = engine_->AnswerShared(PrecisQuery{{"Woody Allen"}}, *degree,
                                       *cardinality, DbGenOptions(), &ctx);
  ASSERT_TRUE(tainted.ok());
  EXPECT_EQ(engine_->answer_cache_stats().inserts, 0u);
  EXPECT_EQ(engine_->schema_cache_stats().inserts, 0u);

  // A clean run of the same query does insert.
  auto clean = engine_->AnswerShared(PrecisQuery{{"Woody Allen"}}, *degree,
                                     *cardinality, DbGenOptions());
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(engine_->answer_cache_stats().inserts, 1u);
  EXPECT_EQ(engine_->schema_cache_stats().inserts, 1u);

  // Lookups stay allowed while armed: the stored answer is clean by
  // construction, so handing it out is always safe (and skips the faulty
  // storage path entirely).
  ExecutionContext ctx2;
  ctx2.SetFaultInjector(&injector);
  auto hit = engine_->AnswerShared(PrecisQuery{{"Woody Allen"}}, *degree,
                                   *cardinality, DbGenOptions(), &ctx2);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->get(), clean->get());  // the very same stored object
  EXPECT_FALSE((*hit)->report.fault_tainted);
  EXPECT_EQ(engine_->answer_cache_stats().hits, 1u);
}

TEST_F(CacheTaintTest, DegradedAnswerNeverEntersTheCache) {
  engine_->set_caches_enabled(true);
  FaultInjector injector(8);
  injector.SetSchedule(FaultSite::kTupleFetch,
                       FaultSchedule::Probability(1.0));
  auto degree = MinPathWeight(0.9);
  auto cardinality = MaxTuplesPerRelation(5);
  ExecutionContext ctx;
  RetryPolicy policy;
  policy.initial_backoff_ns = 0;
  ctx.set_retry_policy(policy);
  ctx.SetFaultInjector(&injector);
  auto degraded = engine_->AnswerShared(PrecisQuery{{"Woody Allen"}}, *degree,
                                        *cardinality, DbGenOptions(), &ctx);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE((*degraded)->report.degraded());
  EXPECT_EQ(engine_->answer_cache_stats().inserts, 0u);

  // The next clean query must rebuild from scratch — and produce a full
  // answer, not the degraded one.
  auto clean = engine_->AnswerShared(PrecisQuery{{"Woody Allen"}}, *degree,
                                     *cardinality, DbGenOptions());
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE((*clean)->report.degraded());
  EXPECT_NE(AnswerToJson(**degraded), AnswerToJson(**clean));
  EXPECT_EQ(engine_->answer_cache_stats().inserts, 1u);
}

TEST_F(CacheTaintTest, TruncatedAnswerNeverEntersTheCache) {
  engine_->set_caches_enabled(true);
  auto degree = MinPathWeight(0.9);
  auto cardinality = MaxTuplesPerRelation(5);
  ExecutionContext ctx;
  ctx.SetAccessBudget(3);  // stops mid-generation
  auto partial = engine_->AnswerShared(PrecisQuery{{"Woody Allen"}}, *degree,
                                       *cardinality, DbGenOptions(), &ctx);
  ASSERT_TRUE(partial.ok());
  ASSERT_TRUE((*partial)->report.partial());
  EXPECT_EQ(engine_->answer_cache_stats().inserts, 0u);
}

// ---------------------------------------------------------------------------
// Translator graceful degradation.

TEST_F(FaultChaosTest, TranslatorRendersPlaceholderOnCatalogFault) {
  auto catalog = BuildMoviesTemplateCatalog();
  ASSERT_TRUE(catalog.ok());
  Translator translator(&*catalog);
  auto degree = MinPathWeight(0.9);
  auto cardinality = MaxTuplesPerRelation(5);
  auto answer = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *degree,
                                *cardinality, DbGenOptions());
  ASSERT_TRUE(answer.ok());

  // Catalog permanently down: the narrative degrades to per-occurrence
  // placeholders but Render still succeeds (answer = database; the text is
  // garnish).
  FaultInjector injector(4);
  injector.SetSchedule(
      FaultSite::kTranslatorCatalog,
      FaultSchedule::EveryNth(1, FaultKind::kPermanentError));
  ExecutionContext ctx;
  RetryPolicy policy;
  policy.initial_backoff_ns = 0;
  ctx.set_retry_policy(policy);
  ctx.SetFaultInjector(&injector);
  auto text = translator.Render(*answer, &ctx);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("narrative unavailable"), std::string::npos);

  // One transient blip: the retry recovers and the full narrative renders.
  FaultInjector blip(4);
  blip.SetSchedule(FaultSite::kTranslatorCatalog, FaultSchedule::Steps({1}));
  ExecutionContext ctx2;
  ctx2.set_retry_policy(policy);
  ctx2.SetFaultInjector(&blip);
  auto recovered = translator.Render(*answer, &ctx2);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->find("narrative unavailable"), std::string::npos);
  auto clean = translator.Render(*answer);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(*recovered, *clean);
}

// ---------------------------------------------------------------------------
// PrecisService under faults and overload.

class ServiceFaultTest : public FaultChaosTest {
 protected:
  ServiceRequest MakeRequest(const std::string& token) {
    ServiceRequest request;
    request.query.tokens = {token};
    request.min_path_weight = 0.9;
    request.tuples_per_relation = 5;
    return request;
  }
};

TEST_F(ServiceFaultTest, LoadSheddingRejectsWithTypedStatus) {
  PrecisService::Options options;
  options.num_workers = 1;
  options.max_queue_depth = 2;
  auto service = PrecisService::Create(engine_.get(), options);
  ASSERT_TRUE(service.ok());

  // SubmitBatch enqueues under one lock while the idle worker waits on the
  // condition variable, so exactly max_queue_depth requests are admitted
  // and the rest shed — deterministically.
  std::vector<ServiceRequest> requests;
  for (int i = 0; i < 10; ++i) requests.push_back(MakeRequest("Woody Allen"));
  auto futures = (*service)->SubmitBatch(std::move(requests));
  ASSERT_EQ(futures.size(), 10u);
  size_t admitted = 0;
  size_t shed = 0;
  for (auto& future : futures) {
    ServiceResponse response = future.get();
    if (response.status.ok()) {
      ++admitted;
    } else {
      EXPECT_TRUE(response.status.IsOverloaded())
          << response.status.ToString();
      ++shed;
    }
  }
  EXPECT_EQ(admitted, 2u);
  EXPECT_EQ(shed, 8u);
  PrecisService::Metrics metrics = (*service)->metrics();
  EXPECT_EQ(metrics.queries_shed, 8u);
  EXPECT_EQ(metrics.queries_served, 2u);  // shed requests are not "served"
}

TEST_F(ServiceFaultTest, FaultedServiceDegradesAndCountsIt) {
  FaultInjector injector(6);
  injector.SetSchedule(FaultSite::kTupleFetch,
                       FaultSchedule::Probability(1.0));
  PrecisService::Options options;
  options.num_workers = 2;
  options.fault_injector = &injector;
  options.retry_policy.initial_backoff_ns = 0;
  auto service = PrecisService::Create(engine_.get(), options);
  ASSERT_TRUE(service.ok());

  std::vector<ServiceRequest> requests;
  for (const std::string& token : kTokens) requests.push_back(MakeRequest(token));
  auto futures = (*service)->SubmitBatch(std::move(requests));
  size_t degraded = 0;
  for (auto& future : futures) {
    ServiceResponse response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    if (response.degraded) {
      ++degraded;
      EXPECT_GT(response.dropped_tuples, 0u);
    }
  }
  EXPECT_GT(degraded, 0u);
  PrecisService::Metrics metrics = (*service)->metrics();
  EXPECT_EQ(metrics.degraded_answers, degraded);
  EXPECT_GT(metrics.dropped_tuples_total, 0u);
  EXPECT_GT(metrics.retries_total, 0u);
  EXPECT_EQ(metrics.failures, 0u);
}

TEST_F(ServiceFaultTest, SingleWorkerFaultedServiceIsDeterministic) {
  auto run = [&](FaultInjector* injector) {
    injector->Reseed(11);
    PrecisService::Options options;
    options.num_workers = 1;  // one worker ⇒ one global check order
    options.fault_injector = injector;
    options.retry_policy.initial_backoff_ns = 0;
    auto service = PrecisService::Create(engine_.get(), options);
    EXPECT_TRUE(service.ok());
    std::vector<std::string> outcomes;
    for (const std::string& token : kTokens) {
      ServiceResponse response = (*service)->Execute(MakeRequest(token));
      EXPECT_TRUE(response.status.ok());
      outcomes.push_back(response.answer != nullptr
                             ? AnswerToJson(*response.answer) + "|" +
                                   response.answer->report.degradation
                                       .ToString()
                             : "<none>");
    }
    return outcomes;
  };
  FaultInjector injector(11);
  injector.SetAll(FaultSchedule::Probability(0.05));
  EXPECT_EQ(run(&injector), run(&injector));
}

}  // namespace
}  // namespace precis
