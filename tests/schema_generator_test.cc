#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "datagen/movies_dataset.h"
#include "precis/schema_generator.h"

namespace precis {
namespace {

class SchemaGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto g = BuildMoviesGraph();
    ASSERT_TRUE(g.ok());
    graph_ = std::make_unique<SchemaGraph>(std::move(*g));
    generator_ = std::make_unique<ResultSchemaGenerator>(graph_.get());
  }

  std::set<std::string> ProjectedNames(const ResultSchema& schema,
                                       const std::string& relation) {
    RelationNodeId rel = *graph_->RelationId(relation);
    std::set<std::string> names;
    for (uint32_t a : schema.projected_attributes(rel)) {
      names.insert(graph_->relation_schema(rel).attribute(a).name);
    }
    return names;
  }

  std::unique_ptr<SchemaGraph> graph_;
  std::unique_ptr<ResultSchemaGenerator> generator_;
};

TEST_F(SchemaGeneratorTest, PaperFigure4WoodyAllenAtThreshold09) {
  // Tokens found in DIRECTOR and ACTOR; degree constraint: only projections
  // with weight >= 0.9 (the paper's running example).
  auto schema = generator_->Generate({std::string("DIRECTOR"), "ACTOR"},
                                     *MinPathWeight(0.9));
  ASSERT_TRUE(schema.ok());

  // Relations of Fig. 4: DIRECTOR, ACTOR, MOVIE, GENRE, CAST (join hop).
  EXPECT_TRUE(schema->ContainsRelation("DIRECTOR"));
  EXPECT_TRUE(schema->ContainsRelation("ACTOR"));
  EXPECT_TRUE(schema->ContainsRelation("MOVIE"));
  EXPECT_TRUE(schema->ContainsRelation("GENRE"));
  EXPECT_TRUE(schema->ContainsRelation("CAST"));
  EXPECT_FALSE(schema->ContainsRelation("THEATRE"));
  EXPECT_FALSE(schema->ContainsRelation("PLAY"));
  EXPECT_FALSE(schema->ContainsRelation("AWARD"));
  EXPECT_FALSE(schema->ContainsRelation("REVIEW"));

  // Projected attributes exactly as in the figure.
  EXPECT_EQ(ProjectedNames(*schema, "DIRECTOR"),
            (std::set<std::string>{"dname", "blocation", "bdate"}));
  EXPECT_EQ(ProjectedNames(*schema, "ACTOR"),
            (std::set<std::string>{"aname"}));
  EXPECT_EQ(ProjectedNames(*schema, "MOVIE"),
            (std::set<std::string>{"title", "year"}));
  EXPECT_EQ(ProjectedNames(*schema, "GENRE"),
            (std::set<std::string>{"genre"}));
  EXPECT_TRUE(ProjectedNames(*schema, "CAST").empty());

  // "observe in the result schema of the figure that MOVIE has an in-degree
  //  equal to 2" (reached from DIRECTOR directly and from ACTOR via CAST).
  EXPECT_EQ(schema->in_degree(*graph_->RelationId("MOVIE")), 2);
}

TEST_F(SchemaGeneratorTest, TokenRelationAlwaysInResult) {
  auto schema = generator_->Generate({std::string("DIRECTOR")},
                                     *MaxProjections(0));
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->ContainsRelation("DIRECTOR"));
  EXPECT_EQ(schema->TotalProjectedAttributes(), 0u);
  EXPECT_TRUE(schema->projection_paths().empty());
}

TEST_F(SchemaGeneratorTest, MaxProjectionsSelectsTopWeighted) {
  auto schema =
      generator_->Generate({std::string("DIRECTOR")}, *MaxProjections(1));
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema->projection_paths().size(), 1u);
  // The single heaviest projection from DIRECTOR is its own heading
  // attribute dname (weight 1.0, length 1 beats the transitive title at
  // weight 1.0, length 2).
  EXPECT_EQ(ProjectedNames(*schema, "DIRECTOR"),
            (std::set<std::string>{"dname"}));
}

TEST_F(SchemaGeneratorTest, EqualWeightTieBreaksTowardsShorterPath) {
  auto schema =
      generator_->Generate({std::string("DIRECTOR")}, *MaxProjections(2));
  ASSERT_TRUE(schema.ok());
  const std::vector<Path>& pd = schema->projection_paths();
  ASSERT_EQ(pd.size(), 2u);
  EXPECT_DOUBLE_EQ(pd[0].weight(), 1.0);
  EXPECT_DOUBLE_EQ(pd[1].weight(), 1.0);
  EXPECT_LE(pd[0].length(), pd[1].length());
  // dname (len 1) then MOVIE.title (len 2).
  EXPECT_EQ(ProjectedNames(*schema, "DIRECTOR"),
            (std::set<std::string>{"dname"}));
  EXPECT_EQ(ProjectedNames(*schema, "MOVIE"),
            (std::set<std::string>{"title"}));
}

TEST_F(SchemaGeneratorTest, ProjectionPathsAreWeightOrdered) {
  auto schema =
      generator_->Generate({std::string("ACTOR")}, *MaxProjections(10));
  ASSERT_TRUE(schema.ok());
  const std::vector<Path>& pd = schema->projection_paths();
  ASSERT_GE(pd.size(), 2u);
  for (size_t i = 1; i < pd.size(); ++i) {
    EXPECT_GE(pd[i - 1].weight(), pd[i].weight());
  }
}

TEST_F(SchemaGeneratorTest, MaxPathLengthOneKeepsLocalAttributesOnly) {
  auto schema = generator_->Generate({std::string("THEATRE")},
                                     *MaxPathLength(1));
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(ProjectedNames(*schema, "THEATRE"),
            (std::set<std::string>{"name", "phone", "region", "tid"}));
  // Nothing transitive: THEATRE is the only relation.
  EXPECT_EQ(schema->relations().size(), 1u);
}

TEST_F(SchemaGeneratorTest, DuplicateTokenRelationsCollapse) {
  auto once =
      generator_->Generate({std::string("DIRECTOR")}, *MinPathWeight(0.9));
  auto twice = generator_->Generate(
      {std::string("DIRECTOR"), "DIRECTOR"}, *MinPathWeight(0.9));
  ASSERT_TRUE(once.ok());
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(once->ToString(), twice->ToString());
  EXPECT_EQ(twice->token_relations().size(), 1u);
}

TEST_F(SchemaGeneratorTest, UnknownRelationNameFails) {
  EXPECT_TRUE(generator_->Generate({std::string("NOPE")}, *MaxProjections(1))
                  .status()
                  .IsNotFound());
}

TEST_F(SchemaGeneratorTest, OutOfRangeRelationIdFails) {
  EXPECT_TRUE(generator_
                  ->Generate(std::vector<RelationNodeId>{999},
                             *MaxProjections(1))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SchemaGeneratorTest, DeterministicAcrossRuns) {
  auto a = generator_->Generate({std::string("DIRECTOR"), "ACTOR"},
                                *MinPathWeight(0.5));
  auto b = generator_->Generate({std::string("DIRECTOR"), "ACTOR"},
                                *MinPathWeight(0.5));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ToString(), b->ToString());
}

TEST_F(SchemaGeneratorTest, StatsAreTracked) {
  ASSERT_TRUE(generator_
                  ->Generate({std::string("DIRECTOR")}, *MinPathWeight(0.8))
                  .ok());
  const SchemaGeneratorStats& stats = generator_->last_stats();
  EXPECT_GT(stats.paths_enqueued, 0u);
  EXPECT_GT(stats.paths_dequeued, 0u);
}

TEST_F(SchemaGeneratorTest, ZeroThresholdCoversConnectedComponent) {
  // Every relation reachable from MOVIE joins in at threshold 0 (all edges
  // admit), so the whole connected schema is in G'.
  auto schema =
      generator_->Generate({std::string("MOVIE")}, *MinPathWeight(0.0));
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->relations().size(), graph_->num_relations());
}

TEST_F(SchemaGeneratorTest, InDegreeCountsDistinctArrivingEdges) {
  auto schema = generator_->Generate({std::string("DIRECTOR"), "ACTOR"},
                                     *MinPathWeight(0.9));
  ASSERT_TRUE(schema.ok());
  // GENRE is reached only through MOVIE -> GENRE: in-degree 1.
  EXPECT_EQ(schema->in_degree(*graph_->RelationId("GENRE")), 1);
  // Token relations with no arriving edges have in-degree 0.
  EXPECT_EQ(schema->in_degree(*graph_->RelationId("DIRECTOR")), 0);
}

TEST_F(SchemaGeneratorTest, ContainsAttributeHelpers) {
  auto schema = generator_->Generate({std::string("DIRECTOR")},
                                     *MinPathWeight(0.9));
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->ContainsAttribute("MOVIE", "title"));
  EXPECT_FALSE(schema->ContainsAttribute("MOVIE", "mid"));
  EXPECT_FALSE(schema->ContainsAttribute("NOPE", "x"));
  EXPECT_FALSE(schema->ContainsAttribute("MOVIE", "nope"));
}

TEST_F(SchemaGeneratorTest, LengthDecayValidation) {
  ResultSchemaGenerator generator(graph_.get());
  EXPECT_TRUE(generator.set_length_decay(0.0).IsInvalidArgument());
  EXPECT_TRUE(generator.set_length_decay(-0.5).IsInvalidArgument());
  EXPECT_TRUE(generator.set_length_decay(1.5).IsInvalidArgument());
  EXPECT_TRUE(generator.set_length_decay(1.0).ok());
  EXPECT_TRUE(generator.set_length_decay(0.3).ok());
  EXPECT_DOUBLE_EQ(generator.length_decay(), 0.3);
}

TEST_F(SchemaGeneratorTest, DefaultDecayIsPureMultiplication) {
  ResultSchemaGenerator generator(graph_.get());
  auto plain = generator.Generate({std::string("DIRECTOR"), "ACTOR"},
                                  *MinPathWeight(0.9));
  ASSERT_TRUE(generator.set_length_decay(1.0).ok());
  auto explicit_one = generator.Generate({std::string("DIRECTOR"), "ACTOR"},
                                         *MinPathWeight(0.9));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(explicit_one.ok());
  EXPECT_EQ(plain->ToString(), explicit_one->ToString());
}

TEST_F(SchemaGeneratorTest, LengthDecayPenalizesTransitiveProjections) {
  ResultSchemaGenerator generator(graph_.get());
  // lambda = 0.85: DIRECTOR's own attributes survive w >= 0.9 untouched
  // (length 1 pays no decay), but DIRECTOR -> MOVIE . title drops to
  // 1 * 0.85 * 1 * 0.85 = 0.7225 and falls out of the schema.
  ASSERT_TRUE(generator.set_length_decay(0.85).ok());
  auto schema =
      generator.Generate({std::string("DIRECTOR")}, *MinPathWeight(0.9));
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(ProjectedNames(*schema, "DIRECTOR"),
            (std::set<std::string>{"dname", "blocation", "bdate"}));
  EXPECT_FALSE(schema->ContainsRelation("MOVIE"));
}

TEST_F(SchemaGeneratorTest, SmallerDecayNeverGrowsSchema) {
  ResultSchemaGenerator generator(graph_.get());
  auto baseline =
      generator.Generate({std::string("ACTOR")}, *MinPathWeight(0.5));
  ASSERT_TRUE(baseline.ok());
  for (double lambda : {0.9, 0.7, 0.5}) {
    ASSERT_TRUE(generator.set_length_decay(lambda).ok());
    auto decayed =
        generator.Generate({std::string("ACTOR")}, *MinPathWeight(0.5));
    ASSERT_TRUE(decayed.ok());
    EXPECT_LE(decayed->TotalProjectedAttributes(),
              baseline->TotalProjectedAttributes())
        << "lambda=" << lambda;
    for (RelationNodeId rel : decayed->relations()) {
      EXPECT_TRUE(baseline->relations().count(rel) > 0);
    }
  }
}

// Property sweep: as the weight threshold decreases, the result schema only
// grows (relations, attributes, and join edges are monotone).
class ThresholdMonotonicityTest
    : public SchemaGeneratorTest,
      public ::testing::WithParamInterface<double> {};

TEST_P(ThresholdMonotonicityTest, LowerThresholdYieldsSupersetSchema) {
  double high = GetParam();
  double low = high - 0.2;
  if (low < 0.0) low = 0.0;
  auto tight = generator_->Generate({std::string("DIRECTOR"), "ACTOR"},
                                    *MinPathWeight(high));
  auto loose = generator_->Generate({std::string("DIRECTOR"), "ACTOR"},
                                    *MinPathWeight(low));
  ASSERT_TRUE(tight.ok());
  ASSERT_TRUE(loose.ok());
  for (RelationNodeId rel : tight->relations()) {
    EXPECT_TRUE(loose->relations().count(rel) > 0)
        << "relation " << graph_->relation_name(rel) << " lost at " << low;
    for (uint32_t attr : tight->projected_attributes(rel)) {
      EXPECT_TRUE(loose->projected_attributes(rel).count(attr) > 0);
    }
  }
  EXPECT_GE(loose->projection_paths().size(),
            tight->projection_paths().size());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdMonotonicityTest,
                         ::testing::Values(1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4,
                                           0.3, 0.2));

// Property sweep: top-r degree constraint accepts exactly min(r, available)
// projection paths and grows monotonically in r.
class TopRTest : public SchemaGeneratorTest,
                 public ::testing::WithParamInterface<size_t> {};

TEST_P(TopRTest, AcceptsAtMostRProjections) {
  size_t r = GetParam();
  auto schema =
      generator_->Generate({std::string("MOVIE")}, *MaxProjections(r));
  ASSERT_TRUE(schema.ok());
  EXPECT_LE(schema->projection_paths().size(), r);
  if (r <= 20) {
    // The movies graph has far more than 20 admissible projection paths
    // from MOVIE, so small r is always saturated.
    EXPECT_EQ(schema->projection_paths().size(), r);
  }
  auto smaller = generator_->Generate({std::string("MOVIE")},
                                      *MaxProjections(r > 0 ? r - 1 : 0));
  ASSERT_TRUE(smaller.ok());
  EXPECT_LE(smaller->TotalProjectedAttributes(),
            schema->TotalProjectedAttributes());
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopRTest,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 20, 40));

}  // namespace
}  // namespace precis
