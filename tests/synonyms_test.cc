#include <gtest/gtest.h>

#include <memory>

#include "datagen/movies_dataset.h"
#include "precis/engine.h"
#include "text/synonyms.h"

namespace precis {
namespace {

// --- SynonymTable ---

TEST(SynonymTableTest, UnmappedTokenPassesThrough) {
  SynonymTable table;
  EXPECT_EQ(table.Canonicalize("Woody Allen"), "Woody Allen");
  EXPECT_EQ(table.size(), 0u);
}

TEST(SynonymTableTest, BasicMapping) {
  SynonymTable table;
  ASSERT_TRUE(table.AddSynonym("W. Allen", "Woody Allen").ok());
  EXPECT_EQ(table.Canonicalize("W. Allen"), "Woody Allen");
  EXPECT_EQ(table.size(), 1u);
}

TEST(SynonymTableTest, MatchingIsCaseAndPunctuationInsensitive) {
  SynonymTable table;
  ASSERT_TRUE(table.AddSynonym("W. Allen", "Woody Allen").ok());
  EXPECT_EQ(table.Canonicalize("w allen"), "Woody Allen");
  EXPECT_EQ(table.Canonicalize("W  ALLEN!"), "Woody Allen");
}

TEST(SynonymTableTest, ChainsResolveTransitively) {
  SynonymTable table;
  ASSERT_TRUE(table.AddSynonym("WA", "W. Allen").ok());
  ASSERT_TRUE(table.AddSynonym("W. Allen", "Woody Allen").ok());
  EXPECT_EQ(table.Canonicalize("WA"), "Woody Allen");
}

TEST(SynonymTableTest, CyclesRejected) {
  SynonymTable table;
  ASSERT_TRUE(table.AddSynonym("a", "b").ok());
  ASSERT_TRUE(table.AddSynonym("b", "c").ok());
  EXPECT_TRUE(table.AddSynonym("c", "a").IsInvalidArgument());
  EXPECT_TRUE(table.AddSynonym("b", "a").IsInvalidArgument());
}

TEST(SynonymTableTest, SelfAndEmptyRejected) {
  SynonymTable table;
  EXPECT_TRUE(table.AddSynonym("x", "X!").IsInvalidArgument());  // same token
  EXPECT_TRUE(table.AddSynonym("", "y").IsInvalidArgument());
  EXPECT_TRUE(table.AddSynonym("y", "...").IsInvalidArgument());
}

TEST(SynonymTableTest, RemappingOverwrites) {
  SynonymTable table;
  ASSERT_TRUE(table.AddSynonym("WA", "Wrong Person").ok());
  ASSERT_TRUE(table.AddSynonym("WA", "Woody Allen").ok());
  EXPECT_EQ(table.Canonicalize("WA"), "Woody Allen");
}

// --- Engine integration ---

class SynonymEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 20;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
    auto engine = PrecisEngine::Create(&dataset_->db(), &dataset_->graph());
    ASSERT_TRUE(engine.ok());
    engine_ = std::make_unique<PrecisEngine>(std::move(*engine));
    ASSERT_TRUE(synonyms_.AddSynonym("W. Allen", "Woody Allen").ok());
  }

  std::unique_ptr<MoviesDataset> dataset_;
  std::unique_ptr<PrecisEngine> engine_;
  SynonymTable synonyms_;
};

TEST_F(SynonymEngineTest, VariantSpellingFindsNothingWithoutTable) {
  auto answer = engine_->Answer(PrecisQuery{{"W. Allen"}},
                                *MinPathWeight(0.9), *MaxTuplesPerRelation(3));
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->empty());
}

TEST_F(SynonymEngineTest, VariantSpellingResolvesWithTable) {
  engine_->set_synonyms(&synonyms_);
  auto answer = engine_->Answer(PrecisQuery{{"W. Allen"}},
                                *MinPathWeight(0.9), *MaxTuplesPerRelation(3));
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->empty());
  ASSERT_EQ(answer->matches.size(), 1u);
  EXPECT_EQ(answer->matches[0].token, "W. Allen");
  EXPECT_EQ(answer->matches[0].resolved_token, "Woody Allen");
  EXPECT_EQ((*answer->database.GetRelation("MOVIE"))->num_tuples(), 3u);
}

TEST_F(SynonymEngineTest, TableCanBeRemoved) {
  engine_->set_synonyms(&synonyms_);
  engine_->set_synonyms(nullptr);
  auto answer = engine_->Answer(PrecisQuery{{"W. Allen"}},
                                *MinPathWeight(0.9), *MaxTuplesPerRelation(3));
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->empty());
}

// --- Homonyms: one answer per occurrence ---

TEST_F(SynonymEngineTest, AnswerPerOccurrenceSplitsHomonyms) {
  auto answers = engine_->AnswerPerOccurrence(
      PrecisQuery{{"Woody Allen"}}, *MinPathWeight(0.9),
      *MaxTuplesPerRelation(3));
  ASSERT_TRUE(answers.ok());
  // Woody Allen is an ACTOR and a DIRECTOR: two separate answers.
  ASSERT_EQ(answers->size(), 2u);
  std::set<std::string> roots;
  for (const PrecisAnswer& a : *answers) {
    ASSERT_EQ(a.matches.size(), 1u);
    ASSERT_EQ(a.matches[0].occurrences().size(), 1u);
    roots.insert(a.matches[0].occurrences()[0].relation);
    // Each answer is seeded by exactly one relation.
    EXPECT_EQ(a.schema.token_relations().size(), 1u);
  }
  EXPECT_EQ(roots, (std::set<std::string>{"ACTOR", "DIRECTOR"}));
}

TEST_F(SynonymEngineTest, PerOccurrenceAnswersDifferInShape) {
  auto answers = engine_->AnswerPerOccurrence(
      PrecisQuery{{"Woody Allen"}}, *MinPathWeight(0.9),
      *MaxTuplesPerRelation(10));
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 2u);
  // The director-rooted answer contains DIRECTOR data; the actor-rooted one
  // reaches MOVIE through CAST. Both are valid sub-databases.
  for (const PrecisAnswer& a : *answers) {
    EXPECT_TRUE(a.database.ValidateForeignKeys().ok());
    EXPECT_TRUE(a.database.HasRelation("MOVIE"));
  }
}

TEST_F(SynonymEngineTest, AnswerPerOccurrenceOnUnknownTokenIsEmpty) {
  auto answers = engine_->AnswerPerOccurrence(
      PrecisQuery{{"nobody-here"}}, *MinPathWeight(0.9),
      *MaxTuplesPerRelation(3));
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
}

TEST_F(SynonymEngineTest, SingleOccurrenceMatchesCombinedAnswer) {
  // "Match Point" occurs only in MOVIE.title: per-occurrence equals the
  // combined answer.
  auto combined = engine_->Answer(PrecisQuery{{"Match Point"}},
                                  *MinPathWeight(0.9),
                                  *MaxTuplesPerRelation(5));
  auto split = engine_->AnswerPerOccurrence(PrecisQuery{{"Match Point"}},
                                            *MinPathWeight(0.9),
                                            *MaxTuplesPerRelation(5));
  ASSERT_TRUE(combined.ok());
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(split->size(), 1u);
  EXPECT_EQ((*split)[0].database.DescribeSchema(),
            combined->database.DescribeSchema());
}

}  // namespace
}  // namespace precis
