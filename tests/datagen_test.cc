#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "datagen/movies_dataset.h"
#include "datagen/workload.h"

namespace precis {
namespace {

TEST(MoviesDatasetTest, CreatesAllRelations) {
  MoviesConfig config;
  config.num_movies = 20;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  for (const char* name :
       {"THEATRE", "PLAY", "GENRE", "MOVIE", "CAST", "ACTOR", "DIRECTOR",
        "AWARD", "REVIEW", "STUDIO", "PRODUCED_BY"}) {
    EXPECT_TRUE(ds->db().HasRelation(name)) << name;
  }
  EXPECT_EQ(ds->db().num_relations(), 11u);
}

TEST(MoviesDatasetTest, AuxiliaryRelationsCanBeExcluded) {
  MoviesConfig config;
  config.num_movies = 10;
  config.include_auxiliary_relations = false;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->db().num_relations(), 7u);
  EXPECT_FALSE(ds->db().HasRelation("AWARD"));
  EXPECT_EQ(ds->graph().num_relations(), 7u);
}

TEST(MoviesDatasetTest, ScalesWithConfiguredMovieCount) {
  MoviesConfig config;
  config.num_movies = 100;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto movie = ds->db().GetRelation("MOVIE");
  // 100 synthetic + 5 paper-example movies.
  EXPECT_EQ((*movie)->num_tuples(), 105u);
  auto genre = ds->db().GetRelation("GENRE");
  EXPECT_GE((*genre)->num_tuples(), 100u);  // >= 1 genre per movie
  auto cast = ds->db().GetRelation("CAST");
  EXPECT_EQ((*cast)->num_tuples(), 3u + 300u);  // 3 example + 3 per movie
}

TEST(MoviesDatasetTest, PaperExampleCanBeExcluded) {
  MoviesConfig config;
  config.num_movies = 10;
  config.include_paper_example = false;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto movie = ds->db().GetRelation("MOVIE");
  EXPECT_EQ((*movie)->num_tuples(), 10u);
}

TEST(MoviesDatasetTest, ForeignKeysHoldOnGeneratedData) {
  MoviesConfig config;
  config.num_movies = 200;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ds->db().ValidateForeignKeys().ok());
}

TEST(MoviesDatasetTest, DeterministicForSameSeed) {
  MoviesConfig config;
  config.num_movies = 50;
  config.seed = 123;
  auto a = MoviesDataset::Create(config);
  auto b = MoviesDataset::Create(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->db().DescribeSchema(), b->db().DescribeSchema());
  auto ra = a->db().GetRelation("MOVIE");
  auto rb = b->db().GetRelation("MOVIE");
  for (Tid tid = 0; tid < (*ra)->num_tuples(); ++tid) {
    EXPECT_EQ((*ra)->tuple(tid), (*rb)->tuple(tid));
  }
}

TEST(MoviesDatasetTest, DifferentSeedsDiffer) {
  MoviesConfig config;
  config.num_movies = 50;
  config.seed = 1;
  auto a = MoviesDataset::Create(config);
  config.seed = 2;
  auto b = MoviesDataset::Create(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto ra = a->db().GetRelation("MOVIE");
  auto rb = b->db().GetRelation("MOVIE");
  bool any_diff = false;
  for (Tid tid = 0; tid < (*ra)->num_tuples(); ++tid) {
    if (!((*ra)->tuple(tid) == (*rb)->tuple(tid))) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(MoviesDatasetTest, IndexesOnJoinAttributes) {
  MoviesConfig config;
  config.num_movies = 10;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE((*ds->db().GetRelation("MOVIE"))->HasIndex("did"));
  EXPECT_TRUE((*ds->db().GetRelation("GENRE"))->HasIndex("mid"));
  EXPECT_TRUE((*ds->db().GetRelation("CAST"))->HasIndex("aid"));
}

TEST(MoviesDatasetTest, ZipfSkewConcentratesDirectors) {
  MoviesConfig config;
  config.num_movies = 500;
  config.zipf_skew = 1.2;
  config.include_paper_example = false;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto movie = ds->db().GetRelation("MOVIE");
  std::map<Value, int> fanout;
  auto did_idx = (*movie)->schema().AttributeIndex("did");
  for (Tid tid = 0; tid < (*movie)->num_tuples(); ++tid) {
    ++fanout[(*movie)->tuple(tid)[*did_idx]];
  }
  int max_fanout = 0;
  for (const auto& [did, n] : fanout) max_fanout = std::max(max_fanout, n);
  double avg = static_cast<double>((*movie)->num_tuples()) / fanout.size();
  EXPECT_GT(max_fanout, 2 * avg);
}

TEST(MoviesDatasetTest, GraphMatchesPaperWeights) {
  auto g = BuildMoviesGraph();
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(*g->JoinWeight("GENRE", "MOVIE"), 1.0);
  EXPECT_DOUBLE_EQ(*g->JoinWeight("MOVIE", "GENRE"), 0.9);
  EXPECT_DOUBLE_EQ(*g->ProjectionWeight("THEATRE", "phone"), 0.8);
  EXPECT_TRUE(g->Validate().ok());
}

// --- workload helpers ---

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 30;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
  }

  std::unique_ptr<MoviesDataset> dataset_;
};

TEST_F(WorkloadTest, RandomJoinChainHasRequestedSize) {
  Rng rng(42);
  for (size_t n = 1; n <= 8; ++n) {
    auto chain = RandomJoinChain(dataset_->graph(), &rng, n);
    ASSERT_TRUE(chain.ok()) << "n=" << n;
    EXPECT_EQ(chain->num_relations(), n);
    // Relations are distinct and every edge departs from a relation already
    // in the set (the edges form a tree rooted at start).
    std::set<RelationNodeId> seen = {chain->start};
    for (const JoinEdge* e : chain->edges) {
      EXPECT_TRUE(seen.count(e->from) > 0);
      EXPECT_TRUE(seen.insert(e->to).second);
    }
  }
}

TEST_F(WorkloadTest, RandomJoinChainRejectsBadSizes) {
  Rng rng(42);
  EXPECT_TRUE(RandomJoinChain(dataset_->graph(), &rng, 0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RandomJoinChain(dataset_->graph(), &rng, 100)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(WorkloadTest, SchemaForChainCoversChain) {
  Rng rng(7);
  auto chain = RandomJoinChain(dataset_->graph(), &rng, 4);
  ASSERT_TRUE(chain.ok());
  auto schema = SchemaForChain(dataset_->graph(), *chain);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->relations().size(), 4u);
  EXPECT_EQ(schema->join_edges().size(), 3u);
  EXPECT_EQ(schema->token_relations().size(), 1u);
  EXPECT_EQ(schema->token_relations()[0], chain->start);
  // Every chain relation projects at least one attribute (the movies graph
  // gives each relation projection edges).
  for (RelationNodeId rel : schema->relations()) {
    EXPECT_FALSE(schema->projected_attributes(rel).empty());
  }
  // Each hop has in-degree exactly 1.
  for (const JoinEdge* e : chain->edges) {
    EXPECT_EQ(schema->in_degree(e->to), 1);
  }
}

TEST_F(WorkloadTest, SchemaForChainSingleRelation) {
  JoinChain chain;
  chain.start = *dataset_->graph().RelationId("MOVIE");
  auto schema = SchemaForChain(dataset_->graph(), chain);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->relations().size(), 1u);
  EXPECT_TRUE(schema->join_edges().empty());
  EXPECT_FALSE(schema->projected_attributes(chain.start).empty());
}

TEST_F(WorkloadTest, RandomSeedTidsDistinctAndBounded) {
  Rng rng(9);
  auto tids = RandomSeedTids(dataset_->db(), "MOVIE", &rng, 10);
  ASSERT_TRUE(tids.ok());
  EXPECT_EQ(tids->size(), 10u);
  std::set<Tid> distinct(tids->begin(), tids->end());
  EXPECT_EQ(distinct.size(), 10u);
  auto movie = dataset_->db().GetRelation("MOVIE");
  for (Tid tid : *tids) EXPECT_LT(tid, (*movie)->num_tuples());
}

TEST_F(WorkloadTest, RandomSeedTidsClampedToRelationSize) {
  Rng rng(9);
  auto tids = RandomSeedTids(dataset_->db(), "THEATRE", &rng, 1000000);
  ASSERT_TRUE(tids.ok());
  auto theatre = dataset_->db().GetRelation("THEATRE");
  EXPECT_EQ(tids->size(), (*theatre)->num_tuples());
}

TEST_F(WorkloadTest, RandomTokenComesFromRelation) {
  Rng rng(11);
  auto token = RandomToken(dataset_->db(), "DIRECTOR", "dname", &rng);
  ASSERT_TRUE(token.ok());
  EXPECT_FALSE(token->empty());
  EXPECT_TRUE(
      RandomToken(dataset_->db(), "NOPE", "x", &rng).status().IsNotFound());
}

}  // namespace
}  // namespace precis
