#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "datagen/movies_dataset.h"
#include "precis/engine.h"
#include "service/precis_service.h"
#include "shard/sharded_engine.h"
#include "shard/sharded_service.h"
#include "storage/serialization.h"

namespace precis {
namespace {

/// Concurrent read-path contract: one engine, one source database, many
/// threads asking queries at once. Access counters are atomic and the
/// schema cache is locked, so runs must be crash-free, answers identical
/// to the single-threaded result, and counters exactly accounted.
class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 200;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
    auto engine = PrecisEngine::Create(&dataset_->db(), &dataset_->graph());
    ASSERT_TRUE(engine.ok());
    engine_ = std::make_unique<PrecisEngine>(std::move(*engine));
  }

  std::unique_ptr<MoviesDataset> dataset_;
  std::unique_ptr<PrecisEngine> engine_;
};

TEST_F(ConcurrencyTest, ParallelQueriesAgreeWithSerialAnswer) {
  auto d = MinPathWeight(0.9);
  auto c = MaxTuplesPerRelation(5);
  auto reference = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c);
  ASSERT_TRUE(reference.ok());
  std::string expected = reference->database.DescribeSchema();

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 20;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        auto answer = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c);
        if (!answer.ok()) {
          ++failures[t];
          continue;
        }
        if (answer->database.DescribeSchema() != expected) ++mismatches[t];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

TEST_F(ConcurrencyTest, AtomicCountersAccountForEveryQuery) {
  auto d = MinPathWeight(0.9);
  auto c = MaxTuplesPerRelation(3);
  // Serial baseline for one query's statement count.
  dataset_->db().ResetStats();
  ASSERT_TRUE(engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c).ok());
  uint64_t per_query = dataset_->db().stats().statements;
  ASSERT_GT(per_query, 0u);

  constexpr int kThreads = 6;
  constexpr int kQueriesPerThread = 10;
  dataset_->db().ResetStats();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        auto answer = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c);
        if (!answer.ok()) std::abort();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Relaxed atomics lose no increments: the totals add up exactly.
  EXPECT_EQ(dataset_->db().stats().statements,
            per_query * kThreads * kQueriesPerThread);
}

TEST_F(ConcurrencyTest, SchemaCacheUnderContention) {
  engine_->set_schema_cache_enabled(true);
  auto d = MinPathWeight(0.9);
  auto c = MaxTuplesPerRelation(3);
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        auto answer = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c);
        if (!answer.ok()) std::abort();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every query either hit or missed; the sum is exact. (Several threads
  // may race to fill the same key, so misses can exceed 1 but stay small.)
  EXPECT_EQ(engine_->schema_cache_hits() + engine_->schema_cache_misses(),
            static_cast<size_t>(kThreads * kQueriesPerThread));
  EXPECT_LE(engine_->schema_cache_misses(), static_cast<size_t>(kThreads));
  EXPECT_GE(engine_->schema_cache_hits(),
            static_cast<size_t>(kThreads * kQueriesPerThread - kThreads));
}

TEST_F(ConcurrencyTest, PerContextStatsSumToGlobalCounters) {
  auto d = MinPathWeight(0.8);
  auto c = MaxTuplesPerRelation(4);
  const std::vector<std::string> tokens = {"Woody Allen", "Match Point",
                                           "Comedy", "Drama",
                                           "Scarlett Johansson"};
  constexpr int kThreads = 6;
  constexpr int kQueriesPerThread = 12;

  dataset_->db().ResetStats();
  std::vector<AccessStats> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        ExecutionContext ctx;
        const std::string& token = tokens[(t + q) % tokens.size()];
        auto answer =
            engine_->Answer(PrecisQuery{{token}}, *d, *c, DbGenOptions(),
                            &ctx);
        if (!answer.ok()) std::abort();
        per_thread[t] += ctx.stats();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Every access was double-booked: once into the query's own context and
  // once into the database's global counters. With no other activity the
  // two views must agree exactly.
  AccessStats sum;
  for (const AccessStats& s : per_thread) sum += s;
  const AccessStats& global = dataset_->db().stats();
  EXPECT_EQ(sum.index_probes.load(std::memory_order_relaxed),
            global.index_probes.load(std::memory_order_relaxed));
  EXPECT_EQ(sum.tuple_fetches.load(std::memory_order_relaxed),
            global.tuple_fetches.load(std::memory_order_relaxed));
  EXPECT_EQ(sum.sequential_scans.load(std::memory_order_relaxed),
            global.sequential_scans.load(std::memory_order_relaxed));
  EXPECT_EQ(sum.statements.load(std::memory_order_relaxed),
            global.statements.load(std::memory_order_relaxed));
  EXPECT_GT(sum.tuple_fetches.load(std::memory_order_relaxed), 0u);
}

TEST_F(ConcurrencyTest, DeadlineStoppedQueriesStayWellFormedUnderLoad) {
  auto d = MinPathWeight(0.8);
  auto c = MaxTuplesPerRelation(4);
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < 10; ++q) {
        ExecutionContext ctx;
        // Alternate between already-expired and generous deadlines so
        // partial and complete answers interleave on the same engine.
        ctx.SetDeadlineAfter(q % 2 == 0 ? 1e-9 : 60.0);
        auto answer = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c,
                                      DbGenOptions(), &ctx);
        if (!answer.ok() || !answer->database.ValidateForeignKeys().ok()) {
          ++failures[t];
          continue;
        }
        // An expired deadline must be flagged; report and context agree.
        if (q % 2 == 0 &&
            (answer->report.stop_reason != StopReason::kDeadlineExceeded ||
             ctx.stop_reason() != StopReason::kDeadlineExceeded)) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;
}

TEST_F(ConcurrencyTest, MixedQueriesInParallel) {
  auto d = MinPathWeight(0.8);
  auto c = MaxTuplesPerRelation(4);
  const std::vector<std::string> tokens = {"Woody Allen", "Match Point",
                                           "Comedy", "Drama",
                                           "Scarlett Johansson"};
  constexpr int kThreads = 5;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < 15; ++q) {
        const std::string& token = tokens[(t + q) % tokens.size()];
        auto answer = engine_->Answer(PrecisQuery{{token}}, *d, *c);
        if (!answer.ok() || !answer->database.ValidateForeignKeys().ok()) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);
}

TEST_F(ConcurrencyTest, FullyCachedEngineUnderContention) {
  // All three cache levels on, many threads, a repeating token mix: every
  // answer a thread receives — cached or freshly built — must equal the
  // single-threaded reference, and the answer-cache counters must account
  // for every call exactly (one lookup per AnswerShared).
  auto d = MinPathWeight(0.9);
  auto c = MaxTuplesPerRelation(3);
  const std::vector<std::string> tokens = {"Woody Allen", "Comedy", "Drama"};
  std::vector<std::string> expected;
  for (const std::string& token : tokens) {
    auto reference = engine_->Answer(PrecisQuery{{token}}, *d, *c);
    ASSERT_TRUE(reference.ok());
    expected.push_back(reference->database.DescribeSchema());
  }

  engine_->set_caches_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 25;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        size_t pick = static_cast<size_t>(t + q) % tokens.size();
        auto answer =
            engine_->AnswerShared(PrecisQuery{{tokens[pick]}}, *d, *c);
        if (!answer.ok() ||
            (*answer)->database.DescribeSchema() != expected[pick]) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;

  LruCacheStats stats = engine_->answer_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kQueriesPerThread));
  // Threads may race to build the same key, but never more than once each
  // per distinct query.
  EXPECT_LE(stats.misses, static_cast<uint64_t>(kThreads * tokens.size()));
  EXPECT_GT(stats.hits, 0u);
}

TEST_F(ConcurrencyTest, IntraQueryParallelismUnderInterQueryLoad) {
  // The two parallelism axes at once: many threads each run queries whose
  // database generation fans out chunk tasks onto the ONE shared TaskPool
  // (DbGenOptions::pool == nullptr). Every answer must be byte-identical
  // to the sequential single-threaded reference.
  auto d = MinPathWeight(0.8);
  auto c = MaxTuplesPerRelation(10);
  auto serialize = [](const Database& db) {
    std::ostringstream os;
    EXPECT_TRUE(SaveDatabase(db, &os).ok());
    return os.str();
  };
  auto reference = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c);
  ASSERT_TRUE(reference.ok());
  std::string expected = serialize(reference->database);

  DbGenOptions parallel_options;
  parallel_options.parallelism = 4;  // shared pool

  constexpr int kThreads = 6;
  constexpr int kQueriesPerThread = 8;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        auto answer = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c,
                                      parallel_options);
        if (!answer.ok()) {
          ++failures[t];
          continue;
        }
        std::ostringstream os;
        if (!SaveDatabase(answer->database, &os).ok() ||
            os.str() != expected) {
          ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

TEST_F(ConcurrencyTest, ServiceWorkersShareTheTaskPool) {
  // PrecisService with a service-wide dbgen_parallelism default: four
  // service workers each fan their queries' chunk tasks onto the shared
  // pool. All answers complete, validate, and agree with the sequential
  // reference.
  auto d = MinPathWeight(0.8);
  auto c = MaxTuplesPerRelation(10);
  auto reference = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c);
  ASSERT_TRUE(reference.ok());
  std::ostringstream ref_os;
  ASSERT_TRUE(SaveDatabase(reference->database, &ref_os).ok());
  const std::string expected = ref_os.str();

  PrecisService::Options options;
  options.num_workers = 4;
  options.dbgen_parallelism = 4;
  auto service = PrecisService::Create(engine_.get(), options);
  ASSERT_TRUE(service.ok());

  std::vector<ServiceRequest> requests;
  for (int i = 0; i < 24; ++i) {
    ServiceRequest request;
    request.query = PrecisQuery{{"Woody Allen"}};
    request.min_path_weight = 0.8;
    request.tuples_per_relation = 10;
    requests.push_back(std::move(request));
  }
  auto futures = (*service)->SubmitBatch(std::move(requests));
  for (auto& future : futures) {
    ServiceResponse response = future.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_NE(response.answer, nullptr);
    std::ostringstream os;
    ASSERT_TRUE(SaveDatabase(response.answer->database, &os).ok());
    EXPECT_EQ(os.str(), expected);
  }
  (*service)->Shutdown();
}

TEST_F(ConcurrencyTest, ShardedServiceByteIdenticalUnderConcurrentLoad) {
  // The sharded front end under the same contention shape: four workers
  // submit a mixed batch against a 4-shard engine whose scatter tasks land
  // on the shared TaskPool. Every answer must be byte-identical to the
  // single-engine sequential reference, and the per-shard serving counters
  // must account for the scatter work.
  auto d = MinPathWeight(0.8);
  auto c = MaxTuplesPerRelation(10);
  auto reference = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c);
  ASSERT_TRUE(reference.ok());
  std::ostringstream ref_os;
  ASSERT_TRUE(SaveDatabase(reference->database, &ref_os).ok());
  const std::string expected = ref_os.str();

  auto sharded =
      ShardedPrecisEngine::Create(dataset_->db(), &dataset_->graph(), 4);
  ASSERT_TRUE(sharded.ok());
  (*sharded)->set_caches_enabled(true);

  PrecisService::Options options;
  options.num_workers = 4;
  auto service = ShardedPrecisService::Create(sharded->get(), options);
  ASSERT_TRUE(service.ok());

  std::vector<ServiceRequest> requests;
  for (int i = 0; i < 24; ++i) {
    ServiceRequest request;
    request.query = PrecisQuery{{"Woody Allen"}};
    request.min_path_weight = 0.8;
    request.tuples_per_relation = 10;
    requests.push_back(std::move(request));
  }
  auto futures = (*service)->SubmitBatch(std::move(requests));
  for (auto& future : futures) {
    ServiceResponse response = future.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_NE(response.answer, nullptr);
    std::ostringstream os;
    ASSERT_TRUE(SaveDatabase(response.answer->database, &os).ok());
    EXPECT_EQ(os.str(), expected);
  }

  PrecisService::Metrics metrics = (*service)->metrics();
  EXPECT_EQ(metrics.queries_served, 24u);
  ASSERT_EQ(metrics.shards.size(), 4u);
  uint64_t subqueries = 0;
  for (const auto& shard : metrics.shards) subqueries += shard.subqueries;
  EXPECT_GT(subqueries, 0u);
  (*service)->Shutdown();
}

}  // namespace
}  // namespace precis
