#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "datagen/bibliography_dataset.h"
#include "precis/engine.h"
#include "translator/translator.h"

namespace precis {
namespace {

class BibliographyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BibliographyConfig config;
    config.num_papers = 200;
    auto ds = BibliographyDataset::Create(config);
    ASSERT_TRUE(ds.ok()) << ds.status();
    dataset_ = std::make_unique<BibliographyDataset>(std::move(*ds));
    auto engine = PrecisEngine::Create(&dataset_->db(), &dataset_->graph());
    ASSERT_TRUE(engine.ok());
    engine_ = std::make_unique<PrecisEngine>(std::move(*engine));
  }

  std::unique_ptr<BibliographyDataset> dataset_;
  std::unique_ptr<PrecisEngine> engine_;
};

TEST_F(BibliographyTest, DatasetIsConsistent) {
  EXPECT_EQ(dataset_->db().num_relations(), 6u);
  EXPECT_TRUE(dataset_->db().ValidateForeignKeys().ok());
  EXPECT_TRUE(dataset_->graph().Validate().ok());
  auto paper = dataset_->db().GetRelation("PAPER");
  EXPECT_EQ((*paper)->num_tuples(), 200u);
}

TEST_F(BibliographyTest, DeterministicForSameSeed) {
  BibliographyConfig config;
  config.num_papers = 50;
  auto a = BibliographyDataset::Create(config);
  auto b = BibliographyDataset::Create(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->db().DescribeSchema(), b->db().DescribeSchema());
}

TEST_F(BibliographyTest, CitationEdgesJoinDifferentlyNamedAttributes) {
  // The machinery so far only met same-name joins; the citation edges join
  // CITES.citing / CITES.cited to PAPER.pid.
  const SchemaGraph& g = dataset_->graph();
  RelationNodeId cites = *g.RelationId("CITES");
  RelationNodeId paper = *g.RelationId("PAPER");
  bool found_cited_edge = false;
  for (const JoinEdge* e : g.JoinsFrom(cites)) {
    if (e->to == paper) {
      EXPECT_EQ(e->from_attribute, "cited");
      EXPECT_EQ(e->to_attribute, "pid");
      found_cited_edge = true;
    }
  }
  EXPECT_TRUE(found_cited_edge);
}

TEST_F(BibliographyTest, AuthorPrecisEndToEnd) {
  // Author names are synthetic but deterministic: author 1 is "Ada Codd".
  auto answer = engine_->Answer(PrecisQuery{{"Ada Codd"}},
                                *MinPathWeight(0.85),
                                *MaxTuplesPerRelation(5));
  ASSERT_TRUE(answer.ok());
  ASSERT_FALSE(answer->empty());
  EXPECT_TRUE(answer->schema.ContainsRelation("AUTHOR"));
  EXPECT_TRUE(answer->schema.ContainsRelation("WRITES"));
  EXPECT_TRUE(answer->schema.ContainsRelation("PAPER"));
  EXPECT_TRUE(answer->database.ValidateForeignKeys().ok());
  auto paper = answer->database.GetRelation("PAPER");
  ASSERT_TRUE(paper.ok());
  EXPECT_GT((*paper)->num_tuples(), 0u);
}

TEST_F(BibliographyTest, PaperPrecisIncludesCitationsButCannotReenterPaper) {
  // The path model is relation-acyclic: PAPER -> CITES exists, but CITES ->
  // PAPER cannot be appended to a path that already visited PAPER, so cited
  // papers do not expand transitively. The CITES relation itself appears.
  auto title_answer = engine_->Answer(PrecisQuery{{"Adaptive Transactions"}},
                                      *MinPathWeight(0.5),
                                      *MaxTuplesPerRelation(20));
  ASSERT_TRUE(title_answer.ok());
  ASSERT_FALSE(title_answer->empty());
  EXPECT_TRUE(title_answer->schema.ContainsRelation("CITES"));
  // The PAPER relation holds exactly the matching papers (no transitive
  // re-entry): every result paper's title contains the token words.
  auto paper = title_answer->database.GetRelation("PAPER");
  ASSERT_TRUE(paper.ok());
  auto title_idx = (*paper)->schema().AttributeIndex("title");
  ASSERT_TRUE(title_idx.ok());
  for (Tid tid = 0; tid < (*paper)->num_tuples(); ++tid) {
    EXPECT_NE((*paper)->tuple(tid)[*title_idx].AsString().find(
                  "Adaptive Transactions"),
              std::string::npos);
  }
}

TEST_F(BibliographyTest, KeywordQueryReachesPapers) {
  auto answer = engine_->Answer(PrecisQuery{{"btree"}}, *MinPathWeight(0.9),
                                *MaxTuplesPerRelation(5));
  ASSERT_TRUE(answer.ok());
  ASSERT_FALSE(answer->empty());
  EXPECT_TRUE(answer->schema.ContainsRelation("KEYWORD"));
  EXPECT_TRUE(answer->schema.ContainsRelation("PAPER"));
  EXPECT_LE((*answer->database.GetRelation("PAPER"))->num_tuples(), 5u);
}

TEST_F(BibliographyTest, TranslatorRendersAuthorNarrative) {
  auto catalog = BuildBibliographyTemplateCatalog();
  ASSERT_TRUE(catalog.ok());
  auto answer = engine_->Answer(PrecisQuery{{"Ada Codd"}},
                                *MinPathWeight(0.8),
                                *MaxTuplesPerRelation(5));
  ASSERT_TRUE(answer.ok());
  Translator translator(&*catalog);
  auto text = translator.Render(*answer);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("Ada Codd is affiliated with"), std::string::npos)
      << *text;
  EXPECT_NE(text->find("Ada Codd authored"), std::string::npos) << *text;
}

TEST_F(BibliographyTest, TranslatorRendersCitationsThroughLinkRelation) {
  auto catalog = BuildBibliographyTemplateCatalog();
  ASSERT_TRUE(catalog.ok());
  // Wide constraints so PAPER -> CITES -> (cited) PAPER data is present for
  // some paper... but relation-acyclicity keeps cited papers out of the
  // result database, so the CITES -> PAPER clause finds no joined tuples
  // and the paragraph simply has no citation sentence. This asserts that
  // rendering stays well-formed in that situation.
  auto answer = engine_->Answer(PrecisQuery{{"Adaptive Transactions"}},
                                *MinPathWeight(0.5),
                                *MaxTuplesPerRelation(50));
  ASSERT_TRUE(answer.ok());
  Translator translator(&*catalog);
  auto text = translator.Render(*answer);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("Adaptive Transactions"), std::string::npos);
}

TEST_F(BibliographyTest, VenueQueryListsItsPapers) {
  auto catalog = BuildBibliographyTemplateCatalog();
  ASSERT_TRUE(catalog.ok());
  auto answer = engine_->Answer(PrecisQuery{{"SIGMOD"}}, *MinPathWeight(0.7),
                                *MaxTuplesPerRelation(3));
  ASSERT_TRUE(answer.ok());
  ASSERT_FALSE(answer->empty());
  EXPECT_TRUE(answer->schema.ContainsRelation("VENUE"));
  EXPECT_TRUE(answer->schema.ContainsRelation("PAPER"));
  Translator translator(&*catalog);
  auto text = translator.Render(*answer);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("SIGMOD published"), std::string::npos) << *text;
}

}  // namespace
}  // namespace precis
