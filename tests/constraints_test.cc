#include <gtest/gtest.h>

#include "datagen/movies_dataset.h"
#include "precis/constraints.h"
#include "precis/cost_model.h"
#include "precis/schema_generator.h"

namespace precis {
namespace {

class ConstraintsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto g = BuildMoviesGraph();
    ASSERT_TRUE(g.ok());
    graph_ = std::make_unique<SchemaGraph>(std::move(*g));
    RelationNodeId director = *graph_->RelationId("DIRECTOR");
    // A projection path of weight 1 and length 1.
    proj_short_ = std::make_unique<Path>(
        Path::Projection(director, graph_->ProjectionsOf(director)[0]));
    // A join path DIRECTOR -> MOVIE (weight 1, length 1).
    join_path_ = std::make_unique<Path>(
        Path::Join(director, graph_->JoinsFrom(director)[0]));
    // A longer projection path DIRECTOR -> MOVIE . title (weight 1, len 2).
    RelationNodeId movie = *graph_->RelationId("MOVIE");
    const ProjectionEdge* title = nullptr;
    for (const ProjectionEdge* e : graph_->ProjectionsOf(movie)) {
      if (graph_->relation_schema(movie).attribute(e->attribute).name ==
          "title") {
        title = e;
      }
    }
    proj_long_ =
        std::make_unique<Path>(join_path_->ExtendedByProjection(title));
  }

  /// A result schema holding `n` accepted projection paths (repeats of the
  /// short DIRECTOR projection; P_d counts every acceptance).
  ResultSchema SchemaWith(size_t n) {
    ResultSchema s(graph_.get());
    for (size_t i = 0; i < n; ++i) s.AcceptProjectionPath(*proj_short_);
    return s;
  }

  std::unique_ptr<SchemaGraph> graph_;
  std::unique_ptr<Path> proj_short_, proj_long_, join_path_;
};

TEST_F(ConstraintsTest, MaxProjectionsCountsOnlyProjectionPaths) {
  auto d = MaxProjections(2);
  EXPECT_TRUE(d->Admits(SchemaWith(0), *proj_short_));
  EXPECT_TRUE(d->Admits(SchemaWith(1), *proj_short_));
  EXPECT_FALSE(d->Admits(SchemaWith(2), *proj_short_));
  // Join paths are always admitted by a top-r constraint.
  EXPECT_TRUE(d->Admits(SchemaWith(2), *join_path_));
  EXPECT_TRUE(d->Admits(SchemaWith(100), *join_path_));
}

TEST_F(ConstraintsTest, MaxProjectionsZeroAdmitsNothingProjected) {
  auto d = MaxProjections(0);
  EXPECT_FALSE(d->Admits(SchemaWith(0), *proj_short_));
  EXPECT_TRUE(d->Admits(SchemaWith(0), *join_path_));
}

TEST_F(ConstraintsTest, MinPathWeightAppliesToBothKinds) {
  auto d = MinPathWeight(0.95);
  EXPECT_TRUE(d->Admits(SchemaWith(0), *proj_short_));  // weight 1.0
  EXPECT_TRUE(d->Admits(SchemaWith(0), *join_path_));   // weight 1.0
  // A path with weight 0.9 fails the 0.95 threshold.
  RelationNodeId movie = *graph_->RelationId("MOVIE");
  const JoinEdge* to_genre = nullptr;
  for (const JoinEdge* e : graph_->JoinsFrom(movie)) {
    if (graph_->relation_name(e->to) == "GENRE") to_genre = e;
  }
  Path weak = Path::Join(movie, to_genre);
  EXPECT_DOUBLE_EQ(weak.weight(), 0.9);
  EXPECT_FALSE(d->Admits(SchemaWith(0), weak));
}

TEST_F(ConstraintsTest, MinPathWeightBoundaryInclusive) {
  auto d = MinPathWeight(1.0);
  EXPECT_TRUE(d->Admits(SchemaWith(0), *proj_short_));
}

TEST_F(ConstraintsTest, MaxPathLength) {
  auto d = MaxPathLength(1);
  EXPECT_TRUE(d->Admits(SchemaWith(0), *proj_short_));  // length 1
  EXPECT_FALSE(d->Admits(SchemaWith(0), *proj_long_));  // length 2
  auto d2 = MaxPathLength(2);
  EXPECT_TRUE(d2->Admits(SchemaWith(0), *proj_long_));
}

TEST_F(ConstraintsTest, MaxRelationsBoundsSchemaBreadth) {
  // proj_short_ touches only DIRECTOR; proj_long_ adds MOVIE.
  auto d1 = MaxRelations(1);
  EXPECT_TRUE(d1->Admits(SchemaWith(0), *proj_short_));
  EXPECT_FALSE(d1->Admits(SchemaWith(0), *proj_long_));
  EXPECT_FALSE(d1->Admits(SchemaWith(0), *join_path_));  // join adds MOVIE
  auto d2 = MaxRelations(2);
  EXPECT_TRUE(d2->Admits(SchemaWith(0), *proj_long_));
  EXPECT_TRUE(d2->Admits(SchemaWith(0), *join_path_));
  // Relations already in the schema are free.
  ResultSchema with_director = SchemaWith(1);
  EXPECT_TRUE(d2->Admits(with_director, *proj_long_));
  EXPECT_EQ(MaxRelations(3)->ToString(), "relations <= 3");
}

TEST_F(ConstraintsTest, MaxRelationsEndToEnd) {
  ResultSchemaGenerator generator(graph_.get());
  auto schema = generator.Generate({std::string("DIRECTOR"), "ACTOR"},
                                   *MaxRelations(3));
  ASSERT_TRUE(schema.ok());
  EXPECT_LE(schema->relations().size(), 3u);
  auto wide = generator.Generate({std::string("DIRECTOR"), "ACTOR"},
                                 *MaxRelations(8));
  ASSERT_TRUE(wide.ok());
  EXPECT_LE(wide->relations().size(), 8u);
  EXPECT_GE(wide->relations().size(), schema->relations().size());
}

TEST_F(ConstraintsTest, ConjunctionRequiresAll) {
  std::vector<std::unique_ptr<DegreeConstraint>> parts;
  parts.push_back(MaxProjections(1));
  parts.push_back(MaxPathLength(1));
  auto d = AllOf(std::move(parts));
  EXPECT_TRUE(d->Admits(SchemaWith(0), *proj_short_));
  EXPECT_FALSE(d->Admits(SchemaWith(1), *proj_short_));  // too many
  EXPECT_FALSE(d->Admits(SchemaWith(0), *proj_long_));   // too long
}

TEST_F(ConstraintsTest, DegreeToString) {
  EXPECT_EQ(MaxProjections(5)->ToString(), "t <= 5");
  EXPECT_EQ(MaxPathLength(3)->ToString(), "length <= 3");
  EXPECT_NE(MinPathWeight(0.9)->ToString().find("w >="), std::string::npos);
}

// --- Cardinality ---

TEST(CardinalityTest, MaxTotalTuplesBudget) {
  auto c = MaxTotalTuples(10);
  EXPECT_EQ(*c->Budget(0, 0), 10u);
  EXPECT_EQ(*c->Budget(5, 7), 3u);
  EXPECT_EQ(*c->Budget(0, 10), 0u);
  EXPECT_EQ(*c->Budget(0, 15), 0u);  // never negative
}

TEST(CardinalityTest, MaxTuplesPerRelationBudget) {
  auto c = MaxTuplesPerRelation(3);
  EXPECT_EQ(*c->Budget(0, 100), 3u);
  EXPECT_EQ(*c->Budget(2, 100), 1u);
  EXPECT_EQ(*c->Budget(3, 0), 0u);
}

TEST(CardinalityTest, UnlimitedHasNoBudget) {
  auto c = UnlimitedCardinality();
  EXPECT_FALSE(c->Budget(1000000, 1000000).has_value());
}

TEST(CardinalityTest, ConjunctionTakesMinimum) {
  std::vector<std::unique_ptr<CardinalityConstraint>> parts;
  parts.push_back(MaxTotalTuples(10));
  parts.push_back(MaxTuplesPerRelation(3));
  auto c = AllOf(std::move(parts));
  EXPECT_EQ(*c->Budget(0, 0), 3u);   // per-relation binds
  EXPECT_EQ(*c->Budget(1, 9), 1u);   // total binds
  EXPECT_EQ(*c->Budget(0, 10), 0u);
}

TEST(CardinalityTest, ConjunctionWithUnlimitedPart) {
  std::vector<std::unique_ptr<CardinalityConstraint>> parts;
  parts.push_back(UnlimitedCardinality());
  parts.push_back(MaxTuplesPerRelation(5));
  auto c = AllOf(std::move(parts));
  EXPECT_EQ(*c->Budget(2, 0), 3u);
}

TEST(CardinalityTest, ToStringDescribesForm) {
  EXPECT_EQ(MaxTotalTuples(7)->ToString(), "card(D') <= 7");
  EXPECT_EQ(MaxTuplesPerRelation(7)->ToString(), "card(R') <= 7");
  EXPECT_EQ(UnlimitedCardinality()->ToString(), "unlimited");
}

// --- Cost model ---

TEST(CostModelTest, PredictSecondsFromCounts) {
  CostModel model(CostParameters{1e-4, 2e-4});
  AccessStats stats;
  stats.index_probes = 10;
  stats.tuple_fetches = 100;
  EXPECT_NEAR(model.PredictSeconds(stats), 10 * 1e-4 + 100 * 2e-4, 1e-12);
}

TEST(CostModelTest, Formula2IsLinearInBothFactors) {
  CostModel model(CostParameters{1e-4, 2e-4});
  double base = model.PredictSecondsFormula2(10, 4);
  EXPECT_NEAR(model.PredictSecondsFormula2(20, 4), 2 * base, 1e-12);
  EXPECT_NEAR(model.PredictSecondsFormula2(10, 8), 2 * base, 1e-12);
}

TEST(CostModelTest, Formula3InvertsFormula2) {
  CostModel model(CostParameters{1e-4, 2e-4});
  // cost target achievable with exactly c_R = 50 over 4 relations.
  double target = model.PredictSecondsFormula2(50, 4);
  auto c_r = model.TuplesPerRelationForBudget(target, 4);
  ASSERT_TRUE(c_r.ok());
  EXPECT_EQ(*c_r, 50u);
}

TEST(CostModelTest, Formula3Validation) {
  CostModel model(CostParameters{1e-4, 2e-4});
  EXPECT_TRUE(model.TuplesPerRelationForBudget(-1.0, 4)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(model.TuplesPerRelationForBudget(1.0, 0)
                  .status()
                  .IsInvalidArgument());
  CostModel degenerate(CostParameters{0.0, 0.0});
  EXPECT_TRUE(degenerate.TuplesPerRelationForBudget(1.0, 4)
                  .status()
                  .IsInvalidArgument());
}

TEST(CostModelTest, CardinalityForResponseTimeBuildsConstraint) {
  CostModel model(CostParameters{1e-4, 2e-4});
  auto c = model.CardinalityForResponseTime(
      model.PredictSecondsFormula2(20, 4), 4);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*(*c)->Budget(0, 0), 20u);
}

TEST(CostModelTest, CalibrateSplitsTimeAcrossAccesses) {
  AccessStats stats;
  stats.index_probes = 30;
  stats.tuple_fetches = 70;
  CostParameters p = CostModel::Calibrate(1.0, stats);
  EXPECT_NEAR(p.index_time_seconds, 0.01, 1e-12);
  EXPECT_NEAR(p.tuple_time_seconds, 0.01, 1e-12);
  // Degenerate inputs give zero parameters rather than NaN.
  CostParameters zero = CostModel::Calibrate(0.0, stats);
  EXPECT_EQ(zero.PerTupleCost(), 0.0);
  AccessStats empty;
  CostParameters zero2 = CostModel::Calibrate(1.0, empty);
  EXPECT_EQ(zero2.PerTupleCost(), 0.0);
}

}  // namespace
}  // namespace precis
