#include <gtest/gtest.h>

#include "datagen/bibliography_dataset.h"
#include "datagen/movies_dataset.h"
#include "graph/path.h"
#include "graph/schema_graph.h"
#include "graph/weight_profile.h"
#include "precis/engine.h"

namespace precis {
namespace {

/// Two relations A(id, x) and B(id, y) with both join directions.
Result<SchemaGraph> TinyGraph() {
  RelationSchema a("A", {{"id", DataType::kInt64}, {"x", DataType::kString}});
  EXPECT_TRUE(a.SetPrimaryKey("id").ok());
  RelationSchema b("B", {{"id", DataType::kInt64}, {"y", DataType::kString}});
  EXPECT_TRUE(b.SetPrimaryKey("id").ok());
  return SchemaGraph::FromSchemas({a, b});
}

TEST(SchemaGraphTest, FromSchemasAssignsIds) {
  auto g = TinyGraph();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_relations(), 2u);
  EXPECT_EQ(*g->RelationId("A"), 0u);
  EXPECT_EQ(*g->RelationId("B"), 1u);
  EXPECT_EQ(g->relation_name(1), "B");
  EXPECT_TRUE(g->RelationId("C").status().IsNotFound());
}

TEST(SchemaGraphTest, DuplicateRelationNamesRejected) {
  RelationSchema a("A", {{"id", DataType::kInt64}});
  auto g = SchemaGraph::FromSchemas({a, a});
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(SchemaGraphTest, AddProjectionEdge) {
  auto g = TinyGraph();
  ASSERT_TRUE(g->AddProjectionEdge("A", "x", 0.8).ok());
  EXPECT_EQ(g->ProjectionsOf(0).size(), 1u);
  EXPECT_DOUBLE_EQ(*g->ProjectionWeight("A", "x"), 0.8);
  EXPECT_TRUE(g->AddProjectionEdge("A", "x", 0.5).IsAlreadyExists());
  EXPECT_TRUE(g->AddProjectionEdge("A", "nope", 0.5).IsNotFound());
  EXPECT_TRUE(g->AddProjectionEdge("A", "id", 1.5).IsInvalidArgument());
  EXPECT_TRUE(g->AddProjectionEdge("A", "id", -0.1).IsInvalidArgument());
}

TEST(SchemaGraphTest, AddAllProjectionEdges) {
  auto g = TinyGraph();
  ASSERT_TRUE(g->AddAllProjectionEdges("A", 0.5).ok());
  EXPECT_EQ(g->ProjectionsOf(0).size(), 2u);
}

TEST(SchemaGraphTest, AddJoinEdgeBothDirectionsDistinctWeights) {
  auto g = TinyGraph();
  ASSERT_TRUE(g->AddJoinEdge("A", "id", "B", "id", 1.0).ok());
  ASSERT_TRUE(g->AddJoinEdge("B", "id", "A", "id", 0.4).ok());
  EXPECT_DOUBLE_EQ(*g->JoinWeight("A", "B"), 1.0);
  EXPECT_DOUBLE_EQ(*g->JoinWeight("B", "A"), 0.4);
  EXPECT_EQ(g->JoinsFrom(0).size(), 1u);
  EXPECT_EQ(g->JoinsTo(0).size(), 1u);
}

TEST(SchemaGraphTest, AtMostOneEdgePerDirectedPair) {
  auto g = TinyGraph();
  ASSERT_TRUE(g->AddJoinEdge("A", "id", "B", "id", 1.0).ok());
  EXPECT_TRUE(g->AddJoinEdge("A", "id", "B", "id", 0.5).IsAlreadyExists());
}

TEST(SchemaGraphTest, JoinTypeMismatchRejected) {
  auto g = TinyGraph();
  EXPECT_TRUE(g->AddJoinEdge("A", "x", "B", "id", 1.0).IsInvalidArgument());
}

TEST(SchemaGraphTest, AddJoinEdgePairSkipsNegativeWeight) {
  auto g = TinyGraph();
  ASSERT_TRUE(g->AddJoinEdgePair("A", "B", "id", 0.9, -1.0).ok());
  EXPECT_TRUE(g->JoinWeight("A", "B").ok());
  EXPECT_TRUE(g->JoinWeight("B", "A").status().IsNotFound());
}

TEST(SchemaGraphTest, SetWeights) {
  auto g = TinyGraph();
  ASSERT_TRUE(g->AddProjectionEdge("A", "x", 0.8).ok());
  ASSERT_TRUE(g->AddJoinEdge("A", "id", "B", "id", 1.0).ok());
  ASSERT_TRUE(g->SetProjectionWeight("A", "x", 0.3).ok());
  ASSERT_TRUE(g->SetJoinWeight("A", "B", 0.2).ok());
  EXPECT_DOUBLE_EQ(*g->ProjectionWeight("A", "x"), 0.3);
  EXPECT_DOUBLE_EQ(*g->JoinWeight("A", "B"), 0.2);
  EXPECT_TRUE(g->SetJoinWeight("B", "A", 0.2).IsNotFound());
  EXPECT_TRUE(g->SetProjectionWeight("A", "x", 2.0).IsInvalidArgument());
}

TEST(SchemaGraphTest, ValidateAcceptsWellFormedGraph) {
  auto g = BuildMoviesGraph();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->Validate().ok());
}

TEST(SchemaGraphTest, ToStringMentionsEdges) {
  auto g = TinyGraph();
  ASSERT_TRUE(g->AddProjectionEdge("A", "x", 0.8).ok());
  ASSERT_TRUE(g->AddJoinEdge("A", "id", "B", "id", 1.0).ok());
  std::string s = g->ToString();
  EXPECT_NE(s.find("pi x"), std::string::npos);
  EXPECT_NE(s.find("join -> B"), std::string::npos);
}

// --- Paths ---

class PathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto g = BuildMoviesGraph();
    ASSERT_TRUE(g.ok());
    graph_ = std::make_unique<SchemaGraph>(std::move(*g));
    director_ = *graph_->RelationId("DIRECTOR");
    movie_ = *graph_->RelationId("MOVIE");
    genre_ = *graph_->RelationId("GENRE");
  }

  const JoinEdge* FindJoin(const std::string& from, const std::string& to) {
    RelationNodeId f = *graph_->RelationId(from);
    RelationNodeId t = *graph_->RelationId(to);
    for (const JoinEdge* e : graph_->JoinsFrom(f)) {
      if (e->to == t) return e;
    }
    return nullptr;
  }

  const ProjectionEdge* FindProjection(const std::string& rel,
                                       const std::string& attr) {
    RelationNodeId r = *graph_->RelationId(rel);
    auto idx = graph_->relation_schema(r).AttributeIndex(attr);
    for (const ProjectionEdge* e : graph_->ProjectionsOf(r)) {
      if (e->attribute == *idx) return e;
    }
    return nullptr;
  }

  std::unique_ptr<SchemaGraph> graph_;
  RelationNodeId director_ = 0, movie_ = 0, genre_ = 0;
};

TEST_F(PathTest, SingleProjectionPath) {
  Path p = Path::Projection(director_, FindProjection("DIRECTOR", "dname"));
  EXPECT_TRUE(p.is_projection_path());
  EXPECT_EQ(p.length(), 1u);
  EXPECT_DOUBLE_EQ(p.weight(), 1.0);
  EXPECT_EQ(p.terminal_relation(), director_);
}

TEST_F(PathTest, JoinPathExtension) {
  Path p = Path::Join(director_, FindJoin("DIRECTOR", "MOVIE"));
  EXPECT_FALSE(p.is_projection_path());
  EXPECT_EQ(p.terminal_relation(), movie_);
  Path q = p.ExtendedByJoin(FindJoin("MOVIE", "GENRE"));
  EXPECT_EQ(q.terminal_relation(), genre_);
  EXPECT_EQ(q.length(), 2u);
  EXPECT_DOUBLE_EQ(q.weight(), 1.0 * 0.9);
}

TEST_F(PathTest, WeightTransferPaperSection32Example) {
  // "the weight of the projection of attribute PHONE over THEATRE equals
  //  0.8, while its weight with respect to MOVIE is 0.7 * 1 * 0.8 = 0.56."
  EXPECT_DOUBLE_EQ(*graph_->ProjectionWeight("THEATRE", "phone"), 0.8);
  Path p = Path::Join(movie_, FindJoin("MOVIE", "PLAY"))
               .ExtendedByJoin(FindJoin("PLAY", "THEATRE"))
               .ExtendedByProjection(FindProjection("THEATRE", "phone"));
  EXPECT_NEAR(p.weight(), 0.56, 1e-12);
  EXPECT_EQ(p.length(), 3u);
}

TEST_F(PathTest, ContainsRelationDetectsCycles) {
  Path p = Path::Join(director_, FindJoin("DIRECTOR", "MOVIE"));
  EXPECT_TRUE(p.ContainsRelation(director_));
  EXPECT_TRUE(p.ContainsRelation(movie_));
  EXPECT_FALSE(p.ContainsRelation(genre_));
}

TEST_F(PathTest, PathPrecedesOrdersByWeightThenLength) {
  Path heavy = Path::Projection(director_, FindProjection("DIRECTOR", "dname"));
  Path light =
      Path::Projection(director_, FindProjection("DIRECTOR", "did"));
  EXPECT_TRUE(PathPrecedes(heavy, light));
  EXPECT_FALSE(PathPrecedes(light, heavy));

  // Same weight 1.0*1.0 vs 1.0, shorter first.
  Path longer = Path::Join(director_, FindJoin("DIRECTOR", "MOVIE"))
                    .ExtendedByProjection(FindProjection("MOVIE", "title"));
  EXPECT_DOUBLE_EQ(longer.weight(), heavy.weight());
  EXPECT_TRUE(PathPrecedes(heavy, longer));
}

TEST_F(PathTest, ToStringRendersChain) {
  Path p = Path::Join(director_, FindJoin("DIRECTOR", "MOVIE"))
               .ExtendedByProjection(FindProjection("MOVIE", "title"));
  std::string s = p.ToString(*graph_);
  EXPECT_NE(s.find("DIRECTOR"), std::string::npos);
  EXPECT_NE(s.find("MOVIE"), std::string::npos);
  EXPECT_NE(s.find(". title"), std::string::npos);
}

// --- Weight profiles ---

TEST(WeightProfileTest, ApplyOverridesMentionedEdgesOnly) {
  auto g = BuildMoviesGraph();
  ASSERT_TRUE(g.ok());
  WeightProfile profile("reviewer");
  profile.SetProjection("THEATRE", "phone", 0.2).SetJoin("MOVIE", "GENRE",
                                                         0.5);
  ASSERT_TRUE(profile.ApplyTo(&*g).ok());
  EXPECT_DOUBLE_EQ(*g->ProjectionWeight("THEATRE", "phone"), 0.2);
  EXPECT_DOUBLE_EQ(*g->JoinWeight("MOVIE", "GENRE"), 0.5);
  // Untouched edge keeps its default.
  EXPECT_DOUBLE_EQ(*g->JoinWeight("GENRE", "MOVIE"), 1.0);
  EXPECT_EQ(profile.num_entries(), 2u);
  EXPECT_EQ(profile.name(), "reviewer");
}

TEST(WeightProfileTest, ApplyFailsOnUnknownEdge) {
  auto g = BuildMoviesGraph();
  WeightProfile profile;
  profile.SetJoin("MOVIE", "THEATRE", 0.5);  // no direct edge
  EXPECT_TRUE(profile.ApplyTo(&*g).IsNotFound());
}

TEST(WeightProfileTest, RandomizeWeightsStaysInRangeAndIsSeeded) {
  auto g1 = BuildMoviesGraph();
  auto g2 = BuildMoviesGraph();
  Rng rng1(7), rng2(7);
  ASSERT_TRUE(RandomizeWeights(&*g1, &rng1, 0.2, 0.9).ok());
  ASSERT_TRUE(RandomizeWeights(&*g2, &rng2, 0.2, 0.9).ok());
  for (const JoinEdge& e : g1->join_edges()) {
    EXPECT_GE(e.weight, 0.2);
    EXPECT_LE(e.weight, 0.9);
  }
  // Determinism: both graphs got identical weights.
  auto it2 = g2->join_edges().begin();
  for (const JoinEdge& e : g1->join_edges()) {
    EXPECT_DOUBLE_EQ(e.weight, it2->weight);
    ++it2;
  }
}

TEST(WeightProfileTest, RandomizeWeightsRejectsBadRange) {
  auto g = BuildMoviesGraph();
  Rng rng(1);
  EXPECT_TRUE(RandomizeWeights(&*g, &rng, -0.1, 0.5).IsInvalidArgument());
  EXPECT_TRUE(RandomizeWeights(&*g, &rng, 0.9, 0.1).IsInvalidArgument());
}

// --- DeriveGraphFromForeignKeys ---

TEST(DeriveGraphTest, BootstrapsEdgesFromConstraints) {
  MoviesConfig config;
  config.num_movies = 5;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto g = DeriveGraphFromForeignKeys(ds->db());
  ASSERT_TRUE(g.ok()) << g.status();
  // FK MOVIE.did -> DIRECTOR.did yields both directions.
  EXPECT_DOUBLE_EQ(*g->JoinWeight("MOVIE", "DIRECTOR"), 1.0);
  EXPECT_DOUBLE_EQ(*g->JoinWeight("DIRECTOR", "MOVIE"), 0.8);
  // Non-key attributes project at the default weight; keys stay low.
  EXPECT_DOUBLE_EQ(*g->ProjectionWeight("MOVIE", "title"), 0.8);
  EXPECT_DOUBLE_EQ(*g->ProjectionWeight("MOVIE", "mid"), 0.1);
  EXPECT_DOUBLE_EQ(*g->ProjectionWeight("MOVIE", "did"), 0.1);
}

TEST(DeriveGraphTest, MultipleForeignKeysOnSamePairCollapse) {
  // The bibliography's CITES has two FKs to PAPER; deriving must not fail
  // on the duplicate directed pair.
  BibliographyConfig config;
  config.num_papers = 20;
  auto ds = BibliographyDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto g = DeriveGraphFromForeignKeys(ds->db());
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_TRUE(g->JoinWeight("CITES", "PAPER").ok());
  EXPECT_TRUE(g->JoinWeight("PAPER", "CITES").ok());
}

TEST(DeriveGraphTest, DerivedGraphAnswersQueries) {
  MoviesConfig config;
  config.num_movies = 20;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto g = DeriveGraphFromForeignKeys(ds->db());
  ASSERT_TRUE(g.ok());
  auto engine = PrecisEngine::Create(&ds->db(), &*g);
  ASSERT_TRUE(engine.ok());
  // Parent->child (0.8) times attribute projection (0.8) = 0.64, so a 0.6
  // threshold reaches the movies of the matched director.
  auto answer = engine->Answer(PrecisQuery{{"Woody Allen"}},
                               *MinPathWeight(0.6), *MaxTuplesPerRelation(3));
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->empty());
  EXPECT_TRUE(answer->schema.ContainsRelation("MOVIE"));
  EXPECT_TRUE(answer->database.ValidateForeignKeys().ok());
}

TEST(DeriveGraphTest, RejectsBadWeights) {
  MoviesConfig config;
  config.num_movies = 5;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  DeriveGraphOptions bad;
  bad.child_to_parent_weight = 1.5;
  EXPECT_TRUE(
      DeriveGraphFromForeignKeys(ds->db(), bad).status().IsInvalidArgument());
}

}  // namespace
}  // namespace precis
