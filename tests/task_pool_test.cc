#include "common/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

namespace precis {
namespace {

using Clock = std::chrono::steady_clock;

/// Spin-waits (with tiny sleeps so single-core machines make progress)
/// until `pred` holds or ~5 seconds pass. Returns whether `pred` held.
bool WaitFor(const std::function<bool()>& pred) {
  auto deadline = Clock::now() + std::chrono::seconds(5);
  while (!pred()) {
    if (Clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

TEST(TaskPoolTest, RunsEverySubmittedTask) {
  TaskPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  TaskPool::Group group(&pool);
  for (int i = 0; i < 128; ++i) {
    group.Run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 128);
}

TEST(TaskPoolTest, SingleThreadPoolStillCompletes) {
  TaskPool pool(1);
  std::atomic<int> count{0};
  TaskPool::Group group(&pool);
  for (int i = 0; i < 64; ++i) {
    group.Run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 64);
}

TEST(TaskPoolTest, ZeroThreadsClampsToOne) {
  TaskPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  TaskPool::Group group(&pool);
  group.Run([&count] { ++count; });
  group.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(TaskPoolTest, NestedSubmissionIsCoveredByWait) {
  // A task fans out more tasks into its own group — the intended subtree
  // shape. Wait() must cover grandchildren submitted while it blocks.
  TaskPool pool(4);
  std::atomic<int> leaves{0};
  TaskPool::Group group(&pool);
  for (int i = 0; i < 8; ++i) {
    group.Run([&group, &leaves] {
      for (int j = 0; j < 8; ++j) {
        group.Run([&group, &leaves] {
          for (int k = 0; k < 4; ++k) {
            group.Run(
                [&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); });
          }
        });
      }
    });
  }
  group.Wait();
  EXPECT_EQ(leaves.load(), 8 * 8 * 4);
}

TEST(TaskPoolTest, DeepRecursiveFanOutRunsInlinePastDepthCap) {
  // Pathological chain: each task spawns its successor. Past the per-thread
  // depth cap the pool must execute inline (bounded queues, no deadlock)
  // and still complete the whole chain.
  TaskPool pool(2);
  std::atomic<int> depth_reached{0};
  TaskPool::Group group(&pool);
  std::function<void(int)> descend = [&](int depth) {
    depth_reached.fetch_add(1, std::memory_order_relaxed);
    if (depth < 300) {
      group.Run([&descend, depth] { descend(depth + 1); });
    }
  };
  group.Run([&descend] { descend(0); });
  group.Wait();
  EXPECT_EQ(depth_reached.load(), 301);
}

TEST(TaskPoolTest, IdleWorkersStealQueuedWork) {
  // Tasks submitted from inside a worker task land on that worker's own
  // deque (LIFO affinity). The submitting task then spins — without
  // helping — until both children ran, which can only happen if the other
  // worker steals them.
  TaskPool pool(2);
  std::atomic<int> children_done{0};
  std::set<std::thread::id> child_threads;
  std::mutex ids_mutex;
  bool children_completed = false;
  TaskPool::Group group(&pool);
  group.Run([&] {
    TaskPool::Group children(&pool);
    for (int i = 0; i < 2; ++i) {
      children.Run([&] {
        {
          std::lock_guard<std::mutex> lock(ids_mutex);
          child_threads.insert(std::this_thread::get_id());
        }
        children_done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Spin (no helping) so this worker stays busy and the children must be
    // stolen by the other worker.
    children_completed = WaitFor([&] { return children_done.load() == 2; });
    children.Wait();
  });
  group.Wait();
  EXPECT_TRUE(children_completed) << "children were never stolen";
  // Both children ran on the OTHER worker (the submitter was spinning), so
  // at least one distinct thief thread executed them.
  EXPECT_GE(child_threads.size(), 1u);
}

TEST(TaskPoolTest, ExternalWaiterHelpsExecuteTasks) {
  // A thread blocked in Wait() lends itself to the pool: even a 1-thread
  // pool whose worker is busy finishes promptly because the waiter helps.
  TaskPool pool(1);
  std::atomic<bool> blocker_started{false};
  std::atomic<bool> blocker_done{false};
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  TaskPool::Group blocker(&pool);
  blocker.Run([&] {
    blocker_started.store(true);
    WaitFor([&] { return release.load(); });
    blocker_done.store(true);
  });
  // Only submit the help-work once the lone worker is verifiably inside
  // the blocker — otherwise this thread's helping Wait() below could
  // steal the blocker itself.
  ASSERT_TRUE(WaitFor([&] { return blocker_started.load(); }));
  TaskPool::Group group(&pool);
  for (int i = 0; i < 16; ++i) {
    group.Run([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  // The lone worker is stuck in `blocker`; Wait() must execute the 16
  // tasks on this (external) thread.
  group.Wait();
  EXPECT_EQ(done.load(), 16);
  EXPECT_FALSE(blocker_done.load());
  release.store(true);
  blocker.Wait();
  EXPECT_TRUE(blocker_done.load());
}

TEST(TaskPoolTest, ExceptionPropagatesToWait) {
  TaskPool pool(2);
  TaskPool::Group group(&pool);
  std::atomic<int> survivors{0};
  for (int i = 0; i < 8; ++i) {
    group.Run([&survivors, i] {
      if (i == 3) throw std::runtime_error("boom");
      survivors.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // The failure is contained to the group: the pool still works.
  TaskPool::Group after(&pool);
  std::atomic<int> ok{0};
  after.Run([&ok] { ++ok; });
  after.Wait();
  EXPECT_EQ(ok.load(), 1);
}

TEST(TaskPoolTest, ExceptionInNestedTaskPropagates) {
  TaskPool pool(2);
  TaskPool::Group group(&pool);
  group.Run([&group] {
    group.Run([] { throw std::runtime_error("nested boom"); });
  });
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(TaskPoolTest, GroupDestructorWaitsAndSwallowsException) {
  TaskPool pool(2);
  std::atomic<int> done{0};
  {
    TaskPool::Group group(&pool);
    for (int i = 0; i < 16; ++i) {
      group.Run([&done, i] {
        if (i == 7) throw std::runtime_error("swallowed");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No Wait(): the destructor must block for stragglers and swallow the
    // captured exception.
  }
  EXPECT_EQ(done.load(), 15);
}

TEST(TaskPoolTest, ShutdownWhileBusyDrainsEveryTask) {
  // Destroy the pool while tasks are still queued/running; every accepted
  // task must have executed by the time the destructor returns.
  std::atomic<int> done{0};
  constexpr int kTasks = 64;
  {
    TaskPool pool(2);
    TaskPool::Group group(&pool);
    for (int i = 0; i < kTasks; ++i) {
      group.Run([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Group dtor waits, then the pool dtor joins the workers.
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(TaskPoolTest, ManyConcurrentGroupsShareOnePool) {
  // The service shape: several external threads each drive their own group
  // on the shared pool.
  TaskPool pool(4);
  constexpr int kClients = 6;
  constexpr int kTasksPerClient = 32;
  std::atomic<int> done{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&pool, &done] {
      TaskPool::Group group(&pool);
      for (int i = 0; i < kTasksPerClient; ++i) {
        group.Run([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
      group.Wait();
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(done.load(), kClients * kTasksPerClient);
}

TEST(TaskPoolTest, SharedPoolIsASingleton) {
  TaskPool* a = TaskPool::Shared();
  TaskPool* b = TaskPool::Shared();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  EXPECT_GE(a->num_threads(), 2u);
  std::atomic<int> done{0};
  TaskPool::Group group(a);
  for (int i = 0; i < 8; ++i) {
    group.Run([&done] { ++done; });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 8);
}

}  // namespace
}  // namespace precis
