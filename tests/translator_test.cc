#include <gtest/gtest.h>

#include <memory>

#include "datagen/movies_dataset.h"
#include "datagen/movies_templates.h"
#include "precis/engine.h"
#include "translator/catalog.h"
#include "translator/template.h"
#include "translator/translator.h"

namespace precis {
namespace {

// ===== Template language =====

TupleBinding Woody() {
  return {{"dname", Value("Woody Allen")},
          {"bdate", Value("December 1, 1935")},
          {"blocation", Value("Brooklyn, New York, USA")}};
}

std::vector<TupleBinding> ThreeMovies() {
  return {{{"title", Value("Match Point")}, {"year", Value(int64_t{2005})}},
          {{"title", Value("Melinda and Melinda")},
           {"year", Value(int64_t{2004})}},
          {{"title", Value("Anything Else")}, {"year", Value(int64_t{2003})}}};
}

TEST(TemplateTest, LiteralOnly) {
  auto t = Template::Parse("hello world");
  ASSERT_TRUE(t.ok());
  TemplateContext ctx;
  EXPECT_EQ(*t->Evaluate(ctx, nullptr), "hello world");
}

TEST(TemplateTest, SubjectVariableSubstitution) {
  auto t = Template::Parse("@DNAME was born on @BDATE in @BLOCATION.");
  ASSERT_TRUE(t.ok());
  TupleBinding subject = Woody();
  TemplateContext ctx;
  ctx.subjects.push_back(&subject);
  EXPECT_EQ(*t->Evaluate(ctx, nullptr),
            "Woody Allen was born on December 1, 1935 in Brooklyn, New "
            "York, USA.");
}

TEST(TemplateTest, VariableNamesAreCaseInsensitive) {
  auto t = Template::Parse("@dname / @DnAmE");
  ASSERT_TRUE(t.ok());
  TupleBinding subject = Woody();
  TemplateContext ctx;
  ctx.subjects.push_back(&subject);
  EXPECT_EQ(*t->Evaluate(ctx, nullptr), "Woody Allen / Woody Allen");
}

TEST(TemplateTest, UnboundVariableIsNotFound) {
  auto t = Template::Parse("@NOPE");
  ASSERT_TRUE(t.ok());
  TemplateContext ctx;
  EXPECT_TRUE(t->Evaluate(ctx, nullptr).status().IsNotFound());
}

TEST(TemplateTest, AncestorChainResolution) {
  auto t = Template::Parse("@ANAME plays in @TITLE");
  ASSERT_TRUE(t.ok());
  TupleBinding movie = {{"title", Value("Match Point")}};
  TupleBinding actor = {{"aname", Value("Scarlett Johansson")}};
  TemplateContext ctx;
  ctx.subjects.push_back(&movie);
  ctx.subjects.push_back(&actor);  // ancestor
  EXPECT_EQ(*t->Evaluate(ctx, nullptr),
            "Scarlett Johansson plays in Match Point");
}

TEST(TemplateTest, InnermostSubjectWins) {
  auto t = Template::Parse("@X");
  TupleBinding inner = {{"x", Value("inner")}};
  TupleBinding outer = {{"x", Value("outer")}};
  TemplateContext ctx;
  ctx.subjects.push_back(&inner);
  ctx.subjects.push_back(&outer);
  EXPECT_EQ(*t->Evaluate(ctx, nullptr), "inner");
}

TEST(TemplateTest, ListVariableJoinsAllValues) {
  // "Match Point is Drama, Thriller."
  auto t = Template::Parse("@TITLE is @GENRE.");
  ASSERT_TRUE(t.ok());
  TupleBinding movie = {{"title", Value("Match Point")}};
  std::vector<TupleBinding> genres = {{{"genre", Value("Drama")}},
                                      {{"genre", Value("Thriller")}}};
  TemplateContext ctx;
  ctx.subjects.push_back(&movie);
  ctx.list = &genres;
  EXPECT_EQ(*t->Evaluate(ctx, nullptr), "Match Point is Drama, Thriller.");
}

TEST(TemplateTest, LoopAllButLastThenLast) {
  auto t = Template::Parse(
      "[i<arityof(@TITLE)]{@TITLE[$i$] (@YEAR[$i$]), }"
      "[i=arityof(@TITLE)]{@TITLE[$i$] (@YEAR[$i$]).}");
  ASSERT_TRUE(t.ok());
  std::vector<TupleBinding> movies = ThreeMovies();
  TemplateContext ctx;
  ctx.list = &movies;
  EXPECT_EQ(*t->Evaluate(ctx, nullptr),
            "Match Point (2005), Melinda and Melinda (2004), Anything Else "
            "(2003).");
}

TEST(TemplateTest, LoopWithSingleElementRunsOnlyLastBlock) {
  auto t = Template::Parse(
      "[i<arityof(@TITLE)]{@TITLE[$i$], }[i=arityof(@TITLE)]{@TITLE[$i$].}");
  std::vector<TupleBinding> one = {{{"title", Value("Match Point")}}};
  TemplateContext ctx;
  ctx.list = &one;
  EXPECT_EQ(*t->Evaluate(ctx, nullptr), "Match Point.");
}

TEST(TemplateTest, LoopWithEmptyListProducesNothing) {
  auto t = Template::Parse("x[i=arityof(@TITLE)]{@TITLE[$i$]}y");
  std::vector<TupleBinding> none;
  TemplateContext ctx;
  ctx.list = &none;
  EXPECT_EQ(*t->Evaluate(ctx, nullptr), "xy");
}

TEST(TemplateTest, IndexedVariableOutsideLoopIsError) {
  auto t = Template::Parse("@TITLE[$i$]");
  ASSERT_TRUE(t.ok());
  std::vector<TupleBinding> movies = ThreeMovies();
  TemplateContext ctx;
  ctx.list = &movies;
  EXPECT_TRUE(t->Evaluate(ctx, nullptr).status().IsInvalidArgument());
}

TEST(TemplateTest, PlainBracketsAreLiteral) {
  auto t = Template::Parse("a [not a loop] b");
  ASSERT_TRUE(t.ok());
  TemplateContext ctx;
  EXPECT_EQ(*t->Evaluate(ctx, nullptr), "a [not a loop] b");
}

TEST(TemplateTest, ParseErrors) {
  EXPECT_TRUE(Template::Parse("@").status().IsInvalidArgument());
  EXPECT_TRUE(Template::Parse("[i<arityof(@X)]{unclosed")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Template::Parse("%unclosed").status().IsInvalidArgument());
  EXPECT_TRUE(Template::Parse("%%").status().IsInvalidArgument());
  EXPECT_TRUE(Template::Parse("[i<arityof(@X)]no-brace")
                  .status()
                  .IsInvalidArgument());
}

TEST(TemplateTest, MacroExpansion) {
  TemplateCatalog catalog;
  ASSERT_TRUE(catalog.DefineMacro("GREET", "hello @DNAME").ok());
  auto t = Template::Parse("<< %GREET% >>");
  ASSERT_TRUE(t.ok());
  TupleBinding subject = Woody();
  TemplateContext ctx;
  ctx.subjects.push_back(&subject);
  EXPECT_EQ(*t->Evaluate(ctx, &catalog), "<< hello Woody Allen >>");
}

TEST(TemplateTest, UndefinedMacroIsNotFound) {
  TemplateCatalog catalog;
  auto t = Template::Parse("%NOPE%");
  EXPECT_TRUE(t->Evaluate(TemplateContext{}, &catalog).status().IsNotFound());
}

TEST(TemplateTest, MacroWithoutCatalogIsError) {
  auto t = Template::Parse("%X%");
  EXPECT_TRUE(
      t->Evaluate(TemplateContext{}, nullptr).status().IsInvalidArgument());
}

TEST(TemplateTest, MacroRecursionIsBounded) {
  TemplateCatalog catalog;
  ASSERT_TRUE(catalog.DefineMacro("LOOP", "%LOOP%").ok());
  auto t = Template::Parse("%LOOP%");
  EXPECT_TRUE(
      t->Evaluate(TemplateContext{}, &catalog).status().IsInvalidArgument());
}

TEST(TemplateTest, PaperMovieListMacro) {
  TemplateCatalog catalog;
  ASSERT_TRUE(catalog
                  .DefineMacro("MOVIE_LIST",
                               "[i<arityof(@TITLE)]{@TITLE[$i$] (@YEAR[$i$]), "
                               "}[i=arityof(@TITLE)]{@TITLE[$i$] "
                               "(@YEAR[$i$]).}")
                  .ok());
  auto t =
      Template::Parse("As a director, @DNAME's work includes %MOVIE_LIST%");
  ASSERT_TRUE(t.ok());
  TupleBinding subject = Woody();
  std::vector<TupleBinding> movies = ThreeMovies();
  TemplateContext ctx;
  ctx.subjects.push_back(&subject);
  ctx.list = &movies;
  EXPECT_EQ(*t->Evaluate(ctx, &catalog),
            "As a director, Woody Allen's work includes Match Point (2005), "
            "Melinda and Melinda (2004), Anything Else (2003).");
}

// ===== Functions =====

TEST(TemplateFunctionTest, UpperLowerTrim) {
  TupleBinding subject = Woody();
  TemplateContext ctx;
  ctx.subjects.push_back(&subject);
  EXPECT_EQ(*Template::Parse("$upper(@DNAME)$")->Evaluate(ctx, nullptr),
            "WOODY ALLEN");
  EXPECT_EQ(*Template::Parse("$lower(@DNAME)$")->Evaluate(ctx, nullptr),
            "woody allen");
  EXPECT_EQ(*Template::Parse("$trim(  x  )$")->Evaluate(ctx, nullptr), "x");
}

TEST(TemplateFunctionTest, FunctionsNest) {
  TupleBinding subject = Woody();
  TemplateContext ctx;
  ctx.subjects.push_back(&subject);
  EXPECT_EQ(
      *Template::Parse("$upper($trim(  @DNAME  )$)$")->Evaluate(ctx, nullptr),
      "WOODY ALLEN");
}

TEST(TemplateFunctionTest, CountReportsListArity) {
  std::vector<TupleBinding> movies = ThreeMovies();
  TemplateContext ctx;
  ctx.list = &movies;
  EXPECT_EQ(*Template::Parse("$count(@TITLE)$ works")->Evaluate(ctx, nullptr),
            "3 works");
}

TEST(TemplateFunctionTest, CountOnSubjectIsOneAndUnboundIsZero) {
  TupleBinding subject = Woody();
  TemplateContext ctx;
  ctx.subjects.push_back(&subject);
  EXPECT_EQ(*Template::Parse("$count(@DNAME)$")->Evaluate(ctx, nullptr), "1");
  EXPECT_EQ(*Template::Parse("$count(@NOPE)$")->Evaluate(ctx, nullptr), "0");
}

TEST(TemplateFunctionTest, CountRequiresSingleVariable) {
  TemplateContext ctx;
  EXPECT_TRUE(Template::Parse("$count(xyz)$")
                  ->Evaluate(ctx, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST(TemplateFunctionTest, UnknownFunctionIsParseError) {
  EXPECT_TRUE(Template::Parse("$frobnicate(@X)$").status().IsInvalidArgument());
}

TEST(TemplateFunctionTest, UnterminatedFunctionIsParseError) {
  EXPECT_TRUE(Template::Parse("$upper(@X").status().IsInvalidArgument());
  EXPECT_TRUE(Template::Parse("$upper(@X)").status().IsInvalidArgument());
}

TEST(TemplateFunctionTest, BareDollarIsLiteral) {
  TemplateContext ctx;
  EXPECT_EQ(*Template::Parse("costs $5 today")->Evaluate(ctx, nullptr),
            "costs $5 today");
  EXPECT_EQ(*Template::Parse("$")->Evaluate(ctx, nullptr), "$");
}

TEST(TemplateFunctionTest, CountInsideSentence) {
  std::vector<TupleBinding> movies = ThreeMovies();
  TupleBinding subject = Woody();
  TemplateContext ctx;
  ctx.subjects.push_back(&subject);
  ctx.list = &movies;
  auto t = Template::Parse(
      "@DNAME directed $count(@TITLE)$ relevant movies.");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t->Evaluate(ctx, nullptr),
            "Woody Allen directed 3 relevant movies.");
}

// ===== Catalog =====

TEST(CatalogTest, HeadingAttributeDefaultsEmpty) {
  TemplateCatalog catalog;
  EXPECT_EQ(catalog.heading_attribute("CAST"), "");
  catalog.SetHeadingAttribute("MOVIE", "title");
  EXPECT_EQ(catalog.heading_attribute("MOVIE"), "title");
}

TEST(CatalogTest, TemplateLookups) {
  TemplateCatalog catalog;
  EXPECT_EQ(catalog.projection_template("MOVIE"), nullptr);
  EXPECT_EQ(catalog.join_template("A", "B"), nullptr);
  ASSERT_TRUE(catalog.SetProjectionTemplate("MOVIE", "@TITLE").ok());
  ASSERT_TRUE(catalog.SetJoinTemplate("A", "B", "@X").ok());
  EXPECT_NE(catalog.projection_template("MOVIE"), nullptr);
  EXPECT_NE(catalog.join_template("A", "B"), nullptr);
  EXPECT_EQ(catalog.join_template("B", "A"), nullptr);
}

TEST(CatalogTest, BadTemplateSourceRejectedEagerly) {
  TemplateCatalog catalog;
  EXPECT_TRUE(catalog.SetProjectionTemplate("MOVIE", "@").IsInvalidArgument());
  EXPECT_TRUE(catalog.SetJoinTemplate("A", "B", "%x").IsInvalidArgument());
  EXPECT_TRUE(catalog.DefineMacro("M", "@").IsInvalidArgument());
}

// ===== End-to-end rendering: the paper's §5.3 narrative =====

class RenderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 0;  // paper-example tuples only
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
    auto engine = PrecisEngine::Create(&dataset_->db(), &dataset_->graph());
    ASSERT_TRUE(engine.ok());
    engine_ = std::make_unique<PrecisEngine>(std::move(*engine));
    auto catalog = BuildMoviesTemplateCatalog();
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::make_unique<TemplateCatalog>(std::move(*catalog));
  }

  Result<PrecisAnswer> Ask(size_t tuples_per_relation) {
    return engine_->Answer(PrecisQuery{{"Woody Allen"}}, *MinPathWeight(0.9),
                           *MaxTuplesPerRelation(tuples_per_relation));
  }

  std::unique_ptr<MoviesDataset> dataset_;
  std::unique_ptr<PrecisEngine> engine_;
  std::unique_ptr<TemplateCatalog> catalog_;
};

TEST_F(RenderTest, PaperHeadlineSentencesAtCardinalityThree) {
  auto answer = Ask(3);
  ASSERT_TRUE(answer.ok());
  Translator translator(catalog_.get());
  auto text = translator.Render(*answer);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Woody Allen was born on December 1, 1935 in "
                       "Brooklyn, New York, USA."),
            std::string::npos)
      << *text;
  EXPECT_NE(text->find("As a director, Woody Allen's work includes Match "
                       "Point (2005), Melinda and Melinda (2004), Anything "
                       "Else (2003)."),
            std::string::npos)
      << *text;
}

TEST_F(RenderTest, GenerousBudgetRendersGenreClauses) {
  auto answer = Ask(100);
  ASSERT_TRUE(answer.ok());
  Translator translator(catalog_.get());
  auto text = translator.Render(*answer);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Match Point is Drama, Thriller."), std::string::npos)
      << *text;
  EXPECT_NE(text->find("Melinda and Melinda is Comedy, Drama."),
            std::string::npos);
  EXPECT_NE(text->find("Anything Else is Comedy, Romance."),
            std::string::npos);
}

TEST_F(RenderTest, ActorHomonymGetsItsOwnParagraph) {
  auto answer = Ask(100);
  ASSERT_TRUE(answer.ok());
  Translator translator(catalog_.get());
  auto text = translator.Render(*answer);
  ASSERT_TRUE(text.ok());
  // The ACTOR occurrence renders separately, reaching movies through CAST.
  EXPECT_NE(text->find("As an actor, Woody Allen's work includes Hollywood "
                       "Ending (2002), The Curse of the Jade Scorpion "
                       "(2001)."),
            std::string::npos)
      << *text;
  // Two paragraphs at least (actor + director parts).
  EXPECT_NE(text->find("\n\n"), std::string::npos);
}

TEST_F(RenderTest, MissingAttributesDegradeGracefully) {
  // Under cardinality 3 the ACTOR part has no reachable movies and the
  // actor projection template's BDATE/BLOCATION are excluded by the degree
  // constraint; the paragraph degrades to the heading value.
  auto answer = Ask(3);
  ASSERT_TRUE(answer.ok());
  auto rel_id = dataset_->graph().RelationId("ACTOR");
  ASSERT_TRUE(rel_id.ok());
  Translator translator(catalog_.get());
  TokenOccurrence occ{"ACTOR", "aname", {0}};
  auto paragraphs = translator.RenderOccurrence(*answer, "Woody Allen", occ);
  ASSERT_TRUE(paragraphs.ok());
  ASSERT_EQ(paragraphs->size(), 1u);
  EXPECT_EQ((*paragraphs)[0], "Woody Allen.");
}

TEST_F(RenderTest, UnknownTokenRendersEmpty) {
  auto answer = engine_->Answer(PrecisQuery{{"Tarantino"}},
                                *MinPathWeight(0.9), *MaxTuplesPerRelation(3));
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->empty());
  Translator translator(catalog_.get());
  auto text = translator.Render(*answer);
  ASSERT_TRUE(text.ok());
  EXPECT_TRUE(text->empty());
}

TEST_F(RenderTest, OccurrenceForRelationAbsentFromResultIsEmpty) {
  auto answer = Ask(3);
  ASSERT_TRUE(answer.ok());
  Translator translator(catalog_.get());
  TokenOccurrence occ{"THEATRE", "name", {0}};
  auto paragraphs = translator.RenderOccurrence(*answer, "Odeon", occ);
  ASSERT_TRUE(paragraphs.ok());
  EXPECT_TRUE(paragraphs->empty());
}

}  // namespace
}  // namespace precis
