#include "storage/columnar.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/execution_context.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace precis {
namespace {

// --- Column ---

TEST(ColumnTest, RoundTripsEveryTypeAndNull) {
  Column ints(DataType::kInt64);
  ints.Append(Value(int64_t{-7}));
  ints.Append(Value());
  ints.Append(Value(int64_t{42}));
  EXPECT_EQ(ints.GetValue(0), Value(int64_t{-7}));
  EXPECT_TRUE(ints.GetValue(1).is_null());
  EXPECT_TRUE(ints.IsNull(1));
  EXPECT_FALSE(ints.IsNull(2));
  EXPECT_EQ(ints.GetValue(2), Value(int64_t{42}));

  Column strs(DataType::kString);
  strs.Append(Value("Woody Allen"));
  strs.Append(Value(""));
  EXPECT_EQ(strs.GetValue(0).AsString(), "Woody Allen");
  EXPECT_EQ(strs.GetValue(1).AsString(), "");
}

TEST(ColumnTest, DoubleRoundTripIsBitExact) {
  Column col(DataType::kDouble);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  col.Append(Value(-0.0));
  col.Append(Value(nan));
  col.Append(Value(1.5));
  // -0.0 is stored as -0.0 (bit-exact), even though it *compares* equal
  // to +0.0 — canonicalization happens at index time, not storage time.
  EXPECT_TRUE(std::signbit(col.GetValue(0).AsDouble()));
  EXPECT_TRUE(std::isnan(col.GetValue(1).AsDouble()));
  EXPECT_EQ(col.GetValue(2), Value(1.5));
}

TEST(ColumnTest, NullBitmapSpansWords) {
  Column col(DataType::kInt64);
  for (int i = 0; i < 200; ++i) {
    col.Append(i % 3 == 0 ? Value() : Value(int64_t{i}));
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(col.IsNull(i), i % 3 == 0) << i;
  }
}

TEST(ColumnTest, CanonicalBitsNormalizesZeroAndDropsNaN) {
  const uint64_t pos_zero = std::bit_cast<uint64_t>(0.0);
  const uint64_t neg_zero = std::bit_cast<uint64_t>(-0.0);
  EXPECT_NE(pos_zero, neg_zero);
  EXPECT_EQ(Column::CanonicalBits(neg_zero, DataType::kDouble), pos_zero);
  EXPECT_EQ(Column::CanonicalBits(pos_zero, DataType::kDouble), pos_zero);
  const uint64_t nan_bits =
      std::bit_cast<uint64_t>(std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(Column::CanonicalBits(nan_bits, DataType::kDouble).has_value());
  // Non-double payloads pass through untouched.
  EXPECT_EQ(Column::CanonicalBits(neg_zero, DataType::kInt64), neg_zero);
}

TEST(ColumnTest, KeyBitsRejectsNullCrossTypeAndNaN) {
  EXPECT_FALSE(Column::KeyBits(Value(), DataType::kInt64).has_value());
  EXPECT_FALSE(Column::KeyBits(Value("x"), DataType::kInt64).has_value());
  EXPECT_FALSE(Column::KeyBits(Value(int64_t{1}), DataType::kString).has_value());
  EXPECT_FALSE(
      Column::KeyBits(Value(std::numeric_limits<double>::quiet_NaN()),
                      DataType::kDouble)
          .has_value());
  // Matching keys canonicalize: -0.0 key hits +0.0 storage.
  EXPECT_EQ(Column::KeyBits(Value(-0.0), DataType::kDouble),
            Column::KeyBits(Value(0.0), DataType::kDouble));
  // Equal strings produce equal symbol bits.
  EXPECT_EQ(Column::KeyBits(Value("abc"), DataType::kString),
            Column::KeyBits(Value(std::string("abc")), DataType::kString));
}

// --- ColumnIndex ---

TEST(ColumnIndexTest, InsertAndLookupWithGrowth) {
  ColumnIndex index(DataType::kInt64);
  // Enough keys to force several Grow() rehashes from the initial 16.
  for (int64_t k = 0; k < 500; ++k) {
    index.Insert(Value(k % 100), static_cast<Tid>(k));
  }
  for (int64_t k = 0; k < 100; ++k) {
    const std::vector<Tid>& tids = index.Lookup(Value(k));
    ASSERT_EQ(tids.size(), 5u) << k;
    for (size_t i = 0; i < tids.size(); ++i) {
      EXPECT_EQ(tids[i], static_cast<Tid>(k + 100 * static_cast<int64_t>(i)));
    }
  }
  EXPECT_TRUE(index.Lookup(Value(int64_t{100})).empty());
  EXPECT_EQ(index.num_keys(), 100u);
}

TEST(ColumnIndexTest, NullKeysGetTheirOwnBucket) {
  ColumnIndex index(DataType::kString);
  index.Insert(Value("a"), 0);
  index.Insert(Value(), 1);
  index.Insert(Value(), 2);
  EXPECT_EQ(index.Lookup(Value()), (std::vector<Tid>{1, 2}));
  EXPECT_EQ(index.Lookup(Value("a")), (std::vector<Tid>{0}));
  EXPECT_EQ(index.num_keys(), 2u);
}

TEST(ColumnIndexTest, NaNIsUnmatchable) {
  ColumnIndex index(DataType::kDouble);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  index.Insert(Value(nan), 0);
  index.Insert(Value(1.0), 1);
  EXPECT_TRUE(index.Lookup(Value(nan)).empty());
  EXPECT_EQ(index.Lookup(Value(1.0)), (std::vector<Tid>{1}));
}

TEST(ColumnIndexTest, SignedZerosShareAPosting) {
  ColumnIndex index(DataType::kDouble);
  index.Insert(Value(0.0), 0);
  index.Insert(Value(-0.0), 1);
  EXPECT_EQ(index.Lookup(Value(0.0)), (std::vector<Tid>{0, 1}));
  EXPECT_EQ(index.Lookup(Value(-0.0)), (std::vector<Tid>{0, 1}));
}

TEST(ColumnIndexTest, CrossTypeLookupIsEmpty) {
  ColumnIndex index(DataType::kInt64);
  index.Insert(Value(int64_t{7}), 0);
  EXPECT_TRUE(index.Lookup(Value(7.0)).empty());
  EXPECT_TRUE(index.Lookup(Value("7")).empty());
}

// --- Relation kernels vs the row path ---

Relation TestRelation() {
  RelationSchema schema("T", {{"id", DataType::kInt64},
                              {"name", DataType::kString},
                              {"score", DataType::kDouble}});
  EXPECT_TRUE(schema.SetPrimaryKey("id").ok());
  Relation rel(schema);
  for (int64_t i = 0; i < 97; ++i) {
    Tuple t;
    t.push_back(Value(i));
    t.push_back(i % 7 == 0 ? Value() : Value("name" + std::to_string(i % 13)));
    t.push_back(i % 5 == 0 ? Value(-0.0) : Value(i * 0.25));
    EXPECT_TRUE(rel.Insert(std::move(t)).ok());
  }
  return rel;
}

TEST(RelationKernelTest, ProjectRowsMatchesRowPathAndChargesBulk) {
  Relation rel = TestRelation();
  std::vector<Tid> tids;
  for (Tid t = 0; t < rel.num_tuples(); t += 3) tids.push_back(t);
  const std::vector<size_t> projection = {2, 0};  // out of order on purpose

  ExecutionContext ctx;
  std::vector<Value> out(tids.size() * projection.size());
  rel.ProjectRows(tids.data(), tids.size(), projection, out.data(), &ctx);

  for (size_t i = 0; i < tids.size(); ++i) {
    const Tuple& row = rel.tuple(tids[i]);
    EXPECT_EQ(out[i * 2 + 0], row[2]) << tids[i];
    EXPECT_EQ(out[i * 2 + 1], row[0]) << tids[i];
  }
  // Bulk charge equivalence: exactly one fetch per projected row.
  EXPECT_EQ(ctx.stats().tuple_fetches.load(), tids.size());
}

TEST(RelationKernelTest, ProjectRowsAllMatchesTuples) {
  Relation rel = TestRelation();
  std::vector<Tid> tids = rel.AllTids();
  const size_t width = rel.schema().num_attributes();
  std::vector<Value> out(tids.size() * width);
  rel.ProjectRowsAll(tids.data(), tids.size(), out.data());
  for (size_t i = 0; i < tids.size(); ++i) {
    const Tuple& row = rel.tuple(tids[i]);
    for (size_t j = 0; j < width; ++j) {
      EXPECT_EQ(out[i * width + j], row[j]) << "tid=" << i << " attr=" << j;
    }
  }
}

TEST(RelationKernelTest, ColumnValueMatchesTupleCells) {
  Relation rel = TestRelation();
  for (Tid t = 0; t < rel.num_tuples(); ++t) {
    const Tuple& row = rel.tuple(t);
    for (size_t a = 0; a < row.size(); ++a) {
      EXPECT_EQ(rel.ColumnValue(t, a), row[a]);
    }
  }
}

TEST(RelationKernelTest, LookupEqualsIndexedAndScanAgree) {
  Relation rel = TestRelation();
  // Scan path first (no index), then indexed path; results must agree.
  auto scan = rel.LookupEquals("name", Value("name3"));
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(rel.CreateIndex("name").ok());
  auto indexed = rel.LookupEquals("name", Value("name3"));
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(*scan, *indexed);
  EXPECT_FALSE(scan->empty());

  // NULL key: rows whose name is NULL (every 7th).
  auto nulls_scan = rel.LookupEquals("score", Value());
  ASSERT_TRUE(nulls_scan.ok());
  EXPECT_TRUE(nulls_scan->empty());  // score column has no NULLs
  auto name_nulls = rel.LookupEquals("name", Value());
  ASSERT_TRUE(name_nulls.ok());
  EXPECT_EQ(name_nulls->size(), (97 + 6) / 7u);

  // Signed zero through the indexed double path.
  ASSERT_TRUE(rel.CreateIndex("score").ok());
  auto zeros = rel.LookupEquals("score", Value(0.0));
  ASSERT_TRUE(zeros.ok());
  EXPECT_EQ(zeros->size(), 20u);  // the -0.0 rows: i % 5 == 0 for i in [0, 97)
}

}  // namespace
}  // namespace precis
