// Sharded scatter-gather execution (DESIGN.md §15): the central contract is
// byte-identity — for ANY shard count, strategy, fault schedule, or
// deadline/budget stop, the sharded engine must produce exactly the answer
// the single engine produces. Plus router stability, partition/insert
// routing, deterministic merges, and the shard-aware cache epoch scheme.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/execution_context.h"
#include "common/fault_injection.h"
#include "datagen/movies_dataset.h"
#include "datagen/movies_templates.h"
#include "precis/engine.h"
#include "precis/json_export.h"
#include "service/precis_service.h"
#include "shard/shard_health.h"
#include "shard/shard_router.h"
#include "shard/sharded_database.h"
#include "shard/sharded_engine.h"
#include "shard/sharded_service.h"
#include "storage/serialization.h"
#include "translator/translator.h"

namespace precis {
namespace {

// ---------------------------------------------------------------------------
// Router and merge primitives.

TEST(ShardRouterTest, StableAcrossInstances) {
  ShardRouter a(4);
  ShardRouter b(4);
  const uint64_t seed = ShardRouter::RelationSeed("MOVIE");
  for (Tid tid = 0; tid < 1000; ++tid) {
    EXPECT_EQ(a.ShardOf(seed, tid), b.ShardOf(seed, tid));
  }
  // The per-relation seed is itself stable, so placement is a pure function
  // of (relation name, tid) across processes.
  EXPECT_EQ(ShardRouter::RelationSeed("MOVIE"), seed);
  EXPECT_NE(ShardRouter::RelationSeed("ACTOR"), seed);
}

TEST(ShardRouterTest, SpreadsTuplesAcrossAllShards) {
  ShardRouter router(8);
  const uint64_t seed = ShardRouter::RelationSeed("ACTOR");
  std::vector<size_t> counts(8, 0);
  for (Tid tid = 0; tid < 4096; ++tid) ++counts[router.ShardOf(seed, tid)];
  for (size_t s = 0; s < 8; ++s) {
    // splitmix64 over sequential tids lands well inside 2x of uniform.
    EXPECT_GT(counts[s], 4096u / 16) << "shard " << s;
    EXPECT_LT(counts[s], 4096u / 4) << "shard " << s;
  }
}

TEST(MergeAscendingTidsTest, MergesSortedRunsByteExactly) {
  EXPECT_TRUE(MergeAscendingTids({}).empty());
  EXPECT_TRUE(MergeAscendingTids({{}, {}}).empty());
  EXPECT_EQ(MergeAscendingTids({{1, 3, 5}}), (std::vector<Tid>{1, 3, 5}));
  EXPECT_EQ(MergeAscendingTids({{1, 4, 7}, {2, 5}, {}, {0, 9}}),
            (std::vector<Tid>{0, 1, 2, 4, 5, 7, 9}));
  // A single live list must come through unchanged.
  EXPECT_EQ(MergeAscendingTids({{}, {2, 6}, {}}), (std::vector<Tid>{2, 6}));
}

// ---------------------------------------------------------------------------
// Partitioning and routed inserts.

class ShardedDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 150;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
  }

  /// An unused GENRE row referencing an existing movie.
  Tuple FreshGenreTuple(int64_t gid) {
    auto genre = dataset_->db().GetRelation("GENRE");
    Value mid = (*genre)->ColumnValue(0, 1);  // GENRE(gid*, mid, genre)
    return Tuple{Value(gid), mid, Value("shardcore")};
  }

  std::unique_ptr<MoviesDataset> dataset_;
};

TEST_F(ShardedDatabaseTest, PartitionPreservesEveryTupleAndValue) {
  auto sharded = ShardedDatabase::Partition(dataset_->db(), 4);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded->num_shards(), 4u);
  EXPECT_EQ(sharded->TotalTuples(), dataset_->db().TotalTuples());

  for (const std::string& name : sharded->RelationNames()) {
    auto view = sharded->GetView(name);
    ASSERT_TRUE(view.ok());
    auto source = dataset_->db().GetRelation(name);
    ASSERT_TRUE(source.ok());
    ASSERT_EQ((*view)->num_tuples(), (*source)->num_tuples());
    // Every global tid round-trips through its owner shard with the same
    // column values.
    for (Tid tid = 0; tid < (*source)->num_tuples(); ++tid) {
      size_t owner = (*view)->OwnerOf(tid);
      Tid local = (*view)->LocalOf(tid);
      EXPECT_EQ((*view)->GlobalOf(owner, local), tid);
      for (size_t a = 0; a < (*source)->schema().num_attributes(); ++a) {
        EXPECT_TRUE((*view)->ColumnValue(tid, a) ==
                    (*source)->ColumnValue(tid, a))
            << name << " tid " << tid << " attr " << a;
      }
    }
  }
}

TEST_F(ShardedDatabaseTest, EveryShardHoldsEveryRelation) {
  auto sharded = ShardedDatabase::Partition(dataset_->db(), 8);
  ASSERT_TRUE(sharded.ok());
  // Even a shard that drew zero tuples of some relation must have created
  // it: the per-shard inverted indexes and catalogs must enumerate the
  // same sorted relation set or merge order drifts.
  for (size_t s = 0; s < 8; ++s) {
    for (const std::string& name : sharded->RelationNames()) {
      EXPECT_TRUE(sharded->shard(s).GetRelation(name).ok())
          << "shard " << s << " relation " << name;
    }
  }
}

TEST_F(ShardedDatabaseTest, LookupEqualsMatchesUnpartitionedSource) {
  auto sharded = ShardedDatabase::Partition(dataset_->db(), 4);
  ASSERT_TRUE(sharded.ok());
  auto view = sharded->GetView("MOVIE");
  ASSERT_TRUE(view.ok());
  auto source = dataset_->db().GetRelation("MOVIE");
  ASSERT_TRUE(source.ok());
  // "did" is a many-to-one join key (indexed), so lookups return multi-tid
  // lists whose global order must match the unpartitioned scan/probe.
  auto did_index = (*source)->schema().AttributeIndex("did");
  ASSERT_TRUE(did_index.ok());
  for (Tid probe = 0; probe < 40; ++probe) {
    Value key = (*source)->ColumnValue(probe, *did_index);
    auto expect = (*source)->LookupEquals("did", key);
    auto got = (*view)->LookupEquals("did", key);
    ASSERT_TRUE(expect.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *expect) << "probe " << probe;
  }
}

TEST_F(ShardedDatabaseTest, InsertRoutesToOwnerAndBumpsOnlyItsEpoch) {
  auto sharded = ShardedDatabase::Partition(dataset_->db(), 4);
  ASSERT_TRUE(sharded.ok());
  auto view = sharded->GetView("GENRE");
  ASSERT_TRUE(view.ok());
  Tid next = (*view)->num_tuples();
  size_t owner = sharded->ShardOf("GENRE", next);

  std::vector<uint64_t> before;
  for (size_t s = 0; s < 4; ++s) before.push_back(sharded->shard_epoch(s));

  auto inserted = sharded->Insert("GENRE", FreshGenreTuple(1000000));
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(*inserted, next);
  EXPECT_EQ((*view)->num_tuples(), next + 1);
  EXPECT_EQ((*view)->OwnerOf(next), owner);
  EXPECT_TRUE((*view)->ColumnValue(next, 2) == Value("shardcore"));

  for (size_t s = 0; s < 4; ++s) {
    if (s == owner) {
      EXPECT_GT(sharded->shard_epoch(s), before[s]) << "owner " << s;
    } else {
      EXPECT_EQ(sharded->shard_epoch(s), before[s]) << "shard " << s;
    }
  }
}

TEST_F(ShardedDatabaseTest, InsertRejectsCrossShardPrimaryKeyDuplicate) {
  auto sharded = ShardedDatabase::Partition(dataset_->db(), 4);
  ASSERT_TRUE(sharded.ok());
  auto source = dataset_->db().GetRelation("GENRE");
  ASSERT_TRUE(source.ok());
  // Re-insert an existing primary key: the owner of the NEW tid is very
  // likely a different shard than the original row's, so uniqueness must
  // be enforced across shards, not per shard.
  Tuple dup = FreshGenreTuple(0);
  dup[0] = (*source)->ColumnValue(0, 0);
  auto inserted = sharded->Insert("GENRE", std::move(dup));
  EXPECT_FALSE(inserted.ok());
}

// ---------------------------------------------------------------------------
// The determinism suite: sharded answers are byte-identical to the single
// engine under every stop/fault/strategy combination.

struct RunDigest {
  std::string answer_json;
  std::string degradation;
  std::vector<std::string> executed_edges;
  std::vector<std::string> truncated;
  StopReason stop = StopReason::kNone;
  StopReason ctx_stop = StopReason::kNone;
  std::string db_bytes;
};

class ShardDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 120;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
    auto engine = PrecisEngine::Create(&dataset_->db(), &dataset_->graph());
    ASSERT_TRUE(engine.ok());
    engine_ = std::make_unique<PrecisEngine>(std::move(*engine));
    for (size_t n : {1u, 2u, 4u, 8u}) {
      auto sharded =
          ShardedPrecisEngine::Create(dataset_->db(), &dataset_->graph(), n);
      ASSERT_TRUE(sharded.ok());
      sharded_.push_back(std::move(*sharded));
    }
  }

  /// One configured run against either engine; `sharded == nullptr` runs
  /// the single-engine reference.
  RunDigest Run(const ShardedPrecisEngine* sharded,
                const std::vector<std::string>& tokens, SubsetStrategy strategy,
                FaultInjector* injector, uint64_t fault_seed, uint64_t budget,
                bool expired_deadline) {
    auto degree = MinPathWeight(0.8);
    auto cardinality = MaxTuplesPerRelation(4);
    DbGenOptions options;
    options.strategy = strategy;

    ExecutionContext ctx;
    if (budget > 0) ctx.SetAccessBudget(budget);
    if (expired_deadline) ctx.SetDeadlineAfter(1e-9);
    if (injector != nullptr) {
      injector->Reseed(fault_seed);  // identical fault sequence per run
      ctx.SetFaultInjector(injector);
      RetryPolicy policy;
      policy.initial_backoff_ns = 0;
      ctx.set_retry_policy(policy);
    }

    auto answer = sharded != nullptr
                      ? sharded->Answer(PrecisQuery{tokens}, *degree,
                                        *cardinality, options, &ctx)
                      : engine_->Answer(PrecisQuery{tokens}, *degree,
                                        *cardinality, options, &ctx);
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
    RunDigest digest;
    if (!answer.ok()) return digest;
    digest.answer_json = AnswerToJson(*answer);
    digest.degradation = answer->report.degradation.ToString();
    digest.executed_edges = answer->report.executed_edges;
    digest.truncated = answer->report.truncated_relations;
    digest.stop = answer->report.stop_reason;
    digest.ctx_stop = ctx.stop_reason();
    std::ostringstream os;
    EXPECT_TRUE(SaveDatabase(answer->database, &os).ok());
    digest.db_bytes = os.str();
    return digest;
  }

  void ExpectIdentical(const RunDigest& expect, const RunDigest& got,
                       const std::string& label) {
    EXPECT_EQ(got.answer_json, expect.answer_json) << label;
    EXPECT_EQ(got.degradation, expect.degradation) << label;
    EXPECT_EQ(got.executed_edges, expect.executed_edges) << label;
    EXPECT_EQ(got.truncated, expect.truncated) << label;
    EXPECT_EQ(got.stop, expect.stop) << label;
    EXPECT_EQ(got.ctx_stop, expect.ctx_stop) << label;
    EXPECT_EQ(got.db_bytes, expect.db_bytes) << label;
  }

  std::unique_ptr<MoviesDataset> dataset_;
  std::unique_ptr<PrecisEngine> engine_;
  std::vector<std::unique_ptr<ShardedPrecisEngine>> sharded_;
};

TEST_F(ShardDeterminismTest, CleanRunsByteIdenticalAcrossShardCounts) {
  const std::vector<std::vector<std::string>> queries = {
      {"Woody Allen"}, {"Comedy"}, {"Woody Allen", "Drama"}};
  for (SubsetStrategy strategy :
       {SubsetStrategy::kAuto, SubsetStrategy::kNaiveQ,
        SubsetStrategy::kRoundRobin}) {
    for (const auto& tokens : queries) {
      RunDigest expect = Run(nullptr, tokens, strategy, nullptr, 0, 0, false);
      for (const auto& sharded : sharded_) {
        RunDigest got =
            Run(sharded.get(), tokens, strategy, nullptr, 0, 0, false);
        ExpectIdentical(expect, got,
                        "shards=" + std::to_string(sharded->num_shards()) +
                            " strategy=" +
                            std::to_string(static_cast<int>(strategy)));
      }
    }
  }
}

TEST_F(ShardDeterminismTest, FaultInjectedRunsByteIdentical) {
  FaultInjector injector(1);
  injector.SetAll(FaultSchedule::Probability(0.1));
  for (uint64_t seed : {1u, 7u, 23u}) {
    for (SubsetStrategy strategy :
         {SubsetStrategy::kNaiveQ, SubsetStrategy::kRoundRobin}) {
      RunDigest expect =
          Run(nullptr, {"Woody Allen"}, strategy, &injector, seed, 0, false);
      for (const auto& sharded : sharded_) {
        RunDigest got = Run(sharded.get(), {"Woody Allen"}, strategy,
                            &injector, seed, 0, false);
        ExpectIdentical(expect, got,
                        "faults seed=" + std::to_string(seed) + " shards=" +
                            std::to_string(sharded->num_shards()));
      }
    }
  }
}

TEST_F(ShardDeterminismTest, BudgetStopsByteIdentical) {
  for (uint64_t budget : {1u, 5u, 25u, 100u}) {
    RunDigest expect = Run(nullptr, {"Woody Allen"},
                           SubsetStrategy::kRoundRobin, nullptr, 0, budget,
                           false);
    for (const auto& sharded : sharded_) {
      RunDigest got = Run(sharded.get(), {"Woody Allen"},
                          SubsetStrategy::kRoundRobin, nullptr, 0, budget,
                          false);
      ExpectIdentical(expect, got,
                      "budget=" + std::to_string(budget) + " shards=" +
                          std::to_string(sharded->num_shards()));
    }
    if (budget == 1) {
      EXPECT_EQ(expect.ctx_stop, StopReason::kAccessBudgetExhausted);
    }
  }
}

TEST_F(ShardDeterminismTest, ExpiredDeadlineStopsByteIdentical) {
  RunDigest expect = Run(nullptr, {"Woody Allen"}, SubsetStrategy::kAuto,
                         nullptr, 0, 0, true);
  EXPECT_EQ(expect.ctx_stop, StopReason::kDeadlineExceeded);
  for (const auto& sharded : sharded_) {
    RunDigest got = Run(sharded.get(), {"Woody Allen"}, SubsetStrategy::kAuto,
                        nullptr, 0, 0, true);
    ExpectIdentical(expect, got,
                    "deadline shards=" +
                        std::to_string(sharded->num_shards()));
  }
}

TEST_F(ShardDeterminismTest, FaultAndBudgetCombinedByteIdentical) {
  FaultInjector injector(9);
  injector.SetAll(FaultSchedule::Probability(0.05));
  RunDigest expect = Run(nullptr, {"Comedy"}, SubsetStrategy::kRoundRobin,
                         &injector, 9, 40, false);
  for (const auto& sharded : sharded_) {
    RunDigest got = Run(sharded.get(), {"Comedy"},
                        SubsetStrategy::kRoundRobin, &injector, 9, 40, false);
    ExpectIdentical(expect, got,
                    "faults+budget shards=" +
                        std::to_string(sharded->num_shards()));
  }
}

// ---------------------------------------------------------------------------
// Shard-aware caching.

class ShardedCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 120;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
    auto sharded =
        ShardedPrecisEngine::Create(dataset_->db(), &dataset_->graph(), 4);
    ASSERT_TRUE(sharded.ok());
    engine_ = std::move(*sharded);
    engine_->set_caches_enabled(true);
  }

  std::shared_ptr<const PrecisAnswer> Ask(const std::string& token) {
    auto degree = MinPathWeight(0.9);
    auto cardinality = MaxTuplesPerRelation(3);
    auto answer =
        engine_->AnswerShared(PrecisQuery{{token}}, *degree, *cardinality);
    EXPECT_TRUE(answer.ok());
    return answer.ok() ? *answer : nullptr;
  }

  /// A fresh GENRE tuple; `gid` must be globally unused.
  Tuple FreshGenreTuple(int64_t gid) {
    auto view = engine_->database().GetView("GENRE");
    Value mid = (*view)->ColumnValue(0, 1);  // GENRE(gid*, mid, genre)
    return Tuple{Value(gid), mid, Value("fresh-genre")};
  }

  std::unique_ptr<MoviesDataset> dataset_;
  std::unique_ptr<ShardedPrecisEngine> engine_;
};

TEST_F(ShardedCacheTest, RepeatQueryHitsFullAnswerCache) {
  auto first = Ask("Woody Allen");
  ASSERT_NE(first, nullptr);
  auto second = Ask("Woody Allen");
  ASSERT_NE(second, nullptr);
  auto third = Ask("Woody Allen");
  ASSERT_NE(third, nullptr);
  EXPECT_EQ(engine_->answer_cache_stats().hits, 2u);
  // Hits hand back the SAME stored immutable answer, not a copy.
  EXPECT_EQ(second.get(), third.get());
  EXPECT_EQ(AnswerToJson(*first), AnswerToJson(*second));
}

TEST_F(ShardedCacheTest, SingleShardInsertInvalidatesOnlyThatShardsPartials) {
  ASSERT_NE(Ask("Woody Allen"), nullptr);
  ASSERT_NE(Ask("Woody Allen"), nullptr);  // warm: full-answer hit

  // Route one insert; exactly one shard's epoch moves.
  auto view = engine_->database().GetView("GENRE");
  ASSERT_TRUE(view.ok());
  Tid next = (*view)->num_tuples();
  size_t owner = engine_->database().ShardOf("GENRE", next);
  ASSERT_TRUE(engine_->Insert("GENRE", FreshGenreTuple(2000000)).ok());

  std::vector<LruCacheStats> before;
  for (size_t s = 0; s < engine_->num_shards(); ++s) {
    before.push_back(engine_->shard_partial_cache_stats(s));
  }

  // The full answer must rebuild (its key carries every shard's epoch)...
  uint64_t full_hits = engine_->answer_cache_stats().hits;
  ASSERT_NE(Ask("Woody Allen"), nullptr);
  EXPECT_EQ(engine_->answer_cache_stats().hits, full_hits);

  // ...but during that rebuild only the mutated shard's partial entries
  // went stale: every OTHER shard's token lookup hits its partial cache.
  for (size_t s = 0; s < engine_->num_shards(); ++s) {
    LruCacheStats after = engine_->shard_partial_cache_stats(s);
    if (s == owner) {
      EXPECT_EQ(after.hits, before[s].hits) << "mutated shard " << s;
      EXPECT_GT(after.misses, before[s].misses) << "mutated shard " << s;
    } else {
      EXPECT_GT(after.hits, before[s].hits) << "untouched shard " << s;
      EXPECT_EQ(after.misses, before[s].misses) << "untouched shard " << s;
    }
  }
}

TEST_F(ShardedCacheTest, InsertKeepsAnswersIdenticalToSingleEngine) {
  // Warm every cache level, then mutate: post-insert answers must still be
  // byte-identical to a single engine over an identically mutated source
  // (both engines index at Create; later inserts are not re-indexed).
  ASSERT_NE(Ask("Woody Allen"), nullptr);

  auto single = PrecisEngine::Create(&dataset_->db(), &dataset_->graph());
  ASSERT_TRUE(single.ok());
  auto genre = dataset_->db().GetRelation("GENRE");
  ASSERT_TRUE(genre.ok());
  auto source_inserted = (*genre)->Insert(FreshGenreTuple(3000000));
  ASSERT_TRUE(source_inserted.ok());
  auto sharded_inserted = engine_->Insert("GENRE", FreshGenreTuple(3000000));
  ASSERT_TRUE(sharded_inserted.ok());
  EXPECT_EQ(*sharded_inserted, *source_inserted);

  auto degree = MinPathWeight(0.9);
  auto cardinality = MaxTuplesPerRelation(3);
  auto expect =
      single->Answer(PrecisQuery{{"Woody Allen"}}, *degree, *cardinality);
  auto got =
      engine_->Answer(PrecisQuery{{"Woody Allen"}}, *degree, *cardinality);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(AnswerToJson(*got), AnswerToJson(*expect));
}

TEST_F(ShardedCacheTest, BodyCacheMemoizesRendersAndInvalidatesOnInsert) {
  auto degree = MinPathWeight(0.9);
  auto cardinality = MaxTuplesPerRelation(3);
  auto ask = [&] {
    auto rendered = engine_->AnswerSharedRendered(PrecisQuery{{"Woody Allen"}},
                                                  *degree, *cardinality);
    EXPECT_TRUE(rendered.ok());
    return rendered.ok() ? *rendered : RenderedAnswer{};
  };
  auto first = ask();
  ASSERT_NE(first.body_json, nullptr);
  EXPECT_EQ(*first.body_json, AnswerToJson(*first.answer));
  // A repeat serves the very same memoized string (zero serialization).
  auto second = ask();
  ASSERT_NE(second.body_json, nullptr);
  EXPECT_EQ(first.body_json.get(), second.body_json.get());
  EXPECT_EQ(engine_->body_cache_stats().hits, 1u);

  // One insert moves one shard's epoch — the shard-aware key no longer
  // matches, so the body is re-rendered from the rebuilt answer.
  ASSERT_TRUE(engine_->Insert("GENRE", FreshGenreTuple(4000000)).ok());
  auto after = ask();
  ASSERT_NE(after.body_json, nullptr);
  EXPECT_NE(after.body_json.get(), first.body_json.get());
  EXPECT_EQ(*after.body_json, AnswerToJson(*after.answer));
}

// ---------------------------------------------------------------------------
// ShardedPrecisService.

TEST(ShardedServiceTest, AnswersMatchSingleEngineAndMetricsFillShards) {
  MoviesConfig config;
  config.num_movies = 120;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto single = PrecisEngine::Create(&ds->db(), &ds->graph());
  ASSERT_TRUE(single.ok());
  auto sharded = ShardedPrecisEngine::Create(ds->db(), &ds->graph(), 4);
  ASSERT_TRUE(sharded.ok());

  PrecisService::Options options;
  options.num_workers = 2;
  auto service = ShardedPrecisService::Create(sharded->get(), options);
  ASSERT_TRUE(service.ok());

  auto degree = MinPathWeight(0.8);
  auto cardinality = MaxTuplesPerRelation(5);
  auto reference =
      single->Answer(PrecisQuery{{"Woody Allen"}}, *degree, *cardinality);
  ASSERT_TRUE(reference.ok());
  const std::string expected = AnswerToJson(*reference);

  for (int i = 0; i < 6; ++i) {
    ServiceRequest request;
    request.query = PrecisQuery{{"Woody Allen"}};
    request.min_path_weight = 0.8;
    request.tuples_per_relation = 5;
    ServiceResponse response = (*service)->Execute(std::move(request));
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_NE(response.answer, nullptr);
    EXPECT_EQ(AnswerToJson(*response.answer), expected);
  }

  PrecisService::Metrics metrics = (*service)->metrics();
  EXPECT_EQ(metrics.queries_served, 6u);
  ASSERT_EQ(metrics.shards.size(), 4u);
  uint64_t total_subqueries = 0;
  uint64_t total_tuples = 0;
  for (const auto& shard : metrics.shards) {
    total_subqueries += shard.subqueries;
    total_tuples += shard.tuples;
  }
  EXPECT_GT(total_subqueries, 0u);
  EXPECT_EQ(total_tuples, ds->db().TotalTuples());
  (*service)->Shutdown();
}

TEST(ShardedServiceTest, SingleShardDelegatesAndStillServes) {
  MoviesConfig config;
  config.num_movies = 80;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto sharded = ShardedPrecisEngine::Create(ds->db(), &ds->graph(), 1);
  ASSERT_TRUE(sharded.ok());
  auto service = ShardedPrecisService::Create(sharded->get());
  ASSERT_TRUE(service.ok());

  ServiceRequest request;
  request.query = PrecisQuery{{"Woody Allen"}};
  request.min_path_weight = 0.9;
  request.tuples_per_relation = 3;
  ServiceResponse response = (*service)->Execute(std::move(request));
  ASSERT_TRUE(response.status.ok());
  ASSERT_NE(response.answer, nullptr);
  EXPECT_FALSE(response.answer->empty());
  PrecisService::Metrics metrics = (*service)->metrics();
  ASSERT_EQ(metrics.shards.size(), 1u);
  EXPECT_EQ(metrics.shards[0].tuples, ds->db().TotalTuples());
  (*service)->Shutdown();
}

// ---------------------------------------------------------------------------
// Circuit breaker state machine (DESIGN.md §17).

TEST(CircuitBreakerTest, OnlyConsecutiveFailuresOpenTheCircuit) {
  CircuitBreakerPolicy policy;
  policy.failure_threshold = 3;
  policy.cooldown_rejects = 2;
  CircuitBreaker breaker(policy);

  // A success in between resets the consecutive count: still closed.
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());

  breaker.RecordFailure();  // third consecutive
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  CircuitBreakerStats stats = breaker.stats();
  EXPECT_EQ(stats.opened_total, 1u);
  EXPECT_EQ(stats.failures_total, 5u);
  EXPECT_EQ(stats.successes_total, 1u);
}

TEST(CircuitBreakerTest, CooldownAdmitsOneProbeWhoseOutcomeDecides) {
  CircuitBreakerPolicy policy;
  policy.failure_threshold = 1;
  policy.cooldown_rejects = 2;
  CircuitBreaker breaker(policy);

  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  // The decision-counted cooldown: two rejections, then the next caller is
  // admitted as the half-open probe.
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  // One probe at a time: concurrent callers are rejected meanwhile.
  EXPECT_FALSE(breaker.Allow());

  // A failed probe goes straight back to open and restarts the cooldown.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());

  // A successful probe closes the circuit for good.
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());

  CircuitBreakerStats stats = breaker.stats();
  EXPECT_EQ(stats.opened_total, 2u);
  EXPECT_EQ(stats.half_open_probes, 2u);
  EXPECT_EQ(stats.rejected_total, 5u);
}

// ---------------------------------------------------------------------------
// Shard fault domains: degradation, byte-identity, breakers, hedging
// (DESIGN.md §17).

class ShardFaultDomainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 120;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
  }

  std::unique_ptr<ShardedPrecisEngine> MakeEngine(size_t shards,
                                                  bool replicas = false) {
    auto engine = ShardedPrecisEngine::Create(dataset_->db(),
                                              &dataset_->graph(), shards,
                                              replicas);
    EXPECT_TRUE(engine.ok());
    return engine.ok() ? std::move(*engine) : nullptr;
  }

  /// Latches `shard` permanently dead: the first kShardSubquery check in
  /// its domain fires a permanent error, so every later probe fails too.
  static void ScheduleDeadShard(FaultInjector* injector, uint32_t shard) {
    FaultSchedule dead = FaultSchedule::Steps({1}, FaultKind::kPermanentError);
    dead.domains = {shard};
    injector->SetSchedule(FaultSite::kShardSubquery, dead);
  }

  static void AttachInjector(ExecutionContext* ctx, FaultInjector* injector) {
    ctx->SetFaultInjector(injector);
    RetryPolicy policy;
    policy.initial_backoff_ns = 0;  // fast tests; decisions are unaffected
    ctx->set_retry_policy(policy);
  }

  struct Digest {
    std::string answer_json;
    std::string degradation;
    std::string db_bytes;
  };

  /// One query against `engine` with `dead_shard` latched dead under
  /// `seed`, using a fresh injector per run so the latch/check streams
  /// restart identically.
  Digest RunDead(const ShardedPrecisEngine& engine, uint32_t dead_shard,
                 uint64_t seed, size_t parallelism) {
    FaultInjector injector(seed);
    ScheduleDeadShard(&injector, dead_shard);
    ExecutionContext ctx;
    AttachInjector(&ctx, &injector);
    DbGenOptions options;
    options.strategy = SubsetStrategy::kRoundRobin;
    options.parallelism = parallelism;
    auto answer =
        engine.Answer(PrecisQuery{{"Woody Allen"}}, *MinPathWeight(0.8),
                      *MaxTuplesPerRelation(4), options, &ctx);
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
    Digest digest;
    if (!answer.ok()) return digest;
    digest.answer_json = AnswerToJson(*answer);
    digest.degradation = answer->report.degradation.ToString();
    std::ostringstream os;
    EXPECT_TRUE(SaveDatabase(answer->database, &os).ok());
    digest.db_bytes = os.str();
    return digest;
  }

  std::unique_ptr<MoviesDataset> dataset_;
};

TEST_F(ShardFaultDomainTest, KilledShardAnswersDegradedWithHonestReport) {
  auto engine = MakeEngine(4);
  ASSERT_NE(engine, nullptr);
  FaultInjector injector(5);
  ScheduleDeadShard(&injector, 2);
  ExecutionContext ctx;
  AttachInjector(&ctx, &injector);
  ShardQueryStats stats;
  auto answer = engine->Answer(PrecisQuery{{"Woody Allen"}},
                               *MinPathWeight(0.8), *MaxTuplesPerRelation(4),
                               DbGenOptions(), &ctx, &stats);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();

  // The merge completed without shard 2 and the report says so.
  const DegradationReport& degradation = answer->report.degradation;
  EXPECT_TRUE(degradation.degraded());
  EXPECT_EQ(degradation.shards_skipped, (std::vector<uint32_t>{2}));
  EXPECT_EQ(degradation.shards_total, 4u);
  uint64_t unavailable = 0;
  for (const RelationDegradation& r : degradation.relations) {
    unavailable += r.unavailable_tuples;
  }
  EXPECT_GT(unavailable, 0u) << "the dead shard's resident result tuples "
                                "must be accounted as unavailable";

  // The telemetry agrees and the exported JSON carries the block.
  EXPECT_EQ(stats.shards_skipped, (std::vector<uint32_t>{2}));
  const std::string json = AnswerToJson(*answer);
  EXPECT_NE(json.find("\"shards_skipped\":[2]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shards_total\":4"), std::string::npos);
  EXPECT_NE(json.find("\"unavailable_tuples\""), std::string::npos);
}

TEST_F(ShardFaultDomainTest, DegradedAnswersByteIdenticalAcrossReruns) {
  // The determinism invariant: with the same seed and the same dead shard,
  // reruns are byte-identical at any shard count and dbgen parallelism —
  // including reruns where the breaker (opened by earlier queries) skips
  // the shard without probing instead of probing and failing.
  for (size_t shards : {2u, 4u, 8u}) {
    auto engine = MakeEngine(shards);
    ASSERT_NE(engine, nullptr);
    const uint32_t dead = static_cast<uint32_t>(shards - 1);
    for (uint64_t seed : {1u, 23u}) {
      Digest expect = RunDead(*engine, dead, seed, 1);
      ASSERT_NE(expect.degradation.find("shards_skipped"), std::string::npos)
          << expect.degradation;
      for (int rerun = 0; rerun < 2; ++rerun) {
        for (size_t parallelism : {1u, 4u}) {
          Digest got = RunDead(*engine, dead, seed, parallelism);
          const std::string label =
              "shards=" + std::to_string(shards) + " seed=" +
              std::to_string(seed) + " parallelism=" +
              std::to_string(parallelism);
          EXPECT_EQ(got.answer_json, expect.answer_json) << label;
          EXPECT_EQ(got.degradation, expect.degradation) << label;
          EXPECT_EQ(got.db_bytes, expect.db_bytes) << label;
        }
      }
    }
  }
}

TEST_F(ShardFaultDomainTest, TranslatorLeadsWithThePartitionNotice) {
  auto engine = MakeEngine(4);
  ASSERT_NE(engine, nullptr);
  FaultInjector injector(9);
  ScheduleDeadShard(&injector, 1);
  ExecutionContext ctx;
  AttachInjector(&ctx, &injector);
  auto answer = engine->Answer(PrecisQuery{{"Woody Allen"}},
                               *MinPathWeight(0.8), *MaxTuplesPerRelation(4),
                               DbGenOptions(), &ctx);
  ASSERT_TRUE(answer.ok());
  ASSERT_FALSE(answer->report.degradation.shards_skipped.empty());

  auto catalog = BuildMoviesTemplateCatalog();
  ASSERT_TRUE(catalog.ok());
  Translator translator(&*catalog);
  auto text = translator.Render(*answer);
  ASSERT_TRUE(text.ok());
  // An honest answer leads with what it is missing.
  EXPECT_EQ(text->rfind("[answers from 3 of 4 partitions]", 0), 0u) << *text;
}

TEST_F(ShardFaultDomainTest, DegradedAnswersAreNeverCached) {
  auto engine = MakeEngine(4);
  ASSERT_NE(engine, nullptr);
  engine->set_caches_enabled(true);
  FaultInjector injector(3);
  ScheduleDeadShard(&injector, 1);
  auto ask = [&](ExecutionContext* ctx) {
    return engine->AnswerShared(PrecisQuery{{"Woody Allen"}},
                                *MinPathWeight(0.9), *MaxTuplesPerRelation(3),
                                DbGenOptions(), ctx);
  };

  // Two degraded runs (below the breaker's failure threshold of 3, so the
  // later fault-free queries are not themselves skipped by an open
  // breaker): none may be served from (or admitted to) the cache.
  for (int i = 0; i < 2; ++i) {
    ExecutionContext ctx;
    AttachInjector(&ctx, &injector);
    auto answer = ask(&ctx);
    ASSERT_TRUE(answer.ok());
    EXPECT_TRUE((*answer)->report.degradation.degraded()) << i;
  }
  EXPECT_EQ(engine->answer_cache_stats().hits, 0u);

  // The same query without the fault domain caches normally, proving the
  // misses above were taint, not a broken cache.
  auto first = ask(nullptr);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE((*first)->report.degradation.degraded());
  auto second = ask(nullptr);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine->answer_cache_stats().hits, 1u);
}

TEST_F(ShardFaultDomainTest, BreakerOpensOnDeadShardThenHalfOpenProbes) {
  auto engine = MakeEngine(4);
  ASSERT_NE(engine, nullptr);
  FaultInjector injector(7);
  ScheduleDeadShard(&injector, 1);

  // Serve a run of queries against the permanently dead shard. With the
  // default policy (threshold 3, cooldown 8) the breaker opens after three
  // probed failures, then cycles reject/half-open-probe/reopen — every
  // query still answers, always without shard 1.
  uint64_t breaker_rejects_seen = 0;
  for (int i = 0; i < 30; ++i) {
    ExecutionContext ctx;
    AttachInjector(&ctx, &injector);
    ShardQueryStats stats;
    auto answer = engine->Answer(PrecisQuery{{"Comedy"}}, *MinPathWeight(0.9),
                                 *MaxTuplesPerRelation(3), DbGenOptions(),
                                 &ctx, &stats);
    ASSERT_TRUE(answer.ok()) << i;
    EXPECT_EQ(stats.shards_skipped, (std::vector<uint32_t>{1})) << i;
    breaker_rejects_seen += stats.breaker_rejects;
  }

  CircuitBreakerStats breaker = engine->breaker_stats(1);
  EXPECT_EQ(breaker.state, BreakerState::kOpen);
  EXPECT_GE(breaker.opened_total, 2u);  // initial open + >= 1 failed probe
  EXPECT_GE(breaker.half_open_probes, 1u);
  EXPECT_GT(breaker.rejected_total, 0u);
  EXPECT_EQ(breaker.successes_total, 0u);
  EXPECT_GT(breaker_rejects_seen, 0u);

  // Healthy shards' breakers stayed closed, accumulating successes.
  for (size_t s : {0u, 2u, 3u}) {
    CircuitBreakerStats healthy = engine->breaker_stats(s);
    EXPECT_EQ(healthy.state, BreakerState::kClosed) << s;
    EXPECT_EQ(healthy.failures_total, 0u) << s;
    EXPECT_GT(healthy.successes_total, 0u) << s;
  }
  EXPECT_GE(engine->health().shard_skips.load(std::memory_order_relaxed),
            30u);
}

TEST_F(ShardFaultDomainTest, HedgedSubqueriesNeverChangeAnswerBytes) {
  auto engine = MakeEngine(4, /*with_replicas=*/true);
  ASSERT_NE(engine, nullptr);
  auto run = [&](uint64_t stall_ns, ShardQueryStats* stats) {
    FaultInjector injector(11);
    FaultSchedule stall =
        FaultSchedule::Probability(1.0, FaultKind::kLatencySpike);
    stall.latency_spike_ns = stall_ns;
    stall.domains = {2};
    injector.SetSchedule(FaultSite::kShardTimeout, stall);
    ExecutionContext ctx;
    AttachInjector(&ctx, &injector);
    DbGenOptions options;
    options.strategy = SubsetStrategy::kRoundRobin;
    auto answer =
        engine->Answer(PrecisQuery{{"Woody Allen"}}, *MinPathWeight(0.8),
                       *MaxTuplesPerRelation(4), options, &ctx, stats);
    EXPECT_TRUE(answer.ok());
    return answer.ok() ? AnswerToJson(*answer) : std::string();
  };
  // Reference: the same armed schedule with a 1 ns stall — far below the
  // 2 ms hedging delay, so no hedge fires (and the run is fault-tainted
  // exactly like the hedged one, keeping the reports comparable).
  const std::string expect = run(1, nullptr);

  // Stall shard 2's sub-queries well past the default 2 ms hedging delay:
  // the coordinator re-issues them against the replica, the replica wins,
  // and — replicas being exact copies — the bytes cannot change.
  ShardQueryStats stats;
  const std::string got = run(8'000'000, &stats);  // 8 ms

  EXPECT_EQ(got, expect);
  EXPECT_TRUE(stats.shards_skipped.empty());
  EXPECT_GT(stats.hedged_subqueries, 0u);
  EXPECT_GT(stats.hedge_wins, 0u) << "the unstalled replica must beat an "
                                     "8 ms primary stall";
  EXPECT_LE(stats.hedge_wins, stats.hedged_subqueries);
  const ShardHealthTracker& health = engine->health();
  EXPECT_GE(health.hedged_subqueries.load(std::memory_order_relaxed),
            stats.hedged_subqueries);
  EXPECT_GE(health.hedge_wins.load(std::memory_order_relaxed),
            stats.hedge_wins);
}

TEST(ShardedServiceTest, KilledShardServesDegradedAndExportsBreakers) {
  MoviesConfig config;
  config.num_movies = 120;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto sharded = ShardedPrecisEngine::Create(ds->db(), &ds->graph(), 4);
  ASSERT_TRUE(sharded.ok());

  FaultInjector injector(42);
  FaultSchedule dead = FaultSchedule::Steps({1}, FaultKind::kPermanentError);
  dead.domains = {1};
  injector.SetSchedule(FaultSite::kShardSubquery, dead);

  PrecisService::Options options;
  options.num_workers = 2;
  options.fault_injector = &injector;
  options.retry_policy.initial_backoff_ns = 0;
  auto service = ShardedPrecisService::Create(sharded->get(), options);
  ASSERT_TRUE(service.ok());

  for (int i = 0; i < 5; ++i) {
    ServiceRequest request;
    request.query = PrecisQuery{{"Woody Allen"}};
    request.min_path_weight = 0.8;
    request.tuples_per_relation = 5;
    ServiceResponse response = (*service)->Execute(std::move(request));
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_NE(response.answer, nullptr);
    EXPECT_TRUE(response.answer->report.degradation.degraded()) << i;
  }

  PrecisService::Metrics metrics = (*service)->metrics();
  EXPECT_EQ(metrics.shard_degraded_queries, 5u);
  EXPECT_EQ(metrics.shard_skips_total, 5u);
  EXPECT_GT(metrics.shard_probe_retries_total, 0u);
  ASSERT_EQ(metrics.shards.size(), 4u);
  // Threshold 3: the dead shard's breaker opened during the run and the
  // later queries fast-failed it without probing.
  EXPECT_EQ(metrics.shards[1].breaker_state, "open");
  EXPECT_GE(metrics.shards[1].breaker_failures, 3u);
  EXPECT_GE(metrics.shards[1].breaker_opened, 1u);
  EXPECT_GT(metrics.shard_breaker_rejects_total, 0u);
  for (size_t s : {0u, 2u, 3u}) {
    EXPECT_EQ(metrics.shards[s].breaker_state, "closed") << s;
  }
  (*service)->Shutdown();
}

}  // namespace
}  // namespace precis
