// Sharded scatter-gather execution (DESIGN.md §15): the central contract is
// byte-identity — for ANY shard count, strategy, fault schedule, or
// deadline/budget stop, the sharded engine must produce exactly the answer
// the single engine produces. Plus router stability, partition/insert
// routing, deterministic merges, and the shard-aware cache epoch scheme.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/fault_injection.h"
#include "datagen/movies_dataset.h"
#include "precis/engine.h"
#include "precis/json_export.h"
#include "service/precis_service.h"
#include "shard/shard_router.h"
#include "shard/sharded_database.h"
#include "shard/sharded_engine.h"
#include "shard/sharded_service.h"
#include "storage/serialization.h"

namespace precis {
namespace {

// ---------------------------------------------------------------------------
// Router and merge primitives.

TEST(ShardRouterTest, StableAcrossInstances) {
  ShardRouter a(4);
  ShardRouter b(4);
  const uint64_t seed = ShardRouter::RelationSeed("MOVIE");
  for (Tid tid = 0; tid < 1000; ++tid) {
    EXPECT_EQ(a.ShardOf(seed, tid), b.ShardOf(seed, tid));
  }
  // The per-relation seed is itself stable, so placement is a pure function
  // of (relation name, tid) across processes.
  EXPECT_EQ(ShardRouter::RelationSeed("MOVIE"), seed);
  EXPECT_NE(ShardRouter::RelationSeed("ACTOR"), seed);
}

TEST(ShardRouterTest, SpreadsTuplesAcrossAllShards) {
  ShardRouter router(8);
  const uint64_t seed = ShardRouter::RelationSeed("ACTOR");
  std::vector<size_t> counts(8, 0);
  for (Tid tid = 0; tid < 4096; ++tid) ++counts[router.ShardOf(seed, tid)];
  for (size_t s = 0; s < 8; ++s) {
    // splitmix64 over sequential tids lands well inside 2x of uniform.
    EXPECT_GT(counts[s], 4096u / 16) << "shard " << s;
    EXPECT_LT(counts[s], 4096u / 4) << "shard " << s;
  }
}

TEST(MergeAscendingTidsTest, MergesSortedRunsByteExactly) {
  EXPECT_TRUE(MergeAscendingTids({}).empty());
  EXPECT_TRUE(MergeAscendingTids({{}, {}}).empty());
  EXPECT_EQ(MergeAscendingTids({{1, 3, 5}}), (std::vector<Tid>{1, 3, 5}));
  EXPECT_EQ(MergeAscendingTids({{1, 4, 7}, {2, 5}, {}, {0, 9}}),
            (std::vector<Tid>{0, 1, 2, 4, 5, 7, 9}));
  // A single live list must come through unchanged.
  EXPECT_EQ(MergeAscendingTids({{}, {2, 6}, {}}), (std::vector<Tid>{2, 6}));
}

// ---------------------------------------------------------------------------
// Partitioning and routed inserts.

class ShardedDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 150;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
  }

  /// An unused GENRE row referencing an existing movie.
  Tuple FreshGenreTuple(int64_t gid) {
    auto genre = dataset_->db().GetRelation("GENRE");
    Value mid = (*genre)->ColumnValue(0, 1);  // GENRE(gid*, mid, genre)
    return Tuple{Value(gid), mid, Value("shardcore")};
  }

  std::unique_ptr<MoviesDataset> dataset_;
};

TEST_F(ShardedDatabaseTest, PartitionPreservesEveryTupleAndValue) {
  auto sharded = ShardedDatabase::Partition(dataset_->db(), 4);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded->num_shards(), 4u);
  EXPECT_EQ(sharded->TotalTuples(), dataset_->db().TotalTuples());

  for (const std::string& name : sharded->RelationNames()) {
    auto view = sharded->GetView(name);
    ASSERT_TRUE(view.ok());
    auto source = dataset_->db().GetRelation(name);
    ASSERT_TRUE(source.ok());
    ASSERT_EQ((*view)->num_tuples(), (*source)->num_tuples());
    // Every global tid round-trips through its owner shard with the same
    // column values.
    for (Tid tid = 0; tid < (*source)->num_tuples(); ++tid) {
      size_t owner = (*view)->OwnerOf(tid);
      Tid local = (*view)->LocalOf(tid);
      EXPECT_EQ((*view)->GlobalOf(owner, local), tid);
      for (size_t a = 0; a < (*source)->schema().num_attributes(); ++a) {
        EXPECT_TRUE((*view)->ColumnValue(tid, a) ==
                    (*source)->ColumnValue(tid, a))
            << name << " tid " << tid << " attr " << a;
      }
    }
  }
}

TEST_F(ShardedDatabaseTest, EveryShardHoldsEveryRelation) {
  auto sharded = ShardedDatabase::Partition(dataset_->db(), 8);
  ASSERT_TRUE(sharded.ok());
  // Even a shard that drew zero tuples of some relation must have created
  // it: the per-shard inverted indexes and catalogs must enumerate the
  // same sorted relation set or merge order drifts.
  for (size_t s = 0; s < 8; ++s) {
    for (const std::string& name : sharded->RelationNames()) {
      EXPECT_TRUE(sharded->shard(s).GetRelation(name).ok())
          << "shard " << s << " relation " << name;
    }
  }
}

TEST_F(ShardedDatabaseTest, LookupEqualsMatchesUnpartitionedSource) {
  auto sharded = ShardedDatabase::Partition(dataset_->db(), 4);
  ASSERT_TRUE(sharded.ok());
  auto view = sharded->GetView("MOVIE");
  ASSERT_TRUE(view.ok());
  auto source = dataset_->db().GetRelation("MOVIE");
  ASSERT_TRUE(source.ok());
  // "did" is a many-to-one join key (indexed), so lookups return multi-tid
  // lists whose global order must match the unpartitioned scan/probe.
  auto did_index = (*source)->schema().AttributeIndex("did");
  ASSERT_TRUE(did_index.ok());
  for (Tid probe = 0; probe < 40; ++probe) {
    Value key = (*source)->ColumnValue(probe, *did_index);
    auto expect = (*source)->LookupEquals("did", key);
    auto got = (*view)->LookupEquals("did", key);
    ASSERT_TRUE(expect.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *expect) << "probe " << probe;
  }
}

TEST_F(ShardedDatabaseTest, InsertRoutesToOwnerAndBumpsOnlyItsEpoch) {
  auto sharded = ShardedDatabase::Partition(dataset_->db(), 4);
  ASSERT_TRUE(sharded.ok());
  auto view = sharded->GetView("GENRE");
  ASSERT_TRUE(view.ok());
  Tid next = (*view)->num_tuples();
  size_t owner = sharded->ShardOf("GENRE", next);

  std::vector<uint64_t> before;
  for (size_t s = 0; s < 4; ++s) before.push_back(sharded->shard_epoch(s));

  auto inserted = sharded->Insert("GENRE", FreshGenreTuple(1000000));
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(*inserted, next);
  EXPECT_EQ((*view)->num_tuples(), next + 1);
  EXPECT_EQ((*view)->OwnerOf(next), owner);
  EXPECT_TRUE((*view)->ColumnValue(next, 2) == Value("shardcore"));

  for (size_t s = 0; s < 4; ++s) {
    if (s == owner) {
      EXPECT_GT(sharded->shard_epoch(s), before[s]) << "owner " << s;
    } else {
      EXPECT_EQ(sharded->shard_epoch(s), before[s]) << "shard " << s;
    }
  }
}

TEST_F(ShardedDatabaseTest, InsertRejectsCrossShardPrimaryKeyDuplicate) {
  auto sharded = ShardedDatabase::Partition(dataset_->db(), 4);
  ASSERT_TRUE(sharded.ok());
  auto source = dataset_->db().GetRelation("GENRE");
  ASSERT_TRUE(source.ok());
  // Re-insert an existing primary key: the owner of the NEW tid is very
  // likely a different shard than the original row's, so uniqueness must
  // be enforced across shards, not per shard.
  Tuple dup = FreshGenreTuple(0);
  dup[0] = (*source)->ColumnValue(0, 0);
  auto inserted = sharded->Insert("GENRE", std::move(dup));
  EXPECT_FALSE(inserted.ok());
}

// ---------------------------------------------------------------------------
// The determinism suite: sharded answers are byte-identical to the single
// engine under every stop/fault/strategy combination.

struct RunDigest {
  std::string answer_json;
  std::string degradation;
  std::vector<std::string> executed_edges;
  std::vector<std::string> truncated;
  StopReason stop = StopReason::kNone;
  StopReason ctx_stop = StopReason::kNone;
  std::string db_bytes;
};

class ShardDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 120;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
    auto engine = PrecisEngine::Create(&dataset_->db(), &dataset_->graph());
    ASSERT_TRUE(engine.ok());
    engine_ = std::make_unique<PrecisEngine>(std::move(*engine));
    for (size_t n : {1u, 2u, 4u, 8u}) {
      auto sharded =
          ShardedPrecisEngine::Create(dataset_->db(), &dataset_->graph(), n);
      ASSERT_TRUE(sharded.ok());
      sharded_.push_back(std::move(*sharded));
    }
  }

  /// One configured run against either engine; `sharded == nullptr` runs
  /// the single-engine reference.
  RunDigest Run(const ShardedPrecisEngine* sharded,
                const std::vector<std::string>& tokens, SubsetStrategy strategy,
                FaultInjector* injector, uint64_t fault_seed, uint64_t budget,
                bool expired_deadline) {
    auto degree = MinPathWeight(0.8);
    auto cardinality = MaxTuplesPerRelation(4);
    DbGenOptions options;
    options.strategy = strategy;

    ExecutionContext ctx;
    if (budget > 0) ctx.SetAccessBudget(budget);
    if (expired_deadline) ctx.SetDeadlineAfter(1e-9);
    if (injector != nullptr) {
      injector->Reseed(fault_seed);  // identical fault sequence per run
      ctx.SetFaultInjector(injector);
      RetryPolicy policy;
      policy.initial_backoff_ns = 0;
      ctx.set_retry_policy(policy);
    }

    auto answer = sharded != nullptr
                      ? sharded->Answer(PrecisQuery{tokens}, *degree,
                                        *cardinality, options, &ctx)
                      : engine_->Answer(PrecisQuery{tokens}, *degree,
                                        *cardinality, options, &ctx);
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
    RunDigest digest;
    if (!answer.ok()) return digest;
    digest.answer_json = AnswerToJson(*answer);
    digest.degradation = answer->report.degradation.ToString();
    digest.executed_edges = answer->report.executed_edges;
    digest.truncated = answer->report.truncated_relations;
    digest.stop = answer->report.stop_reason;
    digest.ctx_stop = ctx.stop_reason();
    std::ostringstream os;
    EXPECT_TRUE(SaveDatabase(answer->database, &os).ok());
    digest.db_bytes = os.str();
    return digest;
  }

  void ExpectIdentical(const RunDigest& expect, const RunDigest& got,
                       const std::string& label) {
    EXPECT_EQ(got.answer_json, expect.answer_json) << label;
    EXPECT_EQ(got.degradation, expect.degradation) << label;
    EXPECT_EQ(got.executed_edges, expect.executed_edges) << label;
    EXPECT_EQ(got.truncated, expect.truncated) << label;
    EXPECT_EQ(got.stop, expect.stop) << label;
    EXPECT_EQ(got.ctx_stop, expect.ctx_stop) << label;
    EXPECT_EQ(got.db_bytes, expect.db_bytes) << label;
  }

  std::unique_ptr<MoviesDataset> dataset_;
  std::unique_ptr<PrecisEngine> engine_;
  std::vector<std::unique_ptr<ShardedPrecisEngine>> sharded_;
};

TEST_F(ShardDeterminismTest, CleanRunsByteIdenticalAcrossShardCounts) {
  const std::vector<std::vector<std::string>> queries = {
      {"Woody Allen"}, {"Comedy"}, {"Woody Allen", "Drama"}};
  for (SubsetStrategy strategy :
       {SubsetStrategy::kAuto, SubsetStrategy::kNaiveQ,
        SubsetStrategy::kRoundRobin}) {
    for (const auto& tokens : queries) {
      RunDigest expect = Run(nullptr, tokens, strategy, nullptr, 0, 0, false);
      for (const auto& sharded : sharded_) {
        RunDigest got =
            Run(sharded.get(), tokens, strategy, nullptr, 0, 0, false);
        ExpectIdentical(expect, got,
                        "shards=" + std::to_string(sharded->num_shards()) +
                            " strategy=" +
                            std::to_string(static_cast<int>(strategy)));
      }
    }
  }
}

TEST_F(ShardDeterminismTest, FaultInjectedRunsByteIdentical) {
  FaultInjector injector(1);
  injector.SetAll(FaultSchedule::Probability(0.1));
  for (uint64_t seed : {1u, 7u, 23u}) {
    for (SubsetStrategy strategy :
         {SubsetStrategy::kNaiveQ, SubsetStrategy::kRoundRobin}) {
      RunDigest expect =
          Run(nullptr, {"Woody Allen"}, strategy, &injector, seed, 0, false);
      for (const auto& sharded : sharded_) {
        RunDigest got = Run(sharded.get(), {"Woody Allen"}, strategy,
                            &injector, seed, 0, false);
        ExpectIdentical(expect, got,
                        "faults seed=" + std::to_string(seed) + " shards=" +
                            std::to_string(sharded->num_shards()));
      }
    }
  }
}

TEST_F(ShardDeterminismTest, BudgetStopsByteIdentical) {
  for (uint64_t budget : {1u, 5u, 25u, 100u}) {
    RunDigest expect = Run(nullptr, {"Woody Allen"},
                           SubsetStrategy::kRoundRobin, nullptr, 0, budget,
                           false);
    for (const auto& sharded : sharded_) {
      RunDigest got = Run(sharded.get(), {"Woody Allen"},
                          SubsetStrategy::kRoundRobin, nullptr, 0, budget,
                          false);
      ExpectIdentical(expect, got,
                      "budget=" + std::to_string(budget) + " shards=" +
                          std::to_string(sharded->num_shards()));
    }
    if (budget == 1) {
      EXPECT_EQ(expect.ctx_stop, StopReason::kAccessBudgetExhausted);
    }
  }
}

TEST_F(ShardDeterminismTest, ExpiredDeadlineStopsByteIdentical) {
  RunDigest expect = Run(nullptr, {"Woody Allen"}, SubsetStrategy::kAuto,
                         nullptr, 0, 0, true);
  EXPECT_EQ(expect.ctx_stop, StopReason::kDeadlineExceeded);
  for (const auto& sharded : sharded_) {
    RunDigest got = Run(sharded.get(), {"Woody Allen"}, SubsetStrategy::kAuto,
                        nullptr, 0, 0, true);
    ExpectIdentical(expect, got,
                    "deadline shards=" +
                        std::to_string(sharded->num_shards()));
  }
}

TEST_F(ShardDeterminismTest, FaultAndBudgetCombinedByteIdentical) {
  FaultInjector injector(9);
  injector.SetAll(FaultSchedule::Probability(0.05));
  RunDigest expect = Run(nullptr, {"Comedy"}, SubsetStrategy::kRoundRobin,
                         &injector, 9, 40, false);
  for (const auto& sharded : sharded_) {
    RunDigest got = Run(sharded.get(), {"Comedy"},
                        SubsetStrategy::kRoundRobin, &injector, 9, 40, false);
    ExpectIdentical(expect, got,
                    "faults+budget shards=" +
                        std::to_string(sharded->num_shards()));
  }
}

// ---------------------------------------------------------------------------
// Shard-aware caching.

class ShardedCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 120;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
    auto sharded =
        ShardedPrecisEngine::Create(dataset_->db(), &dataset_->graph(), 4);
    ASSERT_TRUE(sharded.ok());
    engine_ = std::move(*sharded);
    engine_->set_caches_enabled(true);
  }

  std::shared_ptr<const PrecisAnswer> Ask(const std::string& token) {
    auto degree = MinPathWeight(0.9);
    auto cardinality = MaxTuplesPerRelation(3);
    auto answer =
        engine_->AnswerShared(PrecisQuery{{token}}, *degree, *cardinality);
    EXPECT_TRUE(answer.ok());
    return answer.ok() ? *answer : nullptr;
  }

  /// A fresh GENRE tuple; `gid` must be globally unused.
  Tuple FreshGenreTuple(int64_t gid) {
    auto view = engine_->database().GetView("GENRE");
    Value mid = (*view)->ColumnValue(0, 1);  // GENRE(gid*, mid, genre)
    return Tuple{Value(gid), mid, Value("fresh-genre")};
  }

  std::unique_ptr<MoviesDataset> dataset_;
  std::unique_ptr<ShardedPrecisEngine> engine_;
};

TEST_F(ShardedCacheTest, RepeatQueryHitsFullAnswerCache) {
  auto first = Ask("Woody Allen");
  ASSERT_NE(first, nullptr);
  auto second = Ask("Woody Allen");
  ASSERT_NE(second, nullptr);
  auto third = Ask("Woody Allen");
  ASSERT_NE(third, nullptr);
  EXPECT_EQ(engine_->answer_cache_stats().hits, 2u);
  // Hits hand back the SAME stored immutable answer, not a copy.
  EXPECT_EQ(second.get(), third.get());
  EXPECT_EQ(AnswerToJson(*first), AnswerToJson(*second));
}

TEST_F(ShardedCacheTest, SingleShardInsertInvalidatesOnlyThatShardsPartials) {
  ASSERT_NE(Ask("Woody Allen"), nullptr);
  ASSERT_NE(Ask("Woody Allen"), nullptr);  // warm: full-answer hit

  // Route one insert; exactly one shard's epoch moves.
  auto view = engine_->database().GetView("GENRE");
  ASSERT_TRUE(view.ok());
  Tid next = (*view)->num_tuples();
  size_t owner = engine_->database().ShardOf("GENRE", next);
  ASSERT_TRUE(engine_->Insert("GENRE", FreshGenreTuple(2000000)).ok());

  std::vector<LruCacheStats> before;
  for (size_t s = 0; s < engine_->num_shards(); ++s) {
    before.push_back(engine_->shard_partial_cache_stats(s));
  }

  // The full answer must rebuild (its key carries every shard's epoch)...
  uint64_t full_hits = engine_->answer_cache_stats().hits;
  ASSERT_NE(Ask("Woody Allen"), nullptr);
  EXPECT_EQ(engine_->answer_cache_stats().hits, full_hits);

  // ...but during that rebuild only the mutated shard's partial entries
  // went stale: every OTHER shard's token lookup hits its partial cache.
  for (size_t s = 0; s < engine_->num_shards(); ++s) {
    LruCacheStats after = engine_->shard_partial_cache_stats(s);
    if (s == owner) {
      EXPECT_EQ(after.hits, before[s].hits) << "mutated shard " << s;
      EXPECT_GT(after.misses, before[s].misses) << "mutated shard " << s;
    } else {
      EXPECT_GT(after.hits, before[s].hits) << "untouched shard " << s;
      EXPECT_EQ(after.misses, before[s].misses) << "untouched shard " << s;
    }
  }
}

TEST_F(ShardedCacheTest, InsertKeepsAnswersIdenticalToSingleEngine) {
  // Warm every cache level, then mutate: post-insert answers must still be
  // byte-identical to a single engine over an identically mutated source
  // (both engines index at Create; later inserts are not re-indexed).
  ASSERT_NE(Ask("Woody Allen"), nullptr);

  auto single = PrecisEngine::Create(&dataset_->db(), &dataset_->graph());
  ASSERT_TRUE(single.ok());
  auto genre = dataset_->db().GetRelation("GENRE");
  ASSERT_TRUE(genre.ok());
  auto source_inserted = (*genre)->Insert(FreshGenreTuple(3000000));
  ASSERT_TRUE(source_inserted.ok());
  auto sharded_inserted = engine_->Insert("GENRE", FreshGenreTuple(3000000));
  ASSERT_TRUE(sharded_inserted.ok());
  EXPECT_EQ(*sharded_inserted, *source_inserted);

  auto degree = MinPathWeight(0.9);
  auto cardinality = MaxTuplesPerRelation(3);
  auto expect =
      single->Answer(PrecisQuery{{"Woody Allen"}}, *degree, *cardinality);
  auto got =
      engine_->Answer(PrecisQuery{{"Woody Allen"}}, *degree, *cardinality);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(AnswerToJson(*got), AnswerToJson(*expect));
}

TEST_F(ShardedCacheTest, BodyCacheMemoizesRendersAndInvalidatesOnInsert) {
  auto degree = MinPathWeight(0.9);
  auto cardinality = MaxTuplesPerRelation(3);
  auto ask = [&] {
    auto rendered = engine_->AnswerSharedRendered(PrecisQuery{{"Woody Allen"}},
                                                  *degree, *cardinality);
    EXPECT_TRUE(rendered.ok());
    return rendered.ok() ? *rendered : RenderedAnswer{};
  };
  auto first = ask();
  ASSERT_NE(first.body_json, nullptr);
  EXPECT_EQ(*first.body_json, AnswerToJson(*first.answer));
  // A repeat serves the very same memoized string (zero serialization).
  auto second = ask();
  ASSERT_NE(second.body_json, nullptr);
  EXPECT_EQ(first.body_json.get(), second.body_json.get());
  EXPECT_EQ(engine_->body_cache_stats().hits, 1u);

  // One insert moves one shard's epoch — the shard-aware key no longer
  // matches, so the body is re-rendered from the rebuilt answer.
  ASSERT_TRUE(engine_->Insert("GENRE", FreshGenreTuple(4000000)).ok());
  auto after = ask();
  ASSERT_NE(after.body_json, nullptr);
  EXPECT_NE(after.body_json.get(), first.body_json.get());
  EXPECT_EQ(*after.body_json, AnswerToJson(*after.answer));
}

// ---------------------------------------------------------------------------
// ShardedPrecisService.

TEST(ShardedServiceTest, AnswersMatchSingleEngineAndMetricsFillShards) {
  MoviesConfig config;
  config.num_movies = 120;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto single = PrecisEngine::Create(&ds->db(), &ds->graph());
  ASSERT_TRUE(single.ok());
  auto sharded = ShardedPrecisEngine::Create(ds->db(), &ds->graph(), 4);
  ASSERT_TRUE(sharded.ok());

  PrecisService::Options options;
  options.num_workers = 2;
  auto service = ShardedPrecisService::Create(sharded->get(), options);
  ASSERT_TRUE(service.ok());

  auto degree = MinPathWeight(0.8);
  auto cardinality = MaxTuplesPerRelation(5);
  auto reference =
      single->Answer(PrecisQuery{{"Woody Allen"}}, *degree, *cardinality);
  ASSERT_TRUE(reference.ok());
  const std::string expected = AnswerToJson(*reference);

  for (int i = 0; i < 6; ++i) {
    ServiceRequest request;
    request.query = PrecisQuery{{"Woody Allen"}};
    request.min_path_weight = 0.8;
    request.tuples_per_relation = 5;
    ServiceResponse response = (*service)->Execute(std::move(request));
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_NE(response.answer, nullptr);
    EXPECT_EQ(AnswerToJson(*response.answer), expected);
  }

  PrecisService::Metrics metrics = (*service)->metrics();
  EXPECT_EQ(metrics.queries_served, 6u);
  ASSERT_EQ(metrics.shards.size(), 4u);
  uint64_t total_subqueries = 0;
  uint64_t total_tuples = 0;
  for (const auto& shard : metrics.shards) {
    total_subqueries += shard.subqueries;
    total_tuples += shard.tuples;
  }
  EXPECT_GT(total_subqueries, 0u);
  EXPECT_EQ(total_tuples, ds->db().TotalTuples());
  (*service)->Shutdown();
}

TEST(ShardedServiceTest, SingleShardDelegatesAndStillServes) {
  MoviesConfig config;
  config.num_movies = 80;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto sharded = ShardedPrecisEngine::Create(ds->db(), &ds->graph(), 1);
  ASSERT_TRUE(sharded.ok());
  auto service = ShardedPrecisService::Create(sharded->get());
  ASSERT_TRUE(service.ok());

  ServiceRequest request;
  request.query = PrecisQuery{{"Woody Allen"}};
  request.min_path_weight = 0.9;
  request.tuples_per_relation = 3;
  ServiceResponse response = (*service)->Execute(std::move(request));
  ASSERT_TRUE(response.status.ok());
  ASSERT_NE(response.answer, nullptr);
  EXPECT_FALSE(response.answer->empty());
  PrecisService::Metrics metrics = (*service)->metrics();
  ASSERT_EQ(metrics.shards.size(), 1u);
  EXPECT_EQ(metrics.shards[0].tuples, ds->db().TotalTuples());
  (*service)->Shutdown();
}

}  // namespace
}  // namespace precis
