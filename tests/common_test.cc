#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace precis {
namespace {

// --- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryMethodsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::ConstraintViolation("x").IsConstraintViolation());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing").message(), "missing");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad weight");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad weight");
}

TEST(StatusTest, ErrorsAreNotOk) {
  EXPECT_FALSE(Status::Internal("x").ok());
  EXPECT_FALSE(Status::NotFound("x").IsInvalidArgument());
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int v) {
  PRECIS_RETURN_NOT_OK(FailIfNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsOutOfRange());
}

// --- Result ---

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrReturnsAlternativeOnError) {
  Result<int> err(Status::NotFound("nope"));
  EXPECT_EQ(std::move(err).ValueOr(7), 7);
  Result<int> ok(3);
  EXPECT_EQ(std::move(ok).ValueOr(7), 3);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

// --- Rng ---

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(2);
  EXPECT_EQ(rng.Uniform(5, 5), 5);
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform(0, 1000000) == b.Uniform(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(5);
  std::vector<size_t> picks = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> distinct(picks.begin(), picks.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (size_t p : picks) EXPECT_LT(p, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(5);
  std::vector<size_t> picks = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> distinct(picks.begin(), picks.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(ZipfTest, UniformWhenSkewZero) {
  ZipfSampler zipf(4, 0.0);
  Rng rng(17);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 600);
  }
}

TEST(ZipfTest, SkewFavoursLowRanks) {
  ZipfSampler zipf(10, 1.2);
  Rng rng(17);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(ZipfTest, SingleRank) {
  ZipfSampler zipf(1, 2.0);
  Rng rng(1);
  EXPECT_EQ(zipf.Sample(&rng), 0u);
}

// --- string_util ---

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("Woody ALLEN 42"), "woody allen 42");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\n x\n"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"x"}, ", "), "x");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("precis", "pre"));
  EXPECT_FALSE(StartsWith("pre", "precis"));
  EXPECT_TRUE(EndsWith("precis", "cis"));
  EXPECT_FALSE(EndsWith("cis", "precis"));
}

}  // namespace
}  // namespace precis
