#include <gtest/gtest.h>

#include <memory>
#include <stack>

#include "common/execution_context.h"
#include "common/fault_injection.h"
#include "datagen/movies_dataset.h"
#include "precis/engine.h"
#include "precis/json_export.h"

namespace precis {
namespace {

/// Structural sanity: braces/brackets balance and strings close (a real
/// parser is out of scope; this catches emitter bracket bugs).
bool BalancedJson(const std::string& s) {
  std::stack<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push(c);
        break;
      case '}':
        if (stack.empty() || stack.top() != '{') return false;
        stack.pop();
        break;
      case ']':
        if (stack.empty() || stack.top() != '[') return false;
        stack.pop();
        break;
      default:
        break;
    }
  }
  return stack.empty() && !in_string;
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(ValueToJsonTest, AllScalarKinds) {
  EXPECT_EQ(ValueToJson(Value::Null()), "null");
  EXPECT_EQ(ValueToJson(Value(int64_t{-7})), "-7");
  EXPECT_EQ(ValueToJson(Value("x\"y")), "\"x\\\"y\"");
  EXPECT_EQ(ValueToJson(Value(0.5)), "0.5");
}

TEST(DatabaseToJsonTest, StructureAndBalance) {
  Database db("demo");
  RelationSchema r("R", {{"id", DataType::kInt64},
                         {"s", DataType::kString}});
  ASSERT_TRUE(r.SetPrimaryKey("id").ok());
  ASSERT_TRUE(db.CreateRelation(std::move(r)).ok());
  auto rel = db.GetRelation("R");
  ASSERT_TRUE((*rel)->Insert({int64_t{1}, "hello"}).ok());
  ASSERT_TRUE((*rel)->Insert({int64_t{2}, Value::Null()}).ok());

  std::string json = DatabaseToJson(db);
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("\"name\":\"demo\""), std::string::npos);
  EXPECT_NE(json.find("\"primary_key\":true"), std::string::npos);
  EXPECT_NE(json.find("[1,\"hello\"]"), std::string::npos);
  EXPECT_NE(json.find("[2,null]"), std::string::npos);
}

TEST(AnswerToJsonTest, FullAnswerSerializes) {
  MoviesConfig config;
  config.num_movies = 10;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto engine = PrecisEngine::Create(&ds->db(), &ds->graph());
  ASSERT_TRUE(engine.ok());
  auto answer = engine->Answer(PrecisQuery{{"Woody Allen"}},
                               *MinPathWeight(0.9), *MaxTuplesPerRelation(3));
  ASSERT_TRUE(answer.ok());

  std::string json = AnswerToJson(*answer);
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("\"token\":\"Woody Allen\""), std::string::npos);
  EXPECT_NE(json.find("\"relation\":\"DIRECTOR\""), std::string::npos);
  EXPECT_NE(json.find("\"token_relation\":true"), std::string::npos);
  EXPECT_NE(json.find("\"in_degree\":2"), std::string::npos);  // MOVIE
  EXPECT_NE(json.find("\"from\":\"DIRECTOR\""), std::string::npos);
  EXPECT_NE(json.find("\"Match Point\""), std::string::npos);
  EXPECT_NE(json.find("\"executed_edges\""), std::string::npos);
}

TEST(AnswerToJsonTest, CleanAnswerReportsNoDegradation) {
  MoviesConfig config;
  config.num_movies = 10;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto engine = PrecisEngine::Create(&ds->db(), &ds->graph());
  ASSERT_TRUE(engine.ok());
  auto answer = engine->Answer(PrecisQuery{{"Woody Allen"}},
                               *MinPathWeight(0.9), *MaxTuplesPerRelation(3));
  ASSERT_TRUE(answer.ok());
  std::string json = AnswerToJson(*answer);
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("\"stop_reason\":\"none\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_tainted\":false"), std::string::npos);
  EXPECT_NE(json.find("\"degradation\":[]"), std::string::npos);
}

TEST(AnswerToJsonTest, BudgetCutAnswerReportsStopReason) {
  MoviesConfig config;
  config.num_movies = 20;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto engine = PrecisEngine::Create(&ds->db(), &ds->graph());
  ASSERT_TRUE(engine.ok());
  ExecutionContext ctx;
  ctx.SetAccessBudget(1);  // starves generation almost immediately
  auto answer =
      engine->Answer(PrecisQuery{{"Woody Allen"}}, *MinPathWeight(0.5),
                     *MaxTuplesPerRelation(10), DbGenOptions(), &ctx);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->report.stop_reason, StopReason::kAccessBudgetExhausted);
  std::string json = AnswerToJson(*answer);
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("\"stop_reason\":\"access budget exhausted\""),
            std::string::npos);
}

TEST(AnswerToJsonTest, FaultTaintedAnswerReportsPerRelationLosses) {
  MoviesConfig config;
  config.num_movies = 30;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto engine = PrecisEngine::Create(&ds->db(), &ds->graph());
  ASSERT_TRUE(engine.ok());

  FaultInjector injector(11);
  injector.SetSchedule(FaultSite::kTupleFetch, FaultSchedule::EveryNth(2));
  ExecutionContext ctx;
  ctx.SetFaultInjector(&injector);
  RetryPolicy policy;
  policy.max_attempts = 1;  // first failure drops the tuple: losses for sure
  policy.initial_backoff_ns = 0;
  ctx.set_retry_policy(policy);

  auto answer =
      engine->Answer(PrecisQuery{{"Woody Allen"}}, *MinPathWeight(0.5),
                     *MaxTuplesPerRelation(10), DbGenOptions(), &ctx);
  ASSERT_TRUE(answer.ok());
  ASSERT_TRUE(answer->report.fault_tainted);
  ASSERT_TRUE(answer->report.degradation.degraded())
      << "every-2nd tuple fetch with no retries must cost something";

  std::string json = AnswerToJson(*answer);
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("\"fault_tainted\":true"), std::string::npos);
  // Per-relation entries carry the loss accounting fields.
  EXPECT_NE(json.find("\"degradation\":[{\"relation\":\""),
            std::string::npos);
  EXPECT_NE(json.find("\"dropped_tuples\":"), std::string::npos);
  EXPECT_NE(json.find("\"failed_lookups\":"), std::string::npos);
  EXPECT_NE(json.find("\"retries\":"), std::string::npos);
}

TEST(AnswerToJsonTest, EmptyAnswerSerializes) {
  MoviesConfig config;
  config.num_movies = 5;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto engine = PrecisEngine::Create(&ds->db(), &ds->graph());
  ASSERT_TRUE(engine.ok());
  auto answer = engine->Answer(PrecisQuery{{"zzz-nothing"}},
                               *MinPathWeight(0.9), *MaxTuplesPerRelation(3));
  ASSERT_TRUE(answer.ok());
  std::string json = AnswerToJson(*answer);
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("\"occurrences\":[]"), std::string::npos);
}

}  // namespace
}  // namespace precis
