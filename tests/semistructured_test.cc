#include <gtest/gtest.h>

#include <memory>

#include "precis/engine.h"
#include "semistructured/document.h"
#include "semistructured/shredder.h"

namespace precis {
namespace {

constexpr const char* kCleanLibraryDoc = R"(
<!-- a small data-centric document -->
<library name="City Library">
  <section genre="fiction">
    <book isbn="111" year="1961">
      <title>Catch-22</title>
      <author>Joseph Heller</author>
    </book>
    <book isbn="222" year="1979">
      <title>Invisible Cities</title>
      <author>Italo Calvino</author>
    </book>
  </section>
  <section genre="science">
    <book isbn="333" year="1988">
      <title>A Brief History of Time</title>
      <author>Stephen Hawking</author>
    </book>
  </section>
</library>
)";

// --- Parser ---

TEST(DocumentParserTest, ParsesNestedStructure) {
  auto doc = ParseDocument(kCleanLibraryDoc);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->tag, "library");
  EXPECT_EQ((*doc)->attributes.at("name"), "City Library");
  ASSERT_EQ((*doc)->children.size(), 2u);
  EXPECT_EQ((*doc)->children[0]->tag, "section");
  EXPECT_EQ((*doc)->children[0]->attributes.at("genre"), "fiction");
  EXPECT_EQ((*doc)->children[0]->children.size(), 2u);
  const DocumentNode& book = *(*doc)->children[0]->children[0];
  EXPECT_EQ(book.attributes.at("isbn"), "111");
  EXPECT_EQ(book.children[0]->text, "Catch-22");
  EXPECT_EQ((*doc)->SubtreeSize(), 1 + 2 + 3 + 6u);
}

TEST(DocumentParserTest, SelfClosingAndEntities) {
  auto doc = ParseDocument(
      "<a x=\"1 &amp; 2\"> text &lt;tag&gt; <b/> more </a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->attributes.at("x"), "1 & 2");
  EXPECT_EQ((*doc)->text, "text <tag>  more");
  ASSERT_EQ((*doc)->children.size(), 1u);
  EXPECT_TRUE((*doc)->children[0]->children.empty());
}

TEST(DocumentParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseDocument("").ok());
  EXPECT_FALSE(ParseDocument("plain text").ok());
  EXPECT_FALSE(ParseDocument("<a>").ok());                  // unterminated
  EXPECT_FALSE(ParseDocument("<a></b>").ok());              // mismatch
  EXPECT_FALSE(ParseDocument("<a x=1></a>").ok());          // unquoted attr
  EXPECT_FALSE(ParseDocument("<a x=\"1\" x=\"2\"></a>").ok());  // dup attr
  EXPECT_FALSE(ParseDocument("<a>&apos;</a>").ok());        // bad entity
  EXPECT_FALSE(ParseDocument("<a/><b/>").ok());             // two roots
}

TEST(DocumentParserTest, ToXmlRoundTrips) {
  auto doc = ParseDocument(kCleanLibraryDoc);
  ASSERT_TRUE(doc.ok());
  auto again = ParseDocument((*doc)->ToXml());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ((*again)->ToXml(), (*doc)->ToXml());
}

// --- Shredder ---

class ShredderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = ParseDocument(kCleanLibraryDoc);
    ASSERT_TRUE(doc.ok());
    doc_ = std::move(*doc);
    auto shredded = ShreddedDocument::Shred(*doc_);
    ASSERT_TRUE(shredded.ok()) << shredded.status();
    shredded_ = std::make_unique<ShreddedDocument>(std::move(*shredded));
  }

  std::unique_ptr<DocumentNode> doc_;
  std::unique_ptr<ShreddedDocument> shredded_;
};

TEST_F(ShredderTest, OneRelationPerTag) {
  const Database& db = shredded_->db();
  EXPECT_EQ(db.RelationNames(),
            (std::vector<std::string>{"author", "book", "library", "section",
                                      "title"}));
  EXPECT_EQ((*db.GetRelation("book"))->num_tuples(), 3u);
  EXPECT_EQ((*db.GetRelation("section"))->num_tuples(), 2u);
  EXPECT_EQ((*db.GetRelation("library"))->num_tuples(), 1u);
}

TEST_F(ShredderTest, ColumnsReflectAttributesAndText) {
  const RelationSchema& book =
      (*shredded_->db().GetRelation("book"))->schema();
  EXPECT_TRUE(book.HasAttribute("id"));
  EXPECT_TRUE(book.HasAttribute("parent"));
  EXPECT_TRUE(book.HasAttribute("isbn"));
  EXPECT_TRUE(book.HasAttribute("year"));
  EXPECT_FALSE(book.HasAttribute("content"));  // books carry no direct text
  const RelationSchema& title =
      (*shredded_->db().GetRelation("title"))->schema();
  EXPECT_TRUE(title.HasAttribute("content"));
}

TEST_F(ShredderTest, ParentForeignKeysHold) {
  EXPECT_TRUE(shredded_->db().ValidateForeignKeys().ok());
  EXPECT_EQ(shredded_->db().foreign_keys().size(), 4u);
}

TEST_F(ShredderTest, GraphEdgesFollowContainment) {
  const SchemaGraph& g = shredded_->graph();
  EXPECT_DOUBLE_EQ(*g.JoinWeight("book", "section"), 1.0);
  EXPECT_DOUBLE_EQ(*g.JoinWeight("section", "book"), 0.8);
  EXPECT_DOUBLE_EQ(*g.JoinWeight("title", "book"), 1.0);
  EXPECT_TRUE(g.JoinWeight("library", "book").status().IsNotFound());
}

TEST_F(ShredderTest, RejectsRecursiveAndMultiParentTags) {
  auto recursive = ParseDocument("<a><a/></a>");
  ASSERT_TRUE(recursive.ok());
  EXPECT_TRUE(ShreddedDocument::Shred(**recursive)
                  .status()
                  .IsInvalidArgument());

  auto multi = ParseDocument("<r><a><x/></a><b><x/></b></r>");
  ASSERT_TRUE(multi.ok());
  EXPECT_TRUE(
      ShreddedDocument::Shred(**multi).status().IsInvalidArgument());
}

TEST_F(ShredderTest, RejectsReservedAttributeNames) {
  auto doc = ParseDocument("<r><a id=\"7\"/></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(ShreddedDocument::Shred(**doc).status().IsInvalidArgument());
}

TEST_F(ShredderTest, PrecisQueryOverShreddedDocument) {
  auto engine = PrecisEngine::Create(&shredded_->db(), &shredded_->graph());
  ASSERT_TRUE(engine.ok());
  auto answer = engine->Answer(PrecisQuery{{"Italo Calvino"}},
                               *MinPathWeight(0.5),
                               *MaxTuplesPerRelation(5));
  ASSERT_TRUE(answer.ok());
  ASSERT_FALSE(answer->empty());
  // The précis of an author reaches its book (context) and onwards to the
  // section and title: a sub-database carved from the document.
  EXPECT_TRUE(answer->schema.ContainsRelation("author"));
  EXPECT_TRUE(answer->schema.ContainsRelation("book"));
  EXPECT_TRUE(answer->schema.ContainsRelation("section"));
  EXPECT_TRUE(answer->database.ValidateForeignKeys().ok());
  auto book = answer->database.GetRelation("book");
  ASSERT_TRUE(book.ok());
  ASSERT_EQ((*book)->num_tuples(), 1u);
  auto isbn = (*book)->schema().AttributeIndex("isbn");
  ASSERT_TRUE(isbn.ok());
  EXPECT_EQ((*book)->tuple(0)[*isbn].AsString(), "222");
}

TEST_F(ShredderTest, WeightOptionsValidated) {
  ShredOptions bad;
  bad.parent_to_child_weight = 1.5;
  EXPECT_TRUE(
      ShreddedDocument::Shred(*doc_, bad).status().IsInvalidArgument());
}

}  // namespace
}  // namespace precis
