#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

namespace precis {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  struct Probe {
    void* p;
    size_t bytes;
  };
  std::vector<Probe> probes;
  for (size_t align : {size_t(1), size_t(8), size_t(16), size_t(64)}) {
    for (size_t bytes : {size_t(1), size_t(7), size_t(24), size_t(1000)}) {
      void* p = arena.Allocate(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "align=" << align << " bytes=" << bytes;
      // Touch every byte: ASan will fault on overlap or out-of-slab.
      std::memset(p, 0xAB, bytes);
      probes.push_back({p, bytes});
    }
  }
  for (size_t i = 0; i < probes.size(); ++i) {
    for (size_t j = i + 1; j < probes.size(); ++j) {
      uintptr_t a = reinterpret_cast<uintptr_t>(probes[i].p);
      uintptr_t b = reinterpret_cast<uintptr_t>(probes[j].p);
      EXPECT_TRUE(a + probes[i].bytes <= b || b + probes[j].bytes <= a)
          << "allocations " << i << " and " << j << " overlap";
    }
  }
}

TEST(ArenaTest, ZeroByteRequestsReturnDistinctPointers) {
  Arena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_NE(a, b);
}

TEST(ArenaTest, GrowsNewSlabsAndTakesOversizeRequests) {
  Arena arena(/*slab_bytes=*/1024);
  ArenaStats before = arena.stats();
  EXPECT_EQ(before.slabs, 0u);

  // Fill past the first slab.
  for (int i = 0; i < 8; ++i) arena.Allocate(512);
  ArenaStats grown = arena.stats();
  EXPECT_GE(grown.slabs, 2u);
  EXPECT_GE(grown.used_bytes, 8u * 512u);
  EXPECT_GE(grown.reserved_bytes, grown.used_bytes);

  // A request bigger than the slab size gets its own slab, not a crash.
  char* big = static_cast<char*>(arena.Allocate(64 * 1024));
  std::memset(big, 0xCD, 64 * 1024);
  EXPECT_GE(arena.stats().reserved_bytes, grown.reserved_bytes + 64u * 1024u);
}

TEST(ArenaTest, ResetFreesWholesaleButKeepsPeak) {
  Arena arena(/*slab_bytes=*/1024);
  for (int i = 0; i < 16; ++i) arena.Allocate(256);
  ArenaStats peak = arena.stats();
  EXPECT_GE(peak.peak_used_bytes, 16u * 256u);

  arena.Reset();
  ArenaStats after = arena.stats();
  EXPECT_EQ(after.slabs, 0u);
  EXPECT_EQ(after.used_bytes, 0u);
  EXPECT_EQ(after.reserved_bytes, 0u);
  EXPECT_EQ(after.resets, 1u);
  // The high-water mark survives the reset (service metrics depend on it).
  EXPECT_EQ(after.peak_used_bytes, peak.peak_used_bytes);

  // The arena is usable again after Reset.
  void* p = arena.Allocate(128);
  std::memset(p, 0, 128);
  EXPECT_EQ(arena.stats().slabs, 1u);
}

TEST(ArenaTest, AllocateArrayIsTypedAndAligned) {
  Arena arena;
  double* d = arena.AllocateArray<double>(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double), 0u);
  for (int i = 0; i < 100; ++i) d[i] = i * 1.5;
  EXPECT_EQ(d[99], 99 * 1.5);
}

TEST(ArenaTest, ArenaVectorGrowsWithoutFreeingIntoTheArena) {
  Arena arena;
  ArenaVector<uint64_t> v{ArenaAllocator<uint64_t>(&arena)};
  for (uint64_t i = 0; i < 10000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 10000u);
  EXPECT_EQ(v[9999], 9999u);
  // Growth reallocations leave the old buffers in the arena: used bytes
  // must cover at least the final buffer.
  EXPECT_GE(arena.stats().used_bytes, 10000u * sizeof(uint64_t));
}

TEST(ArenaTest, ConcurrentAllocationIsSafe) {
  Arena arena;
  constexpr int kThreads = 8;
  constexpr int kAllocs = 2000;
  std::vector<std::thread> threads;
  std::vector<std::vector<uint32_t*>> ptrs(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena, &ptrs, t] {
      for (int i = 0; i < kAllocs; ++i) {
        uint32_t* p = arena.AllocateArray<uint32_t>(4);
        p[0] = static_cast<uint32_t>(t * kAllocs + i);
        ptrs[t].push_back(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every thread's writes survived: no two threads got the same storage.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kAllocs; ++i) {
      EXPECT_EQ(*ptrs[t][i], static_cast<uint32_t>(t * kAllocs + i));
    }
  }
}

}  // namespace
}  // namespace precis
