#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace precis {
namespace {

RelationSchema MovieSchema() {
  RelationSchema s("MOVIE", {{"mid", DataType::kInt64},
                             {"title", DataType::kString},
                             {"year", DataType::kInt64}});
  EXPECT_TRUE(s.SetPrimaryKey("mid").ok());
  return s;
}

// --- Value ---

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_TRUE(Value(int64_t{4}).is_int64());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_EQ(Value(int64_t{4}).AsInt64(), 4);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, EqualityIsTypeAware) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));
  EXPECT_NE(Value(int64_t{1}), Value("1"));
  EXPECT_EQ(Value(), Value::Null());
}

TEST(ValueTest, OrderingNullFirst) {
  EXPECT_LT(Value(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, HashDistinguishesTypes) {
  EXPECT_NE(Value(int64_t{0}).Hash(), Value("").Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
}

TEST(ValueTest, TypeMatchesNullIsWildcard) {
  EXPECT_TRUE(Value().TypeMatches(DataType::kInt64));
  EXPECT_TRUE(Value().TypeMatches(DataType::kString));
  EXPECT_TRUE(Value(int64_t{1}).TypeMatches(DataType::kInt64));
  EXPECT_FALSE(Value(int64_t{1}).TypeMatches(DataType::kString));
  EXPECT_FALSE(Value("a").TypeMatches(DataType::kDouble));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(int64_t{2005}).ToString(), "2005");
  EXPECT_EQ(Value("Match Point").ToString(), "Match Point");
}

// --- RelationSchema ---

TEST(SchemaTest, AttributeIndexLookup) {
  RelationSchema s = MovieSchema();
  EXPECT_EQ(*s.AttributeIndex("title"), 1u);
  EXPECT_TRUE(s.AttributeIndex("nope").status().IsNotFound());
  EXPECT_TRUE(s.HasAttribute("year"));
  EXPECT_FALSE(s.HasAttribute("director"));
}

TEST(SchemaTest, PrimaryKeySetAndRender) {
  RelationSchema s = MovieSchema();
  ASSERT_TRUE(s.primary_key().has_value());
  EXPECT_EQ(*s.primary_key(), 0u);
  EXPECT_EQ(s.ToString(), "MOVIE(mid*, title, year)");
}

TEST(SchemaTest, SetPrimaryKeyUnknownAttributeFails) {
  RelationSchema s = MovieSchema();
  EXPECT_TRUE(s.SetPrimaryKey("nope").IsNotFound());
}

TEST(SchemaTest, ForeignKeyToString) {
  ForeignKey fk{"MOVIE", "did", "DIRECTOR", "did"};
  EXPECT_EQ(fk.ToString(), "MOVIE.did -> DIRECTOR.did");
}

// --- Relation ---

TEST(RelationTest, InsertAndGet) {
  Relation r(MovieSchema());
  auto tid = r.Insert({int64_t{1}, "Match Point", int64_t{2005}});
  ASSERT_TRUE(tid.ok());
  EXPECT_EQ(*tid, 0u);
  auto t = r.Get(0);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((**t)[1].AsString(), "Match Point");
  EXPECT_EQ(r.num_tuples(), 1u);
}

TEST(RelationTest, TidsAreSequential) {
  Relation r(MovieSchema());
  EXPECT_EQ(*r.Insert({int64_t{1}, "A", int64_t{2000}}), 0u);
  EXPECT_EQ(*r.Insert({int64_t{2}, "B", int64_t{2001}}), 1u);
  EXPECT_EQ(*r.Insert({int64_t{3}, "C", int64_t{2002}}), 2u);
}

TEST(RelationTest, ArityMismatchRejected) {
  Relation r(MovieSchema());
  EXPECT_TRUE(r.Insert({int64_t{1}, "A"}).status().IsInvalidArgument());
}

TEST(RelationTest, TypeMismatchRejected) {
  Relation r(MovieSchema());
  EXPECT_TRUE(
      r.Insert({"oops", "A", int64_t{2000}}).status().IsInvalidArgument());
}

TEST(RelationTest, NullsAllowedInNonKeyAttributes) {
  Relation r(MovieSchema());
  EXPECT_TRUE(r.Insert({int64_t{1}, Value::Null(), int64_t{2000}}).ok());
}

TEST(RelationTest, PrimaryKeyDuplicateRejectedWithoutIndex) {
  Relation r(MovieSchema());
  ASSERT_TRUE(r.Insert({int64_t{1}, "A", int64_t{2000}}).ok());
  EXPECT_TRUE(r.Insert({int64_t{1}, "B", int64_t{2001}})
                  .status()
                  .IsConstraintViolation());
}

TEST(RelationTest, PrimaryKeyDuplicateRejectedWithIndex) {
  Relation r(MovieSchema());
  ASSERT_TRUE(r.CreateIndex("mid").ok());
  ASSERT_TRUE(r.Insert({int64_t{1}, "A", int64_t{2000}}).ok());
  EXPECT_TRUE(r.Insert({int64_t{1}, "B", int64_t{2001}})
                  .status()
                  .IsConstraintViolation());
}

TEST(RelationTest, NullPrimaryKeyRejected) {
  Relation r(MovieSchema());
  EXPECT_TRUE(r.Insert({Value::Null(), "A", int64_t{2000}})
                  .status()
                  .IsConstraintViolation());
}

TEST(RelationTest, GetOutOfRange) {
  Relation r(MovieSchema());
  EXPECT_TRUE(r.Get(0).status().IsOutOfRange());
}

TEST(RelationTest, LookupEqualsUsesIndexWhenPresent) {
  AccessStats stats;
  Relation r(MovieSchema(), &stats);
  ASSERT_TRUE(r.Insert({int64_t{1}, "A", int64_t{2000}}).ok());
  ASSERT_TRUE(r.Insert({int64_t{2}, "B", int64_t{2000}}).ok());
  ASSERT_TRUE(r.Insert({int64_t{3}, "C", int64_t{2001}}).ok());
  ASSERT_TRUE(r.CreateIndex("year").ok());
  auto tids = r.LookupEquals("year", int64_t{2000});
  ASSERT_TRUE(tids.ok());
  EXPECT_EQ(*tids, (std::vector<Tid>{0, 1}));
  EXPECT_EQ(stats.index_probes, 1u);
  EXPECT_EQ(stats.sequential_scans, 0u);
}

TEST(RelationTest, LookupEqualsFallsBackToScan) {
  AccessStats stats;
  Relation r(MovieSchema(), &stats);
  ASSERT_TRUE(r.Insert({int64_t{1}, "A", int64_t{2000}}).ok());
  auto tids = r.LookupEquals("year", int64_t{2000});
  ASSERT_TRUE(tids.ok());
  EXPECT_EQ(tids->size(), 1u);
  EXPECT_EQ(stats.index_probes, 0u);
  EXPECT_EQ(stats.sequential_scans, 1u);
}

TEST(RelationTest, LookupEqualsMissingValueEmpty) {
  Relation r(MovieSchema());
  ASSERT_TRUE(r.CreateIndex("year").ok());
  ASSERT_TRUE(r.Insert({int64_t{1}, "A", int64_t{2000}}).ok());
  auto tids = r.LookupEquals("year", int64_t{1999});
  ASSERT_TRUE(tids.ok());
  EXPECT_TRUE(tids->empty());
}

TEST(RelationTest, IndexCreatedAfterInsertsCoversExistingTuples) {
  Relation r(MovieSchema());
  ASSERT_TRUE(r.Insert({int64_t{1}, "A", int64_t{2000}}).ok());
  ASSERT_TRUE(r.Insert({int64_t{2}, "B", int64_t{2000}}).ok());
  ASSERT_TRUE(r.CreateIndex("year").ok());
  EXPECT_EQ(r.LookupEquals("year", int64_t{2000})->size(), 2u);
  // ... and new inserts keep it maintained.
  ASSERT_TRUE(r.Insert({int64_t{3}, "C", int64_t{2000}}).ok());
  EXPECT_EQ(r.LookupEquals("year", int64_t{2000})->size(), 3u);
}

TEST(RelationTest, HasIndex) {
  Relation r(MovieSchema());
  EXPECT_FALSE(r.HasIndex("year"));
  ASSERT_TRUE(r.CreateIndex("year").ok());
  EXPECT_TRUE(r.HasIndex("year"));
  EXPECT_FALSE(r.HasIndex("nonexistent"));
}

TEST(RelationTest, CreateIndexOnUnknownAttributeFails) {
  Relation r(MovieSchema());
  EXPECT_TRUE(r.CreateIndex("nope").IsNotFound());
}

TEST(RelationTest, DistinctValues) {
  Relation r(MovieSchema());
  ASSERT_TRUE(r.Insert({int64_t{1}, "A", int64_t{2000}}).ok());
  ASSERT_TRUE(r.Insert({int64_t{2}, "B", int64_t{2000}}).ok());
  ASSERT_TRUE(r.Insert({int64_t{3}, "C", int64_t{2001}}).ok());
  auto vals = r.DistinctValues("year");
  ASSERT_TRUE(vals.ok());
  EXPECT_EQ(vals->size(), 2u);
  EXPECT_EQ((*vals)[0], Value(int64_t{2000}));
}

TEST(RelationTest, AllTids) {
  Relation r(MovieSchema());
  ASSERT_TRUE(r.Insert({int64_t{1}, "A", int64_t{2000}}).ok());
  ASSERT_TRUE(r.Insert({int64_t{2}, "B", int64_t{2001}}).ok());
  EXPECT_EQ(r.AllTids(), (std::vector<Tid>{0, 1}));
}

TEST(RelationTest, GetCountsTupleFetch) {
  AccessStats stats;
  Relation r(MovieSchema(), &stats);
  ASSERT_TRUE(r.Insert({int64_t{1}, "A", int64_t{2000}}).ok());
  ASSERT_TRUE(r.Get(0).ok());
  ASSERT_TRUE(r.Get(0).ok());
  EXPECT_EQ(stats.tuple_fetches, 2u);
}

// --- Database ---

Database MakeMoviesDb() {
  Database db("test");
  RelationSchema director("DIRECTOR", {{"did", DataType::kInt64},
                                       {"dname", DataType::kString}});
  EXPECT_TRUE(director.SetPrimaryKey("did").ok());
  EXPECT_TRUE(db.CreateRelation(std::move(director)).ok());
  EXPECT_TRUE(db.CreateRelation(MovieSchema()).ok());
  return db;
}

TEST(DatabaseTest, CreateAndGetRelation) {
  Database db = MakeMoviesDb();
  EXPECT_TRUE(db.HasRelation("MOVIE"));
  EXPECT_FALSE(db.HasRelation("GENRE"));
  EXPECT_TRUE(db.GetRelation("MOVIE").ok());
  EXPECT_TRUE(db.GetRelation("GENRE").status().IsNotFound());
  EXPECT_EQ(db.num_relations(), 2u);
}

TEST(DatabaseTest, DuplicateRelationRejected) {
  Database db = MakeMoviesDb();
  EXPECT_TRUE(db.CreateRelation(MovieSchema()).IsAlreadyExists());
}

TEST(DatabaseTest, EmptyRelationNameRejected) {
  Database db;
  EXPECT_TRUE(db.CreateRelation(RelationSchema("", {}))
                  .IsInvalidArgument());
}

TEST(DatabaseTest, DuplicateAttributeNamesRejected) {
  Database db;
  RelationSchema bad("R", {{"a", DataType::kInt64}, {"a", DataType::kInt64}});
  EXPECT_TRUE(db.CreateRelation(std::move(bad)).IsInvalidArgument());
}

TEST(DatabaseTest, RelationNamesSorted) {
  Database db = MakeMoviesDb();
  EXPECT_EQ(db.RelationNames(),
            (std::vector<std::string>{"DIRECTOR", "MOVIE"}));
}

TEST(DatabaseTest, TotalTuples) {
  Database db = MakeMoviesDb();
  auto movie = db.GetRelation("MOVIE");
  ASSERT_TRUE((*movie)->Insert({int64_t{1}, "A", int64_t{2000}}).ok());
  ASSERT_TRUE((*movie)->Insert({int64_t{2}, "B", int64_t{2001}}).ok());
  EXPECT_EQ(db.TotalTuples(), 2u);
}

TEST(DatabaseTest, ForeignKeyRequiresExistingEndpoints) {
  Database db = MakeMoviesDb();
  EXPECT_TRUE(
      db.AddForeignKey({"MOVIE", "mid", "GENRE", "mid"}).IsNotFound());
  EXPECT_TRUE(
      db.AddForeignKey({"MOVIE", "nope", "DIRECTOR", "did"}).IsNotFound());
}

TEST(DatabaseTest, ForeignKeyTypeMismatchRejected) {
  Database db = MakeMoviesDb();
  EXPECT_TRUE(db.AddForeignKey({"MOVIE", "title", "DIRECTOR", "did"})
                  .IsInvalidArgument());
}

TEST(DatabaseTest, ValidateForeignKeysDetectsDangling) {
  Database db = MakeMoviesDb();
  ASSERT_TRUE(db.AddForeignKey({"MOVIE", "mid", "DIRECTOR", "did"}).ok());
  auto director = db.GetRelation("DIRECTOR");
  auto movie = db.GetRelation("MOVIE");
  ASSERT_TRUE((*director)->Insert({int64_t{1}, "Allen"}).ok());
  ASSERT_TRUE((*movie)->Insert({int64_t{1}, "A", int64_t{2000}}).ok());
  EXPECT_TRUE(db.ValidateForeignKeys().ok());
  ASSERT_TRUE((*movie)->Insert({int64_t{9}, "B", int64_t{2001}}).ok());
  EXPECT_TRUE(db.ValidateForeignKeys().IsConstraintViolation());
}

TEST(DatabaseTest, ValidateForeignKeysIgnoresNullChildren) {
  Database db = MakeMoviesDb();
  // MOVIE.year -> DIRECTOR.did is nonsense semantically but types match.
  ASSERT_TRUE(db.AddForeignKey({"MOVIE", "year", "DIRECTOR", "did"}).ok());
  auto movie = db.GetRelation("MOVIE");
  ASSERT_TRUE((*movie)->Insert({int64_t{1}, "A", Value::Null()}).ok());
  EXPECT_TRUE(db.ValidateForeignKeys().ok());
}

TEST(DatabaseTest, StatsAggregateAcrossRelations) {
  Database db = MakeMoviesDb();
  auto movie = db.GetRelation("MOVIE");
  auto director = db.GetRelation("DIRECTOR");
  ASSERT_TRUE((*movie)->Insert({int64_t{1}, "A", int64_t{2000}}).ok());
  ASSERT_TRUE((*director)->Insert({int64_t{1}, "Allen"}).ok());
  ASSERT_TRUE((*movie)->Get(0).ok());
  ASSERT_TRUE((*director)->Get(0).ok());
  EXPECT_EQ(db.stats().tuple_fetches, 2u);
  db.ResetStats();
  EXPECT_EQ(db.stats().tuple_fetches, 0u);
}

TEST(DatabaseTest, StatsSurviveMove) {
  Database db = MakeMoviesDb();
  auto movie = db.GetRelation("MOVIE");
  ASSERT_TRUE((*movie)->Insert({int64_t{1}, "A", int64_t{2000}}).ok());
  Database moved = std::move(db);
  auto movie2 = moved.GetRelation("MOVIE");
  ASSERT_TRUE((*movie2)->Get(0).ok());
  EXPECT_EQ(moved.stats().tuple_fetches, 1u);
}

TEST(DatabaseTest, DescribeSchemaMentionsRelationsAndFks) {
  Database db = MakeMoviesDb();
  ASSERT_TRUE(db.AddForeignKey({"MOVIE", "mid", "DIRECTOR", "did"}).ok());
  std::string desc = db.DescribeSchema();
  EXPECT_NE(desc.find("MOVIE(mid*, title, year)"), std::string::npos);
  EXPECT_NE(desc.find("FK MOVIE.mid -> DIRECTOR.did"), std::string::npos);
}

}  // namespace
}  // namespace precis
