#include <gtest/gtest.h>

#include "sql/select.h"
#include "storage/database.h"

namespace precis {
namespace {

/// A GENRE-like relation: gid*, mid (to-N join attribute), genre.
class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RelationSchema schema("GENRE", {{"gid", DataType::kInt64},
                                    {"mid", DataType::kInt64},
                                    {"genre", DataType::kString}});
    ASSERT_TRUE(schema.SetPrimaryKey("gid").ok());
    ASSERT_TRUE(db_.CreateRelation(std::move(schema)).ok());
    auto rel = db_.GetRelation("GENRE");
    ASSERT_TRUE(rel.ok());
    rel_ = *rel;
    // mid 1: Drama, Thriller; mid 2: Comedy; mid 3: Comedy, Romance, Crime.
    ASSERT_TRUE(rel_->Insert({int64_t{1}, int64_t{1}, "Drama"}).ok());
    ASSERT_TRUE(rel_->Insert({int64_t{2}, int64_t{1}, "Thriller"}).ok());
    ASSERT_TRUE(rel_->Insert({int64_t{3}, int64_t{2}, "Comedy"}).ok());
    ASSERT_TRUE(rel_->Insert({int64_t{4}, int64_t{3}, "Comedy"}).ok());
    ASSERT_TRUE(rel_->Insert({int64_t{5}, int64_t{3}, "Romance"}).ok());
    ASSERT_TRUE(rel_->Insert({int64_t{6}, int64_t{3}, "Crime"}).ok());
    ASSERT_TRUE(rel_->CreateIndex("mid").ok());
    db_.ResetStats();
  }

  std::vector<size_t> AllAttrs() const { return {0, 1, 2}; }

  Database db_;
  Relation* rel_ = nullptr;
};

TEST_F(SqlTest, ProjectTuple) {
  Tuple t = {int64_t{1}, int64_t{2}, "Drama"};
  EXPECT_EQ(ProjectTuple(t, {2}), (Tuple{"Drama"}));
  EXPECT_EQ(ProjectTuple(t, {2, 0}), (Tuple{"Drama", int64_t{1}}));
  EXPECT_EQ(ProjectTuple(t, {}), Tuple{});
}

TEST_F(SqlTest, ResolveProjection) {
  auto p = ResolveProjection(rel_->schema(), {"genre", "gid"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, (std::vector<size_t>{2, 0}));
  EXPECT_TRUE(
      ResolveProjection(rel_->schema(), {"nope"}).status().IsNotFound());
}

TEST_F(SqlTest, FetchByTidsReturnsRequestedRows) {
  auto rows = FetchByTids(*rel_, {0, 2}, {2}, std::nullopt);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].tid, 0u);
  EXPECT_EQ((*rows)[0].values, (Tuple{"Drama"}));
  EXPECT_EQ((*rows)[1].values, (Tuple{"Comedy"}));
}

TEST_F(SqlTest, FetchByTidsHonoursLimit) {
  auto rows = FetchByTids(*rel_, {0, 1, 2, 3}, AllAttrs(), 2);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(SqlTest, FetchByTidsBadTid) {
  EXPECT_TRUE(
      FetchByTids(*rel_, {99}, AllAttrs(), std::nullopt).status().IsOutOfRange());
}

TEST_F(SqlTest, FetchByTidsCountsFetches) {
  ASSERT_TRUE(FetchByTids(*rel_, {0, 1, 2}, AllAttrs(), std::nullopt).ok());
  EXPECT_EQ(db_.stats().tuple_fetches, 3u);
}

TEST_F(SqlTest, FetchByJoinValuesProbesPerKey) {
  auto rows = FetchByJoinValues(*rel_, "mid",
                                {Value(int64_t{1}), Value(int64_t{3})},
                                AllAttrs(), std::nullopt);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);  // 2 for mid=1 + 3 for mid=3
  EXPECT_EQ(db_.stats().index_probes, 2u);
  EXPECT_EQ(db_.stats().tuple_fetches, 5u);
}

TEST_F(SqlTest, FetchByJoinValuesLimitStopsEarly) {
  auto rows = FetchByJoinValues(*rel_, "mid",
                                {Value(int64_t{1}), Value(int64_t{3})},
                                AllAttrs(), 3);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
  // Prefix behaviour: mid=1 rows come before mid=3 rows.
  EXPECT_EQ((*rows)[0].values[2], Value("Drama"));
  EXPECT_EQ((*rows)[1].values[2], Value("Thriller"));
  EXPECT_EQ((*rows)[2].values[2], Value("Comedy"));
}

TEST_F(SqlTest, FetchByJoinValuesMissingKeyYieldsNothing) {
  auto rows = FetchByJoinValues(*rel_, "mid", {Value(int64_t{42})},
                                AllAttrs(), std::nullopt);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(SqlTest, PerValueScanSetRoundRobinOrder) {
  auto scans = PerValueScanSet::Open(
      *rel_, "mid", {Value(int64_t{1}), Value(int64_t{3})}, AllAttrs());
  ASSERT_TRUE(scans.ok());
  EXPECT_EQ(scans->num_scans(), 2u);
  // Round 1: one tuple from each scan.
  auto r0 = scans->Next(0);
  auto r1 = scans->Next(1);
  ASSERT_TRUE(r0.has_value());
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r0->values[2], Value("Drama"));
  EXPECT_EQ(r1->values[2], Value("Comedy"));
  // Round 2.
  EXPECT_EQ(scans->Next(0)->values[2], Value("Thriller"));
  EXPECT_EQ(scans->Next(1)->values[2], Value("Romance"));
  // Scan 0 now drained.
  EXPECT_FALSE(scans->IsOpen(0));
  EXPECT_FALSE(scans->Next(0).has_value());
  EXPECT_EQ(scans->Next(1)->values[2], Value("Crime"));
  EXPECT_TRUE(scans->AllClosed());
}

TEST_F(SqlTest, PerValueScanSetOpenCountsOneProbePerKey) {
  auto scans = PerValueScanSet::Open(
      *rel_, "mid",
      {Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{3})}, AllAttrs());
  ASSERT_TRUE(scans.ok());
  EXPECT_EQ(db_.stats().index_probes, 3u);
  EXPECT_EQ(db_.stats().tuple_fetches, 0u);  // nothing pulled yet
}

TEST_F(SqlTest, PerValueScanSetEmptyScanIsClosed) {
  auto scans = PerValueScanSet::Open(*rel_, "mid", {Value(int64_t{42})},
                                     AllAttrs());
  ASSERT_TRUE(scans.ok());
  EXPECT_FALSE(scans->IsOpen(0));
  EXPECT_TRUE(scans->AllClosed());
}

TEST_F(SqlTest, PerValueScanSetKeyAccessor) {
  auto scans = PerValueScanSet::Open(*rel_, "mid", {Value(int64_t{7})},
                                     AllAttrs());
  ASSERT_TRUE(scans.ok());
  EXPECT_EQ(scans->key(0), Value(int64_t{7}));
}

TEST_F(SqlTest, RenderInListSql) {
  std::string sql = RenderInListSql(rel_->schema(), "mid",
                                    {Value(int64_t{1}), Value(int64_t{3})},
                                    {2, 0}, 5);
  EXPECT_EQ(sql,
            "SELECT genre, gid FROM GENRE WHERE mid IN (1, 3)"
            " AND RowNum <= 5");
}

TEST_F(SqlTest, RenderInListSqlQuotesStrings) {
  std::string sql = RenderInListSql(rel_->schema(), "genre",
                                    {Value("Drama")}, {}, std::nullopt);
  EXPECT_EQ(sql, "SELECT * FROM GENRE WHERE genre IN ('Drama')");
}

}  // namespace
}  // namespace precis
