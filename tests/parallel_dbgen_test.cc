// Determinism suite for parallel result-database generation (DESIGN.md
// §11): for every strategy, option and stop mode, the parallel path must
// produce a database that is BYTE-IDENTICAL (via storage/serialization)
// to the sequential Fig. 5 walk, with an equal DbGenReport — on pools of
// 1, 2 and 8 threads, independent of the parallelism knob's value.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/task_pool.h"
#include "datagen/movies_dataset.h"
#include "precis/database_generator.h"
#include "precis/schema_generator.h"
#include "precis/tuple_weights.h"
#include "storage/serialization.h"

namespace precis {
namespace {

struct RunResult {
  bool ok = false;
  std::string bytes;  // SaveDatabase text of the emitted database
  DbGenReport report;
  StopReason ctx_stop = StopReason::kNone;
};

/// One generation run under fresh generator + fresh context.
RunResult RunOnce(const Database& db, const ResultSchema& schema,
                  const SeedTids& seeds, const CardinalityConstraint& c,
                  DbGenOptions options,
                  const std::function<void(ExecutionContext&)>& configure) {
  RunResult out;
  ExecutionContext ctx;
  if (configure) configure(ctx);
  ResultDatabaseGenerator gen(&db);
  auto result =
      gen.Generate(schema, seeds, c, options, configure ? &ctx : nullptr);
  if (!result.ok()) {
    ADD_FAILURE() << "Generate failed: " << result.status().ToString();
    return out;
  }
  std::ostringstream os;
  Status saved = SaveDatabase(*result, &os);
  if (!saved.ok()) {
    ADD_FAILURE() << "SaveDatabase failed: " << saved.ToString();
    return out;
  }
  out.ok = true;
  out.bytes = os.str();
  out.report = gen.last_report();
  out.ctx_stop = ctx.stop_reason();
  return out;
}

void ExpectSameOutcome(const RunResult& seq, const RunResult& par) {
  ASSERT_TRUE(seq.ok);
  ASSERT_TRUE(par.ok);
  EXPECT_EQ(par.bytes, seq.bytes) << "emitted database differs";
  EXPECT_EQ(par.report.executed_edges, seq.report.executed_edges);
  EXPECT_EQ(par.report.truncated_relations, seq.report.truncated_relations);
  EXPECT_EQ(par.report.dropped_foreign_keys,
            seq.report.dropped_foreign_keys);
  EXPECT_EQ(par.report.total_tuples, seq.report.total_tuples);
  EXPECT_EQ(par.report.sql_trace, seq.report.sql_trace);
  EXPECT_EQ(static_cast<int>(par.report.stop_reason),
            static_cast<int>(seq.report.stop_reason));
  EXPECT_EQ(static_cast<int>(par.ctx_stop), static_cast<int>(seq.ctx_stop));
}

/// Runs sequentially, then on pools of 1/2/8 threads (parallelism 2/2/8,
/// including the degenerate parallelism=2-on-1-thread case), asserting
/// byte-identity every time.
void ExpectDeterministic(
    const Database& db, const ResultSchema& schema, const SeedTids& seeds,
    const CardinalityConstraint& c, DbGenOptions base,
    const std::function<void(ExecutionContext&)>& configure = nullptr) {
  base.parallelism = 1;
  base.pool = nullptr;
  RunResult seq = RunOnce(db, schema, seeds, c, base, configure);
  ASSERT_TRUE(seq.ok);

  TaskPool pool1(1);
  TaskPool pool2(2);
  TaskPool pool8(8);
  struct Config {
    size_t parallelism;
    TaskPool* pool;
    const char* label;
  };
  const Config configs[] = {
      {2, &pool1, "parallelism=2 on 1-thread pool"},
      {2, &pool2, "parallelism=2 on 2-thread pool"},
      {8, &pool8, "parallelism=8 on 8-thread pool"},
  };
  for (const Config& config : configs) {
    SCOPED_TRACE(config.label);
    DbGenOptions options = base;
    options.parallelism = config.parallelism;
    options.pool = config.pool;
    RunResult par = RunOnce(db, schema, seeds, c, options, configure);
    ExpectSameOutcome(seq, par);
  }
}

// ===== Hand-built two-relation fixture (mirrors database_generator_test) ==

class ParallelDbGenSmallTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RelationSchema d("D", {{"did", DataType::kInt64},
                           {"dname", DataType::kString}});
    ASSERT_TRUE(d.SetPrimaryKey("did").ok());
    ASSERT_TRUE(db_.CreateRelation(std::move(d)).ok());
    RelationSchema m("M", {{"mid", DataType::kInt64},
                           {"did", DataType::kInt64},
                           {"title", DataType::kString}});
    ASSERT_TRUE(m.SetPrimaryKey("mid").ok());
    ASSERT_TRUE(db_.CreateRelation(std::move(m)).ok());
    ASSERT_TRUE(db_.AddForeignKey({"M", "did", "D", "did"}).ok());

    auto dr = db_.GetRelation("D");
    auto mr = db_.GetRelation("M");
    for (int64_t did = 1; did <= 4; ++did) {
      ASSERT_TRUE(
          (*dr)->Insert({did, "Director " + std::to_string(did)}).ok());
    }
    int64_t mid = 1;
    for (int64_t did = 1; did <= 4; ++did) {
      for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(
            (*mr)->Insert({mid, did, "Movie " + std::to_string(mid)}).ok());
        ++mid;
      }
    }
    ASSERT_TRUE((*mr)->CreateIndex("did").ok());
    ASSERT_TRUE((*dr)->CreateIndex("did").ok());

    auto g = SchemaGraph::FromDatabase(db_);
    ASSERT_TRUE(g.ok());
    graph_ = std::make_unique<SchemaGraph>(std::move(*g));
    ASSERT_TRUE(graph_->AddProjectionEdge("D", "dname", 1.0).ok());
    ASSERT_TRUE(graph_->AddProjectionEdge("M", "title", 1.0).ok());
    ASSERT_TRUE(graph_->AddJoinEdge("D", "did", "M", "did", 1.0).ok());

    ResultSchemaGenerator schema_gen(graph_.get());
    auto schema =
        schema_gen.Generate({std::string("D")}, *MinPathWeight(0.9));
    ASSERT_TRUE(schema.ok());
    schema_ = std::make_unique<ResultSchema>(std::move(*schema));
    d_id_ = *graph_->RelationId("D");
  }

  SeedTids AllDirectorSeeds() { return {{d_id_, {0, 1, 2, 3}}}; }

  Database db_;
  std::unique_ptr<SchemaGraph> graph_;
  std::unique_ptr<ResultSchema> schema_;
  RelationNodeId d_id_ = 0;
};

TEST_F(ParallelDbGenSmallTest, NaiveQIsByteIdentical) {
  DbGenOptions options;
  options.strategy = SubsetStrategy::kNaiveQ;
  ExpectDeterministic(db_, *schema_, AllDirectorSeeds(),
                      *MaxTuplesPerRelation(3), options);
}

TEST_F(ParallelDbGenSmallTest, RoundRobinIsByteIdentical) {
  DbGenOptions options;
  options.strategy = SubsetStrategy::kRoundRobin;
  ExpectDeterministic(db_, *schema_, AllDirectorSeeds(),
                      *MaxTuplesPerRelation(3), options);
}

TEST_F(ParallelDbGenSmallTest, AutoStrategyIsByteIdentical) {
  DbGenOptions options;
  options.strategy = SubsetStrategy::kAuto;
  ExpectDeterministic(db_, *schema_, AllDirectorSeeds(),
                      *MaxTuplesPerRelation(3), options);
}

TEST_F(ParallelDbGenSmallTest, UnlimitedCardinalityIsByteIdentical) {
  ExpectDeterministic(db_, *schema_, AllDirectorSeeds(),
                      *UnlimitedCardinality(), DbGenOptions());
}

TEST_F(ParallelDbGenSmallTest, SqlTraceIsReplicatedExactly) {
  DbGenOptions options;
  options.strategy = SubsetStrategy::kRoundRobin;
  options.trace_sql = true;
  ExpectDeterministic(db_, *schema_, AllDirectorSeeds(),
                      *MaxTuplesPerRelation(3), options);
}

TEST_F(ParallelDbGenSmallTest, TupleWeightedTruncationIsByteIdentical) {
  // Later movies weigh more, so weighted truncation must pick tids in
  // descending-weight order — in both modes, identically.
  TupleWeightStore store;
  std::vector<double> weights;
  for (size_t tid = 0; tid < 20; ++tid) {
    weights.push_back(0.05 * static_cast<double>(tid + 1));
  }
  ASSERT_TRUE(store.SetWeights(db_, "M", std::move(weights)).ok());
  DbGenOptions options;
  options.strategy = SubsetStrategy::kNaiveQ;
  options.tuple_weights = &store;
  ExpectDeterministic(db_, *schema_, AllDirectorSeeds(),
                      *MaxTuplesPerRelation(4), options);
}

TEST_F(ParallelDbGenSmallTest, SimulatedLatencyDoesNotChangeBytes) {
  DbGenOptions options;
  options.strategy = SubsetStrategy::kRoundRobin;
  options.simulated_access_latency_ns = 20000;  // 20µs per accepted tuple
  ExpectDeterministic(db_, *schema_, AllDirectorSeeds(),
                      *MaxTuplesPerRelation(3), options);
}

TEST_F(ParallelDbGenSmallTest, PreCancelledContextIsByteIdentical) {
  ExpectDeterministic(db_, *schema_, AllDirectorSeeds(),
                      *MaxTuplesPerRelation(3), DbGenOptions(),
                      [](ExecutionContext& ctx) { ctx.Cancel(); });
}

TEST_F(ParallelDbGenSmallTest, ExpiredDeadlineIsByteIdentical) {
  ExpectDeterministic(
      db_, *schema_, AllDirectorSeeds(), *MaxTuplesPerRelation(3),
      DbGenOptions(), [](ExecutionContext& ctx) {
        ctx.SetDeadline(ExecutionContext::Clock::now() -
                        std::chrono::seconds(1));
      });
}

TEST_F(ParallelDbGenSmallTest, TinyAccessBudgetStopsIdentically) {
  // Budget exhausts midway through the walk: the parallel planner charges
  // a SIMULATED access sequence replaying the sequential one, so the stop
  // point — and therefore the emitted bytes — must agree exactly.
  for (uint64_t budget : {1u, 2u, 3u, 5u, 8u, 13u, 21u}) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    ExpectDeterministic(db_, *schema_, AllDirectorSeeds(),
                        *MaxTuplesPerRelation(3), DbGenOptions(),
                        [budget](ExecutionContext& ctx) {
                          ctx.SetAccessBudget(budget);
                        });
  }
}

// ===== Movies dataset: multi-relation schema, deeper walk ================

class ParallelDbGenMoviesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 200;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));

    ResultSchemaGenerator schema_gen(&dataset_->graph());
    auto schema = schema_gen.Generate({std::string("DIRECTOR")},
                                      *MinPathWeight(0.5));
    ASSERT_TRUE(schema.ok());
    schema_ = std::make_unique<ResultSchema>(std::move(*schema));
    director_id_ = *dataset_->graph().RelationId("DIRECTOR");
  }

  SeedTids DirectorSeeds() { return {{director_id_, {0, 1, 2, 3, 4}}}; }

  std::unique_ptr<MoviesDataset> dataset_;
  std::unique_ptr<ResultSchema> schema_;
  RelationNodeId director_id_ = 0;
};

TEST_F(ParallelDbGenMoviesTest, RoundRobinDeepWalkIsByteIdentical) {
  DbGenOptions options;
  options.strategy = SubsetStrategy::kRoundRobin;
  ExpectDeterministic(dataset_->db(), *schema_, DirectorSeeds(),
                      *MaxTuplesPerRelation(40), options);
}

TEST_F(ParallelDbGenMoviesTest, NaiveQDeepWalkIsByteIdentical) {
  DbGenOptions options;
  options.strategy = SubsetStrategy::kNaiveQ;
  ExpectDeterministic(dataset_->db(), *schema_, DirectorSeeds(),
                      *MaxTuplesPerRelation(40), options);
}

TEST_F(ParallelDbGenMoviesTest, UnlimitedDeepWalkIsByteIdentical) {
  ExpectDeterministic(dataset_->db(), *schema_, DirectorSeeds(),
                      *UnlimitedCardinality(), DbGenOptions());
}

TEST_F(ParallelDbGenMoviesTest, PathAwarePropagationIsByteIdentical) {
  DbGenOptions options;
  options.strategy = SubsetStrategy::kAuto;
  options.path_aware_propagation = true;
  ExpectDeterministic(dataset_->db(), *schema_, DirectorSeeds(),
                      *MaxTuplesPerRelation(25), options);
}

TEST_F(ParallelDbGenMoviesTest, PathAwareOffIsByteIdentical) {
  DbGenOptions options;
  options.strategy = SubsetStrategy::kAuto;
  options.path_aware_propagation = false;
  ExpectDeterministic(dataset_->db(), *schema_, DirectorSeeds(),
                      *MaxTuplesPerRelation(25), options);
}

TEST_F(ParallelDbGenMoviesTest, TupleWeightedDeepWalkIsByteIdentical) {
  TupleWeightStore store;
  ASSERT_TRUE(WeightsFromNumericAttribute(dataset_->db(), "MOVIE", "year",
                                          &store)
                  .ok());
  DbGenOptions options;
  options.strategy = SubsetStrategy::kRoundRobin;
  options.tuple_weights = &store;
  ExpectDeterministic(dataset_->db(), *schema_, DirectorSeeds(),
                      *MaxTuplesPerRelation(20), options);
}

TEST_F(ParallelDbGenMoviesTest, MidWalkBudgetStopsIdentically) {
  for (uint64_t budget : {10u, 50u, 100u, 250u, 600u}) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    DbGenOptions options;
    options.strategy = SubsetStrategy::kRoundRobin;
    ExpectDeterministic(dataset_->db(), *schema_, DirectorSeeds(),
                        *MaxTuplesPerRelation(40), options,
                        [budget](ExecutionContext& ctx) {
                          ctx.SetAccessBudget(budget);
                        });
  }
}

TEST_F(ParallelDbGenMoviesTest, IncludeJoinAttributesIsByteIdentical) {
  DbGenOptions options;
  options.include_join_attributes = false;
  options.strategy = SubsetStrategy::kRoundRobin;
  ExpectDeterministic(dataset_->db(), *schema_, DirectorSeeds(),
                      *MaxTuplesPerRelation(30), options);
}

TEST_F(ParallelDbGenMoviesTest, SharedPoolDefaultIsByteIdentical) {
  // pool == nullptr routes to TaskPool::Shared(): the production path used
  // by PrecisService workers.
  DbGenOptions seq;
  RunResult a = RunOnce(dataset_->db(), *schema_, DirectorSeeds(),
                        *MaxTuplesPerRelation(30), seq, nullptr);
  DbGenOptions par;
  par.parallelism = 4;  // pool stays nullptr -> Shared()
  RunResult b = RunOnce(dataset_->db(), *schema_, DirectorSeeds(),
                        *MaxTuplesPerRelation(30), par, nullptr);
  ExpectSameOutcome(a, b);
}

}  // namespace
}  // namespace precis
