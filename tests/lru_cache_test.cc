#include "common/lru_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"

namespace precis {
namespace {

using Cache = ShardedLruCache<std::string, int>;

std::shared_ptr<const int> Boxed(int v) {
  return std::make_shared<const int>(v);
}

TEST(LruCacheTest, MissThenHit) {
  Cache cache(1024, /*num_shards=*/1);
  EXPECT_EQ(cache.Get("a"), nullptr);
  cache.Put("a", Boxed(7), 10);
  auto hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 7);
  LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.charge_bytes, 10u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedFirst) {
  // One shard so the LRU order is global and deterministic.
  Cache cache(100, /*num_shards=*/1);
  cache.Put("a", Boxed(1), 40);
  cache.Put("b", Boxed(2), 40);
  ASSERT_NE(cache.Get("a"), nullptr);  // promotes "a" over "b"
  cache.Put("c", Boxed(3), 40);        // 120 > 100: evicts the tail = "b"
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.charge_bytes, 100u);
}

TEST(LruCacheTest, ReplacingAKeyUpdatesValueAndCharge) {
  Cache cache(1024, 1);
  cache.Put("a", Boxed(1), 100);
  cache.Put("a", Boxed(2), 30);
  auto hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 2);
  LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.charge_bytes, 30u);
  EXPECT_EQ(stats.inserts, 2u);
}

TEST(LruCacheTest, OversizedEntryIsNeverHeld) {
  Cache cache(64, 1);
  cache.Put("huge", Boxed(1), 1000);
  EXPECT_EQ(cache.Get("huge"), nullptr);
  LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.charge_bytes, 0u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(LruCacheTest, ZeroChargeIsClampedToOne) {
  Cache cache(4, 1);
  for (int i = 0; i < 8; ++i) {
    cache.Put("k" + std::to_string(i), Boxed(i), 0);
  }
  // 8 one-byte entries against a 4-byte budget: half must have evicted.
  LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.charge_bytes, 4u);
  EXPECT_EQ(stats.evictions, 4u);
}

TEST(LruCacheTest, EraseRemovesOnlyThatKey) {
  Cache cache(1024, 1);
  cache.Put("a", Boxed(1), 10);
  cache.Put("b", Boxed(2), 10);
  EXPECT_TRUE(cache.Erase("a"));
  EXPECT_FALSE(cache.Erase("a"));
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("b"), nullptr);
  EXPECT_EQ(cache.stats().charge_bytes, 10u);
}

TEST(LruCacheTest, ClearDropsEntriesButKeepsCounters) {
  Cache cache(1024, 4);
  cache.Put("a", Boxed(1), 10);
  ASSERT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("missing"), nullptr);
  cache.Clear();
  LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.charge_bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);    // preserved across Clear
  EXPECT_EQ(stats.misses, 1u);  // preserved across Clear
  EXPECT_EQ(cache.Get("a"), nullptr);
}

TEST(LruCacheTest, SharedValueSurvivesEviction) {
  Cache cache(50, 1);
  cache.Put("a", Boxed(42), 40);
  auto held = cache.Get("a");
  ASSERT_NE(held, nullptr);
  cache.Put("b", Boxed(2), 40);  // evicts "a" while `held` is live
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(*held, 42);  // the reader's reference stays valid
}

TEST(LruCacheTest, ChargeStaysWithinBudgetUnderRandomLoad) {
  const size_t kCapacity = 4096;
  Cache cache(kCapacity, 8);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    std::string key = "k" + std::to_string(rng.Index(200));
    cache.Put(key, Boxed(i), 1 + rng.Index(64));
    if (i % 3 == 0) cache.Get("k" + std::to_string(rng.Index(200)));
  }
  // Per-shard budgets sum to at most the total budget.
  EXPECT_LE(cache.stats().charge_bytes, kCapacity);
}

TEST(LruCacheTest, ConcurrentMixedWorkloadIsCrashFreeAndAccounted) {
  Cache cache(8192, 8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<uint64_t> gets{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &gets, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string key = "k" + std::to_string(rng.Index(64));
        switch (rng.Index(4)) {
          case 0:
            cache.Put(key, std::make_shared<const int>(i), 1 + rng.Index(32));
            break;
          case 3:
            cache.Erase(key);
            break;
          default: {
            auto hit = cache.Get(key);
            if (hit != nullptr) {
              volatile int v = *hit;  // touch the shared value
              (void)v;
            }
            gets.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  LruCacheStats stats = cache.stats();
  // Every Get counted exactly once, as a hit or a miss.
  EXPECT_EQ(stats.hits + stats.misses, gets.load());
  EXPECT_LE(stats.charge_bytes, cache.capacity_bytes());
  EXPECT_GT(stats.hits, 0u);  // a 64-key space over 8k gets must hit
}

}  // namespace
}  // namespace precis
