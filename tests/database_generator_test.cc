#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "datagen/movies_dataset.h"
#include "precis/database_generator.h"
#include "precis/schema_generator.h"

namespace precis {
namespace {

/// Collects an attribute's values from a result relation, in tuple order.
std::vector<Value> Column(const Database& db, const std::string& relation,
                          const std::string& attribute) {
  std::vector<Value> out;
  auto rel = db.GetRelation(relation);
  if (!rel.ok()) return out;
  auto idx = (*rel)->schema().AttributeIndex(attribute);
  if (!idx.ok()) return out;
  for (Tid tid = 0; tid < (*rel)->num_tuples(); ++tid) {
    out.push_back((*rel)->tuple(tid)[*idx]);
  }
  return out;
}

// ===== Strategy semantics on a hand-built two-relation database =====

/// D(did, dname) with dids 1..3; M(mid, did, title) with three movies per
/// director: mids 1-3 -> did 1, 4-6 -> did 2, 7-9 -> did 3.
class StrategyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RelationSchema d("D", {{"did", DataType::kInt64},
                           {"dname", DataType::kString}});
    ASSERT_TRUE(d.SetPrimaryKey("did").ok());
    ASSERT_TRUE(db_.CreateRelation(std::move(d)).ok());
    RelationSchema m("M", {{"mid", DataType::kInt64},
                           {"did", DataType::kInt64},
                           {"title", DataType::kString}});
    ASSERT_TRUE(m.SetPrimaryKey("mid").ok());
    ASSERT_TRUE(db_.CreateRelation(std::move(m)).ok());
    ASSERT_TRUE(db_.AddForeignKey({"M", "did", "D", "did"}).ok());

    auto dr = db_.GetRelation("D");
    auto mr = db_.GetRelation("M");
    for (int64_t did = 1; did <= 3; ++did) {
      ASSERT_TRUE(
          (*dr)->Insert({did, "Director " + std::to_string(did)}).ok());
    }
    int64_t mid = 1;
    for (int64_t did = 1; did <= 3; ++did) {
      for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(
            (*mr)->Insert({mid, did, "Movie " + std::to_string(mid)}).ok());
        ++mid;
      }
    }
    ASSERT_TRUE((*mr)->CreateIndex("did").ok());
    ASSERT_TRUE((*dr)->CreateIndex("did").ok());

    auto g = SchemaGraph::FromDatabase(db_);
    ASSERT_TRUE(g.ok());
    graph_ = std::make_unique<SchemaGraph>(std::move(*g));
    ASSERT_TRUE(graph_->AddProjectionEdge("D", "dname", 1.0).ok());
    ASSERT_TRUE(graph_->AddProjectionEdge("M", "title", 1.0).ok());
    ASSERT_TRUE(graph_->AddJoinEdge("D", "did", "M", "did", 1.0).ok());

    ResultSchemaGenerator schema_gen(graph_.get());
    auto schema = schema_gen.Generate({std::string("D")}, *MinPathWeight(0.9));
    ASSERT_TRUE(schema.ok());
    schema_ = std::make_unique<ResultSchema>(std::move(*schema));

    d_id_ = *graph_->RelationId("D");
  }

  SeedTids AllDirectorSeeds() { return {{d_id_, {0, 1, 2}}}; }

  Database db_;
  std::unique_ptr<SchemaGraph> graph_;
  std::unique_ptr<ResultSchema> schema_;
  RelationNodeId d_id_ = 0;
};

TEST_F(StrategyTest, NaiveQTakesPrefixOfFirstSourceTuples) {
  ResultDatabaseGenerator gen(&db_);
  DbGenOptions options;
  options.strategy = SubsetStrategy::kNaiveQ;
  auto result = gen.Generate(*schema_, AllDirectorSeeds(),
                             *MaxTuplesPerRelation(3), options);
  ASSERT_TRUE(result.ok());
  // The paper's NaiveQ risk: all three movie slots go to director 1; the
  // other directors get none. (mid is neither projected nor a join
  // attribute, so identify movies by title.)
  EXPECT_EQ(Column(*result, "M", "title"),
            (std::vector<Value>{Value("Movie 1"), Value("Movie 2"),
                                Value("Movie 3")}));
}

TEST_F(StrategyTest, RoundRobinSpreadsAcrossSourceTuples) {
  ResultDatabaseGenerator gen(&db_);
  DbGenOptions options;
  options.strategy = SubsetStrategy::kRoundRobin;
  auto result = gen.Generate(*schema_, AllDirectorSeeds(),
                             *MaxTuplesPerRelation(3), options);
  ASSERT_TRUE(result.ok());
  // One movie per director: mids 1, 4, 7.
  EXPECT_EQ(Column(*result, "M", "title"),
            (std::vector<Value>{Value("Movie 1"), Value("Movie 4"),
                                Value("Movie 7")}));
}

TEST_F(StrategyTest, AutoPicksRoundRobinForToNJoin) {
  // D -> M joins on M.did which is not M's key: to-N, so kAuto must behave
  // like RoundRobin.
  ResultDatabaseGenerator gen(&db_);
  DbGenOptions options;
  options.strategy = SubsetStrategy::kAuto;
  auto result = gen.Generate(*schema_, AllDirectorSeeds(),
                             *MaxTuplesPerRelation(3), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Column(*result, "M", "title"),
            (std::vector<Value>{Value("Movie 1"), Value("Movie 4"),
                                Value("Movie 7")}));
}

TEST_F(StrategyTest, UnlimitedBudgetFetchesEverythingJoined) {
  ResultDatabaseGenerator gen(&db_);
  auto result =
      gen.Generate(*schema_, AllDirectorSeeds(), *UnlimitedCardinality());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result->GetRelation("M"))->num_tuples(), 9u);
  EXPECT_EQ((*result->GetRelation("D"))->num_tuples(), 3u);
  EXPECT_TRUE(result->ValidateForeignKeys().ok());
  EXPECT_TRUE(gen.last_report().dropped_foreign_keys.empty());
  EXPECT_TRUE(gen.last_report().truncated_relations.empty());
  EXPECT_EQ(gen.last_report().total_tuples, 12u);
}

TEST_F(StrategyTest, TruncationIsReported) {
  ResultDatabaseGenerator gen(&db_);
  auto result =
      gen.Generate(*schema_, AllDirectorSeeds(), *MaxTuplesPerRelation(2));
  ASSERT_TRUE(result.ok());
  const DbGenReport& report = gen.last_report();
  // Both D (3 seeds, budget 2) and M were cut.
  EXPECT_EQ(report.truncated_relations.size(), 2u);
}

TEST_F(StrategyTest, SeedSubsetRespectsBudget) {
  ResultDatabaseGenerator gen(&db_);
  auto result =
      gen.Generate(*schema_, AllDirectorSeeds(), *MaxTuplesPerRelation(1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Column(*result, "D", "did"),
            (std::vector<Value>{Value(int64_t{1})}));
}

TEST_F(StrategyTest, MaxTotalTuplesSharedAcrossRelations) {
  ResultDatabaseGenerator gen(&db_);
  auto result =
      gen.Generate(*schema_, AllDirectorSeeds(), *MaxTotalTuples(4));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->TotalTuples(), 4u);
  EXPECT_EQ((*result->GetRelation("D"))->num_tuples(), 3u);
  EXPECT_EQ((*result->GetRelation("M"))->num_tuples(), 1u);
}

TEST_F(StrategyTest, ZeroBudgetYieldsEmptyButWellFormedDatabase) {
  ResultDatabaseGenerator gen(&db_);
  auto result =
      gen.Generate(*schema_, AllDirectorSeeds(), *MaxTotalTuples(0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->TotalTuples(), 0u);
  EXPECT_TRUE(result->HasRelation("D"));
  EXPECT_TRUE(result->HasRelation("M"));
}

TEST_F(StrategyTest, DuplicateSeedTidsCollapse) {
  ResultDatabaseGenerator gen(&db_);
  SeedTids seeds = {{d_id_, {0, 0, 1, 0}}};
  auto result = gen.Generate(*schema_, seeds, *UnlimitedCardinality());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result->GetRelation("D"))->num_tuples(), 2u);
}

TEST_F(StrategyTest, SeedRelationOutsideSchemaRejected) {
  ResultDatabaseGenerator gen(&db_);
  RelationNodeId m_id = *graph_->RelationId("M");
  ResultSchemaGenerator schema_gen(graph_.get());
  // Schema around D only (path length 1 keeps M out).
  auto schema = schema_gen.Generate({std::string("D")}, *MaxPathLength(1));
  ASSERT_TRUE(schema.ok());
  SeedTids seeds = {{m_id, {0}}};
  EXPECT_TRUE(gen.Generate(*schema, seeds, *UnlimitedCardinality())
                  .status()
                  .IsInvalidArgument());
}

TEST_F(StrategyTest, JoinAttributesProjectedIntoResultByDefault) {
  ResultDatabaseGenerator gen(&db_);
  auto result =
      gen.Generate(*schema_, AllDirectorSeeds(), *UnlimitedCardinality());
  ASSERT_TRUE(result.ok());
  // Result schema projected only dname/title, but the join attributes did
  // are carried ("these will not show in the final answer").
  EXPECT_TRUE((*result->GetRelation("D"))->schema().HasAttribute("did"));
  EXPECT_TRUE((*result->GetRelation("M"))->schema().HasAttribute("did"));
  // Primary key survives where its attribute survives.
  EXPECT_TRUE(
      (*result->GetRelation("D"))->schema().primary_key().has_value());
}

TEST_F(StrategyTest, JoinAttributesCanBeExcluded) {
  ResultDatabaseGenerator gen(&db_);
  DbGenOptions options;
  options.include_join_attributes = false;
  auto result = gen.Generate(*schema_, AllDirectorSeeds(),
                             *UnlimitedCardinality(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE((*result->GetRelation("D"))->schema().HasAttribute("did"));
  EXPECT_EQ((*result->GetRelation("M"))->schema().num_attributes(), 1u);
  // No FK can be declared without the join attributes; none dropped either
  // (they are simply not applicable).
  EXPECT_TRUE(result->foreign_keys().empty());
}

// ===== The paper's running example over the movies dataset =====

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 0;  // paper-example tuples only
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));

    ResultSchemaGenerator schema_gen(&dataset_->graph());
    auto schema = schema_gen.Generate({std::string("DIRECTOR"), "ACTOR"},
                                      *MinPathWeight(0.9));
    ASSERT_TRUE(schema.ok());
    schema_ = std::make_unique<ResultSchema>(std::move(*schema));

    // Seeds as the inverted index would return them for "Woody Allen":
    // DIRECTOR tid 0 and ACTOR tid 0.
    seeds_ = {{*dataset_->graph().RelationId("DIRECTOR"), {0}},
              {*dataset_->graph().RelationId("ACTOR"), {0}}};
  }

  std::unique_ptr<MoviesDataset> dataset_;
  std::unique_ptr<ResultSchema> schema_;
  SeedTids seeds_;
};

TEST_F(PaperExampleTest, CardinalityThreeSelectsTheThreeNewestMovies) {
  ResultDatabaseGenerator gen(&dataset_->db());
  auto result = gen.Generate(*schema_, seeds_, *MaxTuplesPerRelation(3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Column(*result, "MOVIE", "title"),
            (std::vector<Value>{Value("Match Point"),
                                Value("Melinda and Melinda"),
                                Value("Anything Else")}));
}

TEST_F(PaperExampleTest, InDegreePostponementOrdersGenreLast) {
  ResultDatabaseGenerator gen(&dataset_->db());
  ASSERT_TRUE(
      gen.Generate(*schema_, seeds_, *MaxTuplesPerRelation(3)).ok());
  const std::vector<std::string>& edges = gen.last_report().executed_edges;
  ASSERT_EQ(edges.size(), 4u);
  // MOVIE -> GENRE must come after both arrivals at MOVIE.
  EXPECT_EQ(edges.back(), "MOVIE -> GENRE");
  EXPECT_EQ(edges[0], "DIRECTOR -> MOVIE");  // weight 1.0, accepted first
}

TEST_F(PaperExampleTest, GenerousBudgetCollectsWholeNeighbourhood) {
  ResultDatabaseGenerator gen(&dataset_->db());
  auto result = gen.Generate(*schema_, seeds_, *MaxTuplesPerRelation(100));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result->GetRelation("MOVIE"))->num_tuples(), 5u);
  EXPECT_EQ((*result->GetRelation("GENRE"))->num_tuples(), 9u);
  EXPECT_EQ((*result->GetRelation("CAST"))->num_tuples(), 2u);
  EXPECT_TRUE(result->ValidateForeignKeys().ok());
  EXPECT_TRUE(gen.last_report().dropped_foreign_keys.empty());
}

TEST_F(PaperExampleTest, DuplicateMoviesFromTwoPathsCollapse) {
  // Hollywood Ending (mid 4) and Jade Scorpion (mid 5) arrive both via
  // DIRECTOR -> MOVIE and via ACTOR -> CAST -> MOVIE; they must appear once.
  ResultDatabaseGenerator gen(&dataset_->db());
  auto result = gen.Generate(*schema_, seeds_, *MaxTuplesPerRelation(100));
  ASSERT_TRUE(result.ok());
  std::vector<Value> mids = Column(*result, "MOVIE", "mid");
  std::set<Value> distinct(mids.begin(), mids.end());
  EXPECT_EQ(distinct.size(), mids.size());
}

TEST_F(PaperExampleTest, ForeignKeyDroppedWhenParentsTruncated) {
  // Seed GENRE heavily but allow no MOVIE tuples: GENRE.mid -> MOVIE.mid
  // cannot hold and must be reported as dropped, not declared.
  ResultSchemaGenerator schema_gen(&dataset_->graph());
  auto schema =
      schema_gen.Generate({std::string("GENRE")}, *MinPathWeight(0.9));
  ASSERT_TRUE(schema.ok());
  RelationNodeId genre = *dataset_->graph().RelationId("GENRE");
  SeedTids seeds = {{genre, {0, 1, 2}}};
  ResultDatabaseGenerator gen(&dataset_->db());
  auto result = gen.Generate(*schema, seeds, *MaxTotalTuples(3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result->GetRelation("MOVIE"))->num_tuples(), 0u);
  ASSERT_EQ(gen.last_report().dropped_foreign_keys.size(), 1u);
  EXPECT_EQ(gen.last_report().dropped_foreign_keys[0],
            "GENRE.mid -> MOVIE.mid");
  EXPECT_TRUE(result->ValidateForeignKeys().ok());  // declared FKs hold
}

TEST_F(PaperExampleTest, EmptySeedsYieldEmptyDatabase) {
  ResultDatabaseGenerator gen(&dataset_->db());
  auto result = gen.Generate(*schema_, SeedTids{}, *MaxTuplesPerRelation(3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->TotalTuples(), 0u);
}

TEST_F(PaperExampleTest, DeterministicAcrossRuns) {
  ResultDatabaseGenerator gen(&dataset_->db());
  auto a = gen.Generate(*schema_, seeds_, *MaxTuplesPerRelation(3));
  auto b = gen.Generate(*schema_, seeds_, *MaxTuplesPerRelation(3));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->DescribeSchema(), b->DescribeSchema());
  EXPECT_EQ(Column(*a, "GENRE", "genre"), Column(*b, "GENRE", "genre"));
}

}  // namespace
}  // namespace precis
