#include <gtest/gtest.h>

#include <memory>

#include "datagen/movies_dataset.h"
#include "precis/database_generator.h"
#include "precis/schema_generator.h"

namespace precis {
namespace {

class SqlTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 0;  // paper example only
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
    ResultSchemaGenerator schema_gen(&dataset_->graph());
    auto schema = schema_gen.Generate({std::string("DIRECTOR"), "ACTOR"},
                                      *MinPathWeight(0.9));
    ASSERT_TRUE(schema.ok());
    schema_ = std::make_unique<ResultSchema>(std::move(*schema));
    seeds_ = {{*dataset_->graph().RelationId("DIRECTOR"), {0}},
              {*dataset_->graph().RelationId("ACTOR"), {0}}};
  }

  std::unique_ptr<MoviesDataset> dataset_;
  std::unique_ptr<ResultSchema> schema_;
  SeedTids seeds_;
};

TEST_F(SqlTraceTest, OffByDefault) {
  ResultDatabaseGenerator gen(&dataset_->db());
  ASSERT_TRUE(gen.Generate(*schema_, seeds_, *MaxTuplesPerRelation(3)).ok());
  EXPECT_TRUE(gen.last_report().sql_trace.empty());
}

TEST_F(SqlTraceTest, SeedQueriesTraceFirst) {
  ResultDatabaseGenerator gen(&dataset_->db());
  DbGenOptions options;
  options.trace_sql = true;
  ASSERT_TRUE(gen.Generate(*schema_, seeds_, *MaxTuplesPerRelation(100),
                           options)
                  .ok());
  const std::vector<std::string>& trace = gen.last_report().sql_trace;
  ASSERT_GE(trace.size(), 2u);
  // Seeds iterate in relation-id order: ACTOR before DIRECTOR.
  EXPECT_EQ(trace[0],
            "SELECT aid, aname FROM ACTOR WHERE rowid IN (0)");
  EXPECT_EQ(trace[1],
            "SELECT did, dname, blocation, bdate FROM DIRECTOR WHERE rowid "
            "IN (0)");
}

TEST_F(SqlTraceTest, RoundRobinEdgeTracesOneStatementPerKey) {
  ResultDatabaseGenerator gen(&dataset_->db());
  DbGenOptions options;
  options.trace_sql = true;
  options.strategy = SubsetStrategy::kRoundRobin;
  ASSERT_TRUE(gen.Generate(*schema_, seeds_, *MaxTuplesPerRelation(100),
                           options)
                  .ok());
  const std::vector<std::string>& trace = gen.last_report().sql_trace;
  // DIRECTOR -> MOVIE executes first after the two seed queries; Woody has
  // one did key -> one per-key statement.
  ASSERT_GE(trace.size(), 3u);
  EXPECT_EQ(trace[2],
            "SELECT mid, title, year, did FROM MOVIE WHERE did IN (1)");
  // MOVIE -> GENRE runs last, with one statement per collected movie.
  size_t genre_statements = 0;
  for (const std::string& sql : trace) {
    if (sql.find("FROM GENRE") != std::string::npos) ++genre_statements;
  }
  EXPECT_EQ(genre_statements, 5u);  // five movies collected
}

TEST_F(SqlTraceTest, NaiveQEdgeTracesSingleInListWithRowNum) {
  ResultDatabaseGenerator gen(&dataset_->db());
  DbGenOptions options;
  options.trace_sql = true;
  options.strategy = SubsetStrategy::kNaiveQ;
  ASSERT_TRUE(
      gen.Generate(*schema_, seeds_, *MaxTuplesPerRelation(3), options).ok());
  const std::vector<std::string>& trace = gen.last_report().sql_trace;
  bool found = false;
  for (const std::string& sql : trace) {
    if (sql == "SELECT mid, title, year, did FROM MOVIE WHERE did IN (1)"
              " AND RowNum <= 3") {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "trace:\n";
}

TEST_F(SqlTraceTest, TraceCountMatchesStatementCounter) {
  dataset_->db().ResetStats();
  ResultDatabaseGenerator gen(&dataset_->db());
  DbGenOptions options;
  options.trace_sql = true;
  ASSERT_TRUE(gen.Generate(*schema_, seeds_, *MaxTuplesPerRelation(100),
                           options)
                  .ok());
  EXPECT_EQ(gen.last_report().sql_trace.size(),
            dataset_->db().stats().statements);
}

}  // namespace
}  // namespace precis
