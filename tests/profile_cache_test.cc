#include <gtest/gtest.h>

#include <memory>

#include "datagen/movies_dataset.h"
#include "graph/weight_profile.h"
#include "precis/engine.h"

namespace precis {
namespace {

// --- ProfileRegistry ---

TEST(ProfileRegistryTest, RegisterAndApply) {
  ProfileRegistry registry;
  WeightProfile reviewer("reviewer");
  reviewer.SetJoin("MOVIE", "GENRE", 0.4);
  ASSERT_TRUE(registry.Register(std::move(reviewer)).ok());
  EXPECT_EQ(registry.size(), 1u);

  auto g = BuildMoviesGraph();
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(registry.Apply("reviewer", &*g).ok());
  EXPECT_DOUBLE_EQ(*g->JoinWeight("MOVIE", "GENRE"), 0.4);
}

TEST(ProfileRegistryTest, UnnamedProfileRejected) {
  ProfileRegistry registry;
  EXPECT_TRUE(registry.Register(WeightProfile()).IsInvalidArgument());
}

TEST(ProfileRegistryTest, UnknownProfileNotFound) {
  ProfileRegistry registry;
  auto g = BuildMoviesGraph();
  EXPECT_TRUE(registry.Get("nope").status().IsNotFound());
  EXPECT_TRUE(registry.Apply("nope", &*g).IsNotFound());
}

TEST(ProfileRegistryTest, ReRegisterReplaces) {
  ProfileRegistry registry;
  WeightProfile a("fan");
  a.SetJoin("MOVIE", "GENRE", 0.2);
  WeightProfile b("fan");
  b.SetJoin("MOVIE", "GENRE", 0.7);
  ASSERT_TRUE(registry.Register(std::move(a)).ok());
  ASSERT_TRUE(registry.Register(std::move(b)).ok());
  EXPECT_EQ(registry.size(), 1u);
  auto g = BuildMoviesGraph();
  ASSERT_TRUE(registry.Apply("fan", &*g).ok());
  EXPECT_DOUBLE_EQ(*g->JoinWeight("MOVIE", "GENRE"), 0.7);
}

TEST(ProfileRegistryTest, NamesSorted) {
  ProfileRegistry registry;
  ASSERT_TRUE(registry.Register(WeightProfile("zeta")).ok());
  ASSERT_TRUE(registry.Register(WeightProfile("alpha")).ok());
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"alpha", "zeta"}));
}

// --- Engine schema cache ---

class SchemaCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 30;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
    auto engine = PrecisEngine::Create(&dataset_->db(), &dataset_->graph());
    ASSERT_TRUE(engine.ok());
    engine_ = std::make_unique<PrecisEngine>(std::move(*engine));
  }

  std::unique_ptr<MoviesDataset> dataset_;
  std::unique_ptr<PrecisEngine> engine_;
};

TEST_F(SchemaCacheTest, DisabledByDefault) {
  ASSERT_TRUE(engine_
                  ->Answer(PrecisQuery{{"Woody Allen"}}, *MinPathWeight(0.9),
                           *MaxTuplesPerRelation(3))
                  .ok());
  EXPECT_EQ(engine_->schema_cache_hits(), 0u);
  EXPECT_EQ(engine_->schema_cache_misses(), 0u);
}

TEST_F(SchemaCacheTest, SecondIdenticalQueryHits) {
  engine_->set_schema_cache_enabled(true);
  auto d = MinPathWeight(0.9);
  auto c = MaxTuplesPerRelation(3);
  auto a = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c);
  auto b = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(engine_->schema_cache_misses(), 1u);
  EXPECT_EQ(engine_->schema_cache_hits(), 1u);
  EXPECT_EQ(a->database.DescribeSchema(), b->database.DescribeSchema());
}

TEST_F(SchemaCacheTest, DifferentTokensSameRelationsShareEntry) {
  engine_->set_schema_cache_enabled(true);
  auto d = MinPathWeight(0.9);
  auto c = MaxTuplesPerRelation(3);
  // Two different director names: both live only in DIRECTOR (and
  // possibly ACTOR for Woody) — use two movie titles for a clean case.
  ASSERT_TRUE(
      engine_->Answer(PrecisQuery{{"Match Point"}}, *d, *c).ok());
  ASSERT_TRUE(
      engine_->Answer(PrecisQuery{{"Anything Else"}}, *d, *c).ok());
  EXPECT_EQ(engine_->schema_cache_misses(), 1u);
  EXPECT_EQ(engine_->schema_cache_hits(), 1u);
}

TEST_F(SchemaCacheTest, DifferentConstraintsMiss) {
  engine_->set_schema_cache_enabled(true);
  auto c = MaxTuplesPerRelation(3);
  ASSERT_TRUE(engine_
                  ->Answer(PrecisQuery{{"Match Point"}}, *MinPathWeight(0.9),
                           *c)
                  .ok());
  ASSERT_TRUE(engine_
                  ->Answer(PrecisQuery{{"Match Point"}}, *MinPathWeight(0.5),
                           *c)
                  .ok());
  EXPECT_EQ(engine_->schema_cache_misses(), 2u);
  EXPECT_EQ(engine_->schema_cache_hits(), 0u);
}

TEST_F(SchemaCacheTest, CachedAnswerMatchesUncached) {
  auto d = MinPathWeight(0.8);
  auto c = MaxTuplesPerRelation(5);
  auto cold = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c);
  engine_->set_schema_cache_enabled(true);
  ASSERT_TRUE(engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c).ok());
  auto warm = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cold->schema.ToString(), warm->schema.ToString());
  EXPECT_EQ(cold->database.DescribeSchema(), warm->database.DescribeSchema());
}

TEST_F(SchemaCacheTest, ClearResetsEntriesButKeepsCounters) {
  engine_->set_schema_cache_enabled(true);
  auto d = MinPathWeight(0.9);
  auto c = MaxTuplesPerRelation(3);
  ASSERT_TRUE(engine_->Answer(PrecisQuery{{"Match Point"}}, *d, *c).ok());
  engine_->ClearSchemaCache();
  ASSERT_TRUE(engine_->Answer(PrecisQuery{{"Match Point"}}, *d, *c).ok());
  EXPECT_EQ(engine_->schema_cache_misses(), 2u);
}

}  // namespace
}  // namespace precis
