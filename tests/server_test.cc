// Tests for the HTTP front end (DESIGN.md §14), bottom-up:
//
//   1. json_lite: the strict request-body parser.
//   2. HttpRequestParser: incremental framing, keep-alive semantics, and
//      every rejection path (the parser must never be undefined on hostile
//      bytes — each failure has an HTTP status).
//   3. ParseQueryRequest: body schema -> ServiceRequest validation.
//   4. End-to-end over real sockets: byte-identity of served answers with
//      the in-process engine, backpressure as 503, deadlines as 504 partial
//      answers, keep-alive/pipelining, profile routing, /metrics, and a
//      concurrent-connection hammer meant to run under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/movies_dataset.h"
#include "precis/engine.h"
#include "precis/json_export.h"
#include "server/http.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/json_lite.h"
#include "server/request_parse.h"
#include "service/precis_service.h"

namespace precis {
namespace {

// ---------------------------------------------------------------------------
// json_lite

TEST(JsonLiteTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->boolean);
  EXPECT_FALSE(ParseJson("false")->boolean);
  auto n = ParseJson("-12.5e1");
  ASSERT_TRUE(n.ok());
  EXPECT_DOUBLE_EQ(n->number, -125.0);
  auto i = ParseJson("42");
  ASSERT_TRUE(i.ok());
  EXPECT_TRUE(i->is_integer);
  EXPECT_EQ(i->integer, 42);
  auto s = ParseJson("\"a\\nb\\u0041\"");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->string, "a\nbA");
}

TEST(JsonLiteTest, ParsesNestedStructures) {
  auto v = ParseJson(
      "{\"a\": [1, 2, {\"b\": null}], \"c\": {\"d\": \"e\"}, \"f\": true}");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[0].integer, 1);
  EXPECT_TRUE(a->array[2].Find("b")->is_null());
  EXPECT_EQ(v->Find("c")->Find("d")->string, "e");
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonLiteTest, SurrogatePairDecodesToUtf8) {
  auto v = ParseJson("\"\\uD83D\\uDE00\"");  // 😀
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string, "\xF0\x9F\x98\x80");
}

TEST(JsonLiteTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{}extra").ok());     // trailing garbage
  EXPECT_FALSE(ParseJson("01").ok());          // leading zero
  EXPECT_FALSE(ParseJson("{'a': 1}").ok());    // single quotes
  EXPECT_FALSE(ParseJson("\"a\nb\"").ok());    // raw control char
  EXPECT_FALSE(ParseJson("[1,]").ok());        // trailing comma
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());   // missing colon
  EXPECT_FALSE(ParseJson("\"\\uD83D\"").ok()); // lone surrogate
}

TEST(JsonLiteTest, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

// ---------------------------------------------------------------------------
// HttpRequestParser

HttpRequestParser FedWith(const std::string& bytes, size_t chunk = 0) {
  HttpRequestParser parser;
  if (chunk == 0) {
    parser.Feed(bytes.data(), bytes.size());
  } else {
    for (size_t i = 0; i < bytes.size(); i += chunk) {
      parser.Feed(bytes.data() + i, std::min(chunk, bytes.size() - i));
    }
  }
  return parser;
}

TEST(HttpParserTest, ParsesSimpleGet) {
  auto parser = FedWith("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_TRUE(parser.request().keep_alive);  // 1.1 default
  ASSERT_NE(parser.request().FindHeader("host"), nullptr);
  EXPECT_EQ(*parser.request().FindHeader("HOST"), "x");
}

TEST(HttpParserTest, ByteAtATimeFeedMatchesOneShot) {
  std::string raw =
      "POST /query HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
  auto parser = FedWith(raw, 1);
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().body, "body");
}

TEST(HttpParserTest, KeepAliveSemantics) {
  EXPECT_FALSE(FedWith("GET / HTTP/1.0\r\n\r\n").request().keep_alive);
  EXPECT_TRUE(
      FedWith("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
          .request()
          .keep_alive);
  EXPECT_FALSE(FedWith("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                   .request()
                   .keep_alive);
}

TEST(HttpParserTest, PipelinedRequestsSurviveReset) {
  std::string two =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  auto parser = FedWith(two);
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().target, "/a");
  parser.ResetForNext();
  ASSERT_TRUE(parser.complete());  // surplus re-parsed immediately
  EXPECT_EQ(parser.request().target, "/b");
  parser.ResetForNext();
  EXPECT_FALSE(parser.complete());
  EXPECT_TRUE(parser.buffer_empty());
}

TEST(HttpParserTest, RejectionStatuses) {
  struct Case {
    const char* raw;
    int status;
  } cases[] = {
      {"GET / HTTP/2.0\r\n\r\n", 505},
      {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
      {"POST / HTTP/1.1\r\n\r\n", 411},  // no Content-Length
      {"GET\r\n\r\n", 400},
      {"GET / HTTP/1.1\r\nBad Name: x\r\n\r\n", 400},  // space in name
      {"GET / HTTP/1.1\r\nContent-Length: 9999999999999\r\n\r\n", 413},
  };
  for (const Case& c : cases) {
    auto parser = FedWith(c.raw);
    EXPECT_TRUE(parser.failed()) << c.raw;
    EXPECT_EQ(parser.error_status(), c.status) << c.raw;
  }
}

TEST(HttpParserTest, OversizedHeadersRejectedWith431) {
  HttpParserLimits limits;
  limits.max_header_bytes = 128;
  HttpRequestParser parser(limits);
  std::string raw = "GET / HTTP/1.1\r\nX-Pad: " + std::string(200, 'a');
  parser.Feed(raw.data(), raw.size());
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, OversizedBodyRejectedWith413) {
  HttpParserLimits limits;
  limits.max_body_bytes = 8;
  HttpRequestParser parser(limits);
  std::string raw = "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
  parser.Feed(raw.data(), raw.size());
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 413);
}

// ---------------------------------------------------------------------------
// ParseQueryRequest

TEST(RequestParseTest, FullBodyMapsEveryKnob) {
  auto parsed = ParseQueryRequest(
      "{\"tokens\": [\"Woody Allen\", \"Comedy\"], \"min_path_weight\": 0.7,"
      " \"max_projections\": 9, \"tuples_per_relation\": 5,"
      " \"deadline_ms\": 250, \"budget\": 1000, \"parallelism\": 4,"
      " \"strategy\": \"roundrobin\", \"profile\": \"boost\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ServiceRequest& r = parsed->request;
  ASSERT_EQ(r.query.tokens.size(), 2u);
  EXPECT_EQ(r.query.tokens[0], "Woody Allen");
  EXPECT_DOUBLE_EQ(r.min_path_weight, 0.7);
  EXPECT_EQ(r.max_projections, 9u);
  EXPECT_EQ(r.tuples_per_relation, 5u);
  EXPECT_DOUBLE_EQ(r.deadline_seconds, 0.25);
  EXPECT_EQ(r.access_budget, 1000u);
  EXPECT_EQ(r.options.parallelism, 4u);
  EXPECT_EQ(r.options.strategy, SubsetStrategy::kRoundRobin);
  EXPECT_EQ(parsed->profile, "boost");
}

TEST(RequestParseTest, MinimalBodyUsesDefaults) {
  auto parsed = ParseQueryRequest("{\"tokens\":[\"x\"]}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->request.deadline_seconds, 0.0);
  EXPECT_EQ(parsed->request.options.parallelism, 1u);  // DbGen default
  EXPECT_TRUE(parsed->profile.empty());
}

TEST(RequestParseTest, RejectsBadBodies) {
  EXPECT_FALSE(ParseQueryRequest("not json").ok());
  EXPECT_FALSE(ParseQueryRequest("[1,2]").ok());        // not an object
  EXPECT_FALSE(ParseQueryRequest("{}").ok());           // no tokens
  EXPECT_FALSE(ParseQueryRequest("{\"tokens\":[]}").ok());
  EXPECT_FALSE(ParseQueryRequest("{\"tokens\":[42]}").ok());
  EXPECT_FALSE(ParseQueryRequest("{\"tokens\":[\"\"]}").ok());
  EXPECT_FALSE(
      ParseQueryRequest("{\"tokens\":[\"x\"],\"deadline_ms\":-1}").ok());
  EXPECT_FALSE(
      ParseQueryRequest("{\"tokens\":[\"x\"],\"budget\":1.5}").ok());
  EXPECT_FALSE(
      ParseQueryRequest("{\"tokens\":[\"x\"],\"strategy\":\"bogus\"}").ok());
  EXPECT_FALSE(
      ParseQueryRequest("{\"tokens\":[\"x\"],\"parallelism\":65}").ok());
}

TEST(RequestParseTest, EnforcesTokenLimits) {
  QueryRequestLimits limits;
  std::string many = "{\"tokens\":[";
  for (size_t i = 0; i <= limits.max_tokens; ++i) {
    if (i > 0) many += ",";
    many += "\"t\"";
  }
  many += "]}";
  EXPECT_FALSE(ParseQueryRequest(many).ok());
  std::string fat = "{\"tokens\":[\"" +
                    std::string(limits.max_token_bytes + 1, 'a') + "\"]}";
  EXPECT_FALSE(ParseQueryRequest(fat).ok());
}

// ---------------------------------------------------------------------------
// End-to-end over real sockets

const MoviesDataset& TestDataset() {
  static const MoviesDataset* dataset = [] {
    MoviesConfig config;
    config.num_movies = 50;
    auto ds = MoviesDataset::Create(config);
    if (!ds.ok()) std::abort();
    return new MoviesDataset(std::move(*ds));
  }();
  return *dataset;
}

/// Engine + two services ("default" and "boost" profiles) + server.
struct Harness {
  Harness() = default;
  Harness(Harness&&) = default;
  Harness& operator=(Harness&&) = default;

  std::unique_ptr<PrecisEngine> engine;
  std::unique_ptr<PrecisService> service;
  std::unique_ptr<PrecisService> boost_service;
  std::unique_ptr<HttpServer> server;

  static Harness Start(PrecisService::Options service_options =
                           PrecisService::Options(),
                       HttpServer::Options server_options =
                           HttpServer::Options()) {
    Harness h;
    auto engine =
        PrecisEngine::Create(&TestDataset().db(), &TestDataset().graph());
    EXPECT_TRUE(engine.ok());
    h.engine = std::make_unique<PrecisEngine>(std::move(*engine));
    auto service = PrecisService::Create(h.engine.get(), service_options);
    EXPECT_TRUE(service.ok());
    h.service = std::move(*service);
    auto boost = PrecisService::Create(h.engine.get());
    EXPECT_TRUE(boost.ok());
    h.boost_service = std::move(*boost);
    auto server = HttpServer::Create(
        {{"default", h.service.get()}, {"boost", h.boost_service.get()}},
        server_options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    h.server = std::move(*server);
    return h;
  }

  HttpClient Client() {
    auto client = HttpClient::Connect("127.0.0.1", server->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  ~Harness() {
    // Server first (it still routes into the services), then workers.
    if (server) server->Stop();
  }
};

TEST(HttpServerTest, RequiresDefaultProfile) {
  auto engine =
      PrecisEngine::Create(&TestDataset().db(), &TestDataset().graph());
  ASSERT_TRUE(engine.ok());
  auto service = PrecisService::Create(&*engine);
  ASSERT_TRUE(service.ok());
  auto server =
      HttpServer::Create({{"boost", service->get()}}, HttpServer::Options());
  EXPECT_FALSE(server.ok());
}

TEST(HttpServerTest, HealthzAndMetrics) {
  Harness h = Harness::Start();
  HttpClient client = h.Client();

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok\n");

  auto head = client.Request("HEAD", "/healthz", "");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->status, 200);
  EXPECT_TRUE(head->body.empty());

  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  auto parsed = ParseJson(metrics->body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n"
                           << metrics->body;
  ASSERT_NE(parsed->Find("server"), nullptr);
  const JsonValue* profiles = parsed->Find("profiles");
  ASSERT_NE(profiles, nullptr);
  EXPECT_NE(profiles->Find("default"), nullptr);
  EXPECT_NE(profiles->Find("boost"), nullptr);
}

TEST(HttpServerTest, ServedAnswerIsByteIdenticalToInProcess) {
  Harness h = Harness::Start();
  const std::string body =
      "{\"tokens\":[\"Woody Allen\"],\"tuples_per_relation\":4,"
      "\"min_path_weight\":0.5}";

  // The in-process answer for the *same* request JSON through the same
  // parser — the acceptance gate for the whole front end.
  auto parsed = ParseQueryRequest(body);
  ASSERT_TRUE(parsed.ok());
  ServiceResponse local = h.service->Execute(std::move(parsed->request));
  ASSERT_TRUE(local.status.ok());
  const std::string expected = AnswerToJson(*local.answer);

  HttpClient client = h.Client();
  auto served = client.Post("/query", body);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  ASSERT_EQ(served->status, 200);
  EXPECT_EQ(served->body, expected);
  ASSERT_NE(served->FindHeader("X-Precis-Stop-Reason"), nullptr);
  EXPECT_EQ(*served->FindHeader("X-Precis-Stop-Reason"), "none");
  ASSERT_NE(served->FindHeader("Content-Type"), nullptr);
  EXPECT_EQ(*served->FindHeader("Content-Type"), "application/json");
}

TEST(HttpServerTest, CacheHitServesIdenticalBytesToMissRender) {
  // With the engine caches on, the first /query renders and memoizes the
  // body; the repeat is served from the body cache through the zero-copy
  // write path (DESIGN.md §16). The wire bytes must not change.
  Harness h = Harness::Start();
  h.engine->set_caches_enabled(true);
  const std::string body =
      "{\"tokens\":[\"Woody Allen\"],\"tuples_per_relation\":4}";
  HttpClient client = h.Client();
  auto miss = client.Post("/query", body);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  ASSERT_EQ(miss->status, 200);
  auto hit = client.Post("/query", body);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  ASSERT_EQ(hit->status, 200);
  EXPECT_EQ(hit->body, miss->body);
  // The repeat actually came from the memoized render.
  EXPECT_GE(h.engine->body_cache_stats().hits, 1u);
  // And both agree with a fresh in-process render of the same request.
  auto parsed = ParseQueryRequest(body);
  ASSERT_TRUE(parsed.ok());
  ServiceResponse local = h.service->Execute(std::move(parsed->request));
  ASSERT_TRUE(local.status.ok());
  EXPECT_EQ(hit->body, AnswerToJson(*local.answer));
}

TEST(HttpServerTest, ErrorRouting) {
  Harness h = Harness::Start();
  HttpClient client = h.Client();

  auto bad = client.Post("/query", "{\"tokens\":");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
  EXPECT_NE(bad->body.find("\"error\""), std::string::npos);

  auto no_tokens = client.Post("/query", "{}");
  ASSERT_TRUE(no_tokens.ok());
  EXPECT_EQ(no_tokens->status, 400);

  auto unknown_profile = client.Post(
      "/query", "{\"tokens\":[\"x\"],\"profile\":\"nope\"}");
  ASSERT_TRUE(unknown_profile.ok());
  EXPECT_EQ(unknown_profile->status, 404);

  auto wrong_method = client.Get("/query");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);

  auto nowhere = client.Get("/nope");
  ASSERT_TRUE(nowhere.ok());
  EXPECT_EQ(nowhere->status, 404);
}

TEST(HttpServerTest, MalformedHttpGets400AndClose) {
  Harness h = Harness::Start();
  HttpClient client = h.Client();
  ASSERT_TRUE(client.SendRaw("BOGUS\r\n\r\n").ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 400);
  // The server must close after a stream error.
  EXPECT_FALSE(client.connected());
  EXPECT_GE(h.server->metrics().parse_errors, 1u);
}

TEST(HttpServerTest, KeepAliveServesSequentialRequests) {
  Harness h = Harness::Start();
  HttpClient client = h.Client();
  for (int i = 0; i < 3; ++i) {
    auto response = client.Post("/query", "{\"tokens\":[\"Comedy\"]}");
    ASSERT_TRUE(response.ok()) << i << ": " << response.status().ToString();
    EXPECT_EQ(response->status, 200);
    ASSERT_TRUE(client.connected());
  }
  EXPECT_EQ(h.server->metrics().connections_accepted, 1u);
}

TEST(HttpServerTest, PipelinedRequestsAnswerInOrder) {
  Harness h = Harness::Start();
  HttpClient client = h.Client();
  ASSERT_TRUE(client
                  .SendRaw("GET /healthz HTTP/1.1\r\n\r\n"
                           "GET /metrics HTTP/1.1\r\n\r\n")
                  .ok());
  auto first = client.ReadResponse();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->body, "ok\n");
  auto second = client.ReadResponse();
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->body.find("\"profiles\""), std::string::npos);
}

TEST(HttpServerTest, ProfileRoutesToItsService) {
  Harness h = Harness::Start();
  HttpClient client = h.Client();
  auto response = client.Post(
      "/query", "{\"tokens\":[\"Comedy\"],\"profile\":\"boost\"}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(h.boost_service->metrics().queries_served, 1u);
  EXPECT_EQ(h.service->metrics().queries_served, 0u);
}

TEST(HttpServerTest, DeadlineExceededServes504WithPartialBody) {
  PrecisService::Options options;
  options.num_workers = 1;
  Harness h = Harness::Start(options);
  HttpClient client = h.Client();
  // A deadline this tight trips during generation; the paper's contract
  // (and the service's) is a well-formed partial answer, which the front
  // end must mark 504, not drop.
  auto response = client.Post(
      "/query", "{\"tokens\":[\"Woody Allen\"],\"deadline_ms\":0.001}");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 504);
  ASSERT_NE(response->FindHeader("X-Precis-Stop-Reason"), nullptr);
  EXPECT_EQ(*response->FindHeader("X-Precis-Stop-Reason"),
            "deadline exceeded");
  auto body = ParseJson(response->body);
  ASSERT_TRUE(body.ok()) << "504 body must still be a well-formed answer";
  EXPECT_NE(body->Find("report"), nullptr);
}

TEST(HttpServerTest, OverloadShedsWith503NotQueueing) {
  PrecisService::Options options;
  options.num_workers = 1;
  options.max_queue_depth = 1;
  Harness h = Harness::Start(options);

  // A burst of concurrent queries against a single worker with a one-deep
  // admission queue: most must be shed with 503, every response must be
  // well-formed, and nothing may crash or queue unboundedly.
  constexpr int kClients = 8;
  constexpr int kPerClient = 4;
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      auto client = HttpClient::Connect("127.0.0.1", h.server->port());
      if (!client.ok()) {
        other.fetch_add(kPerClient);
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        auto response = client->Post(
            "/query",
            "{\"tokens\":[\"Woody Allen\"],\"tuples_per_relation\":10}");
        if (!response.ok()) {
          other.fetch_add(1);
        } else if (response->status == 200) {
          ok.fetch_add(1);
        } else if (response->status == 503) {
          shed.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(shed.load(), 0) << "a 32-request burst against depth-1 admission "
                               "must shed";
  EXPECT_EQ(ok.load() + shed.load(), kClients * kPerClient);
  EXPECT_EQ(h.server->metrics().responses_503,
            static_cast<uint64_t>(shed.load()));
  EXPECT_EQ(h.service->metrics().queries_shed,
            static_cast<uint64_t>(shed.load()));
}

TEST(HttpServerTest, ConcurrentMixedTrafficIsClean) {
  Harness h = Harness::Start();
  constexpr int kThreads = 6;
  constexpr int kPerThread = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = HttpClient::Connect("127.0.0.1", h.server->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kPerThread; ++i) {
        auto response = [&]() -> Result<HttpClientResponse> {
          switch ((t + i) % 3) {
            case 0:
              return client->Get("/healthz");
            case 1:
              return client->Get("/metrics");
            default:
              return client->Post("/query", "{\"tokens\":[\"Comedy\"]}");
          }
        }();
        if (!response.ok() || response->status != 200) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(h.server->metrics().requests_total,
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(HttpServerTest, StopWhileClientsConnectedIsGraceful) {
  Harness h = Harness::Start();
  HttpClient idle = h.Client();  // connected, no request in flight
  auto busy = h.Client();
  auto response = busy.Get("/healthz");
  ASSERT_TRUE(response.ok());
  h.server->Stop();  // must not hang on the idle connection
  EXPECT_EQ(h.server->metrics().connections_open, 0u);
}

// ---------------------------------------------------------------------------
// Slowloris defense, drain mode, and socket chaos (DESIGN.md §17).

TEST(HttpServerTest, SlowlorisTrickleGets431MidHeader) {
  HttpServer::Options server_options;
  server_options.idle_timeout_seconds = 0.8;
  Harness h = Harness::Start(PrecisService::Options(), server_options);
  HttpClient client = h.Client();
  ASSERT_TRUE(client.SendRaw("POST /query HTTP/1.1\r\n").ok());
  // Trickle header bytes: every write refreshes the *idle* clock, but the
  // request-completion clock started at the first partial byte and is never
  // reset — the classic slowloris hold-open must still be cut off. The
  // trickle ends well before the bound so no write races the server's
  // close (a late write would RST away the buffered 431).
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(client.SendRaw("X").ok()) << i;
  }
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 431);
  EXPECT_FALSE(client.connected());
  EXPECT_GE(h.server->metrics().slow_client_timeouts, 1u);
}

TEST(HttpServerTest, MidBodyStallGets431) {
  HttpServer::Options server_options;
  server_options.idle_timeout_seconds = 0.3;
  Harness h = Harness::Start(PrecisService::Options(), server_options);
  HttpClient client = h.Client();
  // Complete headers, Content-Length promising more body than ever comes.
  ASSERT_TRUE(client
                  .SendRaw("POST /query HTTP/1.1\r\n"
                           "Content-Type: application/json\r\n"
                           "Content-Length: 64\r\n"
                           "\r\n"
                           "{\"tokens\":[\"Wood")
                  .ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 431);
  EXPECT_FALSE(client.connected());
  EXPECT_GE(h.server->metrics().slow_client_timeouts, 1u);
}

TEST(HttpServerTest, DrainFlipsHealthzTo503ButKeepsServing) {
  Harness h = Harness::Start();
  EXPECT_FALSE(h.server->draining());
  h.server->BeginDrain();
  EXPECT_TRUE(h.server->draining());

  // The load balancer's probe sees 503 + Connection: close...
  HttpClient probe = h.Client();
  auto health = probe.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 503);
  EXPECT_EQ(health->body, "draining\n");
  ASSERT_NE(health->FindHeader("Retry-After"), nullptr);
  ASSERT_NE(health->FindHeader("Connection"), nullptr);
  EXPECT_EQ(*health->FindHeader("Connection"), "close");

  // ...while queries and metrics keep serving until the actual Stop().
  HttpClient client = h.Client();
  auto served = client.Post("/query", "{\"tokens\":[\"Comedy\"]}");
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->status, 200);
  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("\"draining\":true"), std::string::npos);
}

TEST(ServerChaosConfigTest, ParsesSpecsClampsAndRejectsGarbage) {
  auto off = ServerChaosConfig::Parse("");
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off->enabled());

  auto full = ServerChaosConfig::Parse(
      "seed=7,accept=0.01,read=0.02,write=0.03,short=0.25");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->seed, 7u);
  EXPECT_DOUBLE_EQ(full->accept_error, 0.01);
  EXPECT_DOUBLE_EQ(full->read_error, 0.02);
  EXPECT_DOUBLE_EQ(full->write_error, 0.03);
  EXPECT_DOUBLE_EQ(full->short_write, 0.25);
  EXPECT_TRUE(full->enabled());

  auto clamped = ServerChaosConfig::Parse("read=7.5");
  ASSERT_TRUE(clamped.ok());
  EXPECT_DOUBLE_EQ(clamped->read_error, 1.0);

  EXPECT_FALSE(ServerChaosConfig::Parse("bogus=1").ok());
  EXPECT_FALSE(ServerChaosConfig::Parse("read").ok());
  EXPECT_FALSE(ServerChaosConfig::Parse("seed=abc").ok());
  EXPECT_FALSE(ServerChaosConfig::Parse("read=x").ok());
}

TEST(HttpServerTest, ChaosShortWritesStillServeExactBytes) {
  // Every flush truncated to a tiny prefix: the writev resume path must
  // still deliver byte-perfect responses, just in more rounds.
  HttpServer::Options server_options;
  server_options.chaos_spec = "seed=1,short=1.0";
  Harness h = Harness::Start(PrecisService::Options(), server_options);

  const std::string body =
      "{\"tokens\":[\"Woody Allen\"],\"tuples_per_relation\":4}";
  auto parsed = ParseQueryRequest(body);
  ASSERT_TRUE(parsed.ok());
  ServiceResponse local = h.service->Execute(std::move(parsed->request));
  ASSERT_TRUE(local.status.ok());
  const std::string expected = AnswerToJson(*local.answer);

  HttpClient client = h.Client();
  for (int i = 0; i < 3; ++i) {
    auto served = client.Post("/query", body);
    ASSERT_TRUE(served.ok()) << i << ": " << served.status().ToString();
    EXPECT_EQ(served->status, 200);
    EXPECT_EQ(served->body, expected) << i;
  }
  EXPECT_GT(h.server->metrics().chaos_short_writes, 0u);
}

TEST(HttpServerTest, ChaosReadErrorsResetConnections) {
  HttpServer::Options server_options;
  server_options.chaos_spec = "seed=2,read=1.0";
  Harness h = Harness::Start(PrecisService::Options(), server_options);
  HttpClient client = h.Client();
  ASSERT_TRUE(client.SendRaw("GET /healthz HTTP/1.1\r\n\r\n").ok());
  // The injected read fault resets the connection before any response.
  auto response = client.ReadResponse();
  EXPECT_FALSE(response.ok());
  EXPECT_GE(h.server->metrics().chaos_read_errors, 1u);
}

}  // namespace
}  // namespace precis
