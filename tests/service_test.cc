#include "service/precis_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "datagen/movies_dataset.h"
#include "precis/engine.h"
#include "precis/json_export.h"

namespace precis {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 200;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
    auto engine = PrecisEngine::Create(&dataset_->db(), &dataset_->graph());
    ASSERT_TRUE(engine.ok());
    engine_ = std::make_unique<PrecisEngine>(std::move(*engine));
  }

  ServiceRequest MakeRequest(const std::string& token) {
    ServiceRequest request;
    request.query.tokens = {token};
    request.min_path_weight = 0.9;
    request.tuples_per_relation = 5;
    return request;
  }

  std::unique_ptr<MoviesDataset> dataset_;
  std::unique_ptr<PrecisEngine> engine_;
};

TEST_F(ServiceTest, RejectsNullEngine) {
  EXPECT_FALSE(PrecisService::Create(nullptr).ok());
}

TEST_F(ServiceTest, RejectsResponseTimeTargetWithoutCostParameters) {
  PrecisService::Options options;
  options.response_time_target_seconds = 0.5;  // but cost_params all zero
  EXPECT_FALSE(PrecisService::Create(engine_.get(), options).ok());
}

TEST_F(ServiceTest, ExecuteMatchesDirectEngineAnswer) {
  auto d = MinPathWeight(0.9);
  auto c = MaxTuplesPerRelation(5);
  auto direct = engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c);
  ASSERT_TRUE(direct.ok());

  auto service = PrecisService::Create(engine_.get());
  ASSERT_TRUE(service.ok());
  ServiceResponse response = (*service)->Execute(MakeRequest("Woody Allen"));
  ASSERT_TRUE(response.status.ok());
  ASSERT_NE(response.answer, nullptr);
  EXPECT_EQ(response.stop_reason, StopReason::kNone);
  EXPECT_EQ(response.answer->database.DescribeSchema(),
            direct->database.DescribeSchema());
  EXPECT_GE(response.latency_seconds, 0.0);
}

TEST_F(ServiceTest, RenderBodyReturnsSerializedAnswerOnlyWhenAsked) {
  auto service = PrecisService::Create(engine_.get());
  ASSERT_TRUE(service.ok());
  // Default: embedded callers pay no serialization.
  ServiceResponse plain = (*service)->Execute(MakeRequest("Woody Allen"));
  ASSERT_TRUE(plain.status.ok());
  EXPECT_EQ(plain.body_json, nullptr);
  // render_body: the response carries the exact AnswerToJson bytes.
  ServiceRequest request = MakeRequest("Woody Allen");
  request.render_body = true;
  ServiceResponse rendered = (*service)->Execute(std::move(request));
  ASSERT_TRUE(rendered.status.ok());
  ASSERT_NE(rendered.body_json, nullptr);
  EXPECT_EQ(*rendered.body_json, AnswerToJson(*rendered.answer));
}

TEST_F(ServiceTest, ResponsesCarryPerStageSpans) {
  auto service = PrecisService::Create(engine_.get());
  ASSERT_TRUE(service.ok());
  ServiceResponse response = (*service)->Execute(MakeRequest("Woody Allen"));
  ASSERT_TRUE(response.status.ok());
  std::vector<std::string> names;
  for (const TraceSpan& span : response.spans) names.push_back(span.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "match_tokens"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "schema_gen"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "db_gen"), names.end());
}

TEST_F(ServiceTest, PerQueryStatsSumToGlobalCounters) {
  // The load: several submitter threads, mixed tokens, one shared engine.
  // Each query's context observes only its own accesses; the database's
  // global counters observe everyone's. With nothing else running, the
  // per-query attribution must account for the global delta exactly.
  const std::vector<std::string> tokens = {"Woody Allen", "Match Point",
                                           "Comedy", "Drama",
                                           "Scarlett Johansson"};
  PrecisService::Options options;
  options.num_workers = 4;
  auto service = PrecisService::Create(engine_.get(), options);
  ASSERT_TRUE(service.ok());

  dataset_->db().ResetStats();
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 16;
  std::vector<std::thread> submitters;
  std::mutex sum_mutex;
  AccessStats per_query_sum;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        ServiceResponse response = (*service)->Execute(
            MakeRequest(tokens[(t + q) % tokens.size()]));
        if (!response.status.ok()) {
          ++failures;
          continue;
        }
        std::lock_guard<std::mutex> lock(sum_mutex);
        per_query_sum += response.stats;
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  ASSERT_EQ(failures.load(), 0);

  const AccessStats& global = dataset_->db().stats();
  EXPECT_EQ(per_query_sum.index_probes.load(std::memory_order_relaxed),
            global.index_probes.load(std::memory_order_relaxed));
  EXPECT_EQ(per_query_sum.tuple_fetches.load(std::memory_order_relaxed),
            global.tuple_fetches.load(std::memory_order_relaxed));
  EXPECT_EQ(per_query_sum.sequential_scans.load(std::memory_order_relaxed),
            global.sequential_scans.load(std::memory_order_relaxed));
  EXPECT_EQ(per_query_sum.statements.load(std::memory_order_relaxed),
            global.statements.load(std::memory_order_relaxed));

  // The service's own aggregate matches too.
  PrecisService::Metrics metrics = (*service)->metrics();
  EXPECT_EQ(metrics.queries_served,
            static_cast<uint64_t>(kThreads * kQueriesPerThread));
  EXPECT_EQ(metrics.total_stats.statements.load(std::memory_order_relaxed),
            global.statements.load(std::memory_order_relaxed));
}

TEST_F(ServiceTest, DeadlineExpiredQueriesReturnWellFormedPartialAnswers) {
  PrecisService::Options options;
  options.num_workers = 2;
  auto service = PrecisService::Create(engine_.get(), options);
  ASSERT_TRUE(service.ok());

  constexpr int kQueries = 20;
  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < kQueries; ++i) {
    ServiceRequest request = MakeRequest("Woody Allen");
    request.deadline_seconds = 1e-9;  // expired before the pipeline starts
    futures.push_back((*service)->Submit(std::move(request)));
  }
  int deadline_hits = 0;
  for (auto& future : futures) {
    ServiceResponse response = future.get();
    // A deadline is not an error: the query still yields a well-formed
    // (possibly empty) answer, flagged as partial.
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_NE(response.answer, nullptr);
    EXPECT_TRUE(response.answer->database.ValidateForeignKeys().ok());
    if (response.stop_reason == StopReason::kDeadlineExceeded) {
      ++deadline_hits;
      EXPECT_TRUE(response.partial());
      EXPECT_TRUE(response.answer->report.partial());
      EXPECT_EQ(response.answer->report.stop_reason,
                StopReason::kDeadlineExceeded);
    }
  }
  EXPECT_EQ(deadline_hits, kQueries);
  EXPECT_EQ((*service)->metrics().deadline_hits,
            static_cast<uint64_t>(kQueries));
}

TEST_F(ServiceTest, AccessBudgetTruncatesAndIsCounted) {
  auto service = PrecisService::Create(engine_.get());
  ASSERT_TRUE(service.ok());

  ServiceRequest request = MakeRequest("Woody Allen");
  request.access_budget = 1;
  ServiceResponse response = (*service)->Execute(std::move(request));
  ASSERT_TRUE(response.status.ok());
  ASSERT_NE(response.answer, nullptr);
  EXPECT_EQ(response.stop_reason, StopReason::kAccessBudgetExhausted);
  EXPECT_TRUE(response.answer->database.ValidateForeignKeys().ok());
  EXPECT_EQ((*service)->metrics().budget_truncations, 1u);

  // An untruncated run of the same query fetches strictly more.
  ServiceResponse full = (*service)->Execute(MakeRequest("Woody Allen"));
  ASSERT_TRUE(full.status.ok());
  EXPECT_GT(full.stats.tuple_fetches.load(std::memory_order_relaxed),
            response.stats.tuple_fetches.load(std::memory_order_relaxed));
}

TEST_F(ServiceTest, ResponseTimeTargetDerivesDefaultBudget) {
  PrecisService::Options options;
  options.num_workers = 1;
  // Formula 3 with an absurdly tight target: the derived budget is tiny, so
  // every query truncates.
  options.response_time_target_seconds = 2e-9;
  options.cost_params.index_time_seconds = 1e-9;
  options.cost_params.tuple_time_seconds = 1e-9;
  auto service = PrecisService::Create(engine_.get(), options);
  ASSERT_TRUE(service.ok());
  ServiceResponse response = (*service)->Execute(MakeRequest("Woody Allen"));
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.stop_reason, StopReason::kAccessBudgetExhausted);
}

TEST_F(ServiceTest, BatchResolvesEveryFutureInOrder) {
  const std::vector<std::string> tokens = {"Woody Allen", "Match Point",
                                           "Comedy"};
  PrecisService::Options options;
  options.num_workers = 3;
  auto service = PrecisService::Create(engine_.get(), options);
  ASSERT_TRUE(service.ok());

  std::vector<ServiceRequest> batch;
  for (int i = 0; i < 12; ++i) {
    batch.push_back(MakeRequest(tokens[i % tokens.size()]));
  }
  auto futures = (*service)->SubmitBatch(std::move(batch));
  ASSERT_EQ(futures.size(), 12u);
  for (size_t i = 0; i < futures.size(); ++i) {
    ServiceResponse response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << "request " << i;
    ASSERT_NE(response.answer, nullptr);
    // Order is preserved: future i answers request i's token.
    EXPECT_EQ(response.answer->matches.at(0).token,
              tokens[i % tokens.size()]);
  }
}

TEST_F(ServiceTest, ShutdownDrainsQueuedWorkAndRejectsNewWork) {
  PrecisService::Options options;
  options.num_workers = 2;
  auto service = PrecisService::Create(engine_.get(), options);
  ASSERT_TRUE(service.ok());

  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back((*service)->Submit(MakeRequest("Woody Allen")));
  }
  (*service)->Shutdown();
  (*service)->Shutdown();  // idempotent
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());  // accepted work was drained
  }
  ServiceResponse rejected = (*service)->Execute(MakeRequest("Comedy"));
  EXPECT_FALSE(rejected.status.ok());
  EXPECT_EQ(rejected.answer, nullptr);
}

TEST_F(ServiceTest, MetricsPercentilesAreOrdered) {
  auto service = PrecisService::Create(engine_.get());
  ASSERT_TRUE(service.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*service)->Execute(MakeRequest("Woody Allen")).status.ok());
  }
  PrecisService::Metrics metrics = (*service)->metrics();
  EXPECT_EQ(metrics.queries_served, 10u);
  EXPECT_EQ(metrics.failures, 0u);
  EXPECT_GT(metrics.p50_latency_seconds, 0.0);
  EXPECT_LE(metrics.p50_latency_seconds, metrics.p99_latency_seconds);
  EXPECT_GE(metrics.total_latency_seconds, metrics.p99_latency_seconds);
  EXPECT_GT(metrics.span_seconds.count("db_gen"), 0u);
}

}  // namespace
}  // namespace precis
