#include "common/symbol_table.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace precis {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable table;
  SymbolId a = table.Intern("Woody Allen");
  SymbolId b = table.Intern("Woody Allen");
  SymbolId c = table.Intern("Diane Keaton");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(table.str(a), "Woody Allen");
  EXPECT_EQ(table.str(c), "Diane Keaton");
}

TEST(SymbolTableTest, EmptyStringInterns) {
  SymbolTable table;
  SymbolId id = table.Intern("");
  EXPECT_EQ(table.str(id), "");
  EXPECT_EQ(table.Intern(""), id);
}

TEST(SymbolTableTest, HashMatchesStdHashOfBytes) {
  // Value::Hash() depends on this equivalence byte-for-byte: the memoized
  // hash must be exactly std::hash<std::string> of the interned bytes.
  SymbolTable table;
  for (const char* s : {"", "a", "Woody Allen", "sci-fi", "1977"}) {
    SymbolId id = table.Intern(s);
    EXPECT_EQ(table.hash(id), std::hash<std::string>{}(std::string(s))) << s;
  }
}

TEST(SymbolTableTest, StrReferenceIsStableAcrossGrowth) {
  SymbolTable table;
  SymbolId first = table.Intern("stable");
  const std::string* before = &table.str(first);
  // Force many blocks worth of interning.
  for (int i = 0; i < 50000; ++i) table.Intern("sym" + std::to_string(i));
  EXPECT_EQ(&table.str(first), before);
  EXPECT_EQ(table.str(first), "stable");
}

TEST(SymbolTableTest, StatsCountSymbolsAndBytes) {
  SymbolTable table;
  table.Intern("abc");
  table.Intern("defgh");
  table.Intern("abc");  // hit: counts as an intern, not a new symbol
  SymbolTableStats s = table.stats();
  EXPECT_EQ(s.symbols, 2u);
  EXPECT_EQ(s.bytes, 8u);
  EXPECT_EQ(s.interns, 3u);
  EXPECT_GE(s.blocks, 1u);
}

TEST(SymbolTableTest, GlobalIsSingleton) {
  EXPECT_EQ(SymbolTable::Global(), SymbolTable::Global());
}

// Run under TSan (ci.sh leg 3): concurrent interners racing on the same
// and different strings while readers resolve ids through str()/hash().
TEST(SymbolTableTest, ConcurrentInternAndLookup) {
  SymbolTable table;
  constexpr int kThreads = 8;
  constexpr int kStrings = 4000;
  std::vector<std::thread> threads;
  std::vector<std::vector<SymbolId>> ids(kThreads,
                                         std::vector<SymbolId>(kStrings));
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &ids, t] {
      for (int i = 0; i < kStrings; ++i) {
        // Half the keys are shared across threads (contended), half are
        // thread-private — covers both the hit and the miss-insert path.
        std::string s = (i % 2 == 0)
                            ? "shared" + std::to_string(i)
                            : "t" + std::to_string(t) + "_" + std::to_string(i);
        SymbolId id = table.Intern(s);
        ids[t][i] = id;
        // Read back through the wait-free path immediately.
        EXPECT_EQ(table.str(id), s);
        EXPECT_EQ(table.hash(id), std::hash<std::string>{}(s));
      }
    });
  }
  for (auto& th : threads) th.join();
  // Shared keys resolved to one id everywhere.
  for (int i = 0; i < kStrings; i += 2) {
    for (int t = 1; t < kThreads; ++t) EXPECT_EQ(ids[t][i], ids[0][i]);
  }
  SymbolTableStats s = table.stats();
  // kStrings/2 shared + kThreads * kStrings/2 private distinct symbols.
  EXPECT_EQ(s.symbols, kStrings / 2 + kThreads * (kStrings / 2));
  EXPECT_EQ(s.interns, uint64_t(kThreads) * kStrings);
}

}  // namespace
}  // namespace precis
