#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "storage/database.h"
#include "text/inverted_index.h"
#include "text/tokenizer.h"

namespace precis {
namespace {

// --- Tokenizer ---

TEST(TokenizerTest, LowercasesAndSplits) {
  EXPECT_EQ(TokenizeWords("Woody Allen"),
            (std::vector<std::string>{"woody", "allen"}));
}

TEST(TokenizerTest, StripsPunctuation) {
  EXPECT_EQ(TokenizeWords("Match Point (2005)!"),
            (std::vector<std::string>{"match", "point", "2005"}));
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords("  \t\n -- ").empty());
}

TEST(TokenizerTest, DigitsAreWords) {
  EXPECT_EQ(TokenizeWords("2005"), (std::vector<std::string>{"2005"}));
}

TEST(TokenizerTest, ContainsPhraseMatchesContiguous) {
  EXPECT_TRUE(ContainsPhrase("Woody Allen", {"woody", "allen"}));
  EXPECT_TRUE(ContainsPhrase("the great Woody Allen movie",
                             {"woody", "allen"}));
  EXPECT_FALSE(ContainsPhrase("Allen Woody", {"woody", "allen"}));
  EXPECT_FALSE(ContainsPhrase("Woody x Allen", {"woody", "allen"}));
}

TEST(TokenizerTest, ContainsPhraseEmptyNeverMatches) {
  EXPECT_FALSE(ContainsPhrase("anything", {}));
}

TEST(TokenizerTest, ContainsPhraseCaseAndPunctuationInsensitive) {
  EXPECT_TRUE(ContainsPhrase("WOODY ALLEN!", {"woody", "allen"}));
}

// --- InvertedIndex ---

class InvertedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RelationSchema director("DIRECTOR", {{"did", DataType::kInt64},
                                         {"dname", DataType::kString}});
    ASSERT_TRUE(director.SetPrimaryKey("did").ok());
    ASSERT_TRUE(db_.CreateRelation(std::move(director)).ok());
    RelationSchema actor("ACTOR", {{"aid", DataType::kInt64},
                                   {"aname", DataType::kString},
                                   {"bio", DataType::kString}});
    ASSERT_TRUE(actor.SetPrimaryKey("aid").ok());
    ASSERT_TRUE(db_.CreateRelation(std::move(actor)).ok());

    auto director_rel = db_.GetRelation("DIRECTOR");
    ASSERT_TRUE((*director_rel)->Insert({int64_t{1}, "Woody Allen"}).ok());
    ASSERT_TRUE((*director_rel)->Insert({int64_t{2}, "Spike Jonze"}).ok());
    ASSERT_TRUE((*director_rel)->Insert({int64_t{3}, "Allen Hughes"}).ok());
    auto actor_rel = db_.GetRelation("ACTOR");
    ASSERT_TRUE((*actor_rel)
                    ->Insert({int64_t{1}, "Woody Allen",
                              "Director and actor Woody Allen"})
                    .ok());
    ASSERT_TRUE(
        (*actor_rel)->Insert({int64_t{2}, "Tim Allen", Value::Null()}).ok());

    auto index = InvertedIndex::Build(db_);
    ASSERT_TRUE(index.ok());
    index_ = std::make_unique<InvertedIndex>(std::move(*index));
  }

  Database db_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(InvertedIndexTest, SingleWordFindsAllOccurrences) {
  auto occ = *index_->Lookup("allen");
  // Grouped by (relation, attribute): ACTOR.aname {0,1}, ACTOR.bio {0},
  // DIRECTOR.dname {0,2}.
  ASSERT_EQ(occ.size(), 3u);
  EXPECT_EQ(occ[0].relation, "ACTOR");
  EXPECT_EQ(occ[0].attribute, "aname");
  EXPECT_EQ(occ[0].tids, (std::vector<Tid>{0, 1}));
  EXPECT_EQ(occ[1].relation, "ACTOR");
  EXPECT_EQ(occ[1].attribute, "bio");
  EXPECT_EQ(occ[2].relation, "DIRECTOR");
  EXPECT_EQ(occ[2].tids, (std::vector<Tid>{0, 2}));
}

TEST_F(InvertedIndexTest, PhraseRequiresContiguousOrder) {
  auto occ = *index_->Lookup("Woody Allen");
  ASSERT_EQ(occ.size(), 3u);  // ACTOR.aname, ACTOR.bio, DIRECTOR.dname
  for (const auto& o : occ) {
    if (o.relation == "DIRECTOR") {
      EXPECT_EQ(o.tids, (std::vector<Tid>{0}));  // not "Allen Hughes"
    }
  }
  // "Allen Woody" never appears in that order.
  EXPECT_TRUE(index_->Lookup("Allen Woody")->empty());
}

TEST_F(InvertedIndexTest, LookupIsCaseInsensitive) {
  EXPECT_EQ(index_->Lookup("WOODY ALLEN")->size(),
            index_->Lookup("woody allen")->size());
}

TEST_F(InvertedIndexTest, UnknownTokenIsEmpty) {
  EXPECT_TRUE(index_->Lookup("scorsese")->empty());
  EXPECT_TRUE(index_->Lookup("")->empty());
}

TEST_F(InvertedIndexTest, PartiallyUnknownPhraseIsEmpty) {
  EXPECT_TRUE(index_->Lookup("woody scorsese")->empty());
}

TEST_F(InvertedIndexTest, LookupAllPreservesQueryOrder) {
  auto all = index_->LookupAll({"jonze", "nosuchtoken", "woody"});
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->size(), 1u);
  EXPECT_TRUE(all[1]->empty());
  EXPECT_FALSE(all[2]->empty());
}

TEST_F(InvertedIndexTest, NumWordsAndPostings) {
  EXPECT_GT(index_->num_words(), 0u);
  EXPECT_GT(index_->num_postings(), index_->num_words() / 2);
}

TEST_F(InvertedIndexTest, WordRepeatedInOneValueIndexedOnce) {
  // "Woody Allen" appears twice in the bio value; the posting must hold the
  // location once (lookup result tid lists stay duplicate-free).
  auto occ = *index_->Lookup("woody");
  for (const auto& o : occ) {
    std::set<Tid> dedup(o.tids.begin(), o.tids.end());
    EXPECT_EQ(dedup.size(), o.tids.size());
  }
}

TEST(InvertedIndexEdgeTest, NonStringAttributesIgnored) {
  Database db;
  RelationSchema nums("NUMS", {{"id", DataType::kInt64},
                               {"v", DataType::kDouble}});
  ASSERT_TRUE(db.CreateRelation(std::move(nums)).ok());
  auto rel = db.GetRelation("NUMS");
  ASSERT_TRUE((*rel)->Insert({int64_t{1}, 2.5}).ok());
  auto index = InvertedIndex::Build(db);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_words(), 0u);
  EXPECT_TRUE(index->Lookup("1")->empty());
}

TEST(InvertedIndexEdgeTest, EmptyDatabase) {
  Database db;
  auto index = InvertedIndex::Build(db);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->Lookup("anything")->empty());
}

}  // namespace
}  // namespace precis
