// Fuzz-lite: seeded random inputs against every parser in the codebase.
//
// Not a coverage-guided fuzzer — a deterministic robustness sweep: random
// byte soup and mutated near-valid inputs must always produce either a
// well-formed result or an error Status, never a crash or a hang.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "datagen/movies_dataset.h"
#include "precis/engine.h"
#include "precis/json_export.h"
#include "semistructured/document.h"
#include "semistructured/shredder.h"
#include "shard/sharded_engine.h"
#include "storage/serialization.h"
#include "translator/catalog.h"
#include "translator/template.h"

namespace precis {
namespace {

/// Random strings over an alphabet that stresses each grammar's special
/// characters.
std::string RandomSoup(Rng* rng, const std::string& alphabet, size_t max_len) {
  size_t len = static_cast<size_t>(rng->Uniform(0, static_cast<int64_t>(max_len)));
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(alphabet[rng->Index(alphabet.size())]);
  }
  return out;
}

/// Mutates a valid input: deletes, duplicates or flips random characters.
std::string Mutate(const std::string& base, Rng* rng, int edits) {
  std::string out = base;
  for (int e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = rng->Index(out.size());
    switch (rng->Uniform(0, 2)) {
      case 0:
        out.erase(pos, 1);
        break;
      case 1:
        out.insert(pos, 1, out[pos]);
        break;
      default:
        out[pos] = static_cast<char>('!' + rng->Index(90));
    }
  }
  return out;
}

class FuzzLiteTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzLiteTest, TemplateParserNeverCrashes) {
  Rng rng(GetParam());
  const std::string alphabet = "@$%[](){}<>=i aARITYOFupperX_1\"\\";
  for (int i = 0; i < 400; ++i) {
    std::string input = RandomSoup(&rng, alphabet, 60);
    auto t = Template::Parse(input);
    if (t.ok()) {
      // Parsed templates must also evaluate (or error) without crashing.
      TemplateContext ctx;
      auto rendered = t->Evaluate(ctx, nullptr);
      (void)rendered;
    }
  }
}

TEST_P(FuzzLiteTest, TemplateMutationsOfValidSource) {
  Rng rng(GetParam() + 1000);
  const std::string base =
      "[i<arityof(@TITLE)]{@TITLE[$i$] (@YEAR[$i$]), }"
      "[i=arityof(@TITLE)]{@TITLE[$i$].} %MACRO% $upper(@X)$";
  for (int i = 0; i < 400; ++i) {
    std::string input = Mutate(base, &rng, 1 + static_cast<int>(rng.Index(5)));
    auto t = Template::Parse(input);
    if (t.ok()) {
      TemplateContext ctx;
      TemplateCatalog catalog;
      auto rendered = t->Evaluate(ctx, &catalog);
      (void)rendered;
    }
  }
}

TEST_P(FuzzLiteTest, DocumentParserNeverCrashes) {
  Rng rng(GetParam() + 2000);
  const std::string alphabet = "<>/=\"& ampltgquot;abX-_!";
  for (int i = 0; i < 400; ++i) {
    std::string input = RandomSoup(&rng, alphabet, 80);
    auto doc = ParseDocument(input);
    if (doc.ok()) {
      // Anything that parses must shred-or-error and re-render cleanly.
      auto xml = (*doc)->ToXml();
      EXPECT_FALSE(xml.empty());
      auto shredded = ShreddedDocument::Shred(**doc);
      (void)shredded;
    }
  }
}

TEST_P(FuzzLiteTest, DocumentMutationsOfValidSource) {
  Rng rng(GetParam() + 3000);
  const std::string base =
      "<lib name=\"x\"><b isbn=\"1\"><t>A &amp; B</t></b><b isbn=\"2\"/>"
      "</lib>";
  for (int i = 0; i < 400; ++i) {
    std::string input = Mutate(base, &rng, 1 + static_cast<int>(rng.Index(4)));
    auto doc = ParseDocument(input);
    if (doc.ok()) {
      auto again = ParseDocument((*doc)->ToXml());
      EXPECT_TRUE(again.ok());  // re-rendering is always reparseable
    }
  }
}

TEST_P(FuzzLiteTest, SerializationLoaderNeverCrashes) {
  Rng rng(GetParam() + 4000);
  const std::string base =
      "PRECISDB 1\nDATABASE d\nRELATION R 2\nATTR a INT64 PK\n"
      "ATTR b STRING\nINDEX R a\nDATA R 2\n1\thello\n2\t\\N\n";
  for (int i = 0; i < 300; ++i) {
    std::string input = Mutate(base, &rng, 1 + static_cast<int>(rng.Index(6)));
    std::istringstream in(input);
    auto db = LoadDatabase(&in);
    if (db.ok()) {
      // A successfully loaded database must be internally consistent.
      EXPECT_TRUE(db->ValidateForeignKeys().ok());
    }
  }
}

TEST_P(FuzzLiteTest, ChaosQueriesUnderInjectedFaultsNeverCrash) {
  // Fault-injection sweep over the movies workload (DESIGN.md §12): with
  // every storage site armed at p ∈ {0.01, 0.1}, randomized queries at
  // randomized parallelism must produce an OK (possibly degraded) answer or
  // the typed transient error — never a crash, hang, or malformed database —
  // and an identical rerun (same injector seed, same query) must reproduce
  // the identical outcome.
  MoviesConfig config;
  config.num_movies = 120;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto engine = PrecisEngine::Create(&ds->db(), &ds->graph());
  ASSERT_TRUE(engine.ok());

  const std::vector<std::string> tokens = {
      "Woody Allen", "Match Point",        "Comedy", "Drama",
      "London",      "Scarlett Johansson", "1996",   "nonexistent token"};
  const std::vector<size_t> fanouts = {1, 2, 8};

  Rng rng(GetParam() + 5000);
  FaultInjector injector(GetParam());
  for (double p : {0.01, 0.1}) {
    injector.SetAll(FaultSchedule::Probability(p));
    for (int i = 0; i < 25; ++i) {
      const std::string& token = tokens[rng.Index(tokens.size())];
      const size_t parallelism = fanouts[rng.Index(fanouts.size())];
      const uint64_t fault_seed = static_cast<uint64_t>(rng.Uniform(0, 1u << 20));

      auto run = [&]() -> std::string {
        injector.Reseed(fault_seed);
        ExecutionContext ctx;
        ctx.SetFaultInjector(&injector);
        RetryPolicy policy;
        policy.initial_backoff_ns = 0;  // decisions only; no sleeping
        ctx.set_retry_policy(policy);
        auto degree = MinPathWeight(0.9);
        auto cardinality = MaxTuplesPerRelation(4);
        DbGenOptions options;
        options.parallelism = parallelism;
        auto answer = engine->Answer(PrecisQuery{{token}}, *degree,
                                     *cardinality, options, &ctx);
        if (!answer.ok()) {
          // The only failure the injector can surface is the typed
          // transient error.
          EXPECT_TRUE(answer.status().IsUnavailable())
              << answer.status().ToString();
          return "error:" + answer.status().ToString();
        }
        EXPECT_TRUE(answer->database.ValidateForeignKeys().ok());
        EXPECT_TRUE(answer->report.fault_tainted);
        return AnswerToJson(*answer) + "|" +
               answer->report.degradation.ToString();
      };
      std::string first = run();
      std::string again = run();
      EXPECT_EQ(first, again)
          << "p=" << p << " token=" << token << " parallelism=" << parallelism
          << " fault_seed=" << fault_seed;
    }
  }
}

TEST_P(FuzzLiteTest, ShardedChaosMatchesSingleEngineUnderFaults) {
  // The sharded arm of the chaos sweep: the same randomized fault-injected
  // queries against a scatter-gather engine must not merely be stable
  // across reruns — every run must produce the byte-identical outcome the
  // single engine produces for the same injector seed (the coordinator
  // replays the identical fault-check sequence; DESIGN.md §15).
  MoviesConfig config;
  config.num_movies = 120;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto engine = PrecisEngine::Create(&ds->db(), &ds->graph());
  ASSERT_TRUE(engine.ok());
  std::vector<std::unique_ptr<ShardedPrecisEngine>> sharded;
  for (size_t n : {2u, 5u}) {
    auto e = ShardedPrecisEngine::Create(ds->db(), &ds->graph(), n);
    ASSERT_TRUE(e.ok());
    sharded.push_back(std::move(*e));
  }

  const std::vector<std::string> tokens = {
      "Woody Allen", "Match Point", "Comedy", "Drama",
      "London",      "1996",        "nonexistent token"};

  Rng rng(GetParam() + 6000);
  FaultInjector injector(GetParam());
  injector.SetAll(FaultSchedule::Probability(0.05));
  for (int i = 0; i < 12; ++i) {
    const std::string& token = tokens[rng.Index(tokens.size())];
    const uint64_t fault_seed = static_cast<uint64_t>(rng.Uniform(0, 1u << 20));

    auto run = [&](const ShardedPrecisEngine* shard_engine) -> std::string {
      injector.Reseed(fault_seed);
      ExecutionContext ctx;
      ctx.SetFaultInjector(&injector);
      RetryPolicy policy;
      policy.initial_backoff_ns = 0;  // decisions only; no sleeping
      ctx.set_retry_policy(policy);
      auto degree = MinPathWeight(0.9);
      auto cardinality = MaxTuplesPerRelation(4);
      auto answer =
          shard_engine != nullptr
              ? shard_engine->Answer(PrecisQuery{{token}}, *degree,
                                     *cardinality, DbGenOptions(), &ctx)
              : engine->Answer(PrecisQuery{{token}}, *degree, *cardinality,
                               DbGenOptions(), &ctx);
      if (!answer.ok()) {
        EXPECT_TRUE(answer.status().IsUnavailable())
            << answer.status().ToString();
        return "error:" + answer.status().ToString();
      }
      EXPECT_TRUE(answer->database.ValidateForeignKeys().ok());
      return AnswerToJson(*answer) + "|" +
             answer->report.degradation.ToString();
    };
    const std::string expect = run(nullptr);
    for (const auto& shard_engine : sharded) {
      EXPECT_EQ(run(shard_engine.get()), expect)
          << "shards=" << shard_engine->num_shards() << " token=" << token
          << " fault_seed=" << fault_seed;
    }
  }
}

TEST_P(FuzzLiteTest, BodyCacheStaysCoherentUnderInsertQueryInterleavings) {
  // Randomized interleavings of inserts (each bumps a mutation epoch) and
  // repeated rendered queries against fully-cached engines — single and
  // sharded. Whatever the interleaving, the served body bytes must always
  // equal a fresh uncached render of the current database state: a stale
  // memoized body surviving an epoch bump is exactly the bug this hunts
  // (DESIGN.md §16).
  MoviesConfig config;
  config.num_movies = 120;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  auto cached = PrecisEngine::Create(&ds->db(), &ds->graph());
  ASSERT_TRUE(cached.ok());
  cached->set_caches_enabled(true);
  auto fresh = PrecisEngine::Create(&ds->db(), &ds->graph());
  ASSERT_TRUE(fresh.ok());
  auto sharded = ShardedPrecisEngine::Create(ds->db(), &ds->graph(), 3);
  ASSERT_TRUE(sharded.ok());
  (*sharded)->set_caches_enabled(true);

  auto genre = ds->db().GetRelation("GENRE");
  ASSERT_TRUE(genre.ok());
  auto movie = ds->db().GetRelation("MOVIE");
  ASSERT_TRUE(movie.ok());
  ASSERT_GT((*movie)->num_tuples(), 0u);

  const std::vector<std::string> tokens = {"Woody Allen", "Comedy", "Drama",
                                           "Match Point"};
  Rng rng(GetParam() + 7000);
  auto degree = MinPathWeight(0.9);
  auto cardinality = MaxTuplesPerRelation(4);
  int64_t next_gid = 5000000 + static_cast<int64_t>(GetParam()) * 10000;
  for (int i = 0; i < 30; ++i) {
    if (rng.Index(3) == 0) {
      // Mirror one insert into the source database (the single engines
      // read it directly) and the sharded engine's partitioned copy.
      int64_t mid = (*movie)->tuple(rng.Index((*movie)->num_tuples()))[0]
                        .AsInt64();
      Tuple tuple{Value(next_gid++), Value(mid), Value("fuzzwave")};
      auto src = (*genre)->Insert(tuple);
      ASSERT_TRUE(src.ok());
      ASSERT_TRUE((*sharded)->Insert("GENRE", std::move(tuple)).ok());
      continue;
    }
    const std::string& token = tokens[rng.Index(tokens.size())];
    auto expect = fresh->Answer(PrecisQuery{{token}}, *degree, *cardinality);
    ASSERT_TRUE(expect.ok());
    const std::string expected = AnswerToJson(*expect);

    auto single = cached->AnswerSharedRendered(PrecisQuery{{token}}, *degree,
                                               *cardinality);
    ASSERT_TRUE(single.ok());
    ASSERT_NE(single->body_json, nullptr);
    EXPECT_EQ(*single->body_json, expected)
        << "single engine served stale bytes for '" << token << "' at step "
        << i;
    auto shard = (*sharded)->AnswerSharedRendered(PrecisQuery{{token}},
                                                  *degree, *cardinality);
    ASSERT_TRUE(shard.ok());
    ASSERT_NE(shard->body_json, nullptr);
    EXPECT_EQ(*shard->body_json, expected)
        << "sharded engine served stale bytes for '" << token << "' at step "
        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLiteTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace precis
