#include "common/execution_context.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace precis {
namespace {

TEST(ExecutionContextTest, DefaultsAreUnbounded) {
  ExecutionContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.RemainingSeconds().has_value());
  EXPECT_EQ(ctx.access_budget(), 0u);
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_FALSE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kNone);
}

TEST(ExecutionContextTest, DeadlineExpires) {
  ExecutionContext ctx;
  ctx.SetDeadlineAfter(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(ctx.has_deadline());
  ASSERT_TRUE(ctx.RemainingSeconds().has_value());
  EXPECT_LT(*ctx.RemainingSeconds(), 0.0);
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kDeadlineExceeded);
}

TEST(ExecutionContextTest, NonPositiveDeadlineClears) {
  ExecutionContext ctx;
  ctx.SetDeadlineAfter(10.0);
  EXPECT_TRUE(ctx.has_deadline());
  ctx.SetDeadlineAfter(0.0);
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.ShouldStop());
}

TEST(ExecutionContextTest, GenerousDeadlineDoesNotStop) {
  ExecutionContext ctx;
  ctx.SetDeadlineAfter(3600.0);
  EXPECT_FALSE(ctx.ShouldStop());
  ASSERT_TRUE(ctx.RemainingSeconds().has_value());
  EXPECT_GT(*ctx.RemainingSeconds(), 0.0);
}

TEST(ExecutionContextTest, BudgetExhaustionStops) {
  ExecutionContext ctx;
  ctx.SetAccessBudget(3);
  ctx.ChargeIndexProbe();
  ctx.ChargeTupleFetch();
  EXPECT_FALSE(ctx.ShouldStop());
  ctx.ChargeSequentialScan();
  EXPECT_EQ(ctx.accesses_charged(), 3u);
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kAccessBudgetExhausted);
}

TEST(ExecutionContextTest, StatementsAreAttributedButNotBudgetCharged) {
  ExecutionContext ctx;
  ctx.SetAccessBudget(1);
  for (int i = 0; i < 100; ++i) ctx.ChargeStatement();
  // Formula 1 counts only I/O (index probes + tuple accesses), so
  // statements never exhaust the budget.
  EXPECT_FALSE(ctx.ShouldStop());
  EXPECT_EQ(ctx.accesses_charged(), 0u);
  EXPECT_EQ(ctx.stats().statements.load(std::memory_order_relaxed), 100u);
}

TEST(ExecutionContextTest, ChargesMirrorIntoStats) {
  ExecutionContext ctx;
  ctx.ChargeIndexProbe();
  ctx.ChargeIndexProbe();
  ctx.ChargeTupleFetch();
  ctx.ChargeSequentialScan();
  const AccessStats& stats = ctx.stats();
  EXPECT_EQ(stats.index_probes.load(std::memory_order_relaxed), 2u);
  EXPECT_EQ(stats.tuple_fetches.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(stats.sequential_scans.load(std::memory_order_relaxed), 1u);
}

TEST(ExecutionContextTest, FirstStopCauseIsLatched) {
  ExecutionContext ctx;
  ctx.Cancel();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kCancelled);
  // A later, different stop cause does not overwrite the first one.
  ctx.SetAccessBudget(1);
  ctx.ChargeIndexProbe();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kCancelled);
}

TEST(ExecutionContextTest, CancelFromAnotherThreadIsObserved) {
  ExecutionContext ctx;
  std::thread other([&ctx] { ctx.Cancel(); });
  other.join();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kCancelled);
}

TEST(ExecutionContextTest, FormulaThreeDerivesBudget) {
  ExecutionContext ctx;
  CostParameters params;
  params.index_time_seconds = 0.001;
  params.tuple_time_seconds = 0.001;
  // 10 ms buys 10ms / 2ms = 5 tuples; each tuple is one probe + one fetch.
  ASSERT_TRUE(ctx.SetBudgetFromResponseTime(params, 0.010).ok());
  EXPECT_EQ(ctx.access_budget(), 10u);
}

TEST(ExecutionContextTest, FormulaThreeRejectsBadInputs) {
  ExecutionContext ctx;
  CostParameters zero;
  EXPECT_FALSE(ctx.SetBudgetFromResponseTime(zero, 1.0).ok());
  CostParameters params;
  params.index_time_seconds = 0.001;
  params.tuple_time_seconds = 0.001;
  EXPECT_FALSE(ctx.SetBudgetFromResponseTime(params, -1.0).ok());
}

TEST(ExecutionContextTest, ScopedSpanRecordsCounterDeltas) {
  ExecutionContext ctx;
  ctx.ChargeIndexProbe();  // pre-span activity must not leak into the delta
  {
    ScopedSpan span(&ctx, "stage_a");
    ctx.ChargeIndexProbe();
    ctx.ChargeIndexProbe();
    ctx.ChargeTupleFetch();
    ctx.ChargeStatement();
  }
  std::vector<TraceSpan> spans = ctx.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "stage_a");
  EXPECT_GE(spans[0].seconds, 0.0);
  EXPECT_EQ(spans[0].index_probes, 2u);
  EXPECT_EQ(spans[0].tuple_fetches, 1u);
  EXPECT_EQ(spans[0].sequential_scans, 0u);
  EXPECT_EQ(spans[0].statements, 1u);
}

TEST(ExecutionContextTest, ScopedSpanCloseIsIdempotent) {
  ExecutionContext ctx;
  ScopedSpan span(&ctx, "once");
  span.Close();
  span.Close();  // destructor will close a third time
  EXPECT_EQ(ctx.spans().size(), 1u);
}

TEST(ExecutionContextTest, ScopedSpanOnNullContextIsInert) {
  ScopedSpan span(nullptr, "ignored");
  span.Close();  // no crash, nothing recorded anywhere
}

TEST(ExecutionContextTest, SpansAccumulateInCompletionOrder) {
  ExecutionContext ctx;
  { ScopedSpan a(&ctx, "first"); }
  { ScopedSpan b(&ctx, "second"); }
  std::vector<TraceSpan> spans = ctx.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "first");
  EXPECT_EQ(spans[1].name, "second");
}

}  // namespace
}  // namespace precis
