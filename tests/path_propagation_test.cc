#include <gtest/gtest.h>

#include <memory>

#include "datagen/movies_dataset.h"
#include "precis/database_generator.h"
#include "precis/schema_generator.h"

namespace precis {
namespace {

/// Two token relations A and B feed M; only the A-side path continues to G:
///
///   A --1.0--> M --0.9--> G          (A->M->G has weight 0.9: in P_d)
///   B --0.95-> M                     (B->M->G has weight 0.855: pruned)
///
/// Under the paper's simplified behaviour every M tuple drives M -> G;
/// path-aware propagation restricts the drive to M tuples that arrived via
/// A -> M (or via both).
class PathPropagationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto make = [&](const std::string& name,
                    std::vector<AttributeSchema> attrs,
                    const std::string& pk) {
      RelationSchema schema(name, std::move(attrs));
      ASSERT_TRUE(schema.SetPrimaryKey(pk).ok());
      ASSERT_TRUE(db_.CreateRelation(std::move(schema)).ok());
    };
    make("A", {{"aid", DataType::kInt64}}, "aid");
    make("B", {{"bid", DataType::kInt64}}, "bid");
    make("M",
         {{"mid", DataType::kInt64},
          {"aid", DataType::kInt64},
          {"bid", DataType::kInt64},
          {"tag", DataType::kString}},
         "mid");
    make("G", {{"gid", DataType::kInt64}, {"mid", DataType::kInt64}}, "gid");

    auto a = db_.GetRelation("A");
    auto b = db_.GetRelation("B");
    auto m = db_.GetRelation("M");
    auto g = db_.GetRelation("G");
    ASSERT_TRUE((*a)->Insert({int64_t{1}}).ok());
    ASSERT_TRUE((*b)->Insert({int64_t{1}}).ok());
    // m1 reachable from A only, m2 from B only, m3 from both.
    ASSERT_TRUE(
        (*m)->Insert({int64_t{1}, int64_t{1}, Value::Null(), "fromA"}).ok());
    ASSERT_TRUE(
        (*m)->Insert({int64_t{2}, Value::Null(), int64_t{1}, "fromB"}).ok());
    ASSERT_TRUE(
        (*m)->Insert({int64_t{3}, int64_t{1}, int64_t{1}, "fromBoth"}).ok());
    ASSERT_TRUE((*g)->Insert({int64_t{1}, int64_t{1}}).ok());
    ASSERT_TRUE((*g)->Insert({int64_t{2}, int64_t{2}}).ok());
    ASSERT_TRUE((*g)->Insert({int64_t{3}, int64_t{3}}).ok());
    ASSERT_TRUE((*m)->CreateIndex("aid").ok());
    ASSERT_TRUE((*m)->CreateIndex("bid").ok());
    ASSERT_TRUE((*g)->CreateIndex("mid").ok());

    auto graph = SchemaGraph::FromDatabase(db_);
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<SchemaGraph>(std::move(*graph));
    ASSERT_TRUE(graph_->AddProjectionEdge("A", "aid", 1.0).ok());
    ASSERT_TRUE(graph_->AddProjectionEdge("B", "bid", 1.0).ok());
    ASSERT_TRUE(graph_->AddProjectionEdge("M", "tag", 1.0).ok());
    ASSERT_TRUE(graph_->AddProjectionEdge("G", "gid", 1.0).ok());
    ASSERT_TRUE(graph_->AddJoinEdge("A", "aid", "M", "aid", 1.0).ok());
    ASSERT_TRUE(graph_->AddJoinEdge("B", "bid", "M", "bid", 0.95).ok());
    ASSERT_TRUE(graph_->AddJoinEdge("M", "mid", "G", "mid", 0.9).ok());

    ResultSchemaGenerator schema_gen(graph_.get());
    auto schema = schema_gen.Generate({std::string("A"), "B"},
                                      *MinPathWeight(0.9));
    ASSERT_TRUE(schema.ok());
    schema_ = std::make_unique<ResultSchema>(std::move(*schema));
    // Sanity: both arrivals at M present, G reached, M in-degree 2.
    ASSERT_EQ(schema_->join_edges().size(), 3u);
    ASSERT_EQ(schema_->in_degree(*graph_->RelationId("M")), 2);

    seeds_ = {{*graph_->RelationId("A"), {0}},
              {*graph_->RelationId("B"), {0}}};
  }

  std::vector<int64_t> Gids(const Database& result) {
    std::vector<int64_t> out;
    auto rel = result.GetRelation("G");
    auto idx = (*rel)->schema().AttributeIndex("gid");
    for (Tid tid = 0; tid < (*rel)->num_tuples(); ++tid) {
      out.push_back((*rel)->tuple(tid)[*idx].AsInt64());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  Database db_;
  std::unique_ptr<SchemaGraph> graph_;
  std::unique_ptr<ResultSchema> schema_;
  SeedTids seeds_;
};

TEST_F(PathPropagationTest, DefaultUsesEveryCollectedTuple) {
  ResultDatabaseGenerator gen(&db_);
  auto result = gen.Generate(*schema_, seeds_, *UnlimitedCardinality());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result->GetRelation("M"))->num_tuples(), 3u);
  // All three genres: m2's genre came along although no accepted path goes
  // B -> M -> G.
  EXPECT_EQ(Gids(*result), (std::vector<int64_t>{1, 2, 3}));
}

TEST_F(PathPropagationTest, PathAwareFiltersByFeedingPath) {
  ResultDatabaseGenerator gen(&db_);
  DbGenOptions options;
  options.path_aware_propagation = true;
  auto result =
      gen.Generate(*schema_, seeds_, *UnlimitedCardinality(), options);
  ASSERT_TRUE(result.ok());
  // M still holds all three tuples (both arrivals are in P_d paths)...
  EXPECT_EQ((*result->GetRelation("M"))->num_tuples(), 3u);
  // ...but only the A-fed tuples drive M -> G: m1 (A only) and m3 (both).
  EXPECT_EQ(Gids(*result), (std::vector<int64_t>{1, 3}));
}

TEST_F(PathPropagationTest, PathAwareKeepsForeignKeysValid) {
  ResultDatabaseGenerator gen(&db_);
  DbGenOptions options;
  options.path_aware_propagation = true;
  auto result =
      gen.Generate(*schema_, seeds_, *UnlimitedCardinality(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ValidateForeignKeys().ok());
}

TEST_F(PathPropagationTest, PathAwareAgreesWithDefaultWhenAllPathsContinue) {
  // Raise B -> M so that B -> M -> G enters P_d too: with every arrival
  // feeding every departure, both modes coincide.
  ASSERT_TRUE(graph_->SetJoinWeight("B", "M", 1.0).ok());
  ResultSchemaGenerator schema_gen(graph_.get());
  auto schema =
      schema_gen.Generate({std::string("A"), "B"}, *MinPathWeight(0.9));
  ASSERT_TRUE(schema.ok());

  ResultDatabaseGenerator gen(&db_);
  DbGenOptions aware;
  aware.path_aware_propagation = true;
  auto a = gen.Generate(*schema, seeds_, *UnlimitedCardinality(), aware);
  auto b = gen.Generate(*schema, seeds_, *UnlimitedCardinality());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Gids(*a), Gids(*b));
  EXPECT_EQ(a->DescribeSchema(), b->DescribeSchema());
}

TEST_F(PathPropagationTest, PaperExampleUnaffectedByPathAwareness) {
  // In the Fig. 4 setting every movie that can drive MOVIE -> GENRE arrives
  // via DIRECTOR -> MOVIE, so the two modes give the same answer.
  MoviesConfig config;
  config.num_movies = 0;
  auto ds = MoviesDataset::Create(config);
  ASSERT_TRUE(ds.ok());
  ResultSchemaGenerator schema_gen(&ds->graph());
  auto schema = schema_gen.Generate({std::string("DIRECTOR"), "ACTOR"},
                                    *MinPathWeight(0.9));
  ASSERT_TRUE(schema.ok());
  SeedTids seeds = {{*ds->graph().RelationId("DIRECTOR"), {0}},
                    {*ds->graph().RelationId("ACTOR"), {0}}};
  ResultDatabaseGenerator gen(&ds->db());
  DbGenOptions aware;
  aware.path_aware_propagation = true;
  auto a = gen.Generate(*schema, seeds, *MaxTuplesPerRelation(100), aware);
  auto b = gen.Generate(*schema, seeds, *MaxTuplesPerRelation(100));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->DescribeSchema(), b->DescribeSchema());
}

}  // namespace
}  // namespace precis
