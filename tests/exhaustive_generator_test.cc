#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "common/random.h"
#include "datagen/movies_dataset.h"
#include "graph/weight_profile.h"
#include "precis/exhaustive_generator.h"
#include "precis/schema_generator.h"

namespace precis {
namespace {

/// Order-insensitive comparison of two result schemas: same relations, same
/// projected attributes, same join-edge set, same in-degrees, same multiset
/// of accepted path weights (tie order between equal-weight paths may
/// legitimately differ between the two algorithms).
void ExpectEquivalent(const ResultSchema& a, const ResultSchema& b) {
  EXPECT_EQ(a.relations(), b.relations());
  for (RelationNodeId rel : a.relations()) {
    EXPECT_EQ(a.projected_attributes(rel), b.projected_attributes(rel))
        << "relation " << a.graph().relation_name(rel);
    EXPECT_EQ(a.in_degree(rel), b.in_degree(rel))
        << "relation " << a.graph().relation_name(rel);
  }
  std::set<const JoinEdge*> ea(a.join_edges().begin(), a.join_edges().end());
  std::set<const JoinEdge*> eb(b.join_edges().begin(), b.join_edges().end());
  EXPECT_EQ(ea, eb);

  std::multiset<double> wa, wb;
  for (const Path& p : a.projection_paths()) wa.insert(p.weight());
  for (const Path& p : b.projection_paths()) wb.insert(p.weight());
  EXPECT_EQ(wa, wb);
}

class ExhaustiveGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto g = BuildMoviesGraph();
    ASSERT_TRUE(g.ok());
    graph_ = std::make_unique<SchemaGraph>(std::move(*g));
  }

  std::unique_ptr<SchemaGraph> graph_;
};

TEST_F(ExhaustiveGeneratorTest, EnumeratesAllPathsOnce) {
  ExhaustiveSchemaGenerator gen(graph_.get());
  auto schema = gen.Generate({*graph_->RelationId("DIRECTOR")},
                             *MinPathWeight(0.0));
  ASSERT_TRUE(schema.ok());
  // With no pruning every enumerated path is accepted.
  EXPECT_EQ(schema->projection_paths().size(), gen.last_paths_enumerated());
  EXPECT_GT(gen.last_paths_enumerated(), 30u);
}

TEST_F(ExhaustiveGeneratorTest, PathsAreWeightSorted) {
  ExhaustiveSchemaGenerator gen(graph_.get());
  auto schema =
      gen.Generate({*graph_->RelationId("ACTOR")}, *MinPathWeight(0.3));
  ASSERT_TRUE(schema.ok());
  const std::vector<Path>& pd = schema->projection_paths();
  for (size_t i = 1; i < pd.size(); ++i) {
    EXPECT_GE(pd[i - 1].weight(), pd[i].weight());
  }
}

TEST_F(ExhaustiveGeneratorTest, MatchesBestFirstOnPaperExample) {
  ResultSchemaGenerator best_first(graph_.get());
  ExhaustiveSchemaGenerator exhaustive(graph_.get());
  std::vector<RelationNodeId> tokens = {*graph_->RelationId("DIRECTOR"),
                                        *graph_->RelationId("ACTOR")};
  auto a = best_first.Generate(tokens, *MinPathWeight(0.9));
  auto b = exhaustive.Generate(tokens, *MinPathWeight(0.9));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectEquivalent(*a, *b);
}

TEST_F(ExhaustiveGeneratorTest, RejectsBadTokenRelation) {
  ExhaustiveSchemaGenerator gen(graph_.get());
  EXPECT_TRUE(gen.Generate(std::vector<RelationNodeId>{999},
                           *MaxProjections(1))
                  .status()
                  .IsInvalidArgument());
}

/// Property sweep: best-first and exhaustive agree over random weight sets
/// and every degree-constraint form.
struct OracleCase {
  uint64_t weight_seed;
  int constraint_kind;  // 0: weight, 1: top-r, 2: length, 3: conjunction
  double w0;
  size_t r;
  size_t l0;
};

class OracleEquivalenceTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OracleEquivalenceTest, BestFirstMatchesExhaustive) {
  const OracleCase& param = GetParam();
  auto g = BuildMoviesGraph();
  ASSERT_TRUE(g.ok());
  Rng rng(param.weight_seed);
  ASSERT_TRUE(RandomizeWeights(&*g, &rng).ok());

  std::unique_ptr<DegreeConstraint> d;
  switch (param.constraint_kind) {
    case 0:
      d = MinPathWeight(param.w0);
      break;
    case 1:
      d = MaxProjections(param.r);
      break;
    case 2:
      d = MaxPathLength(param.l0);
      break;
    default: {
      std::vector<std::unique_ptr<DegreeConstraint>> parts;
      parts.push_back(MinPathWeight(param.w0));
      parts.push_back(MaxPathLength(param.l0));
      d = AllOf(std::move(parts));
    }
  }

  ResultSchemaGenerator best_first(&*g);
  ExhaustiveSchemaGenerator exhaustive(&*g);
  for (RelationNodeId r0 = 0; r0 < g->num_relations(); ++r0) {
    auto a = best_first.Generate(std::vector<RelationNodeId>{r0}, *d);
    auto b = exhaustive.Generate(std::vector<RelationNodeId>{r0}, *d);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // For top-r constraints, equal-weight ties at the cut boundary can
    // legitimately select different equally-ranked paths; compare only the
    // weight multiset then.
    if (param.constraint_kind == 1) {
      std::multiset<double> wa, wb;
      for (const Path& p : a->projection_paths()) wa.insert(p.weight());
      for (const Path& p : b->projection_paths()) wb.insert(p.weight());
      EXPECT_EQ(wa, wb) << "R0=" << g->relation_name(r0);
    } else {
      ExpectEquivalent(*a, *b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomWeights, OracleEquivalenceTest,
    ::testing::Values(OracleCase{11, 0, 0.5, 0, 0},
                      OracleCase{12, 0, 0.2, 0, 0},
                      OracleCase{13, 0, 0.8, 0, 0},
                      OracleCase{14, 1, 0, 5, 0},
                      OracleCase{15, 1, 0, 12, 0},
                      OracleCase{16, 2, 0, 0, 2},
                      OracleCase{17, 2, 0, 0, 3},
                      OracleCase{18, 3, 0.3, 0, 3},
                      OracleCase{19, 3, 0.6, 0, 2},
                      OracleCase{20, 0, 0.05, 0, 0}));

}  // namespace
}  // namespace precis
