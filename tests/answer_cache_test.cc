// The full-answer cache (DESIGN.md §10, level 3): hits share one immutable
// answer, epochs make every mutation invalidate, partial answers are never
// cached, and the byte budget evicts.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "datagen/movies_dataset.h"
#include "precis/engine.h"
#include "precis/json_export.h"

namespace precis {
namespace {

class AnswerCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MoviesConfig config;
    config.num_movies = 200;
    auto ds = MoviesDataset::Create(config);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<MoviesDataset>(std::move(*ds));
    auto engine = PrecisEngine::Create(&dataset_->db(), &dataset_->graph());
    ASSERT_TRUE(engine.ok());
    engine_ = std::make_unique<PrecisEngine>(std::move(*engine));
  }

  /// AnswerShared under the fixture's default constraints.
  std::shared_ptr<const PrecisAnswer> Shared(const std::string& token,
                                             ExecutionContext* ctx = nullptr) {
    auto d = MinPathWeight(0.9);
    auto c = MaxTuplesPerRelation(5);
    auto answer = engine_->AnswerShared(PrecisQuery{{token}}, *d, *c,
                                        DbGenOptions(), ctx);
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
    return answer.ok() ? *answer : nullptr;
  }

  /// A fresh, uncached build of the same query for equivalence checks.
  std::string FreshJson(const std::string& token) {
    auto d = MinPathWeight(0.9);
    auto c = MaxTuplesPerRelation(5);
    auto answer = engine_->Answer(PrecisQuery{{token}}, *d, *c);
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
    return answer.ok() ? AnswerToJson(*answer) : std::string();
  }

  /// Inserts one GENRE tuple joining an existing movie (bumps the database
  /// mutation epoch; FKs stay valid).
  void InsertGenre(int64_t n) {
    auto movie = dataset_->db().GetRelation("MOVIE");
    ASSERT_TRUE(movie.ok());
    ASSERT_GT((*movie)->num_tuples(), 0u);
    int64_t mid = (*movie)->tuple(0)[0].AsInt64();
    auto genre = dataset_->db().GetRelation("GENRE");
    ASSERT_TRUE(genre.ok());
    ASSERT_TRUE((*genre)->Insert({int64_t{900000000} + n, mid, "Testwave"})
                    .ok());
  }

  /// AnswerSharedRendered under the fixture's default constraints.
  RenderedAnswer Rendered(const std::string& token,
                          ExecutionContext* ctx = nullptr) {
    auto d = MinPathWeight(0.9);
    auto c = MaxTuplesPerRelation(5);
    auto rendered = engine_->AnswerSharedRendered(PrecisQuery{{token}}, *d, *c,
                                                  DbGenOptions(), ctx);
    EXPECT_TRUE(rendered.ok()) << rendered.status().ToString();
    return rendered.ok() ? *rendered : RenderedAnswer{};
  }

  std::unique_ptr<MoviesDataset> dataset_;
  std::unique_ptr<PrecisEngine> engine_;
};

TEST_F(AnswerCacheTest, HitReturnsTheSameSharedAnswer) {
  engine_->set_answer_cache_enabled(true);
  auto first = Shared("Woody Allen");
  auto second = Shared("Woody Allen");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());  // the very same stored object
  LruCacheStats stats = engine_->answer_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  // And the cached answer is exactly what an uncached build produces.
  EXPECT_EQ(AnswerToJson(*first), FreshJson("Woody Allen"));
}

TEST_F(AnswerCacheTest, DisabledCacheBuildsFreshAnswersWithoutCounting) {
  auto first = Shared("Woody Allen");
  auto second = Shared("Woody Allen");
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(first.get(), second.get());
  LruCacheStats stats = engine_->answer_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);  // full bypass, not misses
  EXPECT_EQ(AnswerToJson(*first), AnswerToJson(*second));
}

TEST_F(AnswerCacheTest, InsertInvalidatesCachedAnswers) {
  engine_->set_answer_cache_enabled(true);
  auto warm = Shared("Comedy");
  ASSERT_NE(warm, nullptr);
  InsertGenre(1);
  // The database epoch moved: the old entry is unreachable, the rebuild
  // agrees with a from-scratch uncached answer.
  auto after = Shared("Comedy");
  ASSERT_NE(after, nullptr);
  EXPECT_NE(warm.get(), after.get());
  EXPECT_EQ(AnswerToJson(*after), FreshJson("Comedy"));
  // The post-insert answer is itself cached under the new epoch.
  EXPECT_EQ(Shared("Comedy").get(), after.get());
}

TEST_F(AnswerCacheTest, EdgeWeightChangeInvalidatesCachedAnswers) {
  engine_->set_answer_cache_enabled(true);
  auto warm = Shared("Woody Allen");
  ASSERT_NE(warm, nullptr);
  ASSERT_TRUE(dataset_->graph().SetJoinWeight("MOVIE", "GENRE", 0.05).ok());
  auto after = Shared("Woody Allen");
  ASSERT_NE(after, nullptr);
  EXPECT_NE(warm.get(), after.get());  // weight epoch moved
  EXPECT_EQ(AnswerToJson(*after), FreshJson("Woody Allen"));
}

TEST_F(AnswerCacheTest, PartialAnswersAreNeverCached) {
  engine_->set_answer_cache_enabled(true);
  {
    ExecutionContext ctx;
    ctx.SetDeadlineAfter(1e-9);  // expired before the pipeline starts
    auto partial = Shared("Woody Allen", &ctx);
    ASSERT_NE(partial, nullptr);
    EXPECT_TRUE(partial->report.partial());
  }
  // The deadline-stopped build was not inserted...
  EXPECT_EQ(engine_->answer_cache_stats().inserts, 0u);
  // ...so an unconstrained caller gets a complete answer, not the stub.
  auto complete = Shared("Woody Allen");
  ASSERT_NE(complete, nullptr);
  EXPECT_FALSE(complete->report.partial());
  EXPECT_EQ(AnswerToJson(*complete), FreshJson("Woody Allen"));
}

TEST_F(AnswerCacheTest, TinyCapacityEvictsInsteadOfGrowing) {
  engine_->set_answer_cache_enabled(true);
  // A budget far below one answer's charge: every insert evicts itself.
  engine_->set_answer_cache_capacity(64);
  ASSERT_NE(Shared("Woody Allen"), nullptr);
  ASSERT_NE(Shared("Woody Allen"), nullptr);
  LruCacheStats stats = engine_->answer_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_GE(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST_F(AnswerCacheTest, TraceRunsBypassTheCache) {
  engine_->set_answer_cache_enabled(true);
  auto d = MinPathWeight(0.9);
  auto c = MaxTuplesPerRelation(5);
  DbGenOptions options;
  options.trace_sql = true;
  auto traced =
      engine_->AnswerShared(PrecisQuery{{"Woody Allen"}}, *d, *c, options);
  ASSERT_TRUE(traced.ok());
  EXPECT_FALSE((*traced)->report.sql_trace.empty());
  // Bypassed entirely: no lookup, no insert.
  LruCacheStats stats = engine_->answer_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.inserts, 0u);
  // A second traced run re-executes and carries its own trace.
  auto again =
      engine_->AnswerShared(PrecisQuery{{"Woody Allen"}}, *d, *c, options);
  ASSERT_TRUE(again.ok());
  EXPECT_NE((*traced).get(), (*again).get());
  EXPECT_FALSE((*again)->report.sql_trace.empty());
}

TEST_F(AnswerCacheTest, TokenCacheCountsPhraseLookups) {
  engine_->set_token_cache_enabled(true);
  auto d = MinPathWeight(0.9);
  auto c = MaxTuplesPerRelation(5);
  // "Woody Allen" is a two-word phrase: the token cache memoizes the
  // posting-list intersection + phrase verification.
  ASSERT_TRUE(engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c).ok());
  ASSERT_TRUE(engine_->Answer(PrecisQuery{{"Woody Allen"}}, *d, *c).ok());
  LruCacheStats stats = engine_->token_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  // Single-word tokens skip the cache entirely.
  ASSERT_TRUE(engine_->Answer(PrecisQuery{{"Comedy"}}, *d, *c).ok());
  stats = engine_->token_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, 2u);
}

TEST_F(AnswerCacheTest, CacheLevelsComposeOnARepeatedWorkload) {
  engine_->set_caches_enabled(true);
  const std::vector<std::string> tokens = {"Woody Allen", "Comedy",
                                           "Woody Allen", "Drama",
                                           "Woody Allen", "Comedy"};
  for (const std::string& token : tokens) ASSERT_NE(Shared(token), nullptr);
  LruCacheStats answer = engine_->answer_cache_stats();
  EXPECT_EQ(answer.hits + answer.misses, tokens.size());
  EXPECT_EQ(answer.misses, 3u);  // three distinct queries
  EXPECT_EQ(answer.hits, 3u);    // three repeats
  // Schema and token lookups only run on answer-cache misses.
  EXPECT_LE(engine_->schema_cache_stats().hits +
                engine_->schema_cache_stats().misses,
            3u);
}

// --- Level 4, the serialization memo (DESIGN.md §16): the rendered JSON
// body rides the same fingerprint as the answer cache.

TEST_F(AnswerCacheTest, BodyCacheServesByteIdenticalMemoizedRender) {
  engine_->set_caches_enabled(true);
  auto first = Rendered("Woody Allen");
  ASSERT_NE(first.answer, nullptr);
  ASSERT_NE(first.body_json, nullptr);
  // The memoized render is exactly the uncached serialization.
  EXPECT_EQ(*first.body_json, FreshJson("Woody Allen"));
  auto second = Rendered("Woody Allen");
  ASSERT_NE(second.body_json, nullptr);
  // A hit shares the very same stored string — zero re-serialization.
  EXPECT_EQ(first.body_json.get(), second.body_json.get());
  EXPECT_EQ(first.answer.get(), second.answer.get());
  LruCacheStats stats = engine_->body_cache_stats();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST_F(AnswerCacheTest, InsertInvalidatesMemoizedBodies) {
  engine_->set_caches_enabled(true);
  auto warm = Rendered("Comedy");
  ASSERT_NE(warm.body_json, nullptr);
  InsertGenre(2);
  // The database epoch moved: the rebuilt body is a new string whose
  // bytes agree with a from-scratch render of the new state.
  auto after = Rendered("Comedy");
  ASSERT_NE(after.body_json, nullptr);
  EXPECT_NE(warm.body_json.get(), after.body_json.get());
  EXPECT_EQ(*after.body_json, FreshJson("Comedy"));
  // And the post-insert render is itself memoized under the new epoch.
  EXPECT_EQ(Rendered("Comedy").body_json.get(), after.body_json.get());
}

TEST_F(AnswerCacheTest, PartialAnswersNeverEnterTheBodyCache) {
  engine_->set_caches_enabled(true);
  {
    ExecutionContext ctx;
    ctx.SetDeadlineAfter(1e-9);  // expired before the pipeline starts
    auto partial = Rendered("Woody Allen", &ctx);
    ASSERT_NE(partial.answer, nullptr);
    ASSERT_NE(partial.body_json, nullptr);
    EXPECT_TRUE(partial.answer->report.partial());
    // The body always reflects the answer actually returned...
    EXPECT_EQ(*partial.body_json, AnswerToJson(*partial.answer));
  }
  // ...but the deadline-stopped render was not memoized.
  EXPECT_EQ(engine_->body_cache_stats().inserts, 0u);
  auto complete = Rendered("Woody Allen");
  ASSERT_NE(complete.body_json, nullptr);
  EXPECT_FALSE(complete.answer->report.partial());
  EXPECT_EQ(*complete.body_json, FreshJson("Woody Allen"));
}

TEST_F(AnswerCacheTest, TraceRunsBypassTheBodyCache) {
  engine_->set_caches_enabled(true);
  auto d = MinPathWeight(0.9);
  auto c = MaxTuplesPerRelation(5);
  DbGenOptions options;
  options.trace_sql = true;
  auto traced = engine_->AnswerSharedRendered(PrecisQuery{{"Woody Allen"}},
                                              *d, *c, options);
  ASSERT_TRUE(traced.ok());
  ASSERT_NE(traced->body_json, nullptr);
  EXPECT_EQ(*traced->body_json, AnswerToJson(*traced->answer));
  LruCacheStats stats = engine_->body_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.inserts, 0u);
}

TEST_F(AnswerCacheTest, DisabledBodyCacheStillRendersOnRequest) {
  auto rendered = Rendered("Woody Allen");
  ASSERT_NE(rendered.body_json, nullptr);
  EXPECT_EQ(*rendered.body_json, FreshJson("Woody Allen"));
  LruCacheStats stats = engine_->body_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.inserts, 0u);
}

}  // namespace
}  // namespace precis
