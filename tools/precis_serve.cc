// precis_serve: the précis answering service as a network daemon.
//
// Builds the deterministic movies dataset, stands a PrecisEngine +
// PrecisService behind the HTTP front end (src/server), prints the bound
// address, and runs until SIGINT/SIGTERM. Shutdown is graceful: stop
// accepting, drain in-flight queries, flush, exit 0 — so CI can `kill
// -TERM` the daemon and gate on its exit code.
//
//   precis_serve --port 8080 --movies 2000 --workers 4 --queue-depth 64
//   curl -s localhost:8080/query -d '{"tokens":["Woody Allen"]}'

#include <poll.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/fault_injection.h"
#include "common/net_util.h"
#include "common/task_pool.h"
#include "datagen/movies_dataset.h"
#include "precis/engine.h"
#include "server/http_server.h"
#include "service/precis_service.h"
#include "shard/sharded_engine.h"
#include "shard/sharded_service.h"

namespace precis {
namespace {

struct ServeFlags {
  std::string address = "127.0.0.1";
  int port = 0;  // 0 = ephemeral, printed at startup
  size_t movies = 2000;
  size_t workers = 4;
  size_t io_threads = 2;
  size_t queue_depth = 64;
  double deadline_ms = 0.0;
  size_t parallelism = 0;
  bool cache = true;
  /// 0 = unsharded single engine; >= 1 partitions the dataset across N
  /// shards behind a ShardedPrecisService (DESIGN.md §15). Answers are
  /// byte-identical either way.
  size_t shards = 0;
  /// Give every shard a read replica (hedged sub-queries, DESIGN.md §17).
  bool replicas = false;
  /// >= 0: that shard is fault-scheduled permanently dead (latched
  /// kShardSubquery fault) — the chaos-drill shape ci.sh gates on.
  int kill_shard = -1;
  /// Seed for the fault injector backing --kill-shard.
  uint64_t fault_seed = 42;
  /// Socket-level chaos spec, forwarded to HttpServer (the
  /// PRECIS_SERVER_CHAOS environment variable also works).
  std::string chaos;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--address A] [--port N] [--movies N] [--workers N]\n"
      "          [--io-threads N] [--queue-depth N] [--deadline-ms MS]\n"
      "          [--parallelism N] [--cache on|off] [--shards N]\n"
      "          [--replicas on|off] [--kill-shard N] [--fault-seed N]\n"
      "          [--chaos SPEC]\n"
      "Serves POST /query, GET /metrics, GET /healthz until SIGINT/SIGTERM.\n"
      "--port 0 picks an ephemeral port (printed on stdout at startup).\n"
      "--queue-depth bounds the admission queue (excess -> HTTP 503).\n"
      "--shards N partitions the dataset across N engine shards\n"
      "  (scatter-gather execution; answers stay byte-identical).\n"
      "--replicas on gives each shard a read replica (hedged sub-queries).\n"
      "--kill-shard N fault-schedules shard N permanently dead: queries\n"
      "  answer degraded from the surviving shards (needs --shards >= 2).\n"
      "--chaos 'seed=7,read=0.01,write=0.01,short=0.2' injects seeded\n"
      "  socket-level errors (PRECIS_SERVER_CHAOS works too).\n",
      argv0);
}

bool ParseFlags(int argc, char** argv, ServeFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      std::fprintf(stderr, "missing value for %s\n", arg.c_str());
      return false;
    }
    if (arg == "--address") {
      flags->address = value;
    } else if (arg == "--port") {
      flags->port = std::atoi(value.c_str());
    } else if (arg == "--movies") {
      flags->movies = static_cast<size_t>(std::atol(value.c_str()));
    } else if (arg == "--workers") {
      flags->workers = static_cast<size_t>(std::atol(value.c_str()));
    } else if (arg == "--io-threads") {
      flags->io_threads = static_cast<size_t>(std::atol(value.c_str()));
    } else if (arg == "--queue-depth") {
      flags->queue_depth = static_cast<size_t>(std::atol(value.c_str()));
    } else if (arg == "--deadline-ms") {
      flags->deadline_ms = std::atof(value.c_str());
    } else if (arg == "--parallelism") {
      flags->parallelism = static_cast<size_t>(std::atol(value.c_str()));
    } else if (arg == "--cache") {
      flags->cache = value != "off" && value != "0" && value != "false";
    } else if (arg == "--shards") {
      flags->shards = static_cast<size_t>(std::atol(value.c_str()));
    } else if (arg == "--replicas") {
      flags->replicas = value != "off" && value != "0" && value != "false";
    } else if (arg == "--kill-shard") {
      flags->kill_shard = std::atoi(value.c_str());
    } else if (arg == "--fault-seed") {
      flags->fault_seed =
          static_cast<uint64_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (arg == "--chaos") {
      flags->chaos = value;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  if (flags->port < 0 || flags->port > 65535) {
    std::fprintf(stderr, "--port must be in [0, 65535]\n");
    return false;
  }
  if (flags->kill_shard >= 0 &&
      (flags->shards < 2 ||
       static_cast<size_t>(flags->kill_shard) >= flags->shards)) {
    std::fprintf(stderr,
                 "--kill-shard needs --shards >= 2 and a shard id < N\n");
    return false;
  }
  return true;
}

int ServeMain(int argc, char** argv) {
  ServeFlags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    Usage(argv[0]);
    return 2;
  }

  // Install before the (potentially slow) dataset build so Ctrl-C during
  // startup also exits promptly.
  InstallShutdownHandler();

  std::fprintf(stderr, "building movies dataset (%zu movies)...\n",
               flags.movies);
  MoviesConfig config;
  config.num_movies = flags.movies;
  auto ds = MoviesDataset::Create(config);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  MoviesDataset dataset = std::move(*ds);
  if (ShutdownRequested()) return 0;

  PrecisService::Options service_options;
  service_options.num_workers = flags.workers;
  service_options.default_deadline_seconds = flags.deadline_ms / 1e3;
  service_options.dbgen_parallelism = flags.parallelism;
  service_options.max_queue_depth = flags.queue_depth;

  // --kill-shard: a latched permanent kShardSubquery fault scoped to the
  // one shard's domain. Every query's fault plan then excludes that shard
  // and the coordinator merges the survivors (DESIGN.md §17) — the drill
  // ci.sh's chaos leg gates on.
  std::unique_ptr<FaultInjector> injector;
  if (flags.kill_shard >= 0) {
    injector = std::make_unique<FaultInjector>(flags.fault_seed);
    FaultSchedule dead =
        FaultSchedule::Steps({1}, FaultKind::kPermanentError);
    dead.domains = {static_cast<uint32_t>(flags.kill_shard)};
    injector->SetSchedule(FaultSite::kShardSubquery, dead);
    service_options.fault_injector = injector.get();
    std::fprintf(stderr,
                 "fault schedule: shard %d permanently dead (seed %llu)\n",
                 flags.kill_shard,
                 static_cast<unsigned long long>(flags.fault_seed));
  }

  // Either serving shape exposes the same PrecisService interface to the
  // HTTP front end; --shards only changes how queries execute inside.
  std::unique_ptr<PrecisEngine> engine;
  std::unique_ptr<ShardedPrecisEngine> sharded_engine;
  std::unique_ptr<PrecisService> service;
  if (flags.shards > 0) {
    auto created = ShardedPrecisEngine::Create(dataset.db(), &dataset.graph(),
                                               flags.shards, flags.replicas);
    if (!created.ok()) {
      std::fprintf(stderr, "sharded engine: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    sharded_engine = std::move(*created);
    sharded_engine->set_caches_enabled(flags.cache);
    auto svc =
        ShardedPrecisService::Create(sharded_engine.get(), service_options);
    if (!svc.ok()) {
      std::fprintf(stderr, "service: %s\n", svc.status().ToString().c_str());
      return 1;
    }
    service = std::move(*svc);
    std::fprintf(stderr, "sharded execution: %zu shards%s\n",
                 sharded_engine->num_shards(),
                 flags.replicas ? " (with read replicas)" : "");
  } else {
    auto created = PrecisEngine::Create(&dataset.db(), &dataset.graph());
    if (!created.ok()) {
      std::fprintf(stderr, "engine: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    engine = std::make_unique<PrecisEngine>(std::move(*created));
    engine->set_caches_enabled(flags.cache);
    auto svc = PrecisService::Create(engine.get(), service_options);
    if (!svc.ok()) {
      std::fprintf(stderr, "service: %s\n", svc.status().ToString().c_str());
      return 1;
    }
    service = std::move(*svc);
  }

  HttpServer::Options server_options;
  server_options.bind_address = flags.address;
  server_options.port = static_cast<uint16_t>(flags.port);
  server_options.io_threads = flags.io_threads;
  server_options.chaos_spec = flags.chaos;
  auto server = HttpServer::Create({{"default", service.get()}},
                                   server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }

  // The machine-readable line CI and the load generator scrape for the
  // ephemeral port. Flushed immediately: the scraper polls this output.
  std::printf("precis_serve listening on %s:%u\n", flags.address.c_str(),
              static_cast<unsigned>((*server)->port()));
  std::fflush(stdout);

  // Park until SIGINT/SIGTERM; the servers run on their own threads.
  while (!ShutdownRequested()) {
    pollfd pfd = {ShutdownWakeupFd(), POLLIN, 0};
    (void)poll(&pfd, 1, -1);
  }

  // Graceful drain first: /healthz flips to 503 + Connection: close so a
  // load balancer pulls the instance, then we log progress while the open
  // connections run dry (briefly — Stop() force-drains stragglers anyway).
  std::fprintf(stderr, "draining (healthz now 503)...\n");
  (*server)->BeginDrain();
  for (int tick = 0; tick < 10; ++tick) {
    uint64_t open = (*server)->metrics().connections_open;
    std::fprintf(stderr, "drain: %llu connections open\n",
                 static_cast<unsigned long long>(open));
    if (open == 0) break;
    (void)poll(nullptr, 0, 50);
  }
  std::fprintf(stderr, "shutting down...\n");
  (*server)->Stop();        // stop accepting, drain in-flight responses
  service->Shutdown();      // then stop the query workers
  HttpServer::Metrics m = (*server)->metrics();
  std::fprintf(stderr,
               "served %llu requests (%llu 2xx, %llu 4xx, %llu shed, "
               "%llu 504, %llu 5xx) over %llu connections\n",
               static_cast<unsigned long long>(m.requests_total),
               static_cast<unsigned long long>(m.responses_2xx),
               static_cast<unsigned long long>(m.responses_4xx),
               static_cast<unsigned long long>(m.responses_503),
               static_cast<unsigned long long>(m.responses_504),
               static_cast<unsigned long long>(m.responses_5xx),
               static_cast<unsigned long long>(m.connections_accepted));
  // Join the shared pool's workers (queries with parallelism >= 2 used it)
  // so sanitizer runs end with zero live threads.
  TaskPool::Shared()->Shutdown();
  return 0;
}

}  // namespace
}  // namespace precis

int main(int argc, char** argv) { return precis::ServeMain(argc, argv); }
