// precis_shell — an interactive précis console.
//
// A line-oriented front end over the whole library: load or generate a
// database, tune edge weights and constraints at query time (§3.1's
// interactive exploration), ask précis queries, inspect the SQL the
// generator submits, and export answers (text narrative, JSON, DOT, or a
// serialized sub-database).
//
//   $ precis_shell
//   precis> dataset movies 1000
//   precis> set min-weight 0.9
//   precis> query Woody Allen
//   precis> set join MOVIE GENRE 0.3
//   precis> query Woody Allen
//   precis> json
//   precis> save /tmp/answer.pdb
//   precis> quit
//
// Also scriptable: `precis_shell < commands.txt`.

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/net_util.h"
#include "common/string_util.h"
#include "common/symbol_table.h"
#include "common/task_pool.h"
#include "datagen/bibliography_dataset.h"
#include "datagen/movies_dataset.h"
#include "datagen/movies_templates.h"
#include "graph/weight_profile.h"
#include "precis/dot_export.h"
#include "precis/engine.h"
#include "precis/json_export.h"
#include "semistructured/document.h"
#include "semistructured/shredder.h"
#include "shard/sharded_engine.h"
#include "storage/serialization.h"
#include "translator/translator.h"

namespace precis {
namespace {

constexpr const char* kHelp = R"(commands:
  dataset movies N         build the movies dataset with N synthetic movies
  dataset bibliography N   build the bibliography dataset with N papers
  load FILE                load a serialized database (graph derived from FKs)
  shred FILE               load an XML-like document and shred it
  query TOKEN...           answer a precis query with the current settings
  set min-weight W         degree constraint: path weight >= W (default 0.9)
  set max-attrs R          degree constraint: top-R projections
  set tuples C             cardinality: at most C tuples per relation
  set strategy S           auto | naiveq | roundrobin
  set join FROM TO W       override a join-edge weight
  set proj REL ATTR W      override a projection-edge weight
  set trace on|off         record the SQL statements of each query
  set cache on|off         enable the token / schema / answer caches
  set faults SITE MODE P   arm deterministic fault injection at SITE
                           (probe|fetch|join|scan|catalog). MODE P is one of:
                           prob P | every N | steps I,J,K; an optional
                           trailing kind is transient (default) | permanent
                           | latency. Faulted queries degrade gracefully
                           and are never cached.
  set faults SITE off      disarm one site
  set faults seed N        reseed the injector (counters cleared)
  set faults off           disarm everything
  set parallelism N        intra-query parallel generation on N-way task
                           pool fan-out (1 = sequential); output is
                           byte-identical at any setting
  set shards N             partition the dataset across N engine shards
                           (scatter-gather execution, DESIGN.md §15);
                           1 = single engine; answers are byte-identical
                           at any setting
  deadline MS              per-query wall-clock deadline in ms (0 = off);
                           an expired query returns its partial answer
  budget N                 per-query access budget: max index probes + tuple
                           fetches + scans (0 = unbounded)
  stats                    access counters of the last query + global totals
                           (+ per-level cache ratios when caching is on,
                           + retry / degradation / injector counters when
                           faults are armed)
  trace                    per-stage trace spans of the last query
  show schema              print the source database schema
  show graph               print the schema graph with weights
  show settings            print the current query settings
  text                     render the last answer as a narrative (movies only)
  json                     print the last answer as JSON
  dot FILE                 write the last answer's result schema as DOT
  save FILE                serialize the last answer's database to FILE
  help                     this text
  quit                     exit)";

/// Everything the shell holds between commands.
struct ShellState {
  std::unique_ptr<Database> db;
  std::unique_ptr<SchemaGraph> graph;
  std::unique_ptr<PrecisEngine> engine;
  /// Non-null (and engine null) when 'set shards N>=2' is active.
  std::unique_ptr<ShardedPrecisEngine> sharded_engine;
  std::unique_ptr<TemplateCatalog> catalog;  // set for the movies dataset

  double min_weight = 0.9;
  long max_attrs = -1;  // -1: use min_weight instead
  size_t tuples_per_relation = 5;
  SubsetStrategy strategy = SubsetStrategy::kAuto;
  size_t parallelism = 1;  // >= 2: parallel db generation (DESIGN.md §11)
  size_t shards = 1;       // >= 2: scatter-gather engine (DESIGN.md §15)
  bool trace_sql = false;
  bool caches_enabled = false;  // token + schema + answer caches
  double deadline_ms = 0.0;     // 0 = no deadline
  uint64_t access_budget = 0;   // 0 = unbounded

  /// Deterministic fault injection (DESIGN.md §12). Attached to a query's
  /// context only while armed, so 'set faults off' restores the exact
  /// pre-fault fast path (no injector pointer in the context at all).
  FaultInjector injector{42};

  /// Shared because a cache hit returns the engine's stored answer; the
  /// shell keeps it alive for 'text' / 'json' / 'dot' / 'save'.
  std::shared_ptr<const PrecisAnswer> last_answer;
  /// The context the last query ran under (for 'stats' and 'trace').
  std::unique_ptr<ExecutionContext> last_context;
  /// Scatter-gather telemetry of the last sharded query (for 'stats').
  ShardQueryStats last_shard_stats;

  bool HasEngine() const {
    return engine != nullptr || sharded_engine != nullptr;
  }

  Status RebuildEngine() {
    last_answer.reset();
    engine.reset();
    sharded_engine.reset();
    if (shards >= 2) {
      auto result = ShardedPrecisEngine::Create(*db, graph.get(), shards);
      if (!result.ok()) return result.status();
      sharded_engine = std::move(*result);
      sharded_engine->set_caches_enabled(caches_enabled);
    } else {
      auto engine_result = PrecisEngine::Create(db.get(), graph.get());
      if (!engine_result.ok()) return engine_result.status();
      engine = std::make_unique<PrecisEngine>(std::move(*engine_result));
      // A fresh engine starts with empty caches; re-apply the setting.
      engine->set_caches_enabled(caches_enabled);
    }
    return Status::OK();
  }
};

Status CmdDataset(ShellState* state, const std::vector<std::string>& args) {
  if (args.size() != 2) {
    return Status::InvalidArgument("usage: dataset movies|bibliography N");
  }
  size_t n = static_cast<size_t>(std::atol(args[1].c_str()));
  if (args[0] == "movies") {
    MoviesConfig config;
    config.num_movies = n;
    auto ds = MoviesDataset::Create(config);
    if (!ds.ok()) return ds.status();
    state->db = std::make_unique<Database>(std::move(ds->db()));
    state->graph = std::make_unique<SchemaGraph>(std::move(ds->graph()));
    auto catalog = BuildMoviesTemplateCatalog();
    if (!catalog.ok()) return catalog.status();
    state->catalog = std::make_unique<TemplateCatalog>(std::move(*catalog));
  } else if (args[0] == "bibliography") {
    BibliographyConfig config;
    config.num_papers = n;
    auto ds = BibliographyDataset::Create(config);
    if (!ds.ok()) return ds.status();
    state->db = std::make_unique<Database>(std::move(ds->db()));
    state->graph = std::make_unique<SchemaGraph>(std::move(ds->graph()));
    auto catalog = BuildBibliographyTemplateCatalog();
    if (!catalog.ok()) return catalog.status();
    state->catalog = std::make_unique<TemplateCatalog>(std::move(*catalog));
  } else {
    return Status::InvalidArgument("unknown dataset '" + args[0] + "'");
  }
  PRECIS_RETURN_NOT_OK(state->RebuildEngine());
  std::printf("dataset ready: %zu relations, %zu tuples\n",
              state->db->num_relations(), state->db->TotalTuples());
  return Status::OK();
}

Status CmdLoad(ShellState* state, const std::vector<std::string>& args) {
  if (args.size() != 1) return Status::InvalidArgument("usage: load FILE");
  auto db = LoadDatabaseFromFile(args[0]);
  if (!db.ok()) return db.status();
  auto graph = DeriveGraphFromForeignKeys(*db);
  if (!graph.ok()) return graph.status();
  state->db = std::make_unique<Database>(std::move(*db));
  state->graph = std::make_unique<SchemaGraph>(std::move(*graph));
  state->catalog.reset();
  PRECIS_RETURN_NOT_OK(state->RebuildEngine());
  std::printf("loaded %zu relations, %zu tuples; graph derived from %zu "
              "foreign keys\n",
              state->db->num_relations(), state->db->TotalTuples(),
              state->db->foreign_keys().size());
  return Status::OK();
}

Status CmdShred(ShellState* state, const std::vector<std::string>& args) {
  if (args.size() != 1) return Status::InvalidArgument("usage: shred FILE");
  std::ifstream in(args[0]);
  if (!in.is_open()) {
    return Status::InvalidArgument("cannot open '" + args[0] + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto doc = ParseDocument(buffer.str());
  if (!doc.ok()) return doc.status();
  auto shredded = ShreddedDocument::Shred(**doc);
  if (!shredded.ok()) return shredded.status();
  state->db = std::make_unique<Database>(std::move(shredded->db()));
  state->graph = std::make_unique<SchemaGraph>(std::move(shredded->graph()));
  state->catalog.reset();
  PRECIS_RETURN_NOT_OK(state->RebuildEngine());
  std::printf("shredded %zu elements into %zu relations\n",
              (*doc)->SubtreeSize(), state->db->num_relations());
  return Status::OK();
}

/// `set faults ...` — everything after the "faults" keyword is in `args`.
Status CmdSetFaults(ShellState* state, const std::vector<std::string>& args) {
  if (args.empty()) {
    return Status::InvalidArgument(
        "usage: set faults off | seed N | SITE off|prob P|every N|steps "
        "I,J,K [transient|permanent|latency]");
  }
  if (args[0] == "off" && args.size() == 1) {
    state->injector.Reset();
    std::printf("faults: off\n");
    return Status::OK();
  }
  if (args[0] == "seed") {
    if (args.size() != 2) {
      return Status::InvalidArgument("usage: set faults seed N");
    }
    state->injector.Reseed(
        static_cast<uint64_t>(std::atoll(args[1].c_str())));
    std::printf("faults: seed=%llu (counters cleared)\n",
                static_cast<unsigned long long>(state->injector.seed()));
    return Status::OK();
  }

  auto site = ParseFaultSite(args[0]);
  if (!site.ok()) return site.status();
  if (args.size() < 2) {
    return Status::InvalidArgument(
        "usage: set faults SITE off|prob P|every N|steps I,J,K [kind]");
  }

  const std::string& mode = args[1];
  if (mode == "off") {
    state->injector.SetSchedule(*site, FaultSchedule::Off());
    std::printf("faults: %s off\n", FaultSiteToString(*site));
    return Status::OK();
  }

  // Optional trailing kind (args[3] when present).
  FaultKind kind = FaultKind::kTransientError;
  if (args.size() >= 4) {
    if (args[3] == "transient") {
      kind = FaultKind::kTransientError;
    } else if (args[3] == "permanent") {
      kind = FaultKind::kPermanentError;
    } else if (args[3] == "latency") {
      kind = FaultKind::kLatencySpike;
    } else {
      return Status::InvalidArgument(
          "unknown fault kind '" + args[3] +
          "' (transient | permanent | latency)");
    }
  }

  if (mode == "prob" && args.size() >= 3) {
    double p = std::atof(args[2].c_str());
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("probability must be in [0, 1]");
    }
    state->injector.SetSchedule(*site, FaultSchedule::Probability(p, kind));
  } else if (mode == "every" && args.size() >= 3) {
    long n = std::atol(args[2].c_str());
    if (n < 1) return Status::InvalidArgument("period must be >= 1");
    state->injector.SetSchedule(
        *site, FaultSchedule::EveryNth(static_cast<uint64_t>(n), kind));
  } else if (mode == "steps" && args.size() >= 3) {
    std::vector<uint64_t> steps;
    for (const std::string& part : Split(args[2], ',')) {
      long step = std::atol(part.c_str());
      if (step < 1) {
        return Status::InvalidArgument("steps are 1-based check indices");
      }
      steps.push_back(static_cast<uint64_t>(step));
    }
    if (steps.empty()) {
      return Status::InvalidArgument("usage: set faults SITE steps I,J,K");
    }
    state->injector.SetSchedule(*site,
                                FaultSchedule::Steps(std::move(steps), kind));
  } else {
    return Status::InvalidArgument(
        "unknown fault mode '" + mode + "' (off | prob P | every N | steps "
        "I,J,K)");
  }
  std::printf("faults armed:\n%s",
              state->injector.DescribeSchedules().c_str());
  return Status::OK();
}

Status CmdSet(ShellState* state, const std::vector<std::string>& args) {
  if (args.empty()) return Status::InvalidArgument("usage: set KEY VALUE...");
  const std::string& key = args[0];
  if (key == "min-weight" && args.size() == 2) {
    state->min_weight = std::atof(args[1].c_str());
    state->max_attrs = -1;
  } else if (key == "max-attrs" && args.size() == 2) {
    state->max_attrs = std::atol(args[1].c_str());
  } else if (key == "tuples" && args.size() == 2) {
    state->tuples_per_relation =
        static_cast<size_t>(std::atol(args[1].c_str()));
  } else if (key == "strategy" && args.size() == 2) {
    if (args[1] == "auto") {
      state->strategy = SubsetStrategy::kAuto;
    } else if (args[1] == "naiveq") {
      state->strategy = SubsetStrategy::kNaiveQ;
    } else if (args[1] == "roundrobin") {
      state->strategy = SubsetStrategy::kRoundRobin;
    } else {
      return Status::InvalidArgument("unknown strategy '" + args[1] + "'");
    }
  } else if (key == "parallelism" && args.size() == 2) {
    long n = std::atol(args[1].c_str());
    if (n < 1) return Status::InvalidArgument("parallelism must be >= 1");
    state->parallelism = static_cast<size_t>(n);
  } else if (key == "shards" && args.size() == 2) {
    long n = std::atol(args[1].c_str());
    if (n < 1) return Status::InvalidArgument("shards must be >= 1");
    state->shards = static_cast<size_t>(n);
    if (state->db != nullptr) {
      // Repartition now; answers stay byte-identical across shard counts.
      PRECIS_RETURN_NOT_OK(state->RebuildEngine());
    }
    if (state->shards >= 2) {
      std::printf("shards: %zu (scatter-gather execution)\n", state->shards);
    } else {
      std::printf("shards: 1 (single engine)\n");
    }
  } else if (key == "trace" && args.size() == 2) {
    state->trace_sql = (args[1] == "on");
  } else if (key == "faults") {
    return CmdSetFaults(state,
                        std::vector<std::string>(args.begin() + 1, args.end()));
  } else if (key == "cache" && args.size() == 2) {
    state->caches_enabled = (args[1] == "on");
    if (state->engine != nullptr) {
      state->engine->set_caches_enabled(state->caches_enabled);
    }
    if (state->sharded_engine != nullptr) {
      state->sharded_engine->set_caches_enabled(state->caches_enabled);
    }
  } else if (key == "join" && args.size() == 4) {
    if (state->graph == nullptr) {
      return Status::InvalidArgument("no dataset loaded");
    }
    PRECIS_RETURN_NOT_OK(state->graph->SetJoinWeight(
        args[1], args[2], std::atof(args[3].c_str())));
    if (state->engine != nullptr) state->engine->ClearSchemaCache();
  } else if (key == "proj" && args.size() == 4) {
    if (state->graph == nullptr) {
      return Status::InvalidArgument("no dataset loaded");
    }
    PRECIS_RETURN_NOT_OK(state->graph->SetProjectionWeight(
        args[1], args[2], std::atof(args[3].c_str())));
    if (state->engine != nullptr) state->engine->ClearSchemaCache();
  } else {
    return Status::InvalidArgument("unknown setting; see help");
  }
  return Status::OK();
}

Status CmdQuery(ShellState* state, const std::vector<std::string>& args) {
  if (!state->HasEngine()) {
    return Status::InvalidArgument("no dataset loaded; use 'dataset' first");
  }
  if (args.empty()) {
    return Status::InvalidArgument("usage: query TOKEN...");
  }
  // The whole argument list is one token (multi-word values are common);
  // separate several tokens with '/'.
  std::vector<std::string> tokens;
  std::string current;
  for (const std::string& arg : args) {
    if (arg == "/") {
      if (!current.empty()) tokens.push_back(current);
      current.clear();
      continue;
    }
    if (!current.empty()) current += " ";
    current += arg;
  }
  if (!current.empty()) tokens.push_back(current);

  std::unique_ptr<DegreeConstraint> degree =
      state->max_attrs >= 0
          ? MaxProjections(static_cast<size_t>(state->max_attrs))
          : MinPathWeight(state->min_weight);
  auto cardinality = MaxTuplesPerRelation(state->tuples_per_relation);
  DbGenOptions options;
  options.strategy = state->strategy;
  options.trace_sql = state->trace_sql;
  options.parallelism = state->parallelism;  // shared pool; see DESIGN §11

  auto ctx = std::make_unique<ExecutionContext>();
  if (state->deadline_ms > 0) {
    ctx->SetDeadlineAfter(state->deadline_ms / 1e3);
  }
  if (state->access_budget > 0) ctx->SetAccessBudget(state->access_budget);
  // Attach the injector only while armed: an armed context taints the
  // caches (DESIGN.md §12), so an idle injector must stay invisible.
  if (state->injector.armed()) ctx->SetFaultInjector(&state->injector);

  // AnswerShared serves from the full-answer cache when 'set cache on' is
  // active (trace runs bypass it); otherwise it builds a fresh answer. The
  // sharded path scatter-gathers and reports where the work landed.
  state->last_shard_stats = ShardQueryStats();
  auto result =
      state->sharded_engine != nullptr
          ? state->sharded_engine->AnswerShared(PrecisQuery{tokens}, *degree,
                                                *cardinality, options,
                                                ctx.get(),
                                                &state->last_shard_stats)
          : state->engine->AnswerShared(PrecisQuery{tokens}, *degree,
                                        *cardinality, options, ctx.get());
  state->last_context = std::move(ctx);
  if (!result.ok()) return result.status();
  std::shared_ptr<const PrecisAnswer> answer = std::move(*result);
  if (answer->report.partial()) {
    std::printf("partial answer (%s)\n",
                StopReasonToString(answer->report.stop_reason));
  }
  if (answer->report.degraded()) {
    std::printf("degraded answer (dropped=%llu lookups_failed=%llu "
                "retries=%llu):\n%s",
                static_cast<unsigned long long>(
                    answer->report.degradation.total_dropped_tuples()),
                static_cast<unsigned long long>(
                    answer->report.degradation.total_failed_lookups()),
                static_cast<unsigned long long>(
                    answer->report.degradation.total_retries()),
                answer->report.degradation.ToString().c_str());
  }
  if (answer->empty()) {
    std::printf("no occurrences.\n");
    state->last_answer.reset();
    return Status::OK();
  }
  std::printf("result schema:\n%s\nresult database:\n%s",
              answer->schema.ToString().c_str(),
              answer->database.DescribeSchema().c_str());
  if (state->trace_sql) {
    std::printf("statements:\n");
    for (const std::string& sql : answer->report.sql_trace) {
      std::printf("  %s;\n", sql.c_str());
    }
  }
  state->last_answer = std::move(answer);
  return Status::OK();
}

Status CmdDeadline(ShellState* state, const std::vector<std::string>& args) {
  if (args.size() != 1) return Status::InvalidArgument("usage: deadline MS");
  double ms = std::atof(args[0].c_str());
  if (ms < 0) return Status::InvalidArgument("deadline must be >= 0");
  state->deadline_ms = ms;
  if (ms > 0) {
    std::printf("deadline: %g ms per query\n", ms);
  } else {
    std::printf("deadline: off\n");
  }
  return Status::OK();
}

Status CmdBudget(ShellState* state, const std::vector<std::string>& args) {
  if (args.size() != 1) return Status::InvalidArgument("usage: budget N");
  long n = std::atol(args[0].c_str());
  if (n < 0) return Status::InvalidArgument("budget must be >= 0");
  state->access_budget = static_cast<uint64_t>(n);
  if (n > 0) {
    std::printf("budget: %ld accesses per query\n", n);
  } else {
    std::printf("budget: unbounded\n");
  }
  return Status::OK();
}

Status CmdStats(ShellState* state) {
  if (state->db == nullptr) return Status::InvalidArgument("no dataset loaded");
  if (state->last_context != nullptr) {
    const AccessStats& s = state->last_context->stats();
    std::printf("last query: probes=%llu fetches=%llu scans=%llu "
                "statements=%llu stop=%s\n",
                static_cast<unsigned long long>(
                    s.index_probes.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    s.tuple_fetches.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    s.sequential_scans.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    s.statements.load(std::memory_order_relaxed)),
                StopReasonToString(state->last_context->stop_reason()));
  } else {
    std::printf("last query: none yet\n");
  }
  const AccessStats& g = state->db->stats();
  std::printf("global:     probes=%llu fetches=%llu scans=%llu "
              "statements=%llu\n",
              static_cast<unsigned long long>(
                  g.index_probes.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  g.tuple_fetches.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  g.sequential_scans.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  g.statements.load(std::memory_order_relaxed)));
  if (state->caches_enabled && state->HasEngine()) {
    auto print_cache = [](const char* level, const LruCacheStats& s) {
      std::printf("cache %-7s hits=%llu misses=%llu evictions=%llu "
                  "entries=%llu bytes=%llu hit-rate=%.2f\n",
                  level, static_cast<unsigned long long>(s.hits),
                  static_cast<unsigned long long>(s.misses),
                  static_cast<unsigned long long>(s.evictions),
                  static_cast<unsigned long long>(s.entries),
                  static_cast<unsigned long long>(s.charge_bytes),
                  s.hit_rate());
    };
    if (state->sharded_engine != nullptr) {
      LruCacheStats partial_total;
      for (size_t s = 0; s < state->sharded_engine->num_shards(); ++s) {
        partial_total += state->sharded_engine->shard_partial_cache_stats(s);
      }
      print_cache("partial:", partial_total);
      print_cache("schema:", state->sharded_engine->schema_cache_stats());
      print_cache("answer:", state->sharded_engine->answer_cache_stats());
      print_cache("body:", state->sharded_engine->body_cache_stats());
    } else {
      print_cache("token:", state->engine->token_cache_stats());
      print_cache("schema:", state->engine->schema_cache_stats());
      print_cache("answer:", state->engine->answer_cache_stats());
      print_cache("body:", state->engine->body_cache_stats());
    }
  }
  if (state->sharded_engine != nullptr) {
    // Per-shard residency plus what the last query scattered to each shard
    // (subqueries, physical charges, peak prefetch scratch — the sharded
    // analog of the arena peak) and the shard's partial-cache hits.
    const ShardQueryStats& sq = state->last_shard_stats;
    for (size_t s = 0; s < state->sharded_engine->num_shards(); ++s) {
      LruCacheStats pc = state->sharded_engine->shard_partial_cache_stats(s);
      std::printf(
          "shard %zu:    tuples=%llu subqueries=%llu charges=%llu "
          "scratch-peak=%llu cache-hits=%llu\n",
          s,
          static_cast<unsigned long long>(
              state->sharded_engine->shard_tuples(s)),
          static_cast<unsigned long long>(
              s < sq.subqueries.size() ? sq.subqueries[s] : 0),
          static_cast<unsigned long long>(
              s < sq.charges.size() ? sq.charges[s] : 0),
          static_cast<unsigned long long>(
              s < sq.scratch_bytes.size() ? sq.scratch_bytes[s] : 0),
          static_cast<unsigned long long>(pc.hits));
    }
    if (sq.merge_events > 0) {
      std::printf("shard merge: events=%llu total=%.3f ms\n",
                  static_cast<unsigned long long>(sq.merge_events),
                  sq.merge_seconds * 1e3);
    }
    // Fault-domain health (DESIGN.md §17): per-shard breaker snapshot and
    // the engine-lifetime hedge/skip ledger.
    for (size_t s = 0; s < state->sharded_engine->num_shards(); ++s) {
      CircuitBreakerStats b = state->sharded_engine->breaker_stats(s);
      std::printf(
          "breaker %zu:  state=%s failures=%llu opened=%llu rejected=%llu "
          "half-open-probes=%llu\n",
          s, BreakerStateToString(b.state),
          static_cast<unsigned long long>(b.failures_total),
          static_cast<unsigned long long>(b.opened_total),
          static_cast<unsigned long long>(b.rejected_total),
          static_cast<unsigned long long>(b.half_open_probes));
    }
    const ShardHealthTracker& health = state->sharded_engine->health();
    std::printf(
        "health:     hedged=%llu hedge-wins=%llu shard-skips=%llu\n",
        static_cast<unsigned long long>(
            health.hedged_subqueries.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            health.hedge_wins.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            health.shard_skips.load(std::memory_order_relaxed)));
    if (!sq.shards_skipped.empty()) {
      std::printf("last query: skipped shards");
      for (uint32_t s : sq.shards_skipped) std::printf(" %u", s);
      std::printf(" (probe-retries=%llu breaker-rejects=%llu)\n",
                  static_cast<unsigned long long>(sq.shard_probe_retries),
                  static_cast<unsigned long long>(sq.breaker_rejects));
    }
  }
  // Data-layout footprint (DESIGN.md §13): the process-wide interner and
  // the last query's arena high-water mark.
  SymbolTableStats sym = SymbolTable::Global()->stats();
  std::printf("symbols:    count=%llu bytes=%llu blocks=%llu interns=%llu\n",
              static_cast<unsigned long long>(sym.symbols),
              static_cast<unsigned long long>(sym.bytes),
              static_cast<unsigned long long>(sym.blocks),
              static_cast<unsigned long long>(sym.interns));
  if (state->last_context != nullptr) {
    ArenaStats arena = state->last_context->arena_stats();
    std::printf("arena:      peak=%llu reserved=%llu slabs=%llu\n",
                static_cast<unsigned long long>(arena.peak_used_bytes),
                static_cast<unsigned long long>(arena.reserved_bytes),
                static_cast<unsigned long long>(arena.slabs));
  }
  if (state->injector.armed()) {
    std::printf("faults seed=%llu injected=%llu\n",
                static_cast<unsigned long long>(state->injector.seed()),
                static_cast<unsigned long long>(
                    state->injector.total_injected()));
    for (size_t i = 0; i < kNumFaultSites; ++i) {
      FaultSite site = static_cast<FaultSite>(i);
      FaultSiteStats fs = state->injector.site_stats(site);
      if (fs.checks == 0) continue;
      std::printf("  %-18s checks=%llu injected=%llu latency_spikes=%llu\n",
                  FaultSiteToString(site),
                  static_cast<unsigned long long>(fs.checks),
                  static_cast<unsigned long long>(fs.injected),
                  static_cast<unsigned long long>(fs.latency_spikes));
    }
    if (state->last_answer != nullptr) {
      const DegradationReport& deg = state->last_answer->report.degradation;
      std::printf("last answer: degraded=%s retries=%llu dropped=%llu "
                  "lookups_failed=%llu\n",
                  deg.degraded() ? "yes" : "no",
                  static_cast<unsigned long long>(deg.total_retries()),
                  static_cast<unsigned long long>(deg.total_dropped_tuples()),
                  static_cast<unsigned long long>(deg.total_failed_lookups()));
    }
  }
  return Status::OK();
}

Status CmdTrace(ShellState* state) {
  if (state->last_context == nullptr) {
    return Status::InvalidArgument("no query traced yet; run 'query' first");
  }
  std::vector<TraceSpan> spans = state->last_context->spans();
  if (spans.empty()) {
    std::printf("no spans recorded\n");
    return Status::OK();
  }
  for (const TraceSpan& span : spans) {
    std::printf("%-14s %9.3f ms  probes=%llu fetches=%llu scans=%llu "
                "statements=%llu\n",
                span.name.c_str(), span.seconds * 1e3,
                static_cast<unsigned long long>(span.index_probes),
                static_cast<unsigned long long>(span.tuple_fetches),
                static_cast<unsigned long long>(span.sequential_scans),
                static_cast<unsigned long long>(span.statements));
  }
  return Status::OK();
}

Status NeedAnswer(const ShellState& state) {
  if (state.last_answer == nullptr) {
    return Status::InvalidArgument("no answer yet; run 'query' first");
  }
  return Status::OK();
}

Status CmdText(ShellState* state) {
  PRECIS_RETURN_NOT_OK(NeedAnswer(*state));
  if (state->catalog == nullptr) {
    return Status::InvalidArgument(
        "no template catalog for this dataset; 'text' works for generated "
        "datasets");
  }
  Translator translator(state->catalog.get());
  auto text = translator.Render(*state->last_answer);
  if (!text.ok()) return text.status();
  std::printf("%s\n", text->c_str());
  return Status::OK();
}

Status CmdJson(ShellState* state) {
  PRECIS_RETURN_NOT_OK(NeedAnswer(*state));
  std::printf("%s\n", AnswerToJson(*state->last_answer).c_str());
  return Status::OK();
}

Status CmdDot(ShellState* state, const std::vector<std::string>& args) {
  PRECIS_RETURN_NOT_OK(NeedAnswer(*state));
  if (args.size() != 1) return Status::InvalidArgument("usage: dot FILE");
  std::ofstream out(args[0], std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open '" + args[0] + "'");
  }
  out << ResultSchemaToDot(state->last_answer->schema);
  std::printf("wrote %s\n", args[0].c_str());
  return Status::OK();
}

Status CmdSave(ShellState* state, const std::vector<std::string>& args) {
  PRECIS_RETURN_NOT_OK(NeedAnswer(*state));
  if (args.size() != 1) return Status::InvalidArgument("usage: save FILE");
  PRECIS_RETURN_NOT_OK(
      SaveDatabaseToFile(state->last_answer->database, args[0]));
  std::printf("wrote %s (%zu tuples)\n", args[0].c_str(),
              state->last_answer->database.TotalTuples());
  return Status::OK();
}

int RunShell(std::istream& in, bool interactive) {
  ShellState state;
  std::string line;
  if (interactive) std::printf("precis shell; 'help' lists commands.\n");
  while (true) {
    if (interactive) {
      std::printf("precis> ");
      std::fflush(stdout);
    }
    if (!std::getline(in, line)) {
      // SIGINT/SIGTERM interrupt the blocking read (the handler installs
      // without SA_RESTART); fall through to the same clean exit 'quit'
      // takes so TSan/ASan runs see an orderly teardown, not a kill.
      if (ShutdownRequested() && interactive) std::printf("\ninterrupted\n");
      break;
    }
    std::vector<std::string> words;
    for (const std::string& w : Split(Trim(line), ' ')) {
      if (!w.empty()) words.push_back(w);
    }
    if (words.empty()) continue;
    std::string cmd = words[0];
    std::vector<std::string> args(words.begin() + 1, words.end());

    Status status = Status::OK();
    if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "help") {
      std::printf("%s\n", kHelp);
    } else if (cmd == "dataset") {
      status = CmdDataset(&state, args);
    } else if (cmd == "load") {
      status = CmdLoad(&state, args);
    } else if (cmd == "shred") {
      status = CmdShred(&state, args);
    } else if (cmd == "set") {
      status = CmdSet(&state, args);
    } else if (cmd == "query") {
      status = CmdQuery(&state, args);
    } else if (cmd == "deadline") {
      status = CmdDeadline(&state, args);
    } else if (cmd == "budget") {
      status = CmdBudget(&state, args);
    } else if (cmd == "stats") {
      status = CmdStats(&state);
    } else if (cmd == "trace" && args.empty()) {
      status = CmdTrace(&state);
    } else if (cmd == "show") {
      if (state.db == nullptr) {
        status = Status::InvalidArgument("no dataset loaded");
      } else if (!args.empty() && args[0] == "graph") {
        std::printf("%s", state.graph->ToString().c_str());
      } else if (!args.empty() && args[0] == "settings") {
        std::printf("min-weight=%.2f max-attrs=%ld tuples=%zu strategy=%s "
                    "parallelism=%zu shards=%zu trace=%s cache=%s "
                    "deadline-ms=%.1f budget=%llu\n",
                    state.min_weight, state.max_attrs,
                    state.tuples_per_relation,
                    SubsetStrategyToString(state.strategy), state.parallelism,
                    state.shards, state.trace_sql ? "on" : "off",
                    state.caches_enabled ? "on" : "off", state.deadline_ms,
                    static_cast<unsigned long long>(state.access_budget));
        if (state.injector.armed()) {
          std::printf("faults (seed=%llu):\n%s",
                      static_cast<unsigned long long>(state.injector.seed()),
                      state.injector.DescribeSchedules().c_str());
        } else {
          std::printf("faults: off\n");
        }
      } else {
        std::printf("%s", state.db->DescribeSchema().c_str());
      }
    } else if (cmd == "text") {
      status = CmdText(&state);
    } else if (cmd == "json") {
      status = CmdJson(&state);
    } else if (cmd == "dot") {
      status = CmdDot(&state, args);
    } else if (cmd == "save") {
      status = CmdSave(&state, args);
    } else {
      status = Status::InvalidArgument("unknown command '" + cmd +
                                       "'; try 'help'");
    }
    if (!status.ok()) std::printf("error: %s\n", status.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace precis

int main() {
  precis::InstallShutdownHandler();
  // Interactive iff stdin looks like a terminal; piped scripts skip the
  // prompt noise. isatty is POSIX-only, which this project already assumes.
  bool interactive = isatty(fileno(stdin)) != 0;
  int rc = precis::RunShell(std::cin, interactive);
  std::fflush(stdout);
  // Join the shared pool's workers (queries with parallelism >= 2 started
  // it) so a sanitizer run ends with zero live threads.
  precis::TaskPool::Shared()->Shutdown();
  return rc;
}
