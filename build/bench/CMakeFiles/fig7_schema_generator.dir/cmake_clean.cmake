file(REMOVE_RECURSE
  "CMakeFiles/fig7_schema_generator.dir/fig7_schema_generator.cc.o"
  "CMakeFiles/fig7_schema_generator.dir/fig7_schema_generator.cc.o.d"
  "fig7_schema_generator"
  "fig7_schema_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_schema_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
