# Empty dependencies file for fig7_schema_generator.
# This may be replaced when dependencies are built.
