file(REMOVE_RECURSE
  "CMakeFiles/constraint_sweep.dir/constraint_sweep.cc.o"
  "CMakeFiles/constraint_sweep.dir/constraint_sweep.cc.o.d"
  "constraint_sweep"
  "constraint_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
