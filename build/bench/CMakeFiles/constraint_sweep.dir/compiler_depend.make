# Empty compiler generated dependencies file for constraint_sweep.
# This may be replaced when dependencies are built.
