# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig9_naive_vs_roundrobin.
