file(REMOVE_RECURSE
  "CMakeFiles/fig9_naive_vs_roundrobin.dir/fig9_naive_vs_roundrobin.cc.o"
  "CMakeFiles/fig9_naive_vs_roundrobin.dir/fig9_naive_vs_roundrobin.cc.o.d"
  "fig9_naive_vs_roundrobin"
  "fig9_naive_vs_roundrobin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_naive_vs_roundrobin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
