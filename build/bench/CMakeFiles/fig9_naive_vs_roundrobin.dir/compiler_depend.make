# Empty compiler generated dependencies file for fig9_naive_vs_roundrobin.
# This may be replaced when dependencies are built.
