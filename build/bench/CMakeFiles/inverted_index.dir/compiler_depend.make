# Empty compiler generated dependencies file for inverted_index.
# This may be replaced when dependencies are built.
