# Empty dependencies file for ablation_weight_transfer.
# This may be replaced when dependencies are built.
