file(REMOVE_RECURSE
  "CMakeFiles/ablation_weight_transfer.dir/ablation_weight_transfer.cc.o"
  "CMakeFiles/ablation_weight_transfer.dir/ablation_weight_transfer.cc.o.d"
  "ablation_weight_transfer"
  "ablation_weight_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weight_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
