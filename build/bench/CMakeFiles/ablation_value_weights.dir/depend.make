# Empty dependencies file for ablation_value_weights.
# This may be replaced when dependencies are built.
