file(REMOVE_RECURSE
  "CMakeFiles/ablation_value_weights.dir/ablation_value_weights.cc.o"
  "CMakeFiles/ablation_value_weights.dir/ablation_value_weights.cc.o.d"
  "ablation_value_weights"
  "ablation_value_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_value_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
