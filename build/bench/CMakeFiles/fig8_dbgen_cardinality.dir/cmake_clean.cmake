file(REMOVE_RECURSE
  "CMakeFiles/fig8_dbgen_cardinality.dir/fig8_dbgen_cardinality.cc.o"
  "CMakeFiles/fig8_dbgen_cardinality.dir/fig8_dbgen_cardinality.cc.o.d"
  "fig8_dbgen_cardinality"
  "fig8_dbgen_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dbgen_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
