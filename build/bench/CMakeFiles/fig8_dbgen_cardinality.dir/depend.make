# Empty dependencies file for fig8_dbgen_cardinality.
# This may be replaced when dependencies are built.
