file(REMOVE_RECURSE
  "CMakeFiles/cost_model_validation.dir/cost_model_validation.cc.o"
  "CMakeFiles/cost_model_validation.dir/cost_model_validation.cc.o.d"
  "cost_model_validation"
  "cost_model_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
