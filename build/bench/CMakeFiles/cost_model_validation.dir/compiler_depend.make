# Empty compiler generated dependencies file for cost_model_validation.
# This may be replaced when dependencies are built.
