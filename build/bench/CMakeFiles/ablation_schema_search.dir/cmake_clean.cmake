file(REMOVE_RECURSE
  "CMakeFiles/ablation_schema_search.dir/ablation_schema_search.cc.o"
  "CMakeFiles/ablation_schema_search.dir/ablation_schema_search.cc.o.d"
  "ablation_schema_search"
  "ablation_schema_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_schema_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
