# Empty dependencies file for ablation_schema_search.
# This may be replaced when dependencies are built.
