# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/constraints_test[1]_include.cmake")
include("/root/repo/build/tests/schema_generator_test[1]_include.cmake")
include("/root/repo/build/tests/database_generator_test[1]_include.cmake")
include("/root/repo/build/tests/translator_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
include("/root/repo/build/tests/tuple_weights_test[1]_include.cmake")
include("/root/repo/build/tests/synonyms_test[1]_include.cmake")
include("/root/repo/build/tests/exhaustive_generator_test[1]_include.cmake")
include("/root/repo/build/tests/path_propagation_test[1]_include.cmake")
include("/root/repo/build/tests/sql_trace_test[1]_include.cmake")
include("/root/repo/build/tests/dot_export_test[1]_include.cmake")
include("/root/repo/build/tests/profile_cache_test[1]_include.cmake")
include("/root/repo/build/tests/bibliography_test[1]_include.cmake")
include("/root/repo/build/tests/semistructured_test[1]_include.cmake")
include("/root/repo/build/tests/json_export_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_lite_test[1]_include.cmake")
