file(REMOVE_RECURSE
  "CMakeFiles/path_propagation_test.dir/path_propagation_test.cc.o"
  "CMakeFiles/path_propagation_test.dir/path_propagation_test.cc.o.d"
  "path_propagation_test"
  "path_propagation_test.pdb"
  "path_propagation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_propagation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
