file(REMOVE_RECURSE
  "CMakeFiles/tuple_weights_test.dir/tuple_weights_test.cc.o"
  "CMakeFiles/tuple_weights_test.dir/tuple_weights_test.cc.o.d"
  "tuple_weights_test"
  "tuple_weights_test.pdb"
  "tuple_weights_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_weights_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
