# Empty dependencies file for tuple_weights_test.
# This may be replaced when dependencies are built.
