file(REMOVE_RECURSE
  "CMakeFiles/semistructured_test.dir/semistructured_test.cc.o"
  "CMakeFiles/semistructured_test.dir/semistructured_test.cc.o.d"
  "semistructured_test"
  "semistructured_test.pdb"
  "semistructured_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semistructured_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
