# Empty dependencies file for bibliography_test.
# This may be replaced when dependencies are built.
