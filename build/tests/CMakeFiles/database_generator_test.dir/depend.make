# Empty dependencies file for database_generator_test.
# This may be replaced when dependencies are built.
