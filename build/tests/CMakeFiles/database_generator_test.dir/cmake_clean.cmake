file(REMOVE_RECURSE
  "CMakeFiles/database_generator_test.dir/database_generator_test.cc.o"
  "CMakeFiles/database_generator_test.dir/database_generator_test.cc.o.d"
  "database_generator_test"
  "database_generator_test.pdb"
  "database_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
