# Empty compiler generated dependencies file for schema_generator_test.
# This may be replaced when dependencies are built.
