file(REMOVE_RECURSE
  "CMakeFiles/schema_generator_test.dir/schema_generator_test.cc.o"
  "CMakeFiles/schema_generator_test.dir/schema_generator_test.cc.o.d"
  "schema_generator_test"
  "schema_generator_test.pdb"
  "schema_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
