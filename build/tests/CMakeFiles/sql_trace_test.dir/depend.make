# Empty dependencies file for sql_trace_test.
# This may be replaced when dependencies are built.
