file(REMOVE_RECURSE
  "CMakeFiles/sql_trace_test.dir/sql_trace_test.cc.o"
  "CMakeFiles/sql_trace_test.dir/sql_trace_test.cc.o.d"
  "sql_trace_test"
  "sql_trace_test.pdb"
  "sql_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
