
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sql_test.cc" "tests/CMakeFiles/sql_test.dir/sql_test.cc.o" "gcc" "tests/CMakeFiles/sql_test.dir/sql_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/precis_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/semistructured/CMakeFiles/precis_semistructured.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/precis_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/translator/CMakeFiles/precis_translator.dir/DependInfo.cmake"
  "/root/repo/build/src/precis/CMakeFiles/precis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/precis_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/precis_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/precis_text.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/precis_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/precis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
