# Empty dependencies file for profile_cache_test.
# This may be replaced when dependencies are built.
