file(REMOVE_RECURSE
  "CMakeFiles/profile_cache_test.dir/profile_cache_test.cc.o"
  "CMakeFiles/profile_cache_test.dir/profile_cache_test.cc.o.d"
  "profile_cache_test"
  "profile_cache_test.pdb"
  "profile_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
