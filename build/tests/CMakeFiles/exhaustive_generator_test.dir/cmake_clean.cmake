file(REMOVE_RECURSE
  "CMakeFiles/exhaustive_generator_test.dir/exhaustive_generator_test.cc.o"
  "CMakeFiles/exhaustive_generator_test.dir/exhaustive_generator_test.cc.o.d"
  "exhaustive_generator_test"
  "exhaustive_generator_test.pdb"
  "exhaustive_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exhaustive_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
