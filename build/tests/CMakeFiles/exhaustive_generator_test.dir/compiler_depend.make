# Empty compiler generated dependencies file for exhaustive_generator_test.
# This may be replaced when dependencies are built.
