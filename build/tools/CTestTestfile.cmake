# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(shell_query_and_narrative "sh" "-c" "printf 'dataset movies 50\\nset tuples 3\\nquery Woody Allen\\ntext\\nquit\\n' | /root/repo/build/tools/precis_shell | grep -q 'Woody Allen was born on December 1, 1935'")
set_tests_properties(shell_query_and_narrative PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(shell_save_load_roundtrip "sh" "-c" "printf 'dataset movies 50\\nquery Woody Allen\\nsave /root/repo/build/tools/roundtrip.pdb\\nload /root/repo/build/tools/roundtrip.pdb\\nset min-weight 0.5\\nquery Match Point\\nquit\\n' | /root/repo/build/tools/precis_shell | grep -q 'MOVIE -(did)-> DIRECTOR'")
set_tests_properties(shell_save_load_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(shell_json_output "sh" "-c" "printf 'dataset movies 50\\nquery Woody Allen\\njson\\nquit\\n' | /root/repo/build/tools/precis_shell | grep -q '\"token\":\"Woody Allen\"'")
set_tests_properties(shell_json_output PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(shell_rejects_unknown_command "sh" "-c" "printf 'frobnicate\\nquit\\n' | /root/repo/build/tools/precis_shell | grep -q \"unknown command 'frobnicate'\"")
set_tests_properties(shell_rejects_unknown_command PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
