# Empty compiler generated dependencies file for precis_shell.
# This may be replaced when dependencies are built.
