file(REMOVE_RECURSE
  "CMakeFiles/precis_shell.dir/precis_shell.cc.o"
  "CMakeFiles/precis_shell.dir/precis_shell.cc.o.d"
  "precis_shell"
  "precis_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precis_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
