# Empty dependencies file for precis_common.
# This may be replaced when dependencies are built.
