file(REMOVE_RECURSE
  "CMakeFiles/precis_common.dir/random.cc.o"
  "CMakeFiles/precis_common.dir/random.cc.o.d"
  "CMakeFiles/precis_common.dir/status.cc.o"
  "CMakeFiles/precis_common.dir/status.cc.o.d"
  "CMakeFiles/precis_common.dir/string_util.cc.o"
  "CMakeFiles/precis_common.dir/string_util.cc.o.d"
  "libprecis_common.a"
  "libprecis_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precis_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
