file(REMOVE_RECURSE
  "libprecis_common.a"
)
