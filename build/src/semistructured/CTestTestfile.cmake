# CMake generated Testfile for 
# Source directory: /root/repo/src/semistructured
# Build directory: /root/repo/build/src/semistructured
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
