# Empty dependencies file for precis_semistructured.
# This may be replaced when dependencies are built.
