file(REMOVE_RECURSE
  "libprecis_semistructured.a"
)
