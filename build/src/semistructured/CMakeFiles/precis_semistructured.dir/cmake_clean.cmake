file(REMOVE_RECURSE
  "CMakeFiles/precis_semistructured.dir/document.cc.o"
  "CMakeFiles/precis_semistructured.dir/document.cc.o.d"
  "CMakeFiles/precis_semistructured.dir/shredder.cc.o"
  "CMakeFiles/precis_semistructured.dir/shredder.cc.o.d"
  "libprecis_semistructured.a"
  "libprecis_semistructured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precis_semistructured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
