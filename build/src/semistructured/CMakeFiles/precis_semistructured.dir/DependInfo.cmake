
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/semistructured/document.cc" "src/semistructured/CMakeFiles/precis_semistructured.dir/document.cc.o" "gcc" "src/semistructured/CMakeFiles/precis_semistructured.dir/document.cc.o.d"
  "/root/repo/src/semistructured/shredder.cc" "src/semistructured/CMakeFiles/precis_semistructured.dir/shredder.cc.o" "gcc" "src/semistructured/CMakeFiles/precis_semistructured.dir/shredder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/precis_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/precis_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/precis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
