file(REMOVE_RECURSE
  "libprecis_baseline.a"
)
