# Empty compiler generated dependencies file for precis_baseline.
# This may be replaced when dependencies are built.
