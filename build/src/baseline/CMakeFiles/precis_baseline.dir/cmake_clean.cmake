file(REMOVE_RECURSE
  "CMakeFiles/precis_baseline.dir/keyword_search.cc.o"
  "CMakeFiles/precis_baseline.dir/keyword_search.cc.o.d"
  "libprecis_baseline.a"
  "libprecis_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precis_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
