# Empty compiler generated dependencies file for precis_core.
# This may be replaced when dependencies are built.
