file(REMOVE_RECURSE
  "CMakeFiles/precis_core.dir/constraints.cc.o"
  "CMakeFiles/precis_core.dir/constraints.cc.o.d"
  "CMakeFiles/precis_core.dir/cost_model.cc.o"
  "CMakeFiles/precis_core.dir/cost_model.cc.o.d"
  "CMakeFiles/precis_core.dir/database_generator.cc.o"
  "CMakeFiles/precis_core.dir/database_generator.cc.o.d"
  "CMakeFiles/precis_core.dir/dot_export.cc.o"
  "CMakeFiles/precis_core.dir/dot_export.cc.o.d"
  "CMakeFiles/precis_core.dir/engine.cc.o"
  "CMakeFiles/precis_core.dir/engine.cc.o.d"
  "CMakeFiles/precis_core.dir/exhaustive_generator.cc.o"
  "CMakeFiles/precis_core.dir/exhaustive_generator.cc.o.d"
  "CMakeFiles/precis_core.dir/json_export.cc.o"
  "CMakeFiles/precis_core.dir/json_export.cc.o.d"
  "CMakeFiles/precis_core.dir/result_schema.cc.o"
  "CMakeFiles/precis_core.dir/result_schema.cc.o.d"
  "CMakeFiles/precis_core.dir/schema_generator.cc.o"
  "CMakeFiles/precis_core.dir/schema_generator.cc.o.d"
  "CMakeFiles/precis_core.dir/tuple_weights.cc.o"
  "CMakeFiles/precis_core.dir/tuple_weights.cc.o.d"
  "libprecis_core.a"
  "libprecis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
