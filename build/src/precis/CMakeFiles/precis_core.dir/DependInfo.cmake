
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/precis/constraints.cc" "src/precis/CMakeFiles/precis_core.dir/constraints.cc.o" "gcc" "src/precis/CMakeFiles/precis_core.dir/constraints.cc.o.d"
  "/root/repo/src/precis/cost_model.cc" "src/precis/CMakeFiles/precis_core.dir/cost_model.cc.o" "gcc" "src/precis/CMakeFiles/precis_core.dir/cost_model.cc.o.d"
  "/root/repo/src/precis/database_generator.cc" "src/precis/CMakeFiles/precis_core.dir/database_generator.cc.o" "gcc" "src/precis/CMakeFiles/precis_core.dir/database_generator.cc.o.d"
  "/root/repo/src/precis/dot_export.cc" "src/precis/CMakeFiles/precis_core.dir/dot_export.cc.o" "gcc" "src/precis/CMakeFiles/precis_core.dir/dot_export.cc.o.d"
  "/root/repo/src/precis/engine.cc" "src/precis/CMakeFiles/precis_core.dir/engine.cc.o" "gcc" "src/precis/CMakeFiles/precis_core.dir/engine.cc.o.d"
  "/root/repo/src/precis/exhaustive_generator.cc" "src/precis/CMakeFiles/precis_core.dir/exhaustive_generator.cc.o" "gcc" "src/precis/CMakeFiles/precis_core.dir/exhaustive_generator.cc.o.d"
  "/root/repo/src/precis/json_export.cc" "src/precis/CMakeFiles/precis_core.dir/json_export.cc.o" "gcc" "src/precis/CMakeFiles/precis_core.dir/json_export.cc.o.d"
  "/root/repo/src/precis/result_schema.cc" "src/precis/CMakeFiles/precis_core.dir/result_schema.cc.o" "gcc" "src/precis/CMakeFiles/precis_core.dir/result_schema.cc.o.d"
  "/root/repo/src/precis/schema_generator.cc" "src/precis/CMakeFiles/precis_core.dir/schema_generator.cc.o" "gcc" "src/precis/CMakeFiles/precis_core.dir/schema_generator.cc.o.d"
  "/root/repo/src/precis/tuple_weights.cc" "src/precis/CMakeFiles/precis_core.dir/tuple_weights.cc.o" "gcc" "src/precis/CMakeFiles/precis_core.dir/tuple_weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/precis_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/precis_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/precis_text.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/precis_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/precis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
