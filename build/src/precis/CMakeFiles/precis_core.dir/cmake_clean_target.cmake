file(REMOVE_RECURSE
  "libprecis_core.a"
)
