# Empty dependencies file for precis_storage.
# This may be replaced when dependencies are built.
