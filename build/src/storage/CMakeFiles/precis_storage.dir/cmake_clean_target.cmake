file(REMOVE_RECURSE
  "libprecis_storage.a"
)
