file(REMOVE_RECURSE
  "CMakeFiles/precis_storage.dir/database.cc.o"
  "CMakeFiles/precis_storage.dir/database.cc.o.d"
  "CMakeFiles/precis_storage.dir/relation.cc.o"
  "CMakeFiles/precis_storage.dir/relation.cc.o.d"
  "CMakeFiles/precis_storage.dir/schema.cc.o"
  "CMakeFiles/precis_storage.dir/schema.cc.o.d"
  "CMakeFiles/precis_storage.dir/serialization.cc.o"
  "CMakeFiles/precis_storage.dir/serialization.cc.o.d"
  "CMakeFiles/precis_storage.dir/value.cc.o"
  "CMakeFiles/precis_storage.dir/value.cc.o.d"
  "libprecis_storage.a"
  "libprecis_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precis_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
