file(REMOVE_RECURSE
  "libprecis_text.a"
)
