# Empty dependencies file for precis_text.
# This may be replaced when dependencies are built.
