file(REMOVE_RECURSE
  "CMakeFiles/precis_text.dir/inverted_index.cc.o"
  "CMakeFiles/precis_text.dir/inverted_index.cc.o.d"
  "CMakeFiles/precis_text.dir/synonyms.cc.o"
  "CMakeFiles/precis_text.dir/synonyms.cc.o.d"
  "CMakeFiles/precis_text.dir/tokenizer.cc.o"
  "CMakeFiles/precis_text.dir/tokenizer.cc.o.d"
  "libprecis_text.a"
  "libprecis_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precis_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
