file(REMOVE_RECURSE
  "CMakeFiles/precis_translator.dir/catalog.cc.o"
  "CMakeFiles/precis_translator.dir/catalog.cc.o.d"
  "CMakeFiles/precis_translator.dir/template.cc.o"
  "CMakeFiles/precis_translator.dir/template.cc.o.d"
  "CMakeFiles/precis_translator.dir/translator.cc.o"
  "CMakeFiles/precis_translator.dir/translator.cc.o.d"
  "libprecis_translator.a"
  "libprecis_translator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precis_translator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
