file(REMOVE_RECURSE
  "libprecis_translator.a"
)
