# Empty compiler generated dependencies file for precis_translator.
# This may be replaced when dependencies are built.
