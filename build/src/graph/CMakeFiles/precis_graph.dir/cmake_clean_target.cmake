file(REMOVE_RECURSE
  "libprecis_graph.a"
)
