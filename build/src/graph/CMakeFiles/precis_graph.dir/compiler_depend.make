# Empty compiler generated dependencies file for precis_graph.
# This may be replaced when dependencies are built.
