file(REMOVE_RECURSE
  "CMakeFiles/precis_graph.dir/path.cc.o"
  "CMakeFiles/precis_graph.dir/path.cc.o.d"
  "CMakeFiles/precis_graph.dir/schema_graph.cc.o"
  "CMakeFiles/precis_graph.dir/schema_graph.cc.o.d"
  "CMakeFiles/precis_graph.dir/weight_profile.cc.o"
  "CMakeFiles/precis_graph.dir/weight_profile.cc.o.d"
  "libprecis_graph.a"
  "libprecis_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precis_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
