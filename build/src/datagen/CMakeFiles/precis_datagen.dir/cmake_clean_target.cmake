file(REMOVE_RECURSE
  "libprecis_datagen.a"
)
