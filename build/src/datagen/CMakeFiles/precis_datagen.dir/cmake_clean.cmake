file(REMOVE_RECURSE
  "CMakeFiles/precis_datagen.dir/bibliography_dataset.cc.o"
  "CMakeFiles/precis_datagen.dir/bibliography_dataset.cc.o.d"
  "CMakeFiles/precis_datagen.dir/movies_dataset.cc.o"
  "CMakeFiles/precis_datagen.dir/movies_dataset.cc.o.d"
  "CMakeFiles/precis_datagen.dir/movies_templates.cc.o"
  "CMakeFiles/precis_datagen.dir/movies_templates.cc.o.d"
  "CMakeFiles/precis_datagen.dir/workload.cc.o"
  "CMakeFiles/precis_datagen.dir/workload.cc.o.d"
  "libprecis_datagen.a"
  "libprecis_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precis_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
