# Empty compiler generated dependencies file for precis_datagen.
# This may be replaced when dependencies are built.
