file(REMOVE_RECURSE
  "CMakeFiles/precis_sql.dir/select.cc.o"
  "CMakeFiles/precis_sql.dir/select.cc.o.d"
  "libprecis_sql.a"
  "libprecis_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precis_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
