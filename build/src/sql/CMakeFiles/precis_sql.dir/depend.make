# Empty dependencies file for precis_sql.
# This may be replaced when dependencies are built.
