file(REMOVE_RECURSE
  "libprecis_sql.a"
)
