file(REMOVE_RECURSE
  "CMakeFiles/keyword_search_comparison.dir/keyword_search_comparison.cpp.o"
  "CMakeFiles/keyword_search_comparison.dir/keyword_search_comparison.cpp.o.d"
  "keyword_search_comparison"
  "keyword_search_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyword_search_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
