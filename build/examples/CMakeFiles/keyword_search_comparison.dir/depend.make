# Empty dependencies file for keyword_search_comparison.
# This may be replaced when dependencies are built.
