# Empty compiler generated dependencies file for semistructured.
# This may be replaced when dependencies are built.
