file(REMOVE_RECURSE
  "CMakeFiles/semistructured.dir/semistructured.cpp.o"
  "CMakeFiles/semistructured.dir/semistructured.cpp.o.d"
  "semistructured"
  "semistructured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semistructured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
