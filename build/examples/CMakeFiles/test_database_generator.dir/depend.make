# Empty dependencies file for test_database_generator.
# This may be replaced when dependencies are built.
