file(REMOVE_RECURSE
  "CMakeFiles/test_database_generator.dir/test_database_generator.cpp.o"
  "CMakeFiles/test_database_generator.dir/test_database_generator.cpp.o.d"
  "test_database_generator"
  "test_database_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_database_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
