// Personalization (paper §3.1): the same précis query answered under
// different weight profiles and constraints.
//
// "Reviewers and cinema fans have access to a movies database. The former
//  may be typically interested in in-depth, detailed answers ... Cinema fans
//  usually prefer shorter answers ... Using user-specific weights allows
//  generating personalized answers."

#include <cstdio>
#include <iostream>
#include <memory>

#include "datagen/movies_dataset.h"
#include "datagen/movies_templates.h"
#include "graph/weight_profile.h"
#include "precis/engine.h"
#include "translator/translator.h"

namespace {

using namespace precis;

void AskAs(const char* persona, const Database& db, const SchemaGraph& graph,
           const TemplateCatalog& catalog, const DegreeConstraint& degree,
           const CardinalityConstraint& cardinality) {
  auto engine = PrecisEngine::Create(&db, &graph);
  if (!engine.ok()) {
    std::cerr << engine.status() << "\n";
    return;
  }
  auto answer = engine->Answer(PrecisQuery{{"Woody Allen"}}, degree,
                               cardinality);
  if (!answer.ok()) {
    std::cerr << answer.status() << "\n";
    return;
  }
  Translator translator(&catalog);
  auto text = translator.Render(*answer);
  std::printf("=== %s ===\n", persona);
  std::printf("degree: %s | cardinality: %s\n", degree.ToString().c_str(),
              cardinality.ToString().c_str());
  std::printf("schema: %zu relations, %zu projected attributes; data: %zu "
              "tuples\n\n",
              answer->schema.relations().size(),
              answer->schema.TotalProjectedAttributes(),
              answer->database.TotalTuples());
  if (text.ok()) std::printf("%s\n\n", text->c_str());
}

}  // namespace

int main() {
  MoviesConfig config;
  config.num_movies = 500;
  auto dataset = MoviesDataset::Create(config);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  auto catalog = BuildMoviesTemplateCatalog();
  if (!catalog.ok()) {
    std::cerr << catalog.status() << "\n";
    return 1;
  }

  // The cinema fan: default weights, short answers (tight constraints).
  AskAs("Cinema fan (short answers)", dataset->db(), dataset->graph(),
        *catalog, *MinPathWeight(0.95), *MaxTuplesPerRelation(2));

  // The reviewer: default weights, in-depth answers (loose constraints).
  AskAs("Reviewer (in-depth answers)", dataset->db(), dataset->graph(),
        *catalog, *MinPathWeight(0.6), *MaxTuplesPerRelation(10));

  // A user whose profile damps genres and boosts theatre information:
  // "a user may be interested in the region where a theatre is located,
  //  while another may be interested in a theatre's phone."
  auto personalized = BuildMoviesGraph();
  if (!personalized.ok()) {
    std::cerr << personalized.status() << "\n";
    return 1;
  }
  WeightProfile profile("theatre-goer");
  profile.SetJoin("MOVIE", "GENRE", 0.3)
      .SetJoin("MOVIE", "PLAY", 0.95)
      .SetJoin("PLAY", "THEATRE", 1.0)
      .SetProjection("THEATRE", "region", 0.95)
      .SetProjection("THEATRE", "phone", 0.2)
      .SetProjection("PLAY", "date", 0.9);
  if (auto s = profile.ApplyTo(&*personalized); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  AskAs("Theatre-goer profile (genres damped, plays boosted)",
        dataset->db(), *personalized, *catalog, *MinPathWeight(0.85),
        *MaxTuplesPerRelation(5));
  return 0;
}
