// Précis over a second domain: the bibliography database.
//
// The engine is schema-agnostic; this example runs the same pipeline as
// quickstart.cpp against the DBLP-like schema of
// datagen/bibliography_dataset.h — author, keyword, and venue queries, each
// rendered through the bibliography template catalog.

#include <cstdio>
#include <iostream>

#include "datagen/bibliography_dataset.h"
#include "precis/engine.h"
#include "translator/translator.h"

namespace {

using namespace precis;

void Ask(PrecisEngine* engine, const TemplateCatalog& catalog,
         const std::string& token, double threshold, size_t tuples) {
  auto answer = engine->Answer(PrecisQuery{{token}},
                               *MinPathWeight(threshold),
                               *MaxTuplesPerRelation(tuples));
  if (!answer.ok()) {
    std::cerr << answer.status() << "\n";
    return;
  }
  std::printf("Q = {\"%s\"}  (w >= %.2f, <= %zu tuples/relation)\n",
              token.c_str(), threshold, tuples);
  if (answer->empty()) {
    std::printf("  no occurrences.\n\n");
    return;
  }
  std::printf("%s\n", answer->database.DescribeSchema().c_str());
  Translator translator(&catalog);
  auto text = translator.Render(*answer);
  if (text.ok() && !text->empty()) std::printf("%s\n\n", text->c_str());
}

}  // namespace

int main() {
  BibliographyConfig config;
  config.num_papers = 400;
  auto dataset = BibliographyDataset::Create(config);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  std::printf("Bibliography database: %zu tuples\n\n",
              dataset->db().TotalTuples());

  auto engine = PrecisEngine::Create(&dataset->db(), &dataset->graph());
  if (!engine.ok()) {
    std::cerr << engine.status() << "\n";
    return 1;
  }
  auto catalog = BuildBibliographyTemplateCatalog();
  if (!catalog.ok()) {
    std::cerr << catalog.status() << "\n";
    return 1;
  }

  Ask(&*engine, *catalog, "Ada Codd", 0.8, 5);      // an author
  Ask(&*engine, *catalog, "btree", 0.9, 4);         // a keyword
  Ask(&*engine, *catalog, "SIGMOD", 0.7, 3);        // a venue
  return 0;
}
