// §2 side by side: what a DISCOVER/DBXplorer-style keyword search returns
// vs what a précis query returns, for the same tokens.
//
// "The answer provided by existing approaches for 'Woody Allen' would be in
//  the form of relation-attribute pair ... On the contrary, the answer to a
//  précis query might also contain information found in other parts of the
//  database, e.g. movies directed by Woody Allen."

#include <cstdio>
#include <iostream>

#include "baseline/keyword_search.h"
#include "datagen/movies_dataset.h"
#include "datagen/movies_templates.h"
#include "precis/engine.h"
#include "translator/translator.h"

int main() {
  using namespace precis;

  MoviesConfig config;
  config.num_movies = 500;
  auto dataset = MoviesDataset::Create(config);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }

  std::printf("================ keyword search (DISCOVER-style) =========\n");
  auto baseline =
      KeywordSearchBaseline::Create(&dataset->db(), &dataset->graph());
  if (!baseline.ok()) {
    std::cerr << baseline.status() << "\n";
    return 1;
  }
  KeywordSearchOptions options;
  options.top_k = 5;
  auto flat = baseline->Search({"Woody Allen"}, options);
  if (!flat.ok()) {
    std::cerr << flat.status() << "\n";
    return 1;
  }
  for (const JoinedTupleTree& tree : *flat) {
    std::printf("  [%zu joins] %s\n", tree.num_joins,
                tree.ToString().c_str());
  }
  std::printf("(flat matches; nothing about the movies around them)\n\n");

  std::printf("================ precis query ============================\n");
  auto engine = PrecisEngine::Create(&dataset->db(), &dataset->graph());
  if (!engine.ok()) {
    std::cerr << engine.status() << "\n";
    return 1;
  }
  auto answer = engine->Answer(PrecisQuery{{"Woody Allen"}},
                               *MinPathWeight(0.9), *MaxTuplesPerRelation(3));
  if (!answer.ok()) {
    std::cerr << answer.status() << "\n";
    return 1;
  }
  std::printf("a whole sub-database:\n%s\n",
              answer->database.DescribeSchema().c_str());
  auto catalog = BuildMoviesTemplateCatalog();
  Translator translator(&*catalog);
  auto text = translator.Render(*answer);
  if (text.ok()) std::printf("and its narrative:\n%s\n", text->c_str());

  // Two-keyword case: the baseline shines at connecting two known values;
  // précis treats both as seeds of one synthesis.
  std::printf("\n========== two keywords: {Woody Allen, Match Point} ======\n");
  auto flat2 = baseline->Search({"Woody Allen", "Match Point"}, options);
  if (flat2.ok()) {
    for (const JoinedTupleTree& tree : *flat2) {
      std::printf("  [%zu joins] %s\n", tree.num_joins,
                  tree.ToString().c_str());
    }
  }
  return 0;
}
