// Quickstart: the paper's running example, end to end.
//
// Builds the movies database (Fig. 1), asks the précis query
// Q = {"Woody Allen"} with the paper's constraints (projections of weight
// >= 0.9; up to three tuples per relation), and prints every stage: token
// occurrences, the result schema D', the result database D', and the
// natural-language précis.

#include <cstdio>
#include <iostream>

#include "datagen/movies_dataset.h"
#include "datagen/movies_templates.h"
#include "precis/engine.h"
#include "translator/translator.h"

int main() {
  using namespace precis;

  // 1. The source database and its annotated schema graph.
  MoviesConfig config;
  config.num_movies = 1000;
  auto dataset = MoviesDataset::Create(config);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  std::printf("Source database: %zu relations, %zu tuples\n\n",
              dataset->db().num_relations(), dataset->db().TotalTuples());

  // 2. The précis engine (inverted index + schema/database generators).
  auto engine = PrecisEngine::Create(&dataset->db(), &dataset->graph());
  if (!engine.ok()) {
    std::cerr << engine.status() << "\n";
    return 1;
  }

  // 3. Ask. Degree: only projections with weight >= 0.9. Cardinality: at
  //    most three tuples per relation (the paper's §5 running constraints).
  PrecisQuery query{{"Woody Allen"}};
  auto degree = MinPathWeight(0.9);
  auto cardinality = MaxTuplesPerRelation(3);
  auto answer = engine->Answer(query, *degree, *cardinality);
  if (!answer.ok()) {
    std::cerr << answer.status() << "\n";
    return 1;
  }

  std::printf("Token occurrences:\n");
  for (const TokenMatch& match : answer->matches) {
    for (const TokenOccurrence& occ : match.occurrences()) {
      std::printf("  \"%s\" found in %s.%s (%zu tuples)\n",
                  match.token.c_str(), occ.relation.c_str(),
                  occ.attribute.c_str(), occ.tids.size());
    }
  }

  std::printf("\nResult schema D' (Fig. 4):\n%s\n",
              answer->schema.ToString().c_str());
  std::printf("Result database D':\n%s\n",
              answer->database.DescribeSchema().c_str());

  // 4. Translate into the paper's narrative form (§5.3).
  auto catalog = BuildMoviesTemplateCatalog();
  if (!catalog.ok()) {
    std::cerr << catalog.status() << "\n";
    return 1;
  }
  Translator translator(&*catalog);
  auto text = translator.Render(*answer);
  if (!text.ok()) {
    std::cerr << text.status() << "\n";
    return 1;
  }
  std::printf("Précis:\n%s\n", text->c_str());
  return 0;
}
