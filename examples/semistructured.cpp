// Précis over semi-structured data.
//
// "Our approach is applicable to other types of (semi-)structured data as
//  well. However, for presentation reasons, we focus on relational data
//  here." — this example makes the claim concrete: parse an XML-like
// document, shred it into relations + a weighted schema graph, and run the
// unchanged précis engine over it.

#include <cstdio>
#include <iostream>

#include "precis/engine.h"
#include "semistructured/document.h"
#include "semistructured/shredder.h"

namespace {

constexpr const char* kCatalog = R"(
<catalog name="Criterion Shelf">
  <director name="Woody Allen" born="1935">
    <film year="2005" runtime="124">
      <title>Match Point</title>
      <note>shot in London</note>
    </film>
    <film year="2003" runtime="108">
      <title>Anything Else</title>
    </film>
  </director>
  <director name="Agnes Varda" born="1928">
    <film year="1962" runtime="90">
      <title>Cleo from 5 to 7</title>
      <note>real-time narrative</note>
    </film>
  </director>
</catalog>
)";

}  // namespace

int main() {
  using namespace precis;

  auto doc = ParseDocument(kCatalog);
  if (!doc.ok()) {
    std::cerr << doc.status() << "\n";
    return 1;
  }
  std::printf("Document (%zu elements):\n%s\n\n", (*doc)->SubtreeSize(),
              (*doc)->ToXml().c_str());

  auto shredded = ShreddedDocument::Shred(**doc);
  if (!shredded.ok()) {
    std::cerr << shredded.status() << "\n";
    return 1;
  }
  std::printf("Shredded into:\n%s\n",
              shredded->db().DescribeSchema().c_str());

  auto engine = PrecisEngine::Create(&shredded->db(), &shredded->graph());
  if (!engine.ok()) {
    std::cerr << engine.status() << "\n";
    return 1;
  }

  for (const char* token : {"Match Point", "Agnes Varda"}) {
    auto answer = engine->Answer(PrecisQuery{{token}}, *MinPathWeight(0.5),
                                 *MaxTuplesPerRelation(10));
    if (!answer.ok()) {
      std::cerr << answer.status() << "\n";
      return 1;
    }
    std::printf("précis of {\"%s\"}:\n%s\n", token,
                answer->database.DescribeSchema().c_str());
  }
  return 0;
}
