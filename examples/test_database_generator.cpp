// The paper's second motivating use case (§1): carving a small, consistent
// database out of a large one.
//
// "Given large databases, enterprises often need smaller subsets that
//  conform to the original schema and satisfy all of its constraints in
//  order to perform realistic tests of new applications before deploying
//  them to production. ... Generating such databases with current
//  relational technology, one relation at a time and manually deriving the
//  appropriate constraints, is not acceptable."
//
// A précis query does it in one shot: seed with a handful of tuples, cover
// the whole schema with a permissive degree constraint, cap the size with a
// cardinality constraint, and the generator emits a sub-database whose
// declared foreign keys are guaranteed to hold.

#include <cstdio>
#include <iostream>

#include "datagen/movies_dataset.h"
#include "datagen/workload.h"
#include "precis/database_generator.h"
#include "precis/schema_generator.h"
#include "storage/serialization.h"

int main() {
  using namespace precis;

  // The "production" database: sizeable.
  MoviesConfig config;
  config.num_movies = 10000;
  auto dataset = MoviesDataset::Create(config);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  std::printf("Production database:\n%s\n",
              dataset->db().DescribeSchema().c_str());

  // Seed with a few random movies; cover every relation reachable on the
  // schema graph (threshold 0 admits all edges).
  ResultSchemaGenerator schema_gen(&dataset->graph());
  auto schema =
      schema_gen.Generate({std::string("MOVIE")}, *MinPathWeight(0.0));
  if (!schema.ok()) {
    std::cerr << schema.status() << "\n";
    return 1;
  }

  Rng rng(7);
  auto seed_tids = RandomSeedTids(dataset->db(), "MOVIE", &rng, 25);
  if (!seed_tids.ok()) {
    std::cerr << seed_tids.status() << "\n";
    return 1;
  }
  SeedTids seeds = {
      {*dataset->graph().RelationId("MOVIE"), *seed_tids}};

  ResultDatabaseGenerator db_gen(&dataset->db());
  auto test_db =
      db_gen.Generate(*schema, seeds, *MaxTuplesPerRelation(200));
  if (!test_db.ok()) {
    std::cerr << test_db.status() << "\n";
    return 1;
  }

  std::printf("Derived test database (25 seed movies, <= 200 tuples per "
              "relation):\n%s\n",
              test_db->DescribeSchema().c_str());
  const DbGenReport& report = db_gen.last_report();
  std::printf("executed %zu joins; %zu tuples total\n",
              report.executed_edges.size(), report.total_tuples);
  if (!report.dropped_foreign_keys.empty()) {
    std::printf("foreign keys dropped by the cardinality cut:\n");
    for (const std::string& fk : report.dropped_foreign_keys) {
      std::printf("  %s\n", fk.c_str());
    }
  }

  // The headline guarantee: declared constraints actually hold.
  Status integrity = test_db->ValidateForeignKeys();
  std::printf("\nreferential integrity of the test database: %s\n",
              integrity.ToString().c_str());
  std::printf("shrink factor: %.1fx (%zu -> %zu tuples)\n",
              static_cast<double>(dataset->db().TotalTuples()) /
                  static_cast<double>(test_db->TotalTuples()),
              dataset->db().TotalTuples(), test_db->TotalTuples());

  // Ship it: dump the derived database to disk and verify it loads back.
  const std::string path = "/tmp/precis_test_database.pdb";
  if (auto s = SaveDatabaseToFile(*test_db, path); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  auto reloaded = LoadDatabaseFromFile(path);
  if (!reloaded.ok()) {
    std::cerr << reloaded.status() << "\n";
    return 1;
  }
  std::printf("saved to %s and reloaded: %zu tuples, integrity %s\n",
              path.c_str(), reloaded->TotalTuples(),
              reloaded->ValidateForeignKeys().ToString().c_str());
  return integrity.ok() ? 0 : 1;
}
