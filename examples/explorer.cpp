// Interactive exploration from the command line (paper §3.1):
//
// "Weights may be set by the user at query time using an appropriate user
//  interface. This option enables interactive exploration of the contents
//  of a database. ... The user may explore different regions of the
//  database starting, for example, from those containing objects closely
//  related to the topic of a query and progressively expanding to parts of
//  the database containing objects more loosely related to it."
//
// Usage:
//   explorer [options] TOKEN [TOKEN...]
// Options:
//   --movies N            dataset size (default 500)
//   --min-weight W        degree constraint: path weight >= W (default 0.9)
//   --max-attrs R         degree constraint: top-R projections instead
//   --tuples-per-rel C    cardinality constraint (default 5)
//   --strategy S          auto | naiveq | roundrobin
//   --join FROM TO W      override one join-edge weight at query time
//   --proj REL ATTR W     override one projection-edge weight
//   --rank-by-year        weight MOVIE tuples by recency (ranked selection)
//   --trace-sql           print the statements the generator submits
//   --dot FILE            write the result schema as Graphviz DOT to FILE
//
// Example:
//   explorer --min-weight 0.6 --join MOVIE GENRE 0.2 "Woody Allen"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <fstream>

#include "datagen/movies_dataset.h"
#include "datagen/movies_templates.h"
#include "precis/dot_export.h"
#include "precis/engine.h"
#include "precis/tuple_weights.h"
#include "translator/translator.h"

namespace {

using namespace precis;

int Fail(const std::string& message) {
  std::cerr << "explorer: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  size_t movies = 500;
  double min_weight = 0.9;
  long max_attrs = -1;
  size_t tuples_per_rel = 5;
  SubsetStrategy strategy = SubsetStrategy::kAuto;
  bool rank_by_year = false;
  bool trace_sql = false;
  std::string dot_path;
  struct JoinOverride {
    std::string from, to;
    double w;
  };
  struct ProjOverride {
    std::string rel, attr;
    double w;
  };
  std::vector<JoinOverride> join_overrides;
  std::vector<ProjOverride> proj_overrides;
  std::vector<std::string> tokens;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need = [&](int n) { return i + n < argc; };
    if (arg == "--movies" && need(1)) {
      movies = static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == "--min-weight" && need(1)) {
      min_weight = std::atof(argv[++i]);
    } else if (arg == "--max-attrs" && need(1)) {
      max_attrs = std::atol(argv[++i]);
    } else if (arg == "--tuples-per-rel" && need(1)) {
      tuples_per_rel = static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == "--strategy" && need(1)) {
      std::string s = argv[++i];
      if (s == "naiveq") {
        strategy = SubsetStrategy::kNaiveQ;
      } else if (s == "roundrobin") {
        strategy = SubsetStrategy::kRoundRobin;
      } else if (s == "auto") {
        strategy = SubsetStrategy::kAuto;
      } else {
        return Fail("unknown strategy '" + s + "'");
      }
    } else if (arg == "--join" && need(3)) {
      JoinOverride o;
      o.from = argv[++i];
      o.to = argv[++i];
      o.w = std::atof(argv[++i]);
      join_overrides.push_back(o);
    } else if (arg == "--proj" && need(3)) {
      ProjOverride o;
      o.rel = argv[++i];
      o.attr = argv[++i];
      o.w = std::atof(argv[++i]);
      proj_overrides.push_back(o);
    } else if (arg == "--rank-by-year") {
      rank_by_year = true;
    } else if (arg == "--trace-sql") {
      trace_sql = true;
    } else if (arg == "--dot" && need(1)) {
      dot_path = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      return Fail("unknown or incomplete option '" + arg + "'");
    } else {
      tokens.push_back(arg);
    }
  }
  if (tokens.empty()) {
    return Fail("no query tokens; try: explorer \"Woody Allen\"");
  }

  MoviesConfig config;
  config.num_movies = movies;
  auto dataset = MoviesDataset::Create(config);
  if (!dataset.ok()) return Fail(dataset.status().ToString());

  // Query-time weight overrides.
  for (const auto& o : join_overrides) {
    if (auto s = dataset->graph().SetJoinWeight(o.from, o.to, o.w); !s.ok()) {
      return Fail(s.ToString());
    }
  }
  for (const auto& o : proj_overrides) {
    if (auto s = dataset->graph().SetProjectionWeight(o.rel, o.attr, o.w);
        !s.ok()) {
      return Fail(s.ToString());
    }
  }

  auto engine = PrecisEngine::Create(&dataset->db(), &dataset->graph());
  if (!engine.ok()) return Fail(engine.status().ToString());

  std::unique_ptr<DegreeConstraint> degree =
      max_attrs >= 0 ? MaxProjections(static_cast<size_t>(max_attrs))
                     : MinPathWeight(min_weight);
  auto cardinality = MaxTuplesPerRelation(tuples_per_rel);

  TupleWeightStore weights;
  DbGenOptions options;
  options.strategy = strategy;
  options.trace_sql = trace_sql;
  if (rank_by_year) {
    if (auto s = WeightsFromNumericAttribute(dataset->db(), "MOVIE", "year",
                                             &weights);
        !s.ok()) {
      return Fail(s.ToString());
    }
    options.tuple_weights = &weights;
  }

  PrecisQuery query{tokens};
  auto answer = engine->Answer(query, *degree, *cardinality, options);
  if (!answer.ok()) return Fail(answer.status().ToString());

  std::printf("degree: %s | cardinality: %s | strategy: %s\n\n",
              degree->ToString().c_str(), cardinality->ToString().c_str(),
              SubsetStrategyToString(strategy));
  if (answer->empty()) {
    std::printf("no occurrences of the given tokens.\n");
    return 0;
  }
  std::printf("result schema:\n%s\n", answer->schema.ToString().c_str());
  if (!dot_path.empty()) {
    std::ofstream dot(dot_path, std::ios::trunc);
    if (dot.is_open()) {
      dot << ResultSchemaToDot(answer->schema);
      std::printf("(result schema graph written to %s)\n\n",
                  dot_path.c_str());
    }
  }
  std::printf("result database:\n%s\n",
              answer->database.DescribeSchema().c_str());
  if (trace_sql) {
    std::printf("submitted statements:\n");
    for (const std::string& sql : answer->report.sql_trace) {
      std::printf("  %s;\n", sql.c_str());
    }
    std::printf("\n");
  }

  auto catalog = BuildMoviesTemplateCatalog();
  if (catalog.ok()) {
    Translator translator(&*catalog);
    auto text = translator.Render(*answer);
    if (text.ok() && !text->empty()) {
      std::printf("précis:\n%s\n", text->c_str());
    }
  }
  return 0;
}
