#!/bin/sh
# CI entry point: builds and tests the tree in four steps.
#
#   1. Release          — the full suite (tier-1 gate).
#   2. Bench smokes     — bench/cache_effectiveness on a tiny dataset (fails
#                         on a zero answer-cache hit rate or any stale
#                         answer served after an insert — epoch invalidation
#                         gate), bench/parallel_dbgen in smoke mode (fails
#                         if any parallel run emits bytes different from the
#                         sequential walk — determinism gate, DESIGN.md
#                         §11), and bench/fault_tolerance in smoke mode
#                         (fails when disarmed fault machinery costs > 5%
#                         throughput or any query fails under injected
#                         faults — robustness gates, DESIGN.md §12), and
#                         bench/kernels in smoke mode (fails when a columnar
#                         kernel disagrees with the row path — data-layout
#                         equivalence gate, DESIGN.md §13).
#   3. ThreadSanitizer  — the concurrency-sensitive tests (ExecutionContext,
#                         PrecisService, engine concurrency, the sharded LRU,
#                         the answer cache, the work-stealing TaskPool, the
#                         parallel database generator, the query Arena and
#                         the SymbolTable interner) rebuilt and run
#                         under TSan, so data races on the shared query path
#                         fail the build rather than ship. The shared pool is
#                         pinned to >= 4 threads so intra-query parallelism
#                         really interleaves under the sanitizer.
#   4. ASan + UBSan     — the chaos smoke gate: the fault-injection suite
#                         and the fuzz-lite chaos sweep rebuilt under
#                         address+undefined sanitizers. Injected faults
#                         exercise every degradation path (drops, failed
#                         lookups, retries, placeholders); this leg proves
#                         those paths are memory- and UB-clean, not merely
#                         green.
#
# PRECIS_SANITIZE=address ./ci.sh swaps the third configuration to ASan.
# All configurations use separate build trees and leave ./build alone.

set -eu

SANITIZER="${PRECIS_SANITIZE:-thread}"
JOBS="$(nproc 2>/dev/null || echo 4)"
ROOT="$(cd "$(dirname "$0")" && pwd)"

echo "=== [1/4] Release build + full test suite ==="
cmake -B "$ROOT/build-release" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$ROOT/build-release" -j "$JOBS"
ctest --test-dir "$ROOT/build-release" --output-on-failure -j "$JOBS"

echo "=== [2/4] Bench smokes (cache + parallel determinism + faults) ==="
PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 \
  PRECIS_BENCH_OUT="$ROOT/build-release/BENCH_cache.json" \
  "$ROOT/build-release/bench/cache_effectiveness"
# Sequential-vs-parallel byte-identity across cardinalities and thread
# counts; a mismatch exits non-zero and fails CI.
PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 \
  PRECIS_BENCH_OUT="$ROOT/build-release/BENCH_parallel_dbgen.json" \
  "$ROOT/build-release/bench/parallel_dbgen_bench"
# Zero-fault overhead (< 5%) + graceful degradation under injected faults.
PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 \
  PRECIS_BENCH_OUT="$ROOT/build-release/BENCH_fault_tolerance.json" \
  "$ROOT/build-release/bench/fault_tolerance"
# Columnar kernels (index probe, fetch+project, token lookup) must agree
# with the row path cell-for-cell (DESIGN.md §13).
PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 \
  PRECIS_BENCH_OUT="$ROOT/build-release/BENCH_kernels.json" \
  "$ROOT/build-release/bench/kernels_bench"

echo "=== [3/4] ${SANITIZER} sanitizer build + concurrency suite ==="
cmake -B "$ROOT/build-$SANITIZER" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPRECIS_SANITIZE="$SANITIZER"
cmake --build "$ROOT/build-$SANITIZER" -j "$JOBS" \
  --target concurrency_test service_test execution_context_test \
           lru_cache_test answer_cache_test task_pool_test \
           parallel_dbgen_test arena_test symbol_table_test
PRECIS_TASK_POOL_THREADS=4 \
  ctest --test-dir "$ROOT/build-$SANITIZER" --output-on-failure -j "$JOBS" \
  -R 'Concurrency|Service|ExecutionContext|LruCache|AnswerCache|TaskPool|ParallelDbGen|Arena|SymbolTable'

echo "=== [4/4] ASan+UBSan build + chaos smoke gate ==="
cmake -B "$ROOT/build-asan-ubsan" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPRECIS_SANITIZE="address,undefined"
cmake --build "$ROOT/build-asan-ubsan" -j "$JOBS" \
  --target fault_injection_test fuzz_lite_test service_test \
           arena_test columnar_test
PRECIS_TASK_POOL_THREADS=4 \
  ctest --test-dir "$ROOT/build-asan-ubsan" --output-on-failure -j "$JOBS" \
  -R 'FaultInjector|Retry|FaultChaos|CacheTaint|Service|FuzzLite|Arena|Column|RelationKernel'

echo "=== CI passed (Release + bench smokes + $SANITIZER + asan,ubsan chaos) ==="
