#!/bin/sh
# CI entry point: builds and tests the tree in two configurations.
#
#   1. Release          — the full suite (tier-1 gate).
#   2. ThreadSanitizer  — the concurrency-sensitive tests (ExecutionContext,
#                         PrecisService, engine concurrency) rebuilt and run
#                         under TSan, so data races on the shared query path
#                         fail the build rather than ship.
#
# PRECIS_SANITIZE=address ./ci.sh swaps the second configuration to ASan.
# Both configurations use separate build trees and leave ./build alone.

set -eu

SANITIZER="${PRECIS_SANITIZE:-thread}"
JOBS="$(nproc 2>/dev/null || echo 4)"
ROOT="$(cd "$(dirname "$0")" && pwd)"

echo "=== [1/2] Release build + full test suite ==="
cmake -B "$ROOT/build-release" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$ROOT/build-release" -j "$JOBS"
ctest --test-dir "$ROOT/build-release" --output-on-failure -j "$JOBS"

echo "=== [2/2] ${SANITIZER} sanitizer build + concurrency suite ==="
cmake -B "$ROOT/build-$SANITIZER" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPRECIS_SANITIZE="$SANITIZER"
cmake --build "$ROOT/build-$SANITIZER" -j "$JOBS" \
  --target concurrency_test service_test execution_context_test
ctest --test-dir "$ROOT/build-$SANITIZER" --output-on-failure -j "$JOBS" \
  -R 'Concurrency|Service|ExecutionContext'

echo "=== CI passed (Release + $SANITIZER) ==="
