#!/bin/sh
# CI entry point: builds and tests the tree in three steps.
#
#   1. Release          — the full suite (tier-1 gate).
#   2. Cache smoke      — bench/cache_effectiveness on a tiny dataset; fails
#                         on a zero answer-cache hit rate or any stale
#                         answer served after an insert (epoch invalidation
#                         gate).
#   3. ThreadSanitizer  — the concurrency-sensitive tests (ExecutionContext,
#                         PrecisService, engine concurrency, the sharded LRU
#                         and the answer cache) rebuilt and run under TSan,
#                         so data races on the shared query path fail the
#                         build rather than ship.
#
# PRECIS_SANITIZE=address ./ci.sh swaps the third configuration to ASan.
# All configurations use separate build trees and leave ./build alone.

set -eu

SANITIZER="${PRECIS_SANITIZE:-thread}"
JOBS="$(nproc 2>/dev/null || echo 4)"
ROOT="$(cd "$(dirname "$0")" && pwd)"

echo "=== [1/3] Release build + full test suite ==="
cmake -B "$ROOT/build-release" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$ROOT/build-release" -j "$JOBS"
ctest --test-dir "$ROOT/build-release" --output-on-failure -j "$JOBS"

echo "=== [2/3] Cache effectiveness smoke (hit rate > 0, zero stale) ==="
PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 \
  PRECIS_BENCH_OUT="$ROOT/build-release/BENCH_cache.json" \
  "$ROOT/build-release/bench/cache_effectiveness"

echo "=== [3/3] ${SANITIZER} sanitizer build + concurrency suite ==="
cmake -B "$ROOT/build-$SANITIZER" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPRECIS_SANITIZE="$SANITIZER"
cmake --build "$ROOT/build-$SANITIZER" -j "$JOBS" \
  --target concurrency_test service_test execution_context_test \
           lru_cache_test answer_cache_test
ctest --test-dir "$ROOT/build-$SANITIZER" --output-on-failure -j "$JOBS" \
  -R 'Concurrency|Service|ExecutionContext|LruCache|AnswerCache'

echo "=== CI passed (Release + cache smoke + $SANITIZER) ==="
