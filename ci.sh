#!/bin/sh
# CI entry point: builds and tests the tree in six steps.
#
#   1. Release          — the full suite (tier-1 gate).
#   2. Bench smokes     — bench/cache_effectiveness on a tiny dataset (fails
#                         on a zero answer-cache hit rate or any stale
#                         answer served after an insert — epoch invalidation
#                         gate), bench/parallel_dbgen in smoke mode (fails
#                         if any parallel run emits bytes different from the
#                         sequential walk — determinism gate, DESIGN.md
#                         §11), and bench/fault_tolerance in smoke mode
#                         (fails when disarmed fault machinery costs > 5%
#                         throughput or any query fails under injected
#                         faults — robustness gates, DESIGN.md §12),
#                         bench/kernels in smoke mode (fails when a columnar
#                         kernel disagrees with the row path, when the SIMD
#                         ScanEquals emits different tids than the scalar
#                         reference, or when a batched index probe differs
#                         from sequential lookups — data-layout equivalence
#                         gates, DESIGN.md §13 + §16), and
#                         bench/shard_scaling in smoke mode (fails when any
#                         sharded run emits a different database or report
#                         than the sequential single-engine walk — shard
#                         determinism gate, DESIGN.md §15).
#   3. Server smoke     — tools/precis_serve started on an ephemeral port
#                         with --shards 2 (the sharded scatter-gather
#                         engine) and driven over real sockets by
#                         bench/load_gen in smoke mode. load_gen fails on
#                         any transport error, unexpected 4xx/5xx, or a
#                         served body that is not byte-identical to the
#                         in-process single-engine answer (DESIGN.md §14 +
#                         §15 byte-identity end-to-end — with --cache on by
#                         default this also proves the memoized body cache
#                         and zero-copy writev path serve the exact same
#                         bytes, §16). load_gen also runs a hit/miss split
#                         pass (reported in smoke; the 1.5x p99 gate arms
#                         in full runs). The leg then SIGTERMs the server
#                         and requires a graceful zero exit.
#   4. Chaos smoke      — tools/precis_serve restarted with --shards 4,
#                         --kill-shard 1 (a fault-scheduled permanently dead
#                         shard), --replicas on (hedged sub-queries) and a
#                         seeded socket-chaos spec, then driven by
#                         bench/load_gen --chaos. The chaos pass gates on
#                         what outage handling promises (DESIGN.md §17):
#                         availability (>= 99% answered 200), honesty (those
#                         200s carry X-Precis-Degraded: true), bounded
#                         latency (p99 <= 3x the healthy baseline scraped
#                         from step 3's BENCH_server.json) and determinism
#                         (re-POSTing the probe is byte-identical). The leg
#                         runs the whole drill twice against freshly started
#                         servers and requires the probe fingerprints of
#                         both runs to match — same seed, same degraded
#                         bytes, across processes.
#   5. ThreadSanitizer  — the concurrency-sensitive tests (ExecutionContext,
#                         PrecisService, engine concurrency, the sharded LRU,
#                         the answer cache, the work-stealing TaskPool, the
#                         parallel database generator, the scatter-gather
#                         shard suite, the query Arena, the SymbolTable
#                         interner and the HTTP server) rebuilt and run
#                         under TSan, so data races on the shared query
#                         path fail the build rather than ship. The shared
#                         pool is pinned to >= 4 threads so intra-query
#                         parallelism really interleaves under the
#                         sanitizer. The shard fault-domain suite (circuit
#                         breakers, hedged sub-queries, degraded merges)
#                         runs here too: hedging races a replica against a
#                         stalled primary by design.
#   6. ASan + UBSan     — the chaos sanitizer gate: the fault-injection
#                         suite, the fuzz-lite chaos sweep (including its
#                         sharded arm and the body-cache insert/query
#                         interleaving sweep), the answer/body cache suite,
#                         the shard suite (circuit breakers, hedged
#                         sub-queries, degraded merges) and the HTTP server
#                         suite (slowloris timeouts, drain, socket chaos)
#                         rebuilt under address+undefined sanitizers.
#                         Injected faults exercise every degradation path
#                         (drops, failed lookups, retries, placeholders,
#                         skipped shards, short writes); this leg proves
#                         those paths are memory- and UB-clean, not merely
#                         green.
#
# PRECIS_SANITIZE=address ./ci.sh swaps the fifth configuration to ASan.
# All configurations use separate build trees and leave ./build alone.

set -eu

SANITIZER="${PRECIS_SANITIZE:-thread}"
JOBS="$(nproc 2>/dev/null || echo 4)"
ROOT="$(cd "$(dirname "$0")" && pwd)"

echo "=== [1/6] Release build + full test suite ==="
cmake -B "$ROOT/build-release" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$ROOT/build-release" -j "$JOBS"
ctest --test-dir "$ROOT/build-release" --output-on-failure -j "$JOBS"

echo "=== [2/6] Bench smokes (cache + parallel determinism + faults) ==="
PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 \
  PRECIS_BENCH_OUT="$ROOT/build-release/BENCH_cache.json" \
  "$ROOT/build-release/bench/cache_effectiveness"
# Sequential-vs-parallel byte-identity across cardinalities and thread
# counts; a mismatch exits non-zero and fails CI.
PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 \
  PRECIS_BENCH_OUT="$ROOT/build-release/BENCH_parallel_dbgen.json" \
  "$ROOT/build-release/bench/parallel_dbgen_bench"
# Zero-fault overhead (< 5%) + graceful degradation under injected faults.
PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 \
  PRECIS_BENCH_OUT="$ROOT/build-release/BENCH_fault_tolerance.json" \
  "$ROOT/build-release/bench/fault_tolerance"
# Columnar kernels (index probe, fetch+project, token lookup, SIMD
# scan-equals, batched probe, phrase intersection) must agree with their
# scalar/sequential references cell-for-cell (DESIGN.md §13 + §16).
PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 \
  PRECIS_BENCH_OUT="$ROOT/build-release/BENCH_kernels.json" \
  "$ROOT/build-release/bench/kernels_bench"
# Sharded scatter-gather byte-identity: every sharded run across shard
# counts {2,4,8} must emit the same database and report as the sequential
# single-engine walk (DESIGN.md §15).
PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 \
  PRECIS_BENCH_OUT="$ROOT/build-release/BENCH_shard.json" \
  "$ROOT/build-release/bench/shard_scaling"

echo "=== [3/6] Server smoke (precis_serve + load_gen over real sockets) ==="
SERVE_LOG="$ROOT/build-release/precis_serve_smoke.log"
# --shards 2 serves through the sharded scatter-gather engine; load_gen's
# identity probe compares served bytes against an in-process SINGLE engine,
# so this leg also checks the sharding byte-identity guarantee end-to-end.
"$ROOT/build-release/tools/precis_serve" \
  --port 0 --movies 300 --workers 2 --io-threads 2 --queue-depth 32 \
  --shards 2 \
  >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
# The binary prints "precis_serve listening on HOST:PORT" once the socket
# is bound; scrape the ephemeral port from the log.
SERVE_PORT=""
i=0
while [ $i -lt 100 ]; do
  SERVE_PORT="$(sed -n 's/^precis_serve listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$SERVE_LOG" 2>/dev/null || true)"
  [ -n "$SERVE_PORT" ] && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "precis_serve exited before binding:" >&2
    cat "$SERVE_LOG" >&2
    exit 1
  fi
  sleep 0.1
  i=$((i + 1))
done
if [ -z "$SERVE_PORT" ]; then
  echo "precis_serve never reported a listening port:" >&2
  cat "$SERVE_LOG" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
# Byte-identity + clean-outcome gates live inside load_gen (exit nonzero on
# any transport error, unexpected status, or body mismatch). The dataset
# size must match the server's so the identity probe compares like answers.
PRECIS_BENCH_TARGET="127.0.0.1:$SERVE_PORT" \
  PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 \
  PRECIS_BENCH_OUT="$ROOT/build-release/BENCH_server.json" \
  "$ROOT/build-release/bench/load_gen" --shards 2
test -s "$ROOT/build-release/BENCH_server.json"
# Graceful drain: SIGTERM must produce a zero exit.
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
  echo "precis_serve did not exit cleanly on SIGTERM:" >&2
  cat "$SERVE_LOG" >&2
  exit 1
fi

echo "=== [4/6] Chaos smoke (dead shard + socket chaos, twice, fingerprints must match) ==="
# The latency gate compares the chaos p99 against the healthy run: scrape
# the worst per-point p99 out of step 3's BENCH_server.json. Smoke points
# hold only a handful of samples (p99 == max sample), so floor the baseline
# at 2 ms to keep one scheduler hiccup from failing a 3x gate that full
# runs apply against real percentiles.
BASELINE_P99="$(grep -o '"p99_ms": [0-9.][0-9.]*' "$ROOT/build-release/BENCH_server.json" \
  | sed 's/.*: //' | sort -g | tail -1)"
BASELINE_P99="$(awk "BEGIN { b = $BASELINE_P99 + 0; print (b < 2.0) ? 2.0 : b }")"
echo "healthy baseline p99: ${BASELINE_P99} ms"
# Two full drills against freshly started servers. Each run kills shard 1
# of 4 permanently (breaker opens, merges skip it), hedges against read
# replicas, and injects seeded short writes at the socket layer; load_gen
# gates availability/honesty/latency/determinism. The probe fingerprint
# must match across the two processes: same seed, same degraded bytes.
CHAOS_FP=""
run=1
while [ $run -le 2 ]; do
  CHAOS_LOG="$ROOT/build-release/precis_serve_chaos_$run.log"
  "$ROOT/build-release/tools/precis_serve" \
    --port 0 --movies 300 --workers 2 --io-threads 2 --queue-depth 32 \
    --shards 4 --replicas on --kill-shard 1 --fault-seed 42 \
    --chaos 'seed=7,short=0.2' \
    >"$CHAOS_LOG" 2>&1 &
  CHAOS_PID=$!
  CHAOS_PORT=""
  i=0
  while [ $i -lt 100 ]; do
    CHAOS_PORT="$(sed -n 's/^precis_serve listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$CHAOS_LOG" 2>/dev/null || true)"
    [ -n "$CHAOS_PORT" ] && break
    if ! kill -0 "$CHAOS_PID" 2>/dev/null; then
      echo "precis_serve (chaos run $run) exited before binding:" >&2
      cat "$CHAOS_LOG" >&2
      exit 1
    fi
    sleep 0.1
    i=$((i + 1))
  done
  if [ -z "$CHAOS_PORT" ]; then
    echo "precis_serve (chaos run $run) never reported a listening port:" >&2
    cat "$CHAOS_LOG" >&2
    kill "$CHAOS_PID" 2>/dev/null || true
    exit 1
  fi
  PRECIS_BENCH_TARGET="127.0.0.1:$CHAOS_PORT" \
    PRECIS_BENCH_MOVIES=300 PRECIS_BENCH_SMOKE=1 \
    PRECIS_BENCH_BASELINE_P99_MS="$BASELINE_P99" \
    PRECIS_BENCH_OUT="$ROOT/build-release/BENCH_chaos.json" \
    "$ROOT/build-release/bench/load_gen" --shards 4 --chaos
  test -s "$ROOT/build-release/BENCH_chaos.json"
  kill -TERM "$CHAOS_PID"
  if ! wait "$CHAOS_PID"; then
    echo "precis_serve (chaos run $run) did not exit cleanly on SIGTERM:" >&2
    cat "$CHAOS_LOG" >&2
    exit 1
  fi
  FP="$(sed -n 's/.*"probe_fingerprint": "\([0-9a-f][0-9a-f]*\)".*/\1/p' "$ROOT/build-release/BENCH_chaos.json")"
  if [ -z "$FP" ]; then
    echo "BENCH_chaos.json has no probe_fingerprint" >&2
    exit 1
  fi
  if [ $run -eq 1 ]; then
    CHAOS_FP="$FP"
  elif [ "$FP" != "$CHAOS_FP" ]; then
    echo "CROSS-RUN DETERMINISM GATE FAILED: run 1 fingerprint $CHAOS_FP," >&2
    echo "run 2 fingerprint $FP — degraded bytes depend on more than the seed" >&2
    exit 1
  fi
  run=$((run + 1))
done
echo "chaos fingerprint stable across runs: $CHAOS_FP"

echo "=== [5/6] ${SANITIZER} sanitizer build + concurrency suite ==="
cmake -B "$ROOT/build-$SANITIZER" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPRECIS_SANITIZE="$SANITIZER"
cmake --build "$ROOT/build-$SANITIZER" -j "$JOBS" \
  --target concurrency_test service_test execution_context_test \
           lru_cache_test answer_cache_test task_pool_test \
           parallel_dbgen_test arena_test symbol_table_test server_test \
           shard_test
PRECIS_TASK_POOL_THREADS=4 \
  ctest --test-dir "$ROOT/build-$SANITIZER" --output-on-failure -j "$JOBS" \
  -R 'Concurrency|Service|ExecutionContext|LruCache|AnswerCache|TaskPool|ParallelDbGen|Arena|SymbolTable|JsonLite|HttpParser|RequestParse|HttpServer|Shard|MergeAscendingTids|CircuitBreaker|ServerChaosConfig'

echo "=== [6/6] ASan+UBSan build + chaos sanitizer gate ==="
cmake -B "$ROOT/build-asan-ubsan" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPRECIS_SANITIZE="address,undefined"
cmake --build "$ROOT/build-asan-ubsan" -j "$JOBS" \
  --target fault_injection_test fuzz_lite_test service_test \
           arena_test columnar_test server_test shard_test \
           answer_cache_test
PRECIS_TASK_POOL_THREADS=4 \
  ctest --test-dir "$ROOT/build-asan-ubsan" --output-on-failure -j "$JOBS" \
  -R 'FaultInjector|Retry|FaultChaos|CacheTaint|Service|FuzzLite|Arena|Column|RelationKernel|JsonLite|HttpParser|RequestParse|HttpServer|Shard|MergeAscendingTids|AnswerCache|CircuitBreaker|ServerChaosConfig'

echo "=== CI passed (Release + bench smokes + server smoke + chaos drill + $SANITIZER + asan,ubsan chaos) ==="
