#include "precis/result_schema.h"

#include <algorithm>
#include <sstream>

namespace precis {

const std::set<uint32_t> ResultSchema::kNoAttributes;

const std::set<uint32_t>& ResultSchema::projected_attributes(
    RelationNodeId rel) const {
  auto it = projected_attributes_.find(rel);
  if (it == projected_attributes_.end()) return kNoAttributes;
  return it->second;
}

int ResultSchema::in_degree(RelationNodeId rel) const {
  auto it = in_degree_.find(rel);
  if (it == in_degree_.end()) return 0;
  return it->second;
}

bool ResultSchema::ContainsRelation(const std::string& name) const {
  auto id = graph_->RelationId(name);
  if (!id.ok()) return false;
  return relations_.count(*id) > 0;
}

bool ResultSchema::ContainsAttribute(const std::string& relation,
                                     const std::string& attribute) const {
  auto id = graph_->RelationId(relation);
  if (!id.ok()) return false;
  auto attr = graph_->relation_schema(*id).AttributeIndex(attribute);
  if (!attr.ok()) return false;
  return projected_attributes(*id).count(static_cast<uint32_t>(*attr)) > 0;
}

size_t ResultSchema::TotalProjectedAttributes() const {
  size_t n = 0;
  for (const auto& [rel, attrs] : projected_attributes_) n += attrs.size();
  return n;
}

void ResultSchema::AddTokenRelation(RelationNodeId rel) {
  if (std::find(token_relations_.begin(), token_relations_.end(), rel) !=
      token_relations_.end()) {
    return;
  }
  token_relations_.push_back(rel);
  relations_.insert(rel);
}

void ResultSchema::AcceptProjectionPath(const Path& path) {
  relations_.insert(path.source());
  for (const JoinEdge* e : path.joins()) {
    relations_.insert(e->to);
    if (join_edge_set_.insert(e).second) {
      join_edges_.push_back(e);
      ++in_degree_[e->to];
    }
  }
  const ProjectionEdge* proj = path.projection();
  projected_attributes_[proj->relation].insert(proj->attribute);
  projection_paths_.push_back(path);
}

std::string ResultSchema::ToString() const {
  std::ostringstream os;
  for (RelationNodeId rel : relations_) {
    const RelationSchema& schema = graph_->relation_schema(rel);
    os << schema.name() << "(";
    bool first = true;
    for (uint32_t attr : projected_attributes(rel)) {
      if (!first) os << ", ";
      os << schema.attribute(attr).name;
      first = false;
    }
    os << ")";
    bool is_token_rel =
        std::find(token_relations_.begin(), token_relations_.end(), rel) !=
        token_relations_.end();
    if (is_token_rel) os << "  [token relation]";
    int deg = in_degree(rel);
    if (deg > 0) os << "  [in-degree " << deg << "]";
    os << "\n";
  }
  for (const JoinEdge* e : join_edges_) {
    os << "  " << graph_->relation_name(e->from) << " -("
       << e->from_attribute << ")-> " << graph_->relation_name(e->to)
       << "  w=" << e->weight << "\n";
  }
  return os.str();
}

}  // namespace precis
