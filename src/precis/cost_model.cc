#include "precis/cost_model.h"

#include <cmath>

namespace precis {

Result<size_t> CostModel::TuplesPerRelationForBudget(
    double cost_m_seconds, size_t num_relations) const {
  if (cost_m_seconds < 0.0) {
    return Status::InvalidArgument("response-time target must be >= 0");
  }
  if (num_relations == 0) {
    return Status::InvalidArgument("number of relations must be > 0");
  }
  double per_tuple = params_.PerTupleCost();
  if (per_tuple <= 0.0) {
    return Status::InvalidArgument(
        "cost parameters must have positive per-tuple cost");
  }
  double c_r = cost_m_seconds /
               (static_cast<double>(num_relations) * per_tuple);
  return static_cast<size_t>(std::floor(c_r));
}

Result<std::unique_ptr<CardinalityConstraint>>
CostModel::CardinalityForResponseTime(double cost_m_seconds,
                                      size_t num_relations) const {
  auto c_r = TuplesPerRelationForBudget(cost_m_seconds, num_relations);
  if (!c_r.ok()) return c_r.status();
  return MaxTuplesPerRelation(*c_r);
}

CostParameters CostModel::Calibrate(double measured_seconds,
                                    const AccessStats& stats) {
  CostParameters params;
  uint64_t accesses = stats.index_probes + stats.tuple_fetches;
  if (accesses == 0 || measured_seconds <= 0.0) return params;
  double per_access = measured_seconds / static_cast<double>(accesses);
  params.index_time_seconds = per_access;
  params.tuple_time_seconds = per_access;
  return params;
}

}  // namespace precis
