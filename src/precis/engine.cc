#include "precis/engine.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "precis/json_export.h"

namespace precis {

namespace {

/// Approximate heap footprint of a cached ResultSchema. Schemas are small
/// (sets of node ids, paths of edge pointers); the estimate only needs to
/// keep the byte budget meaningful, not be exact.
size_t EstimateSchemaCharge(const ResultSchema& schema) {
  return 256 + schema.relations().size() * 64 +
         schema.projection_paths().size() * 160 +
         schema.join_edges().size() * 24 +
         schema.TotalProjectedAttributes() * 16;
}

}  // namespace

size_t EstimateAnswerCharge(const PrecisAnswer& answer) {
  size_t charge = sizeof(PrecisAnswer) + 512;
  for (const TokenMatch& m : answer.matches) {
    charge += m.token.capacity() + m.resolved_token.capacity() +
              EstimateOccurrencesCharge(m.occurrences());
  }
  // Result databases dominate: charge a rough per-tuple footprint (a Tuple
  // is a vector of tagged values, typically a few short strings).
  charge += answer.database.TotalTuples() * 96;
  charge += EstimateSchemaCharge(answer.schema);
  return charge;
}

Result<PrecisEngine> PrecisEngine::Create(const Database* db,
                                          const SchemaGraph* graph) {
  if (db == nullptr || graph == nullptr) {
    return Status::InvalidArgument("database and graph must be non-null");
  }
  auto index = InvertedIndex::Build(*db);
  if (!index.ok()) return index.status();
  return PrecisEngine(db, graph, std::move(*index));
}

std::vector<TokenMatch> PrecisEngine::MatchTokens(
    const PrecisQuery& query) const {
  // Step 1: inverted index — k_i -> {(R_j, A_lj, Tids_lj)} — after synonym
  // canonicalization where a table is installed.
  std::vector<TokenMatch> matches;
  matches.reserve(query.tokens.size());
  for (const std::string& token : query.tokens) {
    std::string resolved =
        synonyms_ != nullptr ? synonyms_->Canonicalize(token) : token;
    matches.push_back(TokenMatch{token, resolved, index_.Lookup(resolved)});
  }
  return matches;
}

Result<PrecisAnswer> PrecisEngine::AnswerFromMatches(
    std::vector<TokenMatch> matches, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    ExecutionContext* ctx) const {
  // Input relations (deduplicated, in match order) and seed tuple ids.
  // Relation dedup stays a linear std::find (a handful of entries); tid
  // dedup uses a hash-set membership check per relation — multi-token
  // queries over a popular relation used to pay a quadratic std::find over
  // the accumulated seed list. Insertion order is preserved either way.
  std::vector<RelationNodeId> token_relations;
  SeedTids seeds;
  std::unordered_map<RelationNodeId, std::unordered_set<Tid>> seen_tids;
  for (const TokenMatch& match : matches) {
    for (const TokenOccurrence& occ : match.occurrences()) {
      auto rel = graph_->RelationId(occ.relation);
      if (!rel.ok()) return rel.status();
      if (std::find(token_relations.begin(), token_relations.end(), *rel) ==
          token_relations.end()) {
        token_relations.push_back(*rel);
      }
      std::vector<Tid>& tids = seeds[*rel];
      std::unordered_set<Tid>& seen = seen_tids[*rel];
      for (Tid tid : occ.tids) {
        if (seen.insert(tid).second) tids.push_back(tid);
      }
    }
  }

  // Step 2: result schema generation (optionally cached by token-relation
  // set, degree constraint and graph weight epoch — see DESIGN.md §10).
  // A partial schema produced under an already-stopped context is NOT
  // cached: it reflects the stop, not the constraint.
  std::optional<ResultSchema> schema;
  {
    ScopedSpan span(ctx, "schema_gen");
    if (schema_cache_enabled_.load(std::memory_order_relaxed)) {
      std::vector<RelationNodeId> sorted = token_relations;
      std::sort(sorted.begin(), sorted.end());
      std::string key;
      key.reserve(32 + sorted.size() * 4);
      for (RelationNodeId rel : sorted) {
        key += std::to_string(rel);
        key += ',';
      }
      key += '|';
      key += degree.ToString();
      key += '|';
      key += std::to_string(graph_->weight_epoch());
      if (std::shared_ptr<const ResultSchema> hit =
              caches_->schema.Get(key)) {
        schema = *hit;  // copy out of the immutable cached value
      } else {
        ResultSchemaGenerator schema_generator(graph_);
        auto generated =
            schema_generator.Generate(token_relations, degree, ctx);
        if (!generated.ok()) return generated.status();
        bool partial = ctx != nullptr && ctx->ShouldStop();
        // Fault taint: a schema generated while a fault injector is armed
        // on the context may silently reflect injected failures; never let
        // it into the shared cache (DESIGN.md §12).
        bool tainted = ctx != nullptr && ctx->fault_injector() != nullptr &&
                       ctx->fault_injector()->armed();
        if (!partial && !tainted) {
          caches_->schema.Put(
              key, std::make_shared<const ResultSchema>(*generated),
              EstimateSchemaCharge(*generated));
        }
        schema = std::move(*generated);
      }
    } else {
      ResultSchemaGenerator schema_generator(graph_);
      auto generated =
          schema_generator.Generate(token_relations, degree, ctx);
      if (!generated.ok()) return generated.status();
      schema = std::move(*generated);
    }
  }

  // Step 3: result database generation.
  ResultDatabaseGenerator db_generator(db_);
  Result<Database> database = [&] {
    ScopedSpan span(ctx, "db_gen");
    return db_generator.Generate(*schema, seeds, cardinality, options, ctx);
  }();
  if (!database.ok()) return database.status();

  return PrecisAnswer{std::move(matches), std::move(*schema),
                      std::move(*database), db_generator.last_report()};
}

Result<PrecisAnswer> PrecisEngine::Answer(
    const PrecisQuery& query, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    ExecutionContext* ctx) const {
  std::vector<TokenMatch> matches;
  {
    ScopedSpan span(ctx, "match_tokens");
    matches = MatchTokens(query);
  }
  return AnswerFromMatches(std::move(matches), degree, cardinality, options,
                           ctx);
}

std::string AnswerFingerprintBase(const PrecisQuery& query,
                                  const SynonymTable* synonyms,
                                  const DegreeConstraint& degree,
                                  const CardinalityConstraint& cardinality,
                                  const DbGenOptions& options) {
  std::string key;
  key.reserve(96 + query.tokens.size() * 24);
  // Token sequence, synonym-canonicalized. The raw spelling is included
  // next to the canonical form because the cached answer's TokenMatch
  // entries carry the original token text: "W. Allen" and "Woody Allen"
  // produce equal databases but textually different match metadata, so
  // they fingerprint separately (conservative, never wrong).
  for (const std::string& token : query.tokens) {
    key += token;
    key += '\x1e';
    key += synonyms != nullptr ? synonyms->Canonicalize(token) : token;
    key += '\x1f';
  }
  key += '|';
  key += degree.ToString();
  key += '|';
  key += cardinality.ToString();
  key += '|';
  key += SubsetStrategyToString(options.strategy);
  key += '|';
  key += options.include_join_attributes ? '1' : '0';
  key += options.path_aware_propagation ? '1' : '0';
  key += '|';
  key += std::to_string(options.statement_overhead_ns);
  // Deliberately NOT part of the key: parallelism, pool and
  // simulated_access_latency_ns. Parallel generation is byte-identical to
  // sequential (DESIGN.md §11) and the latency knob is timing-only, so
  // answers produced under any of those settings are interchangeable —
  // fingerprinting them would only fragment the cache.
  return key;
}

std::string PrecisEngine::AnswerFingerprint(
    const PrecisQuery& query, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    uint64_t db_epoch, uint64_t weight_epoch) const {
  std::string key;
  key.reserve(32);
  key += std::to_string(db_epoch);
  key += '|';
  key += std::to_string(weight_epoch);
  key += '|';
  key += AnswerFingerprintBase(query, synonyms_, degree, cardinality, options);
  return key;
}

Result<std::shared_ptr<const PrecisAnswer>> PrecisEngine::AnswerShared(
    const PrecisQuery& query, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    ExecutionContext* ctx) const {
  return AnswerSharedImpl(query, degree, cardinality, options, ctx,
                          /*body_out=*/nullptr);
}

Result<RenderedAnswer> PrecisEngine::AnswerSharedRendered(
    const PrecisQuery& query, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    ExecutionContext* ctx) const {
  std::shared_ptr<const std::string> body;
  auto answer =
      AnswerSharedImpl(query, degree, cardinality, options, ctx, &body);
  if (!answer.ok()) return answer.status();
  return RenderedAnswer{std::move(*answer), std::move(body)};
}

Result<std::shared_ptr<const PrecisAnswer>> PrecisEngine::AnswerSharedImpl(
    const PrecisQuery& query, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    ExecutionContext* ctx,
    std::shared_ptr<const std::string>* body_out) const {
  // Options that make answers non-reusable bypass the caches entirely:
  // a traced run must re-execute to produce its SQL trace, and per-tuple
  // weight stores can change between calls without an epoch to observe.
  const bool reusable =
      options.tuple_weights == nullptr && !options.trace_sql;
  const bool cacheable =
      answer_cache_enabled_.load(std::memory_order_relaxed) && reusable;
  const bool body_cacheable =
      body_out != nullptr &&
      body_cache_enabled_.load(std::memory_order_relaxed) && reusable;

  std::string key;
  uint64_t db_epoch = 0;
  uint64_t weight_epoch = 0;
  if (cacheable || body_cacheable) {
    // Epochs are read BEFORE the lookup/build. If a mutation lands during
    // the build, the re-read below differs and the answer is not inserted.
    db_epoch = db_->epoch();
    weight_epoch = graph_->weight_epoch();
    key = AnswerFingerprint(query, degree, cardinality, options, db_epoch,
                            weight_epoch);
  }
  if (cacheable) {
    ScopedSpan span(ctx, "answer_cache");
    if (std::shared_ptr<const PrecisAnswer> hit =
            caches_->answer->Get(key)) {
      if (body_out != nullptr) {
        // A cached answer is clean and complete by construction, so a
        // memoized render of it (or a fresh one, inserted here) is always
        // servable next to it.
        std::shared_ptr<const std::string> body;
        if (body_cacheable) body = caches_->body->Get(key);
        if (body == nullptr) {
          body = std::make_shared<const std::string>(AnswerToJson(*hit));
          if (body_cacheable) {
            caches_->body->Put(key, body, body->size() + 64);
          }
        }
        *body_out = std::move(body);
      }
      return hit;
    }
  }

  auto answer = Answer(query, degree, cardinality, options, ctx);
  if (!answer.ok()) return answer.status();
  auto shared = std::make_shared<const PrecisAnswer>(std::move(*answer));

  // Never cache partial answers: a deadline / budget / cancellation
  // stop reflects this query's limits, not the data (PR 1's
  // schema-cache rule, applied at the answer level). Never cache
  // fault-tainted or degraded answers: the taint bit is set whenever the
  // run executed with an armed injector (fingerprint-independent — the
  // fingerprint cannot see the injector), so a cache hit always means a
  // clean, complete answer (DESIGN.md §12).
  const bool clean = !shared->report.partial() &&
                     (ctx == nullptr || !ctx->ShouldStop()) &&
                     !shared->report.fault_tainted &&
                     !shared->report.degraded();
  // Epochs unchanged across the build: the answer saw one consistent
  // database + weight state.
  const bool epochs_stable = db_->epoch() == db_epoch &&
                             graph_->weight_epoch() == weight_epoch;
  if (cacheable && clean && epochs_stable) {
    caches_->answer->Put(key, shared, EstimateAnswerCharge(*shared));
  }
  if (body_out != nullptr) {
    // The body is always rendered from the answer actually returned (never
    // pulled from the cache on a rebuild), so headers derived from the
    // answer and the served bytes can never disagree — even for partial or
    // degraded runs, whose renders simply skip the insert.
    auto body = std::make_shared<const std::string>(AnswerToJson(*shared));
    if (body_cacheable && clean && epochs_stable) {
      caches_->body->Put(key, body, body->size() + 64);
    }
    *body_out = std::move(body);
  }
  return shared;
}

Result<std::vector<PrecisAnswer>> PrecisEngine::AnswerPerOccurrence(
    const PrecisQuery& query, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    ExecutionContext* ctx) const {
  std::vector<TokenMatch> matches;
  {
    ScopedSpan span(ctx, "match_tokens");
    matches = MatchTokens(query);
  }
  std::vector<PrecisAnswer> answers;
  for (const TokenMatch& match : matches) {
    for (const TokenOccurrence& occ : match.occurrences()) {
      std::vector<TokenMatch> single = {TokenMatch{
          match.token, match.resolved_token,
          std::make_shared<const std::vector<TokenOccurrence>>(
              std::vector<TokenOccurrence>{occ})}};
      auto answer = AnswerFromMatches(std::move(single), degree, cardinality,
                                      options, ctx);
      if (!answer.ok()) return answer.status();
      answers.push_back(std::move(*answer));
    }
  }
  return answers;
}

}  // namespace precis
