#include "precis/engine.h"

#include <algorithm>
#include <optional>

namespace precis {

Result<PrecisEngine> PrecisEngine::Create(const Database* db,
                                          const SchemaGraph* graph) {
  if (db == nullptr || graph == nullptr) {
    return Status::InvalidArgument("database and graph must be non-null");
  }
  auto index = InvertedIndex::Build(*db);
  if (!index.ok()) return index.status();
  return PrecisEngine(db, graph, std::move(*index));
}

std::vector<TokenMatch> PrecisEngine::MatchTokens(
    const PrecisQuery& query) const {
  // Step 1: inverted index — k_i -> {(R_j, A_lj, Tids_lj)} — after synonym
  // canonicalization where a table is installed.
  std::vector<TokenMatch> matches;
  matches.reserve(query.tokens.size());
  for (const std::string& token : query.tokens) {
    std::string resolved =
        synonyms_ != nullptr ? synonyms_->Canonicalize(token) : token;
    matches.push_back(TokenMatch{token, resolved, index_.Lookup(resolved)});
  }
  return matches;
}

Result<PrecisAnswer> PrecisEngine::AnswerFromMatches(
    std::vector<TokenMatch> matches, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    ExecutionContext* ctx) const {
  // Input relations (deduplicated, in match order) and seed tuple ids.
  std::vector<RelationNodeId> token_relations;
  SeedTids seeds;
  for (const TokenMatch& match : matches) {
    for (const TokenOccurrence& occ : match.occurrences) {
      auto rel = graph_->RelationId(occ.relation);
      if (!rel.ok()) return rel.status();
      if (std::find(token_relations.begin(), token_relations.end(), *rel) ==
          token_relations.end()) {
        token_relations.push_back(*rel);
      }
      std::vector<Tid>& tids = seeds[*rel];
      for (Tid tid : occ.tids) {
        if (std::find(tids.begin(), tids.end(), tid) == tids.end()) {
          tids.push_back(tid);
        }
      }
    }
  }

  // Step 2: result schema generation (optionally cached by token-relation
  // set and degree constraint). A partial schema produced under an
  // already-stopped context is NOT cached: it reflects the stop, not the
  // constraint.
  std::optional<ResultSchema> schema;
  {
    ScopedSpan span(ctx, "schema_gen");
    if (schema_cache_enabled_.load(std::memory_order_relaxed)) {
      std::vector<RelationNodeId> sorted = token_relations;
      std::sort(sorted.begin(), sorted.end());
      std::string key;
      for (RelationNodeId rel : sorted) {
        key += std::to_string(rel) + ",";
      }
      key += "|" + degree.ToString();
      {
        std::lock_guard<std::mutex> lock(schema_cache_->mutex);
        auto it = schema_cache_->entries.find(key);
        if (it != schema_cache_->entries.end()) {
          ++schema_cache_->hits;
          schema = it->second;
        }
      }
      if (!schema.has_value()) {
        ResultSchemaGenerator schema_generator(graph_);
        auto generated =
            schema_generator.Generate(token_relations, degree, ctx);
        if (!generated.ok()) return generated.status();
        bool partial = ctx != nullptr && ctx->ShouldStop();
        std::lock_guard<std::mutex> lock(schema_cache_->mutex);
        ++schema_cache_->misses;
        if (!partial) schema_cache_->entries.emplace(key, *generated);
        schema = std::move(*generated);
      }
    } else {
      ResultSchemaGenerator schema_generator(graph_);
      auto generated =
          schema_generator.Generate(token_relations, degree, ctx);
      if (!generated.ok()) return generated.status();
      schema = std::move(*generated);
    }
  }

  // Step 3: result database generation.
  ResultDatabaseGenerator db_generator(db_);
  Result<Database> database = [&] {
    ScopedSpan span(ctx, "db_gen");
    return db_generator.Generate(*schema, seeds, cardinality, options, ctx);
  }();
  if (!database.ok()) return database.status();

  return PrecisAnswer{std::move(matches), std::move(*schema),
                      std::move(*database), db_generator.last_report()};
}

Result<PrecisAnswer> PrecisEngine::Answer(
    const PrecisQuery& query, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    ExecutionContext* ctx) const {
  std::vector<TokenMatch> matches;
  {
    ScopedSpan span(ctx, "match_tokens");
    matches = MatchTokens(query);
  }
  return AnswerFromMatches(std::move(matches), degree, cardinality, options,
                           ctx);
}

Result<std::vector<PrecisAnswer>> PrecisEngine::AnswerPerOccurrence(
    const PrecisQuery& query, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    ExecutionContext* ctx) const {
  std::vector<TokenMatch> matches;
  {
    ScopedSpan span(ctx, "match_tokens");
    matches = MatchTokens(query);
  }
  std::vector<PrecisAnswer> answers;
  for (const TokenMatch& match : matches) {
    for (const TokenOccurrence& occ : match.occurrences) {
      std::vector<TokenMatch> single = {
          TokenMatch{match.token, match.resolved_token, {occ}}};
      auto answer = AnswerFromMatches(std::move(single), degree, cardinality,
                                      options, ctx);
      if (!answer.ok()) return answer.status();
      answers.push_back(std::move(*answer));
    }
  }
  return answers;
}

}  // namespace precis
