// Result Database Generator (paper §5.2, Fig. 5).
//
// Produces the result database D' corresponding to a result schema G':
// seed tuples containing the query tokens, then tuples of other relations
// transitively joining to them, fetched edge by edge in decreasing weight
// order under a cardinality constraint, with in-degree-based postponement
// and duplicate elimination. Two subset-selection strategies: NaiveQ (one
// limited IN-list query) and RoundRobin (one scan per joining tuple,
// drained one tuple at a time).

#ifndef PRECIS_PRECIS_DATABASE_GENERATOR_H_
#define PRECIS_PRECIS_DATABASE_GENERATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/result.h"
#include "common/task_pool.h"
#include "storage/database.h"
#include "precis/constraints.h"
#include "precis/result_schema.h"
#include "precis/tuple_weights.h"

namespace precis {

/// \brief How a subset of joining tuples is selected when the cardinality
/// budget does not cover all of them (paper §5.2).
enum class SubsetStrategy {
  /// Paper default: RoundRobin for to-N joins (destination's join attribute
  /// is not its primary key), NaiveQ otherwise.
  kAuto,
  /// Always NaiveQ: issue one IN-list query per edge and keep the first
  /// tuples up to the budget ("keep only the top tuples ... using RowNum").
  /// Risk (noted by the paper): for to-N joins the kept subset may join only
  /// a prefix of the source tuples.
  kNaiveQ,
  /// Always RoundRobin: open one scan per source join value and retrieve one
  /// joining tuple per open scan per round, spreading the budget uniformly
  /// over the source tuples.
  kRoundRobin,
};

const char* SubsetStrategyToString(SubsetStrategy s);

/// \brief Options controlling result-database generation.
struct DbGenOptions {
  SubsetStrategy strategy = SubsetStrategy::kAuto;

  /// Project the attributes required by G' join edges into the result even
  /// when no projection edge selected them (paper: "attributes required for
  /// joins have been also projected in the result, but these will not show
  /// in the final answer"). Turning this off yields exactly the projected
  /// attributes but usually breaks foreign keys in the output.
  bool include_join_attributes = true;

  /// Path-aware join propagation — the §5.2 refinement the paper sketches
  /// but leaves out "for simplicity": "Which of the tuples collected in a
  /// relation are used for subsequently joining tuples from other relations
  /// depends on the paths stored in P_d."
  ///
  /// When false (default, the paper's simplified behaviour) every tuple
  /// collected in a relation feeds every departing join edge. When true, a
  /// join edge u -> v is driven only by the tuples of u that arrived along
  /// a P_d path in which u -> v is the next hop (seed tuples feed the edges
  /// that P_d paths start with). This prevents, e.g., movies that entered
  /// through an actor's CAST from dragging in their *other* genres when no
  /// accepted path goes ACTOR -> CAST -> MOVIE -> GENRE.
  bool path_aware_propagation = false;

  /// Optional per-tuple weights (§7's "weights on data values"). When set,
  /// every budget-truncated selection — seed subsets and joined subsets —
  /// keeps the heaviest tuples first (ties resolved towards retrieval
  /// order) instead of NaiveQ's arbitrary prefix or RoundRobin's uniform
  /// spread; `strategy` then only affects untruncated fetch cost. The store
  /// must outlive the generation call.
  const TupleWeightStore* tuple_weights = nullptr;

  /// Record the SQL text of every statement the generator submits into
  /// DbGenReport::sql_trace — the queries of §5.2 ("In relational algebra,
  /// the query executed looks like this: sigma_Tids(Rj)[pi(Rj)] ...") as
  /// their Oracle-dialect SQL equivalents. For inspection and debugging;
  /// off by default.
  bool trace_sql = false;

  /// Simulated per-statement overhead, in nanoseconds. On the paper's
  /// Oracle substrate every submitted statement pays fixed parse/dispatch
  /// cost; that is what separates RoundRobin (one cursor per joining tuple)
  /// from NaiveQ (one IN-list query per edge) in Fig. 9. The in-memory
  /// engine has no such cost, so the Fig. 9 bench sets this to model it;
  /// 0 (the default) disables the simulation. Statements are always
  /// *counted* in AccessStats either way.
  uint64_t statement_overhead_ns = 0;

  /// Intra-query parallelism (DESIGN.md §11). 0 or 1 runs the classic
  /// sequential Fig. 5 walk; >= 2 plans the walk sequentially (so every
  /// acceptance / truncation / budget decision is made in exactly the
  /// sequential order) but fans the expensive per-tuple work — simulated
  /// I/O waits, tuple materialization and projection, per-relation emit,
  /// FK validation — out to a work-stealing task pool, keeping at most
  /// `parallelism` of this query's chunk tasks in flight. The emitted
  /// database and DbGenReport are byte-identical to the sequential run for
  /// every value of this knob and any pool size.
  size_t parallelism = 1;

  /// Pool for parallel generation; nullptr (default) uses the process-wide
  /// TaskPool::Shared() so `service workers x per-query chunk tasks`
  /// cannot oversubscribe the machine. Ignored when parallelism <= 1.
  TaskPool* pool = nullptr;

  /// Simulated per-retrieved-tuple access latency, in nanoseconds — the
  /// TupleTime term of the paper's §6 cost model on its Oracle substrate,
  /// where every accepted tuple pays real I/O wait. Paid as batched
  /// *sleeps* (not busy-waits: it models time the CPU is idle), which is
  /// exactly the component concurrent subtree expansion overlaps. Both the
  /// sequential and the parallel path pay it once per accepted tuple, so
  /// sequential-vs-parallel comparisons under this knob are fair.
  /// Timing-only: never affects the generated database. 0 disables.
  uint64_t simulated_access_latency_ns = 0;
};

/// \brief Fault-induced losses for one result relation (DESIGN.md §12).
struct RelationDegradation {
  std::string relation;
  /// Tuples that should have been in the result but whose fetch kept
  /// failing after retries.
  uint64_t dropped_tuples = 0;
  /// Join-value lookups (index probes / scans / scan opens) that failed
  /// after retries; each loses the whole set of tuples behind that key.
  uint64_t failed_lookups = 0;
  /// Retries performed for this relation's accesses (successful or not).
  uint64_t retries = 0;
  /// Tuples of this relation resident on shards the coordinator skipped
  /// (open circuit / exhausted retries) — an upper bound on what the shard
  /// outage cost this relation (DESIGN.md §17).
  uint64_t unavailable_tuples = 0;
};

/// \brief Per-relation account of what fault injection cost the answer.
///
/// Relations appear in first-degradation-event order — deterministic for a
/// fixed seed, and replayed identically by the parallel generator.
struct DegradationReport {
  std::vector<RelationDegradation> relations;

  /// Shards the coordinator completed the merge without (open-circuit or
  /// retry-exhausted shard sub-queries, DESIGN.md §17); empty for a healthy
  /// run. `shards_total` is the partition count those ids index into.
  std::vector<uint32_t> shards_skipped;
  uint32_t shards_total = 0;

  bool degraded() const {
    if (!shards_skipped.empty()) return true;
    for (const RelationDegradation& r : relations) {
      if (r.dropped_tuples > 0 || r.failed_lookups > 0 ||
          r.unavailable_tuples > 0) {
        return true;
      }
    }
    return false;
  }
  uint64_t total_dropped_tuples() const {
    uint64_t n = 0;
    for (const RelationDegradation& r : relations) n += r.dropped_tuples;
    return n;
  }
  uint64_t total_failed_lookups() const {
    uint64_t n = 0;
    for (const RelationDegradation& r : relations) n += r.failed_lookups;
    return n;
  }
  uint64_t total_retries() const {
    uint64_t n = 0;
    for (const RelationDegradation& r : relations) n += r.retries;
    return n;
  }
  /// "RELATION: dropped=N lookups_failed=M retries=K" lines.
  std::string ToString() const;
};

/// \brief What happened during one generation run.
struct DbGenReport {
  /// Join edges in execution order, rendered "FROM -> TO".
  std::vector<std::string> executed_edges;
  /// Relations whose fetch was cut short by the cardinality budget.
  std::vector<std::string> truncated_relations;
  /// Source foreign keys that were applicable to the result schema but do
  /// not hold on the generated data (a cardinality cut removed parents);
  /// they are omitted from the result database's declared constraints.
  std::vector<std::string> dropped_foreign_keys;
  /// Total tuples emitted.
  size_t total_tuples = 0;
  /// SQL text of each submitted statement, in execution order (only when
  /// DbGenOptions::trace_sql is set).
  std::vector<std::string> sql_trace;
  /// Why generation stopped before completing, when an ExecutionContext cut
  /// it short (deadline, access budget, or cancellation). kNone for a full
  /// run. The emitted database is well-formed either way: every declared
  /// constraint holds on the emitted data.
  StopReason stop_reason = StopReason::kNone;

  /// Per-relation fault losses (empty when no fault fired). Separate from
  /// stop_reason: a fault-degraded answer is complete *except for* the
  /// reported losses, while a stop_reason cut is a clean truncation.
  DegradationReport degradation;

  /// True when the run executed with a fault injector armed on its context
  /// — even if no fault actually fired. This is the cache-taint bit: the
  /// engine's answer/schema caches refuse to store tainted results, so a
  /// cache hit always means a clean, complete answer (DESIGN.md §12).
  bool fault_tainted = false;

  /// True if the run was cut short by its ExecutionContext.
  bool partial() const { return stop_reason != StopReason::kNone; }

  /// True if injected faults cost the answer tuples or lookups.
  bool degraded() const { return degradation.degraded(); }
};

/// \brief Seed tuples: for each token relation, the tuple ids matching the
/// query tokens (returned by the inverted index).
using SeedTids = std::map<RelationNodeId, std::vector<Tid>>;

/// \brief Implements the Result Database Algorithm of Fig. 5.
class ResultDatabaseGenerator {
 public:
  explicit ResultDatabaseGenerator(const Database* source)
      : source_(source) {}

  /// Generates the result database for `schema` seeded with `seeds` under
  /// cardinality constraint `c`. The result is a fully formed Database: its
  /// relations carry the projected (plus join) attributes, primary keys are
  /// preserved where their attribute survives projection, and every source
  /// foreign key that is applicable and actually holds on the emitted data
  /// is declared.
  ///
  /// When `ctx` is given, every access is attributed to it and the run
  /// stops early once the context reports ShouldStop(): the tuples fetched
  /// so far are emitted as a well-formed (constraint-checked) partial
  /// database and the cause is recorded in DbGenReport::stop_reason.
  ///
  /// With options.parallelism >= 2 the run executes on a task pool
  /// (DESIGN.md §11) and is guaranteed byte-identical — database and
  /// report — to the sequential run, including budget-stopped partial
  /// answers. AccessStats attribution may differ slightly in parallel mode
  /// (duplicate-tuple re-fetches are planned away), which is why budget
  /// stops are decided against a simulated charge counter that replays the
  /// sequential charge sequence exactly.
  Result<Database> Generate(const ResultSchema& schema, const SeedTids& seeds,
                            const CardinalityConstraint& c,
                            const DbGenOptions& options = DbGenOptions(),
                            ExecutionContext* ctx = nullptr);

  const DbGenReport& last_report() const { return last_report_; }

 private:
  /// The classic single-threaded Fig. 5 walk (database_generator.cc).
  Result<Database> GenerateSequential(const ResultSchema& schema,
                                      const SeedTids& seeds,
                                      const CardinalityConstraint& c,
                                      const DbGenOptions& options,
                                      ExecutionContext* ctx);

  /// Sequential plan + parallel fetch/emit/validate (parallel_dbgen.cc).
  Result<Database> GenerateParallel(const ResultSchema& schema,
                                    const SeedTids& seeds,
                                    const CardinalityConstraint& c,
                                    const DbGenOptions& options,
                                    ExecutionContext* ctx);

  const Database* source_;
  DbGenReport last_report_;
};

}  // namespace precis

#endif  // PRECIS_PRECIS_DATABASE_GENERATOR_H_
