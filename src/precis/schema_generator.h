// Result Schema Generator (paper §5.1, Fig. 3).
//
// Finds the part of the database schema that may contain information most
// related to a query: a best-first traversal of the schema graph that
// constructs projection paths attached to the relations containing the query
// tokens, in order of decreasing weight (ties broken towards shorter paths),
// until the degree constraint stops admitting candidates.

#ifndef PRECIS_PRECIS_SCHEMA_GENERATOR_H_
#define PRECIS_PRECIS_SCHEMA_GENERATOR_H_

#include <vector>

#include "common/execution_context.h"
#include "common/result.h"
#include "graph/schema_graph.h"
#include "precis/constraints.h"
#include "precis/result_schema.h"

namespace precis {

/// \brief Statistics of one schema-generation run (used by the Fig. 7
/// bench and by tests asserting pruning behaviour).
struct SchemaGeneratorStats {
  size_t paths_dequeued = 0;
  size_t paths_enqueued = 0;
  size_t paths_pruned = 0;  // expansions rejected by the degree constraint
};

/// \brief Implements the Result Schema Algorithm of Fig. 3.
class ResultSchemaGenerator {
 public:
  explicit ResultSchemaGenerator(const SchemaGraph* graph) : graph_(graph) {}

  /// Computes the result schema G' for tokens found in `token_relations`
  /// under degree constraint `d`. Duplicate input relations are collapsed.
  /// The SchemaGraph must outlive the returned ResultSchema.
  ///
  /// When `ctx` is given and reports ShouldStop() (deadline, budget or
  /// cancellation), the traversal halts and the schema accepted so far is
  /// returned — a well-formed prefix of the full result (candidates are
  /// consumed best-first, so the partial schema is the top of the ranking).
  Result<ResultSchema> Generate(
      const std::vector<RelationNodeId>& token_relations,
      const DegreeConstraint& d, ExecutionContext* ctx = nullptr) const;

  /// Name-based convenience overload.
  Result<ResultSchema> Generate(
      const std::vector<std::string>& token_relation_names,
      const DegreeConstraint& d, ExecutionContext* ctx = nullptr) const;

  const SchemaGeneratorStats& last_stats() const { return last_stats_; }

  /// Sets the per-hop length-decay factor lambda of the weight-transfer
  /// function w(p) = (prod w_i) * lambda^(len-1). The default, 1.0, is the
  /// paper's plain multiplication. Must be in (0, 1].
  Status set_length_decay(double length_decay);
  double length_decay() const { return length_decay_; }

 private:
  const SchemaGraph* graph_;
  double length_decay_ = 1.0;
  mutable SchemaGeneratorStats last_stats_;
};

}  // namespace precis

#endif  // PRECIS_PRECIS_SCHEMA_GENERATOR_H_
