#include "precis/tuple_weights.h"

#include <algorithm>

namespace precis {

Status TupleWeightStore::SetWeights(const Database& db,
                                    const std::string& relation,
                                    std::vector<double> weights) {
  auto rel = db.GetRelation(relation);
  if (!rel.ok()) return rel.status();
  if (weights.size() != (*rel)->num_tuples()) {
    return Status::InvalidArgument(
        "weight count " + std::to_string(weights.size()) +
        " != tuple count " + std::to_string((*rel)->num_tuples()) +
        " for relation '" + relation + "'");
  }
  for (double w : weights) {
    if (w < 0.0 || w > 1.0) {
      return Status::InvalidArgument("tuple weight " + std::to_string(w) +
                                     " outside [0, 1]");
    }
  }
  weights_[relation] = std::move(weights);
  return Status::OK();
}

double TupleWeightStore::Weight(const std::string& relation, Tid tid) const {
  auto it = weights_.find(relation);
  if (it == weights_.end()) return 1.0;
  if (tid >= it->second.size()) return 1.0;
  return it->second[tid];
}

Status WeightsFromNumericAttribute(const Database& db,
                                   const std::string& relation,
                                   const std::string& attribute,
                                   TupleWeightStore* store, double lo,
                                   double hi) {
  if (store == nullptr) {
    return Status::InvalidArgument("null weight store");
  }
  if (lo < 0.0 || hi > 1.0 || lo > hi) {
    return Status::InvalidArgument(
        "normalization range must satisfy 0 <= lo <= hi <= 1");
  }
  auto rel = db.GetRelation(relation);
  if (!rel.ok()) return rel.status();
  auto idx = (*rel)->schema().AttributeIndex(attribute);
  if (!idx.ok()) return idx.status();
  DataType type = (*rel)->schema().attribute(*idx).type;
  if (type == DataType::kString) {
    return Status::InvalidArgument("attribute '" + attribute +
                                   "' is not numeric");
  }

  auto numeric = [&](const Value& v) -> double {
    if (v.is_int64()) return static_cast<double>(v.AsInt64());
    if (v.is_double()) return v.AsDouble();
    return 0.0;  // NULL handled below
  };

  double min = 0.0;
  double max = 0.0;
  bool any = false;
  for (Tid tid = 0; tid < (*rel)->num_tuples(); ++tid) {
    const Value& v = (*rel)->tuple(tid)[*idx];
    if (v.is_null()) continue;
    double x = numeric(v);
    if (!any || x < min) min = x;
    if (!any || x > max) max = x;
    any = true;
  }

  std::vector<double> weights((*rel)->num_tuples(), lo);
  if (any) {
    double span = max - min;
    for (Tid tid = 0; tid < (*rel)->num_tuples(); ++tid) {
      const Value& v = (*rel)->tuple(tid)[*idx];
      if (v.is_null()) continue;
      double frac = span > 0.0 ? (numeric(v) - min) / span : 1.0;
      weights[tid] = lo + (hi - lo) * frac;
    }
  }
  return store->SetWeights(db, relation, std::move(weights));
}

}  // namespace precis
