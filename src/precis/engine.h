// PrecisEngine: end-to-end précis query answering (paper §4, Fig. 2).
//
// Wires the pipeline together: inverted-index lookup of the query tokens,
// result schema generation under a degree constraint, and result database
// generation under a cardinality constraint. (Rendering the answer as text
// is the Translator's job — see translator/translator.h — so that the core
// has no dependency on presentation templates.)

#ifndef PRECIS_PRECIS_ENGINE_H_
#define PRECIS_PRECIS_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/result.h"
#include "graph/schema_graph.h"
#include "storage/database.h"
#include "text/inverted_index.h"
#include "text/synonyms.h"
#include "precis/constraints.h"
#include "precis/database_generator.h"
#include "precis/result_schema.h"
#include "precis/schema_generator.h"

namespace precis {

/// \brief A précis query: a set of free-form tokens, Q = {k1, ..., km}.
struct PrecisQuery {
  std::vector<std::string> tokens;
};

/// \brief Where one query token was found.
struct TokenMatch {
  std::string token;
  /// The spelling actually looked up — differs from `token` when a synonym
  /// table canonicalized it ("W. Allen" -> "Woody Allen", §5.1).
  std::string resolved_token;
  std::vector<TokenOccurrence> occurrences;  // may be empty: unknown token
};

/// \brief The full answer to a précis query: the result schema D', the
/// result database D' (a genuine Database with constraints), per-token
/// match information, and the generation report.
///
/// A token found in several relations (the paper's homonym case — "Woody
/// Allen" as a DIRECTOR and as an ACTOR) contributes all its occurrence
/// relations as input relations of one combined result schema; the
/// Translator later renders one narrative part per occurrence.
struct PrecisAnswer {
  std::vector<TokenMatch> matches;
  ResultSchema schema;
  Database database;
  DbGenReport report;

  /// True if no token matched anywhere (the answer is empty).
  bool empty() const {
    for (const TokenMatch& m : matches) {
      if (!m.occurrences.empty()) return false;
    }
    return true;
  }
};

/// \brief Orchestrates inverted index, schema generator and database
/// generator over one source database and schema graph.
class PrecisEngine {
 public:
  /// Builds the engine (including its inverted index) over `db` and `graph`,
  /// both of which must outlive the engine and any PrecisAnswer it returns.
  static Result<PrecisEngine> Create(const Database* db,
                                     const SchemaGraph* graph);

  /// Answers a précis query under the given constraints. A query whose
  /// tokens match nothing yields an empty (but well-formed) answer.
  ///
  /// When `ctx` is given, the whole pipeline runs under it: every access is
  /// attributed to the context, per-stage trace spans ("match_tokens",
  /// "schema_gen", "db_gen") are recorded, and a deadline / access-budget /
  /// cancellation stop yields the partial, well-formed answer built so far
  /// with the cause flagged in PrecisAnswer::report.stop_reason.
  Result<PrecisAnswer> Answer(const PrecisQuery& query,
                              const DegreeConstraint& degree,
                              const CardinalityConstraint& cardinality,
                              const DbGenOptions& options = DbGenOptions(),
                              ExecutionContext* ctx = nullptr) const;

  /// Homonym handling (§5.1): "in the absence of any additional knowledge
  /// stored in the system, we may return multiple answers, one for each
  /// homonym". Produces one complete PrecisAnswer per (token, relation)
  /// occurrence instead of one combined answer; a single-occurrence query
  /// yields a one-element vector identical to Answer()'s result.
  Result<std::vector<PrecisAnswer>> AnswerPerOccurrence(
      const PrecisQuery& query, const DegreeConstraint& degree,
      const CardinalityConstraint& cardinality,
      const DbGenOptions& options = DbGenOptions(),
      ExecutionContext* ctx = nullptr) const;

  /// Installs a synonym table applied to every query token before lookup
  /// (§5.1's "W. Allen" == "Woody Allen"). Pass nullptr to remove. The
  /// table must outlive the engine while installed.
  void set_synonyms(const SynonymTable* synonyms) { synonyms_ = synonyms; }

  /// Result-schema caching (§7's "further optimization of the whole
  /// process"): the result schema depends only on the set of token
  /// relations and the degree constraint, not on the matched tuples, so
  /// repeated queries about tokens living in the same relations can reuse
  /// it. Off by default. Call ClearSchemaCache() after changing any edge
  /// weight of the schema graph — cached schemas hold the old weights.
  ///
  /// Thread-safety: Answer/AnswerPerOccurrence may be called from several
  /// threads concurrently against one engine (the cache is internally
  /// locked; access counters are atomic); set_* configuration calls must
  /// not race with queries.
  void set_schema_cache_enabled(bool enabled) {
    // Atomic: the header allows concurrent Answer calls, which read this
    // flag; a plain bool here would be a data race under TSan.
    schema_cache_enabled_.store(enabled, std::memory_order_relaxed);
    if (!enabled) ClearSchemaCache();
  }
  void ClearSchemaCache() {
    std::lock_guard<std::mutex> lock(schema_cache_->mutex);
    schema_cache_->entries.clear();
  }
  size_t schema_cache_hits() const {
    std::lock_guard<std::mutex> lock(schema_cache_->mutex);
    return schema_cache_->hits;
  }
  size_t schema_cache_misses() const {
    std::lock_guard<std::mutex> lock(schema_cache_->mutex);
    return schema_cache_->misses;
  }

  const InvertedIndex& index() const { return index_; }

  // Movable (the atomic member needs explicit moves); not copyable.
  PrecisEngine(PrecisEngine&& o) noexcept
      : db_(o.db_),
        graph_(o.graph_),
        index_(std::move(o.index_)),
        synonyms_(o.synonyms_),
        schema_cache_enabled_(
            o.schema_cache_enabled_.load(std::memory_order_relaxed)),
        schema_cache_(std::move(o.schema_cache_)) {}
  PrecisEngine& operator=(PrecisEngine&& o) noexcept {
    db_ = o.db_;
    graph_ = o.graph_;
    index_ = std::move(o.index_);
    synonyms_ = o.synonyms_;
    schema_cache_enabled_.store(
        o.schema_cache_enabled_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    schema_cache_ = std::move(o.schema_cache_);
    return *this;
  }

 private:
  PrecisEngine(const Database* db, const SchemaGraph* graph,
               InvertedIndex index)
      : db_(db), graph_(graph), index_(std::move(index)) {}

  /// Lookup + canonicalization shared by Answer and AnswerPerOccurrence.
  std::vector<TokenMatch> MatchTokens(const PrecisQuery& query) const;

  /// Builds one answer from an explicit set of matches. Const because
  /// answering does not logically mutate the engine: the only touched state
  /// is the schema cache, reached through a pointer and internally locked.
  Result<PrecisAnswer> AnswerFromMatches(std::vector<TokenMatch> matches,
                                         const DegreeConstraint& degree,
                                         const CardinalityConstraint& c,
                                         const DbGenOptions& options,
                                         ExecutionContext* ctx) const;

  const Database* db_;
  const SchemaGraph* graph_;
  InvertedIndex index_;
  const SynonymTable* synonyms_ = nullptr;

  std::atomic<bool> schema_cache_enabled_{false};
  // Keyed by sorted token-relation ids + the degree constraint rendering.
  // Behind a unique_ptr so the engine stays movable despite the mutex.
  struct SchemaCache {
    std::mutex mutex;
    std::map<std::string, ResultSchema> entries;
    size_t hits = 0;
    size_t misses = 0;
  };
  std::unique_ptr<SchemaCache> schema_cache_ =
      std::make_unique<SchemaCache>();
};

}  // namespace precis

#endif  // PRECIS_PRECIS_ENGINE_H_
