// PrecisEngine: end-to-end précis query answering (paper §4, Fig. 2).
//
// Wires the pipeline together: inverted-index lookup of the query tokens,
// result schema generation under a degree constraint, and result database
// generation under a cardinality constraint. (Rendering the answer as text
// is the Translator's job — see translator/translator.h — so that the core
// has no dependency on presentation templates.)

#ifndef PRECIS_PRECIS_ENGINE_H_
#define PRECIS_PRECIS_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/lru_cache.h"
#include "common/result.h"
#include "graph/schema_graph.h"
#include "storage/database.h"
#include "text/inverted_index.h"
#include "text/synonyms.h"
#include "precis/constraints.h"
#include "precis/database_generator.h"
#include "precis/result_schema.h"
#include "precis/schema_generator.h"

namespace precis {

/// \brief A précis query: a set of free-form tokens, Q = {k1, ..., km}.
struct PrecisQuery {
  std::vector<std::string> tokens;
};

/// \brief Where one query token was found.
struct TokenMatch {
  std::string token;
  /// The spelling actually looked up — differs from `token` when a synonym
  /// table canonicalized it ("W. Allen" -> "Woody Allen", §5.1).
  std::string resolved_token;
  /// Shared immutable occurrence list straight from InvertedIndex::Lookup
  /// (may point at an empty vector: unknown token). Shared so answers and
  /// the token cache reference one copy instead of deep-copying postings.
  OccurrenceList occurrences_ptr = std::make_shared<const std::vector<TokenOccurrence>>();

  const std::vector<TokenOccurrence>& occurrences() const {
    return *occurrences_ptr;
  }
};

/// \brief The full answer to a précis query: the result schema D', the
/// result database D' (a genuine Database with constraints), per-token
/// match information, and the generation report.
///
/// A token found in several relations (the paper's homonym case — "Woody
/// Allen" as a DIRECTOR and as an ACTOR) contributes all its occurrence
/// relations as input relations of one combined result schema; the
/// Translator later renders one narrative part per occurrence.
struct PrecisAnswer {
  std::vector<TokenMatch> matches;
  ResultSchema schema;
  Database database;
  DbGenReport report;

  /// True if no token matched anywhere (the answer is empty).
  bool empty() const {
    for (const TokenMatch& m : matches) {
      if (!m.occurrences().empty()) return false;
    }
    return true;
  }
};

/// \brief Approximate heap footprint of one answer, used as its LRU charge
/// in the engine's full-answer cache (exposed for tests and benches).
size_t EstimateAnswerCharge(const PrecisAnswer& answer);

/// \brief An answer together with its memoized JSON rendering.
///
/// `body_json` is exactly `AnswerToJson(*answer)` — the serving stack can
/// put it on the wire without re-rendering or copying. Both pointers are
/// non-null on success and immutable.
struct RenderedAnswer {
  std::shared_ptr<const PrecisAnswer> answer;
  std::shared_ptr<const std::string> body_json;
};

/// \brief The epoch-free part of the full-answer cache key: canonicalized
/// token sequence + constraint renderings + generation options. Shared by
/// PrecisEngine (which prefixes its database + weight epochs) and the
/// sharded engine (which prefixes shard count + per-shard epochs), so the
/// two fingerprints agree on exactly which options fragment the cache.
/// Deliberately excludes parallelism, pool, and simulated access latency:
/// answers produced under any of those settings are byte-identical.
std::string AnswerFingerprintBase(const PrecisQuery& query,
                                  const SynonymTable* synonyms,
                                  const DegreeConstraint& degree,
                                  const CardinalityConstraint& cardinality,
                                  const DbGenOptions& options);

/// \brief Orchestrates inverted index, schema generator and database
/// generator over one source database and schema graph.
class PrecisEngine {
 public:
  /// Builds the engine (including its inverted index) over `db` and `graph`,
  /// both of which must outlive the engine and any PrecisAnswer it returns.
  static Result<PrecisEngine> Create(const Database* db,
                                     const SchemaGraph* graph);

  /// Answers a précis query under the given constraints. A query whose
  /// tokens match nothing yields an empty (but well-formed) answer.
  ///
  /// When `ctx` is given, the whole pipeline runs under it: every access is
  /// attributed to the context, per-stage trace spans ("match_tokens",
  /// "schema_gen", "db_gen") are recorded, and a deadline / access-budget /
  /// cancellation stop yields the partial, well-formed answer built so far
  /// with the cause flagged in PrecisAnswer::report.stop_reason.
  Result<PrecisAnswer> Answer(const PrecisQuery& query,
                              const DegreeConstraint& degree,
                              const CardinalityConstraint& cardinality,
                              const DbGenOptions& options = DbGenOptions(),
                              ExecutionContext* ctx = nullptr) const;

  /// Homonym handling (§5.1): "in the absence of any additional knowledge
  /// stored in the system, we may return multiple answers, one for each
  /// homonym". Produces one complete PrecisAnswer per (token, relation)
  /// occurrence instead of one combined answer; a single-occurrence query
  /// yields a one-element vector identical to Answer()'s result.
  Result<std::vector<PrecisAnswer>> AnswerPerOccurrence(
      const PrecisQuery& query, const DegreeConstraint& degree,
      const CardinalityConstraint& cardinality,
      const DbGenOptions& options = DbGenOptions(),
      ExecutionContext* ctx = nullptr) const;

  /// Answer() through the full-answer cache (DESIGN.md §10, level 3).
  ///
  /// The answer is returned as an immutable shared value so a cache hit
  /// hands out the stored answer without copying its result database. When
  /// the answer cache is enabled, the lookup key fingerprints the
  /// synonym-canonicalized token sequence, the degree and cardinality
  /// constraint renderings, the generation options, and two epoch counters:
  /// the source Database's mutation epoch (bumped by Insert / CreateIndex /
  /// CreateRelation / AddForeignKey) and the SchemaGraph's weight epoch
  /// (bumped by every edge addition or re-weighting). Any mutation
  /// therefore makes previously cached answers unreachable — a hit is never
  /// stale. Partial answers (deadline / budget / cancellation stops) are
  /// never inserted, and neither are runs whose epochs moved mid-build or
  /// whose options make answers non-reusable (trace_sql, tuple_weights).
  ///
  /// With the answer cache disabled this builds a fresh answer every call
  /// (equivalent to Answer(), just shared).
  Result<std::shared_ptr<const PrecisAnswer>> AnswerShared(
      const PrecisQuery& query, const DegreeConstraint& degree,
      const CardinalityConstraint& cardinality,
      const DbGenOptions& options = DbGenOptions(),
      ExecutionContext* ctx = nullptr) const;

  /// AnswerShared() plus serialization memoization (DESIGN.md §16, cache
  /// level 4): the returned body_json is exactly AnswerToJson(*answer),
  /// cached under the same fingerprint and the same discipline as the
  /// answer cache — partial, fault-tainted or degraded renders are never
  /// inserted, and the epochs baked into the fingerprint make every cached
  /// body unreachable after any mutation. On the steady-state hit path
  /// this costs two LRU lookups and zero serialization work. A cached body
  /// is only served next to a cached (hence clean) answer; whenever the
  /// answer was rebuilt, the body is re-rendered from that very answer, so
  /// the pair is always mutually consistent.
  Result<RenderedAnswer> AnswerSharedRendered(
      const PrecisQuery& query, const DegreeConstraint& degree,
      const CardinalityConstraint& cardinality,
      const DbGenOptions& options = DbGenOptions(),
      ExecutionContext* ctx = nullptr) const;

  /// Installs a synonym table applied to every query token before lookup
  /// (§5.1's "W. Allen" == "Woody Allen"). Pass nullptr to remove. The
  /// table must outlive the engine while installed.
  void set_synonyms(const SynonymTable* synonyms) { synonyms_ = synonyms; }

  /// Result-schema caching (§7's "further optimization of the whole
  /// process", DESIGN.md §10 level 2): the result schema depends only on
  /// the set of token relations, the degree constraint, and the graph's
  /// edge weights — not on the matched tuples — so repeated queries about
  /// tokens living in the same relations can reuse it. Off by default.
  /// Backed by the shared byte-bounded LRU; the cache key carries the
  /// graph's weight epoch, so re-weighting an edge invalidates implicitly
  /// (ClearSchemaCache() remains for explicit flushes).
  ///
  /// Thread-safety: Answer/AnswerPerOccurrence/AnswerShared may be called
  /// from several threads concurrently against one engine (all caches are
  /// internally locked; access counters are atomic); set_* configuration
  /// calls must not race with queries.
  void set_schema_cache_enabled(bool enabled) {
    // Atomic: the header allows concurrent Answer calls, which read this
    // flag; a plain bool here would be a data race under TSan.
    schema_cache_enabled_.store(enabled, std::memory_order_relaxed);
    if (!enabled) ClearSchemaCache();
  }
  void ClearSchemaCache() { caches_->schema.Clear(); }
  size_t schema_cache_hits() const { return caches_->schema.stats().hits; }
  size_t schema_cache_misses() const {
    return caches_->schema.stats().misses;
  }
  LruCacheStats schema_cache_stats() const {
    return caches_->schema.stats();
  }

  /// Full-answer caching (level 3; see AnswerShared). Off by default.
  void set_answer_cache_enabled(bool enabled) {
    answer_cache_enabled_.store(enabled, std::memory_order_relaxed);
    if (!enabled) ClearAnswerCache();
  }
  bool answer_cache_enabled() const {
    return answer_cache_enabled_.load(std::memory_order_relaxed);
  }
  void ClearAnswerCache() { caches_->answer->Clear(); }
  LruCacheStats answer_cache_stats() const {
    return caches_->answer->stats();
  }
  /// Replaces the answer cache with an empty one of `bytes` capacity
  /// (counters reset). Must not race with in-flight queries.
  void set_answer_cache_capacity(size_t bytes) {
    caches_->answer = std::make_unique<AnswerCache>(bytes);
  }

  /// Rendered-body caching (level 4; see AnswerSharedRendered). Off by
  /// default.
  void set_body_cache_enabled(bool enabled) {
    body_cache_enabled_.store(enabled, std::memory_order_relaxed);
    if (!enabled) ClearBodyCache();
  }
  bool body_cache_enabled() const {
    return body_cache_enabled_.load(std::memory_order_relaxed);
  }
  void ClearBodyCache() { caches_->body->Clear(); }
  LruCacheStats body_cache_stats() const { return caches_->body->stats(); }
  /// Replaces the body cache with an empty one of `bytes` capacity
  /// (counters reset). Must not race with in-flight queries.
  void set_body_cache_capacity(size_t bytes) {
    caches_->body = std::make_unique<BodyCache>(bytes);
  }

  /// Token-occurrence caching (level 1; see InvertedIndex). Off by default.
  void set_token_cache_enabled(bool enabled) {
    index_.set_lookup_cache_enabled(enabled);
  }
  LruCacheStats token_cache_stats() const {
    return index_.lookup_cache_stats();
  }

  /// Convenience: flips all four cache levels at once.
  void set_caches_enabled(bool enabled) {
    set_token_cache_enabled(enabled);
    set_schema_cache_enabled(enabled);
    set_answer_cache_enabled(enabled);
    set_body_cache_enabled(enabled);
  }

  const InvertedIndex& index() const { return index_; }

  // Movable (the atomic members need explicit moves); not copyable.
  PrecisEngine(PrecisEngine&& o) noexcept
      : db_(o.db_),
        graph_(o.graph_),
        index_(std::move(o.index_)),
        synonyms_(o.synonyms_),
        schema_cache_enabled_(
            o.schema_cache_enabled_.load(std::memory_order_relaxed)),
        answer_cache_enabled_(
            o.answer_cache_enabled_.load(std::memory_order_relaxed)),
        body_cache_enabled_(
            o.body_cache_enabled_.load(std::memory_order_relaxed)),
        caches_(std::move(o.caches_)) {}
  PrecisEngine& operator=(PrecisEngine&& o) noexcept {
    db_ = o.db_;
    graph_ = o.graph_;
    index_ = std::move(o.index_);
    synonyms_ = o.synonyms_;
    schema_cache_enabled_.store(
        o.schema_cache_enabled_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    answer_cache_enabled_.store(
        o.answer_cache_enabled_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    body_cache_enabled_.store(
        o.body_cache_enabled_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    caches_ = std::move(o.caches_);
    return *this;
  }

 private:
  PrecisEngine(const Database* db, const SchemaGraph* graph,
               InvertedIndex index)
      : db_(db), graph_(graph), index_(std::move(index)) {}

  /// Lookup + canonicalization shared by Answer and AnswerPerOccurrence.
  std::vector<TokenMatch> MatchTokens(const PrecisQuery& query) const;

  /// Builds one answer from an explicit set of matches. Const because
  /// answering does not logically mutate the engine: the only touched state
  /// is the schema cache, reached through a pointer and internally locked.
  Result<PrecisAnswer> AnswerFromMatches(std::vector<TokenMatch> matches,
                                         const DegreeConstraint& degree,
                                         const CardinalityConstraint& c,
                                         const DbGenOptions& options,
                                         ExecutionContext* ctx) const;

  /// Full-answer cache key: canonicalized token sequence + constraint
  /// renderings + generation options + the two epochs.
  std::string AnswerFingerprint(const PrecisQuery& query,
                                const DegreeConstraint& degree,
                                const CardinalityConstraint& cardinality,
                                const DbGenOptions& options,
                                uint64_t db_epoch,
                                uint64_t weight_epoch) const;

  /// Shared implementation of AnswerShared / AnswerSharedRendered. When
  /// `body_out` is non-null it is always filled with AnswerToJson bytes,
  /// memoized through the body cache when permitted.
  Result<std::shared_ptr<const PrecisAnswer>> AnswerSharedImpl(
      const PrecisQuery& query, const DegreeConstraint& degree,
      const CardinalityConstraint& cardinality, const DbGenOptions& options,
      ExecutionContext* ctx,
      std::shared_ptr<const std::string>* body_out) const;

  const Database* db_;
  const SchemaGraph* graph_;
  InvertedIndex index_;
  const SynonymTable* synonyms_ = nullptr;

  std::atomic<bool> schema_cache_enabled_{false};
  std::atomic<bool> answer_cache_enabled_{false};
  std::atomic<bool> body_cache_enabled_{false};

  using SchemaCache = ShardedLruCache<std::string, ResultSchema>;
  using AnswerCache = ShardedLruCache<std::string, PrecisAnswer>;
  using BodyCache = ShardedLruCache<std::string, std::string>;
  // Behind a unique_ptr so the engine stays movable despite the shard
  // mutexes. Capacity defaults: 8 MiB of schemas (they are small; this is
  // effectively "all schemas a realistic weight/constraint mix produces"),
  // 64 MiB of answers (a result database per entry; bounded so a long tail
  // of one-off queries evicts instead of growing forever — the fix for
  // PR 1's unbounded schema-cache map), 32 MiB of rendered JSON bodies
  // (cheaper per entry than answers; sized to hold the rendered form of a
  // realistic hot set).
  struct Caches {
    SchemaCache schema{8 << 20};
    std::unique_ptr<AnswerCache> answer =
        std::make_unique<AnswerCache>(64 << 20);
    std::unique_ptr<BodyCache> body = std::make_unique<BodyCache>(32 << 20);
  };
  std::unique_ptr<Caches> caches_ = std::make_unique<Caches>();
};

}  // namespace precis

#endif  // PRECIS_PRECIS_ENGINE_H_
