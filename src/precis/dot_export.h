// Graphviz export of schema graphs and result schemas.
//
// The paper's §7 plans "a graphical tool intended for use by a domain
// expert"; the domain expert's raw material is the weighted database graph
// and the sub-graph a query selected from it. These exporters emit DOT text
// for both — render with `dot -Tsvg`.

#ifndef PRECIS_PRECIS_DOT_EXPORT_H_
#define PRECIS_PRECIS_DOT_EXPORT_H_

#include <string>

#include "graph/schema_graph.h"
#include "precis/result_schema.h"

namespace precis {

/// \brief DOT rendering of the full database schema graph: one node per
/// relation, one record row per attribute with its projection weight, one
/// labelled arrow per join edge.
std::string SchemaGraphToDot(const SchemaGraph& graph);

/// \brief DOT rendering of a result schema G': included relations only,
/// token relations highlighted, projected attributes listed, join edges
/// labelled with their weights and each relation's in-degree shown.
std::string ResultSchemaToDot(const ResultSchema& schema);

}  // namespace precis

#endif  // PRECIS_PRECIS_DOT_EXPORT_H_
