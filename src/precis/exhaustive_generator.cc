#include "precis/exhaustive_generator.h"

#include <algorithm>

namespace precis {

namespace {

/// Depth-first enumeration of every acyclic projection path rooted at
/// `source`. Stops early (partial enumeration) when `ctx` says so.
void EnumerateFrom(const SchemaGraph& graph, RelationNodeId source,
                   double length_decay, ExecutionContext* ctx,
                   std::vector<Path>* out) {
  // Projection paths on the source itself.
  for (const ProjectionEdge* e : graph.ProjectionsOf(source)) {
    out->push_back(Path::Projection(source, e));
  }
  // Depth-first over join paths; each join path contributes one projection
  // path per projection edge of its terminal relation.
  std::vector<Path> stack;
  for (const JoinEdge* e : graph.JoinsFrom(source)) {
    stack.push_back(Path::Join(source, e));
  }
  while (!stack.empty()) {
    if (ctx != nullptr && ctx->ShouldStop()) return;
    Path p = std::move(stack.back());
    stack.pop_back();
    RelationNodeId terminal = p.terminal_relation();
    for (const ProjectionEdge* e : graph.ProjectionsOf(terminal)) {
      out->push_back(p.ExtendedByProjection(e, length_decay));
    }
    for (const JoinEdge* e : graph.JoinsFrom(terminal)) {
      if (p.ContainsRelation(e->to)) continue;  // acyclic
      stack.push_back(p.ExtendedByJoin(e, length_decay));
    }
  }
}

}  // namespace

Result<ResultSchema> ExhaustiveSchemaGenerator::Generate(
    const std::vector<RelationNodeId>& token_relations,
    const DegreeConstraint& d, ExecutionContext* ctx) const {
  last_paths_enumerated_ = 0;
  ResultSchema schema(graph_);

  std::vector<Path> all_paths;
  for (RelationNodeId rel : token_relations) {
    if (rel >= graph_->num_relations()) {
      return Status::InvalidArgument("token relation id out of range");
    }
    bool already =
        std::find(schema.token_relations().begin(),
                  schema.token_relations().end(),
                  rel) != schema.token_relations().end();
    if (already) continue;
    schema.AddTokenRelation(rel);
    EnumerateFrom(*graph_, rel, length_decay_, ctx, &all_paths);
  }
  last_paths_enumerated_ = all_paths.size();

  // P_n: decreasing weight, ties towards shorter paths, then enumeration
  // order (stable) for determinism.
  std::stable_sort(all_paths.begin(), all_paths.end(), PathPrecedes);

  // Accept in order. Skipping (rather than stopping at) an inadmissible
  // path reproduces the best-first algorithm's operational semantics: a
  // weight threshold fails everything after its first failure anyway, a
  // length bound acts as a filter (the traversal prunes long paths without
  // stopping), and a top-r bound stays violated once reached.
  for (const Path& p : all_paths) {
    if (d.Admits(schema, p)) {
      schema.AcceptProjectionPath(p);
    }
  }
  return schema;
}

}  // namespace precis
