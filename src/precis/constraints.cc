#include "precis/constraints.h"

#include <algorithm>
#include <sstream>

namespace precis {

namespace {

class MaxProjectionsConstraint : public DegreeConstraint {
 public:
  explicit MaxProjectionsConstraint(size_t r) : r_(r) {}

  bool Admits(const ResultSchema& current,
              const Path& candidate) const override {
    if (!candidate.is_projection_path()) return true;
    return current.projection_paths().size() < r_;
  }

  std::string ToString() const override {
    return "t <= " + std::to_string(r_);
  }

 private:
  size_t r_;
};

class MinPathWeightConstraint : public DegreeConstraint {
 public:
  explicit MinPathWeightConstraint(double w0) : w0_(w0) {}

  bool Admits(const ResultSchema& /*current*/,
              const Path& candidate) const override {
    // Weights multiply in [0, 1]: once a (join) path drops below w0 no
    // extension of it can recover, so the check prunes join paths too.
    return candidate.weight() >= w0_;
  }

  std::string ToString() const override {
    std::ostringstream os;
    os << "w >= " << w0_;
    return os.str();
  }

 private:
  double w0_;
};

class MaxPathLengthConstraint : public DegreeConstraint {
 public:
  explicit MaxPathLengthConstraint(size_t l0) : l0_(l0) {}

  bool Admits(const ResultSchema& /*current*/,
              const Path& candidate) const override {
    return candidate.length() <= l0_;
  }

  std::string ToString() const override {
    return "length <= " + std::to_string(l0_);
  }

 private:
  size_t l0_;
};

class MaxRelationsConstraint : public DegreeConstraint {
 public:
  explicit MaxRelationsConstraint(size_t r) : r_(r) {}

  bool Admits(const ResultSchema& current,
              const Path& candidate) const override {
    // Relations the candidate would add to G'.
    size_t added = 0;
    auto counts = [&](RelationNodeId rel) {
      return current.relations().count(rel) == 0;
    };
    if (counts(candidate.source())) ++added;
    for (const JoinEdge* e : candidate.joins()) {
      if (counts(e->to)) ++added;
    }
    return current.relations().size() + added <= r_;
  }

  std::string ToString() const override {
    return "relations <= " + std::to_string(r_);
  }

 private:
  size_t r_;
};

class ConjunctionDegreeConstraint : public DegreeConstraint {
 public:
  explicit ConjunctionDegreeConstraint(
      std::vector<std::unique_ptr<DegreeConstraint>> parts)
      : parts_(std::move(parts)) {}

  bool Admits(const ResultSchema& current,
              const Path& candidate) const override {
    for (const auto& part : parts_) {
      if (!part->Admits(current, candidate)) return false;
    }
    return true;
  }

  std::string ToString() const override {
    std::string out;
    for (size_t i = 0; i < parts_.size(); ++i) {
      if (i > 0) out += " AND ";
      out += parts_[i]->ToString();
    }
    return out.empty() ? "true" : out;
  }

 private:
  std::vector<std::unique_ptr<DegreeConstraint>> parts_;
};

class MaxTotalTuplesConstraint : public CardinalityConstraint {
 public:
  explicit MaxTotalTuplesConstraint(size_t c0) : c0_(c0) {}

  std::optional<size_t> Budget(size_t /*relation_count*/,
                               size_t total_count) const override {
    if (total_count >= c0_) return 0;
    return c0_ - total_count;
  }

  std::string ToString() const override {
    return "card(D') <= " + std::to_string(c0_);
  }

 private:
  size_t c0_;
};

class MaxTuplesPerRelationConstraint : public CardinalityConstraint {
 public:
  explicit MaxTuplesPerRelationConstraint(size_t c0) : c0_(c0) {}

  std::optional<size_t> Budget(size_t relation_count,
                               size_t /*total_count*/) const override {
    if (relation_count >= c0_) return 0;
    return c0_ - relation_count;
  }

  std::string ToString() const override {
    return "card(R') <= " + std::to_string(c0_);
  }

 private:
  size_t c0_;
};

class UnlimitedCardinalityConstraint : public CardinalityConstraint {
 public:
  std::optional<size_t> Budget(size_t /*relation_count*/,
                               size_t /*total_count*/) const override {
    return std::nullopt;
  }

  std::string ToString() const override { return "unlimited"; }
};

class ConjunctionCardinalityConstraint : public CardinalityConstraint {
 public:
  explicit ConjunctionCardinalityConstraint(
      std::vector<std::unique_ptr<CardinalityConstraint>> parts)
      : parts_(std::move(parts)) {}

  std::optional<size_t> Budget(size_t relation_count,
                               size_t total_count) const override {
    std::optional<size_t> budget;
    for (const auto& part : parts_) {
      std::optional<size_t> b = part->Budget(relation_count, total_count);
      if (!b.has_value()) continue;
      if (!budget.has_value() || *b < *budget) budget = b;
    }
    return budget;
  }

  std::string ToString() const override {
    std::string out;
    for (size_t i = 0; i < parts_.size(); ++i) {
      if (i > 0) out += " AND ";
      out += parts_[i]->ToString();
    }
    return out.empty() ? "unlimited" : out;
  }

 private:
  std::vector<std::unique_ptr<CardinalityConstraint>> parts_;
};

}  // namespace

std::unique_ptr<DegreeConstraint> MaxProjections(size_t r) {
  return std::make_unique<MaxProjectionsConstraint>(r);
}

std::unique_ptr<DegreeConstraint> MinPathWeight(double w0) {
  return std::make_unique<MinPathWeightConstraint>(w0);
}

std::unique_ptr<DegreeConstraint> MaxPathLength(size_t l0) {
  return std::make_unique<MaxPathLengthConstraint>(l0);
}

std::unique_ptr<DegreeConstraint> MaxRelations(size_t r) {
  return std::make_unique<MaxRelationsConstraint>(r);
}

std::unique_ptr<DegreeConstraint> AllOf(
    std::vector<std::unique_ptr<DegreeConstraint>> parts) {
  return std::make_unique<ConjunctionDegreeConstraint>(std::move(parts));
}

std::unique_ptr<CardinalityConstraint> MaxTotalTuples(size_t c0) {
  return std::make_unique<MaxTotalTuplesConstraint>(c0);
}

std::unique_ptr<CardinalityConstraint> MaxTuplesPerRelation(size_t c0) {
  return std::make_unique<MaxTuplesPerRelationConstraint>(c0);
}

std::unique_ptr<CardinalityConstraint> UnlimitedCardinality() {
  return std::make_unique<UnlimitedCardinalityConstraint>();
}

std::unique_ptr<CardinalityConstraint> AllOf(
    std::vector<std::unique_ptr<CardinalityConstraint>> parts) {
  return std::make_unique<ConjunctionCardinalityConstraint>(std::move(parts));
}

}  // namespace precis
