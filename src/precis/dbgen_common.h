// Helpers shared by the sequential and parallel result-database
// generators (database_generator.cc and parallel_dbgen.cc).
//
// Both implementations must agree bit-for-bit on everything in here: the
// parallel generator's determinism guarantee ("byte-identical output to the
// single-threaded run") rests on the two paths computing the same emitted
// attribute sets, the same SQL trace text, the same FK-holds verdicts and
// the same simulated-cost timing hooks from the same inputs.

#ifndef PRECIS_PRECIS_DBGEN_COMMON_H_
#define PRECIS_PRECIS_DBGEN_COMMON_H_

#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/retry.h"
#include "precis/database_generator.h"
#include "precis/result_schema.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace precis {
namespace dbgen_internal {

/// True when fault checks can fire for this query. Both generator paths
/// branch on this once so the fault-free hot path stays a direct call.
inline bool FaultsArmed(const ExecutionContext* ctx) {
  return ctx != nullptr && ctx->fault_injector() != nullptr &&
         ctx->fault_injector()->armed();
}

/// The per-join-key lookup as one retriable unit — the kJoinValueLookup
/// gate plus the probe/scan behind it (which consults kIndexProbe or
/// kRelationScan inside Relation::LookupEquals). Both generator paths call
/// this from their sequential control thread, so the injector check
/// sequence is identical between modes. Only call when FaultsArmed(ctx).
inline Result<std::vector<Tid>> FaultyLookup(const Relation& relation,
                                             const std::string& attribute,
                                             const Value& key,
                                             ExecutionContext* ctx,
                                             uint64_t* retries) {
  return RetryWithBackoff(
      ctx->retry_policy(), ctx, FaultSite::kJoinValueLookup,
      [&]() -> Result<std::vector<Tid>> {
        PRECIS_RETURN_NOT_OK(ctx->CheckFault(FaultSite::kJoinValueLookup));
        return relation.LookupEquals(attribute, key, ctx);
      },
      retries);
}

/// Find-or-append accessor for the per-relation degradation entry; first
/// degradation event determines report order (deterministic per seed).
inline RelationDegradation& DegradationFor(DegradationReport& report,
                                           const std::string& relation) {
  for (RelationDegradation& r : report.relations) {
    if (r.relation == relation) return r;
  }
  report.relations.push_back(RelationDegradation{relation});
  return report.relations.back();
}

/// Busy-waits for the simulated per-statement overhead (see
/// DbGenOptions::statement_overhead_ns). A sleep would be descheduled for
/// far longer than the microsecond scale being modelled.
inline void SimulateStatementOverhead(uint64_t total_ns) {
  if (total_ns == 0) return;
  auto until = std::chrono::steady_clock::now() +
               std::chrono::nanoseconds(total_ns);
  while (std::chrono::steady_clock::now() < until) {
  }
}

/// Accumulates simulated per-tuple access latency (see
/// DbGenOptions::simulated_access_latency_ns) and pays it in batched
/// sleeps. Unlike the statement overhead above, this models *I/O wait* on
/// the paper's DBMS substrate — time the CPU is idle — so it sleeps
/// (yielding the core, which is what lets concurrent subtree expansion
/// overlap the waits) instead of busy-waiting, and batches to
/// kFlushThresholdNs so scheduler wake-up noise does not swamp the
/// microsecond-scale debt being modelled. Timing-only: never affects
/// output.
class LatencyDebt {
 public:
  static constexpr uint64_t kFlushThresholdNs = 100'000;  // 100us

  explicit LatencyDebt(uint64_t per_access_ns) : per_access_ns_(per_access_ns) {}

  /// Records `count` accesses of debt and sleeps it off once the batch
  /// crosses the flush threshold.
  void Charge(size_t count = 1) {
    if (per_access_ns_ == 0) return;
    owed_ns_ += per_access_ns_ * static_cast<uint64_t>(count);
    if (owed_ns_ >= kFlushThresholdNs) Flush();
  }

  /// Sleeps off any remaining debt.
  void Flush() {
    if (owed_ns_ == 0) return;
    std::this_thread::sleep_for(std::chrono::nanoseconds(owed_ns_));
    owed_ns_ = 0;
  }

 private:
  uint64_t per_access_ns_;
  uint64_t owed_ns_ = 0;
};

inline std::vector<size_t> IdentityProjection(const RelationSchema& schema) {
  std::vector<size_t> out(schema.num_attributes());
  for (size_t i = 0; i < out.size(); ++i) out[i] = i;
  return out;
}

/// The attribute indices a result relation exposes: the projections of G'
/// plus (optionally) the join attributes of its incident edges.
inline std::vector<size_t> EmittedAttributeIndices(
    const ResultSchema& schema, RelationNodeId rel,
    bool include_join_attributes) {
  const RelationSchema& src_schema = schema.graph().relation_schema(rel);
  std::set<uint32_t> attrs = schema.projected_attributes(rel);
  if (include_join_attributes) {
    for (const JoinEdge* e : schema.join_edges()) {
      if (e->from == rel) {
        auto idx = src_schema.AttributeIndex(e->from_attribute);
        if (idx.ok()) attrs.insert(static_cast<uint32_t>(*idx));
      }
      if (e->to == rel) {
        auto idx = src_schema.AttributeIndex(e->to_attribute);
        if (idx.ok()) attrs.insert(static_cast<uint32_t>(*idx));
      }
    }
  }
  return std::vector<size_t>(attrs.begin(), attrs.end());
}

/// Renders the sigma_Tids seed query as SQL text for the trace.
inline std::string RenderSeedSql(const RelationSchema& schema,
                                 const std::vector<size_t>& projection,
                                 const std::vector<Tid>& tids) {
  std::string sql = "SELECT ";
  if (projection.empty()) {
    sql += "*";
  } else {
    for (size_t i = 0; i < projection.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += schema.attribute(projection[i]).name;
    }
  }
  sql += " FROM " + schema.name() + " WHERE rowid IN (";
  for (size_t i = 0; i < tids.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += std::to_string(tids[i]);
  }
  sql += ")";
  return sql;
}

/// True if `fk` holds on the (already emitted) data of `db`: every non-NULL
/// child value appears among the parent values.
inline bool ForeignKeyHolds(const Database& db, const ForeignKey& fk) {
  auto child = db.GetRelation(fk.child_relation);
  auto parent = db.GetRelation(fk.parent_relation);
  if (!child.ok() || !parent.ok()) return false;
  auto child_idx = (*child)->schema().AttributeIndex(fk.child_attribute);
  auto parent_idx = (*parent)->schema().AttributeIndex(fk.parent_attribute);
  if (!child_idx.ok() || !parent_idx.ok()) return false;
  const Column& child_col = (*child)->column(*child_idx);
  const Column& parent_col = (*parent)->column(*parent_idx);
  if (child_col.type() == parent_col.type()) {
    // Same-type columns: compare canonical 64-bit key bits straight off the
    // columnar payload instead of hashing 40-byte Values. Semantics match
    // Value equality exactly: NULLs are skipped on the child side and
    // contribute nothing on the parent side; a NaN child value equals
    // nothing (CanonicalBits -> nullopt, like NaN self-inequality under
    // Value::operator==); a NaN parent value can never be matched, so
    // skipping its insert is unobservable; -0.0 canonicalizes to +0.0 on
    // both sides.
    const DataType type = child_col.type();
    std::unordered_set<uint64_t> parent_bits;
    parent_bits.reserve(parent_col.size());
    for (Tid tid = 0; tid < parent_col.size(); ++tid) {
      if (parent_col.IsNull(tid)) continue;
      auto bits = Column::CanonicalBits(parent_col.raw_bits(tid), type);
      if (bits) parent_bits.insert(*bits);
    }
    for (Tid tid = 0; tid < child_col.size(); ++tid) {
      if (child_col.IsNull(tid)) continue;
      auto bits = Column::CanonicalBits(child_col.raw_bits(tid), type);
      if (!bits || parent_bits.count(*bits) == 0) return false;
    }
    return true;
  }
  std::unordered_set<Value, ValueHash> parent_values;
  for (Tid tid = 0; tid < (*parent)->num_tuples(); ++tid) {
    parent_values.insert((*parent)->tuple(tid)[*parent_idx]);
  }
  for (Tid tid = 0; tid < (*child)->num_tuples(); ++tid) {
    const Value& v = (*child)->tuple(tid)[*child_idx];
    if (v.is_null()) continue;
    if (parent_values.count(v) == 0) return false;
  }
  return true;
}

/// True if the join edge is to-1: its destination attribute is the
/// destination relation's primary key, so each source tuple joins with at
/// most one destination tuple.
inline bool IsToOne(const JoinEdge& edge, const RelationSchema& to_schema) {
  if (!to_schema.primary_key()) return false;
  auto idx = to_schema.AttributeIndex(edge.to_attribute);
  if (!idx.ok()) return false;
  return *idx == *to_schema.primary_key();
}

/// The out-of-range message Relation::Get produces, replicated so the
/// parallel planner (which validates tids without fetching) fails with the
/// byte-same status text as the sequential generator.
inline std::string TidOutOfRangeMessage(Tid tid, const Relation& relation) {
  return "tid " + std::to_string(tid) + " out of range for relation '" +
         relation.name() + "' with " + std::to_string(relation.num_tuples()) +
         " tuples";
}

}  // namespace dbgen_internal
}  // namespace precis

#endif  // PRECIS_PRECIS_DBGEN_COMMON_H_
