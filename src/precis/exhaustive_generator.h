// Exhaustive reference implementation of result-schema generation.
//
// The problem statement of §5.1 defines the result schema through "the set
// P_n of all (transitive) acyclic projection paths in G attached to [the
// token] relations in order of decreasing weight". This generator computes
// exactly that: enumerate every acyclic projection path by depth-first
// search, sort, and accept in order under the degree constraint.
//
// It exists for two reasons:
//  * as a correctness oracle for the best-first Fig. 3 algorithm (the two
//    must produce the same result schema up to tie order), and
//  * as the ablation baseline quantifying what the best-first traversal's
//    pruning buys (see bench/ablation_schema_search): the exhaustive
//    enumeration pays for every acyclic path in the graph regardless of the
//    constraint, the best-first traversal only for what the constraint
//    admits.

#ifndef PRECIS_PRECIS_EXHAUSTIVE_GENERATOR_H_
#define PRECIS_PRECIS_EXHAUSTIVE_GENERATOR_H_

#include <vector>

#include "common/execution_context.h"
#include "common/result.h"
#include "graph/schema_graph.h"
#include "precis/constraints.h"
#include "precis/result_schema.h"

namespace precis {

/// \brief Enumerate-all-then-filter schema generation.
class ExhaustiveSchemaGenerator {
 public:
  explicit ExhaustiveSchemaGenerator(const SchemaGraph* graph)
      : graph_(graph) {}

  /// Same contract as ResultSchemaGenerator::Generate, including the
  /// early-stop behaviour under an ExecutionContext — though here a stop
  /// during enumeration yields a prefix of *enumeration* order, not of the
  /// weight ranking, so a stopped exhaustive run is only useful as a bound.
  Result<ResultSchema> Generate(
      const std::vector<RelationNodeId>& token_relations,
      const DegreeConstraint& d, ExecutionContext* ctx = nullptr) const;

  /// Per-hop length-decay lambda (matches
  /// ResultSchemaGenerator::set_length_decay).
  Status set_length_decay(double length_decay) {
    if (length_decay <= 0.0 || length_decay > 1.0) {
      return Status::InvalidArgument("length decay must be in (0, 1]");
    }
    length_decay_ = length_decay;
    return Status::OK();
  }

  /// Projection paths enumerated by the last Generate call (before the
  /// constraint was applied) — the quantity the best-first algorithm avoids
  /// materializing.
  size_t last_paths_enumerated() const { return last_paths_enumerated_; }

 private:
  const SchemaGraph* graph_;
  double length_decay_ = 1.0;
  mutable size_t last_paths_enumerated_ = 0;
};

}  // namespace precis

#endif  // PRECIS_PRECIS_EXHAUSTIVE_GENERATOR_H_
