#include "precis/schema_generator.h"

#include <algorithm>
#include <queue>

namespace precis {

namespace {

/// Queue entry: a candidate path plus a monotonically increasing sequence
/// number that makes the dequeue order fully deterministic (weight desc,
/// length asc, insertion order asc).
struct QueueEntry {
  Path path;
  uint64_t seq;
};

struct QueueOrder {
  // std::priority_queue pops the *largest* element, so this returns true
  // when `a` should come out after `b`.
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.path.weight() != b.path.weight()) {
      return a.path.weight() < b.path.weight();
    }
    if (a.path.length() != b.path.length()) {
      return a.path.length() > b.path.length();
    }
    return a.seq > b.seq;
  }
};

/// Edges attached to a relation, as extension candidates in decreasing
/// weight order (the paper sorts expansion edges by weight so that the first
/// pruned extension terminates the expansion of its siblings).
struct AttachedEdge {
  const ProjectionEdge* projection = nullptr;  // exactly one of the two set
  const JoinEdge* join = nullptr;
  double weight = 0.0;
};

std::vector<AttachedEdge> AttachedEdgesOf(const SchemaGraph& graph,
                                          RelationNodeId rel) {
  std::vector<AttachedEdge> edges;
  for (const ProjectionEdge* e : graph.ProjectionsOf(rel)) {
    edges.push_back(AttachedEdge{e, nullptr, e->weight});
  }
  for (const JoinEdge* e : graph.JoinsFrom(rel)) {
    edges.push_back(AttachedEdge{nullptr, e, e->weight});
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const AttachedEdge& a, const AttachedEdge& b) {
                     return a.weight > b.weight;
                   });
  return edges;
}

}  // namespace

Result<ResultSchema> ResultSchemaGenerator::Generate(
    const std::vector<RelationNodeId>& token_relations,
    const DegreeConstraint& d, ExecutionContext* ctx) const {
  last_stats_ = SchemaGeneratorStats{};
  ResultSchema schema(graph_);

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, QueueOrder> qp;
  uint64_t seq = 0;

  // Step 1: initialize QP with every edge attached to an input relation.
  for (RelationNodeId rel : token_relations) {
    if (rel >= graph_->num_relations()) {
      return Status::InvalidArgument("token relation id out of range");
    }
    bool already_input =
        std::find(schema.token_relations().begin(),
                  schema.token_relations().end(),
                  rel) != schema.token_relations().end();
    if (already_input) continue;
    schema.AddTokenRelation(rel);
    for (const ProjectionEdge* e : graph_->ProjectionsOf(rel)) {
      qp.push(QueueEntry{Path::Projection(rel, e), seq++});
      ++last_stats_.paths_enqueued;
    }
    for (const JoinEdge* e : graph_->JoinsFrom(rel)) {
      qp.push(QueueEntry{Path::Join(rel, e), seq++});
      ++last_stats_.paths_enqueued;
    }
  }

  // Step 2: best-first consumption.
  while (!qp.empty()) {
    if (ctx != nullptr && ctx->ShouldStop()) break;  // partial schema
    Path p = qp.top().path;
    qp.pop();
    ++last_stats_.paths_dequeued;

    // Step 2.2: the head is the best remaining candidate; if it fails the
    // degree constraint, so does everything behind it.
    if (!d.Admits(schema, p)) break;

    if (p.is_projection_path()) {
      // Step 2.3a: accept, update G'.
      schema.AcceptProjectionPath(p);
      continue;
    }

    // Step 2.3b: expand the join path by each edge attached to its terminal
    // relation, in decreasing weight order; prune the remaining (weaker)
    // siblings at the first inadmissible extension.
    RelationNodeId terminal = p.terminal_relation();
    for (const AttachedEdge& e : AttachedEdgesOf(*graph_, terminal)) {
      if (e.join != nullptr && p.ContainsRelation(e.join->to)) {
        continue;  // acyclic paths only
      }
      Path extended = (e.projection != nullptr)
                          ? p.ExtendedByProjection(e.projection, length_decay_)
                          : p.ExtendedByJoin(e.join, length_decay_);
      if (!d.Admits(schema, extended)) {
        ++last_stats_.paths_pruned;
        break;
      }
      qp.push(QueueEntry{std::move(extended), seq++});
      ++last_stats_.paths_enqueued;
    }
  }

  return schema;
}

Status ResultSchemaGenerator::set_length_decay(double length_decay) {
  if (length_decay <= 0.0 || length_decay > 1.0) {
    return Status::InvalidArgument("length decay must be in (0, 1]");
  }
  length_decay_ = length_decay;
  return Status::OK();
}

Result<ResultSchema> ResultSchemaGenerator::Generate(
    const std::vector<std::string>& token_relation_names,
    const DegreeConstraint& d, ExecutionContext* ctx) const {
  std::vector<RelationNodeId> ids;
  ids.reserve(token_relation_names.size());
  for (const std::string& name : token_relation_names) {
    auto id = graph_->RelationId(name);
    if (!id.ok()) return id.status();
    ids.push_back(*id);
  }
  return Generate(ids, d, ctx);
}

}  // namespace precis
