// JSON export of databases and précis answers.
//
// Web front-ends are the paper's motivating deployment ("web accessible
// databases ... as libraries, museums, and other organizations publish
// their electronic contents on the Web"); this module gives them a
// machine-readable answer format. Hand-rolled emitter, no dependencies;
// output is deterministic (relation and attribute order follow the schema).

#ifndef PRECIS_PRECIS_JSON_EXPORT_H_
#define PRECIS_PRECIS_JSON_EXPORT_H_

#include <string>

#include "precis/engine.h"
#include "storage/database.h"

namespace precis {

/// \brief Escapes a string for inclusion in a JSON string literal
/// (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& raw);

/// \brief One value as a JSON scalar: null, number, or string.
std::string ValueToJson(const Value& v);

/// \brief A whole database:
/// {"name": ..., "relations": [{"name", "attributes": [{"name","type",
/// "primary_key"}], "tuples": [[...]]}], "foreign_keys": [{"child",
/// "child_attribute", "parent", "parent_attribute"}]}
std::string DatabaseToJson(const Database& db);

/// \brief A full précis answer: token matches, the result schema D'
/// (relations, projected attributes, join edges, in-degrees), the result
/// database, and the generation report.
std::string AnswerToJson(const PrecisAnswer& answer);

}  // namespace precis

#endif  // PRECIS_PRECIS_JSON_EXPORT_H_
