// Umbrella header: the précis library's public API in one include.
//
//   #include "precis/precis.h"
//
// pulls in the storage engine, schema graph, constraints, engine,
// translator, baseline, serialization and export surfaces. Individual
// headers remain includable for finer-grained dependencies.

#ifndef PRECIS_PRECIS_PRECIS_H_
#define PRECIS_PRECIS_PRECIS_H_

#include "common/result.h"
#include "common/status.h"
#include "graph/path.h"
#include "graph/schema_graph.h"
#include "graph/weight_profile.h"
#include "storage/database.h"
#include "storage/serialization.h"
#include "text/inverted_index.h"
#include "text/synonyms.h"
#include "precis/constraints.h"
#include "precis/cost_model.h"
#include "precis/database_generator.h"
#include "precis/dot_export.h"
#include "precis/engine.h"
#include "precis/exhaustive_generator.h"
#include "precis/json_export.h"
#include "precis/result_schema.h"
#include "precis/schema_generator.h"
#include "precis/tuple_weights.h"

#endif  // PRECIS_PRECIS_PRECIS_H_
