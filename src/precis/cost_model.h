// The Result Database Generator cost model (paper §6, Formulas 1-3).
//
//   (1)  Cost(D') = sum_i card(R'_i) * (IndexTime + TupleTime)
//   (2)  Cost(D') = c_R * n_R * (IndexTime + TupleTime)     [per-relation cap]
//   (3)  c_R = cost_M / (n_R * (IndexTime + TupleTime))     [derived budget]
//
// The model considers only I/O overhead: the time to locate a tuple id via
// an index (IndexTime) and to read a tuple given its id (TupleTime). The
// initial seed lookup is excluded, as in the paper.

#ifndef PRECIS_PRECIS_COST_MODEL_H_
#define PRECIS_PRECIS_COST_MODEL_H_

#include <memory>

#include "common/result.h"
#include "storage/access_stats.h"
#include "precis/constraints.h"

namespace precis {

/// \brief Evaluates the paper's cost formulas for a given set of per-access
/// latency parameters.
class CostModel {
 public:
  explicit CostModel(CostParameters params) : params_(params) {}

  const CostParameters& params() const { return params_; }

  /// Formula (1) evaluated on observed access counts: predicted seconds for
  /// the run that produced `stats`.
  double PredictSeconds(const AccessStats& stats) const {
    return static_cast<double>(stats.index_probes) *
               params_.index_time_seconds +
           static_cast<double>(stats.tuple_fetches) *
               params_.tuple_time_seconds;
  }

  /// Formula (2): predicted seconds when a per-relation cardinality cap c_R
  /// fills n_R relations.
  double PredictSecondsFormula2(size_t tuples_per_relation,
                                size_t num_relations) const {
    return static_cast<double>(tuples_per_relation) *
           static_cast<double>(num_relations) * params_.PerTupleCost();
  }

  /// Formula (3): the per-relation tuple budget c_R that meets a response
  /// time target cost_M over n_R relations. Fails when the parameters make
  /// the division degenerate.
  Result<size_t> TuplesPerRelationForBudget(double cost_m_seconds,
                                            size_t num_relations) const;

  /// Convenience: a MaxTuplesPerRelation constraint derived via Formula (3)
  /// from a response-time target — "we could define cardinality constraints
  /// based on the desired response time of a query".
  Result<std::unique_ptr<CardinalityConstraint>> CardinalityForResponseTime(
      double cost_m_seconds, size_t num_relations) const;

  /// Calibrates (IndexTime + TupleTime) from a measured run: given the
  /// observed wall-clock seconds and access counts, apportions the time
  /// between probes and fetches proportionally to their counts.
  static CostParameters Calibrate(double measured_seconds,
                                  const AccessStats& stats);

 private:
  CostParameters params_;
};

}  // namespace precis

#endif  // PRECIS_PRECIS_COST_MODEL_H_
