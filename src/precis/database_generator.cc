#include "precis/database_generator.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "precis/dbgen_common.h"
#include "sql/select.h"

namespace precis {

using dbgen_internal::DegradationFor;
using dbgen_internal::EmittedAttributeIndices;
using dbgen_internal::FaultsArmed;
using dbgen_internal::FaultyLookup;
using dbgen_internal::ForeignKeyHolds;
using dbgen_internal::IdentityProjection;
using dbgen_internal::IsToOne;
using dbgen_internal::LatencyDebt;
using dbgen_internal::RenderSeedSql;
using dbgen_internal::SimulateStatementOverhead;

namespace {

/// Tuples collected so far for one result relation.
struct Collected {
  std::vector<Row> rows;          // in retrieval order (full source tuples)
  std::unordered_set<Tid> seen;   // duplicate elimination by rowid
  /// Arrival tags per tuple (path-aware propagation): the G' join edges
  /// that delivered the tuple, nullptr meaning "seeded by the query
  /// tokens". A tuple reached over several edges carries every tag.
  std::unordered_map<Tid, std::vector<const JoinEdge*>> arrivals;

  void Tag(Tid tid, const JoinEdge* arrival) {
    std::vector<const JoinEdge*>& tags = arrivals[tid];
    for (const JoinEdge* t : tags) {
      if (t == arrival) return;
    }
    tags.push_back(arrival);
  }
};

/// Ordered distinct non-NULL values of `attribute` over the collected rows —
/// the IN-list for the next join query. The order follows the order in which
/// the source tuples were collected, which is what gives NaiveQ its
/// "prefix of the source tuples" behaviour on truncation.
Result<std::vector<Value>> JoinKeys(
    const Collected& collected, const RelationSchema& schema,
    const std::string& attribute,
    const std::set<const JoinEdge*>* allowed_arrivals) {
  auto idx = schema.AttributeIndex(attribute);
  if (!idx.ok()) return idx.status();
  std::vector<Value> keys;
  std::unordered_set<Value, ValueHash> dedup;
  for (const Row& row : collected.rows) {
    if (allowed_arrivals != nullptr) {
      auto tags = collected.arrivals.find(row.tid);
      bool feeds = false;
      if (tags != collected.arrivals.end()) {
        for (const JoinEdge* t : tags->second) {
          if (allowed_arrivals->count(t) > 0) {
            feeds = true;
            break;
          }
        }
      }
      if (!feeds) continue;
    }
    const Value& v = row.values[*idx];
    if (v.is_null()) continue;
    if (dedup.insert(v).second) keys.push_back(v);
  }
  return keys;
}

}  // namespace

std::string DegradationReport::ToString() const {
  std::string out;
  if (!shards_skipped.empty()) {
    out += "shards_skipped=";
    for (size_t i = 0; i < shards_skipped.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(shards_skipped[i]);
    }
    out += " of " + std::to_string(shards_total) + "\n";
  }
  for (const RelationDegradation& r : relations) {
    out += r.relation + ": dropped=" + std::to_string(r.dropped_tuples) +
           " lookups_failed=" + std::to_string(r.failed_lookups) +
           " retries=" + std::to_string(r.retries);
    if (r.unavailable_tuples > 0) {
      out += " unavailable=" + std::to_string(r.unavailable_tuples);
    }
    out += "\n";
  }
  return out;
}

const char* SubsetStrategyToString(SubsetStrategy s) {
  switch (s) {
    case SubsetStrategy::kAuto:
      return "auto";
    case SubsetStrategy::kNaiveQ:
      return "naiveq";
    case SubsetStrategy::kRoundRobin:
      return "roundrobin";
  }
  return "unknown";
}

Result<Database> ResultDatabaseGenerator::Generate(
    const ResultSchema& schema, const SeedTids& seeds,
    const CardinalityConstraint& c, const DbGenOptions& options,
    ExecutionContext* ctx) {
  if (options.parallelism >= 2) {
    return GenerateParallel(schema, seeds, c, options, ctx);
  }
  return GenerateSequential(schema, seeds, c, options, ctx);
}

Result<Database> ResultDatabaseGenerator::GenerateSequential(
    const ResultSchema& schema, const SeedTids& seeds,
    const CardinalityConstraint& c, const DbGenOptions& options,
    ExecutionContext* ctx) {
  last_report_ = DbGenReport{};
  const SchemaGraph& graph = schema.graph();

  // Per-query arena for scratch tid vectors (ordered seeds, ranked
  // candidates): bump-allocated, freed wholesale with the context (or at
  // the end of this call when no context is attached).
  Arena local_arena;
  Arena* arena = ctx != nullptr ? &ctx->arena() : &local_arena;

  // Simulated per-accepted-tuple I/O wait (cost-model substrate; see
  // DbGenOptions::simulated_access_latency_ns). Timing-only.
  LatencyDebt io_debt(options.simulated_access_latency_ns);

  // Per-query stop check (deadline / access budget / cancellation). On
  // stop, fetching ends wherever it is and the algorithm falls through to
  // the emit steps, so the caller always receives a well-formed database.
  auto stopped = [&] { return ctx != nullptr && ctx->ShouldStop(); };

  // Fault injection (DESIGN.md §12): when the context carries an armed
  // injector, every storage access below retries transient faults with the
  // context's RetryPolicy; exhausted retries *degrade* the answer (dropped
  // tuple / failed lookup, accounted per relation) instead of failing the
  // run. The taint bit is set whenever the injector is armed — even if no
  // fault fires — so the engine's caches never store an answer produced
  // under fault conditions.
  const bool faults = FaultsArmed(ctx);
  last_report_.fault_tainted = faults;
  auto degradation_for = [&](RelationNodeId rel) -> RelationDegradation& {
    return DegradationFor(last_report_.degradation, graph.relation_name(rel));
  };

  // Resolve source relations once.
  std::map<RelationNodeId, const Relation*> source_relations;
  for (RelationNodeId rel : schema.relations()) {
    auto r = source_->GetRelation(graph.relation_name(rel));
    if (!r.ok()) return r.status();
    source_relations[rel] = *r;
  }

  std::map<RelationNodeId, Collected> collected;
  for (RelationNodeId rel : schema.relations()) collected[rel];
  size_t total = 0;

  auto mark_truncated = [&](RelationNodeId rel) {
    const std::string& name = graph.relation_name(rel);
    auto& t = last_report_.truncated_relations;
    if (std::find(t.begin(), t.end(), name) == t.end()) t.push_back(name);
  };

  // Step 1: D' <- tuples involving query tokens (sigma_Tids queries), each
  // relation's subset limited NaiveQ-style by the cardinality budget.
  for (const auto& [rel, tids] : seeds) {
    if (schema.relations().count(rel) == 0) {
      return Status::InvalidArgument("seed relation '" +
                                     graph.relation_name(rel) +
                                     "' is not part of the result schema");
    }
    if (stopped()) {
      mark_truncated(rel);
      continue;
    }
    const Relation& source = *source_relations[rel];
    source.CountStatement(ctx);  // one sigma_Tids query per seed relation
    SimulateStatementOverhead(options.statement_overhead_ns);
    if (options.trace_sql) {
      last_report_.sql_trace.push_back(RenderSeedSql(
          source.schema(),
          EmittedAttributeIndices(schema, rel,
                                  options.include_join_attributes),
          tids));
    }
    Collected& col = collected[rel];
    ArenaVector<Tid> ordered_tids{ArenaAllocator<Tid>(arena)};
    ordered_tids.assign(tids.begin(), tids.end());
    if (options.tuple_weights != nullptr) {
      const std::string& rel_name = graph.relation_name(rel);
      std::stable_sort(ordered_tids.begin(), ordered_tids.end(),
                       [&](Tid a, Tid b) {
                         return options.tuple_weights->Weight(rel_name, a) >
                                options.tuple_weights->Weight(rel_name, b);
                       });
    }
    for (Tid tid : ordered_tids) {
      if (col.seen.count(tid) > 0) continue;
      if (stopped()) {
        mark_truncated(rel);
        break;
      }
      std::optional<size_t> budget = c.Budget(col.rows.size(), total);
      if (budget.has_value() && *budget == 0) {
        mark_truncated(rel);
        break;
      }
      auto tuple = [&]() -> Result<const Tuple*> {
        if (!faults) return source.Get(tid, ctx);  // counted tuple fetch
        uint64_t r = 0;
        auto t = RetryWithBackoff(ctx->retry_policy(), ctx,
                                  FaultSite::kTupleFetch,
                                  [&] { return source.Get(tid, ctx); }, &r);
        if (r > 0) degradation_for(rel).retries += r;
        return t;
      }();
      if (!tuple.ok()) {
        if (tuple.status().IsUnavailable()) {
          // Retries exhausted: this seed tuple is lost, not the query.
          ++degradation_for(rel).dropped_tuples;
          continue;
        }
        return tuple.status();
      }
      col.seen.insert(tid);
      col.rows.push_back(Row{tid, **tuple});
      col.Tag(tid, nullptr);
      ++total;
      io_debt.Charge();
    }
  }

  // Path-aware propagation: for each G' edge, the arrival tags that may
  // drive it — nullptr (seed) when a P_d path starts with the edge, and
  // every edge that immediately precedes it on some P_d path.
  std::map<const JoinEdge*, std::set<const JoinEdge*>> feeders;
  if (options.path_aware_propagation) {
    for (const Path& path : schema.projection_paths()) {
      const std::vector<const JoinEdge*>& joins = path.joins();
      for (size_t i = 0; i < joins.size(); ++i) {
        feeders[joins[i]].insert(i == 0 ? nullptr : joins[i - 1]);
      }
    }
  }

  // Step 2: loop over the join edges of G'. An edge is preferably executed
  // only when every join arriving at its source relation has already been
  // executed (in-degree postponement); among applicable edges the one with
  // the highest weight precedes. If postponement ever blocks all remaining
  // edges (a cycle among G' relations), the best remaining edge runs anyway
  // so the algorithm always terminates.
  std::map<RelationNodeId, int> pending;
  for (RelationNodeId rel : schema.relations()) {
    pending[rel] = schema.in_degree(rel);
  }
  std::unordered_set<const JoinEdge*> executed;

  while (!stopped() && executed.size() < schema.join_edges().size()) {
    const JoinEdge* next = nullptr;
    bool next_applicable = false;
    for (const JoinEdge* e : schema.join_edges()) {
      if (executed.count(e) > 0) continue;
      bool applicable = pending[e->from] == 0;
      bool better;
      if (next == nullptr) {
        better = true;
      } else if (applicable != next_applicable) {
        better = applicable;
      } else {
        better = e->weight > next->weight;
      }
      if (better) {
        next = e;
        next_applicable = applicable;
      }
    }
    // next != nullptr by the loop condition.
    const JoinEdge& edge = *next;
    const Relation& to_relation = *source_relations[edge.to];
    const RelationSchema& from_schema =
        graph.relation_schema(edge.from);
    const RelationSchema& to_schema = graph.relation_schema(edge.to);

    const std::set<const JoinEdge*>* allowed = nullptr;
    if (options.path_aware_propagation) {
      allowed = &feeders[&edge];
    }
    auto keys = JoinKeys(collected[edge.from], from_schema,
                         edge.from_attribute, allowed);
    if (!keys.ok()) return keys.status();

    SubsetStrategy strategy = options.strategy;
    if (strategy == SubsetStrategy::kAuto) {
      strategy = IsToOne(edge, to_schema) ? SubsetStrategy::kNaiveQ
                                          : SubsetStrategy::kRoundRobin;
    }

    Collected& col = collected[edge.to];
    std::vector<size_t> projection = IdentityProjection(to_schema);

    if (options.trace_sql) {
      std::vector<size_t> display = EmittedAttributeIndices(
          schema, edge.to, options.include_join_attributes);
      if (strategy == SubsetStrategy::kRoundRobin &&
          options.tuple_weights == nullptr) {
        // One cursor per probe value.
        for (const Value& key : *keys) {
          last_report_.sql_trace.push_back(RenderInListSql(
              to_schema, edge.to_attribute, {key}, display, std::nullopt));
        }
      } else {
        std::optional<size_t> limit;
        std::optional<size_t> budget = c.Budget(col.rows.size(), total);
        if (strategy == SubsetStrategy::kNaiveQ &&
            options.tuple_weights == nullptr && budget.has_value()) {
          limit = budget;  // NaiveQ pushes the cap down as RowNum
        }
        last_report_.sql_trace.push_back(RenderInListSql(
            to_schema, edge.to_attribute, *keys, display, limit));
      }
    }

    auto try_add = [&](Row row) -> bool {
      // Returns false when the budget is exhausted. Duplicates are skipped
      // without consuming budget (but still gain this edge's arrival tag).
      if (col.seen.count(row.tid) > 0) {
        col.Tag(row.tid, &edge);
        return true;
      }
      if (stopped()) {
        mark_truncated(edge.to);
        return false;
      }
      std::optional<size_t> budget = c.Budget(col.rows.size(), total);
      if (budget.has_value() && *budget == 0) {
        mark_truncated(edge.to);
        return false;
      }
      col.Tag(row.tid, &edge);
      col.seen.insert(row.tid);
      col.rows.push_back(std::move(row));
      ++total;
      io_debt.Charge();
      return true;
    };

    if (options.tuple_weights != nullptr) {
      // Ranked selection (§7's data-value weights): collect all joining
      // candidates, order by tuple weight (heaviest first), then fetch up
      // to the budget.
      const std::string& to_name = graph.relation_name(edge.to);
      to_relation.CountStatement(ctx);
      SimulateStatementOverhead(options.statement_overhead_ns);
      ArenaVector<Tid> candidates{ArenaAllocator<Tid>(arena)};
      std::unordered_set<Tid> candidate_seen;
      for (const Value& key : *keys) {
        if (stopped()) break;
        auto tids = [&]() -> Result<std::vector<Tid>> {
          if (!faults) return to_relation.LookupEquals(edge.to_attribute, key, ctx);
          uint64_t r = 0;
          auto t = FaultyLookup(to_relation, edge.to_attribute, key, ctx, &r);
          if (r > 0) degradation_for(edge.to).retries += r;
          return t;
        }();
        if (!tids.ok()) {
          if (tids.status().IsUnavailable()) {
            // This key's joining tuples are lost; the other keys survive.
            ++degradation_for(edge.to).failed_lookups;
            continue;
          }
          return tids.status();
        }
        for (Tid tid : *tids) {
          if (col.seen.count(tid) > 0) continue;
          if (candidate_seen.insert(tid).second) candidates.push_back(tid);
        }
      }
      std::stable_sort(candidates.begin(), candidates.end(),
                       [&](Tid a, Tid b) {
                         return options.tuple_weights->Weight(to_name, a) >
                                options.tuple_weights->Weight(to_name, b);
                       });
      for (Tid tid : candidates) {
        auto tuple = [&]() -> Result<const Tuple*> {
          if (!faults) return to_relation.Get(tid, ctx);
          uint64_t r = 0;
          auto t = RetryWithBackoff(ctx->retry_policy(), ctx,
                                    FaultSite::kTupleFetch,
                                    [&] { return to_relation.Get(tid, ctx); },
                                    &r);
          if (r > 0) degradation_for(edge.to).retries += r;
          return t;
        }();
        if (!tuple.ok()) {
          if (tuple.status().IsUnavailable()) {
            ++degradation_for(edge.to).dropped_tuples;
            continue;
          }
          return tuple.status();
        }
        if (!try_add(Row{tid, **tuple})) break;
      }
    } else if (strategy == SubsetStrategy::kNaiveQ) {
      // One IN-list query, kept up to the budget in retrieval order.
      to_relation.CountStatement(ctx);
      SimulateStatementOverhead(options.statement_overhead_ns);
      bool budget_open = true;
      for (const Value& key : *keys) {
        if (!budget_open) break;
        auto tids = [&]() -> Result<std::vector<Tid>> {
          if (!faults) return to_relation.LookupEquals(edge.to_attribute, key, ctx);
          uint64_t r = 0;
          auto t = FaultyLookup(to_relation, edge.to_attribute, key, ctx, &r);
          if (r > 0) degradation_for(edge.to).retries += r;
          return t;
        }();
        if (!tids.ok()) {
          if (tids.status().IsUnavailable()) {
            ++degradation_for(edge.to).failed_lookups;
            continue;
          }
          return tids.status();
        }
        for (Tid tid : *tids) {
          auto tuple = [&]() -> Result<const Tuple*> {
            if (!faults) return to_relation.Get(tid, ctx);
            uint64_t r = 0;
            auto t = RetryWithBackoff(ctx->retry_policy(), ctx,
                                      FaultSite::kTupleFetch,
                                      [&] { return to_relation.Get(tid, ctx); },
                                      &r);
            if (r > 0) degradation_for(edge.to).retries += r;
            return t;
          }();
          if (!tuple.ok()) {
            if (tuple.status().IsUnavailable()) {
              ++degradation_for(edge.to).dropped_tuples;
              continue;
            }
            return tuple.status();
          }
          if (!try_add(Row{tid, **tuple})) {
            budget_open = false;
            break;
          }
        }
      }
    } else {
      // RoundRobin: one scan per key; one joining tuple per open scan per
      // round, while the cardinality constraint holds.
      auto scans = PerValueScanSet::Open(to_relation, edge.to_attribute,
                                         *keys, projection, ctx);
      if (!scans.ok()) return scans.status();
      SimulateStatementOverhead(options.statement_overhead_ns *
                                static_cast<uint64_t>(keys->size()));
      bool budget_open = true;
      while (budget_open && !scans->AllClosed()) {
        for (size_t i = 0; i < scans->num_scans(); ++i) {
          std::optional<Row> row = scans->Next(i);
          if (!row.has_value()) continue;
          if (!try_add(std::move(*row))) {
            budget_open = false;
            break;
          }
        }
      }
      // The scan set retried/degraded internally (failed opens become
      // drained scans, failed fetches drop single tuples); fold its
      // counters into the report once, after the edge drains.
      if (faults) {
        const uint64_t r = scans->retries();
        const uint64_t f = scans->failed_opens();
        const uint64_t d = scans->dropped_fetches();
        if (r > 0 || f > 0 || d > 0) {
          RelationDegradation& deg = degradation_for(edge.to);
          deg.retries += r;
          deg.failed_lookups += f;
          deg.dropped_tuples += d;
        }
      }
    }

    --pending[edge.to];
    executed.insert(&edge);
    last_report_.executed_edges.push_back(graph.relation_name(edge.from) +
                                          " -> " +
                                          graph.relation_name(edge.to));
  }

  io_debt.Flush();

  // Step 3: emit the result database.
  Database result("precis_result");
  std::map<RelationNodeId, std::vector<size_t>> emitted_attrs;
  for (RelationNodeId rel : schema.relations()) {
    const RelationSchema& src_schema = graph.relation_schema(rel);
    std::vector<size_t> ordered = EmittedAttributeIndices(
        schema, rel, options.include_join_attributes);
    emitted_attrs[rel] = ordered;

    std::vector<AttributeSchema> out_attrs;
    out_attrs.reserve(ordered.size());
    for (size_t idx : ordered) out_attrs.push_back(src_schema.attribute(idx));
    RelationSchema out_schema(src_schema.name(), std::move(out_attrs));
    if (src_schema.primary_key()) {
      const std::string& pk_name =
          src_schema.attribute(*src_schema.primary_key()).name;
      if (out_schema.HasAttribute(pk_name)) {
        PRECIS_RETURN_NOT_OK(out_schema.SetPrimaryKey(pk_name));
      }
    }
    PRECIS_RETURN_NOT_OK(result.CreateRelation(std::move(out_schema)));

    auto out_relation = result.GetRelation(src_schema.name());
    if (!out_relation.ok()) return out_relation.status();
    for (const Row& row : collected[rel].rows) {
      Tuple projected = ProjectTuple(row.values, ordered);
      auto tid = (*out_relation)->Insert(std::move(projected));
      if (!tid.ok()) return tid.status();
    }
  }

  // Step 4: carry over the source foreign keys that are applicable to the
  // result schema and actually hold on the emitted data (a cardinality cut
  // may have removed referenced parents; such constraints are reported and
  // omitted rather than declared falsely).
  for (const ForeignKey& fk : source_->foreign_keys()) {
    if (!result.HasRelation(fk.child_relation) ||
        !result.HasRelation(fk.parent_relation)) {
      continue;
    }
    auto child = result.GetRelation(fk.child_relation);
    auto parent = result.GetRelation(fk.parent_relation);
    if (!(*child)->schema().HasAttribute(fk.child_attribute) ||
        !(*parent)->schema().HasAttribute(fk.parent_attribute)) {
      continue;
    }
    if (ForeignKeyHolds(result, fk)) {
      PRECIS_RETURN_NOT_OK(result.AddForeignKey(fk));
    } else {
      last_report_.dropped_foreign_keys.push_back(fk.ToString());
    }
  }

  last_report_.total_tuples = result.TotalTuples();
  if (ctx != nullptr) last_report_.stop_reason = ctx->stop_reason();
  return result;
}

}  // namespace precis
