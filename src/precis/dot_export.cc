#include "precis/dot_export.h"

#include <algorithm>
#include <sstream>

#include "precis/result_schema.h"

namespace precis {

namespace {

/// Escapes a string for use inside a DOT double-quoted value.
std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string FormatWeight(double w) {
  std::ostringstream os;
  os << w;
  return os.str();
}

}  // namespace

std::string SchemaGraphToDot(const SchemaGraph& graph) {
  std::ostringstream os;
  os << "digraph schema {\n";
  os << "  rankdir=LR;\n";
  os << "  node [shape=plaintext, fontname=\"Helvetica\"];\n";
  for (RelationNodeId rel = 0; rel < graph.num_relations(); ++rel) {
    const RelationSchema& schema = graph.relation_schema(rel);
    os << "  r" << rel
       << " [label=<<table border=\"1\" cellborder=\"0\" cellspacing=\"0\">";
    os << "<tr><td bgcolor=\"lightgrey\"><b>" << DotEscape(schema.name())
       << "</b></td></tr>";
    for (const ProjectionEdge* e : graph.ProjectionsOf(rel)) {
      os << "<tr><td align=\"left\">"
         << DotEscape(schema.attribute(e->attribute).name) << " ("
         << FormatWeight(e->weight) << ")</td></tr>";
    }
    os << "</table>>];\n";
  }
  for (const JoinEdge& e : graph.join_edges()) {
    os << "  r" << e.from << " -> r" << e.to << " [label=\"("
       << DotEscape(e.from_attribute) << ") " << FormatWeight(e.weight)
       << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string ResultSchemaToDot(const ResultSchema& schema) {
  const SchemaGraph& graph = schema.graph();
  std::ostringstream os;
  os << "digraph result_schema {\n";
  os << "  rankdir=LR;\n";
  os << "  node [shape=plaintext, fontname=\"Helvetica\"];\n";
  for (RelationNodeId rel : schema.relations()) {
    const RelationSchema& rel_schema = graph.relation_schema(rel);
    bool is_token =
        std::find(schema.token_relations().begin(),
                  schema.token_relations().end(),
                  rel) != schema.token_relations().end();
    os << "  r" << rel
       << " [label=<<table border=\"1\" cellborder=\"0\" cellspacing=\"0\">";
    os << "<tr><td bgcolor=\"" << (is_token ? "gold" : "lightgrey")
       << "\"><b>" << DotEscape(rel_schema.name()) << "</b>";
    if (schema.in_degree(rel) > 0) {
      os << " [in " << schema.in_degree(rel) << "]";
    }
    os << "</td></tr>";
    for (uint32_t attr : schema.projected_attributes(rel)) {
      os << "<tr><td align=\"left\">"
         << DotEscape(rel_schema.attribute(attr).name) << "</td></tr>";
    }
    os << "</table>>];\n";
  }
  for (const JoinEdge* e : schema.join_edges()) {
    os << "  r" << e->from << " -> r" << e->to << " [label=\"("
       << DotEscape(e->from_attribute) << ") " << FormatWeight(e->weight)
       << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace precis
