#include "precis/json_export.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace precis {

namespace {

/// Appends a JSON array of strings.
void AppendStringArray(std::ostringstream* os,
                       const std::vector<std::string>& items) {
  *os << "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) *os << ",";
    *os << "\"" << JsonEscape(items[i]) << "\"";
  }
  *os << "]";
}

void AppendRelation(std::ostringstream* os, const Relation& relation) {
  const RelationSchema& schema = relation.schema();
  *os << "{\"name\":\"" << JsonEscape(schema.name()) << "\",\"attributes\":[";
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) *os << ",";
    const AttributeSchema& attr = schema.attribute(i);
    *os << "{\"name\":\"" << JsonEscape(attr.name) << "\",\"type\":\""
        << DataTypeToString(attr.type) << "\",\"primary_key\":"
        << ((schema.primary_key() && *schema.primary_key() == i) ? "true"
                                                                 : "false")
        << "}";
  }
  *os << "],\"tuples\":[";
  for (Tid tid = 0; tid < relation.num_tuples(); ++tid) {
    if (tid > 0) *os << ",";
    *os << "[";
    const Tuple& tuple = relation.tuple(tid);
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) *os << ",";
      *os << ValueToJson(tuple[i]);
    }
    *os << "]";
  }
  *os << "]}";
}

}  // namespace

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string ValueToJson(const Value& v) {
  if (v.is_null()) return "null";
  if (v.is_int64()) return std::to_string(v.AsInt64());
  if (v.is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
    return buf;
  }
  return "\"" + JsonEscape(v.AsString()) + "\"";
}

std::string DatabaseToJson(const Database& db) {
  std::ostringstream os;
  os << "{\"name\":\"" << JsonEscape(db.name()) << "\",\"relations\":[";
  bool first = true;
  for (const std::string& name : db.RelationNames()) {
    auto rel = db.GetRelation(name);
    if (!rel.ok()) continue;
    if (!first) os << ",";
    first = false;
    AppendRelation(&os, **rel);
  }
  os << "],\"foreign_keys\":[";
  for (size_t i = 0; i < db.foreign_keys().size(); ++i) {
    if (i > 0) os << ",";
    const ForeignKey& fk = db.foreign_keys()[i];
    os << "{\"child\":\"" << JsonEscape(fk.child_relation)
       << "\",\"child_attribute\":\"" << JsonEscape(fk.child_attribute)
       << "\",\"parent\":\"" << JsonEscape(fk.parent_relation)
       << "\",\"parent_attribute\":\"" << JsonEscape(fk.parent_attribute)
       << "\"}";
  }
  os << "]}";
  return os.str();
}

std::string AnswerToJson(const PrecisAnswer& answer) {
  std::ostringstream os;
  os << "{\"matches\":[";
  for (size_t m = 0; m < answer.matches.size(); ++m) {
    if (m > 0) os << ",";
    const TokenMatch& match = answer.matches[m];
    os << "{\"token\":\"" << JsonEscape(match.token)
       << "\",\"resolved_token\":\"" << JsonEscape(match.resolved_token)
       << "\",\"occurrences\":[";
    for (size_t o = 0; o < match.occurrences().size(); ++o) {
      if (o > 0) os << ",";
      const TokenOccurrence& occ = match.occurrences()[o];
      os << "{\"relation\":\"" << JsonEscape(occ.relation)
         << "\",\"attribute\":\"" << JsonEscape(occ.attribute)
         << "\",\"tids\":[";
      for (size_t t = 0; t < occ.tids.size(); ++t) {
        if (t > 0) os << ",";
        os << occ.tids[t];
      }
      os << "]}";
    }
    os << "]}";
  }
  os << "],\"schema\":{\"relations\":[";
  const SchemaGraph& graph = answer.schema.graph();
  bool first = true;
  for (RelationNodeId rel : answer.schema.relations()) {
    if (!first) os << ",";
    first = false;
    const RelationSchema& rel_schema = graph.relation_schema(rel);
    bool is_token =
        std::find(answer.schema.token_relations().begin(),
                  answer.schema.token_relations().end(),
                  rel) != answer.schema.token_relations().end();
    os << "{\"name\":\"" << JsonEscape(rel_schema.name())
       << "\",\"token_relation\":" << (is_token ? "true" : "false")
       << ",\"in_degree\":" << answer.schema.in_degree(rel)
       << ",\"projected_attributes\":";
    std::vector<std::string> attrs;
    for (uint32_t a : answer.schema.projected_attributes(rel)) {
      attrs.push_back(rel_schema.attribute(a).name);
    }
    AppendStringArray(&os, attrs);
    os << "}";
  }
  os << "],\"join_edges\":[";
  for (size_t i = 0; i < answer.schema.join_edges().size(); ++i) {
    if (i > 0) os << ",";
    const JoinEdge* e = answer.schema.join_edges()[i];
    os << "{\"from\":\"" << JsonEscape(graph.relation_name(e->from))
       << "\",\"to\":\"" << JsonEscape(graph.relation_name(e->to))
       << "\",\"from_attribute\":\"" << JsonEscape(e->from_attribute)
       << "\",\"to_attribute\":\"" << JsonEscape(e->to_attribute)
       << "\",\"weight\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", e->weight);
    os << buf << "}";
  }
  os << "]},\"database\":" << DatabaseToJson(answer.database);
  os << ",\"report\":{\"total_tuples\":" << answer.report.total_tuples
     << ",\"executed_edges\":";
  AppendStringArray(&os, answer.report.executed_edges);
  os << ",\"truncated_relations\":";
  AppendStringArray(&os, answer.report.truncated_relations);
  os << ",\"dropped_foreign_keys\":";
  AppendStringArray(&os, answer.report.dropped_foreign_keys);
  // Execution outcome (DESIGN.md §12): why generation stopped early and
  // what injected faults cost the answer, per relation. A web front end
  // needs these to caption a partial or degraded précis honestly.
  os << ",\"stop_reason\":\"" << StopReasonToString(answer.report.stop_reason)
     << "\",\"fault_tainted\":"
     << (answer.report.fault_tainted ? "true" : "false")
     << ",\"degradation\":[";
  bool first_entry = true;
  for (const RelationDegradation& d : answer.report.degradation.relations) {
    if (!first_entry) os << ",";
    first_entry = false;
    os << "{\"relation\":\"" << JsonEscape(d.relation)
       << "\",\"dropped_tuples\":" << d.dropped_tuples
       << ",\"failed_lookups\":" << d.failed_lookups
       << ",\"retries\":" << d.retries << "}";
  }
  os << "]}}";
  return os.str();
}

}  // namespace precis
