#include "precis/json_export.h"

#include <algorithm>
#include <cstdio>

namespace precis {

namespace {

// The serializers below append into one pre-sized std::string instead of
// an ostringstream: AnswerToJson sits on the serving hot path (its output
// is what the body cache memoizes, DESIGN.md §16), and streaming through
// ostringstream costs a locale-aware formatting layer plus a final copy
// out of the stream. Byte-for-byte output is unchanged — integers format
// identically via std::to_string, doubles keep their snprintf patterns.

void AppendUint(std::string* out, uint64_t v) { *out += std::to_string(v); }

/// Appends a JSON array of strings.
void AppendStringArray(std::string* out,
                       const std::vector<std::string>& items) {
  *out += "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) *out += ",";
    *out += "\"";
    *out += JsonEscape(items[i]);
    *out += "\"";
  }
  *out += "]";
}

void AppendValueJson(std::string* out, const Value& v) {
  if (v.is_null()) {
    *out += "null";
    return;
  }
  if (v.is_int64()) {
    *out += std::to_string(v.AsInt64());
    return;
  }
  if (v.is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
    *out += buf;
    return;
  }
  *out += "\"";
  *out += JsonEscape(v.AsString());
  *out += "\"";
}

/// Rough per-relation output size used to reserve the destination buffer
/// up front: schema boilerplate plus a conservative per-cell estimate.
/// Short numeric cells stay well under this; long strings overflow into
/// the string's normal growth, so the estimate only needs to be close.
size_t EstimateRelationJsonBytes(const Relation& relation) {
  const size_t cells =
      relation.num_tuples() * relation.schema().num_attributes();
  return 96 + 64 * relation.schema().num_attributes() + 8 * cells +
         relation.num_tuples() * 4;
}

void AppendRelation(std::string* out, const Relation& relation) {
  const RelationSchema& schema = relation.schema();
  *out += "{\"name\":\"";
  *out += JsonEscape(schema.name());
  *out += "\",\"attributes\":[";
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) *out += ",";
    const AttributeSchema& attr = schema.attribute(i);
    *out += "{\"name\":\"";
    *out += JsonEscape(attr.name);
    *out += "\",\"type\":\"";
    *out += DataTypeToString(attr.type);
    *out += "\",\"primary_key\":";
    *out += (schema.primary_key() && *schema.primary_key() == i) ? "true"
                                                                 : "false";
    *out += "}";
  }
  *out += "],\"tuples\":[";
  for (Tid tid = 0; tid < relation.num_tuples(); ++tid) {
    if (tid > 0) *out += ",";
    *out += "[";
    const Tuple& tuple = relation.tuple(tid);
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) *out += ",";
      AppendValueJson(out, tuple[i]);
    }
    *out += "]";
  }
  *out += "]}";
}

void AppendDatabaseJson(std::string* out, const Database& db) {
  *out += "{\"name\":\"";
  *out += JsonEscape(db.name());
  *out += "\",\"relations\":[";
  bool first = true;
  for (const std::string& name : db.RelationNames()) {
    auto rel = db.GetRelation(name);
    if (!rel.ok()) continue;
    if (!first) *out += ",";
    first = false;
    AppendRelation(out, **rel);
  }
  *out += "],\"foreign_keys\":[";
  for (size_t i = 0; i < db.foreign_keys().size(); ++i) {
    if (i > 0) *out += ",";
    const ForeignKey& fk = db.foreign_keys()[i];
    *out += "{\"child\":\"";
    *out += JsonEscape(fk.child_relation);
    *out += "\",\"child_attribute\":\"";
    *out += JsonEscape(fk.child_attribute);
    *out += "\",\"parent\":\"";
    *out += JsonEscape(fk.parent_relation);
    *out += "\",\"parent_attribute\":\"";
    *out += JsonEscape(fk.parent_attribute);
    *out += "\"}";
  }
  *out += "]}";
}

size_t EstimateDatabaseJsonBytes(const Database& db) {
  size_t bytes = 64 + 96 * db.foreign_keys().size();
  for (const std::string& name : db.RelationNames()) {
    auto rel = db.GetRelation(name);
    if (rel.ok()) bytes += EstimateRelationJsonBytes(**rel);
  }
  return bytes;
}

}  // namespace

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string ValueToJson(const Value& v) {
  std::string out;
  AppendValueJson(&out, v);
  return out;
}

std::string DatabaseToJson(const Database& db) {
  std::string out;
  out.reserve(EstimateDatabaseJsonBytes(db));
  AppendDatabaseJson(&out, db);
  return out;
}

std::string AnswerToJson(const PrecisAnswer& answer) {
  std::string out;
  {
    // Size the buffer once from the answer's own counts so the append
    // loops below almost never reallocate (satellite of DESIGN.md §16).
    size_t estimate = 512 + EstimateDatabaseJsonBytes(answer.database);
    for (const TokenMatch& match : answer.matches) {
      estimate += 96 + match.token.size() + match.resolved_token.size();
      for (const TokenOccurrence& occ : match.occurrences()) {
        estimate += 64 + occ.relation.size() + occ.attribute.size() +
                    8 * occ.tids.size();
      }
    }
    estimate += 128 * answer.schema.relations().size() +
                160 * answer.schema.join_edges().size() +
                96 * answer.report.degradation.relations.size() +
                32 * (answer.report.executed_edges.size() +
                      answer.report.truncated_relations.size() +
                      answer.report.dropped_foreign_keys.size());
    out.reserve(estimate);
  }
  out += "{\"matches\":[";
  for (size_t m = 0; m < answer.matches.size(); ++m) {
    if (m > 0) out += ",";
    const TokenMatch& match = answer.matches[m];
    out += "{\"token\":\"";
    out += JsonEscape(match.token);
    out += "\",\"resolved_token\":\"";
    out += JsonEscape(match.resolved_token);
    out += "\",\"occurrences\":[";
    for (size_t o = 0; o < match.occurrences().size(); ++o) {
      if (o > 0) out += ",";
      const TokenOccurrence& occ = match.occurrences()[o];
      out += "{\"relation\":\"";
      out += JsonEscape(occ.relation);
      out += "\",\"attribute\":\"";
      out += JsonEscape(occ.attribute);
      out += "\",\"tids\":[";
      for (size_t t = 0; t < occ.tids.size(); ++t) {
        if (t > 0) out += ",";
        AppendUint(&out, occ.tids[t]);
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "],\"schema\":{\"relations\":[";
  const SchemaGraph& graph = answer.schema.graph();
  bool first = true;
  for (RelationNodeId rel : answer.schema.relations()) {
    if (!first) out += ",";
    first = false;
    const RelationSchema& rel_schema = graph.relation_schema(rel);
    bool is_token =
        std::find(answer.schema.token_relations().begin(),
                  answer.schema.token_relations().end(),
                  rel) != answer.schema.token_relations().end();
    out += "{\"name\":\"";
    out += JsonEscape(rel_schema.name());
    out += "\",\"token_relation\":";
    out += is_token ? "true" : "false";
    out += ",\"in_degree\":";
    AppendUint(&out, answer.schema.in_degree(rel));
    out += ",\"projected_attributes\":";
    std::vector<std::string> attrs;
    for (uint32_t a : answer.schema.projected_attributes(rel)) {
      attrs.push_back(rel_schema.attribute(a).name);
    }
    AppendStringArray(&out, attrs);
    out += "}";
  }
  out += "],\"join_edges\":[";
  for (size_t i = 0; i < answer.schema.join_edges().size(); ++i) {
    if (i > 0) out += ",";
    const JoinEdge* e = answer.schema.join_edges()[i];
    out += "{\"from\":\"";
    out += JsonEscape(graph.relation_name(e->from));
    out += "\",\"to\":\"";
    out += JsonEscape(graph.relation_name(e->to));
    out += "\",\"from_attribute\":\"";
    out += JsonEscape(e->from_attribute);
    out += "\",\"to_attribute\":\"";
    out += JsonEscape(e->to_attribute);
    out += "\",\"weight\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", e->weight);
    out += buf;
    out += "}";
  }
  out += "]},\"database\":";
  AppendDatabaseJson(&out, answer.database);
  out += ",\"report\":{\"total_tuples\":";
  AppendUint(&out, answer.report.total_tuples);
  out += ",\"executed_edges\":";
  AppendStringArray(&out, answer.report.executed_edges);
  out += ",\"truncated_relations\":";
  AppendStringArray(&out, answer.report.truncated_relations);
  out += ",\"dropped_foreign_keys\":";
  AppendStringArray(&out, answer.report.dropped_foreign_keys);
  // Execution outcome (DESIGN.md §12): why generation stopped early and
  // what injected faults cost the answer, per relation. A web front end
  // needs these to caption a partial or degraded précis honestly.
  out += ",\"stop_reason\":\"";
  out += StopReasonToString(answer.report.stop_reason);
  out += "\",\"fault_tainted\":";
  out += answer.report.fault_tainted ? "true" : "false";
  out += ",\"degradation\":[";
  bool first_entry = true;
  for (const RelationDegradation& d : answer.report.degradation.relations) {
    if (!first_entry) out += ",";
    first_entry = false;
    out += "{\"relation\":\"";
    out += JsonEscape(d.relation);
    out += "\",\"dropped_tuples\":";
    AppendUint(&out, d.dropped_tuples);
    out += ",\"failed_lookups\":";
    AppendUint(&out, d.failed_lookups);
    out += ",\"retries\":";
    AppendUint(&out, d.retries);
    if (d.unavailable_tuples > 0) {
      // Only shard outages produce these; omitting the zero keeps every
      // pre-existing report byte-identical (DESIGN.md §17 taint rules).
      out += ",\"unavailable_tuples\":";
      AppendUint(&out, d.unavailable_tuples);
    }
    out += "}";
  }
  out += "]";
  if (!answer.report.degradation.shards_skipped.empty()) {
    // Shard-outage block (DESIGN.md §17), emitted only when shards were
    // actually skipped so clean answers keep their exact bytes.
    out += ",\"shards_skipped\":[";
    const auto& skipped = answer.report.degradation.shards_skipped;
    for (size_t i = 0; i < skipped.size(); ++i) {
      if (i > 0) out += ",";
      AppendUint(&out, skipped[i]);
    }
    out += "],\"shards_total\":";
    AppendUint(&out, answer.report.degradation.shards_total);
  }
  out += "}}";
  return out;
}

}  // namespace precis
