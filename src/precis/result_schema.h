// The result schema D' of a précis query: a sub-graph G' of the database
// schema graph (paper §5.1).

#ifndef PRECIS_PRECIS_RESULT_SCHEMA_H_
#define PRECIS_PRECIS_RESULT_SCHEMA_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "graph/path.h"
#include "graph/schema_graph.h"

namespace precis {

/// \brief The sub-graph G' selected by the Result Schema Generator.
///
/// Contains the relations that hold the query tokens, the relations
/// transitively joining to them, the subset of attributes to be projected,
/// the join edges connecting them, and — to steer the Result Database
/// Generator — each relation's in-degree (the number of distinct join edges
/// of G' arriving at it; the paper marks relations reached by paths from
/// more than one input relation, and postpones joins departing from them
/// until every arriving join has been executed).
///
/// Holds pointers into the SchemaGraph it was generated from; the graph must
/// outlive the ResultSchema.
class ResultSchema {
 public:
  explicit ResultSchema(const SchemaGraph* graph) : graph_(graph) {}

  const SchemaGraph& graph() const { return *graph_; }

  /// The input relations (those containing query tokens), deduplicated, in
  /// input order.
  const std::vector<RelationNodeId>& token_relations() const {
    return token_relations_;
  }

  /// All relation nodes of G'.
  const std::set<RelationNodeId>& relations() const { return relations_; }

  /// Projected attribute indices per relation (may be empty for a relation
  /// that only serves as a join hop).
  const std::set<uint32_t>& projected_attributes(RelationNodeId rel) const;

  /// Join edges of G', in acceptance order.
  const std::vector<const JoinEdge*>& join_edges() const {
    return join_edges_;
  }

  /// Number of distinct G' join edges arriving at `rel` (0 if absent).
  int in_degree(RelationNodeId rel) const;

  /// The ordered set P_d of accepted projection paths.
  const std::vector<Path>& projection_paths() const {
    return projection_paths_;
  }

  bool ContainsRelation(const std::string& name) const;
  bool ContainsAttribute(const std::string& relation,
                         const std::string& attribute) const;

  /// Total number of projected attributes across relations — the paper's
  /// degree measure "maximum number of attributes in D'".
  size_t TotalProjectedAttributes() const;

  /// Multi-line rendering of G' (Fig. 4 style).
  std::string ToString() const;

  // --- Mutators used by the ResultSchemaGenerator. ---

  /// Registers an input relation (idempotent); it becomes part of G'.
  void AddTokenRelation(RelationNodeId rel);

  /// Merges an accepted projection path into G': inserts its relations,
  /// join edges (updating in-degrees for newly inserted edges) and projected
  /// attribute, and appends it to P_d.
  void AcceptProjectionPath(const Path& path);

 private:
  const SchemaGraph* graph_;
  std::vector<RelationNodeId> token_relations_;
  std::set<RelationNodeId> relations_;
  std::map<RelationNodeId, std::set<uint32_t>> projected_attributes_;
  std::vector<const JoinEdge*> join_edges_;
  std::set<const JoinEdge*> join_edge_set_;
  std::map<RelationNodeId, int> in_degree_;
  std::vector<Path> projection_paths_;

  static const std::set<uint32_t> kNoAttributes;
};

}  // namespace precis

#endif  // PRECIS_PRECIS_RESULT_SCHEMA_H_
