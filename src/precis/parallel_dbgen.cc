// Intra-query parallel result-database generation (DESIGN.md §11).
//
// The sequential Fig. 5 walk (database_generator.cc) makes every decision
// that shapes the output — which tuple is accepted, in which order, where
// the cardinality budget truncates, which edge runs next — from *tids and
// counts only*; tuple values are needed only to drive join keys (readable
// uncharged from the stable source heap) and to materialize the output.
// That observation is the whole design:
//
//   * PLAN (this thread, sequential): replays the sequential control flow
//     bit-exactly — same seed order, same edge schedule, same per-edge
//     RoundRobin rounds, same duplicate handling, same budget checks at
//     the same points — but records accepted tids instead of fetching
//     tuples. Budget stops are decided against a *simulated* charge
//     counter that replays the sequential charge sequence (probe per key,
//     fetch per processed candidate, duplicates included), because the
//     parallel run's real AccessStats legitimately differ (planned-away
//     duplicate re-fetches); the decided reason is latched onto the
//     ExecutionContext so one observed stop stops all workers.
//   * FETCH (task pool, overlapped with planning): every kChunkTuples
//     accepted tids of a relation become one materialization task that
//     pays the simulated per-tuple I/O wait, charges the real tuple
//     fetches, and projects the tuples into a chunk-owned buffer. Chunk
//     boundaries depend only on the accepted sequence, never on thread
//     count, so the buffers are a deterministic partition of the output.
//   * MERGE/EMIT (deterministic): after the plan completes and the chunks
//     drain, chunk buffers are concatenated in acceptance order — exactly
//     the sequential collection order — and inserted; per-relation emit
//     and per-FK validation fan out again (disjoint targets).
//
// The emitted database and DbGenReport are therefore byte-identical to
// GenerateSequential for any pool size and parallelism value, including
// budget-stopped partial runs. Deadline and cancellation stops remain
// wall-clock-dependent in both modes.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/task_pool.h"
#include "precis/database_generator.h"
#include "precis/dbgen_common.h"
#include "sql/select.h"

namespace precis {

using dbgen_internal::DegradationFor;
using dbgen_internal::EmittedAttributeIndices;
using dbgen_internal::FaultsArmed;
using dbgen_internal::FaultyLookup;
using dbgen_internal::ForeignKeyHolds;
using dbgen_internal::IsToOne;
using dbgen_internal::RenderSeedSql;
using dbgen_internal::SimulateStatementOverhead;
using dbgen_internal::TidOutOfRangeMessage;

namespace {

/// Accepted tids per materialization task. Large enough that a chunk's
/// simulated I/O consolidates into one substantial sleep and the pool
/// transfer cost is noise; small enough that a large-c query yields many
/// chunks to steal.
constexpr size_t kChunkTuples = 256;

/// One materialization task's input (tid snapshot) and output (projected
/// cells, row-major `count x width`, index-aligned with `tids`). Both
/// arrays live in the query's Arena — allocated by the planner, filled by
/// the chunk task via the columnar ProjectRows kernel, freed wholesale at
/// context teardown. The task owns the cells exclusively until the group
/// Wait establishes the happens-before edge back to the merging thread —
/// no shared growing vector, no reallocation races, and (new in the
/// columnar layout) no per-tuple heap allocation at all: a Value is
/// trivially copyable, so a chunk is two flat arena arrays.
struct MaterializedChunk {
  const Tid* tids = nullptr;
  size_t count = 0;
  size_t width = 0;      // attributes per row
  Value* cells = nullptr;  // count * width, row-major
};

/// Plan-side state of one result relation: what the sequential Collected
/// tracks, minus the tuple values (deferred to chunk tasks).
struct PlannedRelation {
  const Relation* source = nullptr;
  std::vector<size_t> emitted;  // emitted attribute indices (sorted)
  bool identity = false;        // emitted == full schema order

  std::vector<Tid> accepted;    // sequential collection order
  std::unordered_set<Tid> seen;
  std::unordered_map<Tid, std::vector<const JoinEdge*>> arrivals;

  size_t next_chunk_start = 0;  // first accepted index not yet chunked
  std::vector<MaterializedChunk*> chunks;  // arena-owned, planner-ordered

  void Tag(Tid tid, const JoinEdge* arrival) {
    std::vector<const JoinEdge*>& tags = arrivals[tid];
    for (const JoinEdge* t : tags) {
      if (t == arrival) return;
    }
    tags.push_back(arrival);
  }
};

/// A TaskPool::Group that keeps at most `limit` of its tasks in flight —
/// the DbGenOptions::parallelism knob. Excess submissions queue locally
/// and are chained in by completing tasks, so one query cannot flood the
/// shared pool ahead of its configured share. Destruction waits for
/// everything (including the deferred chain) before tearing down.
class ThrottledGroup {
 public:
  ThrottledGroup(TaskPool* pool, size_t limit)
      : group_(pool), limit_(std::max<size_t>(1, limit)) {}

  ~ThrottledGroup() {
    try {
      group_.Wait();
    } catch (...) {
      // Callers who care about task exceptions call Wait() themselves.
    }
  }

  void Run(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (in_flight_ >= limit_) {
        deferred_.push_back(std::move(fn));
        return;
      }
      ++in_flight_;
    }
    Launch(std::move(fn));
  }

  /// Waits for every submitted task (rethrows the first task exception).
  /// The group is reusable afterwards — the emit and FK phases reuse it.
  void Wait() { group_.Wait(); }

 private:
  void Launch(std::function<void()> fn) {
    group_.Run([this, fn = std::move(fn)]() mutable {
      try {
        fn();
      } catch (...) {
        OnDone();  // keep the deferred chain draining even on failure
        throw;
      }
      OnDone();
    });
  }

  void OnDone() {
    std::function<void()> next;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (deferred_.empty()) {
        --in_flight_;
        return;
      }
      next = std::move(deferred_.front());
      deferred_.pop_front();
    }
    Launch(std::move(next));
  }

  TaskPool::Group group_;
  size_t limit_;
  std::mutex mu_;
  std::deque<std::function<void()>> deferred_;
  size_t in_flight_ = 0;
};

/// Sequential JoinKeys, re-read from the source heap: ordered distinct
/// non-NULL values of `attribute` over the accepted tuples. The heap is
/// append-only and tuple(tid) is uncharged, so the values (and their
/// collection order) are identical to the sequential pass over the
/// materialized rows.
Result<std::vector<Value>> PlanJoinKeys(
    const PlannedRelation& p, const RelationSchema& schema,
    const std::string& attribute,
    const std::set<const JoinEdge*>* allowed_arrivals) {
  auto idx = schema.AttributeIndex(attribute);
  if (!idx.ok()) return idx.status();
  std::vector<Value> keys;
  std::unordered_set<Value, ValueHash> dedup;
  for (Tid tid : p.accepted) {
    if (allowed_arrivals != nullptr) {
      auto tags = p.arrivals.find(tid);
      bool feeds = false;
      if (tags != p.arrivals.end()) {
        for (const JoinEdge* t : tags->second) {
          if (allowed_arrivals->count(t) > 0) {
            feeds = true;
            break;
          }
        }
      }
      if (!feeds) continue;
    }
    // Columnar single-attribute read: no row materialization, one
    // contiguous column. Uncharged, like the tuple(tid) read it replaces.
    const Value v = p.source->ColumnValue(tid, *idx);
    if (v.is_null()) continue;
    if (dedup.insert(v).second) keys.push_back(v);
  }
  return keys;
}

}  // namespace

Result<Database> ResultDatabaseGenerator::GenerateParallel(
    const ResultSchema& schema, const SeedTids& seeds,
    const CardinalityConstraint& c, const DbGenOptions& options,
    ExecutionContext* ctx) {
  last_report_ = DbGenReport{};
  const SchemaGraph& graph = schema.graph();

  // Resolve source relations once (same order and error surface as the
  // sequential path).
  std::map<RelationNodeId, const Relation*> source_relations;
  for (RelationNodeId rel : schema.relations()) {
    auto r = source_->GetRelation(graph.relation_name(rel));
    if (!r.ok()) return r.status();
    source_relations[rel] = *r;
  }

  std::map<RelationNodeId, PlannedRelation> planned;
  for (RelationNodeId rel : schema.relations()) {
    PlannedRelation& p = planned[rel];
    p.source = source_relations[rel];
    p.emitted =
        EmittedAttributeIndices(schema, rel, options.include_join_attributes);
    p.identity = IsIdentityProjection(p.emitted,
                                      p.source->schema().num_attributes());
  }
  size_t total = 0;

  // Per-query arena for tid snapshots and chunk cell buffers. When a
  // context is attached its arena is used (freed wholesale at context
  // teardown); otherwise a local arena scoped to this call serves.
  // Declared before the task group so that the group's destructor — which
  // waits for in-flight chunk tasks — always runs before the arena (and
  // the memory those tasks write into) goes away.
  Arena local_arena;
  Arena* arena = ctx != nullptr ? &ctx->arena() : &local_arena;

  // The task group outlives nothing it references: everything chunk tasks
  // touch (planned, source relations, arena, ctx) is declared above, so
  // the group's destructor — which waits — runs first on every return
  // path.
  TaskPool* pool = options.pool != nullptr ? options.pool : TaskPool::Shared();
  ThrottledGroup group(pool, options.parallelism);

  const uint64_t latency_ns = options.simulated_access_latency_ns;

  // --- Stop logic ---------------------------------------------------------
  //
  // sim_charges replays the charge sequence the *sequential* run would
  // produce: one per index probe / sequential scan at the probe sites, one
  // per tuple Get at the fetch sites — including duplicate fetches the
  // parallel run never performs. Budget stops are decided against it (and
  // latched, monotonically, onto the context) so truncation lands on
  // exactly the sequential tuple. Cancellation and deadline come from the
  // context as usual; their timing is inherently non-deterministic in both
  // modes. Check order mirrors ExecutionContext::ShouldStop.
  const uint64_t budget = ctx != nullptr ? ctx->access_budget() : 0;
  uint64_t sim_charges = 0;
  auto plan_stopped = [&]() -> bool {
    if (ctx == nullptr) return false;
    if (ctx->stop_reason() != StopReason::kNone) return true;
    if (ctx->cancelled()) {
      ctx->LatchStop(StopReason::kCancelled);
      return true;
    }
    if (budget != 0 && sim_charges >= budget) {
      ctx->LatchStop(StopReason::kAccessBudgetExhausted);
      return true;
    }
    auto remaining = ctx->RemainingSeconds();
    if (remaining.has_value() && *remaining <= 0.0) {
      ctx->LatchStop(StopReason::kDeadlineExceeded);
      return true;
    }
    return false;
  };

  auto mark_truncated = [&](RelationNodeId rel) {
    const std::string& name = graph.relation_name(rel);
    auto& t = last_report_.truncated_relations;
    if (std::find(t.begin(), t.end(), name) == t.end()) t.push_back(name);
  };

  // Fault injection (DESIGN.md §12). All fault decisions stay on this
  // planner thread: tuple-fetch checks are *replayed* at exactly the
  // positions the sequential walk issues Gets (the sim_charges mechanism's
  // twin — including duplicate fetches the parallel run plans away), and
  // lookups run here anyway, so the injector consumes the identical check
  // sequence in both modes. Chunk tasks fetch via FetchPrevalidated, which
  // never consults the injector.
  const bool faults = FaultsArmed(ctx);
  last_report_.fault_tainted = faults;
  auto degradation_for = [&](RelationNodeId rel) -> RelationDegradation& {
    return DegradationFor(last_report_.degradation, graph.relation_name(rel));
  };
  // Replays one sequential retried Get: consumes the same kTupleFetch check
  // indices as `RetryWithBackoff(..., [&]{ return Get(tid, ctx); })` does
  // on the sequential path. OK = the tuple survives (and its sim charge is
  // due); Unavailable = the sequential run dropped it.
  auto sim_fetch_check = [&](RelationNodeId rel) -> bool {
    if (!faults) return true;
    uint64_t r = 0;
    Status fs = CheckFaultWithRetry(ctx, FaultSite::kTupleFetch,
                                    ctx->retry_policy(), &r);
    if (r > 0) degradation_for(rel).retries += r;
    if (fs.ok()) return true;
    ++degradation_for(rel).dropped_tuples;
    return false;
  };

  // Spawns materialization tasks for every completed chunk of `p`'s
  // accepted tids (`flush` also chunks the residual tail). Boundaries
  // depend only on the accepted sequence — never on threads or timing —
  // so the chunk set is a deterministic partition of the output.
  auto spawn_chunks = [&](PlannedRelation& p, bool flush) {
    while (p.accepted.size() - p.next_chunk_start >= kChunkTuples ||
           (flush && p.accepted.size() > p.next_chunk_start)) {
      size_t begin = p.next_chunk_start;
      size_t count = std::min(kChunkTuples, p.accepted.size() - begin);
      p.next_chunk_start = begin + count;
      auto* chunk = new (arena->Allocate(sizeof(MaterializedChunk),
                                         alignof(MaterializedChunk)))
          MaterializedChunk();
      chunk->count = count;
      chunk->width = p.identity ? p.source->schema().num_attributes()
                                : p.emitted.size();
      Tid* tids = arena->AllocateArray<Tid>(count);
      std::copy(p.accepted.begin() + begin, p.accepted.begin() + begin + count,
                tids);
      chunk->tids = tids;
      chunk->cells = arena->AllocateArray<Value>(count * chunk->width);
      const Relation* src = p.source;
      const std::vector<size_t>* emitted = &p.emitted;  // stable (node map)
      const bool identity = p.identity;
      p.chunks.push_back(chunk);
      group.Run([chunk, src, emitted, identity, latency_ns, ctx] {
        if (latency_ns != 0) {
          // The chunk's whole simulated I/O wait in one sleep: same total
          // as the sequential path's batched debt, but overlappable.
          std::this_thread::sleep_for(std::chrono::nanoseconds(
              latency_ns * static_cast<uint64_t>(chunk->count)));
        }
        // Charged bulk fetch+project of planner-validated tids off the
        // columnar mirror. ProjectRows (not Get) never consults the fault
        // injector — fault decisions live on the planner thread only,
        // which is what keeps fault sequences deterministic (DESIGN.md
        // §12) — and charges the same tuple-fetch total the per-tuple
        // FetchPrevalidated loop did.
        if (identity) {
          src->ProjectRowsAll(chunk->tids, chunk->count, chunk->cells, ctx);
        } else {
          src->ProjectRows(chunk->tids, chunk->count, *emitted, chunk->cells,
                           ctx);
        }
      });
    }
  };

  // Accepts `tid` into `p` (bookkeeping only; materialization is deferred
  // to a chunk task). Caller has already done the dup/stop/budget checks
  // in sequential order.
  auto accept = [&](PlannedRelation& p, Tid tid, const JoinEdge* arrival) {
    p.Tag(tid, arrival);
    p.seen.insert(tid);
    p.accepted.push_back(tid);
    ++total;
    spawn_chunks(p, /*flush=*/false);
  };

  // --- Step 1: seed tuples (sigma_Tids), NaiveQ-limited -------------------
  for (const auto& [rel, tids] : seeds) {
    if (schema.relations().count(rel) == 0) {
      return Status::InvalidArgument("seed relation '" +
                                     graph.relation_name(rel) +
                                     "' is not part of the result schema");
    }
    if (plan_stopped()) {
      mark_truncated(rel);
      continue;
    }
    const Relation& source = *source_relations[rel];
    source.CountStatement(ctx);  // one sigma_Tids query per seed relation
    SimulateStatementOverhead(options.statement_overhead_ns);
    PlannedRelation& p = planned[rel];
    if (options.trace_sql) {
      last_report_.sql_trace.push_back(
          RenderSeedSql(source.schema(), p.emitted, tids));
    }
    ArenaVector<Tid> ordered_tids{ArenaAllocator<Tid>(arena)};
    ordered_tids.assign(tids.begin(), tids.end());
    if (options.tuple_weights != nullptr) {
      const std::string& rel_name = graph.relation_name(rel);
      std::stable_sort(ordered_tids.begin(), ordered_tids.end(),
                       [&](Tid a, Tid b) {
                         return options.tuple_weights->Weight(rel_name, a) >
                                options.tuple_weights->Weight(rel_name, b);
                       });
    }
    for (Tid tid : ordered_tids) {
      if (p.seen.count(tid) > 0) continue;
      if (plan_stopped()) {
        mark_truncated(rel);
        break;
      }
      std::optional<size_t> b = c.Budget(p.accepted.size(), total);
      if (b.has_value() && *b == 0) {
        mark_truncated(rel);
        break;
      }
      if (tid >= source.num_tuples()) {
        // The sequential path fails here inside Relation::Get.
        return Status::OutOfRange(TidOutOfRangeMessage(tid, source));
      }
      // Replay of the sequential seed Get's fault/retry sequence (the
      // bounds check above precedes the fault check, as in Relation::Get).
      if (!sim_fetch_check(rel)) continue;
      sim_charges += 1;  // the sequential seed Get
      accept(p, tid, nullptr);
    }
  }

  // Path-aware propagation feeders (identical to the sequential pass).
  std::map<const JoinEdge*, std::set<const JoinEdge*>> feeders;
  if (options.path_aware_propagation) {
    for (const Path& path : schema.projection_paths()) {
      const std::vector<const JoinEdge*>& joins = path.joins();
      for (size_t i = 0; i < joins.size(); ++i) {
        feeders[joins[i]].insert(i == 0 ? nullptr : joins[i - 1]);
      }
    }
  }

  // --- Step 2: weight-ordered edge schedule with postponement -------------
  std::map<RelationNodeId, int> pending;
  for (RelationNodeId rel : schema.relations()) {
    pending[rel] = schema.in_degree(rel);
  }
  std::unordered_set<const JoinEdge*> executed;

  while (!plan_stopped() && executed.size() < schema.join_edges().size()) {
    const JoinEdge* next = nullptr;
    bool next_applicable = false;
    for (const JoinEdge* e : schema.join_edges()) {
      if (executed.count(e) > 0) continue;
      bool applicable = pending[e->from] == 0;
      bool better;
      if (next == nullptr) {
        better = true;
      } else if (applicable != next_applicable) {
        better = applicable;
      } else {
        better = e->weight > next->weight;
      }
      if (better) {
        next = e;
        next_applicable = applicable;
      }
    }
    const JoinEdge& edge = *next;
    const Relation& to_relation = *source_relations[edge.to];
    const RelationSchema& from_schema = graph.relation_schema(edge.from);
    const RelationSchema& to_schema = graph.relation_schema(edge.to);

    const std::set<const JoinEdge*>* allowed = nullptr;
    if (options.path_aware_propagation) {
      allowed = &feeders[&edge];
    }
    auto keys = PlanJoinKeys(planned[edge.from], from_schema,
                             edge.from_attribute, allowed);
    if (!keys.ok()) return keys.status();

    SubsetStrategy strategy = options.strategy;
    if (strategy == SubsetStrategy::kAuto) {
      strategy = IsToOne(edge, to_schema) ? SubsetStrategy::kNaiveQ
                                          : SubsetStrategy::kRoundRobin;
    }

    PlannedRelation& col = planned[edge.to];

    if (options.trace_sql) {
      std::vector<size_t> display = EmittedAttributeIndices(
          schema, edge.to, options.include_join_attributes);
      if (strategy == SubsetStrategy::kRoundRobin &&
          options.tuple_weights == nullptr) {
        for (const Value& key : *keys) {
          last_report_.sql_trace.push_back(RenderInListSql(
              to_schema, edge.to_attribute, {key}, display, std::nullopt));
        }
      } else {
        std::optional<size_t> limit;
        std::optional<size_t> b = c.Budget(col.accepted.size(), total);
        if (strategy == SubsetStrategy::kNaiveQ &&
            options.tuple_weights == nullptr && b.has_value()) {
          limit = b;
        }
        last_report_.sql_trace.push_back(RenderInListSql(
            to_schema, edge.to_attribute, *keys, display, limit));
      }
    }

    // Mirror of the sequential try_add, on tids: duplicates gain the
    // arrival tag without consuming budget; the stop and budget checks sit
    // at exactly the sequential points.
    auto plan_try_add = [&](Tid tid) -> bool {
      if (col.seen.count(tid) > 0) {
        col.Tag(tid, &edge);
        return true;
      }
      if (plan_stopped()) {
        mark_truncated(edge.to);
        return false;
      }
      std::optional<size_t> b = c.Budget(col.accepted.size(), total);
      if (b.has_value() && *b == 0) {
        mark_truncated(edge.to);
        return false;
      }
      accept(col, tid, &edge);
      return true;
    };

    if (options.tuple_weights != nullptr) {
      // Ranked selection: collect candidates, order by weight, fetch up to
      // the budget. The sequential path Gets every ordered candidate
      // (charging a fetch) before its try_add, so sim charges do too.
      const std::string& to_name = graph.relation_name(edge.to);
      to_relation.CountStatement(ctx);
      SimulateStatementOverhead(options.statement_overhead_ns);
      ArenaVector<Tid> candidates{ArenaAllocator<Tid>(arena)};
      std::unordered_set<Tid> candidate_seen;
      for (const Value& key : *keys) {
        if (plan_stopped()) break;
        auto tids = [&]() -> Result<std::vector<Tid>> {
          if (!faults) return to_relation.LookupEquals(edge.to_attribute, key, ctx);
          uint64_t r = 0;
          auto t = FaultyLookup(to_relation, edge.to_attribute, key, ctx, &r);
          if (r > 0) degradation_for(edge.to).retries += r;
          return t;
        }();
        if (!tids.ok()) {
          if (tids.status().IsUnavailable()) {
            ++degradation_for(edge.to).failed_lookups;
            continue;
          }
          return tids.status();
        }
        sim_charges += 1;  // the probe (or fallback scan)
        for (Tid tid : *tids) {
          if (col.seen.count(tid) > 0) continue;
          if (candidate_seen.insert(tid).second) candidates.push_back(tid);
        }
      }
      std::stable_sort(candidates.begin(), candidates.end(),
                       [&](Tid a, Tid b) {
                         return options.tuple_weights->Weight(to_name, a) >
                                options.tuple_weights->Weight(to_name, b);
                       });
      for (Tid tid : candidates) {
        if (!sim_fetch_check(edge.to)) continue;
        sim_charges += 1;  // the sequential candidate Get
        if (!plan_try_add(tid)) break;
      }
    } else if (strategy == SubsetStrategy::kNaiveQ) {
      // One IN-list query, kept up to the budget in retrieval order. The
      // sequential path has no per-key stop check here (stops surface via
      // try_add), and Gets duplicates before skipping them: mirrored.
      to_relation.CountStatement(ctx);
      SimulateStatementOverhead(options.statement_overhead_ns);
      bool budget_open = true;
      for (const Value& key : *keys) {
        if (!budget_open) break;
        auto tids = [&]() -> Result<std::vector<Tid>> {
          if (!faults) return to_relation.LookupEquals(edge.to_attribute, key, ctx);
          uint64_t r = 0;
          auto t = FaultyLookup(to_relation, edge.to_attribute, key, ctx, &r);
          if (r > 0) degradation_for(edge.to).retries += r;
          return t;
        }();
        if (!tids.ok()) {
          if (tids.status().IsUnavailable()) {
            ++degradation_for(edge.to).failed_lookups;
            continue;
          }
          return tids.status();
        }
        sim_charges += 1;  // the probe (or fallback scan)
        for (Tid tid : *tids) {
          // The sequential path fault-checks the Get before try_add, for
          // duplicates too; replay that check at the same position.
          if (!sim_fetch_check(edge.to)) continue;
          sim_charges += 1;  // the sequential Get, duplicates included
          if (!plan_try_add(tid)) {
            budget_open = false;
            break;
          }
        }
      }
    } else {
      // RoundRobin: one scan per key (PerValueScanSet::Open parity: scans
      // opened after a stop are empty and uncharged), then one tuple per
      // open scan per round — rounds stay per-edge, exactly sequential.
      std::vector<std::vector<Tid>> scans;
      scans.reserve(keys->size());
      // Mirror of PerValueScanSet's internal degradation counters: applied
      // to the report once after the edge drains, exactly where the
      // sequential path folds scans->retries()/failed_opens()/
      // dropped_fetches() in.
      uint64_t rr_retries = 0;
      uint64_t rr_failed = 0;
      uint64_t rr_dropped = 0;
      for (const Value& key : *keys) {
        if (plan_stopped()) {
          scans.emplace_back();
          continue;
        }
        to_relation.CountStatement(ctx);  // one cursor per probe value
        auto tids = faults ? FaultyLookup(to_relation, edge.to_attribute, key,
                                          ctx, &rr_retries)
                           : to_relation.LookupEquals(edge.to_attribute, key,
                                                      ctx);
        if (!tids.ok()) {
          if (tids.status().IsUnavailable()) {
            // PerValueScanSet::Open parity: the key's scan opens drained.
            ++rr_failed;
            scans.emplace_back();
            continue;
          }
          return tids.status();
        }
        sim_charges += 1;  // the probe (or fallback scan)
        scans.push_back(std::move(*tids));
      }
      SimulateStatementOverhead(options.statement_overhead_ns *
                                static_cast<uint64_t>(keys->size()));
      std::vector<size_t> positions(scans.size(), 0);
      auto all_closed = [&] {
        for (size_t i = 0; i < scans.size(); ++i) {
          if (positions[i] < scans[i].size()) return false;
        }
        return true;
      };
      bool budget_open = true;
      while (budget_open && !all_closed()) {
        for (size_t i = 0; i < scans.size(); ++i) {
          if (positions[i] >= scans[i].size()) continue;
          Tid tid = scans[i][positions[i]++];
          if (faults) {
            // Replay of PerValueScanSet::Next's retried Get; a drop skips
            // this tuple (Next returned nullopt) but keeps the scan open.
            Status fs = CheckFaultWithRetry(ctx, FaultSite::kTupleFetch,
                                            ctx->retry_policy(), &rr_retries);
            if (!fs.ok()) {
              ++rr_dropped;
              continue;
            }
          }
          sim_charges += 1;  // PerValueScanSet::Next's Get
          if (!plan_try_add(tid)) {
            budget_open = false;
            break;
          }
        }
      }
      if (faults && (rr_retries > 0 || rr_failed > 0 || rr_dropped > 0)) {
        RelationDegradation& deg = degradation_for(edge.to);
        deg.retries += rr_retries;
        deg.failed_lookups += rr_failed;
        deg.dropped_tuples += rr_dropped;
      }
    }

    --pending[edge.to];
    executed.insert(&edge);
    last_report_.executed_edges.push_back(graph.relation_name(edge.from) +
                                          " -> " +
                                          graph.relation_name(edge.to));
  }

  // --- Merge barrier: flush residual chunks, drain materialization --------
  for (auto& [rel, p] : planned) {
    spawn_chunks(p, /*flush=*/true);
  }
  group.Wait();

  // --- Step 3: emit (per-relation fan-out, deterministic content) ---------
  Database result("precis_result");
  std::vector<RelationNodeId> rel_order(schema.relations().begin(),
                                        schema.relations().end());
  std::vector<Relation*> out_relations(rel_order.size(), nullptr);
  for (size_t i = 0; i < rel_order.size(); ++i) {
    RelationNodeId rel = rel_order[i];
    const RelationSchema& src_schema = graph.relation_schema(rel);
    const PlannedRelation& p = planned[rel];

    std::vector<AttributeSchema> out_attrs;
    out_attrs.reserve(p.emitted.size());
    for (size_t idx : p.emitted) out_attrs.push_back(src_schema.attribute(idx));
    RelationSchema out_schema(src_schema.name(), std::move(out_attrs));
    if (src_schema.primary_key()) {
      const std::string& pk_name =
          src_schema.attribute(*src_schema.primary_key()).name;
      if (out_schema.HasAttribute(pk_name)) {
        PRECIS_RETURN_NOT_OK(out_schema.SetPrimaryKey(pk_name));
      }
    }
    PRECIS_RETURN_NOT_OK(result.CreateRelation(std::move(out_schema)));
    auto out_relation = result.GetRelation(src_schema.name());
    if (!out_relation.ok()) return out_relation.status();
    out_relations[i] = *out_relation;
  }

  // Chunk buffers concatenate in acceptance order == sequential collection
  // order, so per-relation inserts reproduce the sequential tid sequence.
  // Relations are disjoint insert targets (the database epoch is atomic),
  // so one task per relation is race-free.
  std::vector<Status> insert_status(rel_order.size(), Status::OK());
  for (size_t i = 0; i < rel_order.size(); ++i) {
    PlannedRelation* p = &planned[rel_order[i]];
    Relation* out = out_relations[i];
    Status* slot = &insert_status[i];
    group.Run([p, out, slot] {
      for (const MaterializedChunk* chunk : p->chunks) {
        for (size_t r = 0; r < chunk->count; ++r) {
          const Value* row = chunk->cells + r * chunk->width;
          auto tid = out->Insert(Tuple(row, row + chunk->width));
          if (!tid.ok()) {
            *slot = tid.status();
            return;
          }
        }
      }
    });
  }
  group.Wait();
  for (const Status& s : insert_status) {
    PRECIS_RETURN_NOT_OK(s);
  }

  // --- Step 4: foreign-key carry-over (per-FK fan-out) --------------------
  struct FkCheck {
    const ForeignKey* fk;
    bool holds = false;
  };
  std::vector<FkCheck> checks;
  for (const ForeignKey& fk : source_->foreign_keys()) {
    if (!result.HasRelation(fk.child_relation) ||
        !result.HasRelation(fk.parent_relation)) {
      continue;
    }
    auto child = result.GetRelation(fk.child_relation);
    auto parent = result.GetRelation(fk.parent_relation);
    if (!(*child)->schema().HasAttribute(fk.child_attribute) ||
        !(*parent)->schema().HasAttribute(fk.parent_attribute)) {
      continue;
    }
    checks.push_back(FkCheck{&fk});
  }
  for (FkCheck& check : checks) {  // `checks` is fully built: stable refs
    FkCheck* slot = &check;
    const Database* res = &result;
    group.Run([res, slot] { slot->holds = ForeignKeyHolds(*res, *slot->fk); });
  }
  group.Wait();
  for (const FkCheck& check : checks) {
    if (check.holds) {
      PRECIS_RETURN_NOT_OK(result.AddForeignKey(*check.fk));
    } else {
      last_report_.dropped_foreign_keys.push_back(check.fk->ToString());
    }
  }

  last_report_.total_tuples = result.TotalTuples();
  if (ctx != nullptr) last_report_.stop_reason = ctx->stop_reason();
  return result;
}

}  // namespace precis
