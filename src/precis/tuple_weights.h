// Weights on data values (paper §7, ongoing work).
//
// "In ongoing work, we are investigating the possibility of having weights
//  on data values as well."
//
// A TupleWeightStore assigns a significance in [0, 1] to individual tuples.
// When the Result Database Generator must truncate a fetch under the
// cardinality constraint, ranked selection keeps the heaviest tuples
// instead of an arbitrary prefix (NaiveQ) or a uniform spread (RoundRobin):
// the précis of a prolific director then shows their *important* movies,
// not whichever ones the heap order surfaced first.

#ifndef PRECIS_PRECIS_TUPLE_WEIGHTS_H_
#define PRECIS_PRECIS_TUPLE_WEIGHTS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/database.h"

namespace precis {

/// \brief Per-tuple weights for the relations of one database.
///
/// Relations without registered weights behave as if every tuple weighed
/// the same (weight 1.0), i.e. ranked selection degenerates to the paper's
/// arbitrary-subset behaviour there.
class TupleWeightStore {
 public:
  /// Registers one weight per tuple of `relation`, indexed by tid. Weights
  /// must lie in [0, 1] and cover the relation exactly.
  Status SetWeights(const Database& db, const std::string& relation,
                    std::vector<double> weights);

  /// Weight of a tuple; 1.0 for unregistered relations or out-of-range
  /// tids.
  double Weight(const std::string& relation, Tid tid) const;

  bool HasWeights(const std::string& relation) const {
    return weights_.count(relation) > 0;
  }

  size_t num_relations() const { return weights_.size(); }

 private:
  std::map<std::string, std::vector<double>> weights_;
};

/// \brief Derives tuple weights for `relation` from a numeric attribute,
/// min-max normalized into [lo, hi] (ties resolved by value; NULLs get lo).
/// The natural choice for the movies dataset is MOVIE.year — newer movies
/// weigh more — or REVIEW.score.
Status WeightsFromNumericAttribute(const Database& db,
                                   const std::string& relation,
                                   const std::string& attribute,
                                   TupleWeightStore* store, double lo = 0.1,
                                   double hi = 1.0);

}  // namespace precis

#endif  // PRECIS_PRECIS_TUPLE_WEIGHTS_H_
