// Degree and cardinality constraints (paper §3.3, Tables 1 and 2).
//
// "In order to describe the result of a query Q, a pair of constraints, one
//  of each category should be provided":
//    - a degree constraint d determines the attributes and relations of the
//      result schema D';
//    - a cardinality constraint c determines the number of tuples in the
//      result database D'.

#ifndef PRECIS_PRECIS_CONSTRAINTS_H_
#define PRECIS_PRECIS_CONSTRAINTS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/path.h"
#include "precis/result_schema.h"

namespace precis {

/// \brief Predicate over the growing result schema G' / ordered set P_d.
///
/// The Result Schema Generator consumes candidate paths in decreasing-weight
/// order and asks, for each, whether d(P_d + {p}) still holds (paper Fig. 3,
/// steps 2.2 and 2.3). Because candidates arrive weight-sorted, a failed
/// check is terminal for the traversal (or prunes the expansion branch).
class DegreeConstraint {
 public:
  virtual ~DegreeConstraint() = default;

  /// True if accepting `candidate` on top of the schema built so far keeps
  /// the constraint satisfied. Join paths are admitted unless the
  /// constraint bounds a property (weight, length, relation count) that
  /// extension cannot recover.
  virtual bool Admits(const ResultSchema& current,
                      const Path& candidate) const = 0;

  virtual std::string ToString() const = 0;
};

/// Table 1, row 1: "t <= r — selects up to r top-weighted projections".
std::unique_ptr<DegreeConstraint> MaxProjections(size_t r);

/// Table 1, row 2: "w_t >= w_o — selects top-weighted projections with
/// weight >= w_o". Applies to join paths too: path weight is monotonically
/// non-increasing under extension, so a join path below the threshold can
/// never produce an admissible projection.
std::unique_ptr<DegreeConstraint> MinPathWeight(double w0);

/// Table 1, row 3: "length(p_t) <= l_o — selects top-weighted projections
/// with path length <= l_o" (length counts all edges, including the
/// terminal projection edge).
std::unique_ptr<DegreeConstraint> MaxPathLength(size_t l0);

/// §3.3 also bounds the result schema's breadth directly ("the number of
/// relations required in D'"): admits a path only while the relations of
/// G' plus the path's relations stay within r. A join path that would
/// already exceed r is pruned — none of its extensions can shrink it.
std::unique_ptr<DegreeConstraint> MaxRelations(size_t r);

/// Conjunction of degree constraints (all must admit).
std::unique_ptr<DegreeConstraint> AllOf(
    std::vector<std::unique_ptr<DegreeConstraint>> parts);

/// \brief Bounds the number of tuples in the result database.
///
/// The Result Database Generator asks, before fetching into a relation, how
/// many more tuples it may add given the relation's current tuple count and
/// the running total ("budget"). std::nullopt means unbounded.
class CardinalityConstraint {
 public:
  virtual ~CardinalityConstraint() = default;

  /// Remaining tuple budget for a relation currently holding
  /// `relation_count` tuples while the whole result holds `total_count`.
  virtual std::optional<size_t> Budget(size_t relation_count,
                                       size_t total_count) const = 0;

  virtual std::string ToString() const = 0;
};

/// Table 2, row 1: "card(D_t) <= c_o — max. total number of tuples in D'".
std::unique_ptr<CardinalityConstraint> MaxTotalTuples(size_t c0);

/// Table 2, row 2: "card(R_t) <= c_o — max. number of tuples per relation".
std::unique_ptr<CardinalityConstraint> MaxTuplesPerRelation(size_t c0);

/// Unbounded cardinality (useful for the test-database use case with the
/// degree constraint doing the shaping).
std::unique_ptr<CardinalityConstraint> UnlimitedCardinality();

/// Conjunction of cardinality constraints ("a combination of those is also
/// possible"): the effective budget is the minimum of the parts' budgets.
std::unique_ptr<CardinalityConstraint> AllOf(
    std::vector<std::unique_ptr<CardinalityConstraint>> parts);

}  // namespace precis

#endif  // PRECIS_PRECIS_CONSTRAINTS_H_
