// Typed values for the in-memory relational engine.

#ifndef PRECIS_STORAGE_VALUE_H_
#define PRECIS_STORAGE_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

namespace precis {

/// \brief Column data types supported by the engine.
///
/// The paper's movie schema only needs integers (ids, years) and strings
/// (names, titles, dates-as-text); doubles are included for generality.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

/// \brief Returns "INT64" / "DOUBLE" / "STRING".
const char* DataTypeToString(DataType t);

/// \brief A single attribute value: NULL, int64, double, or string.
///
/// Values order and hash across their own type only; comparing values of
/// different types orders by type index (NULL sorts first). This gives the
/// hash indexes and duplicate elimination well-defined total behaviour.
class Value {
 public:
  /// NULL value.
  Value() : v_(std::monostate{}) {}
  Value(int64_t v) : v_(v) {}         // NOLINT(google-explicit-constructor)
  Value(double v) : v_(v) {}          // NOLINT(google-explicit-constructor)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  /// Accessors; undefined behaviour on type mismatch (assert in debug).
  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// True if this value's dynamic type matches the declared column type.
  /// NULL is compatible with every type.
  bool TypeMatches(DataType t) const;

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return v_ != other.v_; }
  bool operator<(const Value& other) const { return v_ < other.v_; }

  /// Rendering used by examples and the translator ("1935", "Woody Allen").
  std::string ToString() const;

  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

/// Hash functor for use in unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace precis

#endif  // PRECIS_STORAGE_VALUE_H_
