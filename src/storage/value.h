// Typed values for the in-memory relational engine.

#ifndef PRECIS_STORAGE_VALUE_H_
#define PRECIS_STORAGE_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

#include "common/symbol_table.h"

namespace precis {

/// \brief Column data types supported by the engine.
///
/// The paper's movie schema only needs integers (ids, years) and strings
/// (names, titles, dates-as-text); doubles are included for generality.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

/// \brief Returns "INT64" / "DOUBLE" / "STRING".
const char* DataTypeToString(DataType t);

/// \brief An interned string reference (DESIGN.md §13). Two Symbols are
/// equal iff their bytes are equal, because all ids come from the one
/// global SymbolTable.
struct Symbol {
  SymbolId id = 0;

  const std::string& str() const { return SymbolTable::Global()->str(id); }
  size_t hash() const { return SymbolTable::Global()->hash(id); }

  bool operator==(const Symbol& o) const { return id == o.id; }
  bool operator!=(const Symbol& o) const { return id != o.id; }
};

/// \brief A single attribute value: NULL, int64, double, or string.
///
/// Values order and hash across their own type only; comparing values of
/// different types orders by type index (NULL sorts first). This gives the
/// hash indexes and duplicate elimination well-defined total behaviour.
///
/// Strings are stored interned (a 4-byte Symbol into the global
/// SymbolTable), which makes every Value 16 bytes, trivially copyable and
/// trivially destructible: tuples can be memcpy'd into arena buffers and
/// freed wholesale, and string equality inside indexes is one integer
/// compare. Ordering and hashing of string values remain byte-based
/// (lexicographic compare, memoized std::hash of the bytes), so observable
/// behaviour is unchanged from the heap-string representation.
class Value {
 public:
  /// NULL value.
  Value() : v_(std::monostate{}) {}
  Value(int64_t v) : v_(v) {}         // NOLINT(google-explicit-constructor)
  Value(double v) : v_(v) {}          // NOLINT(google-explicit-constructor)
  Value(const std::string& v)         // NOLINT(google-explicit-constructor)
      : v_(Symbol{SymbolTable::Global()->Intern(v)}) {}
  Value(std::string_view v)           // NOLINT(google-explicit-constructor)
      : v_(Symbol{SymbolTable::Global()->Intern(v)}) {}
  Value(const char* v)                // NOLINT(google-explicit-constructor)
      : v_(Symbol{SymbolTable::Global()->Intern(v)}) {}

  static Value Null() { return Value(); }
  static Value FromSymbol(Symbol s) {
    Value v;
    v.v_ = s;
    return v;
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<Symbol>(v_); }

  /// Accessors; undefined behaviour on type mismatch (assert in debug).
  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<Symbol>(v_).str(); }
  Symbol symbol() const { return std::get<Symbol>(v_); }

  /// True if this value's dynamic type matches the declared column type.
  /// NULL is compatible with every type.
  bool TypeMatches(DataType t) const;

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return v_ != other.v_; }
  bool operator<(const Value& other) const {
    // Variant ordering (alternative index first), except strings compare
    // by their bytes, not their intern ids — id order reflects intern
    // order, which must never leak into query output.
    if (v_.index() != other.v_.index()) return v_.index() < other.v_.index();
    switch (v_.index()) {
      case 1:
        return std::get<int64_t>(v_) < std::get<int64_t>(other.v_);
      case 2:
        return std::get<double>(v_) < std::get<double>(other.v_);
      case 3:
        return std::get<Symbol>(v_) != std::get<Symbol>(other.v_) &&
               std::get<Symbol>(v_).str() < std::get<Symbol>(other.v_).str();
      default:
        return false;  // both NULL
    }
  }

  /// Rendering used by examples and the translator ("1935", "Woody Allen").
  std::string ToString() const;

  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, Symbol> v_;
};

static_assert(std::is_trivially_copyable_v<Value> &&
                  std::is_trivially_destructible_v<Value>,
              "Value must stay memcpy-able for arena chunk buffers");

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

/// Hash functor for use in unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace precis

#endif  // PRECIS_STORAGE_VALUE_H_
