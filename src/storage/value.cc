#include "storage/value.h"

#include <cmath>
#include <sstream>

namespace precis {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

bool Value::TypeMatches(DataType t) const {
  if (is_null()) return true;
  switch (t) {
    case DataType::kInt64:
      return is_int64();
    case DataType::kDouble:
      return is_double();
    case DataType::kString:
      return is_string();
  }
  return false;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(AsInt64());
  if (is_double()) {
    std::ostringstream os;
    os << AsDouble();
    return os.str();
  }
  return AsString();
}

size_t Value::Hash() const {
  // Mix the alternative index with the per-type hash so that e.g. the int64 0
  // and the double 0.0 land in distinct buckets deterministically.
  size_t seed = v_.index() * 0x9e3779b97f4a7c15ULL;
  size_t h = 0;
  if (is_int64()) {
    h = std::hash<int64_t>{}(AsInt64());
  } else if (is_double()) {
    h = std::hash<double>{}(AsDouble());
  } else if (is_string()) {
    // Memoized at intern time; identical to std::hash<std::string> of the
    // bytes, so bucket placement matches the pre-interning representation.
    h = std::get<Symbol>(v_).hash();
  }
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace precis
