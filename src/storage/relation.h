// Relation: a rowid-stable in-memory heap of tuples plus hash indexes.

#ifndef PRECIS_STORAGE_RELATION_H_
#define PRECIS_STORAGE_RELATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/execution_context.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/access_stats.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace precis {

/// Tuple identifier: the position of a tuple in its relation's heap.
/// Tids are stable — the engine is append-only (the précis workload never
/// deletes from the source database; result databases are built fresh).
using Tid = uint64_t;

/// \brief A tuple is a vector of values, positionally aligned with the
/// relation schema's attributes.
using Tuple = std::vector<Value>;

/// \brief Equality-lookup index from attribute value to the tids holding it.
class HashIndex {
 public:
  void Insert(const Value& key, Tid tid) { buckets_[key].push_back(tid); }

  /// Tids whose indexed attribute equals `key` (empty if none).
  const std::vector<Tid>& Lookup(const Value& key) const;

  size_t num_keys() const { return buckets_.size(); }

 private:
  std::unordered_map<Value, std::vector<Tid>, ValueHash> buckets_;
  static const std::vector<Tid> kEmpty;
};

/// \brief A populated relation: schema + heap + indexes.
///
/// All reads that the précis generators perform are instrumented through the
/// AccessStats of the owning Database (see access_stats.h). Instrumented
/// entry points additionally take an optional per-query ExecutionContext:
/// when one is passed, the same counts are attributed to it (and charged
/// against its access budget), so concurrent queries sharing one Database
/// can each be accounted individually while the global counters keep the
/// cross-query totals.
class Relation {
 public:
  explicit Relation(RelationSchema schema, AccessStats* stats = nullptr)
      : schema_(std::move(schema)), stats_(stats) {}

  const RelationSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }
  size_t num_tuples() const { return heap_.size(); }

  /// Appends a tuple; validates arity and types, enforces primary-key
  /// uniqueness if a key is declared, and maintains all indexes.
  /// Returns the new tuple's tid.
  Result<Tid> Insert(Tuple tuple);

  /// Fetches a tuple by rowid (counted as one tuple fetch, attributed to
  /// `ctx` when given).
  Result<const Tuple*> Get(Tid tid, ExecutionContext* ctx = nullptr) const;

  /// Unchecked positional access for iteration in tests/tools; does not
  /// count as an instrumented fetch.
  const Tuple& tuple(Tid tid) const { return heap_[tid]; }

  /// Charged fetch of a tid the caller already validated — no bounds check
  /// and, critically, no fault-injection check. The parallel generator's
  /// chunk tasks fetch through this so fault decisions stay on the
  /// deterministic sequential control path (the planner replays them; see
  /// parallel_dbgen.cc and DESIGN.md §12).
  const Tuple* FetchPrevalidated(Tid tid, ExecutionContext* ctx) const;

  /// Builds (or rebuilds) a hash index on the named attribute.
  Status CreateIndex(const std::string& attribute_name);

  /// True if an index exists on the attribute.
  bool HasIndex(const std::string& attribute_name) const;

  /// Names of all indexed attributes, in attribute order.
  std::vector<std::string> IndexedAttributes() const;

  /// Tids whose `attribute_name` equals `key`. Uses the index when present
  /// (one index probe); otherwise falls back to a sequential scan (counted,
  /// attributed to `ctx` when given).
  Result<std::vector<Tid>> LookupEquals(const std::string& attribute_name,
                                        const Value& key,
                                        ExecutionContext* ctx = nullptr) const;

  /// All tids, in heap order.
  std::vector<Tid> AllTids() const;

  /// Distinct values of the attribute (used by the data generator and tests).
  Result<std::vector<Value>> DistinctValues(
      const std::string& attribute_name) const;

  /// Records one submitted statement against this relation (see
  /// AccessStats::statements). Called by the query layer, not by storage
  /// primitives.
  void CountStatement(ExecutionContext* ctx = nullptr) const {
    if (stats_ != nullptr) {
      stats_->statements.fetch_add(1, std::memory_order_relaxed);
    }
    if (ctx != nullptr) ctx->ChargeStatement();
  }

  void set_stats(AccessStats* stats) { stats_ = stats; }

  /// Installs the owning database's mutation-epoch counter; Insert and
  /// CreateIndex bump it so answer caches keyed on the epoch invalidate
  /// (Database wires this in CreateRelation; standalone relations have
  /// none). nullptr detaches.
  void set_epoch_counter(std::atomic<uint64_t>* epoch) { epoch_ = epoch; }

 private:
  void BumpEpoch() const {
    if (epoch_ != nullptr) epoch_->fetch_add(1, std::memory_order_relaxed);
  }

  void CountIndexProbe(ExecutionContext* ctx) const {
    if (stats_ != nullptr) {
      stats_->index_probes.fetch_add(1, std::memory_order_relaxed);
    }
    if (ctx != nullptr) ctx->ChargeIndexProbe();
  }
  void CountTupleFetch(ExecutionContext* ctx) const {
    if (stats_ != nullptr) {
      stats_->tuple_fetches.fetch_add(1, std::memory_order_relaxed);
    }
    if (ctx != nullptr) ctx->ChargeTupleFetch();
  }
  void CountSequentialScan(ExecutionContext* ctx) const {
    if (stats_ != nullptr) {
      stats_->sequential_scans.fetch_add(1, std::memory_order_relaxed);
    }
    if (ctx != nullptr) ctx->ChargeSequentialScan();
  }

  /// The index on attribute position `pos`, or null. Flat vector keyed by
  /// position instead of a map: the index probe (LookupEquals →
  /// CountIndexProbe) is the hottest storage call in the generators, and a
  /// positional load replaces an rb-tree walk per probe. Sized lazily by
  /// CreateIndex; an empty vector means no indexes.
  const HashIndex* IndexAt(size_t pos) const {
    return pos < indexes_.size() ? indexes_[pos].get() : nullptr;
  }

  RelationSchema schema_;
  std::vector<Tuple> heap_;
  std::vector<std::unique_ptr<HashIndex>> indexes_;
  /// Every primary-key value in the heap, for O(1) uniqueness checks on
  /// Insert even when no index exists on the key attribute (the emit phase
  /// of result-database generation inserts into fresh unindexed relations;
  /// the old fallback was a full heap scan per insert — O(n^2) total).
  std::unordered_set<Value, ValueHash> pk_values_;
  AccessStats* stats_;
  // Owning database's mutation epoch (see Database::epoch()); may be null.
  std::atomic<uint64_t>* epoch_ = nullptr;
};

}  // namespace precis

#endif  // PRECIS_STORAGE_RELATION_H_
