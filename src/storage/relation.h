// Relation: a rowid-stable in-memory heap of tuples plus hash indexes.

#ifndef PRECIS_STORAGE_RELATION_H_
#define PRECIS_STORAGE_RELATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/execution_context.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/access_stats.h"
#include "storage/columnar.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace precis {

/// Tuple identifier: the position of a tuple in its relation's heap.
/// Tids are stable — the engine is append-only (the précis workload never
/// deletes from the source database; result databases are built fresh).
using Tid = uint64_t;

/// \brief A tuple is a vector of values, positionally aligned with the
/// relation schema's attributes.
using Tuple = std::vector<Value>;

/// \brief A populated relation: schema + heap + indexes.
///
/// Storage is dual-layout (DESIGN.md §13): the row heap remains the
/// authoritative store behind the pointer-returning Get/FetchPrevalidated
/// API, while per-attribute Columns mirror it and serve the bulk kernels
/// (ProjectRows, column scans) and the open-addressing equality indexes.
/// Insert appends to both, so the mirrors can never diverge.
///
/// All reads that the précis generators perform are instrumented through the
/// AccessStats of the owning Database (see access_stats.h). Instrumented
/// entry points additionally take an optional per-query ExecutionContext:
/// when one is passed, the same counts are attributed to it (and charged
/// against its access budget), so concurrent queries sharing one Database
/// can each be accounted individually while the global counters keep the
/// cross-query totals.
class Relation {
 public:
  explicit Relation(RelationSchema schema, AccessStats* stats = nullptr)
      : schema_(std::move(schema)), stats_(stats) {
    columns_.reserve(schema_.num_attributes());
    for (size_t a = 0; a < schema_.num_attributes(); ++a) {
      columns_.emplace_back(schema_.attribute(a).type);
    }
  }

  const RelationSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }
  size_t num_tuples() const { return heap_.size(); }

  /// Appends a tuple; validates arity and types, enforces primary-key
  /// uniqueness if a key is declared, and maintains all indexes.
  /// Returns the new tuple's tid.
  Result<Tid> Insert(Tuple tuple);

  /// Fetches a tuple by rowid (counted as one tuple fetch, attributed to
  /// `ctx` when given).
  Result<const Tuple*> Get(Tid tid, ExecutionContext* ctx = nullptr) const;

  /// Unchecked positional access for iteration in tests/tools; does not
  /// count as an instrumented fetch.
  const Tuple& tuple(Tid tid) const { return heap_[tid]; }

  /// Uncharged single-attribute read off the columnar mirror; the planner
  /// uses this to extract join values without materializing the row.
  Value ColumnValue(Tid tid, size_t attribute) const {
    return columns_[attribute].GetValue(tid);
  }

  /// The columnar mirror of attribute `pos` (for kernels and benchmarks).
  const Column& column(size_t pos) const { return columns_[pos]; }

  /// Charged fetch of a tid the caller already validated — no bounds check
  /// and, critically, no fault-injection check. The parallel generator's
  /// chunk tasks fetch through this so fault decisions stay on the
  /// deterministic sequential control path (the planner replays them; see
  /// parallel_dbgen.cc and DESIGN.md §12).
  const Tuple* FetchPrevalidated(Tid tid, ExecutionContext* ctx) const;

  /// Bulk prevalidated fetch+project off the columnar mirror: fills
  /// `out[i * width + j]` with attribute `projection[j]` of tuple
  /// `tids[i]`, where `width = projection.size()`, iterating column-major
  /// so each attribute is one contiguous pass over its column. Charges
  /// `n` tuple fetches (identical totals to n FetchPrevalidated calls; no
  /// bounds or fault checks, same contract). `out` may be raw arena
  /// memory — cells are placement-new'd (Value is trivially destructible).
  void ProjectRows(const Tid* tids, size_t n,
                   const std::vector<size_t>& projection, Value* out,
                   ExecutionContext* ctx = nullptr) const;

  /// Identity-projection variant of ProjectRows: all attributes in schema
  /// order, `width = schema().num_attributes()`.
  void ProjectRowsAll(const Tid* tids, size_t n, Value* out,
                      ExecutionContext* ctx = nullptr) const;

  /// Builds (or rebuilds) a hash index on the named attribute.
  Status CreateIndex(const std::string& attribute_name);

  /// True if an index exists on the attribute.
  bool HasIndex(const std::string& attribute_name) const;

  /// Names of all indexed attributes, in attribute order.
  std::vector<std::string> IndexedAttributes() const;

  /// Tids whose `attribute_name` equals `key`. Uses the index when present
  /// (one index probe); otherwise falls back to a sequential scan (counted,
  /// attributed to `ctx` when given).
  Result<std::vector<Tid>> LookupEquals(const std::string& attribute_name,
                                        const Value& key,
                                        ExecutionContext* ctx = nullptr) const;

  /// Pure memory hint for an upcoming LookupEquals(attribute_name, key):
  /// prefetches the hash-index slot the probe will touch (no-op without an
  /// index). No charges, no faults, no stats — issuing it speculatively
  /// ahead of a budgeted probe loop changes no observable behavior.
  void PrefetchEquals(const std::string& attribute_name,
                      const Value& key) const;

  /// All tids, in heap order.
  std::vector<Tid> AllTids() const;

  /// Distinct values of the attribute (used by the data generator and tests).
  Result<std::vector<Value>> DistinctValues(
      const std::string& attribute_name) const;

  /// Records one submitted statement against this relation (see
  /// AccessStats::statements). Called by the query layer, not by storage
  /// primitives.
  void CountStatement(ExecutionContext* ctx = nullptr) const {
    if (stats_ != nullptr) {
      stats_->statements.fetch_add(1, std::memory_order_relaxed);
    }
    if (ctx != nullptr) ctx->ChargeStatement();
  }

  void set_stats(AccessStats* stats) { stats_ = stats; }

  /// Installs the owning database's mutation-epoch counter; Insert and
  /// CreateIndex bump it so answer caches keyed on the epoch invalidate
  /// (Database wires this in CreateRelation; standalone relations have
  /// none). nullptr detaches.
  void set_epoch_counter(std::atomic<uint64_t>* epoch) { epoch_ = epoch; }

 private:
  void BumpEpoch() const {
    if (epoch_ != nullptr) epoch_->fetch_add(1, std::memory_order_relaxed);
  }

  void CountIndexProbe(ExecutionContext* ctx) const {
    if (stats_ != nullptr) {
      stats_->index_probes.fetch_add(1, std::memory_order_relaxed);
    }
    if (ctx != nullptr) ctx->ChargeIndexProbe();
  }
  void CountTupleFetch(ExecutionContext* ctx) const {
    if (stats_ != nullptr) {
      stats_->tuple_fetches.fetch_add(1, std::memory_order_relaxed);
    }
    if (ctx != nullptr) ctx->ChargeTupleFetch();
  }
  /// Bulk form: every Charge* is a plain relaxed fetch_add with no other
  /// side effect, so adding n at once is indistinguishable from n single
  /// charges.
  void CountTupleFetches(size_t n, ExecutionContext* ctx) const {
    if (stats_ != nullptr) {
      stats_->tuple_fetches.fetch_add(n, std::memory_order_relaxed);
    }
    if (ctx != nullptr) ctx->ChargeTupleFetches(n);
  }
  void CountSequentialScan(ExecutionContext* ctx) const {
    if (stats_ != nullptr) {
      stats_->sequential_scans.fetch_add(1, std::memory_order_relaxed);
    }
    if (ctx != nullptr) ctx->ChargeSequentialScan();
  }

  /// The index on attribute position `pos`, or null. Flat vector keyed by
  /// position instead of a map: the index probe (LookupEquals →
  /// CountIndexProbe) is the hottest storage call in the generators, and a
  /// positional load replaces an rb-tree walk per probe. Sized lazily by
  /// CreateIndex; an empty vector means no indexes.
  const ColumnIndex* IndexAt(size_t pos) const {
    return pos < indexes_.size() ? indexes_[pos].get() : nullptr;
  }

  RelationSchema schema_;
  std::vector<Tuple> heap_;
  std::vector<Column> columns_;  // SoA mirror of heap_, per attribute
  std::vector<std::unique_ptr<ColumnIndex>> indexes_;
  /// Every primary-key value in the heap, for O(1) uniqueness checks on
  /// Insert even when no index exists on the key attribute (the emit phase
  /// of result-database generation inserts into fresh unindexed relations;
  /// the old fallback was a full heap scan per insert — O(n^2) total).
  std::unordered_set<Value, ValueHash> pk_values_;
  AccessStats* stats_;
  // Owning database's mutation epoch (see Database::epoch()); may be null.
  std::atomic<uint64_t>* epoch_ = nullptr;
};

}  // namespace precis

#endif  // PRECIS_STORAGE_RELATION_H_
