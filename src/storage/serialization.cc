#include "storage/serialization.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"

namespace precis {

namespace {

constexpr char kMagic[] = "PRECISDB";
constexpr int kVersion = 1;
constexpr char kNullToken[] = "\\N";

std::string FieldOf(const Value& v) {
  if (v.is_null()) return kNullToken;
  if (v.is_double()) {
    // Value::ToString() uses display precision; round-tripping needs full
    // precision.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
    return buf;
  }
  return EscapeTsvField(v.ToString());
}

Result<Value> ValueFromField(const std::string& field, DataType type) {
  if (field == kNullToken) return Value::Null();
  auto raw = UnescapeTsvField(field);
  if (!raw.ok()) return raw.status();
  switch (type) {
    case DataType::kInt64: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(raw->c_str(), &end, 10);
      if (errno != 0 || end == raw->c_str() || *end != '\0') {
        return Status::InvalidArgument("bad INT64 literal '" + *raw + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case DataType::kDouble: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(raw->c_str(), &end);
      if (errno != 0 || end == raw->c_str() || *end != '\0') {
        return Status::InvalidArgument("bad DOUBLE literal '" + *raw + "'");
      }
      return Value(v);
    }
    case DataType::kString:
      return Value(std::move(*raw));
  }
  return Status::Internal("unhandled data type");
}

/// Non-throwing unsigned count parser (std::stoull throws on garbage,
/// which a loader fed untrusted input must not).
Result<size_t> ParseCount(const std::string& s) {
  if (s.empty()) return Status::InvalidArgument("empty count");
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad count '" + s + "'");
  }
  return static_cast<size_t>(v);
}

Result<DataType> DataTypeFromString(const std::string& s) {
  if (s == "INT64") return DataType::kInt64;
  if (s == "DOUBLE") return DataType::kDouble;
  if (s == "STRING") return DataType::kString;
  return Status::InvalidArgument("unknown data type '" + s + "'");
}

/// Reads the next line; false at EOF.
bool NextLine(std::istream* in, std::string* line) {
  return static_cast<bool>(std::getline(*in, *line));
}

}  // namespace

std::string EscapeTsvField(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeTsvField(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    char c = escaped[i];
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (i + 1 >= escaped.size()) {
      return Status::InvalidArgument("dangling escape in TSV field");
    }
    char next = escaped[++i];
    switch (next) {
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case '\\':
        out.push_back('\\');
        break;
      default:
        return Status::InvalidArgument(
            std::string("unknown escape '\\") + next + "' in TSV field");
    }
  }
  return out;
}

Status SaveDatabase(const Database& db, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null output stream");
  *out << kMagic << " " << kVersion << "\n";
  *out << "DATABASE " << EscapeTsvField(db.name()) << "\n";

  for (const std::string& name : db.RelationNames()) {
    auto rel = db.GetRelation(name);
    if (!rel.ok()) return rel.status();
    const RelationSchema& schema = (*rel)->schema();
    *out << "RELATION " << name << " " << schema.num_attributes() << "\n";
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      const AttributeSchema& attr = schema.attribute(i);
      *out << "ATTR " << attr.name << " " << DataTypeToString(attr.type);
      if (schema.primary_key() && *schema.primary_key() == i) *out << " PK";
      *out << "\n";
    }
  }
  for (const std::string& name : db.RelationNames()) {
    auto rel = db.GetRelation(name);
    for (const std::string& attr : (*rel)->IndexedAttributes()) {
      *out << "INDEX " << name << " " << attr << "\n";
    }
  }
  for (const ForeignKey& fk : db.foreign_keys()) {
    *out << "FK " << fk.child_relation << " " << fk.child_attribute << " "
         << fk.parent_relation << " " << fk.parent_attribute << "\n";
  }
  for (const std::string& name : db.RelationNames()) {
    auto rel = db.GetRelation(name);
    *out << "DATA " << name << " " << (*rel)->num_tuples() << "\n";
    for (Tid tid = 0; tid < (*rel)->num_tuples(); ++tid) {
      const Tuple& tuple = (*rel)->tuple(tid);
      for (size_t i = 0; i < tuple.size(); ++i) {
        if (i > 0) *out << '\t';
        *out << FieldOf(tuple[i]);
      }
      *out << "\n";
    }
  }
  if (!out->good()) return Status::Internal("write failure while saving");
  return Status::OK();
}

Status SaveDatabaseToFile(const Database& db, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  return SaveDatabase(db, &out);
}

Result<Database> LoadDatabase(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null input stream");
  std::string line;
  if (!NextLine(in, &line)) {
    return Status::InvalidArgument("empty input");
  }
  {
    std::vector<std::string> header = Split(line, ' ');
    if (header.size() != 2 || header[0] != kMagic) {
      return Status::InvalidArgument("bad header: '" + line + "'");
    }
    if (header[1] != std::to_string(kVersion)) {
      return Status::InvalidArgument("unsupported version '" + header[1] +
                                     "'");
    }
  }
  if (!NextLine(in, &line) || !StartsWith(line, "DATABASE ")) {
    return Status::InvalidArgument("expected DATABASE line");
  }
  auto db_name = UnescapeTsvField(line.substr(9));
  if (!db_name.ok()) return db_name.status();
  Database db(*db_name);

  // Pending relation schema being assembled.
  std::string pending_name;
  size_t pending_attrs = 0;
  std::vector<AttributeSchema> attrs;
  std::string pending_pk;

  auto flush_relation = [&]() -> Status {
    if (pending_name.empty()) return Status::OK();
    if (attrs.size() != pending_attrs) {
      return Status::InvalidArgument(
          "relation '" + pending_name + "' declared " +
          std::to_string(pending_attrs) + " attributes but listed " +
          std::to_string(attrs.size()));
    }
    RelationSchema schema(pending_name, std::move(attrs));
    if (!pending_pk.empty()) {
      PRECIS_RETURN_NOT_OK(schema.SetPrimaryKey(pending_pk));
    }
    PRECIS_RETURN_NOT_OK(db.CreateRelation(std::move(schema)));
    pending_name.clear();
    pending_attrs = 0;
    attrs = {};
    pending_pk.clear();
    return Status::OK();
  };

  while (NextLine(in, &line)) {
    if (line.empty()) continue;
    std::vector<std::string> parts = Split(line, ' ');
    const std::string& kind = parts[0];

    if (kind == "RELATION") {
      PRECIS_RETURN_NOT_OK(flush_relation());
      if (parts.size() != 3) {
        return Status::InvalidArgument("bad RELATION line: " + line);
      }
      pending_name = parts[1];
      auto count = ParseCount(parts[2]);
      if (!count.ok()) return count.status();
      pending_attrs = *count;
    } else if (kind == "ATTR") {
      if (pending_name.empty()) {
        return Status::InvalidArgument("ATTR outside RELATION: " + line);
      }
      if (parts.size() != 3 && !(parts.size() == 4 && parts[3] == "PK")) {
        return Status::InvalidArgument("bad ATTR line: " + line);
      }
      auto type = DataTypeFromString(parts[2]);
      if (!type.ok()) return type.status();
      attrs.push_back(AttributeSchema{parts[1], *type});
      if (parts.size() == 4) pending_pk = parts[1];
    } else if (kind == "INDEX") {
      PRECIS_RETURN_NOT_OK(flush_relation());
      if (parts.size() != 3) {
        return Status::InvalidArgument("bad INDEX line: " + line);
      }
      auto rel = db.GetRelation(parts[1]);
      if (!rel.ok()) return rel.status();
      PRECIS_RETURN_NOT_OK((*rel)->CreateIndex(parts[2]));
    } else if (kind == "FK") {
      PRECIS_RETURN_NOT_OK(flush_relation());
      if (parts.size() != 5) {
        return Status::InvalidArgument("bad FK line: " + line);
      }
      PRECIS_RETURN_NOT_OK(
          db.AddForeignKey({parts[1], parts[2], parts[3], parts[4]}));
    } else if (kind == "DATA") {
      PRECIS_RETURN_NOT_OK(flush_relation());
      if (parts.size() != 3) {
        return Status::InvalidArgument("bad DATA line: " + line);
      }
      auto rel = db.GetRelation(parts[1]);
      if (!rel.ok()) return rel.status();
      const RelationSchema& schema = (*rel)->schema();
      auto count = ParseCount(parts[2]);
      if (!count.ok()) return count.status();
      size_t n = *count;
      for (size_t row = 0; row < n; ++row) {
        if (!NextLine(in, &line)) {
          return Status::InvalidArgument("truncated DATA section for '" +
                                         parts[1] + "'");
        }
        std::vector<std::string> fields = Split(line, '\t');
        if (fields.size() != schema.num_attributes()) {
          return Status::InvalidArgument(
              "row arity mismatch in '" + parts[1] + "': " + line);
        }
        Tuple tuple;
        tuple.reserve(fields.size());
        for (size_t i = 0; i < fields.size(); ++i) {
          auto value = ValueFromField(fields[i], schema.attribute(i).type);
          if (!value.ok()) return value.status();
          tuple.push_back(std::move(*value));
        }
        auto tid = (*rel)->Insert(std::move(tuple));
        if (!tid.ok()) return tid.status();
      }
    } else {
      return Status::InvalidArgument("unknown line kind '" + kind + "'");
    }
  }
  PRECIS_RETURN_NOT_OK(flush_relation());
  return db;
}

Result<Database> LoadDatabaseFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::InvalidArgument("cannot open '" + path + "' for reading");
  }
  return LoadDatabase(&in);
}

}  // namespace precis
