#include "storage/database.h"

#include <sstream>
#include <unordered_set>

namespace precis {

Status Database::CreateRelation(RelationSchema schema) {
  // Copy, not reference: the schema is moved out below and (since C++17)
  // the assignment's right side is sequenced before the map subscript.
  const std::string rel_name = schema.name();
  if (rel_name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (relations_.count(rel_name) > 0) {
    return Status::AlreadyExists("relation '" + rel_name + "' already exists");
  }
  std::unordered_set<std::string> attr_names;
  for (const auto& a : schema.attributes()) {
    if (!attr_names.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute '" + a.name +
                                     "' in relation '" + rel_name + "'");
    }
  }
  relations_[rel_name] =
      std::make_unique<Relation>(std::move(schema), stats_.get());
  relations_[rel_name]->set_epoch_counter(epoch_.get());
  BumpEpoch();
  return Status::OK();
}

Status Database::AddForeignKey(ForeignKey fk) {
  auto child = GetRelation(fk.child_relation);
  if (!child.ok()) return child.status();
  auto parent = GetRelation(fk.parent_relation);
  if (!parent.ok()) return parent.status();
  auto child_idx = (*child)->schema().AttributeIndex(fk.child_attribute);
  if (!child_idx.ok()) return child_idx.status();
  auto parent_idx = (*parent)->schema().AttributeIndex(fk.parent_attribute);
  if (!parent_idx.ok()) return parent_idx.status();
  DataType ct = (*child)->schema().attribute(*child_idx).type;
  DataType pt = (*parent)->schema().attribute(*parent_idx).type;
  if (ct != pt) {
    return Status::InvalidArgument(
        "foreign key type mismatch: " + fk.ToString());
  }
  foreign_keys_.push_back(std::move(fk));
  BumpEpoch();
  return Status::OK();
}

bool Database::HasRelation(const std::string& name) const {
  return relations_.count(name) > 0;
}

Result<Relation*> Database::GetRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' does not exist");
  }
  return it->second.get();
}

Result<const Relation*> Database::GetRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' does not exist");
  }
  return static_cast<const Relation*>(it->second.get());
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) out.push_back(name);
  return out;
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel->num_tuples();
  return n;
}

Status Database::ValidateForeignKeys() const {
  for (const ForeignKey& fk : foreign_keys_) {
    auto child = GetRelation(fk.child_relation);
    if (!child.ok()) return child.status();
    auto parent = GetRelation(fk.parent_relation);
    if (!parent.ok()) return parent.status();
    auto child_idx = (*child)->schema().AttributeIndex(fk.child_attribute);
    if (!child_idx.ok()) return child_idx.status();
    auto parent_idx = (*parent)->schema().AttributeIndex(fk.parent_attribute);
    if (!parent_idx.ok()) return parent_idx.status();

    std::unordered_set<Value, ValueHash> parent_values;
    for (Tid tid = 0; tid < (*parent)->num_tuples(); ++tid) {
      parent_values.insert((*parent)->tuple(tid)[*parent_idx]);
    }
    for (Tid tid = 0; tid < (*child)->num_tuples(); ++tid) {
      const Value& v = (*child)->tuple(tid)[*child_idx];
      if (v.is_null()) continue;
      if (parent_values.count(v) == 0) {
        return Status::ConstraintViolation(
            "dangling foreign key " + fk.ToString() + ": value " +
            v.ToString() + " has no parent");
      }
    }
  }
  return Status::OK();
}

std::string Database::DescribeSchema() const {
  std::ostringstream os;
  for (const auto& [name, rel] : relations_) {
    os << rel->schema().ToString() << "  [" << rel->num_tuples()
       << " tuples]\n";
  }
  for (const ForeignKey& fk : foreign_keys_) {
    os << "  FK " << fk.ToString() << "\n";
  }
  return os.str();
}

}  // namespace precis
