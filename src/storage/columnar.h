// Columnar (SoA) attribute storage and open-addressing value indexes
// (DESIGN.md §13).
//
// A Column stores one attribute of a relation as a contiguous vector of
// 64-bit payloads plus a null bitmap. All three engine types fit one
// encoding: int64 and double are stored as their bit patterns, strings as
// their interned SymbolId. This gives the dbgen fetch+project kernels
// contiguous per-attribute reads (256-tid chunks walk one cache-friendly
// array per emitted attribute) instead of pointer-chasing row vectors of
// 40-byte variants.
//
// A ColumnIndex replaces the old unordered_map<Value, vector<Tid>> hash
// index with a flat open-addressing table keyed on canonical 64-bit key
// bits. Canonicalization preserves the old Value-equality semantics
// exactly:
//   * strings: equal bytes <=> equal SymbolId (global interner);
//   * doubles: -0.0 and +0.0 compared (and hashed) equal before, so -0.0
//     normalizes to +0.0;
//   * NaN never compared equal to anything — including itself — so NaN
//     keys are unmatchable: never indexed, lookups return empty;
//   * NULL keys compared equal to each other (variant monostate ==), so
//     nulls live in a dedicated bucket;
//   * cross-type lookups (e.g. a string key against an int64 column) can
//     never match, exactly as variant equality across alternatives.

#ifndef PRECIS_STORAGE_COLUMNAR_H_
#define PRECIS_STORAGE_COLUMNAR_H_

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#if defined(__AVX2__) || defined(__SSE4_2__) || defined(__SSE4_1__)
#include <immintrin.h>
#endif

#include "storage/value.h"

namespace precis {

using Tid = uint64_t;  // mirrors relation.h (kept in sync by static_assert there)

/// \brief One attribute of a relation, stored contiguously.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return bits_.size(); }

  /// Appends `v`, which must be NULL or match the column type (the
  /// relation validates before appending).
  void Append(const Value& v) {
    const size_t row = bits_.size();
    if ((row & 63) == 0) nulls_.push_back(0);
    if (v.is_null()) {
      nulls_.back() |= uint64_t{1} << (row & 63);
      bits_.push_back(0);
      return;
    }
    bits_.push_back(RawBits(v));
  }

  bool IsNull(size_t row) const {
    return (nulls_[row >> 6] >> (row & 63)) & 1;
  }

  /// Reconstructs the Value at `row` (bit-exact for doubles, including
  /// -0.0 and NaN payloads; symbol identity for strings).
  Value GetValue(size_t row) const {
    if (IsNull(row)) return Value();
    switch (type_) {
      case DataType::kInt64:
        return Value(static_cast<int64_t>(bits_[row]));
      case DataType::kDouble:
        return Value(std::bit_cast<double>(bits_[row]));
      case DataType::kString:
        return Value::FromSymbol(Symbol{static_cast<SymbolId>(bits_[row])});
    }
    return Value();
  }

  /// Raw stored payload (undefined for NULL rows).
  uint64_t raw_bits(size_t row) const { return bits_[row]; }

  /// Appends, in ascending order, every non-null row whose stored value
  /// canonically equals the key with canonical bits `key_bits` (as produced
  /// by KeyBits). Compile-time dispatch: AVX2 / SSE4.2 compare kernels when
  /// the build enables them, otherwise the scalar loop; every variant emits
  /// the exact tid sequence of ScanEqualsScalar (bench/kernels gates this
  /// cell-for-cell, DESIGN.md §16).
  void ScanEquals(uint64_t key_bits, std::vector<Tid>* out) const;

  /// Scalar reference implementation of ScanEquals — always compiled, so
  /// the SIMD-vs-scalar equivalence gate has a fixed baseline.
  void ScanEqualsScalar(uint64_t key_bits, std::vector<Tid>* out) const {
    const uint64_t alt = AltKeyBits(key_bits);
    const size_t n = bits_.size();
    for (size_t row = 0; row < n; ++row) {
      if (IsNull(row)) continue;
      const uint64_t raw = bits_[row];
      if (raw == key_bits || raw == alt) out->push_back(row);
    }
  }

  /// Canonical equality-key bits of a non-null stored payload, or nullopt
  /// when the payload can never equal anything (double NaN).
  static std::optional<uint64_t> CanonicalBits(uint64_t raw, DataType type) {
    if (type != DataType::kDouble) return raw;
    const double d = std::bit_cast<double>(raw);
    if (std::isnan(d)) return std::nullopt;
    if (d == 0.0) return std::bit_cast<uint64_t>(0.0);  // -0.0 == +0.0
    return raw;
  }

  /// Canonical key bits of a lookup key against a column of this type:
  /// nullopt when the key can never match a non-null stored value (NULL
  /// key, cross-type key, NaN key).
  static std::optional<uint64_t> KeyBits(const Value& key, DataType type) {
    if (key.is_null() || !key.TypeMatches(type)) return std::nullopt;
    switch (type) {
      case DataType::kInt64:
        return std::bit_cast<uint64_t>(key.AsInt64());
      case DataType::kDouble:
        return CanonicalBits(std::bit_cast<uint64_t>(key.AsDouble()), type);
      case DataType::kString:
        return uint64_t{key.symbol().id};
    }
    return std::nullopt;
  }

 private:
  static uint64_t RawBits(const Value& v) {
    if (v.is_int64()) return std::bit_cast<uint64_t>(v.AsInt64());
    if (v.is_double()) return std::bit_cast<uint64_t>(v.AsDouble());
    return uint64_t{v.symbol().id};
  }

  /// Second accepted bit pattern for a canonical key: -0.0 when the key is
  /// double +0.0 (stored payloads keep their raw sign bit), otherwise the
  /// key itself. NaN rows can never bit-equal a canonical (non-NaN) key,
  /// so raw == key || raw == alt reproduces CanonicalBits equality without
  /// canonicalizing each row.
  uint64_t AltKeyBits(uint64_t key_bits) const {
    if (type_ == DataType::kDouble &&
        key_bits == std::bit_cast<uint64_t>(0.0)) {
      return std::bit_cast<uint64_t>(-0.0);
    }
    return key_bits;
  }

  DataType type_;
  std::vector<uint64_t> bits_;
  std::vector<uint64_t> nulls_;  // bitmap, one bit per row
};

// ScanEquals walks the payload array 64 rows (one null-bitmap word) at a
// time: an all-null word is skipped with a single compare, and within a
// word the per-lane equality masks are combined branchlessly with the
// inverted null bits before the match positions are extracted with ctz.
inline void Column::ScanEquals(uint64_t key_bits, std::vector<Tid>* out) const {
#if defined(__AVX2__) || defined(__SSE4_2__) || defined(__SSE4_1__)
  const uint64_t alt = AltKeyBits(key_bits);
  const size_t n = bits_.size();
#if defined(__AVX2__)
  constexpr size_t kLanes = 4;
  const __m256i vkey = _mm256_set1_epi64x(static_cast<long long>(key_bits));
  const __m256i valt = _mm256_set1_epi64x(static_cast<long long>(alt));
#else
  constexpr size_t kLanes = 2;
  const __m128i vkey = _mm_set1_epi64x(static_cast<long long>(key_bits));
  const __m128i valt = _mm_set1_epi64x(static_cast<long long>(alt));
#endif
  const unsigned lane_mask = (1u << kLanes) - 1;
  for (size_t word = 0; word < nulls_.size(); ++word) {
    const uint64_t null_word = nulls_[word];
    if (null_word == ~uint64_t{0}) continue;  // 64 null rows: nothing to emit
    const size_t base = word << 6;
    const size_t limit = std::min(n - base, size_t{64});
    size_t r = 0;
    for (; r + kLanes <= limit; r += kLanes) {
#if defined(__AVX2__)
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(bits_.data() + base + r));
      const __m256i eq = _mm256_or_si256(_mm256_cmpeq_epi64(v, vkey),
                                         _mm256_cmpeq_epi64(v, valt));
      unsigned mask = static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
#else
      const __m128i v = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(bits_.data() + base + r));
      const __m128i eq = _mm_or_si128(_mm_cmpeq_epi64(v, vkey),
                                      _mm_cmpeq_epi64(v, valt));
      unsigned mask = static_cast<unsigned>(
          _mm_movemask_pd(_mm_castsi128_pd(eq)));
#endif
      mask &= ~static_cast<unsigned>(null_word >> r) & lane_mask;
      while (mask != 0) {
        out->push_back(base + r +
                       static_cast<unsigned>(__builtin_ctz(mask)));
        mask &= mask - 1;
      }
    }
    for (; r < limit; ++r) {
      if ((null_word >> r) & 1) continue;
      const uint64_t raw = bits_[base + r];
      if (raw == key_bits || raw == alt) out->push_back(base + r);
    }
  }
#else
  ScanEqualsScalar(key_bits, out);
#endif
}

/// \brief Equality index from canonical key bits to posting lists of tids,
/// as a flat open-addressing table (linear probing, power-of-two capacity,
/// ~0.7 load factor). NULL keys get a dedicated bucket; NaN keys are
/// dropped (unmatchable under Value equality).
class ColumnIndex {
 public:
  explicit ColumnIndex(DataType type) : type_(type) {}

  void Insert(const Value& key, Tid tid) {
    if (key.is_null()) {
      null_tids_.push_back(tid);
      return;
    }
    auto bits = Column::KeyBits(key, type_);
    if (!bits) return;  // NaN: unreachable by equality lookup
    if ((used_ + 1) * 10 > slots_.size() * 7) Grow();
    Slot& slot = Probe(*bits);
    if (slot.posting == 0) {
      postings_.emplace_back();
      slot.key = *bits;
      slot.posting = static_cast<uint32_t>(postings_.size());
      ++used_;
    }
    postings_[slot.posting - 1].push_back(tid);
  }

  /// Tids whose indexed attribute equals `key` (empty if none). The
  /// reference is valid until the next Insert.
  const std::vector<Tid>& Lookup(const Value& key) const {
    if (key.is_null()) return null_tids_;
    auto bits = Column::KeyBits(key, type_);
    if (!bits || slots_.empty()) return kEmpty;
    const Slot& slot = const_cast<ColumnIndex*>(this)->Probe(*bits);
    return slot.posting == 0 ? kEmpty : postings_[slot.posting - 1];
  }

  size_t num_keys() const { return used_ + (null_tids_.empty() ? 0 : 1); }

  /// Pure memory hint: prefetches the first probe slot Lookup(key) will
  /// touch. No side effects and no access accounting, so it is safe to
  /// issue speculatively ahead of a budgeted probe loop without changing
  /// any observable behavior (truncation points, faults, stats).
  void Prefetch(const Value& key) const {
    if (slots_.empty() || key.is_null()) return;
    auto bits = Column::KeyBits(key, type_);
    if (!bits) return;
    __builtin_prefetch(&slots_[Mix(*bits) & (slots_.size() - 1)]);
  }

  /// Batched probe: fills out[i] with &Lookup(keys[i]), running a
  /// software-prefetch pipeline kPrefetchDistance keys ahead of the probe
  /// cursor so slot cache lines are in flight before they are needed.
  /// Result-equivalent to n sequential Lookup calls (bench/kernels gates
  /// the equivalence, DESIGN.md §16).
  void LookupBatch(const Value* keys, size_t n,
                   const std::vector<Tid>** out) const {
    const size_t warm = std::min(n, kPrefetchDistance);
    for (size_t i = 0; i < warm; ++i) Prefetch(keys[i]);
    for (size_t i = 0; i < n; ++i) {
      if (i + kPrefetchDistance < n) Prefetch(keys[i + kPrefetchDistance]);
      out[i] = &Lookup(keys[i]);
    }
  }

  static constexpr size_t kPrefetchDistance = 8;

 private:
  struct Slot {
    uint64_t key = 0;
    uint32_t posting = 0;  // 1-based index into postings_; 0 = empty
  };

  // splitmix64 finalizer: full-avalanche mix of the canonical key bits.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  Slot& Probe(uint64_t bits) {
    const size_t mask = slots_.size() - 1;
    size_t i = Mix(bits) & mask;
    while (slots_[i].posting != 0 && slots_[i].key != bits) {
      i = (i + 1) & mask;
    }
    return slots_[i];
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    for (const Slot& s : old) {
      if (s.posting == 0) continue;
      Slot& dst = Probe(s.key);
      dst = s;
    }
  }

  DataType type_;
  std::vector<Slot> slots_;
  std::vector<std::vector<Tid>> postings_;
  std::vector<Tid> null_tids_;
  size_t used_ = 0;
  static const std::vector<Tid> kEmpty;
};

}  // namespace precis

#endif  // PRECIS_STORAGE_COLUMNAR_H_
