// Columnar (SoA) attribute storage and open-addressing value indexes
// (DESIGN.md §13).
//
// A Column stores one attribute of a relation as a contiguous vector of
// 64-bit payloads plus a null bitmap. All three engine types fit one
// encoding: int64 and double are stored as their bit patterns, strings as
// their interned SymbolId. This gives the dbgen fetch+project kernels
// contiguous per-attribute reads (256-tid chunks walk one cache-friendly
// array per emitted attribute) instead of pointer-chasing row vectors of
// 40-byte variants.
//
// A ColumnIndex replaces the old unordered_map<Value, vector<Tid>> hash
// index with a flat open-addressing table keyed on canonical 64-bit key
// bits. Canonicalization preserves the old Value-equality semantics
// exactly:
//   * strings: equal bytes <=> equal SymbolId (global interner);
//   * doubles: -0.0 and +0.0 compared (and hashed) equal before, so -0.0
//     normalizes to +0.0;
//   * NaN never compared equal to anything — including itself — so NaN
//     keys are unmatchable: never indexed, lookups return empty;
//   * NULL keys compared equal to each other (variant monostate ==), so
//     nulls live in a dedicated bucket;
//   * cross-type lookups (e.g. a string key against an int64 column) can
//     never match, exactly as variant equality across alternatives.

#ifndef PRECIS_STORAGE_COLUMNAR_H_
#define PRECIS_STORAGE_COLUMNAR_H_

#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "storage/value.h"

namespace precis {

using Tid = uint64_t;  // mirrors relation.h (kept in sync by static_assert there)

/// \brief One attribute of a relation, stored contiguously.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return bits_.size(); }

  /// Appends `v`, which must be NULL or match the column type (the
  /// relation validates before appending).
  void Append(const Value& v) {
    const size_t row = bits_.size();
    if ((row & 63) == 0) nulls_.push_back(0);
    if (v.is_null()) {
      nulls_.back() |= uint64_t{1} << (row & 63);
      bits_.push_back(0);
      return;
    }
    bits_.push_back(RawBits(v));
  }

  bool IsNull(size_t row) const {
    return (nulls_[row >> 6] >> (row & 63)) & 1;
  }

  /// Reconstructs the Value at `row` (bit-exact for doubles, including
  /// -0.0 and NaN payloads; symbol identity for strings).
  Value GetValue(size_t row) const {
    if (IsNull(row)) return Value();
    switch (type_) {
      case DataType::kInt64:
        return Value(static_cast<int64_t>(bits_[row]));
      case DataType::kDouble:
        return Value(std::bit_cast<double>(bits_[row]));
      case DataType::kString:
        return Value::FromSymbol(Symbol{static_cast<SymbolId>(bits_[row])});
    }
    return Value();
  }

  /// Raw stored payload (undefined for NULL rows).
  uint64_t raw_bits(size_t row) const { return bits_[row]; }

  /// Canonical equality-key bits of a non-null stored payload, or nullopt
  /// when the payload can never equal anything (double NaN).
  static std::optional<uint64_t> CanonicalBits(uint64_t raw, DataType type) {
    if (type != DataType::kDouble) return raw;
    const double d = std::bit_cast<double>(raw);
    if (std::isnan(d)) return std::nullopt;
    if (d == 0.0) return std::bit_cast<uint64_t>(0.0);  // -0.0 == +0.0
    return raw;
  }

  /// Canonical key bits of a lookup key against a column of this type:
  /// nullopt when the key can never match a non-null stored value (NULL
  /// key, cross-type key, NaN key).
  static std::optional<uint64_t> KeyBits(const Value& key, DataType type) {
    if (key.is_null() || !key.TypeMatches(type)) return std::nullopt;
    switch (type) {
      case DataType::kInt64:
        return std::bit_cast<uint64_t>(key.AsInt64());
      case DataType::kDouble:
        return CanonicalBits(std::bit_cast<uint64_t>(key.AsDouble()), type);
      case DataType::kString:
        return uint64_t{key.symbol().id};
    }
    return std::nullopt;
  }

 private:
  static uint64_t RawBits(const Value& v) {
    if (v.is_int64()) return std::bit_cast<uint64_t>(v.AsInt64());
    if (v.is_double()) return std::bit_cast<uint64_t>(v.AsDouble());
    return uint64_t{v.symbol().id};
  }

  DataType type_;
  std::vector<uint64_t> bits_;
  std::vector<uint64_t> nulls_;  // bitmap, one bit per row
};

/// \brief Equality index from canonical key bits to posting lists of tids,
/// as a flat open-addressing table (linear probing, power-of-two capacity,
/// ~0.7 load factor). NULL keys get a dedicated bucket; NaN keys are
/// dropped (unmatchable under Value equality).
class ColumnIndex {
 public:
  explicit ColumnIndex(DataType type) : type_(type) {}

  void Insert(const Value& key, Tid tid) {
    if (key.is_null()) {
      null_tids_.push_back(tid);
      return;
    }
    auto bits = Column::KeyBits(key, type_);
    if (!bits) return;  // NaN: unreachable by equality lookup
    if ((used_ + 1) * 10 > slots_.size() * 7) Grow();
    Slot& slot = Probe(*bits);
    if (slot.posting == 0) {
      postings_.emplace_back();
      slot.key = *bits;
      slot.posting = static_cast<uint32_t>(postings_.size());
      ++used_;
    }
    postings_[slot.posting - 1].push_back(tid);
  }

  /// Tids whose indexed attribute equals `key` (empty if none). The
  /// reference is valid until the next Insert.
  const std::vector<Tid>& Lookup(const Value& key) const {
    if (key.is_null()) return null_tids_;
    auto bits = Column::KeyBits(key, type_);
    if (!bits || slots_.empty()) return kEmpty;
    const Slot& slot = const_cast<ColumnIndex*>(this)->Probe(*bits);
    return slot.posting == 0 ? kEmpty : postings_[slot.posting - 1];
  }

  size_t num_keys() const { return used_ + (null_tids_.empty() ? 0 : 1); }

 private:
  struct Slot {
    uint64_t key = 0;
    uint32_t posting = 0;  // 1-based index into postings_; 0 = empty
  };

  // splitmix64 finalizer: full-avalanche mix of the canonical key bits.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  Slot& Probe(uint64_t bits) {
    const size_t mask = slots_.size() - 1;
    size_t i = Mix(bits) & mask;
    while (slots_[i].posting != 0 && slots_[i].key != bits) {
      i = (i + 1) & mask;
    }
    return slots_[i];
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    for (const Slot& s : old) {
      if (s.posting == 0) continue;
      Slot& dst = Probe(s.key);
      dst = s;
    }
  }

  DataType type_;
  std::vector<Slot> slots_;
  std::vector<std::vector<Tid>> postings_;
  std::vector<Tid> null_tids_;
  size_t used_ = 0;
  static const std::vector<Tid> kEmpty;
};

}  // namespace precis

#endif  // PRECIS_STORAGE_COLUMNAR_H_
