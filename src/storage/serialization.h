// Text serialization of databases.
//
// The paper's second use case (§1) — deriving small test databases from
// production ones — only pays off if the derived database can leave the
// process. This module round-trips a Database (schema, primary/foreign
// keys, indexes, data) through a line-oriented text format:
//
//   PRECISDB 1
//   DATABASE <name>
//   RELATION <name> <num_attributes>
//   ATTR <name> <INT64|DOUBLE|STRING> [PK]
//   INDEX <relation> <attribute>
//   FK <child_rel> <child_attr> <parent_rel> <parent_attr>
//   DATA <relation> <num_tuples>
//   <tab-separated values, one tuple per line>
//
// Values are TSV-escaped (\t, \n, \r, \\); NULL is the unescaped token \N.
// Loading re-validates everything the way live inserts do (types, arity,
// primary-key uniqueness) and rebuilds the declared indexes.

#ifndef PRECIS_STORAGE_SERIALIZATION_H_
#define PRECIS_STORAGE_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/database.h"

namespace precis {

/// \brief Writes the full database (schema + constraints + data) to `out`.
Status SaveDatabase(const Database& db, std::ostream* out);

/// \brief SaveDatabase to a file path (overwrites).
Status SaveDatabaseToFile(const Database& db, const std::string& path);

/// \brief Reads a database previously written by SaveDatabase.
Result<Database> LoadDatabase(std::istream* in);

/// \brief LoadDatabase from a file path.
Result<Database> LoadDatabaseFromFile(const std::string& path);

/// \brief Escapes one value for a TSV field (exposed for tests).
std::string EscapeTsvField(const std::string& raw);

/// \brief Reverses EscapeTsvField (exposed for tests).
Result<std::string> UnescapeTsvField(const std::string& escaped);

}  // namespace precis

#endif  // PRECIS_STORAGE_SERIALIZATION_H_
