#include "storage/schema.h"

#include <sstream>

namespace precis {

Result<size_t> RelationSchema::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("attribute '" + name + "' not in relation '" +
                          name_ + "'");
}

bool RelationSchema::HasAttribute(const std::string& name) const {
  for (const auto& a : attributes_) {
    if (a.name == name) return true;
  }
  return false;
}

Status RelationSchema::SetPrimaryKey(const std::string& attribute_name) {
  auto idx = AttributeIndex(attribute_name);
  if (!idx.ok()) return idx.status();
  primary_key_ = *idx;
  return Status::OK();
}

std::string RelationSchema::ToString() const {
  std::ostringstream os;
  os << name_ << "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) os << ", ";
    os << attributes_[i].name;
    if (primary_key_ && *primary_key_ == i) os << "*";
  }
  os << ")";
  return os.str();
}

}  // namespace precis
