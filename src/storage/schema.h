// Relation and database schemas (paper §3.1 data model).

#ifndef PRECIS_STORAGE_SCHEMA_H_
#define PRECIS_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/value.h"

namespace precis {

/// \brief One attribute (column) of a relation schema.
struct AttributeSchema {
  std::string name;
  DataType type;

  bool operator==(const AttributeSchema& o) const {
    return name == o.name && type == o.type;
  }
};

/// \brief A relation schema R(A1, ..., Ak) with an optional primary key.
///
/// Per the paper's simplifying assumption (§3.1), primary keys are not
/// composite: the key is a single attribute, identified by index.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<AttributeSchema> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<AttributeSchema>& attributes() const {
    return attributes_;
  }
  size_t num_attributes() const { return attributes_.size(); }

  const AttributeSchema& attribute(size_t i) const { return attributes_[i]; }

  /// Index of the attribute named `name`, or kNotFound.
  Result<size_t> AttributeIndex(const std::string& name) const;

  /// True if an attribute with this name exists.
  bool HasAttribute(const std::string& name) const;

  /// Declares the single-attribute primary key. Fails if the attribute does
  /// not exist.
  Status SetPrimaryKey(const std::string& attribute_name);

  /// Index of the primary-key attribute, if one was declared.
  std::optional<size_t> primary_key() const { return primary_key_; }

  /// "MOVIE(mid, title, year, did)" rendering for logs and docs.
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<AttributeSchema> attributes_;
  std::optional<size_t> primary_key_;
};

/// \brief A foreign-key constraint: child.attribute references
/// parent.attribute.
struct ForeignKey {
  std::string child_relation;
  std::string child_attribute;
  std::string parent_relation;
  std::string parent_attribute;

  bool operator==(const ForeignKey& o) const {
    return child_relation == o.child_relation &&
           child_attribute == o.child_attribute &&
           parent_relation == o.parent_relation &&
           parent_attribute == o.parent_attribute;
  }

  std::string ToString() const {
    return child_relation + "." + child_attribute + " -> " + parent_relation +
           "." + parent_attribute;
  }
};

}  // namespace precis

#endif  // PRECIS_STORAGE_SCHEMA_H_
