#include "storage/relation.h"

#include <algorithm>
#include <new>
#include <numeric>
#include <unordered_set>

namespace precis {

const std::vector<Tid> ColumnIndex::kEmpty;

Result<Tid> Relation::Insert(Tuple tuple) {
  if (tuple.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " != schema arity " +
        std::to_string(schema_.num_attributes()) + " for relation '" +
        name() + "'");
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (!tuple[i].TypeMatches(schema_.attribute(i).type)) {
      return Status::InvalidArgument(
          "type mismatch for attribute '" + schema_.attribute(i).name +
          "' of relation '" + name() + "'");
    }
  }
  if (schema_.primary_key()) {
    size_t pk = *schema_.primary_key();
    const Value& key = tuple[pk];
    if (key.is_null()) {
      return Status::ConstraintViolation("NULL primary key in relation '" +
                                         name() + "'");
    }
    // pk_values_ mirrors the heap's key column, so uniqueness is O(1)
    // whether or not an index exists on the key attribute.
    if (pk_values_.count(key) > 0) {
      return Status::ConstraintViolation(
          "duplicate primary key " + key.ToString() + " in relation '" +
          name() + "'");
    }
    pk_values_.insert(key);
  }
  Tid tid = heap_.size();
  for (size_t pos = 0; pos < indexes_.size(); ++pos) {
    if (indexes_[pos] != nullptr) indexes_[pos]->Insert(tuple[pos], tid);
  }
  for (size_t pos = 0; pos < tuple.size(); ++pos) {
    columns_[pos].Append(tuple[pos]);
  }
  heap_.push_back(std::move(tuple));
  BumpEpoch();
  return tid;
}

Result<const Tuple*> Relation::Get(Tid tid, ExecutionContext* ctx) const {
  if (tid >= heap_.size()) {
    return Status::OutOfRange("tid " + std::to_string(tid) +
                              " out of range for relation '" + name() +
                              "' with " + std::to_string(heap_.size()) +
                              " tuples");
  }
  // The fault check sits after the bounds check (a bad tid is a caller bug,
  // not a storage fault) and before the charge: a failed fetch attempt
  // consumed no instrumented access (DESIGN.md §12).
  if (ctx != nullptr) {
    PRECIS_RETURN_NOT_OK(ctx->CheckFault(FaultSite::kTupleFetch));
  }
  CountTupleFetch(ctx);
  return &heap_[tid];
}

const Tuple* Relation::FetchPrevalidated(Tid tid, ExecutionContext* ctx) const {
  CountTupleFetch(ctx);
  return &heap_[tid];
}

void Relation::ProjectRows(const Tid* tids, size_t n,
                           const std::vector<size_t>& projection, Value* out,
                           ExecutionContext* ctx) const {
  CountTupleFetches(n, ctx);
  const size_t width = projection.size();
  for (size_t j = 0; j < width; ++j) {
    const Column& col = columns_[projection[j]];
    Value* cell = out + j;
    for (size_t i = 0; i < n; ++i, cell += width) {
      new (cell) Value(col.GetValue(tids[i]));
    }
  }
}

void Relation::ProjectRowsAll(const Tid* tids, size_t n, Value* out,
                              ExecutionContext* ctx) const {
  CountTupleFetches(n, ctx);
  const size_t width = columns_.size();
  for (size_t j = 0; j < width; ++j) {
    const Column& col = columns_[j];
    Value* cell = out + j;
    for (size_t i = 0; i < n; ++i, cell += width) {
      new (cell) Value(col.GetValue(tids[i]));
    }
  }
}

Status Relation::CreateIndex(const std::string& attribute_name) {
  auto idx = schema_.AttributeIndex(attribute_name);
  if (!idx.ok()) return idx.status();
  if (indexes_.size() < schema_.num_attributes()) {
    indexes_.resize(schema_.num_attributes());
  }
  auto index = std::make_unique<ColumnIndex>(schema_.attribute(*idx).type);
  for (Tid tid = 0; tid < heap_.size(); ++tid) {
    index->Insert(heap_[tid][*idx], tid);
  }
  indexes_[*idx] = std::move(index);
  // An index changes the access path (probe vs scan counts), so cached
  // answers fingerprinted on the epoch must not survive it.
  BumpEpoch();
  return Status::OK();
}

std::vector<std::string> Relation::IndexedAttributes() const {
  std::vector<std::string> out;
  for (size_t pos = 0; pos < indexes_.size(); ++pos) {
    if (indexes_[pos] != nullptr) out.push_back(schema_.attribute(pos).name);
  }
  return out;
}

bool Relation::HasIndex(const std::string& attribute_name) const {
  auto idx = schema_.AttributeIndex(attribute_name);
  if (!idx.ok()) return false;
  return IndexAt(*idx) != nullptr;
}

Result<std::vector<Tid>> Relation::LookupEquals(
    const std::string& attribute_name, const Value& key,
    ExecutionContext* ctx) const {
  auto idx = schema_.AttributeIndex(attribute_name);
  if (!idx.ok()) return idx.status();
  if (const ColumnIndex* index = IndexAt(*idx)) {
    if (ctx != nullptr) {
      PRECIS_RETURN_NOT_OK(ctx->CheckFault(FaultSite::kIndexProbe));
    }
    CountIndexProbe(ctx);
    return index->Lookup(key);
  }
  if (ctx != nullptr) {
    PRECIS_RETURN_NOT_OK(ctx->CheckFault(FaultSite::kRelationScan));
  }
  CountSequentialScan(ctx);
  // Column scan instead of row-heap scan: one contiguous pass over the
  // attribute's bit vector, with the same match semantics as
  // `heap_[tid][*idx] == key` (NULL matches NULL, NaN matches nothing,
  // cross-type matches nothing).
  std::vector<Tid> out;
  const Column& col = columns_[*idx];
  if (key.is_null()) {
    for (Tid tid = 0; tid < col.size(); ++tid) {
      if (col.IsNull(tid)) out.push_back(tid);
    }
    return out;
  }
  auto key_bits = Column::KeyBits(key, col.type());
  if (!key_bits) return out;  // cross-type or NaN key: nothing can match
  col.ScanEquals(*key_bits, &out);  // SIMD-dispatched, scalar-identical
  return out;
}

void Relation::PrefetchEquals(const std::string& attribute_name,
                              const Value& key) const {
  auto idx = schema_.AttributeIndex(attribute_name);
  if (!idx.ok()) return;
  if (const ColumnIndex* index = IndexAt(*idx)) index->Prefetch(key);
}

std::vector<Tid> Relation::AllTids() const {
  // Exact-size allocation up front; iota instead of an indexed loop.
  std::vector<Tid> out(heap_.size());
  std::iota(out.begin(), out.end(), Tid{0});
  return out;
}

Result<std::vector<Value>> Relation::DistinctValues(
    const std::string& attribute_name) const {
  auto idx = schema_.AttributeIndex(attribute_name);
  if (!idx.ok()) return idx.status();
  std::unordered_set<Value, ValueHash> seen;
  // Reserve for the worst case (all values distinct) so neither the hash
  // set rehashes nor the output vector reallocates mid-scan.
  seen.reserve(heap_.size());
  std::vector<Value> out;
  out.reserve(heap_.size());
  const Column& col = columns_[*idx];
  for (Tid tid = 0; tid < col.size(); ++tid) {
    Value v = col.GetValue(tid);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace precis
