#include "storage/relation.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace precis {

const std::vector<Tid> HashIndex::kEmpty;

const std::vector<Tid>& HashIndex::Lookup(const Value& key) const {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return kEmpty;
  return it->second;
}

Result<Tid> Relation::Insert(Tuple tuple) {
  if (tuple.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " != schema arity " +
        std::to_string(schema_.num_attributes()) + " for relation '" +
        name() + "'");
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (!tuple[i].TypeMatches(schema_.attribute(i).type)) {
      return Status::InvalidArgument(
          "type mismatch for attribute '" + schema_.attribute(i).name +
          "' of relation '" + name() + "'");
    }
  }
  if (schema_.primary_key()) {
    size_t pk = *schema_.primary_key();
    const Value& key = tuple[pk];
    if (key.is_null()) {
      return Status::ConstraintViolation("NULL primary key in relation '" +
                                         name() + "'");
    }
    // pk_values_ mirrors the heap's key column, so uniqueness is O(1)
    // whether or not an index exists on the key attribute.
    if (pk_values_.count(key) > 0) {
      return Status::ConstraintViolation(
          "duplicate primary key " + key.ToString() + " in relation '" +
          name() + "'");
    }
    pk_values_.insert(key);
  }
  Tid tid = heap_.size();
  for (size_t pos = 0; pos < indexes_.size(); ++pos) {
    if (indexes_[pos] != nullptr) indexes_[pos]->Insert(tuple[pos], tid);
  }
  heap_.push_back(std::move(tuple));
  BumpEpoch();
  return tid;
}

Result<const Tuple*> Relation::Get(Tid tid, ExecutionContext* ctx) const {
  if (tid >= heap_.size()) {
    return Status::OutOfRange("tid " + std::to_string(tid) +
                              " out of range for relation '" + name() +
                              "' with " + std::to_string(heap_.size()) +
                              " tuples");
  }
  // The fault check sits after the bounds check (a bad tid is a caller bug,
  // not a storage fault) and before the charge: a failed fetch attempt
  // consumed no instrumented access (DESIGN.md §12).
  if (ctx != nullptr) {
    PRECIS_RETURN_NOT_OK(ctx->CheckFault(FaultSite::kTupleFetch));
  }
  CountTupleFetch(ctx);
  return &heap_[tid];
}

const Tuple* Relation::FetchPrevalidated(Tid tid, ExecutionContext* ctx) const {
  CountTupleFetch(ctx);
  return &heap_[tid];
}

Status Relation::CreateIndex(const std::string& attribute_name) {
  auto idx = schema_.AttributeIndex(attribute_name);
  if (!idx.ok()) return idx.status();
  if (indexes_.size() < schema_.num_attributes()) {
    indexes_.resize(schema_.num_attributes());
  }
  auto index = std::make_unique<HashIndex>();
  for (Tid tid = 0; tid < heap_.size(); ++tid) {
    index->Insert(heap_[tid][*idx], tid);
  }
  indexes_[*idx] = std::move(index);
  // An index changes the access path (probe vs scan counts), so cached
  // answers fingerprinted on the epoch must not survive it.
  BumpEpoch();
  return Status::OK();
}

std::vector<std::string> Relation::IndexedAttributes() const {
  std::vector<std::string> out;
  for (size_t pos = 0; pos < indexes_.size(); ++pos) {
    if (indexes_[pos] != nullptr) out.push_back(schema_.attribute(pos).name);
  }
  return out;
}

bool Relation::HasIndex(const std::string& attribute_name) const {
  auto idx = schema_.AttributeIndex(attribute_name);
  if (!idx.ok()) return false;
  return IndexAt(*idx) != nullptr;
}

Result<std::vector<Tid>> Relation::LookupEquals(
    const std::string& attribute_name, const Value& key,
    ExecutionContext* ctx) const {
  auto idx = schema_.AttributeIndex(attribute_name);
  if (!idx.ok()) return idx.status();
  if (const HashIndex* index = IndexAt(*idx)) {
    if (ctx != nullptr) {
      PRECIS_RETURN_NOT_OK(ctx->CheckFault(FaultSite::kIndexProbe));
    }
    CountIndexProbe(ctx);
    return index->Lookup(key);
  }
  if (ctx != nullptr) {
    PRECIS_RETURN_NOT_OK(ctx->CheckFault(FaultSite::kRelationScan));
  }
  CountSequentialScan(ctx);
  std::vector<Tid> out;
  for (Tid tid = 0; tid < heap_.size(); ++tid) {
    if (heap_[tid][*idx] == key) out.push_back(tid);
  }
  return out;
}

std::vector<Tid> Relation::AllTids() const {
  // Exact-size allocation up front; iota instead of an indexed loop.
  std::vector<Tid> out(heap_.size());
  std::iota(out.begin(), out.end(), Tid{0});
  return out;
}

Result<std::vector<Value>> Relation::DistinctValues(
    const std::string& attribute_name) const {
  auto idx = schema_.AttributeIndex(attribute_name);
  if (!idx.ok()) return idx.status();
  std::unordered_set<Value, ValueHash> seen;
  // Reserve for the worst case (all values distinct) so neither the hash
  // set rehashes nor the output vector reallocates mid-scan.
  seen.reserve(heap_.size());
  std::vector<Value> out;
  out.reserve(heap_.size());
  for (const Tuple& t : heap_) {
    if (seen.insert(t[*idx]).second) out.push_back(t[*idx]);
  }
  return out;
}

}  // namespace precis
