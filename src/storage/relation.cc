#include "storage/relation.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace precis {

const std::vector<Tid> HashIndex::kEmpty;

const std::vector<Tid>& HashIndex::Lookup(const Value& key) const {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return kEmpty;
  return it->second;
}

Result<Tid> Relation::Insert(Tuple tuple) {
  if (tuple.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " != schema arity " +
        std::to_string(schema_.num_attributes()) + " for relation '" +
        name() + "'");
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (!tuple[i].TypeMatches(schema_.attribute(i).type)) {
      return Status::InvalidArgument(
          "type mismatch for attribute '" + schema_.attribute(i).name +
          "' of relation '" + name() + "'");
    }
  }
  if (schema_.primary_key()) {
    size_t pk = *schema_.primary_key();
    const Value& key = tuple[pk];
    if (key.is_null()) {
      return Status::ConstraintViolation("NULL primary key in relation '" +
                                         name() + "'");
    }
    auto idx_it = indexes_.find(pk);
    if (idx_it != indexes_.end()) {
      if (!idx_it->second.Lookup(key).empty()) {
        return Status::ConstraintViolation(
            "duplicate primary key " + key.ToString() + " in relation '" +
            name() + "'");
      }
    } else {
      for (const Tuple& t : heap_) {
        if (t[pk] == key) {
          return Status::ConstraintViolation(
              "duplicate primary key " + key.ToString() + " in relation '" +
              name() + "'");
        }
      }
    }
  }
  Tid tid = heap_.size();
  for (auto& [attr_idx, index] : indexes_) {
    index.Insert(tuple[attr_idx], tid);
  }
  heap_.push_back(std::move(tuple));
  BumpEpoch();
  return tid;
}

Result<const Tuple*> Relation::Get(Tid tid, ExecutionContext* ctx) const {
  if (tid >= heap_.size()) {
    return Status::OutOfRange("tid " + std::to_string(tid) +
                              " out of range for relation '" + name() +
                              "' with " + std::to_string(heap_.size()) +
                              " tuples");
  }
  CountTupleFetch(ctx);
  return &heap_[tid];
}

Status Relation::CreateIndex(const std::string& attribute_name) {
  auto idx = schema_.AttributeIndex(attribute_name);
  if (!idx.ok()) return idx.status();
  HashIndex index;
  for (Tid tid = 0; tid < heap_.size(); ++tid) {
    index.Insert(heap_[tid][*idx], tid);
  }
  indexes_[*idx] = std::move(index);
  // An index changes the access path (probe vs scan counts), so cached
  // answers fingerprinted on the epoch must not survive it.
  BumpEpoch();
  return Status::OK();
}

std::vector<std::string> Relation::IndexedAttributes() const {
  std::vector<std::string> out;
  for (const auto& [attr_idx, index] : indexes_) {
    out.push_back(schema_.attribute(attr_idx).name);
  }
  return out;
}

bool Relation::HasIndex(const std::string& attribute_name) const {
  auto idx = schema_.AttributeIndex(attribute_name);
  if (!idx.ok()) return false;
  return indexes_.count(*idx) > 0;
}

Result<std::vector<Tid>> Relation::LookupEquals(
    const std::string& attribute_name, const Value& key,
    ExecutionContext* ctx) const {
  auto idx = schema_.AttributeIndex(attribute_name);
  if (!idx.ok()) return idx.status();
  auto index_it = indexes_.find(*idx);
  if (index_it != indexes_.end()) {
    CountIndexProbe(ctx);
    return index_it->second.Lookup(key);
  }
  CountSequentialScan(ctx);
  std::vector<Tid> out;
  for (Tid tid = 0; tid < heap_.size(); ++tid) {
    if (heap_[tid][*idx] == key) out.push_back(tid);
  }
  return out;
}

std::vector<Tid> Relation::AllTids() const {
  // Exact-size allocation up front; iota instead of an indexed loop.
  std::vector<Tid> out(heap_.size());
  std::iota(out.begin(), out.end(), Tid{0});
  return out;
}

Result<std::vector<Value>> Relation::DistinctValues(
    const std::string& attribute_name) const {
  auto idx = schema_.AttributeIndex(attribute_name);
  if (!idx.ok()) return idx.status();
  std::unordered_set<Value, ValueHash> seen;
  // Reserve for the worst case (all values distinct) so neither the hash
  // set rehashes nor the output vector reallocates mid-scan.
  seen.reserve(heap_.size());
  std::vector<Value> out;
  out.reserve(heap_.size());
  for (const Tuple& t : heap_) {
    if (seen.insert(t[*idx]).second) out.push_back(t[*idx]);
  }
  return out;
}

}  // namespace precis
