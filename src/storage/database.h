// Database: a catalog of relations plus foreign-key constraints.

#ifndef PRECIS_STORAGE_DATABASE_H_
#define PRECIS_STORAGE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/access_stats.h"
#include "storage/relation.h"
#include "storage/schema.h"

namespace precis {

/// \brief An in-memory relational database: named relations, foreign keys,
/// and cumulative access statistics.
///
/// Both the source database (e.g. the movies dataset) and the *result* of a
/// précis query are instances of this class — the paper's central point is
/// that a query's answer is itself a database with schema and constraints.
class Database {
 public:
  Database() = default;
  explicit Database(std::string name) : name_(std::move(name)) {}

  // Movable, not copyable (relations can be large).
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::string& name() const { return name_; }

  /// Creates an empty relation from a schema. Fails if the name is taken.
  Status CreateRelation(RelationSchema schema);

  /// Declares a foreign key; both end points must exist and be
  /// type-compatible. Does not retroactively validate data (use
  /// ValidateForeignKeys()).
  Status AddForeignKey(ForeignKey fk);

  bool HasRelation(const std::string& name) const;

  /// Relation accessors.
  Result<Relation*> GetRelation(const std::string& name);
  Result<const Relation*> GetRelation(const std::string& name) const;

  /// Names of all relations, sorted.
  std::vector<std::string> RelationNames() const;

  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  size_t num_relations() const { return relations_.size(); }

  /// Total tuples across all relations — the paper's card(D).
  size_t TotalTuples() const;

  /// Checks every foreign key: each non-NULL child value must appear in the
  /// parent attribute. Returns the first violation found, or OK.
  Status ValidateForeignKeys() const;

  /// Cumulative access counters across all relations of this database.
  ///
  /// These are the *global*, cross-query totals. A query that carries a
  /// per-query ExecutionContext is additionally attributed on its context's
  /// own AccessStats; the per-query snapshots of all queries sum to the
  /// deltas observed here (each access is counted once globally and once on
  /// the owning context).
  const AccessStats& stats() const { return *stats_; }
  AccessStats* mutable_stats() { return stats_.get(); }
  void ResetStats() { stats_->Reset(); }

  /// Multi-line schema dump ("MOVIE(mid*, title, year, did)" + FKs).
  std::string DescribeSchema() const;

  /// Mutation epoch: bumped once per structural or data mutation —
  /// CreateRelation, AddForeignKey, every successful Relation::Insert and
  /// every CreateIndex on a relation of this database. Caches keyed on
  /// (query fingerprint, epoch) are therefore never stale: any mutation
  /// makes previously cached entries unreachable (DESIGN.md §10).
  uint64_t epoch() const { return epoch_->load(std::memory_order_relaxed); }

 private:
  void BumpEpoch() { epoch_->fetch_add(1, std::memory_order_relaxed); }

  std::string name_;
  std::map<std::string, std::unique_ptr<Relation>> relations_;
  std::vector<ForeignKey> foreign_keys_;
  // Held behind a unique_ptr so its address survives moves of the Database
  // (each Relation keeps a raw pointer to it for instrumentation).
  std::unique_ptr<AccessStats> stats_ = std::make_unique<AccessStats>();
  // Behind a unique_ptr for the same address-stability reason: each
  // Relation keeps a raw pointer and bumps it on Insert / CreateIndex.
  std::unique_ptr<std::atomic<uint64_t>> epoch_ =
      std::make_unique<std::atomic<uint64_t>>(0);
};

}  // namespace precis

#endif  // PRECIS_STORAGE_DATABASE_H_
