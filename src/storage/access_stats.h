// Instrumentation counters mirroring the paper's cost model (§6, Formula 1):
//
//   Cost(D') = sum_i card(R'_i) * (IndexTime + TupleTime)
//
// Every index probe and every tuple fetch performed by the engine increments
// a counter here, so the cost-model validation bench can compare the model's
// predicted access counts against what the generator actually did.
//
// Counters are atomic (relaxed): reads are logically const operations that
// several threads may run against one Database concurrently; the counters
// must not turn that into a data race. Copies snapshot the current values.

#ifndef PRECIS_STORAGE_ACCESS_STATS_H_
#define PRECIS_STORAGE_ACCESS_STATS_H_

#include <atomic>
#include <cstdint>

namespace precis {

/// \brief Cumulative access counters for one Database. Thread-safe;
/// snapshot by copying.
struct AccessStats {
  /// Number of index lookups (one per probed key value).
  std::atomic<uint64_t> index_probes{0};
  /// Number of tuples materialized from the heap by rowid.
  std::atomic<uint64_t> tuple_fetches{0};
  /// Number of full-relation scans that had to fall back to sequential
  /// access because no index existed on the probed attribute.
  std::atomic<uint64_t> sequential_scans{0};
  /// Number of statements submitted to the engine. A NaiveQ IN-list query
  /// is one statement; RoundRobin opens one per-value scan (cursor) per
  /// probe key, each counting as a statement — the per-statement overhead
  /// is what makes RoundRobin costlier than NaiveQ on a real DBMS (paper
  /// Fig. 9).
  std::atomic<uint64_t> statements{0};

  AccessStats() = default;
  AccessStats(const AccessStats& o) { *this = o; }
  AccessStats& operator=(const AccessStats& o) {
    index_probes.store(o.index_probes.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    tuple_fetches.store(o.tuple_fetches.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    sequential_scans.store(
        o.sequential_scans.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    statements.store(o.statements.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }

  void Reset() {
    index_probes.store(0, std::memory_order_relaxed);
    tuple_fetches.store(0, std::memory_order_relaxed);
    sequential_scans.store(0, std::memory_order_relaxed);
    statements.store(0, std::memory_order_relaxed);
  }

  AccessStats& operator+=(const AccessStats& o) {
    index_probes.fetch_add(o.index_probes.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    tuple_fetches.fetch_add(
        o.tuple_fetches.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    sequential_scans.fetch_add(
        o.sequential_scans.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    statements.fetch_add(o.statements.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    return *this;
  }
};

/// \brief Per-access latency parameters for the paper's cost formulas.
///
/// The paper measured wall-clock IndexTime and TupleTime on Oracle; here they
/// are free parameters of the model (calibrated from a measurement run by the
/// cost-model bench) used to turn access counts into predicted seconds and to
/// derive cardinality constraints from a response-time target (Formula 3).
struct CostParameters {
  double index_time_seconds = 0.0;
  double tuple_time_seconds = 0.0;

  double PerTupleCost() const {
    return index_time_seconds + tuple_time_seconds;
  }
};

}  // namespace precis

#endif  // PRECIS_STORAGE_ACCESS_STATS_H_
