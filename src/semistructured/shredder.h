// Shredding documents into a précis-ready database (paper §1/§3: "Our
// approach is applicable to other types of (semi-)structured data as well.
// However, for presentation reasons, we focus on relational data here.")
//
// The shredder derives, from one document tree:
//   * a relational schema: one relation per element tag, with a synthetic
//     key `id`, a `parent` reference, a `content` column when the element
//     carries text, and one column per attribute name observed on that tag;
//   * the data: one tuple per element;
//   * foreign keys parent -> parent-tag id;
//   * a weighted schema graph: child -> parent join edges at weight 1.0
//     (an element depends on its context, the paper's "dependence of the
//     left part on the right"), parent -> child edges at a configurable
//     default, and projection edges on content/attribute columns.
//
// Limitation (checked, not silently mangled): each tag must appear under a
// single parent tag, i.e. the document's tag structure is a tree. This is
// the common case for data-centric documents; recursive or multi-parent
// tags are reported as errors.

#ifndef PRECIS_SEMISTRUCTURED_SHREDDER_H_
#define PRECIS_SEMISTRUCTURED_SHREDDER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "graph/schema_graph.h"
#include "semistructured/document.h"
#include "storage/database.h"

namespace precis {

/// \brief Weight knobs for the derived schema graph.
struct ShredOptions {
  /// Weight of parent -> child join edges ("an answer about the container
  /// may include the contained").
  double parent_to_child_weight = 0.8;
  /// Weight of child -> parent join edges ("an answer about an element
  /// should carry its context").
  double child_to_parent_weight = 1.0;
  /// Weight of content / attribute projection edges.
  double value_projection_weight = 0.9;
  /// Whether to build hash indexes on the id/parent columns.
  bool create_indexes = true;
};

/// \brief A shredded document: the database plus its annotated graph, both
/// owned (movable, pointer-stable).
class ShreddedDocument {
 public:
  Database& db() { return *db_; }
  const Database& db() const { return *db_; }
  SchemaGraph& graph() { return *graph_; }
  const SchemaGraph& graph() const { return *graph_; }

  /// Shreds `root`. Fails if two distinct parent tags contain the same
  /// child tag, or if a tag collides with a reserved column name pattern.
  static Result<ShreddedDocument> Shred(const DocumentNode& root,
                                        const ShredOptions& options = {});

 private:
  ShreddedDocument(std::unique_ptr<Database> db,
                   std::unique_ptr<SchemaGraph> graph)
      : db_(std::move(db)), graph_(std::move(graph)) {}

  std::unique_ptr<Database> db_;
  std::unique_ptr<SchemaGraph> graph_;
};

}  // namespace precis

#endif  // PRECIS_SEMISTRUCTURED_SHREDDER_H_
