#include "semistructured/document.h"

#include <cctype>
#include <cstring>
#include <sstream>

#include "common/string_util.h"

namespace precis {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<std::unique_ptr<DocumentNode>> ParseRoot() {
    SkipInterElement();
    if (AtEnd() || Peek() != '<') {
      return Error("expected a root element");
    }
    auto root = ParseElement();
    if (!root.ok()) return root.status();
    SkipInterElement();
    if (!AtEnd()) {
      return Error("trailing content after the root element");
    }
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Lookahead(const char* s) const {
    return text_.compare(pos_, std::strlen(s), s) == 0;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("document parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  /// Skips whitespace and comments between elements.
  void SkipInterElement() {
    while (true) {
      SkipWhitespace();
      if (Lookahead("<!--")) {
        size_t end = text_.find("-->", pos_ + 4);
        if (end == std::string::npos) {
          pos_ = text_.size();
          return;
        }
        pos_ = end + 3;
        continue;
      }
      return;
    }
  }

  std::string ReadName() {
    size_t start = pos_;
    while (!AtEnd() &&
           (std::isalnum(static_cast<unsigned char>(Peek())) ||
            Peek() == '_' || Peek() == '-' || Peek() == '.')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  Result<std::string> DecodeEntities(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      if (raw.compare(i, 5, "&amp;") == 0) {
        out.push_back('&');
        i += 4;
      } else if (raw.compare(i, 4, "&lt;") == 0) {
        out.push_back('<');
        i += 3;
      } else if (raw.compare(i, 4, "&gt;") == 0) {
        out.push_back('>');
        i += 3;
      } else if (raw.compare(i, 6, "&quot;") == 0) {
        out.push_back('"');
        i += 5;
      } else {
        return Status::InvalidArgument("unknown entity in: " + raw);
      }
    }
    return out;
  }

  Result<std::unique_ptr<DocumentNode>> ParseElement() {
    // Caller guarantees Peek() == '<'.
    ++pos_;  // '<'
    std::string tag = ReadName();
    if (tag.empty()) return Error("expected a tag name after '<'");
    auto node = std::make_unique<DocumentNode>();
    node->tag = tag;

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag <" + tag);
      if (Peek() == '/' || Peek() == '>') break;
      std::string attr = ReadName();
      if (attr.empty()) return Error("expected an attribute name");
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') {
        return Error("expected '=' after attribute '" + attr + "'");
      }
      ++pos_;
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') {
        return Error("expected '\"' opening the value of '" + attr + "'");
      }
      ++pos_;
      size_t close = text_.find('"', pos_);
      if (close == std::string::npos) {
        return Error("unterminated attribute value of '" + attr + "'");
      }
      auto value = DecodeEntities(text_.substr(pos_, close - pos_));
      if (!value.ok()) return value.status();
      if (!node->attributes.emplace(attr, std::move(*value)).second) {
        return Error("duplicate attribute '" + attr + "'");
      }
      pos_ = close + 1;
    }

    if (Peek() == '/') {
      ++pos_;
      if (AtEnd() || Peek() != '>') return Error("expected '>' after '/'");
      ++pos_;
      return node;  // self-closing
    }
    ++pos_;  // '>'

    // Content: text, children, comments, until </tag>.
    std::string raw_text;
    while (true) {
      if (AtEnd()) return Error("missing </" + tag + ">");
      if (Lookahead("<!--")) {
        SkipInterElement();
        continue;
      }
      if (Lookahead("</")) {
        pos_ += 2;
        std::string closing = ReadName();
        if (closing != tag) {
          return Error("mismatched </" + closing + ">, expected </" + tag +
                       ">");
        }
        SkipWhitespace();
        if (AtEnd() || Peek() != '>') return Error("expected '>'");
        ++pos_;
        break;
      }
      if (Peek() == '<') {
        auto child = ParseElement();
        if (!child.ok()) return child.status();
        node->children.push_back(std::move(*child));
        continue;
      }
      raw_text.push_back(Peek());
      ++pos_;
    }
    auto decoded = DecodeEntities(raw_text);
    if (!decoded.ok()) return decoded.status();
    node->text = Trim(*decoded);
    return node;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

std::string EncodeEntities(const std::string& raw) {
  std::string out;
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

size_t DocumentNode::SubtreeSize() const {
  size_t n = 1;
  for (const auto& child : children) n += child->SubtreeSize();
  return n;
}

std::string DocumentNode::ToXml(int indent) const {
  std::ostringstream os;
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  os << pad << "<" << tag;
  for (const auto& [name, value] : attributes) {
    os << " " << name << "=\"" << EncodeEntities(value) << "\"";
  }
  if (text.empty() && children.empty()) {
    os << "/>";
    return os.str();
  }
  os << ">";
  if (!text.empty()) os << EncodeEntities(text);
  for (const auto& child : children) {
    os << "\n" << child->ToXml(indent + 1);
  }
  if (!children.empty()) os << "\n" << pad;
  os << "</" << tag << ">";
  return os.str();
}

Result<std::unique_ptr<DocumentNode>> ParseDocument(const std::string& text) {
  Parser parser(text);
  return parser.ParseRoot();
}

}  // namespace precis
