#include "semistructured/shredder.h"

#include <map>
#include <set>
#include <vector>

namespace precis {

namespace {

/// Schema information collected for one tag across the whole document.
struct TagInfo {
  std::string parent_tag;       // empty for the root tag
  bool has_parent = false;
  bool has_text = false;
  std::set<std::string> attribute_names;
  size_t count = 0;
};

/// First pass: discover the tag structure; verify it forms a tree of tags.
Status CollectTags(const DocumentNode& node, const std::string& parent_tag,
                   std::map<std::string, TagInfo>* tags) {
  TagInfo& info = (*tags)[node.tag];
  ++info.count;
  if (parent_tag.empty()) {
    if (info.has_parent) {
      return Status::InvalidArgument("tag '" + node.tag +
                                     "' appears both as root and nested");
    }
  } else {
    if (node.tag == parent_tag) {
      return Status::InvalidArgument("recursive tag '" + node.tag +
                                     "' cannot be shredded");
    }
    if (info.has_parent && info.parent_tag != parent_tag) {
      return Status::InvalidArgument(
          "tag '" + node.tag + "' appears under both '" + info.parent_tag +
          "' and '" + parent_tag + "'; shredding needs a tag tree");
    }
    info.parent_tag = parent_tag;
    info.has_parent = true;
  }
  if (!node.text.empty()) info.has_text = true;
  for (const auto& [name, value] : node.attributes) {
    info.attribute_names.insert(name);
  }
  for (const auto& child : node.children) {
    PRECIS_RETURN_NOT_OK(CollectTags(*child, node.tag, tags));
  }
  return Status::OK();
}

constexpr char kIdColumn[] = "id";
constexpr char kParentColumn[] = "parent";
constexpr char kContentColumn[] = "content";

Status CheckReservedCollisions(const TagInfo& info, const std::string& tag) {
  for (const char* reserved : {kIdColumn, kParentColumn, kContentColumn}) {
    if (info.attribute_names.count(reserved) > 0) {
      return Status::InvalidArgument("attribute '" + std::string(reserved) +
                                     "' of tag '" + tag +
                                     "' collides with a shredder column");
    }
  }
  return Status::OK();
}

/// Second pass: emit one tuple per element.
Status InsertElements(const DocumentNode& node,
                      const std::map<std::string, TagInfo>& tags,
                      Database* db, int64_t parent_id, int64_t* next_id) {
  const TagInfo& info = tags.at(node.tag);
  int64_t id = (*next_id)++;
  auto rel = db->GetRelation(node.tag);
  if (!rel.ok()) return rel.status();

  Tuple tuple;
  tuple.push_back(id);
  if (info.has_parent) {
    tuple.push_back(parent_id);
  }
  if (info.has_text) {
    tuple.push_back(node.text.empty() ? Value::Null() : Value(node.text));
  }
  for (const std::string& attr : info.attribute_names) {
    auto it = node.attributes.find(attr);
    tuple.push_back(it == node.attributes.end() ? Value::Null()
                                                : Value(it->second));
  }
  auto tid = (*rel)->Insert(std::move(tuple));
  if (!tid.ok()) return tid.status();

  for (const auto& child : node.children) {
    PRECIS_RETURN_NOT_OK(InsertElements(*child, tags, db, id, next_id));
  }
  return Status::OK();
}

}  // namespace

Result<ShreddedDocument> ShreddedDocument::Shred(const DocumentNode& root,
                                                 const ShredOptions& options) {
  if (options.parent_to_child_weight < 0.0 ||
      options.parent_to_child_weight > 1.0 ||
      options.child_to_parent_weight < 0.0 ||
      options.child_to_parent_weight > 1.0 ||
      options.value_projection_weight < 0.0 ||
      options.value_projection_weight > 1.0) {
    return Status::InvalidArgument("shred weights must lie in [0, 1]");
  }

  std::map<std::string, TagInfo> tags;
  PRECIS_RETURN_NOT_OK(CollectTags(root, "", &tags));

  auto db = std::make_unique<Database>("shredded:" + root.tag);
  for (const auto& [tag, info] : tags) {
    PRECIS_RETURN_NOT_OK(CheckReservedCollisions(info, tag));
    std::vector<AttributeSchema> attrs;
    attrs.push_back({kIdColumn, DataType::kInt64});
    if (info.has_parent) attrs.push_back({kParentColumn, DataType::kInt64});
    if (info.has_text) attrs.push_back({kContentColumn, DataType::kString});
    for (const std::string& attr : info.attribute_names) {
      attrs.push_back({attr, DataType::kString});
    }
    RelationSchema schema(tag, std::move(attrs));
    PRECIS_RETURN_NOT_OK(schema.SetPrimaryKey(kIdColumn));
    PRECIS_RETURN_NOT_OK(db->CreateRelation(std::move(schema)));
  }
  for (const auto& [tag, info] : tags) {
    if (!info.has_parent) continue;
    PRECIS_RETURN_NOT_OK(db->AddForeignKey(
        {tag, kParentColumn, info.parent_tag, kIdColumn}));
  }

  int64_t next_id = 1;
  PRECIS_RETURN_NOT_OK(
      InsertElements(root, tags, db.get(), /*parent_id=*/0, &next_id));

  if (options.create_indexes) {
    for (const auto& [tag, info] : tags) {
      auto rel = db->GetRelation(tag);
      PRECIS_RETURN_NOT_OK((*rel)->CreateIndex(kIdColumn));
      if (info.has_parent) {
        PRECIS_RETURN_NOT_OK((*rel)->CreateIndex(kParentColumn));
      }
    }
  }
  PRECIS_RETURN_NOT_OK(db->ValidateForeignKeys());

  auto graph_result = SchemaGraph::FromDatabase(*db);
  if (!graph_result.ok()) return graph_result.status();
  auto graph = std::make_unique<SchemaGraph>(std::move(*graph_result));
  for (const auto& [tag, info] : tags) {
    PRECIS_RETURN_NOT_OK(graph->AddProjectionEdge(tag, kIdColumn, 0.1));
    if (info.has_text) {
      PRECIS_RETURN_NOT_OK(graph->AddProjectionEdge(
          tag, kContentColumn, options.value_projection_weight));
    }
    for (const std::string& attr : info.attribute_names) {
      PRECIS_RETURN_NOT_OK(graph->AddProjectionEdge(
          tag, attr, options.value_projection_weight));
    }
    if (info.has_parent) {
      PRECIS_RETURN_NOT_OK(graph->AddProjectionEdge(tag, kParentColumn, 0.1));
      // child -> parent: an element should carry its context.
      PRECIS_RETURN_NOT_OK(graph->AddJoinEdge(
          tag, kParentColumn, info.parent_tag, kIdColumn,
          options.child_to_parent_weight));
      // parent -> child: the container may include the contained.
      PRECIS_RETURN_NOT_OK(graph->AddJoinEdge(
          info.parent_tag, kIdColumn, tag, kParentColumn,
          options.parent_to_child_weight));
    }
  }
  PRECIS_RETURN_NOT_OK(graph->Validate());

  db->ResetStats();
  return ShreddedDocument(std::move(db), std::move(graph));
}

}  // namespace precis
