// A minimal semi-structured document model with an XML-like syntax.
//
// The paper asserts that the précis framework "is applicable to other types
// of (semi-)structured data as well"; this module provides the data model
// that claim needs: element trees with attributes and text, parsed from a
// compact XML-like syntax (see Parse below), ready for shredding into
// relations (shredder.h).
//
// Supported syntax (deliberately small, no namespaces / DTDs / PIs):
//   <tag attr="value" ...> text and <child .../> elements </tag>
//   <tag/>                         self-closing
//   &amp; &lt; &gt; &quot;         entities in text and attribute values
//   <!-- ... -->                   comments (skipped)

#ifndef PRECIS_SEMISTRUCTURED_DOCUMENT_H_
#define PRECIS_SEMISTRUCTURED_DOCUMENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace precis {

/// \brief One element of a document tree.
struct DocumentNode {
  std::string tag;
  /// Attribute name -> value, in name order.
  std::map<std::string, std::string> attributes;
  /// Concatenated character data directly under this element, trimmed.
  std::string text;
  std::vector<std::unique_ptr<DocumentNode>> children;

  /// Number of elements in this subtree (including this one).
  size_t SubtreeSize() const;

  /// Renders the subtree back to the XML-like syntax (for debugging and
  /// round-trip tests).
  std::string ToXml(int indent = 0) const;
};

/// \brief Parses one document from the XML-like syntax. The input must
/// contain exactly one root element (plus whitespace/comments around it).
Result<std::unique_ptr<DocumentNode>> ParseDocument(const std::string& text);

}  // namespace precis

#endif  // PRECIS_SEMISTRUCTURED_DOCUMENT_H_
