// ShardedDatabase: one logical database hash-partitioned across N shard
// Databases (DESIGN.md §15).
//
// Every shard holds every relation (possibly empty) with the full source
// schema and the same replicated indexes, so structural properties — which
// attributes exist, which are indexed, in which order the inverted index
// enumerates relations — are global, not per-shard. Only the *tuples* are
// partitioned: global tid g of relation R lives on shard
// ShardRouter::ShardOf(seed(R), g), at a shard-local tid recorded in the
// global<->local maps. Shards are populated in ascending global-tid order,
// so each per-shard local->global map is strictly increasing — the property
// the deterministic merges lean on (an ascending shard-local tid list
// translates to an ascending global list).
//
// The coordinator-facing read surface is ShardedRelation: a view that
// mirrors Relation's instrumented API (LookupEquals charge/fault order,
// ProjectRows fetch totals, CountStatement) against the query's
// ExecutionContext while the actual data work runs against the shard
// relations with a null context — shard-side operations never consult the
// fault injector and never double-charge the query (fault decisions stay on
// the coordinator thread, exactly as in parallel_dbgen.cc).

#ifndef PRECIS_SHARD_SHARDED_DATABASE_H_
#define PRECIS_SHARD_SHARDED_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/result.h"
#include "shard/shard_router.h"
#include "storage/access_stats.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace precis {

class ShardedDatabase;

/// \brief Merges per-shard ascending global-tid lists into one ascending
/// list — the single-engine lookup order (index postings and the scan
/// fallback both return ascending tids, and translation through a strictly
/// increasing local->global map preserves that per shard).
std::vector<Tid> MergeAscendingTids(std::vector<std::vector<Tid>> lists);

/// \brief Coordinator view of one partitioned relation.
class ShardedRelation {
 public:
  const std::string& name() const { return schema_.name(); }
  const RelationSchema& schema() const { return schema_; }

  /// Global tuple count (the sum of the shard counts).
  size_t num_tuples() const { return owner_.size(); }

  size_t num_shards() const { return shard_rel_.size(); }
  const Relation* shard_relation(size_t shard) const {
    return shard_rel_[shard];
  }
  size_t shard_tuples(size_t shard) const {
    return local_to_global_[shard].size();
  }

  size_t OwnerOf(Tid global_tid) const { return owner_[global_tid]; }
  Tid LocalOf(Tid global_tid) const { return local_of_[global_tid]; }
  Tid GlobalOf(size_t shard, Tid local_tid) const {
    return local_to_global_[shard][local_tid];
  }

  /// Uncharged single-attribute read, routed to the owning shard's columnar
  /// mirror — the planner's join-key extraction path.
  Value ColumnValue(Tid global_tid, size_t attribute) const {
    return shard_rel_[owner_[global_tid]]->ColumnValue(local_of_[global_tid],
                                                       attribute);
  }

  /// True when the attribute is indexed. Indexes are replicated onto every
  /// shard at partition time, so indexedness is a global property — which is
  /// what lets the coordinator mirror decide probe-vs-scan without asking
  /// the shards.
  bool HasIndex(const std::string& attribute_name) const {
    return shard_rel_[0]->HasIndex(attribute_name);
  }

  /// Replays exactly the charge/fault sequence Relation::LookupEquals
  /// produces on the coordinator context — CheckFault(kIndexProbe) then one
  /// index-probe charge when the attribute is indexed, CheckFault(
  /// kRelationScan) then one scan charge otherwise, attribute-missing error
  /// first — without touching any shard. The sharded generator pairs this
  /// with prefetched shard results so the injector consumes the identical
  /// check sequence the single-engine run does (DESIGN.md §15).
  Status MirrorLookupCharges(const std::string& attribute_name,
                             ExecutionContext* ctx) const;

  /// Shard-local equality lookup, translated to ascending *global* tids.
  /// Runs with a null context: no fault checks, no coordinator charges (the
  /// shard relation's own stats still count the probe). Safe to call from
  /// pool threads — this is the scatter half of the per-edge prefetch.
  Result<std::vector<Tid>> ShardLookupGlobal(size_t shard,
                                             const std::string& attribute_name,
                                             const Value& key) const;

  /// True when this relation carries a read replica for every shard
  /// (ShardedDatabase::Partition with replicas, DESIGN.md §17).
  bool has_replicas() const { return !replica_rel_.empty(); }

  /// ShardLookupGlobal against shard `shard`'s *replica*. Replicas hold
  /// byte-identical tuples at identical local tids, so the result is the
  /// same tid list the primary would return — which is what lets hedged
  /// sub-queries pick whichever copy answers first without changing the
  /// answer (DESIGN.md §17). Only valid when has_replicas().
  Result<std::vector<Tid>> ReplicaLookupGlobal(
      size_t shard, const std::string& attribute_name, const Value& key) const;

  /// Full instrumented lookup: MirrorLookupCharges + sequential gather over
  /// all shards + ascending merge. Byte-identical results (and coordinator
  /// charges) to the single-engine Relation::LookupEquals.
  Result<std::vector<Tid>> LookupEquals(const std::string& attribute_name,
                                        const Value& key,
                                        ExecutionContext* ctx = nullptr) const;

  /// Bulk fetch+project of global tids: groups by owning shard, runs each
  /// shard's columnar ProjectRows kernel (charging `ctx` the same n tuple
  /// fetches the single-engine chunk pays), scatters rows back into
  /// `out[i * width + j]` aligned with `tids`. `shard_fetches`, when given,
  /// receives the per-shard fetch counts (the budget-ledger telemetry).
  void ProjectRowsScatter(const Tid* tids, size_t n,
                          const std::vector<size_t>& projection, Value* out,
                          ExecutionContext* ctx,
                          std::vector<uint64_t>* shard_fetches = nullptr) const;

  /// Identity-projection variant (all attributes in schema order).
  void ProjectRowsAllScatter(const Tid* tids, size_t n, Value* out,
                             ExecutionContext* ctx,
                             std::vector<uint64_t>* shard_fetches =
                                 nullptr) const;

  /// One submitted statement, attributed to the sharded database's own
  /// stats and the context (statements are counted, never budget-charged).
  void CountStatement(ExecutionContext* ctx) const;

 private:
  friend class ShardedDatabase;

  ShardedRelation(RelationSchema schema, uint64_t seed, AccessStats* stats)
      : schema_(std::move(schema)), seed_(seed), stats_(stats) {}

  void ProjectScatterImpl(const Tid* tids, size_t n,
                          const std::vector<size_t>* projection, size_t width,
                          Value* out, ExecutionContext* ctx,
                          std::vector<uint64_t>* shard_fetches) const;

  RelationSchema schema_;
  uint64_t seed_;              // ShardRouter::RelationSeed(name())
  AccessStats* stats_;         // the owning ShardedDatabase's counters
  std::vector<Relation*> shard_rel_;            // [num_shards]
  std::vector<Relation*> replica_rel_;          // [num_shards] or empty
  std::vector<uint32_t> owner_;                 // global tid -> shard
  std::vector<Tid> local_of_;                   // global tid -> local tid
  std::vector<std::vector<Tid>> local_to_global_;  // per shard, ascending
};

/// \brief The partitioned database: N shard Databases plus the routing maps
/// and the global foreign-key catalog.
class ShardedDatabase {
 public:
  /// Partitions `source` across `num_shards` shards. Every relation is
  /// created on every shard (schema + primary key + replicated indexes);
  /// tuples are routed by ShardRouter in ascending global-tid order. The
  /// source is copied — it is not referenced afterwards. Foreign keys are
  /// kept in the global catalog (a shard cannot declare them: a child tuple
  /// and its parent may live on different shards); with a single shard they
  /// are additionally declared on the shard so it is a faithful standalone
  /// copy of the source.
  ///
  /// With `with_replicas` every shard additionally gets a read replica — a
  /// second Database holding byte-identical tuples at identical local tids
  /// (populated by the same routed insert loop and kept in lockstep by
  /// Insert). Replicas are the hedged-sub-query target (DESIGN.md §17):
  /// because they are exact copies, serving a sub-query from the replica
  /// instead of the primary can never change the merged answer.
  static Result<ShardedDatabase> Partition(const Database& source,
                                           size_t num_shards,
                                           bool with_replicas = false);

  ShardedDatabase(ShardedDatabase&&) = default;
  ShardedDatabase& operator=(ShardedDatabase&&) = default;
  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  size_t num_shards() const { return shards_.size(); }
  const Database& shard(size_t i) const { return *shards_[i]; }
  Database& mutable_shard(size_t i) { return *shards_[i]; }

  /// True when Partition was asked for read replicas.
  bool has_replicas() const { return !replicas_.empty(); }
  const Database& replica(size_t i) const { return *replicas_[i]; }

  /// The shard's mutation epoch — the shard-aware cache key component: an
  /// insert routed to shard i moves only epoch i (DESIGN.md §15).
  uint64_t shard_epoch(size_t i) const { return shards_[i]->epoch(); }

  bool HasRelation(const std::string& name) const {
    return views_.count(name) > 0;
  }
  Result<const ShardedRelation*> GetView(const std::string& name) const;

  /// Relation names, sorted (same enumeration order as Database).
  std::vector<std::string> RelationNames() const;

  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  size_t TotalTuples() const;

  /// Routed insert: assigns the next global tid of `relation`, routes the
  /// tuple to its owner shard (bumping only that shard's epoch), and
  /// maintains the tid maps. Cross-shard primary-key uniqueness is enforced
  /// by probing the non-owning shards before the owner's own checked
  /// Insert. Not thread-safe against concurrent queries (same single-writer
  /// contract as Database mutation).
  Result<Tid> Insert(const std::string& relation, Tuple tuple);

  /// The shard this relation's global tid `tid` routes to.
  size_t ShardOf(const std::string& relation, Tid tid) const {
    return router_.ShardOf(ShardRouter::RelationSeed(relation), tid);
  }

  /// Coordinator-side access counters: the mirror charges (probes/scans/
  /// statements the logical query performed), as opposed to the per-shard
  /// Database stats which count the physical shard-side work.
  const AccessStats& stats() const { return *stats_; }

 private:
  explicit ShardedDatabase(size_t num_shards) : router_(num_shards) {}

  ShardRouter router_;
  std::vector<std::unique_ptr<Database>> shards_;
  std::vector<std::unique_ptr<Database>> replicas_;  // empty or [num_shards]
  std::map<std::string, std::unique_ptr<ShardedRelation>> views_;
  std::vector<ForeignKey> foreign_keys_;
  std::unique_ptr<AccessStats> stats_ = std::make_unique<AccessStats>();
};

}  // namespace precis

#endif  // PRECIS_SHARD_SHARDED_DATABASE_H_
