// ShardedPrecisEngine: précis query answering over a hash-partitioned
// database (DESIGN.md §15).
//
// Owns a ShardedDatabase plus one PrecisEngine per shard (each with its own
// inverted index over the shard's tuples). Token matching scatters one
// lookup task per shard and merges the translated occurrence lists into the
// single-engine grouping and tid order; result-database generation runs
// through ShardedResultDatabaseGenerator's coordinator replay. Answers are
// byte-identical to a plain PrecisEngine over the unpartitioned source for
// any shard count.
//
// Caching is shard-aware: the full-answer cache key extends the engine's
// fingerprint with the shard count and every shard's mutation epoch (any
// insert still invalidates whole answers, exactly like the single-engine
// epoch), while the per-shard partial caches (translated token occurrence
// lists) are keyed on *their own* shard's epoch only — an insert routed to
// shard 3 invalidates shard 3's partials and nobody else's.

#ifndef PRECIS_SHARD_SHARDED_ENGINE_H_
#define PRECIS_SHARD_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/execution_context.h"
#include "common/lru_cache.h"
#include "common/result.h"
#include "graph/schema_graph.h"
#include "precis/engine.h"
#include "shard/shard_health.h"
#include "shard/sharded_database.h"
#include "shard/sharded_dbgen.h"
#include "text/synonyms.h"

namespace precis {

/// \brief Scatter-gather précis engine over N shard engines.
class ShardedPrecisEngine {
 public:
  /// Partitions `source` across `num_shards` shards and builds one
  /// PrecisEngine (with its own inverted index) per shard. `source` is
  /// copied into the shards; `graph` must outlive the engine.
  ///
  /// With `with_replicas`, every shard also gets a read replica (an exact
  /// copy, see ShardedDatabase::Partition) and sub-queries that outlive the
  /// shard's hedging delay are re-issued against it, first response wins
  /// (DESIGN.md §17). Replicas double partition memory, so they are opt-in.
  static Result<std::unique_ptr<ShardedPrecisEngine>> Create(
      const Database& source, const SchemaGraph* graph, size_t num_shards,
      bool with_replicas = false);

  ShardedPrecisEngine(const ShardedPrecisEngine&) = delete;
  ShardedPrecisEngine& operator=(const ShardedPrecisEngine&) = delete;

  /// Sharded analog of PrecisEngine::AnswerShared: scatter-gather answer
  /// through the shard-aware full-answer cache. `shard_stats`, when given,
  /// receives the query's scatter-gather telemetry (zeroed on cache hits —
  /// a hit does no shard work).
  Result<std::shared_ptr<const PrecisAnswer>> AnswerShared(
      const PrecisQuery& query, const DegreeConstraint& degree,
      const CardinalityConstraint& cardinality,
      const DbGenOptions& options = DbGenOptions(),
      ExecutionContext* ctx = nullptr,
      ShardQueryStats* shard_stats = nullptr) const;

  /// Sharded analog of PrecisEngine::AnswerSharedRendered (DESIGN.md §16):
  /// AnswerShared plus the memoized AnswerToJson body, cached under the
  /// shard-aware fingerprint with the same clean/complete/epoch-stable
  /// insert discipline. With one shard, delegates to the shard engine's
  /// rendered path.
  Result<RenderedAnswer> AnswerSharedRendered(
      const PrecisQuery& query, const DegreeConstraint& degree,
      const CardinalityConstraint& cardinality,
      const DbGenOptions& options = DbGenOptions(),
      ExecutionContext* ctx = nullptr,
      ShardQueryStats* shard_stats = nullptr) const;

  /// Uncached scatter-gather answer (the sharded Answer()).
  Result<PrecisAnswer> Answer(const PrecisQuery& query,
                              const DegreeConstraint& degree,
                              const CardinalityConstraint& cardinality,
                              const DbGenOptions& options = DbGenOptions(),
                              ExecutionContext* ctx = nullptr,
                              ShardQueryStats* shard_stats = nullptr) const;

  /// Routed insert into the owning shard (bumps only that shard's epoch,
  /// so only that shard's partial cache entries go stale). Like the
  /// single-engine source database, later inserts are not re-indexed into
  /// the shard inverted indexes.
  Result<Tid> Insert(const std::string& relation, Tuple tuple) {
    return sharded_.Insert(relation, std::move(tuple));
  }

  size_t num_shards() const { return sharded_.num_shards(); }
  const ShardedDatabase& database() const { return sharded_; }
  const SchemaGraph* graph() const { return graph_; }
  const PrecisEngine& shard_engine(size_t i) const {
    return *shard_engines_[i];
  }

  /// Installs a synonym table (forwarded to every shard engine so the
  /// single-shard delegation path canonicalizes identically).
  void set_synonyms(const SynonymTable* synonyms);

  /// Flips all cache levels: the shard-aware full-answer cache, the
  /// coordinator schema cache, and the per-shard partial caches. With one
  /// shard, the shard engine's own caches are toggled instead (that
  /// configuration delegates whole queries to it).
  void set_caches_enabled(bool enabled);

  LruCacheStats answer_cache_stats() const { return caches_->answer.stats(); }
  LruCacheStats schema_cache_stats() const { return caches_->schema.stats(); }
  /// Rendered-body cache counters (the shard engine's body cache when
  /// num_shards == 1, which delegates).
  LruCacheStats body_cache_stats() const {
    if (num_shards() == 1) return shard_engines_[0]->body_cache_stats();
    return caches_->body.stats();
  }

  /// Per-shard partial-results cache counters (the shard engine's token
  /// cache when num_shards == 1, which delegates).
  LruCacheStats shard_partial_cache_stats(size_t shard) const;

  /// Tuples resident on a shard.
  uint64_t shard_tuples(size_t shard) const {
    return sharded_.shard(shard).TotalTuples();
  }

  /// Per-shard fault-domain health: circuit breakers, hedge-delay windows,
  /// lifetime hedge/skip counters (DESIGN.md §17). Shard fault domains only
  /// exist at num_shards >= 2 — the one-shard configuration delegates whole
  /// queries to its shard engine and never consults this state.
  const ShardHealthTracker& health() const { return *health_; }
  CircuitBreakerStats breaker_stats(size_t shard) const {
    return health_->breaker(shard).stats();
  }

 private:
  ShardedPrecisEngine(ShardedDatabase sharded, const SchemaGraph* graph);

  /// Token lookup scattered across shards: per-shard (partial-cached)
  /// occurrence lists, local tids translated to global, merged into the
  /// single-engine (relation, attribute) group order with ascending tids.
  /// Shards the fault plan skipped contribute no occurrences — their seed
  /// tuples are part of what the outage costs the answer (DESIGN.md §17).
  std::vector<TokenMatch> MatchTokens(const PrecisQuery& query,
                                      const ShardQueryFaultPlan* plan) const;

  /// One shard's translated occurrences for a resolved token, through the
  /// shard's partial cache when enabled.
  std::shared_ptr<const std::vector<TokenOccurrence>> ShardOccurrences(
      size_t shard, const std::string& resolved) const;

  Result<PrecisAnswer> AnswerFromMatches(
      std::vector<TokenMatch> matches, const DegreeConstraint& degree,
      const CardinalityConstraint& c, const DbGenOptions& options,
      ExecutionContext* ctx, ShardQueryStats* shard_stats,
      const ShardQueryFaultPlan* plan) const;

  /// Shared implementation of AnswerShared / AnswerSharedRendered; when
  /// `body_out` is non-null it is always filled (memoized when permitted).
  Result<std::shared_ptr<const PrecisAnswer>> AnswerSharedImpl(
      const PrecisQuery& query, const DegreeConstraint& degree,
      const CardinalityConstraint& cardinality, const DbGenOptions& options,
      ExecutionContext* ctx, ShardQueryStats* shard_stats,
      std::shared_ptr<const std::string>* body_out) const;

  ShardedDatabase sharded_;
  const SchemaGraph* graph_;
  std::vector<std::unique_ptr<PrecisEngine>> shard_engines_;
  /// Fault-domain health; internally synchronized, so const query paths
  /// share it freely (DESIGN.md §17).
  std::unique_ptr<ShardHealthTracker> health_;
  /// Sorted relation name -> enumeration index; the cross-shard occurrence
  /// merge keys groups on it so group order matches InvertedIndex's sorted
  /// relation_names_ enumeration.
  std::map<std::string, uint32_t> relation_order_;
  const SynonymTable* synonyms_ = nullptr;

  std::atomic<bool> caches_enabled_{false};

  using PartialCache =
      ShardedLruCache<std::string, std::vector<TokenOccurrence>>;
  struct Caches {
    /// Coordinator result-schema cache (same key scheme as PrecisEngine's:
    /// sorted token-relation ids + degree + weight epoch).
    ShardedLruCache<std::string, ResultSchema> schema{8 << 20};
    /// Shard-aware full-answer cache.
    ShardedLruCache<std::string, PrecisAnswer> answer{64 << 20};
    /// Rendered-body cache (level 4): fingerprint -> AnswerToJson bytes,
    /// same key scheme as `answer` so epoch invalidation is inherited.
    ShardedLruCache<std::string, std::string> body{32 << 20};
    /// One partial cache per shard: translated global-tid occurrence lists
    /// keyed "shard_epoch|token", so a routed insert strands exactly the
    /// owning shard's entries.
    std::vector<std::unique_ptr<PartialCache>> partial;
  };
  std::unique_ptr<Caches> caches_ = std::make_unique<Caches>();
};

}  // namespace precis

#endif  // PRECIS_SHARD_SHARDED_ENGINE_H_
