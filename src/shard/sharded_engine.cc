#include "shard/sharded_engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/task_pool.h"
#include "precis/json_export.h"

namespace precis {

namespace {

/// Approximate heap footprint of a cached ResultSchema (same estimator as
/// the single-engine schema cache, so the two byte budgets mean the same).
size_t EstimateSchemaCharge(const ResultSchema& schema) {
  return 256 + schema.relations().size() * 64 +
         schema.projection_paths().size() * 160 +
         schema.join_edges().size() * 24 +
         schema.TotalProjectedAttributes() * 16;
}

}  // namespace

Result<std::unique_ptr<ShardedPrecisEngine>> ShardedPrecisEngine::Create(
    const Database& source, const SchemaGraph* graph, size_t num_shards,
    bool with_replicas) {
  if (graph == nullptr) {
    return Status::InvalidArgument("graph must be non-null");
  }
  auto sharded = ShardedDatabase::Partition(source, num_shards, with_replicas);
  if (!sharded.ok()) return sharded.status();
  auto engine = std::unique_ptr<ShardedPrecisEngine>(
      new ShardedPrecisEngine(std::move(*sharded), graph));
  engine->health_ = std::make_unique<ShardHealthTracker>(num_shards);
  for (size_t s = 0; s < engine->sharded_.num_shards(); ++s) {
    auto shard_engine = PrecisEngine::Create(&engine->sharded_.shard(s), graph);
    if (!shard_engine.ok()) return shard_engine.status();
    engine->shard_engines_.push_back(
        std::make_unique<PrecisEngine>(std::move(*shard_engine)));
    engine->caches_->partial.push_back(
        std::make_unique<PartialCache>(4 << 20));
  }
  uint32_t order = 0;
  for (const std::string& name : engine->sharded_.RelationNames()) {
    engine->relation_order_.emplace(name, order++);
  }
  return engine;
}

ShardedPrecisEngine::ShardedPrecisEngine(ShardedDatabase sharded,
                                         const SchemaGraph* graph)
    : sharded_(std::move(sharded)), graph_(graph) {}

void ShardedPrecisEngine::set_synonyms(const SynonymTable* synonyms) {
  synonyms_ = synonyms;
  for (auto& engine : shard_engines_) engine->set_synonyms(synonyms);
}

void ShardedPrecisEngine::set_caches_enabled(bool enabled) {
  caches_enabled_.store(enabled, std::memory_order_relaxed);
  if (!enabled) {
    caches_->schema.Clear();
    caches_->answer.Clear();
    caches_->body.Clear();
    for (auto& partial : caches_->partial) partial->Clear();
  }
  if (num_shards() == 1) {
    // The one-shard configuration delegates whole queries to the shard
    // engine; its caches are the ones that matter there.
    shard_engines_[0]->set_caches_enabled(enabled);
  }
}

LruCacheStats ShardedPrecisEngine::shard_partial_cache_stats(
    size_t shard) const {
  if (num_shards() == 1) return shard_engines_[0]->token_cache_stats();
  return caches_->partial[shard]->stats();
}

std::shared_ptr<const std::vector<TokenOccurrence>>
ShardedPrecisEngine::ShardOccurrences(size_t shard,
                                      const std::string& resolved) const {
  const bool cached = caches_enabled_.load(std::memory_order_relaxed);
  std::string key;
  if (cached) {
    // Keyed on *this shard's* epoch only: an insert routed elsewhere
    // leaves this shard's translated postings perfectly reusable.
    key = std::to_string(sharded_.shard_epoch(shard));
    key += '|';
    key += resolved;
    if (std::shared_ptr<const std::vector<TokenOccurrence>> hit =
            caches_->partial[shard]->Get(key)) {
      return hit;
    }
  }
  OccurrenceList local = shard_engines_[shard]->index().Lookup(resolved);
  auto translated = std::make_shared<std::vector<TokenOccurrence>>();
  translated->reserve(local->size());
  for (const TokenOccurrence& occ : *local) {
    auto view = sharded_.GetView(occ.relation);
    if (!view.ok()) continue;  // unreachable: every shard relation has a view
    TokenOccurrence out{occ.relation, occ.attribute, {}};
    out.tids.reserve(occ.tids.size());
    for (Tid local_tid : occ.tids) {
      out.tids.push_back((*view)->GlobalOf(shard, local_tid));
    }
    translated->push_back(std::move(out));
  }
  std::shared_ptr<const std::vector<TokenOccurrence>> result =
      std::move(translated);
  if (cached) {
    caches_->partial[shard]->Put(key, result,
                                 EstimateOccurrencesCharge(*result));
  }
  return result;
}

std::vector<TokenMatch> ShardedPrecisEngine::MatchTokens(
    const PrecisQuery& query, const ShardQueryFaultPlan* plan) const {
  const size_t num_tokens = query.tokens.size();
  const size_t shards = num_shards();
  static const auto kNoOccurrences =
      std::make_shared<const std::vector<TokenOccurrence>>();

  std::vector<std::string> resolved(num_tokens);
  for (size_t t = 0; t < num_tokens; ++t) {
    resolved[t] = synonyms_ != nullptr
                      ? synonyms_->Canonicalize(query.tokens[t])
                      : query.tokens[t];
  }

  // Scatter: one task per shard looks up every token against that shard's
  // inverted index (through the shard's partial cache). Lookups are
  // read-only against immutable postings; the partial caches are
  // internally locked.
  std::vector<std::vector<std::shared_ptr<const std::vector<TokenOccurrence>>>>
      per_token(num_tokens);
  for (auto& row : per_token) row.resize(shards);
  TaskPool::Group scatter(TaskPool::Shared());
  for (size_t s = 0; s < shards; ++s) {
    if (plan != nullptr && plan->live[s] == 0) {
      // Skipped shard (open circuit / failed probe): it contributes no
      // occurrences; the merge completes without it (DESIGN.md §17).
      for (size_t t = 0; t < num_tokens; ++t) {
        per_token[t][s] = kNoOccurrences;
      }
      continue;
    }
    scatter.Run([&, s] {
      for (size_t t = 0; t < num_tokens; ++t) {
        per_token[t][s] = ShardOccurrences(s, resolved[t]);
      }
    });
  }
  scatter.Wait();

  // Gather: merge each token's per-shard occurrence lists into the
  // single-engine result. InvertedIndex emits groups ordered by (sorted
  // relation index, attribute index) with ascending tids; keying the merge
  // map the same way — relation_order_ is built from the same sorted
  // names, and every shard holds every relation so the orders agree —
  // reproduces both the grouping and the order, and the ascending k-way
  // tid merge restores the global posting order.
  std::vector<TokenMatch> matches;
  matches.reserve(num_tokens);
  for (size_t t = 0; t < num_tokens; ++t) {
    struct Group {
      const TokenOccurrence* proto = nullptr;
      std::vector<std::vector<Tid>> lists;
    };
    std::map<std::pair<uint32_t, uint32_t>, Group> groups;
    for (size_t s = 0; s < shards; ++s) {
      for (const TokenOccurrence& occ : *per_token[t][s]) {
        auto view = sharded_.GetView(occ.relation);
        if (!view.ok()) continue;
        auto attr = (*view)->schema().AttributeIndex(occ.attribute);
        if (!attr.ok()) continue;
        Group& group = groups[{relation_order_.at(occ.relation),
                               static_cast<uint32_t>(*attr)}];
        if (group.proto == nullptr) group.proto = &occ;
        group.lists.push_back(occ.tids);
      }
    }
    auto merged = std::make_shared<std::vector<TokenOccurrence>>();
    merged->reserve(groups.size());
    for (auto& [key, group] : groups) {
      merged->push_back(TokenOccurrence{
          group.proto->relation, group.proto->attribute,
          MergeAscendingTids(std::move(group.lists))});
    }
    matches.push_back(TokenMatch{query.tokens[t], resolved[t],
                                 std::move(merged)});
  }
  return matches;
}

Result<PrecisAnswer> ShardedPrecisEngine::AnswerFromMatches(
    std::vector<TokenMatch> matches, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    ExecutionContext* ctx, ShardQueryStats* shard_stats,
    const ShardQueryFaultPlan* plan) const {
  // Input relations (deduplicated, in match order) and seed tuple ids —
  // identical discipline to PrecisEngine::AnswerFromMatches.
  std::vector<RelationNodeId> token_relations;
  SeedTids seeds;
  for (const TokenMatch& match : matches) {
    for (const TokenOccurrence& occ : match.occurrences()) {
      auto rel = graph_->RelationId(occ.relation);
      if (!rel.ok()) return rel.status();
      if (std::find(token_relations.begin(), token_relations.end(), *rel) ==
          token_relations.end()) {
        token_relations.push_back(*rel);
      }
      std::vector<Tid>& tids = seeds[*rel];
      for (Tid tid : occ.tids) {
        if (std::find(tids.begin(), tids.end(), tid) == tids.end()) {
          tids.push_back(tid);
        }
      }
    }
  }

  // Result schema generation, coordinator-cached with the single-engine
  // key scheme (schemas depend on the graph, not the partitioning).
  std::optional<ResultSchema> schema;
  {
    ScopedSpan span(ctx, "schema_gen");
    if (caches_enabled_.load(std::memory_order_relaxed)) {
      std::vector<RelationNodeId> sorted = token_relations;
      std::sort(sorted.begin(), sorted.end());
      std::string key;
      key.reserve(32 + sorted.size() * 4);
      for (RelationNodeId rel : sorted) {
        key += std::to_string(rel);
        key += ',';
      }
      key += '|';
      key += degree.ToString();
      key += '|';
      key += std::to_string(graph_->weight_epoch());
      if (std::shared_ptr<const ResultSchema> hit = caches_->schema.Get(key)) {
        schema = *hit;  // copy out of the immutable cached value
      } else {
        ResultSchemaGenerator schema_generator(graph_);
        auto generated =
            schema_generator.Generate(token_relations, degree, ctx);
        if (!generated.ok()) return generated.status();
        bool partial = ctx != nullptr && ctx->ShouldStop();
        bool tainted = ctx != nullptr && ctx->fault_injector() != nullptr &&
                       ctx->fault_injector()->armed();
        if (!partial && !tainted) {
          caches_->schema.Put(key,
                              std::make_shared<const ResultSchema>(*generated),
                              EstimateSchemaCharge(*generated));
        }
        schema = std::move(*generated);
      }
    } else {
      ResultSchemaGenerator schema_generator(graph_);
      auto generated = schema_generator.Generate(token_relations, degree, ctx);
      if (!generated.ok()) return generated.status();
      schema = std::move(*generated);
    }
  }

  // Result database generation: the sharded coordinator replay.
  ShardedResultDatabaseGenerator db_generator(&sharded_);
  Result<Database> database = [&] {
    ScopedSpan span(ctx, "db_gen");
    return db_generator.Generate(*schema, seeds, cardinality, options, ctx,
                                 shard_stats, plan);
  }();
  if (!database.ok()) return database.status();

  return PrecisAnswer{std::move(matches), std::move(*schema),
                      std::move(*database), db_generator.last_report()};
}

Result<PrecisAnswer> ShardedPrecisEngine::Answer(
    const PrecisQuery& query, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    ExecutionContext* ctx, ShardQueryStats* shard_stats) const {
  // The query's fault-domain decision, made once up front on this thread:
  // which shards participate, which stall, whether hedging can fire
  // (DESIGN.md §17). Shard fault domains need >= 2 shards — the one-shard
  // configuration is served by the delegating cached path, which never has
  // a second fault domain to fail over from.
  std::optional<ShardQueryFaultPlan> plan;
  if (num_shards() >= 2) {
    plan = DecideShardFaultPlan(num_shards(), health_.get(), ctx,
                                sharded_.has_replicas());
  }
  const ShardQueryFaultPlan* plan_ptr = plan ? &*plan : nullptr;
  std::vector<TokenMatch> matches;
  {
    ScopedSpan span(ctx, "match_tokens");
    matches = MatchTokens(query, plan_ptr);
  }
  return AnswerFromMatches(std::move(matches), degree, cardinality, options,
                           ctx, shard_stats, plan_ptr);
}

Result<std::shared_ptr<const PrecisAnswer>> ShardedPrecisEngine::AnswerShared(
    const PrecisQuery& query, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    ExecutionContext* ctx, ShardQueryStats* shard_stats) const {
  return AnswerSharedImpl(query, degree, cardinality, options, ctx,
                          shard_stats, /*body_out=*/nullptr);
}

Result<RenderedAnswer> ShardedPrecisEngine::AnswerSharedRendered(
    const PrecisQuery& query, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    ExecutionContext* ctx, ShardQueryStats* shard_stats) const {
  std::shared_ptr<const std::string> body;
  auto answer = AnswerSharedImpl(query, degree, cardinality, options, ctx,
                                 shard_stats, &body);
  if (!answer.ok()) return answer.status();
  return RenderedAnswer{std::move(*answer), std::move(body)};
}

Result<std::shared_ptr<const PrecisAnswer>>
ShardedPrecisEngine::AnswerSharedImpl(
    const PrecisQuery& query, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    ExecutionContext* ctx, ShardQueryStats* shard_stats,
    std::shared_ptr<const std::string>* body_out) const {
  if (num_shards() == 1) {
    // One shard holds a faithful full copy (foreign keys included): the
    // plain engine pipeline is byte-equivalent and skips the mirror
    // bookkeeping entirely, so delegate — this is also what makes the
    // shards=1 arm of the scaling bench an honest single-engine baseline.
    if (shard_stats != nullptr) shard_stats->Resize(1);
    if (body_out == nullptr) {
      return shard_engines_[0]->AnswerShared(query, degree, cardinality,
                                             options, ctx);
    }
    auto rendered = shard_engines_[0]->AnswerSharedRendered(
        query, degree, cardinality, options, ctx);
    if (!rendered.ok()) return rendered.status();
    *body_out = std::move(rendered->body_json);
    return std::move(rendered->answer);
  }

  const bool reusable =
      options.tuple_weights == nullptr && !options.trace_sql;
  const bool cacheable =
      caches_enabled_.load(std::memory_order_relaxed) && reusable;
  // Sharded caching is governed by the one caches_enabled_ switch, so the
  // body cache participates exactly when the answer cache does.
  const bool body_cacheable = body_out != nullptr && cacheable;

  std::string key;
  std::vector<uint64_t> epochs;
  uint64_t weight_epoch = 0;
  if (cacheable) {
    // Epochs (one per shard, read BEFORE the lookup/build) extend the
    // single-engine fingerprint: any shard's mutation makes prior full
    // answers unreachable, exactly like the monolithic db epoch.
    epochs.reserve(num_shards());
    for (size_t s = 0; s < num_shards(); ++s) {
      epochs.push_back(sharded_.shard_epoch(s));
    }
    weight_epoch = graph_->weight_epoch();
    key = "s";
    key += std::to_string(num_shards());
    for (uint64_t epoch : epochs) {
      key += '|';
      key += std::to_string(epoch);
    }
    key += "|w";
    key += std::to_string(weight_epoch);
    key += '|';
    key += AnswerFingerprintBase(query, synonyms_, degree, cardinality,
                                 options);
    ScopedSpan span(ctx, "answer_cache");
    if (std::shared_ptr<const PrecisAnswer> hit = caches_->answer.Get(key)) {
      if (shard_stats != nullptr) shard_stats->Resize(num_shards());
      if (body_out != nullptr) {
        // A cached answer is clean and complete by construction, so its
        // memoized render (or a fresh one, inserted here) is servable.
        std::shared_ptr<const std::string> body;
        if (body_cacheable) body = caches_->body.Get(key);
        if (body == nullptr) {
          body = std::make_shared<const std::string>(AnswerToJson(*hit));
          if (body_cacheable) caches_->body.Put(key, body, body->size() + 64);
        }
        *body_out = std::move(body);
      }
      return hit;
    }
  }

  auto answer =
      Answer(query, degree, cardinality, options, ctx, shard_stats);
  if (!answer.ok()) return answer.status();
  auto shared = std::make_shared<const PrecisAnswer>(std::move(*answer));

  const bool clean = !shared->report.partial() &&
                     (ctx == nullptr || !ctx->ShouldStop()) &&
                     !shared->report.fault_tainted &&
                     !shared->report.degraded();
  bool epochs_stable = cacheable && graph_->weight_epoch() == weight_epoch;
  if (epochs_stable) {
    for (size_t s = 0; s < num_shards(); ++s) {
      if (sharded_.shard_epoch(s) != epochs[s]) {
        epochs_stable = false;
        break;
      }
    }
  }
  if (cacheable && clean && epochs_stable) {
    caches_->answer.Put(key, shared, EstimateAnswerCharge(*shared));
  }
  if (body_out != nullptr) {
    // Rendered from the answer actually returned, never the cache, so the
    // served bytes always agree with the answer's own metadata.
    auto body = std::make_shared<const std::string>(AnswerToJson(*shared));
    if (body_cacheable && clean && epochs_stable) {
      caches_->body.Put(key, body, body->size() + 64);
    }
    *body_out = std::move(body);
  }
  return shared;
}

}  // namespace precis
